// Benchmarks regenerating every table and figure of the POP paper's
// evaluation (at Small scale — see cmd/popbench for bigger runs), plus
// ablation benches for the design choices DESIGN.md calls out.
package pop_test

import (
	"bytes"
	"fmt"
	"testing"

	"pop/internal/core"
	"pop/internal/experiments"
	"pop/internal/lp"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

func benchExperiment(b *testing.B, name string) {
	e, ok := experiments.Get(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable1Topologies(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig2MaxMinSpaceSharing(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig6JCT(b *testing.B)                 { benchExperiment(b, "fig6") }
func BenchmarkFig7PropFairness(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8Makespan(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9MaxFlowKdl(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10Sweep(b *testing.B)              { benchExperiment(b, "fig10") }
func BenchmarkFig11Trace(b *testing.B)              { benchExperiment(b, "fig11") }
func BenchmarkFig12ConcurrentFlow(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13LoadBalancing(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14ClientSplitting(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15ResourceSplitting(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16Partitioners(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkSection51ChernoffBounds(b *testing.B) { benchExperiment(b, "sec51") }
func BenchmarkExtensions(b *testing.B)              { benchExperiment(b, "ext") }
func BenchmarkScalingGranularity(b *testing.B)      { benchExperiment(b, "scaling") }

// --- ablation benches ---

func teBenchInstance() *te.Instance {
	tp := topo.GenerateScaled("Deltacom", 0.3)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: 600, Model: tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 5,
	})
	return te.NewInstance(tp, ds, 4)
}

// BenchmarkPOPParallelism isolates the map step's serial/parallel choice.
func BenchmarkPOPParallelism(b *testing.B) {
	inst := teBenchInstance()
	for _, parallel := range []bool{false, true} {
		b.Run(fmt.Sprintf("parallel=%v", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := te.SolvePOP(inst, te.MaxTotalFlow,
					core.Options{K: 8, Seed: 1, Parallel: parallel}, lp.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPOPFanout sweeps k: the quality/runtime knob of POP.
func BenchmarkPOPFanout(b *testing.B) {
	inst := teBenchInstance()
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var flow float64
			for i := 0; i < b.N; i++ {
				a, err := te.SolvePOP(inst, te.MaxTotalFlow,
					core.Options{K: k, Seed: 1, Parallel: true}, lp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				flow = a.TotalFlow
			}
			b.ReportMetric(flow, "flow")
		})
	}
}

// BenchmarkLPPricing compares Dantzig pricing with Bland's rule on the same
// model (the simplex's main pivoting design choice).
func BenchmarkLPPricing(b *testing.B) {
	build := func() *lp.Problem {
		// A mid-size structured LP comparable to a TE sub-problem.
		p := lp.NewProblem(lp.Maximize)
		nv, mc := 400, 150
		for j := 0; j < nv; j++ {
			p.AddVariable(float64((j*37)%17), 0, 3, "")
		}
		for i := 0; i < mc; i++ {
			var idx []int
			var val []float64
			for j := i % 7; j < nv; j += 7 {
				idx = append(idx, j)
				val = append(val, float64(1+(i+j)%5))
			}
			p.AddConstraint(idx, val, lp.LE, float64(50+(i*13)%200), "")
		}
		return p
	}
	for _, bland := range []bool{false, true} {
		b.Run(fmt.Sprintf("bland=%v", bland), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := build()
				sol, err := p.SolveWithOptions(lp.Options{BlandOnly: bland})
				if err != nil || sol.Status != lp.Optimal {
					b.Fatalf("err=%v status=%v", err, sol.Status)
				}
			}
		})
	}
}

// BenchmarkPartitioners isolates partitioning cost (it must stay negligible
// next to sub-problem solves).
func BenchmarkPartitioners(b *testing.B) {
	load := func(i int) float64 { return float64(i%97) + 1 }
	for _, strat := range []core.Strategy{core.Random, core.PowerOfTwo, core.Skewed} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Partition(100000, 16, strat, int64(i), load)
			}
		})
	}
}

// BenchmarkClientSplitting measures Algorithm 2's heap cost.
func BenchmarkClientSplitting(b *testing.B) {
	type c struct{ load float64 }
	clients := make([]c, 50000)
	for i := range clients {
		clients[i] = c{load: float64(i%1000) + 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SplitClients(clients, 0.75,
			func(x c) float64 { return x.load },
			func(x c) (c, c) { h := x.load / 2; return c{h}, c{h} })
	}
}

// BenchmarkPathCount sweeps the precomputed path budget (the TE
// formulation's main modelling knob): more paths per commodity means more
// LP columns but higher achievable flow.
func BenchmarkPathCount(b *testing.B) {
	tp := topo.GenerateScaled("Deltacom", 0.3)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: 400, Model: tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 5,
	})
	for _, paths := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("paths=%d", paths), func(b *testing.B) {
			inst := te.NewInstance(tp, ds, paths)
			var flow float64
			for i := 0; i < b.N; i++ {
				a, err := te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				flow = a.TotalFlow
			}
			b.ReportMetric(flow, "flow")
		})
	}
}

// BenchmarkPOPComposition compares plain POP against POP with NCFlow
// sub-solvers (§3.4 composability) and the geographic partitioner.
func BenchmarkPOPComposition(b *testing.B) {
	inst := teBenchInstance()
	b.Run("pop-random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := te.SolvePOP(inst, te.MaxTotalFlow,
				core.Options{K: 8, Seed: 1, Parallel: true}, lp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pop-geo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := te.SolvePOPGeo(inst, te.MaxTotalFlow, 8, 1, true, lp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pop-ncflow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := te.SolvePOPWithNCFlow(inst,
				core.Options{K: 8, Seed: 1, Parallel: true}, te.NCFlowOptions{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMPSRoundTrip measures serialization overhead for a mid-size LP.
func BenchmarkMPSRoundTrip(b *testing.B) {
	p := lp.NewProblem(lp.Maximize)
	for j := 0; j < 500; j++ {
		p.AddVariable(float64(j%13), 0, 5, "")
	}
	for i := 0; i < 200; i++ {
		var idx []int
		var val []float64
		for j := i % 5; j < 500; j += 5 {
			idx = append(idx, j)
			val = append(val, 1+float64((i+j)%3))
		}
		p.AddConstraint(idx, val, lp.LE, 100, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := p.WriteMPS(&buf, "B", nil); err != nil {
			b.Fatal(err)
		}
		if _, _, err := lp.ReadMPS(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
