package pop_test

import (
	"fmt"
	"math"
	"testing"

	"pop"
)

type qJob struct {
	id     int
	demand float64
}

type qWorker struct {
	capacity float64
}

type qAlloc map[int]float64

func packingProblem(jobs []qJob, workers []qWorker) pop.Problem[qJob, qWorker, qAlloc] {
	return pop.Problem[qJob, qWorker, qAlloc]{
		Clients:    jobs,
		Resources:  workers,
		ClientLoad: func(j qJob) float64 { return j.demand },
		SolveSub: func(js []qJob, ws []qWorker, _ int) (qAlloc, error) {
			free := 0.0
			for _, w := range ws {
				free += w.capacity
			}
			out := qAlloc{}
			for _, j := range js {
				take := math.Min(j.demand, free)
				out[j.id] = take
				free -= take
			}
			return out, nil
		},
		Coalesce: func(allocs []qAlloc, _ [][]int) (qAlloc, error) {
			merged := qAlloc{}
			for _, a := range allocs {
				for id, v := range a {
					merged[id] += v
				}
			}
			return merged, nil
		},
	}
}

func TestSolveGenericRunner(t *testing.T) {
	jobs := make([]qJob, 200)
	totalDemand := 0.0
	for i := range jobs {
		jobs[i] = qJob{id: i, demand: 1 + float64(i%5)}
		totalDemand += jobs[i].demand
	}
	workers := make([]qWorker, 20)
	for i := range workers {
		workers[i] = qWorker{capacity: 40}
	}
	capacity := 20 * 40.0

	for _, k := range []int{1, 2, 5, 10} {
		got, err := pop.Solve(packingProblem(jobs, workers), pop.Options{K: k, Seed: 1, Parallel: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(got) != len(jobs) {
			t.Fatalf("k=%d: %d jobs allocated", k, len(got))
		}
		served := 0.0
		for id, v := range got {
			if v < 0 || v > jobs[id].demand+1e-9 {
				t.Fatalf("k=%d: job %d served %g of demand %g", k, id, v, jobs[id].demand)
			}
			served += v
		}
		want := math.Min(totalDemand, capacity)
		// With workers partitioned round-robin and clients randomly, every
		// sub-problem has capacity to serve its share: totals should match
		// the k=1 optimum here (demand < capacity).
		if math.Abs(served-want) > 1e-6*want {
			t.Fatalf("k=%d: served %g, want %g", k, served, want)
		}
	}
}

func TestSolveResourceSplitting(t *testing.T) {
	jobs := []qJob{{0, 5}, {1, 5}, {2, 5}, {3, 5}}
	workers := []qWorker{{capacity: 12}}
	p := packingProblem(jobs, workers)
	p.ScaleResource = func(w qWorker, k int) qWorker {
		return qWorker{capacity: w.capacity / float64(k)}
	}
	got, err := pop.Solve(p, pop.Options{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	served := 0.0
	for _, v := range got {
		served += v
	}
	// Capacity 12 split 4 ways: 3 per sub-problem, one job each → 12 total,
	// conserved exactly.
	if math.Abs(served-12) > 1e-9 {
		t.Fatalf("served %g, want 12", served)
	}
}

func TestSolveValidatesOptions(t *testing.T) {
	p := packingProblem([]qJob{{0, 1}}, []qWorker{{1}})
	if _, err := pop.Solve(p, pop.Options{K: 0}); err == nil {
		t.Fatal("K=0 must fail")
	}
}

func TestSolvePropagatesSubErrors(t *testing.T) {
	p := packingProblem(make([]qJob, 10), make([]qWorker, 4))
	p.SolveSub = func([]qJob, []qWorker, int) (qAlloc, error) {
		return nil, fmt.Errorf("sub boom")
	}
	if _, err := pop.Solve(p, pop.Options{K: 2}); err == nil {
		t.Fatal("expected sub-solver error")
	}
}

func TestPartitionReExport(t *testing.T) {
	groups := pop.Partition(30, 3, pop.Random, 7, nil)
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		for _, i := range g {
			seen[i] = true
		}
	}
	if len(seen) != 30 {
		t.Fatalf("covered %d clients", len(seen))
	}
}

func TestSplitClientsReExport(t *testing.T) {
	type c struct{ v float64 }
	out := pop.SplitClients([]c{{8}, {2}}, 1.0,
		func(x c) float64 { return x.v },
		func(x c) (c, c) { return c{x.v / 2}, c{x.v / 2} })
	if len(out) != 4 {
		t.Fatalf("got %d virtual clients, want 4", len(out))
	}
	total := 0.0
	for _, vc := range out {
		total += vc.Client.v
	}
	if total != 10 {
		t.Fatalf("load not conserved: %g", total)
	}
}

func TestEvenSplitReExport(t *testing.T) {
	parts := pop.EvenSplit(7, 3)
	if parts[0]+parts[1]+parts[2] != 7 {
		t.Fatalf("EvenSplit = %v", parts)
	}
}

func TestSplitResourceReExport(t *testing.T) {
	out := pop.SplitResource([]qWorker{{10}}, 5, func(w qWorker, k int) qWorker {
		return qWorker{capacity: w.capacity / float64(k)}
	})
	if len(out) != 5 || out[0][0].capacity != 2 {
		t.Fatalf("SplitResource = %v", out)
	}
}
