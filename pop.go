// Package pop is the public API of this repository: a Go implementation of
// POP — Partitioned Optimization Problems (Narayanan et al., SOSP 2021) —
// for solving large granular resource-allocation problems quickly.
//
// POP splits a large allocation problem into k sub-problems, each holding a
// random subset of the clients and 1/k of the resources, solves every
// sub-problem with the unchanged original formulation (in parallel), and
// coalesces the sub-allocations. On granular problems (many clients, each
// requesting a small resource share, fungible resources) the result is
// within a few percent of optimal at a fraction of the runtime.
//
// This package exposes the domain-independent machinery:
//
//   - Options, Strategy, Partition: client partitioning,
//   - SplitClients (Algorithm 2) and SplitResource: granularization,
//   - Solve: the generic partition → map → reduce runner,
//   - ParallelMap, Gather, EvenSplit: building blocks for custom adapters.
//
// Complete case-study adapters (traffic engineering, cluster scheduling,
// shard load balancing), the LP/MILP solvers they are built on, and the
// benchmark harness for every figure in the paper live under internal/; the
// examples/ directory shows both styles of use.
package pop

import (
	"pop/internal/core"
)

// Options bundles the standard POP knobs; see core.Options.
type Options = core.Options

// Strategy selects how clients are assigned to sub-problems.
type Strategy = core.Strategy

// Partitioning strategies.
const (
	// Random is POP's default: shuffle clients, deal round-robin.
	Random = core.Random
	// PowerOfTwo assigns each client to the better of two random
	// sub-problems.
	PowerOfTwo = core.PowerOfTwo
	// Skewed deliberately concentrates similar clients (a bad partition,
	// for ablations).
	Skewed = core.Skewed
	// RoundRobin deals clients in index order (deterministic).
	RoundRobin = core.RoundRobin
)

// VirtualClient tags a (possibly split) client with its original index.
type VirtualClient[C any] = core.VirtualClient[C]

// Partition assigns n clients to k sub-problems; see core.Partition.
func Partition(n, k int, strategy Strategy, seed int64, load func(i int) float64) [][]int {
	return core.Partition(n, k, strategy, seed, load)
}

// SplitClients is Algorithm 2 of the paper: repeatedly halve the largest
// client by its splitting attribute until (1+t)·n virtual clients exist.
func SplitClients[C any](clients []C, t float64, load func(C) float64, split func(C) (C, C)) []VirtualClient[C] {
	return core.SplitClients(clients, t, load, split)
}

// SplitResource gives every sub-problem a copy of each resource at 1/k
// capacity (the paper's resource splitting).
func SplitResource[R any](resources []R, k int, scale func(r R, k int) R) [][]R {
	return core.SplitResource(resources, k, scale)
}

// Gather materializes client subsets selected by Partition's index groups.
func Gather[T any](items []T, groups [][]int) [][]T {
	return core.Gather(items, groups)
}

// EvenSplit divides m indistinguishable resource units across k
// sub-problems as evenly as possible.
func EvenSplit(m, k int) []int {
	return core.EvenSplit(m, k)
}

// ParallelMap runs f(part) for part in [0,k), concurrently when parallel.
func ParallelMap(k int, parallel bool, f func(part int) error) error {
	return core.ParallelMap(k, parallel, f)
}

// Problem describes a granular allocation problem to the generic Solve
// runner. Clients are partitioned per Options; Resources are either split
// (each sub-problem sees every resource at 1/k capacity, when ScaleResource
// is set) or partitioned evenly round-robin.
type Problem[C, R, A any] struct {
	Clients   []C
	Resources []R

	// ClientLoad reads the partition-balancing attribute (may be nil).
	ClientLoad func(C) float64

	// ScaleResource, when non-nil, enables resource splitting: it must
	// return a copy of r with capacity divided by k.
	ScaleResource func(r R, k int) R

	// SolveSub solves one sub-problem over the given client and resource
	// subsets. part identifies the sub-problem.
	SolveSub func(clients []C, resources []R, part int) (A, error)

	// Coalesce reduces the k sub-allocations into one. groups[p] lists the
	// original client indices assigned to sub-problem p.
	Coalesce func(allocs []A, groups [][]int) (A, error)
}

// Solve runs the POP procedure: partition clients, split or partition
// resources, map (optionally in parallel), and reduce.
func Solve[C, R, A any](p Problem[C, R, A], opts Options) (A, error) {
	var zero A
	if err := opts.Validate(); err != nil {
		return zero, err
	}
	if p.SolveSub == nil || p.Coalesce == nil {
		panic("pop: Problem requires SolveSub and Coalesce")
	}
	k := opts.K
	load := p.ClientLoad
	var loadFn func(int) float64
	if load != nil {
		loadFn = func(i int) float64 { return load(p.Clients[i]) }
	}
	groups := core.Partition(len(p.Clients), k, opts.Strategy, opts.Seed, loadFn)
	k = len(groups)
	clientSets := core.Gather(p.Clients, groups)

	var resourceSets [][]R
	if p.ScaleResource != nil {
		resourceSets = core.SplitResource(p.Resources, k, p.ScaleResource)
	} else {
		rGroups := core.Partition(len(p.Resources), k, core.RoundRobin, opts.Seed, nil)
		resourceSets = core.Gather(p.Resources, rGroups)
	}

	allocs := make([]A, k)
	err := core.ParallelMap(k, opts.Parallel, func(part int) error {
		a, err := p.SolveSub(clientSets[part], resourceSets[part], part)
		allocs[part] = a
		return err
	})
	if err != nil {
		return zero, err
	}
	return p.Coalesce(allocs, groups)
}
