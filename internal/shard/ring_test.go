package shard

import "testing"

// TestRingDeterministic: two rings over the same worker count map every id
// identically — the property worker rebuild and coordinator restart rely on
// (membership is recomputable, never persisted).
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(5), NewRing(5)
	for id := 0; id < 10_000; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("id %d: ring instances disagree (%d vs %d)", id, a.Owner(id), b.Owner(id))
		}
	}
}

// TestRingBounds: owners stay in range, single-worker rings map everything
// to 0, and degenerate constructions are clamped.
func TestRingBounds(t *testing.T) {
	r := NewRing(4)
	for id := -100; id < 10_000; id++ {
		if w := r.Owner(id); w < 0 || w >= 4 {
			t.Fatalf("id %d: owner %d out of range", id, w)
		}
	}
	one := NewRing(1)
	for id := 0; id < 100; id++ {
		if one.Owner(id) != 0 {
			t.Fatalf("single-worker ring sent id %d to %d", id, one.Owner(id))
		}
	}
	if NewRing(0).NumWorkers() != 1 {
		t.Fatal("NewRing(0) did not clamp to one worker")
	}
	if NewRingReplicas(3, 0).Owner(7) < 0 {
		t.Fatal("zero-replica ring unusable")
	}
}

// TestRingBalance: with 64 virtual points per worker the shard sizes stay
// within a loose factor of fair share — the load-spread property that makes
// per-shard engines comparably sized.
func TestRingBalance(t *testing.T) {
	const workers, ids = 4, 40_000
	r := NewRing(workers)
	counts := make([]int, workers)
	for id := 0; id < ids; id++ {
		counts[r.Owner(id)]++
	}
	fair := ids / workers
	for w, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("worker %d owns %d of %d ids (fair share %d): ring badly unbalanced %v",
				w, n, ids, fair, counts)
		}
	}
}

// TestRingStability: growing the ring by one worker moves only a modest
// fraction of ids — the consistent-hashing property.
func TestRingStability(t *testing.T) {
	const ids = 20_000
	small, big := NewRing(4), NewRing(5)
	moved := 0
	for id := 0; id < ids; id++ {
		if small.Owner(id) != big.Owner(id) {
			moved++
		}
	}
	// Ideal is 1/5 = 20%; allow slop for the 64-point granularity.
	if frac := float64(moved) / ids; frac > 0.45 {
		t.Fatalf("adding one worker moved %.0f%% of ids; want ≲ 45%%", frac*100)
	}
}
