package shard

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/cluster"
	"pop/internal/obs"
)

// WorkerOptions configure a shard worker.
type WorkerOptions struct {
	// Token authenticates coordinator requests (empty disables auth).
	Token Token
	// StateFile, when non-empty, persists the engine's warm state after
	// every round (asynchronously, last-writer-wins) and restores it at
	// construction, so a restarted worker re-warms instead of cold-starting
	// and usually rejoins without a registry sync at all.
	StateFile string
	// Obs receives worker telemetry; its registry backs GET /metrics.
	Obs *obs.Observer
	Log *slog.Logger
}

// Worker owns one shard's persistent engine across rounds and serves the
// coordinator protocol: rounds apply the shard's mutation batch and re-solve
// (models, bases, and prices stay warm in-process between rounds), syncs
// reconcile the engine against the coordinator's authoritative registry.
type Worker struct {
	b    *EngineBundle
	opts WorkerOptions
	log  *slog.Logger

	// mu serializes rounds and syncs — the engine is single-threaded state.
	mu        sync.Mutex
	lastRound int

	saving atomic.Bool
}

// NewWorker wraps an engine bundle in the shard protocol. If a state file
// is configured and present, the engine is restored from it (a corrupt or
// mismatched file is logged and ignored — the worker starts fresh and the
// coordinator syncs it).
func NewWorker(b *EngineBundle, opts WorkerOptions) *Worker {
	if opts.Log == nil {
		opts.Log = slog.New(slog.DiscardHandler)
	}
	w := &Worker{b: b, opts: opts, log: opts.Log}
	if opts.StateFile != "" {
		w.restoreState()
	}
	return w
}

// LastRound reports the last round the worker applied.
func (w *Worker) LastRound() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastRound
}

// Handler returns the worker's HTTP surface. Round and sync mutate engine
// state and sit behind the bearer token; health and metrics are read-only
// probes and stay open.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST "+PathRound, w.opts.Token.Middleware(http.HandlerFunc(w.handleRound)))
	mux.Handle("POST "+PathSync, w.opts.Token.Middleware(http.HandlerFunc(w.handleSync)))
	mux.HandleFunc("GET "+PathHealth, w.handleHealth)
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		if w.opts.Obs == nil || w.opts.Obs.Metrics == nil {
			http.Error(rw, "no metrics registry", http.StatusNotFound)
			return
		}
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.opts.Obs.Metrics.WritePrometheus(rw)
	})
	return mux
}

func (w *Worker) handleRound(rw http.ResponseWriter, r *http.Request) {
	var req RoundRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad round request: %v", err)})
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Behind the coordinator: a mutation batch passed us by (crash, lost
	// state). 409 tells the coordinator to sync us from the registry.
	// Ahead (the coordinator wrote a previous round of ours off as
	// straggling after we finished it) is fine: unacked batches are
	// re-queued and idempotent, so applying this one is safe.
	if req.PrevRound > w.lastRound {
		w.obsCounter("pop_shard_worker_out_of_sync_total", "rounds rejected pending a registry sync").Inc()
		writeJSON(rw, http.StatusConflict, errorResponse{Error: "out of sync", LastRound: w.lastRound})
		return
	}
	start := time.Now()
	for _, s := range req.Upserts {
		w.b.Engine.Upsert(s.Job())
	}
	for _, id := range req.Removes {
		w.b.Engine.Remove(id)
	}
	c := cluster.Cluster{TypeNames: req.TypeNames, NumGPUs: req.GPUs}
	jobs := w.b.Engine.Jobs()
	resp := RoundResponse{
		Round:   req.Round,
		NumJobs: len(jobs),
		Kind:    w.b.Kind,
		IDs:     make([]int, len(jobs)),
		EffThr:  make([]float64, len(jobs)),
	}
	if len(jobs) > 0 {
		alloc, err := w.b.Engine.Step(jobs, c)
		if err != nil {
			writeJSON(rw, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("round %d failed: %v", req.Round, err)})
			return
		}
		width := 0
		if alloc.X != nil && len(alloc.X) == len(jobs) {
			for _, row := range alloc.X {
				if len(row) > width {
					width = len(row)
				}
			}
			resp.X = make([]float64, 0, len(jobs)*width)
		}
		for i, j := range jobs {
			resp.IDs[i] = j.ID
			resp.EffThr[i] = alloc.EffThr[i]
			if resp.X != nil {
				row := alloc.X[i]
				resp.X = append(resp.X, row...)
				for pad := len(row); pad < width; pad++ {
					resp.X = append(resp.X, 0)
				}
			}
		}
	}
	w.lastRound = req.Round
	resp.SolveMs = float64(time.Since(start).Microseconds()) / 1000
	if stats, err := json.Marshal(w.b.Stats()); err == nil {
		resp.Stats = stats
	}
	w.obsCounter("pop_shard_worker_rounds_total", "rounds this worker applied").Inc()
	if o := w.opts.Obs; o != nil {
		o.Histogram("pop_shard_worker_round_seconds", "per-round apply+solve wall time").
			Observe(time.Since(start).Seconds())
	}
	w.log.Debug("shard round", "round", req.Round, "jobs", len(jobs),
		"upserts", len(req.Upserts), "removes", len(req.Removes), "solve_ms", resp.SolveMs)
	w.saveStateAsync()
	writeJSON(rw, http.StatusOK, resp)
}

// handleSync reconciles the engine against the coordinator's registry:
// upsert everything listed, remove everything else. Unchanged jobs no-op in
// the engines, so whatever warm state survived (a state-file restore, or a
// straggle the coordinator mistook for a crash) is kept.
func (w *Worker) handleSync(rw http.ResponseWriter, r *http.Request) {
	var req SyncRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad sync request: %v", err)})
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	held := make(map[int]bool)
	for _, j := range w.b.Engine.Jobs() {
		held[j.ID] = true
	}
	resp := SyncResponse{Round: req.Round}
	for _, s := range req.Jobs {
		if held[s.ID] {
			resp.Kept++
			delete(held, s.ID)
		} else {
			resp.Added++
		}
		w.b.Engine.Upsert(s.Job())
	}
	for id := range held {
		w.b.Engine.Remove(id)
		resp.Removed++
	}
	w.lastRound = req.Round
	w.obsCounter("pop_shard_worker_syncs_total", "registry reconciles applied").Inc()
	w.log.Info("shard sync", "round", req.Round,
		"kept", resp.Kept, "added", resp.Added, "removed", resp.Removed)
	writeJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleHealth(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	resp := HealthResponse{OK: true, LastRound: w.lastRound, NumJobs: len(w.b.Engine.Jobs()), Kind: w.b.Kind}
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, resp)
}

// workerState is the on-disk shape of a worker's -state-file.
type workerState struct {
	LastRound int             `json:"last_round"`
	Engine    json.RawMessage `json:"engine"`
}

// SaveState synchronously persists the engine snapshot (graceful shutdown).
func (w *Worker) SaveState() error {
	if w.opts.StateFile == "" {
		return nil
	}
	w.mu.Lock()
	st, err := w.snapshotLocked()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return writeFileAtomic(w.opts.StateFile, st)
}

func (w *Worker) snapshotLocked() ([]byte, error) {
	eng, err := w.b.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(workerState{LastRound: w.lastRound, Engine: eng})
}

// saveStateAsync snapshots under the held lock (cheap struct copies) and
// writes in the background, skipping when a write is already in flight —
// a best-effort checkpoint, with SaveState as the synchronous barrier.
func (w *Worker) saveStateAsync() {
	if w.opts.StateFile == "" || !w.saving.CompareAndSwap(false, true) {
		return
	}
	st, err := w.snapshotLocked()
	if err != nil {
		w.saving.Store(false)
		w.log.Warn("state snapshot failed", "err", err)
		return
	}
	go func() {
		defer w.saving.Store(false)
		if err := writeFileAtomic(w.opts.StateFile, st); err != nil {
			w.log.Warn("state save failed", "err", err)
		}
	}()
}

func (w *Worker) restoreState() {
	raw, err := os.ReadFile(w.opts.StateFile)
	if err != nil {
		if !os.IsNotExist(err) {
			w.log.Warn("state file unreadable; starting fresh", "file", w.opts.StateFile, "err", err)
		}
		return
	}
	var st workerState
	if err := json.Unmarshal(raw, &st); err != nil {
		w.log.Warn("state file corrupt; starting fresh", "file", w.opts.StateFile, "err", err)
		return
	}
	if err := w.b.Restore(st.Engine); err != nil {
		w.log.Warn("state restore rejected; starting fresh", "file", w.opts.StateFile, "err", err)
		return
	}
	w.lastRound = st.LastRound
	w.log.Info("state restored", "file", w.opts.StateFile,
		"round", st.LastRound, "jobs", len(w.b.Engine.Jobs()))
}

func (w *Worker) obsCounter(name, help string) *obs.Counter {
	return w.opts.Obs.Counter(name, help)
}

func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".state-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
