package shard

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
	"strings"
)

// Token is a shared-secret bearer token. Comparison hashes both sides before
// the constant-time compare so tokens of different lengths take the same
// time — the length itself never leaks through timing.
type Token string

// Authorize reports whether the request carries the token. An empty token
// disables authentication (every request passes).
func (t Token) Authorize(r *http.Request) bool {
	if t == "" {
		return true
	}
	h := r.Header.Get("Authorization")
	presented, ok := strings.CutPrefix(h, "Bearer ")
	if !ok {
		return false
	}
	want := sha256.Sum256([]byte(t))
	got := sha256.Sum256([]byte(presented))
	return subtle.ConstantTimeCompare(want[:], got[:]) == 1
}

// Set stamps the Authorization header onto an outgoing request (no-op for
// an empty token).
func (t Token) Set(r *http.Request) {
	if t != "" {
		r.Header.Set("Authorization", "Bearer "+string(t))
	}
}

// Middleware wraps a handler with bearer-token authentication, answering
// 401 with a JSON error on a missing or mismatched token.
func (t Token) Middleware(next http.Handler) http.Handler {
	if t == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !t.Authorize(r) {
			writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "missing or invalid bearer token"})
			return
		}
		next.ServeHTTP(w, r)
	})
}
