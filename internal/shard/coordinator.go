package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"pop/internal/cluster"
	"pop/internal/obs"
)

// CoordinatorOptions configure a sharded round coordinator.
type CoordinatorOptions struct {
	// Deadline bounds each round's scatter/gather, including any registry
	// sync a worker needs first. A worker that misses it is a straggler:
	// its clients are served last round's allocation, flagged stale, and
	// its unacked mutation batch stays queued for the next round. 0 means
	// 10s.
	Deadline time.Duration
	// Token authenticates coordinator→worker requests.
	Token Token
	// Obs receives round telemetry: a "shard.round" span with per-worker
	// "shard.gather" lanes, straggler/rebuild counters, and gather-latency
	// histograms.
	Obs *obs.Observer
	Log *slog.Logger
	// Client overrides the HTTP client (tests inject httptest transports).
	Client *http.Client
}

func (o CoordinatorOptions) deadline() time.Duration {
	if o.Deadline <= 0 {
		return 10 * time.Second
	}
	return o.Deadline
}

// allocRow is one client's slice of a worker's last gathered allocation.
type allocRow struct {
	x      []float64
	effThr float64
}

// workerConn is the coordinator's view of one shard worker: its address,
// the last round it acked, the allocation it last returned, and the
// mutation batch queued for it. Batches clear only on ack — a straggling or
// crashed worker's batch is re-sent (idempotently) until a round lands.
type workerConn struct {
	url      string
	ackRound int
	stale    bool
	needSync bool
	alloc    map[int]allocRow
	numOwned int // registry clients hashed onto this worker
	kind     string
	stats    json.RawMessage
	solveMs  float64
	numJobs  int

	stragglers int64
	rebuilds   int64

	pendUp map[int]cluster.Job
	pendRm map[int]bool
}

// WorkerStatus is one worker's externally visible state (served by
// popserver's /v1/stats in coordinator mode).
type WorkerStatus struct {
	URL        string          `json:"url"`
	Round      int             `json:"round"`
	Stale      bool            `json:"stale"`
	Jobs       int             `json:"jobs"`
	SolveMs    float64         `json:"solve_ms"`
	Stragglers int64           `json:"stragglers"`
	Rebuilds   int64           `json:"rebuilds"`
	Kind       string          `json:"kind,omitempty"`
	Stats      json.RawMessage `json:"stats,omitempty"`
}

// Coordinator fans scheduling rounds out over shard-worker processes. It
// consistent-hashes clients onto workers, keeps the authoritative client
// registry (the rebuild source for a crashed worker), and runs each round
// as a deadline-bounded scatter/gather. It satisfies Engine, so popserver
// drives it exactly like an in-process engine. Not safe for concurrent use
// (popserver serializes rounds under its engine mutex).
type Coordinator struct {
	opts   CoordinatorOptions
	log    *slog.Logger
	client *http.Client
	ring   *Ring

	workers  []*workerConn
	registry map[int]cluster.Job
	round    int
	c        cluster.Cluster
	haveC    bool

	lastStale []bool
	staleJobs int
}

// NewCoordinator builds a coordinator over the given worker base URLs.
func NewCoordinator(workerURLs []string, opts CoordinatorOptions) (*Coordinator, error) {
	if len(workerURLs) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one worker URL")
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.DiscardHandler)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{
		opts:     opts,
		log:      opts.Log,
		client:   client,
		ring:     NewRing(len(workerURLs)),
		workers:  make([]*workerConn, len(workerURLs)),
		registry: make(map[int]cluster.Job),
	}
	for i, u := range workerURLs {
		c.workers[i] = &workerConn{
			url:    u,
			alloc:  map[int]allocRow{},
			pendUp: map[int]cluster.Job{},
			pendRm: map[int]bool{},
		}
	}
	return c, nil
}

// NumWorkers reports the shard count.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// Round reports the last completed round.
func (c *Coordinator) Round() int { return c.round }

// Owner reports which worker a client id hashes to.
func (c *Coordinator) Owner(id int) int { return c.ring.Owner(id) }

// Upsert registers (or updates) a client and queues the mutation for its
// shard's next round.
func (c *Coordinator) Upsert(j cluster.Job) {
	w := c.workers[c.ring.Owner(j.ID)]
	if _, known := c.registry[j.ID]; !known {
		w.numOwned++
	}
	c.registry[j.ID] = j
	w.pendUp[j.ID] = j
	delete(w.pendRm, j.ID)
}

// Remove drops a client from the registry and queues the removal.
func (c *Coordinator) Remove(id int) bool {
	if _, ok := c.registry[id]; !ok {
		return false
	}
	delete(c.registry, id)
	w := c.workers[c.ring.Owner(id)]
	w.numOwned--
	w.pendRm[id] = true
	delete(w.pendUp, id)
	return true
}

// Jobs returns the registered clients in ascending-ID order.
func (c *Coordinator) Jobs() []cluster.Job {
	out := make([]cluster.Job, 0, len(c.registry))
	for _, j := range c.registry {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// NumJobs reports the registered client count.
func (c *Coordinator) NumJobs() int { return len(c.registry) }

// SetCluster installs a new resource pool; workers receive their 1/W slice
// with the next round's scatter.
func (c *Coordinator) SetCluster(pool cluster.Cluster) {
	c.c = pool
	c.haveC = true
}

// LastStale returns the per-client stale flags of the last Step, aligned
// with its active slice: true when the client's worker missed the round
// deadline (the row is last round's allocation) or has no row for it yet.
func (c *Coordinator) LastStale() []bool { return c.lastStale }

// StaleJobs reports how many clients the last Step served stale.
func (c *Coordinator) StaleJobs() int { return c.staleJobs }

// Status snapshots every worker's externally visible state.
func (c *Coordinator) Status() []WorkerStatus {
	out := make([]WorkerStatus, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerStatus{
			URL:        w.url,
			Round:      w.ackRound,
			Stale:      w.stale,
			Jobs:       w.numJobs,
			SolveMs:    w.solveMs,
			Stragglers: w.stragglers,
			Rebuilds:   w.rebuilds,
			Kind:       w.kind,
			Stats:      w.stats,
		}
	}
	return out
}

// gatherResult is one worker's outcome for a round.
type gatherResult struct {
	resp     *RoundResponse
	err      error
	rebuilds int64
}

// Step applies the diff between the registry and the active set, then runs
// one scatter/gather round: each worker gets its shard's mutation batch and
// 1/W of the pool, solves its partition on its own persistent engine, and
// returns its allocation. Workers that miss the deadline (or fail) keep
// serving last round's rows, flagged stale; a worker that reports being out
// of sync is rebuilt from the registry first, inside the same deadline.
func (c *Coordinator) Step(active []cluster.Job, pool cluster.Cluster) (*cluster.Allocation, error) {
	c.SetCluster(pool)
	seen := make(map[int]bool, len(active))
	for _, j := range active {
		seen[j.ID] = true
		if old, ok := c.registry[j.ID]; !ok || !jobsEqual(old, j) {
			c.Upsert(j)
		}
	}
	for id := range c.registry {
		if !seen[id] {
			c.Remove(id)
		}
	}

	c.round++
	round := c.round
	sub := pool.Split(len(c.workers))
	o := c.opts.Obs
	span := o.Span("shard.round").Arg("round", round).Arg("workers", len(c.workers))
	start := time.Now()

	ctx, cancel := context.WithTimeout(context.Background(), c.opts.deadline())
	defer cancel()

	baseTID := 0
	if o != nil {
		baseTID = o.TID
	}
	results := make([]gatherResult, len(c.workers))
	var wg sync.WaitGroup
	for i := range c.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wo := o.WithTID(baseTID + 1 + i)
			sp := wo.Span("shard.gather").Arg("worker", i)
			results[i] = c.gatherOne(ctx, i, round, sub)
			sp.Arg("ok", results[i].err == nil).End()
		}(i)
	}
	wg.Wait()

	stragglers := 0
	for i, w := range c.workers {
		res := results[i]
		w.rebuilds += res.rebuilds
		if res.rebuilds > 0 {
			o.Counter("pop_shard_rebuilds_total", "workers rebuilt from the client registry").Add(res.rebuilds)
		}
		if res.err != nil {
			// Straggler or crash: keep last round's allocation, keep the
			// unacked batch queued, and let the health of the next round
			// decide whether a sync is needed (a crashed worker will 409).
			w.stale = true
			w.stragglers++
			stragglers++
			o.Counter("pop_shard_stragglers_total", "worker rounds lost to the deadline or errors").Inc()
			c.log.Warn("shard straggler", "worker", i, "url", w.url, "round", round, "err", res.err)
			continue
		}
		resp := res.resp
		w.stale = false
		w.ackRound = round
		w.kind = resp.Kind
		w.stats = resp.Stats
		w.solveMs = resp.SolveMs
		w.numJobs = resp.NumJobs
		w.pendUp = map[int]cluster.Job{}
		w.pendRm = map[int]bool{}
		// A worker holding a different client count than the registry says
		// it owns has zombie or missing clients (e.g. the coordinator
		// restarted with a cold registry); reconcile it next round.
		w.needSync = resp.NumJobs != w.numOwned
		width := 0
		if len(resp.IDs) > 0 && len(resp.X) > 0 {
			width = len(resp.X) / len(resp.IDs)
		}
		alloc := make(map[int]allocRow, len(resp.IDs))
		for k, id := range resp.IDs {
			row := allocRow{effThr: resp.EffThr[k]}
			if width > 0 {
				row.x = resp.X[k*width : (k+1)*width]
			}
			alloc[id] = row
		}
		w.alloc = alloc
		o.Histogram(`pop_shard_worker_seconds{worker="`+strconv.Itoa(i)+`"}`,
			"per-worker round latency as observed by the coordinator").Observe(resp.SolveMs / 1000)
	}

	out, stale, staleJobs := c.merge(active)
	c.lastStale, c.staleJobs = stale, staleJobs
	dur := time.Since(start)
	o.Counter("pop_shard_rounds_total", "completed scatter/gather rounds").Inc()
	o.Histogram("pop_shard_gather_seconds", "scatter/gather round wall time").Observe(dur.Seconds())
	o.Gauge("pop_shard_stale_jobs", "clients served a stale allocation in the last round").Set(float64(staleJobs))
	o.Gauge("pop_shard_stale_workers", "workers stale after the last round").Set(float64(stragglers))
	span.Arg("stragglers", stragglers).Arg("stale_jobs", staleJobs).End()
	c.log.Info("shard round", "round", round, "jobs", len(active),
		"stragglers", stragglers, "stale_jobs", staleJobs,
		"gather_ms", float64(dur.Microseconds())/1000)
	return out, nil
}

// gatherOne runs one worker's slice of the round: an optional registry sync
// (when flagged, or on a 409), then the round request.
func (c *Coordinator) gatherOne(ctx context.Context, i, round int, sub cluster.Cluster) gatherResult {
	w := c.workers[i]
	var rebuilds int64
	if w.needSync {
		if err := c.syncWorker(ctx, i, round-1, sub); err != nil {
			return gatherResult{err: fmt.Errorf("sync: %w", err), rebuilds: rebuilds}
		}
		rebuilds++
	}
	req := c.buildRound(i, round, sub)
	var resp RoundResponse
	status, err := c.post(ctx, w.url+PathRound, req, &resp)
	if status == http.StatusConflict {
		// The worker is behind (fresh process, lost state): rebuild it from
		// the registry, then retry the round inside the same deadline.
		if err := c.syncWorker(ctx, i, round-1, sub); err != nil {
			return gatherResult{err: fmt.Errorf("sync after conflict: %w", err), rebuilds: rebuilds}
		}
		rebuilds++
		req.PrevRound = round - 1
		resp = RoundResponse{}
		status, err = c.post(ctx, w.url+PathRound, req, &resp)
	}
	if err != nil {
		return gatherResult{err: err, rebuilds: rebuilds}
	}
	if status != http.StatusOK {
		return gatherResult{err: fmt.Errorf("round status %d", status), rebuilds: rebuilds}
	}
	return gatherResult{resp: &resp, rebuilds: rebuilds}
}

// buildRound assembles worker i's scatter payload: the queued batch in
// deterministic (ascending-id) order — the order the single-process engine
// equivalence relies on — and the shard's capacity slice.
func (c *Coordinator) buildRound(i, round int, sub cluster.Cluster) *RoundRequest {
	w := c.workers[i]
	req := &RoundRequest{
		Round:     round,
		PrevRound: w.ackRound,
		TypeNames: sub.TypeNames,
		GPUs:      sub.NumGPUs,
	}
	if len(w.pendUp) > 0 {
		ids := make([]int, 0, len(w.pendUp))
		for id := range w.pendUp {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		req.Upserts = make([]JobSpec, len(ids))
		for k, id := range ids {
			req.Upserts[k] = SpecOf(w.pendUp[id])
		}
	}
	if len(w.pendRm) > 0 {
		req.Removes = make([]int, 0, len(w.pendRm))
		for id := range w.pendRm {
			req.Removes = append(req.Removes, id)
		}
		sort.Ints(req.Removes)
	}
	return req
}

// syncWorker rebuilds worker i from the authoritative registry: the full
// client set of its shard, as of baseRound (this round's mutations are
// already folded into the registry; the retried round request re-applies
// them idempotently).
func (c *Coordinator) syncWorker(ctx context.Context, i, baseRound int, sub cluster.Cluster) error {
	w := c.workers[i]
	ids := make([]int, 0, w.numOwned)
	for id := range c.registry {
		if c.ring.Owner(id) == i {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	req := &SyncRequest{Round: baseRound, TypeNames: sub.TypeNames, GPUs: sub.NumGPUs}
	req.Jobs = make([]JobSpec, len(ids))
	for k, id := range ids {
		req.Jobs[k] = SpecOf(c.registry[id])
	}
	var resp SyncResponse
	status, err := c.post(ctx, w.url+PathSync, req, &resp)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("sync status %d", status)
	}
	w.needSync = false
	c.log.Info("shard rebuild", "worker", i, "url", w.url, "base_round", baseRound,
		"jobs", len(req.Jobs), "kept_warm", resp.Kept)
	return nil
}

// merge composes the per-worker allocations onto the active order — POP's
// reduce step across processes. Clients of stale workers get their last
// gathered row (or a zero row if the worker never allocated them), flagged.
func (c *Coordinator) merge(active []cluster.Job) (*cluster.Allocation, []bool, int) {
	r := c.c.NumTypes()
	out := &cluster.Allocation{
		X:      make([][]float64, len(active)),
		EffThr: make([]float64, len(active)),
	}
	stale := make([]bool, len(active))
	staleJobs, haveX := 0, false
	for pos, j := range active {
		w := c.workers[c.ring.Owner(j.ID)]
		row, ok := w.alloc[j.ID]
		if ok && row.x != nil {
			haveX = true
			out.X[pos] = append([]float64(nil), row.x...)
		} else {
			out.X[pos] = make([]float64, r)
		}
		if ok {
			out.EffThr[pos] = row.effThr
		}
		if w.stale || !ok {
			stale[pos] = true
			staleJobs++
		}
	}
	if !haveX {
		out.X = nil
	}
	return out, stale, staleJobs
}

// post sends one JSON request and decodes the JSON answer, returning the
// HTTP status (0 on transport errors). Error bodies decode into err.
func (c *Coordinator) post(ctx context.Context, url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.opts.Token.Set(req)
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s: %s", url, e.Error)
		}
		return resp.StatusCode, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, fmt.Errorf("%s: bad response: %w", url, err)
	}
	return resp.StatusCode, nil
}

// jobsEqual mirrors online.ClusterEngine's unchanged-resubmission check so
// the coordinator's no-op detection matches the engines'.
func jobsEqual(a, b cluster.Job) bool {
	if a.Weight != b.Weight || a.Scale != b.Scale || a.NumSteps != b.NumSteps ||
		a.Priority != b.Priority || a.MemFrac != b.MemFrac || len(a.Throughput) != len(b.Throughput) {
		return false
	}
	for i := range a.Throughput {
		if a.Throughput[i] != b.Throughput[i] {
			return false
		}
	}
	return true
}
