package shard

import (
	"encoding/json"

	"pop/internal/cluster"
)

// Wire paths of the coordinator↔worker protocol. HTTP/JSON matches the
// popserver idiom: the same tooling (curl, httptest) drives both surfaces.
const (
	// PathRound is the scatter step: one POST per worker per round carrying
	// that shard's mutation batch and sub-capacity, answered with the
	// shard's fresh allocation.
	PathRound = "/shard/v1/round"
	// PathSync is the rebuild step: the coordinator's authoritative client
	// registry for the shard, reconciled idempotently into the worker.
	PathSync = "/shard/v1/sync"
	// PathHealth reports liveness and the worker's last applied round.
	PathHealth = "/shard/v1/health"
)

// JobSpec is the wire form of one client (a cluster job). It mirrors
// cluster.Job field for field so specs round-trip exactly — float64 survives
// encoding/json bit-for-bit, which is what lets the sharded-vs-single-process
// equivalence suite pin allocations to 1e-6.
type JobSpec struct {
	ID         int       `json:"id"`
	Throughput []float64 `json:"throughput"`
	Weight     float64   `json:"weight,omitempty"`
	Scale      float64   `json:"scale,omitempty"`
	NumSteps   float64   `json:"num_steps,omitempty"`
	MemFrac    float64   `json:"mem_frac,omitempty"`
	Priority   float64   `json:"priority,omitempty"`
}

// Job converts the wire spec to the engine type.
func (s JobSpec) Job() cluster.Job {
	return cluster.Job{
		ID:         s.ID,
		Throughput: s.Throughput,
		Weight:     s.Weight,
		Scale:      s.Scale,
		NumSteps:   s.NumSteps,
		MemFrac:    s.MemFrac,
		Priority:   s.Priority,
	}
}

// SpecOf converts an engine job to its wire form.
func SpecOf(j cluster.Job) JobSpec {
	return JobSpec{
		ID:         j.ID,
		Throughput: j.Throughput,
		Weight:     j.Weight,
		Scale:      j.Scale,
		NumSteps:   j.NumSteps,
		MemFrac:    j.MemFrac,
		Priority:   j.Priority,
	}
}

// RoundRequest is the scatter payload for one worker: the round to run, the
// mutations batched for its shard since the last acked round, and the
// shard's slice of the resource pool (the coordinator owns the 1/W split, so
// workers never need to know the fleet size).
//
// PrevRound is the last round the coordinator saw this worker ack. A worker
// whose own last applied round is *behind* PrevRound has missed a mutation
// batch (it crashed and restarted, or lost its state) and must answer 409 so
// the coordinator reconciles it from the registry first. A worker *ahead* of
// PrevRound finished a round the coordinator had already written off as
// straggling; since the coordinator re-queues every unacked batch and all
// mutations are idempotent (upserts carry full specs, removes are by id),
// re-applying is safe and the worker just proceeds.
type RoundRequest struct {
	Round     int       `json:"round"`
	PrevRound int       `json:"prev_round"`
	TypeNames []string  `json:"gpu_types,omitempty"`
	GPUs      []float64 `json:"gpus"`
	Upserts   []JobSpec `json:"upserts,omitempty"`
	Removes   []int     `json:"removes,omitempty"`
}

// RoundResponse is one shard's gather payload. The allocation is columnar —
// parallel arrays instead of per-job objects — because at servebench scale
// (a million clients) the JSON encode/decode of the gather is a first-order
// cost and arrays are several times cheaper than an object per job.
type RoundResponse struct {
	Round   int     `json:"round"`
	NumJobs int     `json:"num_jobs"`
	SolveMs float64 `json:"solve_ms"`
	// IDs, EffThr, and X carry the shard's allocation: EffThr[i] is job
	// IDs[i]'s effective throughput and X[i*r:(i+1)*r] its per-type time
	// fractions (absent for policies that do not expose per-type rows).
	IDs    []int     `json:"ids"`
	EffThr []float64 `json:"eff_thr"`
	X      []float64 `json:"x,omitempty"`
	// Kind names the engine ("lp" or "price"); Stats is its counter
	// snapshot, opaque to the coordinator (merged into /v1/stats as-is).
	Kind  string          `json:"kind,omitempty"`
	Stats json.RawMessage `json:"stats,omitempty"`
}

// SyncRequest reconciles a worker against the coordinator's authoritative
// registry: Jobs is the complete client set of the shard as of Round (the
// coordinator's mutations up to and including the round being retried are
// already folded in). The worker upserts every listed job and removes any it
// holds that is absent — unchanged jobs are no-ops in the engines, so a
// worker restored from its own state file keeps its warm partitions, bases,
// and prices through a sync.
type SyncRequest struct {
	Round     int       `json:"round"`
	TypeNames []string  `json:"gpu_types,omitempty"`
	GPUs      []float64 `json:"gpus"`
	Jobs      []JobSpec `json:"jobs"`
}

// SyncResponse acks a reconcile: Kept counts the jobs the worker already
// held (its warm state), Added and Removed the diff it applied.
type SyncResponse struct {
	Round   int `json:"round"`
	Kept    int `json:"kept"`
	Added   int `json:"added"`
	Removed int `json:"removed"`
}

// HealthResponse reports worker liveness.
type HealthResponse struct {
	OK        bool   `json:"ok"`
	LastRound int    `json:"last_round"`
	NumJobs   int    `json:"num_jobs"`
	Kind      string `json:"kind,omitempty"`
}

// errorResponse is the JSON error body both ends of the protocol use.
type errorResponse struct {
	Error     string `json:"error"`
	LastRound int    `json:"last_round,omitempty"`
}
