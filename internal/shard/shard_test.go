package shard

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"pop/internal/cluster"
	"pop/internal/online"
)

// swapHandler lets a test replace a worker's handler mid-flight — the
// crash-and-restart simulation — and inject a straggle delay.
type swapHandler struct {
	h       atomic.Value // http.Handler
	delayMs atomic.Int64
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := s.delayMs.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// fleet is a set of in-process shard workers behind real HTTP servers.
type fleet struct {
	workers  []*Worker
	bundles  []*EngineBundle
	handlers []*swapHandler
	urls     []string
}

func newFleet(t *testing.T, n int, cfg EngineConfig, wopts WorkerOptions) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		b, err := NewEngine(testCluster(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorker(b, wopts)
		sh := &swapHandler{}
		sh.h.Store(w.Handler())
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		f.workers = append(f.workers, w)
		f.bundles = append(f.bundles, b)
		f.handlers = append(f.handlers, sh)
		f.urls = append(f.urls, ts.URL)
	}
	return f
}

// crash replaces worker i with a fresh process image: a new engine with no
// state, behind the same URL.
func (f *fleet) crash(t *testing.T, i int, cfg EngineConfig, wopts WorkerOptions) {
	t.Helper()
	b, err := NewEngine(testCluster(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(b, wopts)
	f.workers[i] = w
	f.bundles[i] = b
	f.handlers[i].h.Store(w.Handler())
}

func testCluster() cluster.Cluster { return cluster.NewCluster(12, 12, 12) }

func randJob(id int, rnd *rand.Rand) cluster.Job {
	return cluster.Job{
		ID:         id,
		Throughput: []float64{1 + rnd.Float64(), 2 + 2*rnd.Float64(), 3 + 3*rnd.Float64()},
		Weight:     1,
		Scale:      float64(1 + rnd.Intn(2)),
		NumSteps:   1000,
		Priority:   1,
	}
}

func sortedJobs(live map[int]cluster.Job) []cluster.Job {
	out := make([]cluster.Job, 0, len(live))
	for _, j := range live {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// churn applies one random round of arrivals, departures, and updates.
func churn(live map[int]cluster.Job, nextID *int, rnd *rand.Rand) {
	for a := rnd.Intn(4); a > 0; a-- {
		live[*nextID] = randJob(*nextID, rnd)
		*nextID++
	}
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) > 8 {
		for d := rnd.Intn(3); d > 0 && len(ids) > 1; d-- {
			victim := ids[rnd.Intn(len(ids))]
			delete(live, victim)
		}
	}
	for u := rnd.Intn(3); u > 0 && len(ids) > 0; u-- {
		id := ids[rnd.Intn(len(ids))]
		if j, ok := live[id]; ok {
			j.Throughput = []float64{1 + rnd.Float64(), 2 + 2*rnd.Float64(), 3 + 3*rnd.Float64()}
			live[id] = j
		}
	}
}

// runEquivalence drives the full sharded path — coordinator, HTTP, workers,
// merge — against reference in-process engines partitioned by the same ring
// over the same capacity split, and requires identical allocations. The
// wire is JSON over float64, which round-trips exactly, so the sharded
// stack must agree with single-process POP to (well under) 1e-6.
func runEquivalence(t *testing.T, policy string, numWorkers, rounds int, seed int64) {
	t.Helper()
	cfg := EngineConfig{Policy: policy, K: 2}
	f := newFleet(t, numWorkers, cfg, WorkerOptions{})
	coord, err := NewCoordinator(f.urls, CoordinatorOptions{Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one in-process engine per shard, fed the identical
	// (ascending-id) mutation order over the identical 1/W capacity slice.
	ring := NewRing(numWorkers)
	refs := make([]Engine, numWorkers)
	for i := range refs {
		b, err := NewEngine(testCluster(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = b.Engine
	}

	c := testCluster()
	sub := c.Split(numWorkers)
	rnd := rand.New(rand.NewSource(seed))
	live := map[int]cluster.Job{}
	nextID := 0
	for round := 1; round <= rounds; round++ {
		churn(live, &nextID, rnd)
		active := sortedJobs(live)

		got, err := coord.Step(active, c)
		if err != nil {
			t.Fatalf("round %d: sharded step: %v", round, err)
		}
		if coord.StaleJobs() != 0 {
			t.Fatalf("round %d: %d stale jobs on a healthy fleet", round, coord.StaleJobs())
		}

		type row struct {
			x      []float64
			effThr float64
		}
		want := map[int]row{}
		for w := 0; w < numWorkers; w++ {
			var shardActive []cluster.Job
			for _, j := range active {
				if ring.Owner(j.ID) == w {
					shardActive = append(shardActive, j)
				}
			}
			if len(shardActive) == 0 {
				continue
			}
			alloc, err := refs[w].Step(shardActive, sub)
			if err != nil {
				t.Fatalf("round %d: reference shard %d: %v", round, w, err)
			}
			for i, j := range shardActive {
				r := row{effThr: alloc.EffThr[i]}
				if alloc.X != nil {
					r.x = alloc.X[i]
				}
				want[j.ID] = r
			}
		}

		const tol = 1e-6
		for pos, j := range active {
			ref, ok := want[j.ID]
			if !ok {
				t.Fatalf("round %d: job %d missing from reference", round, j.ID)
			}
			if d := math.Abs(got.EffThr[pos] - ref.effThr); d > tol {
				t.Fatalf("round %d: job %d effThr diverged by %g (sharded %g, single %g)",
					round, j.ID, d, got.EffThr[pos], ref.effThr)
			}
			if ref.x != nil {
				for k := range ref.x {
					if d := math.Abs(got.X[pos][k] - ref.x[k]); d > tol {
						t.Fatalf("round %d: job %d x[%d] diverged by %g", round, j.ID, k, d)
					}
				}
			}
		}
	}
}

// TestShardedMatchesSingleProcessLP: the LP engines, one and several shards.
func TestShardedMatchesSingleProcessLP(t *testing.T) {
	t.Run("maxmin/1worker", func(t *testing.T) { runEquivalence(t, "maxmin", 1, 10, 1) })
	t.Run("maxmin/3workers", func(t *testing.T) { runEquivalence(t, "maxmin", 3, 12, 2) })
	t.Run("makespan/2workers", func(t *testing.T) { runEquivalence(t, "makespan", 2, 10, 3) })
}

// TestShardedMatchesSingleProcessPrice: the price-discovery engine over the
// wire (X rows ride the columnar encoding).
func TestShardedMatchesSingleProcessPrice(t *testing.T) {
	t.Run("1worker", func(t *testing.T) { runEquivalence(t, "price", 1, 8, 4) })
	t.Run("2workers", func(t *testing.T) { runEquivalence(t, "price", 2, 10, 5) })
}

// TestShardedSpaceSharing: pair-slot allocations have no per-type X rows;
// the gather must still carry effective throughputs for every client.
func TestShardedSpaceSharing(t *testing.T) {
	f := newFleet(t, 2, EngineConfig{Policy: "spacesharing", K: 1}, WorkerOptions{})
	coord, err := NewCoordinator(f.urls, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(6))
	live := map[int]cluster.Job{}
	for id := 0; id < 10; id++ {
		live[id] = randJob(id, rnd)
	}
	alloc, err := coord.Step(sortedJobs(live), testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if alloc.X != nil {
		t.Fatal("space-sharing gather produced solo X rows")
	}
	for i, thr := range alloc.EffThr {
		if thr <= 0 {
			t.Fatalf("job %d starved under sharded space sharing: %g", i, thr)
		}
	}
}

// TestStragglerServesStaleAllocation: a worker that misses the round
// deadline has its clients served last round's allocation, flagged stale;
// when it recovers, the queued mutations land and no registry rebuild is
// needed.
func TestStragglerServesStaleAllocation(t *testing.T) {
	const numWorkers = 2
	f := newFleet(t, numWorkers, EngineConfig{Policy: "maxmin", K: 1}, WorkerOptions{})
	coord, err := NewCoordinator(f.urls, CoordinatorOptions{Deadline: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(numWorkers)
	rnd := rand.New(rand.NewSource(7))
	live := map[int]cluster.Job{}
	for id := 0; id < 12; id++ {
		live[id] = randJob(id, rnd)
	}
	active := sortedJobs(live)
	before, err := coord.Step(active, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	prevThr := map[int]float64{}
	for i, j := range active {
		prevThr[j.ID] = before.EffThr[i]
	}

	// Worker 0 straggles past the deadline; a new job arrives on its shard.
	newID := 1000
	for ring.Owner(newID) != 0 {
		newID++
	}
	live[newID] = randJob(newID, rnd)
	active = sortedJobs(live)
	f.handlers[0].delayMs.Store(600)
	during, err := coord.Step(active, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	f.handlers[0].delayMs.Store(0)

	stale := coord.LastStale()
	if coord.StaleJobs() == 0 {
		t.Fatal("straggling worker produced no stale jobs")
	}
	for i, j := range active {
		owner := ring.Owner(j.ID)
		if owner == 0 {
			if !stale[i] {
				t.Fatalf("job %d on the straggling shard not flagged stale", j.ID)
			}
			if j.ID != newID && math.Abs(during.EffThr[i]-prevThr[j.ID]) > 1e-12 {
				t.Fatalf("job %d stale row differs from last round: %g vs %g",
					j.ID, during.EffThr[i], prevThr[j.ID])
			}
			if j.ID == newID && during.EffThr[i] != 0 {
				t.Fatalf("unallocated new job %d has throughput %g", newID, during.EffThr[i])
			}
		} else if stale[i] {
			t.Fatalf("job %d on the healthy shard flagged stale", j.ID)
		}
	}
	st := coord.Status()
	if st[0].Stragglers != 1 || st[1].Stragglers != 0 {
		t.Fatalf("straggler counters wrong: %+v", st)
	}

	// Recovery: the re-queued batch lands; the new job gets a real
	// allocation; no rebuild was needed (straggle is not a crash).
	after, err := coord.Step(active, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if coord.StaleJobs() != 0 {
		t.Fatalf("%d jobs still stale after recovery", coord.StaleJobs())
	}
	for i, j := range active {
		if j.ID == newID && after.EffThr[i] <= 0 {
			t.Fatalf("new job %d still unallocated after recovery", newID)
		}
	}
	for _, ws := range coord.Status() {
		if ws.Rebuilds != 0 {
			t.Fatalf("straggle recovery triggered a rebuild: %+v", ws)
		}
	}
}

// TestKillAndRebuild: a crashed-and-restarted worker (fresh process, no
// state) answers 409, is rebuilt from the coordinator's registry inside the
// same round, and from then on matches a fresh engine fed the same registry
// — the authoritative-rebuild guarantee.
func TestKillAndRebuild(t *testing.T) {
	const numWorkers = 2
	cfg := EngineConfig{Policy: "maxmin", K: 1}
	f := newFleet(t, numWorkers, cfg, WorkerOptions{})
	coord, err := NewCoordinator(f.urls, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(numWorkers)
	rnd := rand.New(rand.NewSource(8))
	live := map[int]cluster.Job{}
	nextID := 0
	for round := 0; round < 4; round++ {
		churn(live, &nextID, rnd)
		if _, err := coord.Step(sortedJobs(live), testCluster()); err != nil {
			t.Fatal(err)
		}
	}

	f.crash(t, 0, cfg, WorkerOptions{})
	if f.workers[0].LastRound() != 0 {
		t.Fatal("crashed worker kept state")
	}

	// No churn this round: the rebuild sync carries the whole registry and
	// the retried round applies an empty batch.
	active := sortedJobs(live)
	got, err := coord.Step(active, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if coord.StaleJobs() != 0 {
		t.Fatalf("rebuild round left %d stale jobs", coord.StaleJobs())
	}
	st := coord.Status()
	if st[0].Rebuilds != 1 {
		t.Fatalf("worker 0 rebuilds = %d, want 1", st[0].Rebuilds)
	}
	if st[1].Rebuilds != 0 {
		t.Fatalf("healthy worker was rebuilt: %+v", st[1])
	}

	// The rebuilt shard's allocation must equal a fresh engine fed the same
	// registry in the same (ascending-id) order over the same sub-capacity.
	refB, err := NewEngine(testCluster(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var shard0 []cluster.Job
	for _, j := range active {
		if ring.Owner(j.ID) == 0 {
			shard0 = append(shard0, j)
		}
	}
	refAlloc, err := refB.Engine.Step(shard0, testCluster().Split(numWorkers))
	if err != nil {
		t.Fatal(err)
	}
	refThr := map[int]float64{}
	for i, j := range shard0 {
		refThr[j.ID] = refAlloc.EffThr[i]
	}
	for i, j := range active {
		if ring.Owner(j.ID) != 0 {
			continue
		}
		if d := math.Abs(got.EffThr[i] - refThr[j.ID]); d > 1e-6 {
			t.Fatalf("rebuilt shard diverged on job %d by %g", j.ID, d)
		}
	}

	// Subsequent rounds run clean: no more syncs.
	if _, err := coord.Step(active, testCluster()); err != nil {
		t.Fatal(err)
	}
	if coord.Status()[0].Rebuilds != 1 {
		t.Fatal("extra rebuild after recovery")
	}
}

// TestWorkerStateFileWarmRejoin: a worker restarted with its -state-file
// rejoins at its saved round — no 409, no rebuild — and its first solve
// attempts a warm start from the restored bases.
func TestWorkerStateFileWarmRejoin(t *testing.T) {
	cfg := EngineConfig{Policy: "maxmin", K: 2}
	stateFile := filepath.Join(t.TempDir(), "worker.state")
	wopts := WorkerOptions{StateFile: stateFile}
	f := newFleet(t, 1, cfg, wopts)
	coord, err := NewCoordinator(f.urls, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(9))
	live := map[int]cluster.Job{}
	for id := 0; id < 10; id++ {
		live[id] = randJob(id, rnd)
	}
	active := sortedJobs(live)
	before, err := coord.Step(active, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.workers[0].SaveState(); err != nil {
		t.Fatal(err)
	}
	savedRound := f.workers[0].LastRound()

	f.crash(t, 0, cfg, wopts) // restart with the same state file
	if got := f.workers[0].LastRound(); got != savedRound {
		t.Fatalf("restored worker at round %d, want %d", got, savedRound)
	}

	after, err := coord.Step(active, testCluster())
	if err != nil {
		t.Fatal(err)
	}
	if coord.Status()[0].Rebuilds != 0 {
		t.Fatal("state-file restart still needed a registry rebuild")
	}
	st := f.bundles[0].Stats().(online.Stats)
	if st.WarmAttempts == 0 {
		t.Fatal("restored engine never attempted a warm start from its saved bases")
	}
	for i := range active {
		if d := math.Abs(after.EffThr[i] - before.EffThr[i]); d > 1e-6 {
			t.Fatalf("unchanged job set reallocated differently after restore: job %d off by %g",
				active[i].ID, d)
		}
	}
}

// TestWorkerAuth: round and sync require the bearer token; health stays
// open; a token-carrying coordinator round-trips.
func TestWorkerAuth(t *testing.T) {
	const token = "shard-secret"
	f := newFleet(t, 1, EngineConfig{Policy: "maxmin", K: 1}, WorkerOptions{Token: token})

	post := func(tok string) int {
		body, _ := json.Marshal(&RoundRequest{Round: 1, GPUs: []float64{1, 1, 1}})
		req, _ := http.NewRequest(http.MethodPost, f.urls[0]+PathRound, bytes.NewReader(body))
		if tok != "" {
			Token(tok).Set(req)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(""); got != http.StatusUnauthorized {
		t.Fatalf("tokenless round: status %d, want 401", got)
	}
	if got := post("wrong-token"); got != http.StatusUnauthorized {
		t.Fatalf("wrong-token round: status %d, want 401", got)
	}
	if got := post(token); got != http.StatusOK {
		t.Fatalf("authorized round: status %d, want 200", got)
	}
	if resp, err := http.Get(f.urls[0] + PathHealth); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("health probe should stay open: %v", err)
	} else {
		resp.Body.Close()
	}

	coord, err := NewCoordinator(f.urls, CoordinatorOptions{Token: token})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(10))
	live := map[int]cluster.Job{0: randJob(0, rnd), 1: randJob(1, rnd)}
	if _, err := coord.Step(sortedJobs(live), testCluster()); err != nil {
		t.Fatal(err)
	}
	if coord.StaleJobs() != 0 {
		t.Fatal("authorized coordinator round went stale")
	}
}

// TestWorkerHealth reports the applied round and job count.
func TestWorkerHealth(t *testing.T) {
	f := newFleet(t, 1, EngineConfig{Policy: "price"}, WorkerOptions{})
	coord, err := NewCoordinator(f.urls, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(11))
	live := map[int]cluster.Job{1: randJob(1, rnd), 2: randJob(2, rnd), 3: randJob(3, rnd)}
	if _, err := coord.Step(sortedJobs(live), testCluster()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(f.urls[0] + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.LastRound != 1 || h.NumJobs != 3 || h.Kind != "price" {
		t.Fatalf("health = %+v, want ok round=1 jobs=3 kind=price", h)
	}
}
