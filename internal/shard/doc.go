// Package shard turns the single-process popserver into a coordinator
// fanning scheduling rounds out over shard-worker processes — POP's
// partitioned serving story at the process level: each worker owns an
// independent slice of the client population and 1/W of the resource pool,
// solves it on its own persistent engine, and the coordinator merges the
// per-shard allocations into the cluster-wide answer.
//
// # Topology
//
// Clients are assigned to workers by a consistent-hash ring (Ring): FNV-1a
// over 64 virtual points per worker, deterministic and recomputable from
// the worker count alone. Membership is never persisted — a restarted
// coordinator rebuilds the identical assignment, and growing the fleet
// moves only ~1/W of the clients.
//
// Each worker wraps one engine (EngineBundle: the incremental LP engine
// for maxmin/makespan/spacesharing, the price-discovery engine for price)
// that stays warm in-process across rounds: LP bases and carried prices
// survive between rounds exactly as they do in single-process mode, so
// per-round work is proportional to churn, not population.
//
// # Round protocol
//
// A round is one scatter/gather (Coordinator.Step):
//
//  1. The coordinator diffs the submitted active set against its
//     authoritative client registry and queues per-worker mutation
//     batches (sorted by id, so every engine sees the same order the
//     single-process engine would).
//  2. Scatter: each worker receives RoundRequest{Round, PrevRound,
//     batch, its 1/W capacity slice} under a per-round deadline.
//  3. Workers apply the batch to their engine, solve, and return the
//     allocation in columnar form (ids, effective throughputs, one
//     flattened X row per client) — at serving scale the JSON shape is
//     first-order.
//  4. Gather/merge: rows are recombined in active-set order.
//
// Mutations are idempotent, and a batch stays queued until the owning
// worker acknowledges the round that carried it.
//
// # Failure model
//
// Stragglers: a worker that misses the deadline keeps last round's rows
// for its clients, each flagged Stale in the merged allocation — serving
// degrades to slightly old allocations instead of blocking the round.
// Its batch remains queued; PrevRound tracking makes re-application safe
// whether the worker finished late (it is ahead and accepts the re-send)
// or never applied (it re-applies the identical batch).
//
// Crashes: a restarted worker has lastRound 0 and answers 409 to the next
// round. The coordinator then pushes a reconciling SyncRequest carrying
// the worker's whole shard from the registry (upsert everything, remove
// what the worker holds that the registry lacks) and retries the round —
// rebuild is one extra round trip, inside the same deadline. A worker
// restarted from its -state-file resumes at its saved round with warm
// engine state and needs no sync at all.
//
// The inverse failure — a coordinator restarted with an empty registry
// facing warm workers — is caught by job-count accounting: a worker
// reporting more jobs than the registry says it owns is flagged for a
// reconciling sync at the next round, which removes the zombies.
//
// # Security
//
// WorkerOptions.Token / CoordinatorOptions.Token gate the mutating
// endpoints with a shared bearer token (constant-time compare); health
// and metrics stay open for probes.
package shard
