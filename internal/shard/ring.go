package shard

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Ring consistent-hashes client ids onto worker indices. Each worker owns
// `replicas` virtual points on a 64-bit circle; a client lands on the first
// point clockwise of its own hash. The mapping is a pure function of the
// worker count, so the coordinator can rebuild it after a restart (or
// recompute a dead worker's membership from the registry) without any
// persisted assignment table, and adding a worker would move only ~1/W of
// the clients.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash  uint64
	owner int
}

const defaultReplicas = 64

// NewRing builds a ring over workers 0..n-1 with the default virtual-point
// count per worker.
func NewRing(n int) *Ring { return NewRingReplicas(n, defaultReplicas) }

// NewRingReplicas builds a ring with `replicas` virtual points per worker.
func NewRingReplicas(n, replicas int) *Ring {
	if n < 1 {
		n = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	r := &Ring{points: make([]ringPoint, 0, n*replicas), n: n}
	var buf [16]byte
	for w := 0; w < n; w++ {
		for v := 0; v < replicas; v++ {
			binary.LittleEndian.PutUint64(buf[:8], uint64(w))
			binary.LittleEndian.PutUint64(buf[8:], uint64(v))
			r.points = append(r.points, ringPoint{hash: fnvHash(buf[:]), owner: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.owner < b.owner // deterministic under (vanishingly rare) collisions
	})
	return r
}

// NumWorkers reports the worker count the ring was built over.
func (r *Ring) NumWorkers() int { return r.n }

// Owner maps a client id to its worker index.
func (r *Ring) Owner(id int) int {
	if r.n == 1 {
		return 0
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(id)))
	h := fnvHash(buf[:])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

func fnvHash(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}
