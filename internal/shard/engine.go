package shard

import (
	"fmt"
	"strings"

	"pop/internal/cluster"
	"pop/internal/lp"
	"pop/internal/obs"
	"pop/internal/online"
	"pop/internal/price"
)

// Engine is the per-round surface a worker (or a single-process popserver)
// drives: the incremental LP engine (online.ClusterEngine), the
// price-discovery engine (price.ClusterEngine), and the sharded Coordinator
// itself all satisfy it, so every deployment shape runs the same round loop.
type Engine interface {
	Upsert(cluster.Job)
	Remove(id int) bool
	Jobs() []cluster.Job
	Step(active []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error)
}

// EngineBundle is a constructed policy engine plus the capability hooks the
// serving layer needs without knowing the concrete type: a stats snapshot
// for /v1/stats, and state marshal/unmarshal for worker rebuild re-warming
// and -state-file restart persistence.
type EngineBundle struct {
	Engine Engine
	// Kind is "lp" for the incremental LP engines, "price" for the
	// price-discovery engine.
	Kind string
	// Stats returns the engine's counter struct (JSON-marshalable).
	Stats func() any
	// Snapshot marshals the engine's warm state (jobs, partitions, bases or
	// prices) to JSON; Restore installs such a snapshot into the engine so
	// its next round re-warms instead of cold-starting.
	Snapshot func() ([]byte, error)
	Restore  func([]byte) error
}

// EngineConfig selects and tunes a policy engine.
type EngineConfig struct {
	// Policy is maxmin | makespan | spacesharing (LP) or price.
	Policy string
	// K is the number of POP sub-problems the engine partitions its clients
	// into (LP engines; the price engine runs one market).
	K int
	// Parallel fans dirty sub-solves (LP) or best responses (price) out
	// over the worker pool.
	Parallel bool
	// Rebalance enables the LP engines' drift-bounded rebalancer.
	Rebalance bool
	// Obs receives engine telemetry; nil disables it.
	Obs *obs.Observer
}

// NewEngine constructs the policy-selected round engine. It is the single
// construction path shared by popserver (both single-process and worker
// modes) and servebench's spawned workers.
func NewEngine(c cluster.Cluster, cfg EngineConfig) (*EngineBundle, error) {
	switch strings.ToLower(cfg.Policy) {
	case "price":
		eng, err := price.NewClusterEngine(c, price.MaxMinFairness, price.EngineOptions{
			Solver: price.Options{Parallel: cfg.Parallel, Obs: cfg.Obs},
		})
		if err != nil {
			return nil, err
		}
		return &EngineBundle{
			Engine:   eng,
			Kind:     "price",
			Stats:    func() any { return eng.Stats() },
			Snapshot: func() ([]byte, error) { return eng.Snapshot().Marshal() },
			Restore:  eng.RestoreBytes,
		}, nil
	case "maxmin", "max-min", "makespan", "min-makespan", "spacesharing", "space-sharing":
		var policy online.ClusterPolicy
		switch strings.ToLower(cfg.Policy) {
		case "maxmin", "max-min":
			policy = online.MaxMinFairness
		case "makespan", "min-makespan":
			policy = online.MinMakespan
		default:
			policy = online.SpaceSharing
		}
		opts := online.Options{K: cfg.K, Parallel: cfg.Parallel, Rebalance: cfg.Rebalance, Obs: cfg.Obs}
		eng, err := online.NewClusterEngine(c, policy, opts, lp.Options{})
		if err != nil {
			return nil, err
		}
		return &EngineBundle{
			Engine:   eng,
			Kind:     "lp",
			Stats:    func() any { return eng.Stats() },
			Snapshot: func() ([]byte, error) { return eng.Snapshot().Marshal() },
			Restore:  eng.RestoreBytes,
		}, nil
	}
	return nil, fmt.Errorf("shard: unknown policy %q (want maxmin|makespan|spacesharing|price)", cfg.Policy)
}
