// Package tm generates synthetic traffic matrices for the traffic
// engineering experiments, following the four demand models used by the POP
// paper (which inherits them from NCFlow): Gravity, Uniform, Bimodal, and
// Poisson. Poisson is the skewed model — a small percentage of commodities
// dominate total demand — and is the one that exercises POP's client
// splitting.
package tm

import (
	"fmt"
	"math"
	"math/rand"
)

// Model selects a traffic demand distribution.
type Model int8

const (
	// Gravity draws demand(s,d) proportional to mass(s)·mass(d) with
	// lognormal node masses, the classic WAN model.
	Gravity Model = iota
	// Uniform draws each demand uniformly from a fixed band.
	Uniform
	// Bimodal mixes a small-demand mode (80%) and a large-demand mode (20%).
	Bimodal
	// Poisson is the heavy-tailed skewed model: most commodities are small,
	// a few dominate the network demand.
	Poisson
)

func (m Model) String() string {
	switch m {
	case Gravity:
		return "gravity"
	case Uniform:
		return "uniform"
	case Bimodal:
		return "bimodal"
	case Poisson:
		return "poisson"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Models lists all four demand models.
func Models() []Model { return []Model{Gravity, Uniform, Bimodal, Poisson} }

// Demand is one commodity: traffic from Src to Dst of the given Amount.
type Demand struct {
	Src, Dst int
	Amount   float64
}

// Config controls matrix generation.
type Config struct {
	Nodes       int     // number of nodes in the topology
	Commodities int     // number of (src,dst) demands to generate
	Model       Model   // demand distribution
	TotalDemand float64 // demands are rescaled to sum to this; 0 keeps raw
	Seed        int64
}

// Generate produces a traffic matrix as a list of commodities with distinct
// (src, dst) pairs. Deterministic in Config.
func Generate(cfg Config) []Demand {
	if cfg.Nodes < 2 {
		panic("tm: need at least 2 nodes")
	}
	maxPairs := cfg.Nodes * (cfg.Nodes - 1)
	k := cfg.Commodities
	if k > maxPairs {
		k = maxPairs
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Distinct pairs: for dense requests relative to n², enumerate and
	// shuffle; otherwise rejection-sample.
	pairs := samplePairs(rng, cfg.Nodes, k, maxPairs)

	mass := make([]float64, cfg.Nodes)
	for i := range mass {
		mass[i] = math.Exp(0.5 * rng.NormFloat64()) // lognormal(0, 0.5): moderate spread
	}

	demands := make([]Demand, 0, k)
	for _, pr := range pairs {
		amt := 0.0
		switch cfg.Model {
		case Gravity:
			amt = mass[pr[0]] * mass[pr[1]]
		case Uniform:
			amt = 0.5 + rng.Float64()
		case Bimodal:
			if rng.Float64() < 0.2 {
				amt = 5 + 5*rng.Float64()
			} else {
				amt = 0.2 + 0.6*rng.Float64()
			}
		case Poisson:
			// Pareto(α=0.9): heavy tail; a few commodities dominate.
			u := rng.Float64()
			amt = math.Pow(1-u, -1/0.9) - 0.5
			if amt < 0.05 {
				amt = 0.05
			}
		default:
			panic(fmt.Sprintf("tm: unknown model %v", cfg.Model))
		}
		demands = append(demands, Demand{Src: pr[0], Dst: pr[1], Amount: amt})
	}

	if cfg.TotalDemand > 0 {
		Rescale(demands, cfg.TotalDemand)
	}
	return demands
}

// Rescale multiplies all demand amounts so they sum to total.
func Rescale(demands []Demand, total float64) {
	sum := 0.0
	for _, d := range demands {
		sum += d.Amount
	}
	if sum <= 0 {
		return
	}
	f := total / sum
	for i := range demands {
		demands[i].Amount *= f
	}
}

// Total sums the demand amounts.
func Total(demands []Demand) float64 {
	sum := 0.0
	for _, d := range demands {
		sum += d.Amount
	}
	return sum
}

// MaxShare returns the largest single demand as a fraction of the total —
// the paper's granularity condition 2 diagnostic.
func MaxShare(demands []Demand) float64 {
	total := Total(demands)
	if total == 0 {
		return 0
	}
	max := 0.0
	for _, d := range demands {
		if d.Amount > max {
			max = d.Amount
		}
	}
	return max / total
}

func samplePairs(rng *rand.Rand, n, k, maxPairs int) [][2]int {
	if k*3 >= maxPairs {
		// Enumerate all ordered pairs and take a shuffled prefix.
		all := make([][2]int, 0, maxPairs)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					all = append(all, [2]int{s, d})
				}
			}
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all[:k]
	}
	seen := map[[2]int]bool{}
	out := make([][2]int, 0, k)
	for len(out) < k {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		pr := [2]int{s, d}
		if seen[pr] {
			continue
		}
		seen[pr] = true
		out = append(out, pr)
	}
	return out
}

// Diurnal generates a sequence of traffic matrices over `steps` time steps
// with a day-night utilization cycle plus per-step jitter, modelling the
// private-WAN five-day trace in Figure 11 of the paper. stepsPerDay controls
// the cycle length. The commodity set is fixed; only amounts vary.
func Diurnal(cfg Config, steps, stepsPerDay int) [][]Demand {
	base := Generate(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	out := make([][]Demand, steps)
	for t := 0; t < steps; t++ {
		phase := 2 * math.Pi * float64(t%stepsPerDay) / float64(stepsPerDay)
		level := 0.75 + 0.25*math.Sin(phase) // 0.5 .. 1.0 of peak
		step := make([]Demand, len(base))
		for i, d := range base {
			jitter := 1 + 0.2*rng.NormFloat64()
			if jitter < 0.1 {
				jitter = 0.1
			}
			step[i] = Demand{Src: d.Src, Dst: d.Dst, Amount: d.Amount * level * jitter}
		}
		out[t] = step
	}
	return out
}
