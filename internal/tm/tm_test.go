package tm

import (
	"math"
	"sort"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	for _, m := range Models() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			ds := Generate(Config{Nodes: 30, Commodities: 200, Model: m, TotalDemand: 1000, Seed: 1})
			if len(ds) != 200 {
				t.Fatalf("got %d demands", len(ds))
			}
			if !approx(Total(ds), 1000, 1e-9) {
				t.Fatalf("total = %g, want 1000", Total(ds))
			}
			seen := map[[2]int]bool{}
			for _, d := range ds {
				if d.Src == d.Dst {
					t.Fatalf("self demand %+v", d)
				}
				if d.Src < 0 || d.Src >= 30 || d.Dst < 0 || d.Dst >= 30 {
					t.Fatalf("out of range %+v", d)
				}
				if d.Amount <= 0 {
					t.Fatalf("non-positive demand %+v", d)
				}
				pr := [2]int{d.Src, d.Dst}
				if seen[pr] {
					t.Fatalf("duplicate pair %v", pr)
				}
				seen[pr] = true
			}
		})
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestDeterministic(t *testing.T) {
	cfg := Config{Nodes: 20, Commodities: 50, Model: Gravity, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("demand %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPoissonIsSkewed(t *testing.T) {
	// The Poisson model must be much more skewed than Gravity: compare the
	// share of total demand held by the top 5% of commodities.
	top5 := func(m Model) float64 {
		ds := Generate(Config{Nodes: 50, Commodities: 1000, Model: m, Seed: 3})
		amounts := make([]float64, len(ds))
		for i, d := range ds {
			amounts[i] = d.Amount
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(amounts)))
		total, top := 0.0, 0.0
		for i, a := range amounts {
			total += a
			if i < len(amounts)/20 {
				top += a
			}
		}
		return top / total
	}
	pg, gg := top5(Poisson), top5(Gravity)
	if pg < 1.5*gg {
		t.Fatalf("poisson top-5%% share %.3f not clearly above gravity %.3f", pg, gg)
	}
}

func TestMaxShare(t *testing.T) {
	ds := []Demand{{0, 1, 1}, {1, 2, 3}, {2, 0, 6}}
	if !approx(MaxShare(ds), 0.6, 1e-12) {
		t.Fatalf("max share = %g", MaxShare(ds))
	}
	if MaxShare(nil) != 0 {
		t.Fatal("empty max share should be 0")
	}
}

func TestCommoditiesCapped(t *testing.T) {
	ds := Generate(Config{Nodes: 4, Commodities: 100, Model: Uniform, Seed: 1})
	if len(ds) != 12 { // 4·3 ordered pairs
		t.Fatalf("got %d demands, want 12", len(ds))
	}
}

func TestRescaleZeroTotalNoop(t *testing.T) {
	ds := []Demand{}
	Rescale(ds, 100) // must not panic
}

func TestDiurnal(t *testing.T) {
	cfg := Config{Nodes: 20, Commodities: 60, Model: Poisson, TotalDemand: 500, Seed: 7}
	trace := Diurnal(cfg, 48, 24)
	if len(trace) != 48 {
		t.Fatalf("got %d steps", len(trace))
	}
	for _, step := range trace {
		if len(step) != 60 {
			t.Fatalf("step has %d demands", len(step))
		}
	}
	// The commodity set must be constant over time.
	for ti := 1; ti < len(trace); ti++ {
		for i := range trace[ti] {
			if trace[ti][i].Src != trace[0][i].Src || trace[ti][i].Dst != trace[0][i].Dst {
				t.Fatal("commodity set changed over time")
			}
		}
	}
	// Day/night variation should be visible in aggregate demand.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, step := range trace {
		tot := Total(step)
		lo = math.Min(lo, tot)
		hi = math.Max(hi, tot)
	}
	if hi/lo < 1.2 {
		t.Fatalf("no diurnal variation: lo=%g hi=%g", lo, hi)
	}
}
