package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// enumeratePaths lists every loopless path from src to dst by DFS,
// returning their weights sorted ascending. Exponential — only for tiny
// graphs in tests.
func enumeratePaths(g *Graph, src, dst int) []float64 {
	var weights []float64
	visited := make([]bool, g.N)
	var dfs func(v int, w float64)
	dfs = func(v int, w float64) {
		if v == dst {
			weights = append(weights, w)
			return
		}
		visited[v] = true
		for _, eid := range g.Out(v) {
			e := g.Edges[eid]
			if !visited[e.To] {
				dfs(e.To, w+e.Weight)
			}
		}
		visited[v] = false
	}
	dfs(src, 0)
	sort.Float64s(weights)
	return weights
}

func randomSmallGraph(rng *rand.Rand) *Graph {
	n := 4 + rng.Intn(4)
	g := New(n)
	// Spanning chain for connectivity plus random extra edges.
	for i := 0; i < n-1; i++ {
		g.AddBidirectional(i, i+1, 1, 0.5+rng.Float64()*2)
	}
	extra := rng.Intn(2 * n)
	for t := 0; t < extra; t++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(a, b, 1, 0.5+rng.Float64()*2)
		}
	}
	return g
}

// TestYenMatchesBruteForce cross-checks Yen's algorithm against exhaustive
// path enumeration: the k shortest loopless path weights must equal the k
// smallest enumerated weights.
func TestYenMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSmallGraph(rng)
		src, dst := 0, g.N-1
		k := 1 + rng.Intn(6)

		want := enumeratePaths(g, src, dst)
		got := g.KShortestPaths(src, dst, k)

		if len(want) == 0 {
			return len(got) == 0
		}
		expect := k
		if len(want) < k {
			expect = len(want)
		}
		if len(got) != expect {
			t.Logf("seed %d: got %d paths, want %d", seed, len(got), expect)
			return false
		}
		for i, p := range got {
			if math.Abs(p.Weight-want[i]) > 1e-9 {
				t.Logf("seed %d: path %d weight %g, brute force %g", seed, i, p.Weight, want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDijkstraMatchesBruteForce: the shortest path equals the minimum
// enumerated weight.
func TestDijkstraMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSmallGraph(rng)
		src, dst := 0, g.N-1
		want := enumeratePaths(g, src, dst)
		got := g.ShortestPath(src, dst, nil)
		if len(want) == 0 {
			return got == nil
		}
		return got != nil && math.Abs(got.Weight-want[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWidestPathIsMaximal: no single path found by enumeration has a larger
// bottleneck than WidestPath's.
func TestWidestPathIsMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomSmallGraph(rng)
		residual := make([]float64, len(g.Edges))
		for i := range residual {
			residual[i] = rng.Float64() * 10
		}
		src, dst := 0, g.N-1

		// Brute-force best bottleneck.
		best := 0.0
		visited := make([]bool, g.N)
		var dfs func(v int, width float64)
		dfs = func(v int, width float64) {
			if v == dst {
				if width > best {
					best = width
				}
				return
			}
			visited[v] = true
			for _, eid := range g.Out(v) {
				e := g.Edges[eid]
				if !visited[e.To] && residual[eid] > 0 {
					dfs(e.To, math.Min(width, residual[eid]))
				}
			}
			visited[v] = false
		}
		dfs(src, math.Inf(1))

		got := g.WidestPath(src, dst, residual)
		if best == 0 {
			return got == nil
		}
		return got != nil && math.Abs(got.Weight-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
