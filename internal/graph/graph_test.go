package graph

import (
	"math/rand"
	"testing"
)

func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddBidirectional(i, i+1, 1, 1)
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(5)
	p := g.ShortestPath(0, 4, nil)
	if p == nil {
		t.Fatal("no path found")
	}
	if len(p.Edges) != 4 || p.Weight != 4 {
		t.Fatalf("path = %+v, want 4 hops weight 4", p)
	}
	if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 4 {
		t.Fatalf("endpoints wrong: %v", p.Nodes)
	}
}

func TestShortestPathPrefersLightEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2, 1, 10) // direct but heavy
	g.AddEdge(0, 1, 1, 1)  // detour...
	g.AddEdge(1, 2, 1, 2)  // ...total 3
	p := g.ShortestPath(0, 2, nil)
	if p.Weight != 3 || len(p.Edges) != 2 {
		t.Fatalf("path = %+v, want 2-hop weight 3", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(2, 3, 1, 1)
	if p := g.ShortestPath(0, 3, nil); p != nil {
		t.Fatalf("expected nil path, got %+v", p)
	}
}

func TestShortestPathSkip(t *testing.T) {
	g := New(3)
	direct := g.AddEdge(0, 2, 1, 1)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, 1)
	p := g.ShortestPath(0, 2, func(eid int) bool { return eid == direct })
	if p == nil || len(p.Edges) != 2 {
		t.Fatalf("skip not honored: %+v", p)
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	//   1
	//  / \
	// 0   3   plus a longer path through 2
	//  \ /
	//   2
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(2, 3, 1, 2)
	paths := g.KShortestPaths(0, 3, 4)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if paths[0].Weight != 2 || paths[1].Weight != 4 {
		t.Fatalf("weights = %g, %g; want 2, 4", paths[0].Weight, paths[1].Weight)
	}
}

func TestKShortestPathsOrderedAndLoopless(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := New(12)
	for i := 0; i < 11; i++ {
		g.AddBidirectional(i, i+1, 1, 1+rng.Float64())
	}
	for trial := 0; trial < 14; trial++ {
		a, b := rng.Intn(12), rng.Intn(12)
		if a != b {
			g.AddBidirectional(a, b, 1, 0.5+2*rng.Float64())
		}
	}
	paths := g.KShortestPaths(0, 11, 6)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Weight < paths[i-1].Weight-1e-12 {
			t.Fatalf("paths out of order: %g then %g", paths[i-1].Weight, paths[i].Weight)
		}
	}
	for _, p := range paths {
		seen := map[int]bool{}
		for _, v := range p.Nodes {
			if seen[v] {
				t.Fatalf("path revisits node %d: %v", v, p.Nodes)
			}
			seen[v] = true
		}
		// Path must be contiguous.
		for t2 := 0; t2 < len(p.Edges); t2++ {
			e := g.Edges[p.Edges[t2]]
			if e.From != p.Nodes[t2] || e.To != p.Nodes[t2+1] {
				t.Fatalf("discontiguous path: edge %d=%+v at position %d of %v", p.Edges[t2], e, t2, p.Nodes)
			}
		}
	}
	// Distinctness.
	seenKey := map[string]bool{}
	for _, p := range paths {
		k := pathKey(p)
		if seenKey[k] {
			t.Fatal("duplicate path returned")
		}
		seenKey[k] = true
	}
}

func TestKShortestPathsKOne(t *testing.T) {
	g := lineGraph(4)
	paths := g.KShortestPaths(0, 3, 1)
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
}

func TestConnected(t *testing.T) {
	g := lineGraph(6)
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
	g2 := New(4)
	g2.AddEdge(0, 1, 1, 1)
	if g2.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestWidestPath(t *testing.T) {
	g := New(4)
	e1 := g.AddEdge(0, 1, 10, 1)
	e2 := g.AddEdge(1, 3, 10, 1)
	e3 := g.AddEdge(0, 2, 10, 1)
	e4 := g.AddEdge(2, 3, 10, 1)
	residual := make([]float64, len(g.Edges))
	residual[e1], residual[e2] = 5, 2 // top path bottleneck 2
	residual[e3], residual[e4] = 3, 4 // bottom path bottleneck 3
	p := g.WidestPath(0, 3, residual)
	if p == nil {
		t.Fatal("no path")
	}
	if p.Weight != 3 {
		t.Fatalf("bottleneck = %g, want 3", p.Weight)
	}
	if p.Nodes[1] != 2 {
		t.Fatalf("wrong path: %v", p.Nodes)
	}
}

func TestWidestPathExhausted(t *testing.T) {
	g := lineGraph(3)
	residual := make([]float64, len(g.Edges))
	if p := g.WidestPath(0, 2, residual); p != nil {
		t.Fatalf("expected nil on zero residuals, got %+v", p)
	}
}

func TestClone(t *testing.T) {
	g := lineGraph(4)
	c := g.Clone()
	c.AddEdge(0, 3, 1, 1)
	if len(g.Edges) == len(c.Edges) {
		t.Fatal("clone shares edge storage")
	}
}
