// Package graph provides the directed-graph substrate used by the traffic
// engineering case study: adjacency storage, Dijkstra shortest paths, Yen's
// k-shortest loopless paths (used to precompute the per-commodity path sets
// the paper's TE formulations take as input), and connectivity checks.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is a directed capacitated link.
type Edge struct {
	ID       int
	From, To int
	Capacity float64
	// Weight is the routing metric (e.g. latency or distance).
	Weight float64
}

// Graph is a directed multigraph with a fixed number of nodes.
type Graph struct {
	N     int
	Edges []Edge

	// out[v] lists indices into Edges leaving v.
	out [][]int
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{N: n, out: make([][]int, n)}
}

// AddEdge appends a directed edge and returns its ID.
func (g *Graph) AddEdge(from, to int, capacity, weight float64) int {
	if from < 0 || from >= g.N || to < 0 || to >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.N))
	}
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{ID: id, From: from, To: to, Capacity: capacity, Weight: weight})
	g.out[from] = append(g.out[from], id)
	return id
}

// AddBidirectional adds both directions with the same capacity and weight,
// returning the two edge IDs.
func (g *Graph) AddBidirectional(a, b int, capacity, weight float64) (int, int) {
	return g.AddEdge(a, b, capacity, weight), g.AddEdge(b, a, capacity, weight)
}

// Out returns the IDs of the edges leaving v.
func (g *Graph) Out(v int) []int { return g.out[v] }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := New(g.N)
	for _, e := range g.Edges {
		ng.AddEdge(e.From, e.To, e.Capacity, e.Weight)
	}
	return ng
}

// Path is a sequence of edge IDs from a source to a destination.
type Path struct {
	Edges []int
	// Nodes is the visited node sequence, len(Edges)+1.
	Nodes  []int
	Weight float64
}

type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst over edge weights, skipping
// edges for which skip returns true (skip may be nil). It returns nil if dst
// is unreachable.
func (g *Graph) ShortestPath(src, dst int, skip func(edgeID int) bool) *Path {
	dist := make([]float64, g.N)
	prev := make([]int, g.N) // edge id arriving at node, or -1
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, eid := range g.out[it.node] {
			if skip != nil && skip(eid) {
				continue
			}
			e := &g.Edges[eid]
			nd := it.dist + e.Weight
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = eid
				heap.Push(q, pqItem{e.To, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	// Reconstruct.
	var edges []int
	for v := dst; v != src; {
		eid := prev[v]
		edges = append(edges, eid)
		v = g.Edges[eid].From
	}
	reverse(edges)
	return g.makePath(src, edges, dist[dst])
}

func (g *Graph) makePath(src int, edges []int, weight float64) *Path {
	nodes := make([]int, 0, len(edges)+1)
	nodes = append(nodes, src)
	for _, eid := range edges {
		nodes = append(nodes, g.Edges[eid].To)
	}
	return &Path{Edges: edges, Nodes: nodes, Weight: weight}
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// KShortestPaths returns up to k loopless shortest paths from src to dst
// using Yen's algorithm. Paths are ordered by increasing weight.
func (g *Graph) KShortestPaths(src, dst, k int) []*Path {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPath(src, dst, nil)
	if first == nil {
		return nil
	}
	paths := []*Path{first}
	// Candidate pool, deduplicated by node-sequence signature.
	var candidates []*Path
	seen := map[string]bool{pathKey(first): true}

	for len(paths) < k {
		last := paths[len(paths)-1]
		// Spur from each node of the last accepted path.
		for i := 0; i < len(last.Nodes)-1; i++ {
			spurNode := last.Nodes[i]
			rootEdges := last.Edges[:i]

			// Edges removed: any edge leaving spurNode that continues a
			// previously accepted path sharing the same root.
			banned := map[int]bool{}
			for _, p := range paths {
				if len(p.Edges) > i && sameRoot(p, last, i) {
					banned[p.Edges[i]] = true
				}
			}
			// Nodes on the root (except the spur node) must not be revisited.
			rootNodes := map[int]bool{}
			for _, v := range last.Nodes[:i] {
				rootNodes[v] = true
			}
			skip := func(eid int) bool {
				if banned[eid] {
					return true
				}
				e := &g.Edges[eid]
				return rootNodes[e.From] || rootNodes[e.To]
			}
			spur := g.ShortestPath(spurNode, dst, skip)
			if spur == nil {
				continue
			}
			total := append(append([]int(nil), rootEdges...), spur.Edges...)
			w := 0.0
			for _, eid := range total {
				w += g.Edges[eid].Weight
			}
			cand := g.makePath(src, total, w)
			key := pathKey(cand)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Take the lightest candidate.
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].Weight < candidates[best].Weight {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func sameRoot(p, q *Path, i int) bool {
	if len(p.Edges) < i || len(q.Edges) < i {
		return false
	}
	for t := 0; t < i; t++ {
		if p.Edges[t] != q.Edges[t] {
			return false
		}
	}
	return true
}

// pathKey identifies a path by its edge sequence. Keying on edges (not
// nodes) matters in multigraphs: two paths through the same nodes via
// different parallel edges are distinct paths with distinct weights.
func pathKey(p *Path) string {
	buf := make([]byte, 0, len(p.Edges)*3)
	for _, e := range p.Edges {
		buf = append(buf, byte(e), byte(e>>8), byte(e>>16))
	}
	return string(buf)
}

// Connected reports whether every node is reachable from node 0 treating
// edges as undirected.
func (g *Graph) Connected() bool {
	if g.N == 0 {
		return true
	}
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	visited := make([]bool, g.N)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.N
}

// WidestPath finds the path from src to dst maximizing the bottleneck of
// residual capacities, given per-edge residuals. Used by the CSPF heuristic.
// Returns nil if no path with positive residual exists.
func (g *Graph) WidestPath(src, dst int, residual []float64) *Path {
	width := make([]float64, g.N)
	prev := make([]int, g.N)
	for i := range width {
		width[i] = 0
		prev[i] = -1
	}
	width[src] = math.Inf(1)
	q := &pq{{src, math.Inf(-1)}} // dist = -width for the min-heap
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if -it.dist < width[it.node] {
			continue
		}
		for _, eid := range g.out[it.node] {
			r := residual[eid]
			if r <= 0 {
				continue
			}
			e := &g.Edges[eid]
			w := math.Min(width[it.node], r)
			if w > width[e.To] {
				width[e.To] = w
				prev[e.To] = eid
				heap.Push(q, pqItem{e.To, -w})
			}
		}
	}
	if width[dst] <= 0 {
		return nil
	}
	var edges []int
	for v := dst; v != src; {
		eid := prev[v]
		edges = append(edges, eid)
		v = g.Edges[eid].From
	}
	reverse(edges)
	return g.makePath(src, edges, width[dst])
}
