package experiments

import (
	"fmt"

	"pop/internal/analysis"
)

// Section51 regenerates the worked bound values from §5.1 and Appendix A,
// and cross-checks a scaled-down configuration against Monte Carlo
// simulation of random partitioning.
func Section51(scale Scale) (*Result, error) {
	res := &Result{
		Name:   "sec51",
		Title:  "Chernoff bound values (paper §5.1 / Appendix A)",
		Header: []string{"configuration", "bound", "paper value", "empirical (MC)"},
	}

	// Appendix A: r=2, k=2, n=10⁵ (n_s = 5·10⁴), single-cell tail bounds.
	appendix := []struct {
		delta float64
		paper string
	}{
		{0.01, "0.2877"},
		{0.02, "0.00694"},
		{0.03, "0.0000145"},
	}
	for _, c := range appendix {
		got := analysis.ChernoffTail(c.delta, 5e4, 2)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("tail: n_s=5e4 k=2 δ=%g", c.delta),
			fmt.Sprintf("%.3g", got),
			c.paper,
			"-",
		})
	}

	// §5.1 headline: 10⁶ jobs, k=10, r=4, δ=0.03 → ≤ 0.000614.
	headline := analysis.GapProbabilityBound(0.03, 1e6, 4, 10)
	res.Rows = append(res.Rows, []string{
		"gap: n=1e6 r=4 k=10 δ=0.03",
		fmt.Sprintf("%.3g", headline),
		"0.000614",
		"-",
	})

	// Monte Carlo on a size where both bound and simulation are meaningful.
	trials := pick(scale, 200, 500, 2000)
	n, r, k, delta := 40000, 4, 5, 0.02
	mc := analysis.SimulateMisplaced(n, r, k, trials, delta, 97)
	bound := analysis.GapProbabilityBound(delta, n, r, k)
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("gap: n=%d r=%d k=%d δ=%g", n, r, k, delta),
		fmt.Sprintf("%.3g", bound),
		"-",
		fmt.Sprintf("%.3g (%d trials)", mc.ExceedFraction, trials),
	})
	res.Notes = append(res.Notes,
		"the Chernoff/union bound must dominate the Monte Carlo estimate; equality is not expected (the bound is loose)")
	return res, nil
}
