package experiments

import (
	"fmt"
	"pop/internal/cluster"
	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

// Extensions exercises the features the paper mentions but leaves to future
// work or describes only in prose:
//
//   - geographic partitioning of commodities (§3.2's "assign geographically
//     close clients and resources to the same sub-problem") versus random;
//   - POP composed with NCFlow as the sub-problem solver (§3.4
//     "Composability", §8 "POP and NCFlow can be used together");
//   - lexicographic (water-filling) max-min fairness, the refinement Gavel
//     itself ships, run exact and under POP.
func Extensions(scale Scale) (*Result, error) {
	res := &Result{
		Name:   "ext",
		Title:  "Extensions: geo partitioning, POP×NCFlow, water-filling fairness",
		Header: []string{"experiment", "method", "runtime", "quality", "note"},
	}

	// --- TE extensions on a shared instance ---
	factor := pick(scale, 0.3, 0.6, 1.0)
	commodities := pick(scale, 800, 1500, 3000)
	tp := topo.GenerateScaled("Cogentco", factor)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 61,
	})
	inst := te.NewInstance(tp, ds, 4)

	var exact *te.Allocation
	dExact, err := timed(func() error {
		var e error
		exact, e = te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
		return e
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{"TE max-flow", "Exact sol.", fdur(dExact), "1.000", "baseline"})

	addTE := func(label, note string, run func() (*te.Allocation, error)) error {
		var a *te.Allocation
		d, err := timed(func() error {
			var e error
			a, e = run()
			return e
		})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		res.Rows = append(res.Rows, []string{
			"TE max-flow", label, fdur(d), fs(a.TotalFlow/exact.TotalFlow, 3), note,
		})
		return nil
	}
	k := 8
	if err := addTE(fmt.Sprintf("POP-%d random", k), "paper default", func() (*te.Allocation, error) {
		return te.SolvePOP(inst, te.MaxTotalFlow, core.Options{K: k, Seed: 5, Parallel: true}, lp.Options{})
	}); err != nil {
		return nil, err
	}
	if err := addTE(fmt.Sprintf("POP-%d geo", k), "§3.2 future work", func() (*te.Allocation, error) {
		return te.SolvePOPGeo(inst, te.MaxTotalFlow, k, 5, true, lp.Options{})
	}); err != nil {
		return nil, err
	}
	if err := addTE(fmt.Sprintf("POP-%d × NCFlow", k), "§3.4 composability", func() (*te.Allocation, error) {
		return te.SolvePOPWithNCFlow(inst, core.Options{K: k, Seed: 5, Parallel: true}, te.NCFlowOptions{Seed: 1})
	}); err != nil {
		return nil, err
	}

	// --- water-filling fairness ---
	nJobs := pick(scale, 24, 48, 96)
	perType := pick(scale, 8.0, 16.0, 32.0)
	jobs := cluster.GenerateJobs(nJobs, 67, 0)
	cl := cluster.NewCluster(perType, perType, perType)

	addFair := func(label, note string, run func() (*cluster.Allocation, error)) error {
		var a *cluster.Allocation
		d, err := timed(func() error {
			var e error
			a, e = run()
			return e
		})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		_, mean := cluster.MinMean(cluster.NormalizedRatios(jobs, cl, a))
		res.Rows = append(res.Rows, []string{"fairness", label, fdur(d), fs(mean, 4), note})
		return nil
	}
	if err := addFair("single-level LP", "paper §4.1", func() (*cluster.Allocation, error) {
		return cluster.MaxMinFairness(jobs, cl, lp.Options{})
	}); err != nil {
		return nil, err
	}
	if err := addFair("water-filling", "lexicographic", func() (*cluster.Allocation, error) {
		return cluster.MaxMinFairnessWaterfill(jobs, cl, lp.Options{})
	}); err != nil {
		return nil, err
	}
	if err := addFair("POP-2 water-filling", "composed", func() (*cluster.Allocation, error) {
		return cluster.SolvePOP(jobs, cl, cluster.MaxMinFairnessWaterfill,
			core.Options{K: 2, Seed: 7, Parallel: true}, lp.Options{})
	}); err != nil {
		return nil, err
	}

	res.Notes = append(res.Notes,
		"quality column: flow ratio vs exact for TE rows, mean normalized throughput for fairness rows")
	return res, nil
}
