package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestFig15ShapeHolds: with resource splitting the flow must dominate the
// sharded variant at every k — the paper's Figure 15 claim.
func TestFig15ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Fig15(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		split, err1 := strconv.ParseFloat(row[1], 64)
		shard, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if shard > split {
			t.Fatalf("k=%s: sharded %g beat resource splitting %g", row[0], shard, split)
		}
	}
	// The gap must widen with k (collapse without resource splitting).
	firstShard, _ := strconv.ParseFloat(res.Rows[0][2], 64)
	lastShard, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][2], 64)
	if lastShard >= firstShard {
		t.Fatalf("sharded flow did not collapse with k: %g → %g", firstShard, lastShard)
	}
}

// TestFig2ShapeHolds: POP variants sit between Gandiva and exact on
// quality, and Gandiva is the fastest non-LP method.
func TestFig2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Fig2(Small)
	if err != nil {
		t.Fatal(err)
	}
	quality := map[string]float64{}
	for _, row := range res.Rows {
		q, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("unparseable quality in %v", row)
		}
		quality[row[0]] = q
	}
	if quality["Exact sol."] < 0.999 {
		t.Fatalf("exact quality %g != 1", quality["Exact sol."])
	}
	for _, label := range []string{"POP-2", "POP-4", "POP-8"} {
		q := quality[label]
		if q > 1.001 {
			t.Fatalf("%s beat exact: %g", label, q)
		}
		if q < quality["Gandiva"] {
			t.Fatalf("%s quality %g below Gandiva %g", label, q, quality["Gandiva"])
		}
	}
}

// TestFig13ShapeHolds: the exact MILP moves the least data among methods
// that reach the band, and POP is at least 10× faster than exact.
func TestFig13ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Fig13(Small)
	if err != nil {
		t.Fatal(err)
	}
	var exactMoves, popMoves float64
	var exactRuntime, popRuntime float64
	for _, row := range res.Rows {
		moves, _ := strconv.ParseFloat(row[2], 64)
		switch {
		case row[0] == "Exact sol.":
			exactMoves = moves
			exactRuntime = parseDur(t, row[1])
		case strings.HasPrefix(row[0], "POP-") && popRuntime == 0:
			popMoves = moves
			popRuntime = parseDur(t, row[1])
		}
	}
	if popMoves < exactMoves {
		t.Fatalf("POP moved less data (%g) than the exact optimum (%g)", popMoves, exactMoves)
	}
	if popRuntime*10 > exactRuntime {
		t.Fatalf("POP runtime %g not 10x below exact %g", popRuntime, exactRuntime)
	}
}

// TestSection51BoundDominatesMC re-asserts the bound/Monte-Carlo relation
// encoded in the sec51 table.
func TestSection51BoundDominatesMC(t *testing.T) {
	res, err := Section51(Small)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if !strings.Contains(row[3], "trials") {
			continue
		}
		found = true
		bound, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		empStr := strings.Fields(row[3])[0]
		emp, err := strconv.ParseFloat(empStr, 64)
		if err != nil {
			t.Fatal(err)
		}
		if emp > bound+1e-9 {
			t.Fatalf("empirical %g exceeds bound %g", emp, bound)
		}
	}
	if !found {
		t.Fatal("no Monte Carlo row in sec51")
	}
}
