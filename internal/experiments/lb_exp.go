package experiments

import (
	"fmt"
	"time"

	"pop/internal/core"
	"pop/internal/lb"
	"pop/internal/lp"
	"pop/internal/milp"
	"pop/internal/online"
)

// Fig13 regenerates Figure 13: the minimize-shard-movement load balancing
// policy — average runtime and shard movements per round for the exact
// MILP, POP variants, and the E-Store greedy, over a multi-round
// simulation with shifting loads (paper: 1024 shards / 64 servers, 100
// rounds).
func Fig13(scale Scale) (*Result, error) {
	numShards := pick(scale, 16, 48, 128)
	numServers := pick(scale, 4, 12, 32)
	rounds := pick(scale, 3, 6, 20)
	ks := pick(scale, []int{2}, []int{2, 4}, []int{4, 16})
	nodeCap := pick(scale, 2000, 6000, 20000)
	timeLimit := pick(scale, 5*time.Second, 30*time.Second, 5*time.Minute)

	res := &Result{
		Name:   "fig13",
		Title:  "Load balancing: runtime and shard movements (paper Fig. 13)",
		Header: []string{"method", "avg runtime", "avg movements", "avg band deviation", "optimal rounds", "nodes (warm)", "pivots (dual)"},
		Notes: []string{
			fmt.Sprintf("scaled to %d shards / %d servers, %d rounds (paper: 1024/64, 100 rounds); MILP capped at %d nodes / %v per round",
				numShards, numServers, rounds, nodeCap, timeLimit),
		},
	}

	milpOpts := milp.Options{MaxNodes: nodeCap, TimeLimit: timeLimit}
	type method struct {
		label  string
		solver lb.Solver
	}
	// The exact path is the stateful solver: each round's root relaxation
	// seeds the next round's search with its basis, and every node re-solve
	// inside a round rides the persistent model's dual simplex.
	methods := []method{
		{"Exact sol.", lb.NewMILPSolver(milpOpts).Solve},
	}
	for _, k := range ks {
		k := k
		methods = append(methods, method{fmt.Sprintf("POP-%d", k), func(in *lb.Instance) (*lb.Assignment, error) {
			return lb.SolvePOP(in, core.Options{K: k, Seed: 9, Parallel: true}, milpOpts)
		}})
	}
	methods = append(methods, method{"Greedy", func(in *lb.Instance) (*lb.Assignment, error) {
		return lb.SolveGreedy(in), nil
	}})
	// The online engine on the continuous relaxation: shard-load deltas
	// dirty only their own sub-problem, which re-solves warm-started.
	eng, err := online.NewLBEngine(online.Options{K: ks[0], Parallel: true}, lp.Options{})
	if err != nil {
		return nil, err
	}
	methods = append(methods, method{fmt.Sprintf("POP-%d online LP", ks[0]), eng.Solver()})

	for _, m := range methods {
		inst := lb.NewInstance(numShards, numServers, 0.05, 77)
		r, err := lb.RunRounds(inst, rounds, 55, m.solver)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.label, err)
		}
		nodes, pivots := "-", "-"
		if r.Search.Nodes > 0 {
			nodes = fmt.Sprintf("%d (%d)", r.Search.Nodes, r.Search.WarmNodes)
			pivots = fmt.Sprintf("%d (%d)", r.Search.LPPivots, r.Search.DualPivots)
		}
		res.Rows = append(res.Rows, []string{
			m.label,
			fdur(r.AvgRuntime),
			fs(r.AvgMovements, 1),
			fs(r.AvgDeviation, 3),
			fmt.Sprintf("%d/%d", r.OptimalRounds, rounds),
			nodes,
			pivots,
		})
	}
	return res, nil
}
