package experiments

import (
	"fmt"
	"time"

	"pop/internal/cluster"
	"pop/internal/core"
	"pop/internal/gavelsim"
	"pop/internal/lp"
	"pop/internal/online"
	"pop/internal/propfair"
)

// Fig2 regenerates Figure 2: the max-min fairness policy with space sharing
// on a large cluster — allocation quality (mean normalized throughput,
// relative to exact) and runtime for the exact LP, POP-2/4/8, and the
// Gandiva heuristic. Paper scale: 2048 jobs on 1536 GPUs; see Notes for the
// scaled-down sizing.
func Fig2(scale Scale) (*Result, error) {
	nJobs := pick(scale, 36, 72, 144)
	perType := pick(scale, 9.0, 18.0, 36.0)
	jobs := cluster.GenerateJobs(nJobs, 42, 0)
	c := cluster.NewCluster(perType, perType, perType)

	res := &Result{
		Name:   "fig2",
		Title:  "Max-min fairness with space sharing (paper Fig. 2)",
		Header: []string{"method", "runtime", "min norm thr", "mean norm thr", "quality vs exact", "LP vars"},
		Notes: []string{
			fmt.Sprintf("scaled to %d jobs / %g GPUs (paper: 2048 jobs / 1536 GPUs)", nJobs, 3*perType),
		},
	}

	var exactMean float64
	addRow := func(label string, d time.Duration, a *cluster.Allocation) {
		min, mean := cluster.MinMean(cluster.NormalizedRatios(jobs, c, a))
		if label == "Exact sol." {
			exactMean = mean
		}
		rel := 0.0
		if exactMean > 0 {
			rel = mean / exactMean
		}
		res.Rows = append(res.Rows, []string{
			label, fdur(d), fs(min, 4), fs(mean, 4), fs(rel, 3), fmt.Sprintf("%d", a.LPVariables),
		})
	}

	var exact *cluster.Allocation
	d, err := timed(func() error {
		var e error
		exact, e = cluster.MaxMinFairnessSpaceSharing(jobs, c, lp.Options{})
		return e
	})
	if err != nil {
		return nil, err
	}
	addRow("Exact sol.", d, exact)

	for _, k := range []int{2, 4, 8} {
		var a *cluster.Allocation
		d, err := timed(func() error {
			var e error
			a, e = cluster.SolvePOPSpaceSharing(jobs, c,
				core.Options{K: k, Seed: 17, Parallel: true}, lp.Options{})
			return e
		})
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("POP-%d", k), d, a)
	}

	var g *cluster.Allocation
	d, err = timed(func() error {
		g = cluster.Gandiva(jobs, c, 5)
		return nil
	})
	if err != nil {
		return nil, err
	}
	addRow("Gandiva", d, g)
	return res, nil
}

// Fig6 regenerates Figure 6: end-to-end average JCT against policy
// computation time for the max-min fairness policy with space sharing, via
// the discrete-event simulator (paper: Gavel's simulator on a 96-GPU
// cluster).
func Fig6(scale Scale) (*Result, error) {
	perType := pick(scale, 4.0, 8.0, 32.0)
	nJobs := pick(scale, 14, 30, 120)
	cfg := gavelsim.Config{
		Cluster:            cluster.NewCluster(perType, perType, perType),
		NumJobs:            nJobs,
		ArrivalRatePerHour: pick(scale, 5.0, 8.0, 12.0),
		RoundSeconds:       360,
		Seed:               11,
	}
	res := &Result{
		Name:   "fig6",
		Title:  "Average JCT vs policy runtime, max-min fairness + space sharing (paper Fig. 6)",
		Header: []string{"method", "mean policy time", "avg JCT (h)", "completed"},
		Notes: []string{
			fmt.Sprintf("scaled to %d jobs on %g GPUs (paper: 96 GPUs)", nJobs, 3*perType),
		},
	}

	run := func(label string, policy gavelsim.Policy) error {
		r, err := gavelsim.Run(cfg, policy)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		res.Rows = append(res.Rows, []string{
			label, fdur(r.MeanPolicyTime()), fs(r.AvgJCTHours, 2), fmt.Sprintf("%d/%d", r.Completed, nJobs),
		})
		return nil
	}

	if err := run("Exact sol.", func(js []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return cluster.MaxMinFairnessSpaceSharing(js, c, lp.Options{})
	}); err != nil {
		return nil, err
	}
	for _, k := range []int{2, 4, 8} {
		k := k
		if err := run(fmt.Sprintf("POP-%d", k), func(js []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
			return cluster.SolvePOPSpaceSharing(js, c, core.Options{K: k, Seed: 23, Parallel: true}, lp.Options{})
		}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig7 regenerates Figure 7: the proportional fairness policy — runtime
// against the sum-of-log-utilities objective for the exact price-discovery
// solve and POP-2/4/8 (paper: 10⁶ jobs on the custom solver).
func Fig7(scale Scale) (*Result, error) {
	nJobs := pick(scale, 200, 1000, 5000)
	perType := float64(nJobs) / 4
	jobs := cluster.GenerateJobs(nJobs, 31, 0.1)
	c := cluster.NewCluster(perType, perType, perType)
	pd := propfair.PDOptions{MaxIters: pick(scale, 1200, 1500, 2000)}

	res := &Result{
		Name:   "fig7",
		Title:  "Proportional fairness: runtime vs Σ log utility (paper Fig. 7)",
		Header: []string{"method", "runtime", "sum log utility", "gap vs exact"},
		Notes: []string{
			fmt.Sprintf("scaled to %d jobs (paper: 10⁶ jobs); price-discovery solver substitutes the paper's PyTorch solver", nJobs),
		},
	}

	var exactObj float64
	addRow := func(label string, d time.Duration, a *cluster.Allocation) {
		obj := cluster.LogUtility(jobs, a)
		if label == "Exact sol." {
			exactObj = obj
		}
		res.Rows = append(res.Rows, []string{
			label, fdur(d), fs(obj, 2), fs(exactObj-obj, 4),
		})
	}

	var exact *cluster.Allocation
	d, err := timed(func() error {
		var e error
		exact, e = cluster.ProportionalFairness(jobs, c, pd)
		return e
	})
	if err != nil {
		return nil, err
	}
	addRow("Exact sol.", d, exact)

	for _, k := range []int{2, 4, 8} {
		var a *cluster.Allocation
		d, err := timed(func() error {
			var e error
			a, e = cluster.SolvePOPPropFairness(jobs, c, core.Options{K: k, Seed: 3, Parallel: true}, pd)
			return e
		})
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("POP-%d", k), d, a)
	}
	return res, nil
}

// Fig8 regenerates Figure 8: the minimize-makespan policy — policy runtime
// against the end-to-end makespan over a static batch of jobs, via the
// simulator with all jobs submitted at t=0.
func Fig8(scale Scale) (*Result, error) {
	perType := pick(scale, 6.0, 12.0, 24.0)
	nJobs := pick(scale, 16, 40, 96)
	cfg := gavelsim.Config{
		Cluster:      cluster.NewCluster(perType, perType, perType),
		NumJobs:      nJobs,
		AllAtOnce:    true,
		RoundSeconds: 360,
		Seed:         13,
	}
	res := &Result{
		Name:   "fig8",
		Title:  "Minimize makespan: policy runtime vs makespan (paper Fig. 8)",
		Header: []string{"method", "mean policy time", "makespan (h)", "completed"},
		Notes: []string{
			fmt.Sprintf("scaled to %d jobs on %g GPUs", nJobs, 3*perType),
		},
	}

	run := func(label string, policy gavelsim.Policy) error {
		r, err := gavelsim.Run(cfg, policy)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		res.Rows = append(res.Rows, []string{
			label, fdur(r.MeanPolicyTime()), fs(r.MakespanHours, 2), fmt.Sprintf("%d/%d", r.Completed, nJobs),
		})
		return nil
	}

	if err := run("Exact sol.", func(js []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return cluster.MinMakespan(js, c, lp.Options{})
	}); err != nil {
		return nil, err
	}
	for _, k := range []int{2, 4, 8} {
		k := k
		if err := run(fmt.Sprintf("POP-%d", k), func(js []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
			return cluster.SolvePOP(js, c, cluster.MinMakespan, core.Options{K: k, Seed: 29, Parallel: true}, lp.Options{})
		}); err != nil {
			return nil, err
		}
	}
	// The online engine: same POP decomposition, but sub-problems persist
	// across rounds — only dirtied ones re-solve, warm-started.
	eng, err := online.NewClusterEngine(cfg.Cluster, online.MinMakespan, online.Options{K: 4, Parallel: true}, lp.Options{})
	if err != nil {
		return nil, err
	}
	if err := run("POP-4 online", eng.Policy()); err != nil {
		return nil, err
	}
	return res, nil
}
