// Package experiments regenerates every table and figure in the POP
// paper's evaluation (§7). Each experiment is a function from a Scale to a
// Result table whose rows mirror the series plotted in the paper; the
// cmd/popbench binary prints them, the repository's benchmarks time them,
// and EXPERIMENTS.md records paper-vs-measured values.
//
// Scales: Small keeps the full suite runnable in minutes (used by tests and
// benchmarks), Medium is the popbench default, Large approaches the paper's
// problem sizes. Large-scale runtime is dominated by LP sub-problem solves,
// which since the sparse-LU basis backend (internal/lp, lp.SparseLU) scale
// with constraint-matrix fill rather than the cube of the row count.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scale selects experiment sizing.
type Scale int8

const (
	// Small: seconds per experiment; tests and benchmarks.
	Small Scale = iota
	// Medium: tens of seconds; the popbench default.
	Medium
	// Large: minutes+; closest to paper scale.
	Large
)

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale parses "small", "medium", or "large".
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return Small, fmt.Errorf("experiments: unknown scale %q (want small|medium|large)", s)
}

// Result is one regenerated table or figure.
type Result struct {
	Name   string // experiment id, e.g. "fig9"
	Title  string // what the paper's table/figure shows
	Header []string
	Rows   [][]string
	Notes  []string // substitutions, scale caveats
}

// String renders an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Scale) (*Result, error)

// Entry registers one experiment.
type Entry struct {
	Name string
	Desc string
	Run  Runner
}

// Registry lists every reproducible table and figure, in paper order.
func Registry() []Entry {
	return []Entry{
		{"table1", "WAN topologies used for traffic engineering", Table1},
		{"fig2", "max-min fairness + space sharing: quality vs runtime (vs Gandiva)", Fig2},
		{"fig6", "end-to-end average JCT vs policy runtime (max-min + space sharing)", Fig6},
		{"fig7", "proportional fairness: runtime vs sum-of-log utility", Fig7},
		{"fig8", "minimize makespan: policy runtime vs makespan", Fig8},
		{"fig9", "TE max total flow on Kdl: exact vs POP vs CSPF vs NCFlow", Fig9},
		{"fig10", "TE max-flow sweep: POP-16 speedup and flow ratio across topologies/TMs", Fig10},
		{"fig11", "5-day WAN trace: NCFlow vs POP (with/without client splitting)", Fig11},
		{"fig12", "TE max concurrent flow on Kdl: exact vs POP", Fig12},
		{"fig13", "load balancing: MILP vs POP vs greedy (runtime, movements)", Fig13},
		{"fig14", "client splitting CDFs on Gravity vs Poisson traffic", Fig14},
		{"fig15", "resource splitting vs topology sharding as k grows", Fig15},
		{"fig16", "partitioning strategies: random vs power-of-2 vs skewed", Fig16},
		{"sec51", "§5.1/Appendix A Chernoff bound values and Monte Carlo check", Section51},
		{"ext", "extensions: geo partitioning, POP×NCFlow composition, water-filling fairness", Extensions},
		{"scaling", "POP quality vs instance granularity (the §5.1 bound, empirically)", Scaling},
	}
}

// Get looks up an experiment by name.
func Get(name string) (Entry, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// --- formatting helpers shared by the experiment files ---

func fs(x float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, x)
}

func fdur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// timed runs f once and returns its duration alongside f's error.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// quantile returns the q-quantile (0..1) of xs (xs is copied and sorted).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := q * float64(len(ys)-1)
	lo := int(pos)
	if lo >= len(ys)-1 {
		return ys[len(ys)-1]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// pick returns the per-scale value.
func pick[T any](s Scale, small, medium, large T) T {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}
