package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunSmall executes every registered experiment at Small
// scale: the full evaluation must be regenerable end to end.
func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := e.Run(Small)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows produced")
			}
			for _, row := range res.Rows {
				if len(row) != len(res.Header) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(res.Header), row)
				}
			}
			out := res.String()
			if !strings.Contains(out, res.Name) {
				t.Fatal("String() missing experiment name")
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestRegistryLookups(t *testing.T) {
	if _, ok := Get("fig9"); !ok {
		t.Fatal("fig9 missing from registry")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unexpected registry hit")
	}
	names := map[string]bool{}
	for _, e := range Registry() {
		if names[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
		if e.Desc == "" {
			t.Fatalf("experiment %q has no description", e.Name)
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"small", "MEDIUM", "Large"} {
		if _, err := ParseScale(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("expected error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := quantile(xs, 0.5); q != 2.5 {
		t.Fatalf("median = %g", q)
	}
	if q := quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %g", q)
	}
	if q := quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %g", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

// TestFig9ShapeHolds asserts the paper's qualitative claims on the Fig 9
// rows: POP variants are faster than exact and achieve a high flow ratio,
// and the heuristics do not beat the exact optimum.
func TestFig9ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Fig9(Small)
	if err != nil {
		t.Fatal(err)
	}
	var exactSecs float64
	for _, row := range res.Rows {
		label, runtime, ratio := row[0], row[1], row[3]
		secs := parseDur(t, runtime)
		rf, _ := strconv.ParseFloat(ratio, 64)
		switch {
		case label == "Exact sol.":
			exactSecs = secs
			if rf < 0.999 {
				t.Fatalf("exact ratio %g != 1", rf)
			}
		case strings.HasPrefix(label, "POP-"):
			if secs >= exactSecs {
				t.Errorf("%s runtime %g not faster than exact %g", label, secs, exactSecs)
			}
			if rf < 0.5 || rf > 1.001 {
				t.Errorf("%s flow ratio %g out of range", label, rf)
			}
		default: // CSPF, NCFlow
			if rf > 1.001 {
				t.Errorf("%s beat the exact optimum: %g", label, rf)
			}
		}
	}
}

func parseDur(t *testing.T, s string) float64 {
	t.Helper()
	switch {
	case strings.HasSuffix(s, "µs"):
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "µs"), 64)
		return v / 1e6
	case strings.HasSuffix(s, "ms"):
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return v / 1e3
	case strings.HasSuffix(s, "s"):
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		return v
	}
	t.Fatalf("unparseable duration %q", s)
	return 0
}
