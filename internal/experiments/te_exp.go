package experiments

import (
	"fmt"
	"time"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

// Table1 regenerates Table 1: the WAN topologies used to benchmark POP for
// traffic engineering, with their (synthesized) node and edge counts.
func Table1(Scale) (*Result, error) {
	res := &Result{
		Name:   "table1",
		Title:  "WAN topologies (paper Table 1)",
		Header: []string{"topology", "nodes", "edges", "total capacity"},
		Notes: []string{
			"topologies are synthesized with Table 1's exact node/edge counts (Topology Zoo files are not redistributable); see DESIGN.md",
		},
	}
	for _, spec := range topo.Table1() {
		t := topo.Generate(spec.Name)
		res.Rows = append(res.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", t.G.N),
			fmt.Sprintf("%d", len(t.G.Edges)),
			fs(t.TotalCapacity(), 0),
		})
	}
	return res, nil
}

// teInstance builds the standard benchmark instance for the Kdl figures.
// Quality under POP-k depends on commodities *per sub-problem* (granularity
// condition 2), so commodity counts are chosen to keep k=16 meaningful at
// every scale; the paper's 5·10⁵-demand instances are far denser still.
func teInstance(scale Scale, model tm.Model, seed int64) *te.Instance {
	factor := pick(scale, 0.12, 0.3, 1.0)
	commodities := pick(scale, 1200, 3000, 20000)
	tp := topo.GenerateScaled("Kdl", factor)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: model,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: seed,
	})
	return te.NewInstance(tp, ds, 4)
}

// popKs returns the POP fan-outs used in Figures 9 and 12, capped so each
// sub-problem keeps at least ~30 commodities (below that, sub-problems are
// no longer granular and quality says nothing about the method).
func popKs(numDemands int) []int {
	out := []int{}
	for _, k := range []int{4, 16, 64} {
		if numDemands/k >= 30 {
			out = append(out, k)
		}
	}
	return out
}

// Fig9 regenerates Figure 9: max total flow on the Kdl topology — runtime
// and total allocated flow for the exact LP, POP-4/16/64, CSPF, and the
// simplified NCFlow.
func Fig9(scale Scale) (*Result, error) {
	inst := teInstance(scale, tm.Gravity, 7)
	res := &Result{
		Name:   "fig9",
		Title:  "TE max total flow on Kdl (paper Fig. 9)",
		Header: []string{"method", "runtime", "total flow", "flow vs exact", "LP vars"},
		Notes: []string{
			fmt.Sprintf("Kdl scaled to %d nodes / %d edges, %d commodities (paper: 754/1790, >5·10⁵ demands)",
				inst.Topo.G.N, len(inst.Topo.G.Edges), len(inst.Demands)),
		},
	}

	var exactFlow float64
	addRow := func(label string, d time.Duration, flow float64, vars int) {
		rel := 0.0
		if exactFlow > 0 {
			rel = flow / exactFlow
		}
		res.Rows = append(res.Rows, []string{label, fdur(d), fs(flow, 1), fs(rel, 3), fmt.Sprintf("%d", vars)})
	}

	var exact *te.Allocation
	d, err := timed(func() error {
		var e error
		exact, e = te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
		return e
	})
	if err != nil {
		return nil, err
	}
	exactFlow = exact.TotalFlow
	addRow("Exact sol.", d, exact.TotalFlow, exact.LPVariables)

	for _, k := range popKs(len(inst.Demands)) {
		var a *te.Allocation
		d, err := timed(func() error {
			var e error
			a, e = te.SolvePOP(inst, te.MaxTotalFlow, core.Options{K: k, Seed: 3, Parallel: true}, lp.Options{})
			return e
		})
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("POP-%d", k), d, a.TotalFlow, a.LPVariables)
	}

	var cspf *te.Allocation
	d, err = timed(func() error {
		cspf = te.SolveCSPF(inst)
		return nil
	})
	if err != nil {
		return nil, err
	}
	addRow("CSPF", d, cspf.TotalFlow, 0)

	var nc *te.Allocation
	d, err = timed(func() error {
		var e error
		nc, e = te.SolveNCFlow(inst, te.NCFlowOptions{Seed: 1})
		return e
	})
	if err != nil {
		return nil, err
	}
	addRow("NCFlow", d, nc.TotalFlow, nc.LPVariables)
	return res, nil
}

// Fig10 regenerates Figure 10: POP-16 speedup and flow ratio relative to
// the exact LP across multiple topologies and traffic models (the paper's
// 275-experiment scatter, at reduced scale).
func Fig10(scale Scale) (*Result, error) {
	factor := pick(scale, 0.18, 0.35, 1.0)
	commodities := pick(scale, 800, 1500, 5000)
	names := pick(scale,
		[]string{"Cogentco", "Deltacom"},
		[]string{"Kdl", "Cogentco", "UsCarrier", "Deltacom"},
		[]string{"Kdl", "Cogentco", "UsCarrier", "Colt", "GtsCe", "TataNld", "DialtelecomCz", "Deltacom"})
	models := []tm.Model{tm.Gravity, tm.Uniform}
	if scale >= Medium {
		models = tm.Models()
	}

	res := &Result{
		Name:   "fig10",
		Title:  "POP-16 vs exact across topologies and traffic models (paper Fig. 10)",
		Header: []string{"topology", "model", "speedup", "flow ratio"},
		Notes: []string{
			fmt.Sprintf("topologies scaled by %.2f, %d commodities each; Poisson runs use client splitting t=0.75 as in the paper", factor, commodities),
		},
	}
	for _, name := range names {
		tp := topo.GenerateScaled(name, factor)
		for _, model := range models {
			ds := tm.Generate(tm.Config{
				Nodes: tp.G.N, Commodities: commodities, Model: model,
				TotalDemand: tp.TotalCapacity() * 0.3, Seed: 19,
			})
			inst := te.NewInstance(tp, ds, 4)
			var exact *te.Allocation
			dExact, err := timed(func() error {
				var e error
				exact, e = te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
				return e
			})
			if err != nil {
				return nil, err
			}
			splitT := 0.0
			if model == tm.Poisson {
				splitT = 0.75
			}
			var popA *te.Allocation
			dPop, err := timed(func() error {
				var e error
				popA, e = te.SolvePOP(inst, te.MaxTotalFlow,
					core.Options{K: 16, Seed: 5, Parallel: true, SplitT: splitT}, lp.Options{})
				return e
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				name, model.String(),
				fs(dExact.Seconds()/dPop.Seconds(), 1) + "x",
				fs(popA.TotalFlow/exact.TotalFlow, 3),
			})
		}
	}
	return res, nil
}

// Fig11 regenerates Figure 11: a multi-day traffic trace on a private-WAN
// stand-in — allocated flow and speedup relative to the exact LP for
// NCFlow, POP without client splitting, and POP with t=0.25 client
// splitting.
func Fig11(scale Scale) (*Result, error) {
	factor := pick(scale, 0.25, 0.5, 1.0)
	steps := pick(scale, 8, 30, 120)
	commodities := pick(scale, 600, 1200, 3000)
	tp := topo.GenerateScaled("Cogentco", factor)
	trace := tm.Diurnal(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: tm.Poisson,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 23,
	}, steps, pick(scale, 5, 12, 24))

	res := &Result{
		Name:   "fig11",
		Title:  "Multi-day WAN trace: flow and speedup vs exact (paper Fig. 11)",
		Header: []string{"method", "median flow ratio", "p10 flow ratio", "median speedup"},
		Notes: []string{
			fmt.Sprintf("synthetic diurnal Poisson trace (%d steps) on Cogentco×%.2f substitutes the paper's private WAN trace", steps, factor),
		},
	}

	type method struct {
		label string
		run   func(*te.Instance) (*te.Allocation, error)
	}
	k := 16
	methods := []method{
		{"NCFlow", func(inst *te.Instance) (*te.Allocation, error) {
			return te.SolveNCFlow(inst, te.NCFlowOptions{Seed: 2})
		}},
		{"POP, +0x", func(inst *te.Instance) (*te.Allocation, error) {
			return te.SolvePOP(inst, te.MaxTotalFlow, core.Options{K: k, Seed: 7, Parallel: true}, lp.Options{})
		}},
		{"POP, +0.25x", func(inst *te.Instance) (*te.Allocation, error) {
			return te.SolvePOP(inst, te.MaxTotalFlow, core.Options{K: k, Seed: 7, Parallel: true, SplitT: 0.25}, lp.Options{})
		}},
	}

	ratios := make([][]float64, len(methods))
	speedups := make([][]float64, len(methods))
	for _, demands := range trace {
		inst := te.NewInstance(tp, demands, 4)
		var exact *te.Allocation
		dExact, err := timed(func() error {
			var e error
			exact, e = te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
			return e
		})
		if err != nil {
			return nil, err
		}
		for mi, m := range methods {
			var a *te.Allocation
			d, err := timed(func() error {
				var e error
				a, e = m.run(inst)
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.label, err)
			}
			ratios[mi] = append(ratios[mi], a.TotalFlow/exact.TotalFlow)
			speedups[mi] = append(speedups[mi], dExact.Seconds()/d.Seconds())
		}
	}
	for mi, m := range methods {
		res.Rows = append(res.Rows, []string{
			m.label,
			fs(quantile(ratios[mi], 0.5), 3),
			fs(quantile(ratios[mi], 0.1), 3),
			fs(quantile(speedups[mi], 0.5), 1) + "x",
		})
	}
	return res, nil
}

// Fig12 regenerates Figure 12: max concurrent flow on Kdl — runtime and the
// minimum fractional flow for the exact LP and POP variants. The exact
// concurrent-flow LP is far harder than max-flow (the epigraph variable
// couples every commodity), which is exactly why the paper reports its
// largest speedups (1000×) here; the instance is kept smaller than Fig9's
// so the exact solve stays tractable.
func Fig12(scale Scale) (*Result, error) {
	factor := pick(scale, 0.12, 0.3, 1.0)
	commodities := pick(scale, 700, 2000, 10000)
	tp := topo.GenerateScaled("Kdl", factor)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 11,
	})
	inst := te.NewInstance(tp, ds, 4)
	res := &Result{
		Name:   "fig12",
		Title:  "TE max concurrent flow on Kdl (paper Fig. 12)",
		Header: []string{"method", "runtime", "min fractional flow", "vs exact"},
		Notes: []string{
			fmt.Sprintf("Kdl scaled to %d nodes, %d commodities", inst.Topo.G.N, len(inst.Demands)),
		},
	}
	var exactFrac float64
	addRow := func(label string, d time.Duration, frac float64) {
		rel := 0.0
		if exactFrac > 0 {
			rel = frac / exactFrac
		}
		res.Rows = append(res.Rows, []string{label, fdur(d), fs(frac, 4), fs(rel, 3)})
	}

	var exact *te.Allocation
	d, err := timed(func() error {
		var e error
		exact, e = te.SolveLP(inst, te.MaxConcurrentFlow, lp.Options{})
		return e
	})
	if err != nil {
		return nil, err
	}
	exactFrac = exact.MinFraction
	addRow("Exact sol.", d, exact.MinFraction)

	for _, k := range popKs(len(inst.Demands)) {
		var a *te.Allocation
		d, err := timed(func() error {
			var e error
			a, e = te.SolvePOP(inst, te.MaxConcurrentFlow, core.Options{K: k, Seed: 13, Parallel: true}, lp.Options{})
			return e
		})
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("POP-%d", k), d, a.MinFraction)
	}
	return res, nil
}

// Fig14 regenerates Figure 14: the effect of client splitting (t = 0, 0.5,
// 1) on total-flow ratio and speedup under Gravity vs Poisson traffic,
// summarized as quartiles over several instances (the paper plots full
// CDFs over ~100 runs).
func Fig14(scale Scale) (*Result, error) {
	factor := pick(scale, 0.3, 0.5, 1.0)
	commodities := pick(scale, 700, 1200, 2500)
	seeds := pick(scale, []int64{1, 2, 3}, []int64{1, 2, 3, 4, 5, 6, 7, 8}, func() []int64 {
		var s []int64
		for i := int64(1); i <= 25; i++ {
			s = append(s, i)
		}
		return s
	}())

	tp := topo.GenerateScaled("Deltacom", factor)
	res := &Result{
		Name:   "fig14",
		Title:  "Client splitting: flow ratio and speedup CDF summaries (paper Fig. 14)",
		Header: []string{"model", "extra clients", "p25 ratio", "median ratio", "p75 ratio", "median speedup"},
		Notes: []string{
			fmt.Sprintf("POP-16 on Deltacom×%.2f, %d commodities, %d seeds per cell", factor, commodities, len(seeds)),
		},
	}
	for _, model := range []tm.Model{tm.Gravity, tm.Poisson} {
		for _, t := range []float64{0, 0.5, 1} {
			var ratios, speeds []float64
			for _, seed := range seeds {
				ds := tm.Generate(tm.Config{
					Nodes: tp.G.N, Commodities: commodities, Model: model,
					TotalDemand: tp.TotalCapacity() * 0.3, Seed: seed,
				})
				inst := te.NewInstance(tp, ds, 4)
				var exact *te.Allocation
				dE, err := timed(func() error {
					var e error
					exact, e = te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
					return e
				})
				if err != nil {
					return nil, err
				}
				var a *te.Allocation
				dP, err := timed(func() error {
					var e error
					a, e = te.SolvePOP(inst, te.MaxTotalFlow,
						core.Options{K: 16, Seed: seed, Parallel: true, SplitT: t}, lp.Options{})
					return e
				})
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, a.TotalFlow/exact.TotalFlow)
				speeds = append(speeds, dE.Seconds()/dP.Seconds())
			}
			res.Rows = append(res.Rows, []string{
				model.String(), fmt.Sprintf("+%gx", t),
				fs(quantile(ratios, 0.25), 3),
				fs(quantile(ratios, 0.5), 3),
				fs(quantile(ratios, 0.75), 3),
				fs(quantile(speeds, 0.5), 1) + "x",
			})
		}
	}
	return res, nil
}

// Fig15 regenerates Figure 15: resource splitting versus sharding the
// topology, as the number of sub-problems grows (Cogentco, Gravity).
func Fig15(scale Scale) (*Result, error) {
	factor := pick(scale, 0.3, 0.6, 1.0)
	commodities := pick(scale, 800, 1500, 3000)
	tp := topo.GenerateScaled("Cogentco", factor)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 31,
	})
	inst := te.NewInstance(tp, ds, 4)

	res := &Result{
		Name:   "fig15",
		Title:  "Resource splitting vs topology sharding (paper Fig. 15)",
		Header: []string{"k", "flow (resource splitting)", "flow (no resource splitting)"},
		Notes: []string{
			fmt.Sprintf("Cogentco×%.2f, Gravity, %d commodities", factor, commodities),
		},
	}
	ks := pick(scale, []int{2, 4, 8, 16}, []int{2, 4, 8, 16, 32}, []int{2, 4, 8, 16, 32})
	for _, k := range ks {
		split, err := te.SolvePOP(inst, te.MaxTotalFlow, core.Options{K: k, Seed: 3, Parallel: true}, lp.Options{})
		if err != nil {
			return nil, err
		}
		shard, err := te.SolveSharded(inst, te.MaxTotalFlow, core.Options{K: k, Seed: 3, Parallel: true}, lp.Options{})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", k), fs(split.TotalFlow, 1), fs(shard.TotalFlow, 1),
		})
	}
	return res, nil
}

// Fig16 regenerates Figure 16: partitioning strategies — random versus
// power-of-two versus deliberately skewed — on the max-flow objective.
func Fig16(scale Scale) (*Result, error) {
	factor := pick(scale, 0.3, 0.6, 1.0)
	commodities := pick(scale, 800, 1500, 3000)
	tp := topo.GenerateScaled("Cogentco", factor)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 37,
	})
	inst := te.NewInstance(tp, ds, 4)

	res := &Result{
		Name:   "fig16",
		Title:  "Partitioning strategies on max-flow (paper Fig. 16)",
		Header: []string{"k", "random", "power-of-2", "skewed"},
		Notes: []string{
			fmt.Sprintf("Cogentco×%.2f, Gravity, %d commodities; skewed groups commodities by demand size", factor, commodities),
		},
	}
	for _, k := range []int{1, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, strat := range []core.Strategy{core.Random, core.PowerOfTwo, core.Skewed} {
			a, err := te.SolvePOP(inst, te.MaxTotalFlow,
				core.Options{K: k, Seed: 41, Strategy: strat, Parallel: true}, lp.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, fs(a.TotalFlow, 1))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
