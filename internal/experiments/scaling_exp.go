package experiments

import (
	"fmt"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

// Scaling regenerates the granularity table referenced throughout
// EXPERIMENTS.md: POP's flow ratio at fixed k as the commodity count grows.
// This is the empirical face of Equation 2 (§5.1): the probability of a
// large optimality gap decays exponentially in the number of clients, so
// quality at fixed k climbs toward 1 with instance size — which is why the
// paper's 10⁵–10⁶-client instances sit within 1.5% of optimal while small
// instances do not.
func Scaling(scale Scale) (*Result, error) {
	counts := pick(scale,
		[]int{60, 150, 300, 600, 1000},
		[]int{150, 300, 600, 1200, 2500},
		[]int{300, 1000, 3000, 6000, 10000})
	ks := []int{2, 4, 8}
	tp := topo.GenerateScaled("Deltacom", 0.3)

	res := &Result{
		Name:   "scaling",
		Title:  "POP quality vs instance granularity (Equation 2's prediction)",
		Header: []string{"commodities", "per-sub @k=8", "POP-2 ratio", "POP-4 ratio", "POP-8 ratio"},
		Notes: []string{
			"Deltacom×0.3, Gravity, max-flow; quality at fixed k climbs with client count exactly as §5.1 predicts",
		},
	}
	for _, nc := range counts {
		ds := tm.Generate(tm.Config{
			Nodes: tp.G.N, Commodities: nc, Model: tm.Gravity,
			TotalDemand: tp.TotalCapacity() * 0.25, Seed: 3,
		})
		inst := te.NewInstance(tp, ds, 4)
		exact, err := te.SolveLP(inst, te.MaxTotalFlow, lp.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", len(inst.Demands)), fmt.Sprintf("%d", len(inst.Demands)/8)}
		for _, k := range ks {
			a, err := te.SolvePOP(inst, te.MaxTotalFlow,
				core.Options{K: k, Seed: 1, Parallel: true}, lp.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, fs(a.TotalFlow/exact.TotalFlow, 3))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
