package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func requireStatus(t *testing.T, sol *Solution, want Status) {
	t.Helper()
	if sol.Status != want {
		t.Fatalf("status = %v, want %v (obj=%g, iters=%d)", sol.Status, want, sol.Objective, sol.Iterations)
	}
}

func requireObj(t *testing.T, sol *Solution, want float64) {
	t.Helper()
	requireStatus(t, sol, Optimal)
	if !approxEq(sol.Objective, want, 1e-6) {
		t.Fatalf("objective = %.9g, want %.9g", sol.Objective, want)
	}
}

func TestTrivialMaximize(t *testing.T) {
	// max x + 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0 → (2,2): 6
	p := NewProblem(Maximize)
	x := p.AddVariable(1, 0, Inf, "x")
	y := p.AddVariable(2, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4, "cap")
	p.AddConstraint([]int{x}, []float64{1}, LE, 3, "xcap")
	p.AddConstraint([]int{y}, []float64{1}, LE, 2, "ycap")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 6)
	if !approxEq(sol.X[x], 2, 1e-6) || !approxEq(sol.X[y], 2, 1e-6) {
		t.Fatalf("X = %v, want [2 2]", sol.X)
	}
}

func TestTrivialMinimize(t *testing.T) {
	// min 2x + 3y  s.t. x + y >= 5, x >= 1, y >= 0 → (5,0)? check: obj(5,0)=10,
	// obj(1,4)=14 → x=5, y=0, objective 10.
	p := NewProblem(Minimize)
	x := p.AddVariable(2, 1, Inf, "x")
	y := p.AddVariable(3, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, GE, 5, "demand")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 10)
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y  s.t. x + 2y = 4, 0 <= x,y <= 3 → y=2,x=0: 2.
	p := NewProblem(Minimize)
	x := p.AddVariable(1, 0, 3, "x")
	y := p.AddVariable(1, 0, 3, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 2}, EQ, 4, "bal")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 2)
	if !approxEq(sol.X[x]+2*sol.X[y], 4, 1e-7) {
		t.Fatalf("equality violated: %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(1, 0, 10, "x")
	p.AddConstraint([]int{x}, []float64{1}, GE, 5, "")
	p.AddConstraint([]int{x}, []float64{1}, LE, 3, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Infeasible)
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable(1, 0, 1, "x")
	y := p.AddVariable(1, 0, 1, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 5, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Infeasible)
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(1, 0, Inf, "x")
	y := p.AddVariable(0, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, -1}, LE, 1, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Unbounded)
}

func TestBoundedVariablesOnly(t *testing.T) {
	// No constraints at all: vars go to their best bounds.
	p := NewProblem(Maximize)
	x := p.AddVariable(3, -1, 2, "x")
	y := p.AddVariable(-5, -4, 7, "y")
	z := p.AddVariable(0, 1, 2, "z")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 3*2+(-5)*(-4))
	if sol.X[x] != 2 || sol.X[y] != -4 {
		t.Fatalf("X = %v", sol.X)
	}
	_ = z
}

func TestFreeVariable(t *testing.T) {
	// min x  s.t. x >= -7 via constraint (x itself free) → -7.
	p := NewProblem(Minimize)
	x := p.AddVariable(1, math.Inf(-1), Inf, "x")
	p.AddConstraint([]int{x}, []float64{1}, GE, -7, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, -7)
}

func TestFreeVariableEpigraph(t *testing.T) {
	// Max-min via epigraph with a free t: max t s.t. t <= 3, t <= 5.
	p := NewProblem(Maximize)
	tv := p.AddVariable(1, math.Inf(-1), Inf, "t")
	p.AddConstraint([]int{tv}, []float64{1}, LE, 3, "")
	p.AddConstraint([]int{tv}, []float64{1}, LE, 5, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 3)
}

func TestNegativeRHS(t *testing.T) {
	// min x + y s.t. -x - y <= -3 (i.e. x + y >= 3), x,y in [0, 10].
	p := NewProblem(Minimize)
	x := p.AddVariable(1, 0, 10, "x")
	y := p.AddVariable(1, 0, 10, "y")
	p.AddConstraint([]int{x, y}, []float64{-1, -1}, LE, -3, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 3)
}

func TestUpperBoundedStart(t *testing.T) {
	// Variable with only an upper bound starts nonbasic there.
	p := NewProblem(Minimize)
	x := p.AddVariable(-1, math.Inf(-1), 4, "x")
	y := p.AddVariable(1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, GE, 2, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, -4)
	if !approxEq(sol.X[x], 4, 1e-7) {
		t.Fatalf("x = %g, want 4", sol.X[x])
	}
}

func TestDuplicateIndicesMerged(t *testing.T) {
	// x appears twice in one row: coefficients sum.
	p := NewProblem(Maximize)
	x := p.AddVariable(1, 0, Inf, "x")
	p.AddConstraint([]int{x, x}, []float64{1, 1}, LE, 6, "") // 2x <= 6
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 3)
}

func TestDegenerateProblem(t *testing.T) {
	// Classic degenerate LP (multiple constraints active at the optimum).
	p := NewProblem(Maximize)
	x := p.AddVariable(2, 0, Inf, "x")
	y := p.AddVariable(1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4, "")
	p.AddConstraint([]int{x, y}, []float64{1, 0}, LE, 4, "")
	p.AddConstraint([]int{x, y}, []float64{0, 1}, LE, 4, "")
	p.AddConstraint([]int{x, y}, []float64{1, 2}, LE, 8, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 8)
}

func TestBelgianChocolate(t *testing.T) {
	// A classic textbook LP: max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6.
	// Optimal (3, 1.5) → 21.
	p := NewProblem(Maximize)
	x := p.AddVariable(5, 0, Inf, "x")
	y := p.AddVariable(4, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{6, 4}, LE, 24, "")
	p.AddConstraint([]int{x, y}, []float64{1, 2}, LE, 6, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 21)
	if !approxEq(sol.X[x], 3, 1e-6) || !approxEq(sol.X[y], 1.5, 1e-6) {
		t.Fatalf("X = %v, want [3 1.5]", sol.X)
	}
}

func TestDualValues(t *testing.T) {
	// For max 5x+4y above, duals are (0.75, 0.5): strong duality holds.
	p := NewProblem(Maximize)
	x := p.AddVariable(5, 0, Inf, "x")
	y := p.AddVariable(4, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{6, 4}, LE, 24, "")
	p.AddConstraint([]int{x, y}, []float64{1, 2}, LE, 6, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if !approxEq(sol.Dual[0], 0.75, 1e-6) || !approxEq(sol.Dual[1], 0.5, 1e-6) {
		t.Fatalf("duals = %v, want [0.75 0.5]", sol.Dual)
	}
	if !approxEq(24*sol.Dual[0]+6*sol.Dual[1], sol.Objective, 1e-6) {
		t.Fatalf("strong duality violated: %g vs %g", 24*sol.Dual[0]+6*sol.Dual[1], sol.Objective)
	}
}

func TestBlandOnlyAgreesWithDantzig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p1 := randomFeasibleLP(rng, 6, 10)
		p2 := cloneProblem(p1)
		s1, err := p1.SolveWithOptions(Options{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveWithOptions(Options{BlandOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal && !approxEq(s1.Objective, s2.Objective, 1e-5) {
			t.Fatalf("trial %d: obj %g vs %g", trial, s1.Objective, s2.Objective)
		}
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 suppliers (cap 20, 30), 3 customers (dem 10, 25, 15), unit costs.
	costs := [2][3]float64{{2, 4, 5}, {3, 1, 7}}
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	p := NewProblem(Minimize)
	var vars [2][3]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			vars[i][j] = p.AddVariable(costs[i][j], 0, Inf, "")
		}
	}
	for i := 0; i < 2; i++ {
		idx := []int{vars[i][0], vars[i][1], vars[i][2]}
		p.AddConstraint(idx, []float64{1, 1, 1}, LE, supply[i], "supply")
	}
	for j := 0; j < 3; j++ {
		idx := []int{vars[0][j], vars[1][j]}
		p.AddConstraint(idx, []float64{1, 1}, EQ, demand[j], "demand")
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal plan: s1→{c1:5, c3:15}, s2→{c1:5, c2:25}:
	// 5·2 + 15·5 + 5·3 + 25·1 = 125.
	requireStatus(t, sol, Optimal)
	total := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v := sol.X[vars[i][j]]
			if v < -1e-7 {
				t.Fatalf("negative shipment %g", v)
			}
			total += costs[i][j] * v
		}
	}
	if !approxEq(total, sol.Objective, 1e-6) {
		t.Fatalf("objective mismatch: %g vs %g", total, sol.Objective)
	}
	if !approxEq(sol.Objective, 125, 1e-6) {
		t.Fatalf("objective = %g, want 125", sol.Objective)
	}
	for j, d := range demand {
		got := sol.X[vars[0][j]] + sol.X[vars[1][j]]
		if !approxEq(got, d, 1e-6) {
			t.Fatalf("demand %d unmet: %g vs %g", j, got, d)
		}
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomFeasibleLP(rng, 20, 40)
	sol, err := p.SolveWithOptions(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestReinversionMidSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p1 := randomFeasibleLP(rng, 12, 24)
		p2 := cloneProblem(p1)
		s1, _ := p1.SolveWithOptions(Options{})
		s2, _ := p2.SolveWithOptions(Options{ReinvertEvery: 3})
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal && !approxEq(s1.Objective, s2.Objective, 1e-5) {
			t.Fatalf("trial %d: obj %.10g vs %.10g", trial, s1.Objective, s2.Objective)
		}
	}
}

func TestEmptyModelErrors(t *testing.T) {
	p := NewProblem(Minimize)
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for empty model")
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(1, 2, 2, "x") // fixed at 2
	y := p.AddVariable(1, 0, Inf, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 5, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 5)
	if !approxEq(sol.X[x], 2, 1e-9) {
		t.Fatalf("fixed variable moved: %g", sol.X[x])
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate equality rows give a singular-looking basis; the solver must
	// cope (redundant artificial stays basic at zero).
	p := NewProblem(Maximize)
	x := p.AddVariable(1, 0, 10, "x")
	y := p.AddVariable(1, 0, 10, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 6, "")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 6, "dup")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 6)
}

// randomFeasibleLP builds a random LP that is feasible by construction:
// maximize a random objective over Ax <= b with b = A·x0 for a random
// interior x0 >= 0, plus box bounds.
func randomFeasibleLP(rng *rand.Rand, m, n int) *Problem {
	p := NewProblem(Maximize)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		x0[j] = rng.Float64() * 2
		p.AddVariable(rng.NormFloat64(), 0, 5, "")
	}
	for i := 0; i < m; i++ {
		var idx []int
		var val []float64
		rhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				c := rng.Float64() * 3
				idx = append(idx, j)
				val = append(val, c)
				rhs += c * x0[j]
			}
		}
		if len(idx) == 0 {
			continue
		}
		p.AddConstraint(idx, val, LE, rhs+0.1, "")
	}
	return p
}

func cloneProblem(p *Problem) *Problem {
	q := NewProblem(p.objective)
	for j := range p.obj {
		q.AddVariable(p.obj[j], p.lb[j], p.ub[j], p.varNames[j])
	}
	for i, r := range p.rows {
		q.AddConstraint(r.idx, r.val, r.sense, r.rhs, p.rowNames[i])
	}
	return q
}
