package lp

import (
	"math"
)

// equilibrate computes row and column scale factors for the standardized
// matrix by geometric-mean equilibration, rounded to powers of two so the
// scaling itself introduces no floating-point error. Scaling improves the
// conditioning of bases drawn from matrices whose coefficients span many
// orders of magnitude (e.g. link capacities in Gbps next to unit demand
// rows).
//
// The scaled system is  (R·A·C)·x' = R·b  with  x = C·x',  and duals map
// back as  y = R·y'.
func equilibrate(std *standardized) (rowScale, colScale []float64) {
	m := std.m
	rowScale = make([]float64, m)
	colScale = make([]float64, std.ncols)
	for i := range rowScale {
		rowScale[i] = 1
	}
	for j := range colScale {
		colScale[j] = 1
	}

	// Two rounds of alternating row/column geometric-mean scaling.
	for round := 0; round < 2; round++ {
		// Row pass: geometric mean of |a_ij·c_j| per row.
		logSum := make([]float64, m)
		count := make([]int, m)
		for j := 0; j < std.ncols; j++ {
			ind, val := std.col(j)
			for t, i := range ind {
				v := math.Abs(val[t] * colScale[j] * rowScale[i])
				if v > 0 {
					logSum[i] += math.Log2(v)
					count[i]++
				}
			}
		}
		for i := 0; i < m; i++ {
			if count[i] > 0 {
				rowScale[i] *= pow2Round(-logSum[i] / float64(count[i]))
			}
		}
		// Column pass.
		for j := 0; j < std.ncols; j++ {
			ind, val := std.col(j)
			ls, c := 0.0, 0
			for t, i := range ind {
				v := math.Abs(val[t] * colScale[j] * rowScale[i])
				if v > 0 {
					ls += math.Log2(v)
					c++
				}
			}
			if c > 0 {
				colScale[j] *= pow2Round(-ls / float64(c))
			}
		}
	}
	return rowScale, colScale
}

// pow2Round returns 2^round(e), clamped to a sane range.
func pow2Round(e float64) float64 {
	r := math.Round(e)
	if r > 30 {
		r = 30
	}
	if r < -30 {
		r = -30
	}
	return math.Ldexp(1, int(r))
}

// applyScaling rescales the standardized model in place and returns the
// factors needed to unscale the solution.
func applyScaling(std *standardized) (rowScale, colScale []float64) {
	rowScale, colScale = equilibrate(std)
	for j := 0; j < std.ncols; j++ {
		ind, val := std.col(j)
		for t, i := range ind {
			val[t] *= rowScale[i] * colScale[j]
		}
		std.c[j] *= colScale[j]
		// x' = x / c_j, so bounds divide by c_j.
		if !math.IsInf(std.lb[j], -1) {
			std.lb[j] /= colScale[j]
		}
		if !math.IsInf(std.ub[j], 1) {
			std.ub[j] /= colScale[j]
		}
	}
	for i := 0; i < std.m; i++ {
		std.b[i] *= rowScale[i]
	}
	return rowScale, colScale
}
