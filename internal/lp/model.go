package lp

import (
	"fmt"
	"maps"
	"math"
	"slices"
)

// Model is a persistent, mutable linear program: build it once with the
// same builder API as Problem, solve it, then mutate coefficients, bounds,
// right-hand sides, or whole variable/constraint blocks in place and
// re-solve the delta. The model maintains its standardized form
// incrementally (numeric edits patch the sparse matrix directly; structural
// edits rebuild it lazily at the next solve), keeps the last optimal basis,
// and classifies the deltas applied since that basis was taken:
//
//   - rhs/bound-only deltas re-solve with the dual simplex from the stale
//     basis (Options.Dual) — the basis is still dual feasible, so a few
//     dual pivots replace both the build and the primal repair;
//   - coefficient/objective deltas re-solve through the primal warm path;
//   - structural deltas (blocks added or removed) splice the stale basis
//     statuses in lockstep, so survivors keep their warm information and
//     the solver's shape-repair settles the rest.
//
// Every re-solve path falls back (primal warm, then cold) inside the
// solver, so mutate-then-resolve always returns the same status and
// objective as building the current state from scratch and solving cold —
// only faster. A Model is not safe for concurrent use; Clone gives each
// goroutine its own cheap copy (mutable state is copied, the coefficient
// matrix is shared copy-on-write) for fan-out.
type Model struct {
	p        *Problem
	std      *standardized
	stdDirty bool // std no longer matches p structurally; rebuild at solve

	// sharedMatrix marks the coefficient arrays (builder row idx/val and the
	// standardized CSC) as shared with other clones: they may be read by any
	// clone concurrently but must be copied (ensureOwnedMatrix) before this
	// model writes to them. Bounds, rhs, objective, and basis state are
	// always private to one model.
	sharedMatrix bool

	basis *Basis // last optimal basis (model-owned copy), spliced across structural edits
	lastY []float64
	// lastY holds the shadow prices (original orientation, one per
	// constraint) from the solve that produced basis — the price sheet
	// warmHostile samples incoming coefficients against to decide whether
	// the basis is still worth a warm repair.

	// touchedRows is the set of constraint rows with at least one matrix
	// coefficient whose value actually changed since basis was stored —
	// warmHostile's churn-volume signal. Warm-repair cost tracks how many
	// rows moved under the basic columns, so broad row churn marks the
	// basis hostile regardless of reduced-cost signs.
	touchedRows map[int]struct{}

	// Delta classes applied since basis was taken. rhs/bound edits need no
	// flag: the dual path is eligible whenever neither of these is set.
	sinceCoeff  bool // A or c values changed
	sinceStruct bool // variables or constraints added/removed

	// SetCoeffs scratch, reused across calls (a Model is single-threaded).
	scWant  map[int]float64
	scFirst map[int]int
	scCur   map[int]float64
}

// NewModel returns an empty mutable model with the given objective
// direction. The builder API (AddVariable, AddConstraint, ...) matches
// Problem's, so construction code ports by swapping NewProblem for
// NewModel.
func NewModel(objective Objective) *Model {
	return &Model{p: NewProblem(objective)}
}

// NewModelFromProblem wraps a deep copy of an existing Problem as a mutable
// model; the original is not retained and stays independently usable.
func NewModelFromProblem(p *Problem) *Model {
	return &Model{p: p.Clone()}
}

// CopyProblem returns a deep copy of the model's current builder state as a
// plain Problem — the "fresh build" twin the mutation-equivalence tests
// solve cold to cross-check mutate-then-resolve.
func (m *Model) CopyProblem() *Problem { return m.p.Clone() }

// Clone returns an independent model over the same current state, built for
// fan-out: per-model mutable state (bounds, objective, rhs, basis, delta
// bookkeeping, and the standardized bound/cost/rhs vectors the solver
// shifts during warm repair) is copied, while the coefficient matrix — the
// builder rows' index/value arrays and the standardized CSC structure, by
// far the bulk of a model — is shared between the clones. The share is
// copy-on-write: the first coefficient or structural edit on either model
// materializes a private copy, so clones never observe each other's edits.
//
// A cloned model re-solves exactly like the original (same standardized
// cache, same warm basis), which is what the parallel branch-and-bound
// leans on: one clone per worker, each applying its own bound deltas and
// basis snapshots concurrently. Each clone is still single-threaded; the
// only safe concurrency is different goroutines using different clones.
func (m *Model) Clone() *Model {
	q := &Model{
		p: &Problem{
			objective: m.p.objective,
			obj:       append([]float64(nil), m.p.obj...),
			lb:        append([]float64(nil), m.p.lb...),
			ub:        append([]float64(nil), m.p.ub...),
			varNames:  append([]string(nil), m.p.varNames...),
			rows:      append([]row(nil), m.p.rows...),
			rowNames:  append([]string(nil), m.p.rowNames...),
			nnz:       m.p.nnz,
		},
		stdDirty:    m.stdDirty,
		basis:       m.basis.Clone(),
		lastY:       append([]float64(nil), m.lastY...),
		touchedRows: maps.Clone(m.touchedRows),
		sinceCoeff:  m.sinceCoeff,
		sinceStruct: m.sinceStruct,
	}
	if m.std != nil {
		std := *m.std
		std.c = append([]float64(nil), m.std.c...)
		std.lb = append([]float64(nil), m.std.lb...)
		std.ub = append([]float64(nil), m.std.ub...)
		std.b = append([]float64(nil), m.std.b...)
		q.std = &std
	}
	m.sharedMatrix = true
	q.sharedMatrix = true
	return q
}

// ensureOwnedMatrix materializes a private copy of the coefficient arrays
// shared with other clones. Called before any write to builder row idx/val
// storage or the standardized CSC; a no-op for a model that already owns
// its matrix.
func (m *Model) ensureOwnedMatrix() {
	if !m.sharedMatrix {
		return
	}
	m.sharedMatrix = false
	for i := range m.p.rows {
		r := &m.p.rows[i]
		r.idx = append([]int(nil), r.idx...)
		r.val = append([]float64(nil), r.val...)
	}
	if m.std != nil {
		m.std.colPtr = append([]int32(nil), m.std.colPtr...)
		m.std.rowInd = append([]int32(nil), m.std.rowInd...)
		m.std.values = append([]float64(nil), m.std.values...)
	}
}

// NumVariables reports the number of variables currently in the model.
func (m *Model) NumVariables() int { return m.p.NumVariables() }

// NumConstraints reports the number of constraints currently in the model.
func (m *Model) NumConstraints() int { return m.p.NumConstraints() }

// NumNonzeros reports the number of stored constraint coefficients.
func (m *Model) NumNonzeros() int { return m.p.NumNonzeros() }

// ObjectiveSense returns the optimization direction chosen at construction.
func (m *Model) ObjectiveSense() Objective { return m.p.ObjectiveSense() }

// Bounds returns the current bounds of variable v.
func (m *Model) Bounds(v int) (lb, ub float64) { return m.p.Bounds(v) }

// RHS returns the current right-hand side of constraint `row`.
func (m *Model) RHS(row int) float64 { return m.p.rows[row].rhs }

// Value evaluates the objective at x in the model's own orientation.
func (m *Model) Value(x []float64) float64 { return m.p.Value(x) }

// CheckFeasible verifies that x satisfies all bounds and constraints
// within tol.
func (m *Model) CheckFeasible(x []float64, tol float64) error { return m.p.CheckFeasible(x, tol) }

// HasBasis reports whether the model holds a basis from a previous optimal
// solve to warm-start the next one.
func (m *Model) HasBasis() bool { return m.basis != nil }

// ForgetBasis discards the stored basis, forcing the next solve to start
// cold. Benchmark baselines and churn-heavy callers (where a stale basis
// loses to a fresh phase 1) use this; it never changes solve outcomes.
func (m *Model) ForgetBasis() { m.basis, m.lastY, m.touchedRows = nil, nil, nil }

// Basis returns a copy of the basis snapshot the next solve would
// warm-start from (the last optimal solve's basis, or whatever SetBasis
// installed), or nil when the model holds none. The copy is the caller's
// to keep or mutate; the model's own warm-start state cannot be reached
// through it.
func (m *Model) Basis() *Basis { return m.basis.Clone() }

// SetBasis installs a basis snapshot as the warm-start state for the next
// solve, replacing whatever the model currently holds (nil is ForgetBasis).
// This is the restore half of the search-tree pattern: take Solution.Basis
// (or Basis()) at one point, keep mutating and re-solving, then jump back by
// re-installing the snapshot — branch and bound uses it so a best-bound jump
// restarts from the popped node's parent basis instead of the last plunge's.
//
// The delta classification is untouched: the dual simplex path stays
// eligible only when no coefficient or structural edit happened since the
// model last stored a basis, which is exactly the bound-tightening-only
// regime of a branch-and-bound search. A snapshot that turns out not to fit
// the current state is rejected inside the solver (dual → primal warm →
// cold), so SetBasis never changes solve outcomes. The snapshot is cloned
// on install: the model never retains the caller's pointer, so one
// snapshot can be installed into any number of models (the parallel
// search's workers install the same parent snapshot concurrently) and
// later caller-side mutation of it cannot corrupt a solve.
func (m *Model) SetBasis(b *Basis) {
	m.basis = b.Clone()
	// The snapshot's shadow prices are unknown, so the hostile-refresh
	// sampler stays quiet until the next optimal solve records a fresh set.
	m.lastY = nil
}

// AddVariable appends a variable with objective coefficient c and bounds
// [lb, ub], returning its index.
func (m *Model) AddVariable(c, lb, ub float64, name string) int {
	v := m.p.AddVariable(c, lb, ub, name)
	m.structEdit()
	if m.basis != nil {
		m.basis.VarStatus = append(m.basis.VarStatus, BasisLower)
	}
	return v
}

// AddVariables appends n identical variables and returns the index of the
// first.
func (m *Model) AddVariables(n int, c, lb, ub float64) int {
	first := m.p.NumVariables()
	for i := 0; i < n; i++ {
		m.AddVariable(c, lb, ub, "")
	}
	return first
}

// AddConstraint appends the constraint Σ val[t]·x[idx[t]] sense rhs and
// returns its row index.
func (m *Model) AddConstraint(idx []int, val []float64, sense Sense, rhs float64, name string) int {
	r := m.p.AddConstraint(idx, val, sense, rhs, name)
	m.structEdit()
	if m.basis != nil {
		m.basis.SlackStatus = append(m.basis.SlackStatus, BasisBasic)
	}
	return r
}

// InsertVariables inserts n identical variables at index `at`, shifting
// every variable previously at index ≥ at (and all constraint references to
// it) up by n. The stored basis keeps the survivors' statuses; the new
// variables enter nonbasic. It returns `at`.
func (m *Model) InsertVariables(at, n int, c, lb, ub float64) int {
	nv := m.p.NumVariables()
	if at < 0 || at > nv {
		panic(fmt.Sprintf("lp: InsertVariables at %d outside [0, %d]", at, nv))
	}
	if lb > ub {
		panic(fmt.Sprintf("lp: InsertVariables: lb %g > ub %g", lb, ub))
	}
	if math.IsNaN(c) || math.IsNaN(lb) || math.IsNaN(ub) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("lp: InsertVariables: invalid data c=%g lb=%g ub=%g", c, lb, ub))
	}
	if n <= 0 {
		return at
	}
	if at == nv {
		return m.AddVariables(n, c, lb, ub)
	}
	m.ensureOwnedMatrix() // row idx entries shift in place below
	p := m.p
	p.obj = slices.Insert(p.obj, at, slices.Repeat([]float64{c}, n)...)
	p.lb = slices.Insert(p.lb, at, slices.Repeat([]float64{lb}, n)...)
	p.ub = slices.Insert(p.ub, at, slices.Repeat([]float64{ub}, n)...)
	p.varNames = slices.Insert(p.varNames, at, make([]string, n)...)
	for i := range p.rows {
		r := &p.rows[i]
		for t, v := range r.idx {
			if v >= at {
				r.idx[t] = v + n
			}
		}
	}
	m.structEdit()
	if m.basis != nil {
		m.basis.VarStatus = slices.Insert(m.basis.VarStatus, at,
			slices.Repeat([]BasisStatus{BasisLower}, n)...)
	}
	return at
}

// RemoveVariables deletes variables [at, at+n), dropping their coefficients
// from every constraint and shifting higher indices down by n. The stored
// basis drops the removed statuses in lockstep.
func (m *Model) RemoveVariables(at, n int) {
	nv := m.p.NumVariables()
	if at < 0 || n < 0 || at+n > nv {
		panic(fmt.Sprintf("lp: RemoveVariables [%d, %d) outside [0, %d)", at, at+n, nv))
	}
	if n == 0 {
		return
	}
	m.ensureOwnedMatrix() // rows are compacted in place below
	p := m.p
	p.obj = slices.Delete(p.obj, at, at+n)
	p.lb = slices.Delete(p.lb, at, at+n)
	p.ub = slices.Delete(p.ub, at, at+n)
	p.varNames = slices.Delete(p.varNames, at, at+n)
	for i := range p.rows {
		r := &p.rows[i]
		keep := 0
		for t, v := range r.idx {
			switch {
			case v >= at+n:
				r.idx[keep], r.val[keep] = v-n, r.val[t]
				keep++
			case v < at:
				r.idx[keep], r.val[keep] = v, r.val[t]
				keep++
			default:
				p.nnz--
			}
		}
		r.idx = r.idx[:keep]
		r.val = r.val[:keep]
	}
	m.structEdit()
	if m.basis != nil {
		m.basis.VarStatus = slices.Delete(m.basis.VarStatus, at, at+n)
	}
}

// InsertConstraint inserts a constraint at row position `at`, shifting
// later rows down. The new row's slack enters the stored basis as basic —
// the natural status for a fresh row; the solver's shape repair absorbs any
// resulting surplus.
func (m *Model) InsertConstraint(at int, idx []int, val []float64, sense Sense, rhs float64, name string) int {
	nr := m.p.NumConstraints()
	if at < 0 || at > nr {
		panic(fmt.Sprintf("lp: InsertConstraint at %d outside [0, %d]", at, nr))
	}
	// Validate and copy through the append path, then rotate into place.
	m.p.AddConstraint(idx, val, sense, rhs, name)
	p := m.p
	r := p.rows[nr]
	copy(p.rows[at+1:], p.rows[at:nr])
	p.rows[at] = r
	rn := p.rowNames[nr]
	copy(p.rowNames[at+1:], p.rowNames[at:nr])
	p.rowNames[at] = rn
	m.structEdit()
	if m.basis != nil {
		m.basis.SlackStatus = slices.Insert(m.basis.SlackStatus, at, BasisBasic)
	}
	return at
}

// RemoveConstraints deletes constraint rows [at, at+n); the stored basis
// drops their slack statuses in lockstep.
func (m *Model) RemoveConstraints(at, n int) {
	nr := m.p.NumConstraints()
	if at < 0 || n < 0 || at+n > nr {
		panic(fmt.Sprintf("lp: RemoveConstraints [%d, %d) outside [0, %d)", at, at+n, nr))
	}
	if n == 0 {
		return
	}
	p := m.p
	for i := at; i < at+n; i++ {
		p.nnz -= len(p.rows[i].idx)
	}
	p.rows = append(p.rows[:at], p.rows[at+n:]...)
	p.rowNames = append(p.rowNames[:at], p.rowNames[at+n:]...)
	m.structEdit()
	if m.basis != nil {
		m.basis.SlackStatus = slices.Delete(m.basis.SlackStatus, at, at+n)
	}
}

// SetObjectiveCoeff overwrites the objective coefficient of variable v.
// A no-op when the value is unchanged.
func (m *Model) SetObjectiveCoeff(v int, c float64) {
	if m.p.obj[v] == c {
		return
	}
	if math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("lp: variable %d: non-finite objective coefficient %g", v, c))
	}
	m.p.obj[v] = c
	if m.freshStd() {
		m.std.c[v] = m.std.objSign * c
	}
	m.sinceCoeff = true
}

// SetBounds overwrites the bounds of variable v. A no-op when unchanged.
func (m *Model) SetBounds(v int, lb, ub float64) {
	if m.p.lb[v] == lb && m.p.ub[v] == ub {
		return
	}
	m.p.SetBounds(v, lb, ub)
	if m.freshStd() {
		m.std.lb[v] = lb
		m.std.ub[v] = ub
	}
}

// SetRHS overwrites the right-hand side of constraint `row`. A no-op when
// unchanged.
func (m *Model) SetRHS(row int, rhs float64) {
	if m.p.rows[row].rhs == rhs {
		return
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: row %d: non-finite rhs %g", row, rhs))
	}
	m.p.rows[row].rhs = rhs
	if m.freshStd() {
		m.std.b[row] = rhs
	}
}

// SetCoeff overwrites the coefficient of variable v in constraint `row`
// (the merged total, if the row was built with duplicate indices). Setting
// a coefficient the row does not yet store is a structural fill-in: the
// standardized form is rebuilt at the next solve, but the basis — whose
// shape is unchanged — still warm-starts it. A no-op when unchanged.
func (m *Model) SetCoeff(row, v int, coef float64) {
	if math.IsNaN(coef) || math.IsInf(coef, 0) {
		panic(fmt.Sprintf("lp: row %d: non-finite coefficient %g for variable %d", row, coef, v))
	}
	if v < 0 || v >= m.p.NumVariables() {
		panic(fmt.Sprintf("lp: row %d references unknown variable %d", row, v))
	}
	r := &m.p.rows[row]
	first, cur := -1, 0.0
	for t, id := range r.idx {
		if id == v {
			if first < 0 {
				first = t
			}
			cur += r.val[t]
		}
	}
	if first < 0 {
		if coef == 0 {
			return
		}
		m.ensureOwnedMatrix()
		r.idx = append(r.idx, v)
		r.val = append(r.val, coef)
		m.p.nnz++
		m.stdDirty = true
		m.sinceCoeff = true
		m.touchRow(row)
		return
	}
	if cur == coef {
		return
	}
	m.ensureOwnedMatrix()
	r.val[first] = coef
	for t := first + 1; t < len(r.idx); t++ {
		if r.idx[t] == v {
			r.val[t] = 0
		}
	}
	if m.freshStd() {
		m.std.setEntry(row, v, coef)
	}
	m.sinceCoeff = true
	m.touchRow(row)
}

// SetCoeffs overwrites the coefficients of several variables in constraint
// `row` in one pass over the row — semantically identical to calling
// SetCoeff once per (idx[t], val[t]) pair, but O(row length + len(idx))
// instead of a full row scan per entry, which keeps the engines' refresh of
// shared rows (one entry per client) linear in the client count. Duplicate
// indices in idx: the last pair wins.
func (m *Model) SetCoeffs(row int, idx []int, val []float64) {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("lp: SetCoeffs row %d: len(idx)=%d len(val)=%d", row, len(idx), len(val)))
	}
	// Small updates: the per-entry row scans beat the map machinery's
	// constant; the one-pass path below is for rows wide enough that
	// quadratic scanning would bite.
	if len(idx) <= 32 {
		for t, v := range idx {
			m.SetCoeff(row, v, val[t])
		}
		return
	}
	nv := m.p.NumVariables()
	if m.scWant == nil {
		m.scWant = make(map[int]float64, len(idx))
		m.scFirst = make(map[int]int, len(idx))
		m.scCur = make(map[int]float64, len(idx))
	}
	want, first, cur := m.scWant, m.scFirst, m.scCur
	clear(want)
	clear(first)
	clear(cur)
	for t, v := range idx {
		if v < 0 || v >= nv {
			panic(fmt.Sprintf("lp: row %d references unknown variable %d", row, v))
		}
		if math.IsNaN(val[t]) || math.IsInf(val[t], 0) {
			panic(fmt.Sprintf("lp: row %d: non-finite coefficient %g for variable %d", row, val[t], v))
		}
		want[v] = val[t]
	}
	r := &m.p.rows[row]
	// Pass 1: merged current value and first position of every targeted
	// variable present in the row.
	for t, id := range r.idx {
		if _, ok := want[id]; !ok {
			continue
		}
		if _, ok := first[id]; !ok {
			first[id] = t
		}
		cur[id] += r.val[t]
	}
	// Pass 2: apply changes — first occurrence carries the value, duplicate
	// occurrences are zeroed, absent nonzeros append as fill-ins. A matrix
	// shared with clones is copied first, but only when something actually
	// changes (pure no-op refreshes stay free).
	for id, w := range want {
		if c, present := cur[id]; (present && c != w) || (!present && w != 0) {
			m.ensureOwnedMatrix()
			break
		}
	}
	fresh := m.freshStd()
	changed := false
	for t, id := range r.idx {
		ft, ok := first[id]
		if !ok || cur[id] == want[id] {
			continue
		}
		if t == ft {
			r.val[t] = want[id]
		} else if r.val[t] != 0 {
			r.val[t] = 0
		}
	}
	for id, w := range want {
		if _, ok := first[id]; ok {
			if cur[id] != w {
				changed = true
				if fresh {
					m.std.setEntry(row, id, w)
				}
			}
			continue
		}
		if w == 0 {
			continue
		}
		r.idx = append(r.idx, id)
		r.val = append(r.val, w)
		m.p.nnz++
		m.stdDirty = true
		changed = true
	}
	if changed {
		m.sinceCoeff = true
		m.touchRow(row)
	}
}

// touchRow books a value-level coefficient change in a constraint row for
// warmHostile's churn-volume signal. Only meaningful while a basis is
// stored; the set resets whenever a new basis is taken or forgotten.
func (m *Model) touchRow(row int) {
	if m.basis == nil {
		return
	}
	if m.touchedRows == nil {
		m.touchedRows = make(map[int]struct{})
	}
	m.touchedRows[row] = struct{}{}
}

// structEdit books a structural change: the standardized form must be
// rebuilt and the stored basis, though spliced to the new shape, is no
// longer dual-trustworthy.
func (m *Model) structEdit() {
	m.stdDirty = true
	m.sinceStruct = true
}

// freshStd reports whether the cached standardized form is live and can be
// patched in place.
func (m *Model) freshStd() bool { return m.std != nil && !m.stdDirty }

// setEntry overwrites the merged coefficient of (row, structural column v),
// which is known to exist. Row indices are ascending within a column, so a
// binary search lands on it.
func (s *standardized) setEntry(row, v int, coef float64) {
	lo, hi := int(s.colPtr[v]), int(s.colPtr[v+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.rowInd[mid]) < row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= int(s.colPtr[v+1]) || int(s.rowInd[lo]) != row {
		// The builder row stores the entry but the CSC predates it — should
		// be unreachable (fill-ins set stdDirty); rebuild defensively.
		panic(fmt.Sprintf("lp: standardized form missing entry (%d, %d)", row, v))
	}
	s.values[lo] = coef
}

// Solve optimizes the model with default options.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveWithOptions(Options{})
}

// SolveWithOptions optimizes the model's current state. When the model
// holds a basis from a previous optimal solve and the caller did not pass
// an explicit Options.WarmBasis, the solve is warm-started automatically:
// through the dual simplex when only rhs/bounds changed since that basis
// was taken, through the primal warm path otherwise. Outcomes are always
// those of a cold solve of the current state.
func (m *Model) SolveWithOptions(opts Options) (*Solution, error) {
	if m.p.NumVariables() == 0 {
		return nil, fmt.Errorf("lp: model has no variables")
	}
	if m.std == nil || m.stdDirty {
		sp := opts.Obs.Span("lp.standardize")
		m.std = m.p.standardize()
		m.stdDirty = false
		sp.End()
	}
	if opts.WarmBasis == nil && m.basis != nil {
		if m.warmHostile() {
			// The coefficient deltas since the basis was taken rotated the
			// optimality picture wholesale: a sampled majority of nonbasic
			// columns now price in. Repairing that basis costs more pivots
			// than the fresh phase 1 it would replace, so drop it.
			opts.Obs.Instant("lp.warm-hostile", nil)
			opts.Obs.Counter("pop_lp_warm_hostile_drops_total",
				"stale bases dropped by the hostile-refresh sampler").Inc()
			m.ForgetBasis()
		} else {
			opts.WarmBasis = m.basis
			opts.Dual = !m.sinceCoeff && !m.sinceStruct
		}
	}
	sol := m.run(opts)
	if sol.Status == Numerical && (opts.Backend.resolve() != Dense || opts.WarmBasis != nil) {
		opts.Obs.Instant("lp.dense-retry", nil)
		opts.Backend = Dense
		opts.WarmBasis = nil // a bad warm basis must not poison the retry
		opts.Dual = false
		sol = m.run(opts)
	}
	if sol.Status == Optimal && sol.Basis != nil {
		// Keep a private copy: Solution.Basis belongs to the caller (node
		// snapshots in a branch-and-bound tree outlive many re-solves), and
		// the model's structural edits splice its stored basis in place —
		// retaining the caller's pointer would let those edits corrupt the
		// caller's snapshot, and vice versa.
		m.basis = sol.Basis.Clone()
		m.lastY = append(m.lastY[:0], sol.Dual...)
		m.sinceCoeff = false
		m.sinceStruct = false
		clear(m.touchedRows)
	} else if sol.Status != Optimal {
		m.ForgetBasis()
	}
	return sol, nil
}

// warmHostile reports whether the coefficient edits applied since the stored
// basis was taken have made it warm-hostile: repairing the basis would cost
// more pivots than the cold phase 1 it replaces. Two complementary signals:
//
//   - Churn volume: a quarter or more of the constraint rows had
//     coefficients rewritten. The repair cost scales with how much of the
//     matrix moved under the basic columns regardless of reduced-cost signs.
//   - Optimality rotation: a strided sample of nonbasic structural columns
//     priced against the previous solve's shadow prices — d_j = c_j − yᵀa_j,
//     all in the current (already-patched) standardized form — shows a
//     majority of per-status dual violations: the "every denominator rotated
//     at once" signature of a global input shift, even when few entries
//     changed (e.g. an objective-only rotation). A handful flipping is an
//     ordinary local delta the warm repair absorbs in a few pivots.
//
// The sampler replaces the per-adapter fingerprint heuristics the online
// engines used to hand-tune: it reads the actual incoming coefficients, so
// any caller's global rotation is caught without domain knowledge. Dropping
// a basis never changes solve outcomes, only which start the solver tries
// first, so false negatives and positives cost time, not correctness.
func (m *Model) warmHostile() bool {
	if !m.sinceCoeff || m.sinceStruct || m.stdDirty {
		// Only value-level coefficient deltas qualify: structural edits
		// already route to shape repair, and rhs/bound deltas never move
		// reduced costs.
		return false
	}
	// Churn-volume signal: when a quarter or more of the constraint rows
	// had coefficients rewritten, the basic solution the snapshot implies
	// is wrong across much of the basis — repair cost tracks how many rows
	// moved under the basic columns, whether or not any reduced-cost signs
	// flipped, and at that churn the repair pivot chain approaches the cold
	// phase 1 it would replace. Broad per-member churn in the space-sharing
	// pair layout is the canonical case: most fairness and capacity rows
	// are rewritten, dual feasibility barely moves, and the warm repair
	// still loses to a cold start. The minimum count keeps small models on
	// the warm path: their repair is cheap enough that dropping never pays.
	if t := len(m.touchedRows); t >= 8 && 4*t >= m.p.NumConstraints() {
		return true
	}
	std := m.std
	if len(m.lastY) != std.m || len(m.basis.VarStatus) != std.n {
		return false
	}
	const maxSample = 96
	stride := std.n / maxSample
	if stride < 1 {
		stride = 1
	}
	sampled, viol := 0, 0
	for j := 0; j < std.n && sampled < maxSample; j += stride {
		st := m.basis.VarStatus[j]
		if st == BasisBasic || std.lb[j] == std.ub[j] {
			continue
		}
		// std.c is in internal (minimize) orientation; lastY is original
		// orientation, so objSign converts it.
		d := std.c[j]
		ind, val := std.col(j)
		for t, i := range ind {
			d -= std.objSign * m.lastY[i] * val[t]
		}
		sampled++
		tol := 1e-6 * (1 + math.Abs(std.c[j]))
		switch st {
		case BasisLower:
			if d < -tol {
				viol++
			}
		case BasisUpper:
			if d > tol {
				viol++
			}
		default: // BasisFree
			if math.Abs(d) > tol {
				viol++
			}
		}
	}
	return sampled >= 8 && 2*viol >= sampled
}

// run executes one simplex attempt over the cached standardized form.
// Scaling mutates the matrix in place, so that option solves a clone.
func (m *Model) run(opts Options) *Solution {
	std := m.std
	if opts.Scale {
		std = std.clone()
	}
	s := newSimplexStd(std, opts)
	return s.solve()
}
