package lp

import (
	"math"
	"math/rand"
	"testing"
)

// perturbRHSOnly jitters right-hand sides and nothing else — the delta
// class the dual simplex exists for.
func perturbRHSOnly(p *Problem, rng *rand.Rand) *Problem {
	q := cloneProblem(p)
	for i := range q.rows {
		if rng.Float64() < 0.6 {
			q.rows[i].rhs *= 0.7 + 0.6*rng.Float64()
		}
	}
	return q
}

// perturbBoundsOnly jitters finite variable bounds and nothing else.
func perturbBoundsOnly(p *Problem, rng *rand.Rand) *Problem {
	q := cloneProblem(p)
	for j := range q.ub {
		if rng.Float64() < 0.4 && !math.IsInf(q.ub[j], 1) {
			q.ub[j] *= 0.6 + 0.8*rng.Float64()
			if q.ub[j] < q.lb[j] {
				q.ub[j] = q.lb[j]
			}
		}
		if rng.Float64() < 0.2 && !math.IsInf(q.lb[j], -1) {
			q.lb[j] -= rng.Float64()
		}
	}
	return q
}

// TestDualResolveMatchesColdOnRHSAndBoundPerturbations is the dual simplex
// contract: re-solving a rhs/bound-perturbed problem from the stale optimal
// basis with Options.Dual must reproduce the cold solve's status and
// objective exactly (to 1e-6), and the dual path must actually engage on a
// healthy fraction of the trials.
func TestDualResolveMatchesColdOnRHSAndBoundPerturbations(t *testing.T) {
	for _, backend := range []SolverBackend{Dense, SparseLU} {
		t.Run(backend.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(777))
			dualEngaged, dualPivots := 0, 0
			trials := 40
			if testing.Short() {
				trials = 12
			}
			for trial := 0; trial < trials; trial++ {
				p := randomFeasibleLP(rng, 6+rng.Intn(10), 8+rng.Intn(12))
				sol, err := p.SolveWithOptions(Options{Backend: backend})
				if err != nil {
					t.Fatal(err)
				}
				if sol.Status != Optimal {
					continue
				}
				basis := sol.Basis
				q := perturbRHSOnly(p, rng)
				if trial%2 == 1 {
					q = perturbBoundsOnly(p, rng)
				}
				cold, err := cloneProblem(q).SolveWithOptions(Options{Backend: backend})
				if err != nil {
					t.Fatal(err)
				}
				dual, err := cloneProblem(q).SolveWithOptions(Options{Backend: backend, WarmBasis: basis, Dual: true})
				if err != nil {
					t.Fatal(err)
				}
				if dual.Status != cold.Status {
					t.Fatalf("trial %d: dual status %v != cold %v", trial, dual.Status, cold.Status)
				}
				if cold.Status == Optimal {
					if diff := math.Abs(dual.Objective - cold.Objective); diff > 1e-6*(1+math.Abs(cold.Objective)) {
						t.Fatalf("trial %d: dual objective %.12g != cold %.12g", trial, dual.Objective, cold.Objective)
					}
					if err := q.CheckFeasible(dual.X, 1e-6); err != nil {
						t.Fatalf("trial %d: dual solution infeasible: %v", trial, err)
					}
				}
				if dual.WarmStarted && dual.DualPivots >= 0 {
					dualEngaged++
					dualPivots += dual.DualPivots
				}
			}
			if dualEngaged == 0 {
				t.Fatal("dual path never engaged across rhs/bound perturbations")
			}
			t.Logf("dual engaged on %d trials, %d dual pivots total", dualEngaged, dualPivots)
		})
	}
}

// TestDualUnchangedResolveIsFree: re-solving the identical problem through
// the dual path must take zero pivots and keep the answer.
func TestDualUnchangedResolveIsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randomFeasibleLP(rng, 10, 14)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	re, err := cloneProblem(p).SolveWithOptions(Options{WarmBasis: sol.Basis, Dual: true})
	if err != nil {
		t.Fatal(err)
	}
	if !re.WarmStarted {
		t.Fatal("identical dual re-solve did not warm start")
	}
	if re.Iterations != 0 {
		t.Fatalf("identical dual re-solve took %d pivots, want 0", re.Iterations)
	}
	if math.Abs(re.Objective-sol.Objective) > 1e-9*(1+math.Abs(sol.Objective)) {
		t.Fatalf("objective drifted: %g vs %g", re.Objective, sol.Objective)
	}
}

// TestDualReportsInfeasibleLikeCold: a rhs change that kills feasibility
// must surface as Infeasible through the dual path too (via its fallback,
// which re-derives the certificate with the primal phase 1).
func TestDualReportsInfeasibleLikeCold(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		p := randomFeasibleLP(rng, 8, 10)
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		q := cloneProblem(p)
		// All coefficients and lower bounds are ≥ 0, so a sufficiently
		// negative ≤-rhs is unsatisfiable.
		q.rows[0].rhs = -1e6
		cold, err := cloneProblem(q).Solve()
		if err != nil {
			t.Fatal(err)
		}
		dual, err := q.SolveWithOptions(Options{WarmBasis: sol.Basis, Dual: true})
		if err != nil {
			t.Fatal(err)
		}
		if dual.Status != cold.Status {
			t.Fatalf("trial %d: dual status %v != cold %v", trial, dual.Status, cold.Status)
		}
	}
}

// TestDualRejectsStaleCostBasis: after objective/coefficient drift the dual
// entry must either decline or still land on the cold answer — the outcome
// contract holds regardless of which.
func TestDualRejectsStaleCostBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 15; trial++ {
		p := randomFeasibleLP(rng, 8, 12)
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		q := cloneProblem(p)
		for j := range q.obj {
			q.obj[j] += rng.NormFloat64()
		}
		for i := range q.rows {
			for t := range q.rows[i].val {
				if rng.Float64() < 0.3 {
					q.rows[i].val[t] *= 0.5 + rng.Float64()
				}
			}
		}
		cold, err := cloneProblem(q).Solve()
		if err != nil {
			t.Fatal(err)
		}
		dual, err := q.SolveWithOptions(Options{WarmBasis: sol.Basis, Dual: true})
		if err != nil {
			t.Fatal(err)
		}
		if dual.Status != cold.Status {
			t.Fatalf("trial %d: status %v != cold %v", trial, dual.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if diff := math.Abs(dual.Objective - cold.Objective); diff > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d: objective %.12g != cold %.12g", trial, dual.Objective, cold.Objective)
			}
		}
	}
}

// TestDualReducesWorkOnLoadShift mimics the online engines' round shape: a
// capacity (rhs) shift re-solved from the previous basis should need far
// fewer pivots than a cold solve, and the dual phase should do the heavy
// lifting.
func TestDualReducesWorkOnLoadShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	var coldIters, dualIters int
	trials := 20
	for trial := 0; trial < trials; trial++ {
		p := randomFeasibleLP(rng, 20, 30)
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		q := perturbRHSOnly(p, rng)
		cold, err := cloneProblem(q).Solve()
		if err != nil {
			t.Fatal(err)
		}
		dual, err := q.SolveWithOptions(Options{WarmBasis: sol.Basis, Dual: true})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != Optimal || dual.Status != Optimal {
			continue
		}
		coldIters += cold.Iterations
		dualIters += dual.Iterations
	}
	if coldIters == 0 {
		t.Skip("no optimal trials")
	}
	if dualIters >= coldIters {
		t.Fatalf("dual re-solves took %d pivots vs cold %d — no win", dualIters, coldIters)
	}
	t.Logf("pivots: cold %d, dual re-solve %d", coldIters, dualIters)
}
