package lp_test

import (
	"os"
	"testing"
	"time"

	"pop/internal/lp"
	"pop/internal/lp/gen"
	"pop/internal/obs"
)

// TestObsOverheadGuard is the CI overhead budget for the telemetry hooks:
// solving with a full Observer (metrics registry + trace) must stay close
// to the Obs=nil path. The acceptance budget is 2% on the disabled path
// (one pointer check per solve/phase); this guard runs the *enabled* path
// and still allows only modest slack, so a hook leaking into the pivot
// loop — the only way to regress by whole factors — fails loudly. The
// threshold is generous (1.5x on best-of-N) because CI wall clocks are
// noisy; real budgets are tracked by `make bench-lp` trajectories.
//
// Gated behind OBS_OVERHEAD_GUARD=1 so the default test run stays fast and
// timing-free.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GUARD") != "1" {
		t.Skip("set OBS_OVERHEAD_GUARD=1 to run the telemetry overhead guard")
	}
	in := gen.Cluster(gen.Medium, 1)

	solve := func(o *obs.Observer) time.Duration {
		start := time.Now()
		sol, err := in.SolveWithOptions(lp.Options{Backend: lp.SparseLU, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("status %v", sol.Status)
		}
		return time.Since(start)
	}

	obsv := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTrace()}
	const reps = 5
	bare, full := time.Duration(1<<62), time.Duration(1<<62)
	// Interleave the arms so CPU frequency drift hits both equally; keep
	// the best of each, which is the least-noisy estimator on a shared box.
	for i := 0; i < reps; i++ {
		if d := solve(nil); d < bare {
			bare = d
		}
		if d := solve(obsv); d < full {
			full = d
		}
	}
	t.Logf("bare=%v full=%v ratio=%.3f", bare, full, float64(full)/float64(bare))
	if float64(full) > 1.5*float64(bare) {
		t.Fatalf("telemetry overhead %.2fx exceeds guard (bare=%v full=%v): a hook is on the pivot path",
			float64(full)/float64(bare), bare, full)
	}
}
