package lp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Cross-solver equivalence harness: every MPS fixture and ~200 randomly
// generated feasible/infeasible/unbounded/degenerate LPs run through both
// basis backends, which must report the same status and (when optimal)
// objectives within 1e-6.

// solveBoth solves independent clones of p with each backend and checks the
// agreement contract, returning the two solutions for extra assertions.
func solveBoth(t *testing.T, label string, p *Problem) (dense, sparse *Solution) {
	t.Helper()
	pd, ps := cloneProblem(p), cloneProblem(p)
	var err error
	dense, err = pd.SolveWithOptions(Options{Backend: Dense})
	if err != nil {
		t.Fatalf("%s: dense: %v", label, err)
	}
	sparse, err = ps.SolveWithOptions(Options{Backend: SparseLU})
	if err != nil {
		t.Fatalf("%s: sparselu: %v", label, err)
	}
	if dense.Status != sparse.Status {
		t.Fatalf("%s: status dense=%v sparselu=%v", label, dense.Status, sparse.Status)
	}
	if dense.Status == Optimal {
		if !approxEq(dense.Objective, sparse.Objective, 1e-6) {
			t.Fatalf("%s: objective dense=%.12g sparselu=%.12g", label, dense.Objective, sparse.Objective)
		}
		if err := p.CheckFeasible(dense.X, 1e-6); err != nil {
			t.Fatalf("%s: dense solution infeasible: %v", label, err)
		}
		if err := p.CheckFeasible(sparse.X, 1e-6); err != nil {
			t.Fatalf("%s: sparselu solution infeasible: %v", label, err)
		}
	}
	return dense, sparse
}

// mpsFixtures is the fixture corpus: name, MPS source, and the status both
// backends must report.
var mpsFixtures = []struct {
	name   string
	src    string
	status Status
}{
	{"chocolate", sampleMPS, Optimal},
	{"bounds", `NAME T
ROWS
 N  OBJ
 G  R1
COLUMNS
    A  OBJ  1  R1  1
    B  OBJ  1  R1  1
    C  OBJ  1  R1  1
    D  OBJ  1  R1  1
RHS
    RHS  R1  -100
BOUNDS
 UP BND  A  4
 LO BND  B  -2
 FX BND  C  7
 FR BND  D
ENDATA
`, Optimal},
	{"ranges", `NAME T
ROWS
 N  OBJ
 L  R1
COLUMNS
    X  OBJ  -1  R1  1
RHS
    RHS  R1  10
RANGES
    RNG  R1  4
ENDATA
`, Optimal},
	{"transport", `* degenerate transportation model
NAME TRANS
ROWS
 N  COST
 L  S1
 L  S2
 E  D1
 E  D2
 E  D3
COLUMNS
    X11  COST  2  S1  1
    X11  D1  1
    X12  COST  4  S1  1
    X12  D2  1
    X13  COST  5  S1  1
    X13  D3  1
    X21  COST  3  S2  1
    X21  D1  1
    X22  COST  1  S2  1
    X22  D2  1
    X23  COST  7  S2  1
    X23  D3  1
RHS
    RHS  S1  20  S2  30
    RHS  D1  10  D2  25
    RHS  D3  15
ENDATA
`, Optimal},
	{"infeasible", `NAME INF
OBJSENSE
    MAX
ROWS
 N  OBJ
 G  LO
 L  HI
COLUMNS
    X  OBJ  1  LO  1
    X  HI  1
RHS
    RHS  LO  5  HI  3
ENDATA
`, Infeasible},
	{"unbounded", `NAME UNB
OBJSENSE
    MAX
ROWS
 N  OBJ
 L  R1
COLUMNS
    X  OBJ  1  R1  1
    Y  R1  -1
RHS
    RHS  R1  1
ENDATA
`, Unbounded},
}

func TestBackendsAgreeOnMPSFixtures(t *testing.T) {
	for _, fx := range mpsFixtures {
		t.Run(fx.name, func(t *testing.T) {
			p, _, err := ReadMPS(strings.NewReader(fx.src))
			if err != nil {
				t.Fatal(err)
			}
			dense, _ := solveBoth(t, fx.name, p)
			if dense.Status != fx.status {
				t.Fatalf("status = %v, want %v", dense.Status, fx.status)
			}
		})
	}
}

// randomMixedLP draws senses, bounds, and signs freely, so any status can
// come out; equivalence is judged per-instance.
func randomMixedLP(rng *rand.Rand, m, n int) *Problem {
	obj := Minimize
	if rng.Intn(2) == 0 {
		obj = Maximize
	}
	p := NewProblem(obj)
	for j := 0; j < n; j++ {
		lb, ub := 0.0, 5.0
		switch rng.Intn(5) {
		case 0:
			lb, ub = -Inf, Inf // free
		case 1:
			lb, ub = -3, Inf
		case 2:
			lb, ub = -Inf, 4
		case 3:
			v := rng.Float64() * 2
			lb, ub = v, v // fixed
		}
		p.AddVariable(rng.NormFloat64(), lb, ub, "")
	}
	for i := 0; i < m; i++ {
		var idx []int
		var val []float64
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.35 {
				idx = append(idx, j)
				val = append(val, rng.NormFloat64()*2)
			}
		}
		if len(idx) == 0 {
			continue
		}
		sense := Sense(rng.Intn(3))
		p.AddConstraint(idx, val, sense, rng.NormFloat64()*4, "")
	}
	return p
}

// randomInfeasibleLP plants two contradictory constraints over the same
// expression inside otherwise random rows.
func randomInfeasibleLP(rng *rand.Rand, m, n int) *Problem {
	p := randomFeasibleLP(rng, m, n)
	idx := make([]int, n)
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		idx[j] = j
		val[j] = rng.Float64() + 0.1
	}
	hi := rng.Float64() * 3
	p.AddConstraint(idx, val, LE, hi, "cap")
	p.AddConstraint(idx, val, GE, hi+1+rng.Float64(), "contradiction")
	return p
}

// randomUnboundedLP gives one free variable a favorable objective and keeps
// it out of every constraint.
func randomUnboundedLP(rng *rand.Rand, m, n int) *Problem {
	p := randomFeasibleLP(rng, m, n)
	p.AddVariable(1+rng.Float64(), -Inf, Inf, "ray") // maximize an unconstrained var
	return p
}

// randomDegenerateLP routes many tied constraints through one vertex so the
// ratio test hits long runs of zero-length steps.
func randomDegenerateLP(rng *rand.Rand, n int) *Problem {
	p := NewProblem(Maximize)
	for j := 0; j < n; j++ {
		p.AddVariable(1+rng.Float64(), 0, Inf, "")
	}
	// Every subset-sum constraint is tight at x = (1,...,1).
	for i := 0; i < 3*n; i++ {
		var idx []int
		var val []float64
		rhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				c := float64(1 + rng.Intn(3))
				idx = append(idx, j)
				val = append(val, c)
				rhs += c
			}
		}
		if len(idx) == 0 {
			continue
		}
		p.AddConstraint(idx, val, LE, rhs, "")
	}
	return p
}

func TestBackendsAgreeOnRandomLPs(t *testing.T) {
	type genCase struct {
		kind string
		gen  func(rng *rand.Rand, trial int) *Problem
		n    int
	}
	cases := []genCase{
		{"feasible", func(rng *rand.Rand, _ int) *Problem {
			return randomFeasibleLP(rng, 4+rng.Intn(12), 6+rng.Intn(18))
		}, 60},
		{"mixed", func(rng *rand.Rand, _ int) *Problem {
			return randomMixedLP(rng, 3+rng.Intn(10), 4+rng.Intn(12))
		}, 60},
		{"infeasible", func(rng *rand.Rand, _ int) *Problem {
			return randomInfeasibleLP(rng, 3+rng.Intn(6), 4+rng.Intn(8))
		}, 30},
		{"unbounded", func(rng *rand.Rand, _ int) *Problem {
			return randomUnboundedLP(rng, 3+rng.Intn(6), 4+rng.Intn(8))
		}, 20},
		{"degenerate", func(rng *rand.Rand, _ int) *Problem {
			return randomDegenerateLP(rng, 4+rng.Intn(8))
		}, 30},
	}
	total := 0
	for _, c := range cases {
		c := c
		t.Run(c.kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(c.kind)) * 1911))
			for trial := 0; trial < c.n; trial++ {
				p := c.gen(rng, trial)
				label := fmt.Sprintf("%s/%d", c.kind, trial)
				dense, _ := solveBoth(t, label, p)
				switch c.kind {
				case "feasible", "degenerate":
					if dense.Status != Optimal {
						t.Fatalf("%s: status %v, want optimal", label, dense.Status)
					}
				case "infeasible":
					if dense.Status != Infeasible {
						t.Fatalf("%s: status %v, want infeasible", label, dense.Status)
					}
				case "unbounded":
					if dense.Status != Unbounded {
						t.Fatalf("%s: status %v, want unbounded", label, dense.Status)
					}
				}
			}
		})
		total += c.n
	}
	if total < 200 {
		t.Fatalf("equivalence corpus shrank to %d instances; keep it at 200", total)
	}
}

// TestBackendsAgreeWithScalingAndDevex runs the option cross-product so the
// backends stay interchangeable under every pricing/scaling combination.
func TestBackendsAgreeWithScalingAndDevex(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		p := randomFeasibleLP(rng, 8, 14)
		for _, scale := range []bool{false, true} {
			for _, devex := range []bool{false, true} {
				pd, ps := cloneProblem(p), cloneProblem(p)
				sd, err := pd.SolveWithOptions(Options{Backend: Dense, Scale: scale, Devex: devex})
				if err != nil {
					t.Fatal(err)
				}
				ss, err := ps.SolveWithOptions(Options{Backend: SparseLU, Scale: scale, Devex: devex})
				if err != nil {
					t.Fatal(err)
				}
				if sd.Status != ss.Status {
					t.Fatalf("trial %d scale=%v devex=%v: status %v vs %v", trial, scale, devex, sd.Status, ss.Status)
				}
				if sd.Status == Optimal && !approxEq(sd.Objective, ss.Objective, 1e-6) {
					t.Fatalf("trial %d scale=%v devex=%v: obj %.12g vs %.12g", trial, scale, devex, sd.Objective, ss.Objective)
				}
			}
		}
	}
}

func TestBackendParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SolverBackend
	}{{"auto", AutoBackend}, {"", AutoBackend}, {"sparselu", SparseLU}, {"LU", SparseLU}, {"Dense", Dense}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseBackend("qr"); err == nil {
		t.Fatal("expected error for unknown backend")
	}
	if SparseLU.String() != "sparselu" || Dense.String() != "dense" || AutoBackend.String() != "auto" {
		t.Fatal("backend String() drifted")
	}
}

func TestSetDefaultBackend(t *testing.T) {
	prev := SetDefaultBackend(Dense)
	defer SetDefaultBackend(prev)
	if AutoBackend.resolve() != Dense {
		t.Fatal("SetDefaultBackend(Dense) not picked up by AutoBackend")
	}
	if SetDefaultBackend(AutoBackend) != Dense {
		t.Fatal("SetDefaultBackend should return the previous default")
	}
	// Resetting with AutoBackend restores the hard default, SparseLU.
	if AutoBackend.resolve() != SparseLU {
		t.Fatalf("AutoBackend resolves to %v, want sparselu", AutoBackend.resolve())
	}
}
