package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ReadMPS parses a linear program in free-format MPS from r. Supported
// sections: NAME, OBJSENSE (MAX/MIN, an industry extension), ROWS, COLUMNS,
// RHS, RANGES, BOUNDS, ENDATA. Integer markers inside COLUMNS
// ("MARKER ... INTORG/INTEND") are recognized; the returned intVars slice
// lists the variables declared integral (callers wanting a MILP pass them
// to package milp).
//
// RANGES rows are expanded into a second inequality, so the returned
// Problem may have more rows than the file.
func ReadMPS(r io.Reader) (p *Problem, intVars []int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	type rowInfo struct {
		sense Sense
		isObj bool
		terms map[int]float64
		rhs   float64
		rng   *float64
	}
	var (
		section  string
		objSense = Minimize
		rowOrder []string
		rows     = map[string]*rowInfo{}
		objName  string
		colOrder []string
		colIdx   = map[string]int{}
		colObj   = map[string]float64{}
		colLB    = map[string]float64{}
		colUB    = map[string]float64{}
		lbSet    = map[string]bool{}
		ubSet    = map[string]bool{}
		isInt    = map[string]bool{}
		inInt    bool
		lineNo   int
	)

	colOf := func(name string) int {
		if idx, ok := colIdx[name]; ok {
			return idx
		}
		idx := len(colOrder)
		colIdx[name] = idx
		colOrder = append(colOrder, name)
		return idx
	}

	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		if i := strings.IndexByte(raw, '*'); i == 0 {
			continue // comment line
		}
		line := strings.TrimRight(raw, " \t\r")
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(raw) > 0 && raw[0] != ' ' && raw[0] != '\t' {
			// Section header.
			section = strings.ToUpper(fields[0])
			if section == "OBJSENSE" && len(fields) > 1 {
				if strings.EqualFold(fields[1], "MAX") || strings.EqualFold(fields[1], "MAXIMIZE") {
					objSense = Maximize
				}
				section = "" // consumed inline
			}
			if section == "ENDATA" {
				break
			}
			continue
		}
		switch section {
		case "OBJSENSE":
			if strings.EqualFold(fields[0], "MAX") || strings.EqualFold(fields[0], "MAXIMIZE") {
				objSense = Maximize
			}
			section = ""
		case "ROWS":
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("lp: mps line %d: malformed ROWS entry", lineNo)
			}
			name := fields[1]
			ri := &rowInfo{terms: map[int]float64{}}
			switch strings.ToUpper(fields[0]) {
			case "N":
				ri.isObj = true
				if objName == "" {
					objName = name
				}
			case "L":
				ri.sense = LE
			case "G":
				ri.sense = GE
			case "E":
				ri.sense = EQ
			default:
				return nil, nil, fmt.Errorf("lp: mps line %d: unknown row type %q", lineNo, fields[0])
			}
			rows[name] = ri
			rowOrder = append(rowOrder, name)
		case "COLUMNS":
			if len(fields) >= 3 && strings.Contains(strings.ToUpper(fields[1]), "MARKER") {
				switch strings.ToUpper(strings.Trim(fields[2], "'")) {
				case "INTORG":
					inInt = true
				case "INTEND":
					inInt = false
				}
				continue
			}
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, nil, fmt.Errorf("lp: mps line %d: malformed COLUMNS entry", lineNo)
			}
			col := fields[0]
			colOf(col)
			if inInt {
				isInt[col] = true
			}
			for t := 1; t+1 <= len(fields)-1; t += 2 {
				rowName := fields[t]
				v, err := strconv.ParseFloat(fields[t+1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				ri, ok := rows[rowName]
				if !ok {
					return nil, nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, rowName)
				}
				if ri.isObj {
					colObj[col] += v
				} else {
					ri.terms[colIdx[col]] += v
				}
			}
		case "RHS":
			// First field is usually the RHS set name; some writers omit it,
			// leaving an even field count.
			start := 1
			if len(fields)%2 == 0 {
				start = 0
			}
			for t := start; t+1 <= len(fields)-1; t += 2 {
				rowName := fields[t]
				v, err := strconv.ParseFloat(fields[t+1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				if ri, ok := rows[rowName]; ok && !ri.isObj {
					ri.rhs = v
				}
			}
		case "RANGES":
			start := 1
			if len(fields)%2 == 0 {
				start = 0
			}
			for t := start; t+1 <= len(fields)-1; t += 2 {
				rowName := fields[t]
				v, err := strconv.ParseFloat(fields[t+1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				if ri, ok := rows[rowName]; ok {
					vv := v
					ri.rng = &vv
				}
			}
		case "BOUNDS":
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("lp: mps line %d: malformed BOUNDS entry", lineNo)
			}
			btype := strings.ToUpper(fields[0])
			col := fields[2]
			colOf(col)
			var v float64
			if len(fields) >= 4 {
				v, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
			}
			switch btype {
			case "UP":
				colUB[col] = v
				ubSet[col] = true
			case "LO":
				colLB[col] = v
				lbSet[col] = true
			case "FX":
				colLB[col], colUB[col] = v, v
				lbSet[col], ubSet[col] = true, true
			case "FR":
				colLB[col] = math.Inf(-1)
				colUB[col] = math.Inf(1)
				lbSet[col], ubSet[col] = true, true
			case "MI":
				colLB[col] = math.Inf(-1)
				lbSet[col] = true
			case "PL":
				colUB[col] = math.Inf(1)
				ubSet[col] = true
			case "BV":
				colLB[col], colUB[col] = 0, 1
				lbSet[col], ubSet[col] = true, true
				isInt[col] = true
			default:
				return nil, nil, fmt.Errorf("lp: mps line %d: unsupported bound type %q", lineNo, btype)
			}
		case "":
			// ignore
		default:
			return nil, nil, fmt.Errorf("lp: mps line %d: data in unknown section %q", lineNo, section)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if objName == "" {
		return nil, nil, fmt.Errorf("lp: mps: no objective (N) row")
	}

	p = NewProblem(objSense)
	for _, col := range colOrder {
		lb, ub := 0.0, math.Inf(1)
		if lbSet[col] {
			lb = colLB[col]
		}
		if ubSet[col] {
			ub = colUB[col]
		}
		// MPS convention: an UP bound with a negative value and no LO bound
		// implies lb = -inf.
		if ubSet[col] && !lbSet[col] && ub < 0 {
			lb = math.Inf(-1)
		}
		v := p.AddVariable(colObj[col], lb, ub, col)
		if isInt[col] {
			intVars = append(intVars, v)
		}
	}
	for _, name := range rowOrder {
		ri := rows[name]
		if ri.isObj || len(ri.terms) == 0 {
			continue
		}
		idx := make([]int, 0, len(ri.terms))
		for v := range ri.terms {
			idx = append(idx, v)
		}
		sort.Ints(idx)
		val := make([]float64, len(idx))
		for t, v := range idx {
			val[t] = ri.terms[v]
		}
		p.AddConstraint(idx, val, ri.sense, ri.rhs, name)
		if ri.rng != nil {
			// RANGES: the row becomes two-sided. For L rows the implied
			// second constraint is ≥ rhs-|R|; for G rows ≤ rhs+|R|; for E
			// rows the interval is [rhs, rhs+|R|] (sign conventions vary;
			// we use the absolute-value form).
			rv := math.Abs(*ri.rng)
			switch ri.sense {
			case LE:
				p.AddConstraint(idx, val, GE, ri.rhs-rv, name+"_rng")
			case GE:
				p.AddConstraint(idx, val, LE, ri.rhs+rv, name+"_rng")
			case EQ:
				// Replace the equality semantics with an interval by adding
				// a ≤ upper row; the EQ row already pins the lower end, so
				// instead emit as [rhs, rhs+rv] using two inequalities.
				// The EQ row was already added; approximate the standard
				// convention by widening upward.
				p.AddConstraint(idx, val, LE, ri.rhs+rv, name+"_rng")
			}
		}
	}
	return p, intVars, nil
}

// WriteMPS writes the problem in free-format MPS. Integer variables (by
// index) are wrapped in INTORG/INTEND markers.
func (p *Problem) WriteMPS(w io.Writer, name string, intVars []int) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "POP"
	}
	fmt.Fprintf(bw, "NAME          %s\n", name)
	if p.objective == Maximize {
		fmt.Fprintf(bw, "OBJSENSE\n    MAX\n")
	}
	fmt.Fprintf(bw, "ROWS\n N  COST\n")
	rowName := func(i int) string {
		if p.rowNames[i] != "" {
			return fmt.Sprintf("R%d_%s", i, sanitize(p.rowNames[i]))
		}
		return fmt.Sprintf("R%d", i)
	}
	for i, r := range p.rows {
		var t string
		switch r.sense {
		case LE:
			t = "L"
		case GE:
			t = "G"
		case EQ:
			t = "E"
		}
		fmt.Fprintf(bw, " %s  %s\n", t, rowName(i))
	}

	colName := func(j int) string {
		if p.varNames[j] != "" {
			return fmt.Sprintf("X%d_%s", j, sanitize(p.varNames[j]))
		}
		return fmt.Sprintf("X%d", j)
	}
	// Column-wise terms.
	terms := make([][][2]float64, len(p.obj)) // per column: (row, coef)
	for i, r := range p.rows {
		merged := map[int]float64{}
		for t, v := range r.idx {
			merged[v] += r.val[t]
		}
		cols := make([]int, 0, len(merged))
		for v := range merged {
			cols = append(cols, v)
		}
		sort.Ints(cols)
		for _, v := range cols {
			terms[v] = append(terms[v], [2]float64{float64(i), merged[v]})
		}
	}
	isInt := map[int]bool{}
	for _, v := range intVars {
		isInt[v] = true
	}

	fmt.Fprintf(bw, "COLUMNS\n")
	inInt := false
	marker := 0
	for j := range p.obj {
		if isInt[j] && !inInt {
			fmt.Fprintf(bw, "    MARKER%d  'MARKER'  'INTORG'\n", marker)
			marker++
			inInt = true
		}
		if !isInt[j] && inInt {
			fmt.Fprintf(bw, "    MARKER%d  'MARKER'  'INTEND'\n", marker)
			marker++
			inInt = false
		}
		if p.obj[j] != 0 {
			fmt.Fprintf(bw, "    %s  COST  %.17g\n", colName(j), p.obj[j])
		}
		for _, t := range terms[j] {
			fmt.Fprintf(bw, "    %s  %s  %.17g\n", colName(j), rowName(int(t[0])), t[1])
		}
		if p.obj[j] == 0 && len(terms[j]) == 0 {
			// Column must still appear so the variable exists on re-read.
			fmt.Fprintf(bw, "    %s  COST  0\n", colName(j))
		}
	}
	if inInt {
		fmt.Fprintf(bw, "    MARKER%d  'MARKER'  'INTEND'\n", marker)
	}

	fmt.Fprintf(bw, "RHS\n")
	for i, r := range p.rows {
		if r.rhs != 0 {
			fmt.Fprintf(bw, "    RHS  %s  %.17g\n", rowName(i), r.rhs)
		}
	}

	fmt.Fprintf(bw, "BOUNDS\n")
	for j := range p.obj {
		lb, ub := p.lb[j], p.ub[j]
		switch {
		case lb == ub:
			fmt.Fprintf(bw, " FX BND  %s  %.17g\n", colName(j), lb)
		case math.IsInf(lb, -1) && math.IsInf(ub, 1):
			fmt.Fprintf(bw, " FR BND  %s\n", colName(j))
		default:
			if math.IsInf(lb, -1) {
				fmt.Fprintf(bw, " MI BND  %s\n", colName(j))
			} else if lb != 0 {
				fmt.Fprintf(bw, " LO BND  %s  %.17g\n", colName(j), lb)
			}
			if !math.IsInf(ub, 1) {
				fmt.Fprintf(bw, " UP BND  %s  %.17g\n", colName(j), ub)
			}
		}
	}
	fmt.Fprintf(bw, "ENDATA\n")
	return bw.Flush()
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) > 24 {
		out = out[:24]
	}
	return string(out)
}
