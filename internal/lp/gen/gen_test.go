package gen

import (
	"bytes"
	"testing"

	"pop/internal/lp"
)

// mpsBytes serializes a problem so instances can be compared bit-for-bit.
func mpsBytes(t *testing.T, p *lp.Problem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteMPS(&buf, "GEN", nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicForFixedSeed: the same seed must produce byte-identical
// instances (the benchmarks rely on this for cross-run comparability), and
// a different seed must not.
func TestDeterministicForFixedSeed(t *testing.T) {
	a := All(7)
	b := All(7)
	if len(a) != len(b) || len(a) != 9 {
		t.Fatalf("All produced %d and %d instances, want 9 each", len(a), len(b))
	}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatalf("instance %d: name %q vs %q", i, a[i].Name(), b[i].Name())
		}
		if !bytes.Equal(mpsBytes(t, a[i].P), mpsBytes(t, b[i].P)) {
			t.Fatalf("instance %s differs across runs with the same seed", a[i].Name())
		}
	}
	c := All(8)
	diff := false
	for i := range a {
		if !bytes.Equal(mpsBytes(t, a[i].P), mpsBytes(t, c[i].P)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical corpora")
	}
}

// TestShapesGrowWithSize: each family's dimensions must be monotone in the
// size grade, and every instance non-degenerate.
func TestShapesGrowWithSize(t *testing.T) {
	families := map[string][]*Instance{}
	for _, in := range All(1) {
		families[in.Family] = append(families[in.Family], in)
	}
	for fam, ins := range families {
		if len(ins) != 3 {
			t.Fatalf("family %s has %d sizes, want 3", fam, len(ins))
		}
		for i := 1; i < len(ins); i++ {
			if ins[i].P.NumVariables() <= ins[i-1].P.NumVariables() {
				t.Fatalf("%s: variables not growing: %s=%d, %s=%d", fam,
					ins[i-1].Size, ins[i-1].P.NumVariables(), ins[i].Size, ins[i].P.NumVariables())
			}
			if ins[i].P.NumConstraints() <= ins[i-1].P.NumConstraints() {
				t.Fatalf("%s: constraints not growing", fam)
			}
		}
		for _, in := range ins {
			if in.P.NumNonzeros() == 0 {
				t.Fatalf("%s has no nonzeros", in.Name())
			}
		}
	}
	if len(families) != 3 {
		t.Fatalf("got families %v, want te/cluster/lb", len(families))
	}
}

// TestSmallInstancesSolveFeasibly: every small instance must be solvable to
// optimality and its solution must satisfy its own constraints — the
// feasibility sanity check on the generators.
func TestSmallInstancesSolveFeasibly(t *testing.T) {
	for _, in := range All(3) {
		if in.Size != Small {
			continue
		}
		sol, err := in.P.Solve()
		if err != nil {
			t.Fatalf("%s: %v", in.Name(), err)
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("%s: status %v, want optimal", in.Name(), sol.Status)
		}
		if err := in.P.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("%s: optimal point infeasible: %v", in.Name(), err)
		}
		switch in.Family {
		case "te":
			// Max-flow objective: some traffic must route.
			if sol.Objective <= 0 {
				t.Fatalf("te solved to %g, want positive flow", sol.Objective)
			}
		case "cluster":
			// The epigraph t is variable 0 and equals the objective.
			if sol.Objective <= 0 || sol.X[0] != sol.Objective {
				t.Fatalf("cluster: objective %g, t %g", sol.Objective, sol.X[0])
			}
		case "lb":
			// Movement cost is nonnegative by construction.
			if sol.Objective < 0 {
				t.Fatalf("lb solved to %g, want ≥ 0", sol.Objective)
			}
		}
	}
}

func TestSizeStrings(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("size strings drifted")
	}
	if got := (&Instance{Family: "te", Size: Large}).Name(); got != "te/large" {
		t.Fatalf("Name = %q", got)
	}
	if n := len(Sizes()); n != 3 {
		t.Fatalf("Sizes() has %d entries", n)
	}
}
