// Package gen synthesizes LP instances shaped like the three POP case
// studies — traffic engineering (path-based max flow), cluster scheduling
// (max-min fairness epigraph), and shard load balancing (fractional
// assignment) — at graded sizes. The lp benchmarks and cmd/lpbench use the
// same generators so BENCH_lp.json numbers line up with `go test -bench`.
package gen

import (
	"fmt"
	"math/rand"

	"pop/internal/lp"
)

// Size grades an instance family.
type Size int

const (
	Small Size = iota
	Medium
	Large
)

func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// Sizes lists the benchmarked grades in ascending order.
func Sizes() []Size { return []Size{Small, Medium, Large} }

// Instance couples a generated problem with its provenance.
type Instance struct {
	Family string // "te", "cluster", or "lb"
	Size   Size
	P      *lp.Problem
}

// Name is the canonical "family/size" label.
func (in *Instance) Name() string { return in.Family + "/" + in.Size.String() }

// All generates every family at every size with the given seed.
func All(seed int64) []*Instance {
	var out []*Instance
	for _, sz := range Sizes() {
		out = append(out,
			&Instance{"te", sz, TE(sz, seed)},
			&Instance{"cluster", sz, Cluster(sz, seed)},
			&Instance{"lb", sz, LB(sz, seed)},
		)
	}
	return out
}

func pick(s Size, small, medium, large int) int {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}

// TE builds a path-based max-total-flow LP: one variable per (commodity,
// path) with ~hops nonzeros in the edge-capacity rows plus one in the
// commodity's demand row — the extremely sparse column profile the sparse
// LU backend is designed for.
func TE(s Size, seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed))
	edges := pick(s, 60, 200, 500)
	commodities := pick(s, 80, 300, 900)
	paths := 4
	hops := 4

	p := lp.NewProblem(lp.Maximize)
	edgeRows := make([][]int, edges)
	edgeVals := make([][]float64, edges)
	for c := 0; c < commodities; c++ {
		demand := 1 + rng.Float64()*9
		var cidx []int
		for k := 0; k < paths; k++ {
			v := p.AddVariable(1, 0, lp.Inf, "")
			cidx = append(cidx, v)
			// A random loop-free-ish path: `hops` distinct edges.
			seen := map[int]bool{}
			for h := 0; h < hops; h++ {
				e := rng.Intn(edges)
				for seen[e] {
					e = rng.Intn(edges)
				}
				seen[e] = true
				edgeRows[e] = append(edgeRows[e], v)
				edgeVals[e] = append(edgeVals[e], 1)
			}
		}
		ones := make([]float64, len(cidx))
		for i := range ones {
			ones[i] = 1
		}
		p.AddConstraint(cidx, ones, lp.LE, demand, "")
	}
	// Capacities sized so a meaningful fraction of demand is routable.
	capScale := float64(commodities*paths*hops) / float64(edges)
	for e := 0; e < edges; e++ {
		if len(edgeRows[e]) == 0 {
			continue
		}
		p.AddConstraint(edgeRows[e], edgeVals[e], lp.LE, capScale*(0.2+rng.Float64()), "")
	}
	return p
}

// Cluster builds a max-min fairness space-sharing LP: x[j][r] is job j's
// allocation on resource type r, t is the epigraph variable maximized
// subject to every job's normalized throughput reaching t.
func Cluster(s Size, seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed + 1))
	jobs := pick(s, 60, 250, 700)
	types := 4

	p := lp.NewProblem(lp.Maximize)
	t := p.AddVariable(1, -lp.Inf, lp.Inf, "t")
	typeRows := make([][]int, types)
	typeVals := make([][]float64, types)
	for j := 0; j < jobs; j++ {
		idx := []int{t}
		val := []float64{-1}
		for r := 0; r < types; r++ {
			v := p.AddVariable(0, 0, 1, "")
			// Normalized throughput of job j on type r.
			thr := 0.2 + rng.Float64()
			idx = append(idx, v)
			val = append(val, thr)
			typeRows[r] = append(typeRows[r], v)
			typeVals[r] = append(typeVals[r], 1)
		}
		p.AddConstraint(idx, val, lp.GE, 0, "")
	}
	for r := 0; r < types; r++ {
		capacity := float64(jobs) / float64(types) * (0.5 + rng.Float64()*0.5)
		p.AddConstraint(typeRows[r], typeVals[r], lp.LE, capacity, "")
	}
	return p
}

// LB builds a fractional shard-assignment LP: x[i][k] routes shard i's
// queries to server k, each shard fully routed, per-server load banded,
// minimizing data movement off the current placement.
func LB(s Size, seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed + 2))
	shards := pick(s, 80, 300, 800)
	servers := pick(s, 8, 16, 32)

	p := lp.NewProblem(lp.Minimize)
	loads := make([]float64, shards)
	total := 0.0
	for i := range loads {
		loads[i] = 0.5 + rng.Float64()*4
		total += loads[i]
	}
	band := total / float64(servers) * 1.1
	srvRows := make([][]int, servers)
	srvVals := make([][]float64, servers)
	for i := 0; i < shards; i++ {
		home := rng.Intn(servers)
		var idx []int
		ones := make([]float64, servers)
		for k := 0; k < servers; k++ {
			cost := loads[i]
			if k == home {
				cost = 0 // staying put moves no bytes
			}
			v := p.AddVariable(cost, 0, 1, "")
			idx = append(idx, v)
			ones[k] = 1
			srvRows[k] = append(srvRows[k], v)
			srvVals[k] = append(srvVals[k], loads[i])
		}
		p.AddConstraint(idx, ones, lp.EQ, 1, "")
	}
	for k := 0; k < servers; k++ {
		p.AddConstraint(srvRows[k], srvVals[k], lp.LE, band, "")
	}
	return p
}
