// Package lp implements a linear-programming solver sufficient for the
// resource-allocation formulations used throughout this repository: cluster
// scheduling (max-min fairness, makespan), traffic engineering (max total
// flow, max concurrent flow), and the LP relaxations used by the MILP
// branch-and-bound in package milp.
//
// The algorithm is a two-phase bounded-variable revised simplex:
//
//   - The model is standardized to  min cᵀx  s.t.  Ax = b,  l ≤ x ≤ u  by
//     appending one slack column per row (equality rows get a slack fixed to
//     [0,0] so the basis machinery stays uniform).
//   - Phase 1 starts from an all-artificial basis and minimizes the sum of
//     infeasibilities; phase 2 optimizes the real objective.
//   - The constraint matrix is stored column-wise and sparse; the basis
//     inverse is a dense m×m matrix maintained with product-form (eta)
//     updates and rebuilt by Gauss-Jordan elimination when numerical drift
//     is detected or after a fixed number of pivots.
//   - Pricing is Dantzig (most-negative reduced cost) with an automatic
//     switch to Bland's rule after a run of degenerate pivots, which
//     guarantees termination.
//   - The ratio test handles variable bound flips, so boxed variables (the
//     common case in allocation problems, where 0 ≤ A ≤ 1) never enter the
//     basis just to move between their bounds.
//
// The solver reports primal values, row duals, reduced costs, and a status
// (Optimal, Infeasible, Unbounded, IterLimit, Numerical). It is deterministic:
// the same model always takes the same pivot sequence.
package lp
