// Package lp implements a linear-programming solver sufficient for the
// resource-allocation formulations used throughout this repository: cluster
// scheduling (max-min fairness, makespan), traffic engineering (max total
// flow, max concurrent flow), and the LP relaxations used by the MILP
// branch-and-bound in package milp.
//
// The algorithm is a two-phase bounded-variable revised simplex:
//
//   - The model is standardized to  min cᵀx  s.t.  Ax = b,  l ≤ x ≤ u  by
//     appending one slack column per row (equality rows get a slack fixed to
//     [0,0] so the basis machinery stays uniform).
//   - Phase 1 starts from an all-artificial basis and minimizes the sum of
//     infeasibilities; phase 2 optimizes the real objective.
//   - The constraint matrix is stored column-wise and sparse; the basis is
//     maintained behind the basisFactor interface by one of two backends
//     (see below), selected with Options.Backend.
//   - Pricing is Dantzig (most-negative reduced cost) with an automatic
//     switch to Bland's rule after a run of degenerate pivots, which
//     guarantees termination; Options.Devex enables devex pricing. The dual
//     phase prices its leaving rows with dual devex reference weights by
//     default (Options.DualPricing).
//   - The ratio tests — primal and dual — are Harris-style two-pass bounded
//     tests: the first pass finds the loosest step admissible with every
//     competing bound relaxed by the feasibility tolerance, the second takes
//     the largest-magnitude pivot that fits under it, trading a
//     tolerance-sized excursion for pivot quality on the degenerate chains
//     allocation LPs produce. Bland mode keeps the strict one-pass rule its
//     termination guarantee is proved for. The primal test also handles
//     variable bound flips, so boxed variables (the common case in
//     allocation problems, where 0 ≤ A ≤ 1) never enter the basis just to
//     move between their bounds.
//
// # Basis backends
//
// SparseLU (the default) factorizes the basis as P·B·Q = L·U with
// left-looking sparse Gaussian elimination: columns are processed
// sparsest-first and the pivot row is chosen by threshold partial pivoting
// (candidates within 10× of the column's largest magnitude, preferring the
// row with the fewest nonzeros) — an approximate Markowitz ordering that
// keeps fill low on the extremely sparse bases granular allocation LPs
// produce. Each simplex pivot is then absorbed into the stored U in place
// with a Forrest–Tomlin update: the entering column becomes a spike, the
// spiked column rotates to the last triangular position, and the leaving
// row is eliminated by a recorded row transformation — so ftran/btran stay
// sparse triangular solves through factors whose size tracks actual fill,
// not pivot count. Options.Update selects the strategy: ForrestTomlin (the
// default) or EtaUpdate, the legacy product-form eta file that appends the
// entering column's ftran per pivot and regrows without bound between
// rebuilds.
//
// Refactorization is scheduled adaptively, not just by the fixed
// Options.ReinvertEvery cadence: the FT path rebuilds when U's fill grows
// past a budget tied to its post-factorization size, or when a sampled
// ftran residual ‖B·w − a_q‖∞ drifts past tolerance — measured numerical
// trouble, caught before it can leak into pivot decisions. An update whose
// elimination multiplier or final diagonal is too extreme to absorb stably
// is rejected outright and answered with a refactorization from scratch.
// The update/reject/refactor-reason counters export through Options.Obs
// (pop_lp_ft_updates_total, pop_lp_ft_rejects_total,
// pop_lp_drift_refactors_total, pop_lp_fill_refactors_total).
//
// Dense is the reference backend: an explicit dense m×m basis inverse
// updated by rank-1 eta transformations and rebuilt by Gauss-Jordan
// elimination with partial pivoting. It is O(m²) per iteration and O(m³)
// per rebuild, but numerically transparent; the cross-backend equivalence
// suite (equivalence_test.go) holds both backends to identical statuses and
// objectives within 1e-6 on fixture and randomized models.
//
// Fallback policy: if the sparse factorization finds the basis singular or
// rejects an update pivot, the solve refactorizes; if that fails it switches
// to the dense backend mid-solve; and if a SparseLU solve still ends in
// numerical failure, SolveWithOptions re-solves once from scratch with
// Dense. AutoBackend (the Options zero value) resolves to SparseLU, so
// every caller gets the fast path without opting in; SetDefaultBackend
// rebinds it process-wide (cmd/popbench -backend).
//
// # Warm starts
//
// Every optimal solve exports a combinatorial Basis snapshot
// (Solution.Basis); passing it back as Options.WarmBasis seeds a later
// solve of the same or a similar problem. The warm path rebuilds primal
// values from the snapshot (repairing the basic count if the shape drifted),
// refactorizes, and — when the stale basis is no longer primal feasible —
// runs a bound-shifting phase 1: out-of-bounds columns get their bounds
// temporarily relaxed to the interval between current value and violated
// bound plus a unit cost pushing them home, so ordinary phase-2 pivots
// restore feasibility without the all-artificial restart. A snapshot that
// is the wrong shape, singular, or unrepairable is silently discarded for a
// cold phase 1 (Solution.WarmStarted reports which path ran); warm starts
// therefore change solve speed, never solve outcomes. This is what the
// online engine (package online) leans on to re-solve drifting sub-problems
// round after round.
//
// # Persistent models: the Model lifecycle
//
// Problem is a one-shot builder: construct, standardize, solve, discard.
// Model is the persistent alternative for the mutate-and-resolve regime the
// online engines live in. Its lifecycle:
//
//  1. Build once, with the same builder API as Problem (NewModel, or
//     NewModelFromProblem to wrap an existing build; helper code can target
//     the shared Builder interface).
//  2. Solve. The standardized equality form is built on first solve and
//     cached; the optimal basis is stored inside the model.
//  3. Mutate in place: SetCoeff / SetRHS / SetBounds / SetObjectiveCoeff
//     patch both the builder state and the cached standardized form
//     directly (no re-standardize), and all setters no-op on unchanged
//     values so the delta classification below stays exact. Structural
//     edits — AddVariable/AddConstraint and the block operations
//     InsertVariables / RemoveVariables / InsertConstraint /
//     RemoveConstraints — mark the standardized form for a lazy rebuild and
//     splice the stored basis statuses in lockstep, so surviving blocks
//     keep their warm information across membership changes.
//  4. Re-solve. The model classifies everything that happened since the
//     last optimal basis and picks the cheapest start that is still sound
//     (see the dual simplex section). Coefficient deltas first pass a
//     hostile-refresh check with two complementary signals: broad row churn
//     (a quarter or more of the constraint rows had coefficients rewritten,
//     so the repair cost approaches a cold start no matter what the reduced
//     costs say), and optimality rotation (a strided sample of nonbasic
//     columns priced against the previous solve's duals shows a majority
//     flipped — the signature of a global input rotation, like an
//     equal-share denominator shift, even when few entries changed). Either
//     drops the basis rather than pay a warm repair that costs more than
//     the cold phase 1 it replaces (booked as
//     pop_lp_warm_hostile_drops_total). Whatever path runs, the
//     outcome equals a cold solve of a fresh build of the current state —
//     the mutation-equivalence suite (model_test.go) holds mutate==rebuild
//     to 1e-6 over randomized delta chains.
//
// A Model is not safe for concurrent use. Options.Scale solves a clone of
// the cached form (scaling rescales the matrix in place), trading the
// incremental-build saving for conditioning on that solve.
//
// Basis() and SetBasis() expose the stored snapshot for search-tree use:
// take the basis at one point, keep mutating and re-solving down one path,
// then jump back by re-installing the snapshot under different bounds. The
// branch and bound in package milp runs its whole tree this way — each open
// node carries its parent's snapshot, and bound-only branching keeps every
// node re-solve on the dual path below.
//
// # Dual simplex
//
// Perturbing only b, l, or u leaves reduced costs untouched, so the
// previous optimal basis stays dual feasible while its basic values drift
// out of bounds. The dual simplex phase (dual.go) exploits this: it
// repeatedly drives the most bound-violating basic variable out of the
// basis onto its violated bound, entering the nonbasic column whose
// reduced-cost ratio keeps every column dual feasible — typically settling
// a load or capacity shift in a handful of pivots where the primal warm
// path would run its bound-shifting repair phase and the cold path a full
// phase 1. Leaving rows are ranked violation²/weight under dual devex
// reference weights (Options.DualPricing; DualDantzig recovers the raw
// largest-violation rule), and the entering column comes from the dual
// Harris two-pass ratio test described above.
//
// Entry conditions (all must hold, else the solve falls back to the primal
// warm path and then cold, so outcomes never change):
//
//   - Options.Dual is set alongside Options.WarmBasis. Model.Solve sets it
//     automatically when the deltas since the stored basis are rhs/bound
//     only; callers using Problem directly can set it by hand.
//   - The snapshot fits exactly: the model's shape, exactly m basic
//     columns (a count-repaired or block-spliced basis goes primal).
//   - The implied basis matrix factorizes, and the installed statuses
//     price dual feasible against the current objective.
//
// A dual phase that hits the iteration limit, numerical trouble, or an
// apparent infeasibility (which a stale start cannot be trusted to prove)
// likewise resets and falls back. Solution.DualPivots reports the pivots
// the dual phase took.
//
// The solver reports primal values, row duals, reduced costs, and a status
// (Optimal, Infeasible, Unbounded, IterLimit, Numerical). It is deterministic:
// the same model always takes the same pivot sequence.
package lp
