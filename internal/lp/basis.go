package lp

import "math"

// basisFactor maintains a factorized representation of the current basis
// matrix B (columns s.basis[0..m-1] of the standardized constraint matrix,
// including artificials). The simplex core is written against this
// interface; denseFactor keeps an explicit inverse, luFactor keeps a sparse
// LU factorization with product-form (eta) updates.
//
// Vector spaces: "row space" indexes original constraint rows, "position
// space" indexes basis positions (w[i] pairs with s.basis[i]). B maps
// position space to row space.
type basisFactor interface {
	// refactor rebuilds the factorization from s.basis. It returns false
	// if the basis is numerically singular.
	refactor() bool
	// ftranCol computes w = B⁻¹ A_q for column q (structural, slack, or
	// artificial) into w (position space).
	ftranCol(q int, w []float64)
	// ftranDense solves B x = v in place: v enters in row space and leaves
	// holding x in position space.
	ftranDense(v []float64)
	// btranCost computes y = B⁻ᵀ c_B into y (row space), reading the
	// current phase costs of the basic columns.
	btranCost(y []float64)
	// btranUnit computes z = B⁻ᵀ e_r into z (row space) for basis
	// position r; zᵀ is row r of B⁻¹, needed by devex pricing.
	btranUnit(r int, z []float64)
	// update records the pivot that replaced the column at basis position
	// `leave` with the column whose ftran is w. It returns false if the
	// pivot is too unstable to absorb, in which case the caller must
	// refactor.
	update(leave int, w []float64) bool
	// wantRefactor reports that accumulated update fill makes an early
	// refactorization worthwhile.
	wantRefactor() bool
}

// denseFactor is the reference backend: an explicit dense m×m basis inverse,
// row-major in position-major order (binv[i*m+k] = (B⁻¹)[position i][row k]),
// maintained by rank-1 eta transformations and rebuilt by Gauss-Jordan
// elimination.
type denseFactor struct {
	s    *simplex
	binv []float64
	tmp  []float64
}

func newDenseFactor(s *simplex) *denseFactor {
	return &denseFactor{s: s, tmp: make([]float64, s.m)}
}

func (d *denseFactor) refactor() bool {
	s := d.s
	m := s.m
	bm := make([]float64, m*m)
	for pos, j := range s.basis {
		if j >= s.artStart {
			k := j - s.artStart
			bm[k*m+pos] = s.artSign[k]
			continue
		}
		ind, val := s.std.col(j)
		for t, r := range ind {
			bm[int(r)*m+pos] = val[t]
		}
	}
	inv, ok := invertDense(bm, m)
	if !ok {
		return false
	}
	d.binv = inv
	return true
}

func (d *denseFactor) ftranCol(q int, w []float64) {
	s := d.s
	m := s.m
	for i := range w {
		w[i] = 0
	}
	if q >= s.artStart {
		k := q - s.artStart
		sign := s.artSign[k]
		for i := 0; i < m; i++ {
			w[i] = d.binv[i*m+k] * sign
		}
		return
	}
	ind, val := s.std.col(q)
	for t, r := range ind {
		v := val[t]
		if v == 0 {
			continue
		}
		ri := int(r)
		for i := 0; i < m; i++ {
			w[i] += d.binv[i*m+ri] * v
		}
	}
}

func (d *denseFactor) ftranDense(v []float64) {
	m := d.s.m
	for i := 0; i < m; i++ {
		row := d.binv[i*m : (i+1)*m]
		sum := 0.0
		for k, bv := range row {
			if bv != 0 {
				sum += bv * v[k]
			}
		}
		d.tmp[i] = sum
	}
	copy(v, d.tmp)
}

func (d *denseFactor) btranCost(y []float64) {
	s := d.s
	m := s.m
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m; i++ {
		cb := s.cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := d.binv[i*m : (i+1)*m]
		for j, v := range row {
			y[j] += cb * v
		}
	}
}

func (d *denseFactor) btranUnit(r int, z []float64) {
	m := d.s.m
	copy(z, d.binv[r*m:(r+1)*m])
}

// update applies the product-form transformation: row `leave` of B⁻¹ is
// divided by the pivot, then subtracted from every other row in proportion
// to w.
func (d *denseFactor) update(leave int, w []float64) bool {
	m := d.s.m
	wl := w[leave]
	if wl == 0 {
		return false
	}
	pivRow := d.binv[leave*m : (leave+1)*m]
	inv := 1 / wl
	for j := range pivRow {
		pivRow[j] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := w[i]
		if f == 0 {
			continue
		}
		row := d.binv[i*m : (i+1)*m]
		for j, v := range pivRow {
			if v != 0 {
				row[j] -= f * v
			}
		}
	}
	return true
}

func (d *denseFactor) wantRefactor() bool { return false }

// invertDense inverts the m×m row-major matrix a in place via Gauss-Jordan
// with partial pivoting, returning (inverse, true) on success. The input is
// clobbered.
func invertDense(a []float64, m int) ([]float64, bool) {
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	for col := 0; col < m; col++ {
		piv, pmax := -1, 0.0
		for r := col; r < m; r++ {
			if v := math.Abs(a[r*m+col]); v > pmax {
				pmax = v
				piv = r
			}
		}
		if piv < 0 || pmax < 1e-12 {
			return nil, false
		}
		if piv != col {
			swapRows(a, m, piv, col)
			swapRows(inv, m, piv, col)
		}
		d := 1 / a[col*m+col]
		arow := a[col*m : (col+1)*m]
		irow := inv[col*m : (col+1)*m]
		for j := range arow {
			arow[j] *= d
		}
		for j := range irow {
			irow[j] *= d
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r*m+col]
			if f == 0 {
				continue
			}
			ar := a[r*m : (r+1)*m]
			ir := inv[r*m : (r+1)*m]
			for j := range arow {
				if arow[j] != 0 {
					ar[j] -= f * arow[j]
				}
			}
			for j := range irow {
				if irow[j] != 0 {
					ir[j] -= f * irow[j]
				}
			}
		}
	}
	return inv, true
}

func swapRows(a []float64, m, r1, r2 int) {
	row1 := a[r1*m : (r1+1)*m]
	row2 := a[r2*m : (r2+1)*m]
	for j := range row1 {
		row1[j], row2[j] = row2[j], row1[j]
	}
}
