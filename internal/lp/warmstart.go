package lp

import "math"

// BasisStatus describes where one column sits in a simplex basis snapshot.
// The numeric values mirror the solver's internal status codes.
type BasisStatus int8

const (
	// BasisBasic marks a column that is in the basis.
	BasisBasic BasisStatus = iota
	// BasisLower marks a nonbasic column resting at its lower bound.
	BasisLower
	// BasisUpper marks a nonbasic column resting at its upper bound.
	BasisUpper
	// BasisFree marks a nonbasic free column held at zero.
	BasisFree
)

// Basis is a combinatorial snapshot of a simplex basis: one status per
// structural variable and one per constraint (for the row's slack). It is
// the warm-start currency of the solver — Solution.Basis from one solve can
// be passed as Options.WarmBasis to a later solve of the same or a similar
// problem (perturbed costs, bounds, or right-hand sides; the dimensions
// must match for the basis to be used directly).
//
// A Basis carries no numeric values, so it remains valid across arbitrary
// coefficient changes; the solver recomputes primal values from the basis
// and falls back to a cold start when the snapshot is stale beyond repair
// (singular after structural drift) or cannot be made primal feasible.
type Basis struct {
	// VarStatus[j] is the status of structural variable j.
	VarStatus []BasisStatus
	// SlackStatus[i] is the status of the slack of constraint i.
	SlackStatus []BasisStatus
}

// Clone returns a deep copy.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{
		VarStatus:   append([]BasisStatus(nil), b.VarStatus...),
		SlackStatus: append([]BasisStatus(nil), b.SlackStatus...),
	}
}

// NumBasic counts columns with BasisBasic status.
func (b *Basis) NumBasic() int {
	n := 0
	for _, s := range b.VarStatus {
		if s == BasisBasic {
			n++
		}
	}
	for _, s := range b.SlackStatus {
		if s == BasisBasic {
			n++
		}
	}
	return n
}

// snapshotBasis captures the current basis in original-problem terms.
func (s *simplex) snapshotBasis() *Basis {
	n := s.std.n
	b := &Basis{
		VarStatus:   make([]BasisStatus, n),
		SlackStatus: make([]BasisStatus, s.m),
	}
	for j := 0; j < n; j++ {
		b.VarStatus[j] = BasisStatus(s.status[j])
	}
	for i := 0; i < s.m; i++ {
		b.SlackStatus[i] = BasisStatus(s.status[n+i])
	}
	return b
}

// sanitizeStatus coerces a requested nonbasic status into one that is
// representable for the column's bounds (nonbasic columns must rest on a
// finite bound, or at zero when both bounds are infinite).
func sanitizeStatus(lb, ub float64, st BasisStatus) int8 {
	loInf, hiInf := math.IsInf(lb, -1), math.IsInf(ub, 1)
	switch st {
	case BasisLower:
		if !loInf {
			return statLower
		}
		if !hiInf {
			return statUpper
		}
		return statFree
	case BasisUpper:
		if !hiInf {
			return statUpper
		}
		if !loInf {
			return statLower
		}
		return statFree
	default: // BasisFree or anything unknown
		if loInf && hiInf {
			return statFree
		}
		if !loInf {
			return statLower
		}
		return statUpper
	}
}

// initWarm attempts to start the solve from the supplied basis snapshot. It
// returns false — leaving the caller to run the cold all-artificial phase 1
// — when the snapshot's dimensions do not match, the implied basis matrix is
// singular, or the basic values it induces cannot be repaired into primal
// feasibility. On success the solver state is primal feasible and ready for
// phase 2.
func (s *simplex) initWarm(b *Basis) bool {
	if !s.installBasis(b) {
		return false
	}
	if s.maxBoundViolation() <= 10*s.opts.TolFeas {
		return true
	}
	return s.warmRepair()
}

// installBasis materializes a basis snapshot into solver state: statuses and
// nonbasic values from the snapshot (with the basic count repaired if the
// shape drifted), a fresh factorization, and recomputed basic values. It
// returns false when the snapshot's dimensions do not match or the implied
// basis matrix is singular; it does not judge primal or dual feasibility —
// that is the caller's start-strategy decision.
func (s *simplex) installBasis(b *Basis) bool {
	std := s.std
	m, n := s.m, std.n
	if b == nil || len(b.VarStatus) != n || len(b.SlackStatus) != m {
		return false
	}

	s.phase = 2 // artificials stay pinned to [0,0] throughout a warm solve
	s.artStart = s.ncols
	s.status = make([]int8, s.ncols+m)
	s.x = make([]float64, s.ncols+m)
	s.cost = make([]float64, s.ncols+m)
	s.artSign = make([]float64, m)
	for i := range s.artSign {
		s.artSign[i] = 1
	}

	nbasic := 0
	for j := 0; j < s.ncols; j++ {
		var want BasisStatus
		if j < n {
			want = b.VarStatus[j]
		} else {
			want = b.SlackStatus[j-n]
		}
		if want == BasisBasic {
			s.status[j] = statBasic
			nbasic++
			continue
		}
		st := sanitizeStatus(std.lb[j], std.ub[j], want)
		s.status[j] = st
		switch st {
		case statLower:
			s.x[j] = std.lb[j]
		case statUpper:
			s.x[j] = std.ub[j]
		}
	}
	for i := 0; i < m; i++ {
		s.status[s.ncols+i] = statLower
	}

	// Repair the basic count: a snapshot spliced across a structural change
	// (clients arriving or departing) rarely lands on exactly m basics.
	// Promote nonbasic slacks (in reverse row order, so the shared trailing
	// rows of block-structured models — whose binding status is what a
	// departed block most plausibly relaxed — absorb the deficit before any
	// surviving client's rows are disturbed) or demote excess basics (high
	// columns first) until the count is right; refactor rejects any truly
	// bad choice below.
	for i := m - 1; i >= 0 && nbasic < m; i-- {
		j := n + i
		if s.status[j] != statBasic {
			s.status[j] = statBasic
			s.x[j] = 0
			nbasic++
		}
	}
	for j := s.ncols - 1; j >= 0 && nbasic > m; j-- {
		if s.status[j] != statBasic {
			continue
		}
		st := sanitizeStatus(std.lb[j], std.ub[j], BasisLower)
		s.status[j] = st
		switch st {
		case statLower:
			s.x[j] = std.lb[j]
		case statUpper:
			s.x[j] = std.ub[j]
		default:
			s.x[j] = 0
		}
		nbasic--
	}
	if nbasic != m {
		return false
	}

	s.basis = make([]int, 0, m)
	for j := 0; j < s.ncols; j++ {
		if s.status[j] == statBasic {
			s.basis = append(s.basis, j)
		}
	}

	s.y = make([]float64, m)
	s.w = make([]float64, m)
	s.rhs = make([]float64, m)
	if s.opts.Devex {
		// Explicit reset on every install: weights tuned to a previous basis
		// (an earlier start strategy, or a caller-supplied SetBasis chain)
		// must not rank pivots for this one.
		s.initDevex()
	}
	if s.backend == Dense {
		s.bas = newDenseFactor(s)
	} else {
		s.bas = newLUFactor(s)
	}
	// reinvert factorizes (falling back SparseLU→Dense on numerical trouble)
	// and recomputes x_B = B⁻¹(b - N x_N); a singular stale basis fails here.
	return s.reinvert()
}

// maxBoundViolation reports the largest bound violation over basic columns
// (nonbasic columns sit exactly on their bounds by construction).
func (s *simplex) maxBoundViolation() float64 {
	worst := 0.0
	for _, j := range s.basis {
		if math.IsNaN(s.x[j]) || math.IsInf(s.x[j], 0) {
			// A nonfinite basic value (near-singular stale basis) would pass
			// every `v > worst` comparison vacuously; force the repair path,
			// which rejects it.
			return math.Inf(1)
		}
		lb, ub := s.lbOf(j), s.ubOf(j)
		if v := lb - s.x[j]; v > worst {
			worst = v
		}
		if v := s.x[j] - ub; v > worst {
			worst = v
		}
	}
	return worst
}

// warmRepair drives a bound-infeasible warm basis back into the feasible
// region with a bound-shifting phase 1: every out-of-bounds column has its
// bounds temporarily relaxed to the interval between its current value and
// the violated true bound, and is given a unit cost pushing it toward that
// bound; everything else keeps its true bounds at zero cost. Minimizing
// this composite objective with ordinary phase-2 pivots moves the violators
// home without ever disturbing columns that are already feasible (the ratio
// test holds them inside their true bounds). Columns that arrive are
// released pass by pass; the loop ends when no violations remain, and gives
// up (cold fallback) when a pass stops making progress.
func (s *simplex) warmRepair() bool {
	const maxPasses = 8
	tol := s.opts.TolFeas
	type savedBound struct {
		j      int
		lb, ub float64
	}
	prevViol := math.Inf(1)
	for pass := 0; pass < maxPasses; pass++ {
		// Read-only pass: measure the remaining violation.
		viol, count := 0.0, 0
		for j := 0; j < s.ncols; j++ {
			if math.IsNaN(s.x[j]) || math.IsInf(s.x[j], 0) {
				return false // nonfinite state is beyond repair: cold restart
			}
			if v := s.std.lb[j] - s.x[j]; v > tol {
				viol += v
				count++
			} else if v := s.x[j] - s.std.ub[j]; v > tol {
				viol += v
				count++
			}
		}
		if count == 0 {
			return true
		}
		if pass > 0 && viol >= prevViol*(1-1e-9) {
			return false // a pass made no progress: the snapshot is beyond repair
		}
		prevViol = viol

		// Relax the violators and install the composite phase-1 costs.
		var sv []savedBound
		for j := 0; j < s.ncols; j++ {
			s.cost[j] = 0
			lb, ub := s.std.lb[j], s.std.ub[j]
			switch {
			case s.x[j] < lb-tol:
				sv = append(sv, savedBound{j, lb, ub})
				s.std.lb[j] = s.x[j]
				s.std.ub[j] = lb
				s.cost[j] = -1
			case s.x[j] > ub+tol:
				sv = append(sv, savedBound{j, lb, ub})
				s.std.lb[j] = ub
				s.std.ub[j] = s.x[j]
				s.cost[j] = 1
			}
		}
		s.degenerateRun = 0
		s.blandMode = s.opts.BlandOnly
		st := s.iterate()

		// Restore the true bounds and re-derive the status of every relaxed
		// column that ended up nonbasic: it sits either on a true bound
		// (released) or on its violation anchor (re-relaxed next pass).
		ok := st == Optimal
		for _, e := range sv {
			s.std.lb[e.j], s.std.ub[e.j] = e.lb, e.ub
			if s.status[e.j] == statBasic {
				continue
			}
			x := s.x[e.j]
			switch {
			case math.Abs(x-e.lb) <= tol*(1+math.Abs(e.lb)):
				s.x[e.j] = e.lb
				s.status[e.j] = statLower
			case math.Abs(x-e.ub) <= tol*(1+math.Abs(e.ub)):
				s.x[e.j] = e.ub
				s.status[e.j] = statUpper
			case x < e.lb:
				s.status[e.j] = statLower
			case x > e.ub:
				s.status[e.j] = statUpper
			default:
				ok = false // nonbasic strictly inside its true bounds: give up
			}
		}
		if !ok {
			return false
		}
		// Snapping relaxed columns onto exact bounds shifts N·x_N slightly;
		// refresh the basic values before judging feasibility again.
		s.recomputeBasics()
	}
	return false
}
