package lp_test

import (
	"testing"

	"pop/internal/lp"
	"pop/internal/lp/gen"
)

// The backend regression benchmarks: one solve of each case-study-shaped
// instance (te, cluster, lb at small/medium/large) per backend. cmd/lpbench
// runs the same generators and writes BENCH_lp.json so PRs can compare.

func benchBackend(b *testing.B, backend lp.SolverBackend) {
	for _, in := range gen.All(1) {
		b.Run(in.Name(), func(b *testing.B) {
			b.ReportMetric(float64(in.P.NumConstraints()), "rows")
			for i := 0; i < b.N; i++ {
				sol, err := in.P.SolveWithOptions(lp.Options{Backend: backend})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != lp.Optimal {
					b.Fatalf("%s: status %v", in.Name(), sol.Status)
				}
			}
		})
	}
}

func BenchmarkLPSolveDense(b *testing.B)    { benchBackend(b, lp.Dense) }
func BenchmarkLPSolveSparseLU(b *testing.B) { benchBackend(b, lp.SparseLU) }
