package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

const sampleMPS = `* A classic tiny model:
* max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6
NAME          CHOCOLATE
OBJSENSE
    MAX
ROWS
 N  COST
 L  LIM1
 L  LIM2
COLUMNS
    X  COST  5  LIM1  6
    X  LIM2  1
    Y  COST  4  LIM1  4
    Y  LIM2  2
RHS
    RHS  LIM1  24  LIM2  6
BOUNDS
ENDATA
`

func TestReadMPSSolves(t *testing.T) {
	p, ints, err := ReadMPS(strings.NewReader(sampleMPS))
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 0 {
		t.Fatalf("unexpected integer vars: %v", ints)
	}
	if p.NumVariables() != 2 || p.NumConstraints() != 2 {
		t.Fatalf("parsed %d vars, %d rows", p.NumVariables(), p.NumConstraints())
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 21)
}

func TestReadMPSBounds(t *testing.T) {
	src := `NAME T
ROWS
 N  OBJ
 G  R1
COLUMNS
    A  OBJ  1  R1  1
    B  OBJ  1  R1  1
    C  OBJ  1  R1  1
    D  OBJ  1  R1  1
RHS
    RHS  R1  -100
BOUNDS
 UP BND  A  4
 LO BND  B  -2
 FX BND  C  7
 FR BND  D
ENDATA
`
	p, _, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	check := func(v int, lb, ub float64) {
		gl, gu := p.Bounds(v)
		if gl != lb || gu != ub {
			t.Fatalf("var %d bounds [%g, %g], want [%g, %g]", v, gl, gu, lb, ub)
		}
	}
	check(0, 0, 4)
	check(1, -2, math.Inf(1))
	check(2, 7, 7)
	check(3, math.Inf(-1), math.Inf(1))
}

func TestReadMPSIntegerMarkers(t *testing.T) {
	src := `NAME T
ROWS
 N  OBJ
 L  R1
COLUMNS
    MARKER1  'MARKER'  'INTORG'
    A  OBJ  3  R1  2
    B  OBJ  2  R1  2
    MARKER2  'MARKER'  'INTEND'
    C  OBJ  1  R1  1
RHS
    RHS  R1  3
BOUNDS
 UP BND  A  1
 UP BND  B  1
ENDATA
`
	_, ints, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 2 || ints[0] != 0 || ints[1] != 1 {
		t.Fatalf("integer vars = %v, want [0 1]", ints)
	}
}

func TestReadMPSRanges(t *testing.T) {
	// L row with RANGES r: rhs-r <= ax <= rhs.
	src := `NAME T
ROWS
 N  OBJ
 L  R1
COLUMNS
    X  OBJ  -1  R1  1
RHS
    RHS  R1  10
RANGES
    RNG  R1  4
ENDATA
`
	p, _, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumConstraints() != 2 {
		t.Fatalf("ranged row should expand to 2 constraints, got %d", p.NumConstraints())
	}
	// min -x s.t. 6 <= x <= 10 → x=10.
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, -10)
}

func TestMPSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		orig := randomFeasibleLP(rng, 5, 9)
		s1, err := orig.Solve()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.WriteMPS(&buf, "RT", nil); err != nil {
			t.Fatal(err)
		}
		back, ints, err := ReadMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if len(ints) != 0 {
			t.Fatalf("trial %d: spurious integer vars", trial)
		}
		if back.NumVariables() != orig.NumVariables() {
			t.Fatalf("trial %d: %d vars, want %d", trial, back.NumVariables(), orig.NumVariables())
		}
		s2, err := back.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal && !approxEq(s1.Objective, s2.Objective, 1e-9) {
			t.Fatalf("trial %d: objective %g vs %g", trial, s1.Objective, s2.Objective)
		}
	}
}

func TestMPSRoundTripIntegers(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(3, 0, 1, "x")
	y := p.AddVariable(2, 0, 5, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 4, "cap")
	var buf bytes.Buffer
	if err := p.WriteMPS(&buf, "MI", []int{x}); err != nil {
		t.Fatal(err)
	}
	_, ints, err := ReadMPS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 1 || ints[0] != 0 {
		t.Fatalf("integer vars = %v, want [0]", ints)
	}
}

func TestReadMPSErrors(t *testing.T) {
	cases := map[string]string{
		"no objective":   "NAME T\nROWS\n L  R1\nENDATA\n",
		"unknown row":    "NAME T\nROWS\n N  OBJ\nCOLUMNS\n    X  NOPE  1\nENDATA\n",
		"bad row type":   "NAME T\nROWS\n Z  R1\nENDATA\n",
		"bad bound type": "NAME T\nROWS\n N  OBJ\nCOLUMNS\n    X  OBJ  1\nBOUNDS\n XX BND  X  1\nENDATA\n",
	}
	for name, src := range cases {
		if _, _, err := ReadMPS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestScalingMatchesUnscaled(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		p1 := randomFeasibleLP(rng, 8, 14)
		p2 := cloneProblem(p1)
		s1, err := p1.SolveWithOptions(Options{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveWithOptions(Options{Scale: true})
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status != Optimal {
			continue
		}
		if !approxEq(s1.Objective, s2.Objective, 1e-6) {
			t.Fatalf("trial %d: obj %g vs %g", trial, s1.Objective, s2.Objective)
		}
		if err := p2.CheckFeasible(s2.X, 1e-6); err != nil {
			t.Fatalf("trial %d: scaled solution infeasible: %v", trial, err)
		}
	}
}

func TestScalingBadlyScaledModel(t *testing.T) {
	// Coefficients spanning 9 orders of magnitude; equilibration keeps the
	// pivots sane. max 1e6·x + y s.t. 1e6·x + 1e-3·y <= 1e6, x <= 1, y <= 1e3.
	p := NewProblem(Maximize)
	x := p.AddVariable(1e6, 0, 1, "x")
	y := p.AddVariable(1, 0, 1e3, "y")
	p.AddConstraint([]int{x, y}, []float64{1e6, 1e-3}, LE, 1e6+1, "big")
	sol, err := p.SolveWithOptions(Options{Scale: true})
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if !approxEq(sol.Objective, 1e6+1e3, 1e-6) {
		t.Fatalf("objective = %g, want %g", sol.Objective, 1e6+1e3)
	}
	if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Fatal(err)
	}
}
