package lp

import (
	"time"

	"pop/internal/obs"
)

// bookSolve records solve-level metrics on o's registry. Handles resolve
// through the registry's read-locked lookup once per solve — never per
// pivot — so the metrics cost stays invisible next to the solve itself.
func (s *simplex) bookSolve(o *obs.Observer, sol *Solution, dur time.Duration) {
	o.Counter("pop_lp_solves_total", "completed LP solves").Inc()
	o.Histogram("pop_lp_solve_seconds", "LP solve wall time").Observe(dur.Seconds())
	o.Counter("pop_lp_pivots_total", "simplex pivots across all solves").Add(int64(sol.Iterations))
	o.Counter("pop_lp_dual_pivots_total", "dual simplex pivots across all solves").Add(int64(sol.DualPivots))
	o.Counter("pop_lp_refactors_total", "mid-solve basis refactorizations").Add(int64(s.refactors))
	o.Counter("pop_lp_ft_updates_total", "Forrest–Tomlin basis updates absorbed in place").Add(int64(s.ftUpdates))
	o.Counter("pop_lp_ft_rejects_total", "Forrest–Tomlin updates rejected as unstable").Add(int64(s.ftRejects))
	o.Counter("pop_lp_drift_refactors_total", "refactorizations triggered by measured ftran residual drift").Add(int64(s.driftRefactors))
	o.Counter("pop_lp_fill_refactors_total", "refactorizations triggered by U fill growth").Add(int64(s.fillRefactors))
	if sol.WarmStarted {
		o.Counter("pop_lp_warm_solves_total", "solves that started from a warm basis").Inc()
	} else if s.opts.WarmBasis != nil {
		o.Counter("pop_lp_cold_fallbacks_total", "warm starts rejected in favour of a cold phase 1").Inc()
	}
	if s.fellBack {
		o.Counter("pop_lp_dense_fallbacks_total", "mid-solve SparseLU-to-Dense backend fallbacks").Inc()
	}
}
