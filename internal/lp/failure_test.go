package lp

import (
	"math"
	"testing"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestInvalidInputsPanic(t *testing.T) {
	expectPanic(t, "crossed bounds", func() {
		p := NewProblem(Minimize)
		p.AddVariable(1, 2, 1, "x")
	})
	expectPanic(t, "NaN objective", func() {
		p := NewProblem(Minimize)
		p.AddVariable(math.NaN(), 0, 1, "x")
	})
	expectPanic(t, "infinite objective", func() {
		p := NewProblem(Minimize)
		p.AddVariable(math.Inf(1), 0, 1, "x")
	})
	expectPanic(t, "NaN coefficient", func() {
		p := NewProblem(Minimize)
		x := p.AddVariable(1, 0, 1, "x")
		p.AddConstraint([]int{x}, []float64{math.NaN()}, LE, 1, "")
	})
	expectPanic(t, "NaN rhs", func() {
		p := NewProblem(Minimize)
		x := p.AddVariable(1, 0, 1, "x")
		p.AddConstraint([]int{x}, []float64{1}, LE, math.NaN(), "")
	})
	expectPanic(t, "unknown variable", func() {
		p := NewProblem(Minimize)
		p.AddVariable(1, 0, 1, "x")
		p.AddConstraint([]int{5}, []float64{1}, LE, 1, "")
	})
	expectPanic(t, "length mismatch", func() {
		p := NewProblem(Minimize)
		x := p.AddVariable(1, 0, 1, "x")
		p.AddConstraint([]int{x}, []float64{1, 2}, LE, 1, "")
	})
	expectPanic(t, "SetBounds crossed", func() {
		p := NewProblem(Minimize)
		x := p.AddVariable(1, 0, 1, "x")
		p.SetBounds(x, 3, 2)
	})
}

func TestIterLimitReturnsPartialX(t *testing.T) {
	p := NewProblem(Maximize)
	n := 30
	idx := make([]int, n)
	coef := make([]float64, n)
	for j := 0; j < n; j++ {
		idx[j] = p.AddVariable(float64(j%7+1), 0, 10, "")
		coef[j] = 1
	}
	p.AddConstraint(idx, coef, LE, 50, "")
	sol, err := p.SolveWithOptions(Options{MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal {
		t.Skip("solved within 2 pivots; nothing to assert")
	}
	if len(sol.X) != n {
		t.Fatalf("partial X has %d entries, want %d", len(sol.X), n)
	}
}

func TestCheckFeasibleReportsViolations(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable(1, 0, 1, "x")
	y := p.AddVariable(1, 0, 1, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, GE, 1.5, "cover")

	if err := p.CheckFeasible([]float64{1, 1}, 1e-9); err != nil {
		t.Fatalf("feasible point rejected: %v", err)
	}
	if err := p.CheckFeasible([]float64{0, 0}, 1e-9); err == nil {
		t.Fatal("constraint violation not reported")
	}
	if err := p.CheckFeasible([]float64{2, 0}, 1e-9); err == nil {
		t.Fatal("bound violation not reported")
	}
	if err := p.CheckFeasible([]float64{1}, 1e-9); err == nil {
		t.Fatal("length mismatch not reported")
	}
}

func TestValueEvaluates(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(3, 0, 10, "x")
	y := p.AddVariable(-2, 0, 10, "y")
	_ = x
	_ = y
	if got := p.Value([]float64{2, 5}); got != 3*2-2*5 {
		t.Fatalf("Value = %g", got)
	}
}
