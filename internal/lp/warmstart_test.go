package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// perturb returns a copy of p with jittered costs, rhs, and a few bounds —
// the kind of drift an online round produces.
func perturb(p *Problem, rng *rand.Rand) *Problem {
	q := cloneProblem(p)
	for j := range q.obj {
		q.obj[j] += rng.NormFloat64() * 0.1
	}
	for i := range q.rows {
		q.rows[i].rhs *= 1 + 0.1*rng.NormFloat64()
	}
	for j := range q.ub {
		if !math.IsInf(q.ub[j], 1) && rng.Float64() < 0.2 {
			q.ub[j] *= 0.8 + 0.4*rng.Float64()
			if q.ub[j] < q.lb[j] {
				q.ub[j] = q.lb[j]
			}
		}
	}
	return q
}

// TestWarmStartMatchesColdAcrossPerturbations is the core warm-start
// contract: across chains of perturbed re-solves, the warm solve must agree
// with a cold solve of the same data — warm starts change speed, never the
// answer.
func TestWarmStartMatchesColdAcrossPerturbations(t *testing.T) {
	for _, backend := range []SolverBackend{Dense, SparseLU} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(4242))
			warmUsed := 0
			for trial := 0; trial < 25; trial++ {
				p := randomFeasibleLP(rng, 5+rng.Intn(10), 8+rng.Intn(14))
				sol, err := p.SolveWithOptions(Options{Backend: backend})
				if err != nil {
					t.Fatal(err)
				}
				if sol.Status != Optimal {
					continue
				}
				basis := sol.Basis
				cur := p
				for round := 0; round < 4; round++ {
					cur = perturb(cur, rng)
					cold, err := cloneProblem(cur).SolveWithOptions(Options{Backend: backend})
					if err != nil {
						t.Fatal(err)
					}
					warm, err := cloneProblem(cur).SolveWithOptions(Options{Backend: backend, WarmBasis: basis})
					if err != nil {
						t.Fatal(err)
					}
					if cold.Status != warm.Status {
						t.Fatalf("trial %d round %d: cold %v vs warm %v", trial, round, cold.Status, warm.Status)
					}
					if cold.Status == Optimal {
						if !approxEq(cold.Objective, warm.Objective, 1e-6) {
							t.Fatalf("trial %d round %d: cold obj %.12g vs warm %.12g",
								trial, round, cold.Objective, warm.Objective)
						}
						if err := cur.CheckFeasible(warm.X, 1e-6); err != nil {
							t.Fatalf("trial %d round %d: warm solution infeasible: %v", trial, round, err)
						}
						if warm.WarmStarted {
							warmUsed++
						}
						basis = warm.Basis
					}
				}
			}
			if warmUsed == 0 {
				t.Fatal("warm basis was never actually used; the warm path is dead")
			}
		})
	}
}

// TestWarmStartIdenticalResolve re-solves the unchanged problem from its own
// optimal basis: the warm solve must be accepted and finish in (near) zero
// iterations.
func TestWarmStartIdenticalResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := randomFeasibleLP(rng, 6+rng.Intn(8), 10+rng.Intn(10))
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		re, err := cloneProblem(p).SolveWithOptions(Options{WarmBasis: sol.Basis})
		if err != nil {
			t.Fatal(err)
		}
		if !re.WarmStarted {
			t.Fatalf("trial %d: identical re-solve rejected the warm basis", trial)
		}
		if re.Status != Optimal || !approxEq(re.Objective, sol.Objective, 1e-9) {
			t.Fatalf("trial %d: re-solve %v obj %.12g, want optimal %.12g", trial, re.Status, re.Objective, sol.Objective)
		}
		if re.Iterations > 2 {
			t.Fatalf("trial %d: identical warm re-solve took %d iterations", trial, re.Iterations)
		}
	}
}

// TestWarmStartRejectsBadSnapshots feeds deliberately broken bases; the
// solver must fall back to a cold start and still reach the optimum.
func TestWarmStartRejectsBadSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := randomFeasibleLP(rng, 8, 12)
	ref, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	n, m := p.NumVariables(), p.NumConstraints()

	mkBasis := func(fill BasisStatus) *Basis {
		b := &Basis{VarStatus: make([]BasisStatus, n), SlackStatus: make([]BasisStatus, m)}
		for j := range b.VarStatus {
			b.VarStatus[j] = fill
		}
		for i := range b.SlackStatus {
			b.SlackStatus[i] = fill
		}
		return b
	}
	cases := map[string]*Basis{
		"wrong-dims":  {VarStatus: make([]BasisStatus, n+3), SlackStatus: make([]BasisStatus, m)},
		"no-basics":   mkBasis(BasisLower), // count repair promotes slacks
		"all-basic":   mkBasis(BasisBasic), // count repair demotes columns
		"all-upper":   mkBasis(BasisUpper), // infinite upper bounds get sanitized
		"half-random": nil,                 // filled below
	}
	hr := mkBasis(BasisLower)
	for j := range hr.VarStatus {
		hr.VarStatus[j] = BasisStatus(rng.Intn(4))
	}
	for i := range hr.SlackStatus {
		hr.SlackStatus[i] = BasisStatus(rng.Intn(4))
	}
	cases["half-random"] = hr

	for name, b := range cases {
		for _, backend := range []SolverBackend{Dense, SparseLU} {
			sol, err := cloneProblem(p).SolveWithOptions(Options{Backend: backend, WarmBasis: b})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, backend, err)
			}
			if sol.Status != Optimal || !approxEq(sol.Objective, ref.Objective, 1e-6) {
				t.Fatalf("%s/%v: status %v obj %.12g, want optimal %.12g",
					name, backend, sol.Status, sol.Objective, ref.Objective)
			}
		}
	}
}

// TestWarmStartWithScalingAndDevex crosses the warm path with the other
// solver options.
func TestWarmStartWithScalingAndDevex(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		p := randomFeasibleLP(rng, 8, 14)
		for _, scale := range []bool{false, true} {
			for _, devex := range []bool{false, true} {
				opts := Options{Scale: scale, Devex: devex}
				sol, err := cloneProblem(p).SolveWithOptions(opts)
				if err != nil {
					t.Fatal(err)
				}
				if sol.Status != Optimal {
					continue
				}
				q := perturb(p, rng)
				cold, err := cloneProblem(q).SolveWithOptions(opts)
				if err != nil {
					t.Fatal(err)
				}
				wopts := opts
				wopts.WarmBasis = sol.Basis
				warm, err := cloneProblem(q).SolveWithOptions(wopts)
				if err != nil {
					t.Fatal(err)
				}
				if cold.Status != warm.Status {
					t.Fatalf("scale=%v devex=%v: %v vs %v", scale, devex, cold.Status, warm.Status)
				}
				if cold.Status == Optimal && !approxEq(cold.Objective, warm.Objective, 1e-6) {
					t.Fatalf("scale=%v devex=%v: %.12g vs %.12g", scale, devex, cold.Objective, warm.Objective)
				}
			}
		}
	}
}

// TestWarmStartInfeasibleProblem: a warm basis must not mask infeasibility.
func TestWarmStartInfeasibleProblem(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable(1, 0, 10, "x")
	p.AddConstraint([]int{x}, []float64{1}, GE, 5, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("setup solve: %v", sol.Status)
	}
	// Tighten into infeasibility and warm-start from the old basis.
	q := NewProblem(Minimize)
	x = q.AddVariable(1, 0, 10, "x")
	q.AddConstraint([]int{x}, []float64{1}, GE, 50, "")
	re, err := q.SolveWithOptions(Options{WarmBasis: sol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if re.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", re.Status)
	}
}

// TestWarmStartReducesIterations documents the point of the exercise: over
// a drifting sequence, warm solves should pivot substantially less than
// cold solves in aggregate.
func TestWarmStartReducesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	var coldIters, warmIters int
	for trial := 0; trial < 10; trial++ {
		p := randomFeasibleLP(rng, 12, 30)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			continue
		}
		basis := sol.Basis
		cur := p
		for round := 0; round < 3; round++ {
			cur = perturb(cur, rng)
			cold, err := cloneProblem(cur).Solve()
			if err != nil {
				t.Fatal(err)
			}
			warm, err := cloneProblem(cur).SolveWithOptions(Options{WarmBasis: basis})
			if err != nil {
				t.Fatal(err)
			}
			if cold.Status != Optimal || warm.Status != Optimal {
				continue
			}
			coldIters += cold.Iterations
			warmIters += warm.Iterations
			basis = warm.Basis
		}
	}
	if coldIters == 0 {
		t.Skip("no optimal rounds")
	}
	if float64(warmIters) > 0.8*float64(coldIters) {
		t.Fatalf("warm starts did not pay: %d warm vs %d cold iterations", warmIters, coldIters)
	}
}

func TestBasisCloneAndNumBasic(t *testing.T) {
	b := &Basis{
		VarStatus:   []BasisStatus{BasisBasic, BasisLower, BasisUpper},
		SlackStatus: []BasisStatus{BasisBasic, BasisFree},
	}
	c := b.Clone()
	c.VarStatus[0] = BasisFree
	if b.VarStatus[0] != BasisBasic {
		t.Fatal("Clone shares storage")
	}
	if got := b.NumBasic(); got != 2 {
		t.Fatalf("NumBasic = %d, want 2", got)
	}
	if (*Basis)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
	_ = fmt.Sprintf("%v", b)
}
