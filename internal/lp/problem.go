package lp

import (
	"fmt"
	"math"
	"strings"

	"pop/internal/obs"
)

// Objective selects the optimization direction of a Problem.
type Objective int8

const (
	// Minimize the objective function.
	Minimize Objective = iota
	// Maximize the objective function.
	Maximize
)

// Sense is the relational operator of a linear constraint.
type Sense int8

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Inf is the canonical infinite bound. Any value ≥ +Inf (resp. ≤ -Inf) is
// treated as unbounded.
var Inf = math.Inf(1)

// Problem is a linear program under construction. The zero value is not
// usable; create one with NewProblem.
//
// Variables are added with AddVariable and referenced by the returned dense
// index. Constraints reference variables by index. The builder is not safe
// for concurrent use.
type Problem struct {
	objective Objective
	obj       []float64
	lb, ub    []float64
	varNames  []string

	rows     []row
	rowNames []string

	nnz int
}

type row struct {
	idx   []int
	val   []float64
	sense Sense
	rhs   float64
}

// NewProblem returns an empty linear program with the given objective
// direction.
func NewProblem(objective Objective) *Problem {
	return &Problem{objective: objective}
}

// Builder is the construction surface shared by Problem and Model: helper
// functions that assemble a formulation can accept a Builder and work
// unchanged against either the one-shot builder or the persistent mutable
// model.
type Builder interface {
	AddVariable(c, lb, ub float64, name string) int
	AddVariables(n int, c, lb, ub float64) int
	AddConstraint(idx []int, val []float64, sense Sense, rhs float64, name string) int
	SetObjectiveCoeff(v int, c float64)
	SetBounds(v int, lb, ub float64)
	NumVariables() int
	NumConstraints() int
}

var (
	_ Builder = (*Problem)(nil)
	_ Builder = (*Model)(nil)
)

// Clone returns a deep copy of the builder state.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		objective: p.objective,
		obj:       append([]float64(nil), p.obj...),
		lb:        append([]float64(nil), p.lb...),
		ub:        append([]float64(nil), p.ub...),
		varNames:  append([]string(nil), p.varNames...),
		rows:      make([]row, len(p.rows)),
		rowNames:  append([]string(nil), p.rowNames...),
		nnz:       p.nnz,
	}
	for i, r := range p.rows {
		q.rows[i] = row{
			idx:   append([]int(nil), r.idx...),
			val:   append([]float64(nil), r.val...),
			sense: r.sense,
			rhs:   r.rhs,
		}
	}
	return q
}

// NumVariables reports the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.obj) }

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// NumNonzeros reports the number of nonzero constraint coefficients.
func (p *Problem) NumNonzeros() int { return p.nnz }

// ObjectiveSense returns the optimization direction chosen at construction.
func (p *Problem) ObjectiveSense() Objective { return p.objective }

// Bounds returns the current bounds of variable v.
func (p *Problem) Bounds(v int) (lb, ub float64) { return p.lb[v], p.ub[v] }

// ObjectiveCoeff returns the objective coefficient of variable v.
func (p *Problem) ObjectiveCoeff(v int) float64 { return p.obj[v] }

// Constraint returns copies of row i's index/value lists plus its sense and
// right-hand side. Duplicate indices from construction are preserved as
// stored (consumers that need merged coefficients must sum them). It is the
// read half of AddConstraint, used by transformation passes (e.g. the MILP
// presolve) that rebuild a reduced problem through the builder API.
func (p *Problem) Constraint(i int) (idx []int, val []float64, sense Sense, rhs float64) {
	r := p.rows[i]
	return append([]int(nil), r.idx...), append([]float64(nil), r.val...), r.sense, r.rhs
}

// ConstraintName returns the name row i was added with (may be empty).
func (p *Problem) ConstraintName(i int) string { return p.rowNames[i] }

// AddVariable adds a variable with objective coefficient c and bounds
// [lb, ub], returning its index. Use -Inf / +Inf for unbounded sides.
// name may be empty; it is only used in diagnostics.
func (p *Problem) AddVariable(c, lb, ub float64, name string) int {
	if lb > ub {
		panic(fmt.Sprintf("lp: variable %q has lb %g > ub %g", name, lb, ub))
	}
	if math.IsNaN(c) || math.IsNaN(lb) || math.IsNaN(ub) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("lp: variable %q has invalid data c=%g lb=%g ub=%g", name, c, lb, ub))
	}
	p.obj = append(p.obj, c)
	p.lb = append(p.lb, lb)
	p.ub = append(p.ub, ub)
	p.varNames = append(p.varNames, name)
	return len(p.obj) - 1
}

// AddVariables adds n identical variables and returns the index of the first.
func (p *Problem) AddVariables(n int, c, lb, ub float64) int {
	first := len(p.obj)
	for i := 0; i < n; i++ {
		p.AddVariable(c, lb, ub, "")
	}
	return first
}

// SetObjectiveCoeff overwrites the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoeff(v int, c float64) {
	p.obj[v] = c
}

// SetBounds overwrites the bounds of variable v.
func (p *Problem) SetBounds(v int, lb, ub float64) {
	if lb > ub {
		panic(fmt.Sprintf("lp: variable %d: lb %g > ub %g", v, lb, ub))
	}
	p.lb[v] = lb
	p.ub[v] = ub
}

// AddConstraint adds the constraint  Σ val[t]·x[idx[t]]  sense  rhs  and
// returns its row index. Duplicate indices within one constraint are summed.
// The idx and val slices are copied.
func (p *Problem) AddConstraint(idx []int, val []float64, sense Sense, rhs float64, name string) int {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("lp: constraint %q: len(idx)=%d len(val)=%d", name, len(idx), len(val)))
	}
	for _, v := range idx {
		if v < 0 || v >= len(p.obj) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, v))
		}
	}
	for _, v := range val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("lp: constraint %q has non-finite coefficient %g", name, v))
		}
	}
	if math.IsNaN(rhs) {
		panic(fmt.Sprintf("lp: constraint %q has NaN rhs", name))
	}
	r := row{
		idx:   append([]int(nil), idx...),
		val:   append([]float64(nil), val...),
		sense: sense,
		rhs:   rhs,
	}
	p.rows = append(p.rows, r)
	p.rowNames = append(p.rowNames, name)
	p.nnz += len(idx)
	return len(p.rows) - 1
}

// Value evaluates the objective at x (length NumVariables) in the problem's
// own orientation.
func (p *Problem) Value(x []float64) float64 {
	v := 0.0
	for j, c := range p.obj {
		v += c * x[j]
	}
	return v
}

// CheckFeasible verifies that x satisfies all bounds and constraints within
// tol, returning a descriptive error for the first violation.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != len(p.obj) {
		return fmt.Errorf("lp: len(x)=%d, want %d", len(x), len(p.obj))
	}
	for j := range x {
		if x[j] < p.lb[j]-tol || x[j] > p.ub[j]+tol {
			return fmt.Errorf("lp: variable %d value %g outside [%g, %g]", j, x[j], p.lb[j], p.ub[j])
		}
	}
	for i, r := range p.rows {
		sum := 0.0
		for t, v := range r.idx {
			sum += r.val[t] * x[v]
		}
		scale := 1 + math.Abs(r.rhs)
		switch r.sense {
		case LE:
			if sum > r.rhs+tol*scale {
				return fmt.Errorf("lp: row %d (%q): %g > %g", i, p.rowNames[i], sum, r.rhs)
			}
		case GE:
			if sum < r.rhs-tol*scale {
				return fmt.Errorf("lp: row %d (%q): %g < %g", i, p.rowNames[i], sum, r.rhs)
			}
		case EQ:
			if math.Abs(sum-r.rhs) > tol*scale {
				return fmt.Errorf("lp: row %d (%q): %g != %g", i, p.rowNames[i], sum, r.rhs)
			}
		}
	}
	return nil
}

// Status is the outcome of a solve.
type Status int8

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no feasible point.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible region.
	Unbounded
	// IterLimit means the iteration limit was reached before convergence.
	IterLimit
	// Numerical means the solver lost numerical precision beyond repair.
	Numerical
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Numerical:
		return "numerical-failure"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64   // objective value in the original orientation
	X         []float64 // one value per structural variable
	Dual      []float64 // one shadow price per constraint, original orientation
	// ReducedCost holds per-variable reduced costs (original orientation).
	ReducedCost []float64
	Iterations  int // total simplex pivots across both phases
	// Basis is the final basis snapshot (optimal solves only), suitable for
	// warm-starting a later solve via Options.WarmBasis.
	Basis *Basis
	// WarmStarted reports whether the solve actually started from
	// Options.WarmBasis; false means the snapshot was rejected (dimension
	// mismatch, singular, or unrepairably infeasible) and the solver ran a
	// cold phase 1 instead.
	WarmStarted bool
	// DualPivots counts the pivots taken by the dual simplex phase
	// (Options.Dual); zero when the primal path ran. A successful dual
	// re-solve typically shows a handful of DualPivots and near-zero
	// remaining primal Iterations beyond them.
	DualPivots int
}

// SolverBackend selects the basis-factorization engine of the simplex.
type SolverBackend int8

const (
	// AutoBackend resolves to the package default, SparseLU (overridable
	// with SetDefaultBackend). It is the zero value, so Options{} picks
	// the sparse backend everywhere without callers changing.
	AutoBackend SolverBackend = iota
	// SparseLU factorizes the basis as a sparse LU (Markowitz-ordered
	// Gaussian elimination) and absorbs pivots as product-form eta terms.
	// Per-iteration cost scales with basis fill rather than m². On
	// numerical trouble the solve transparently falls back to Dense.
	SparseLU
	// Dense maintains an explicit dense basis inverse rebuilt by
	// Gauss-Jordan elimination: the slow but simple reference backend,
	// kept for differential testing and as the fallback target.
	Dense
)

func (b SolverBackend) String() string {
	switch b {
	case AutoBackend:
		return "auto"
	case SparseLU:
		return "sparselu"
	case Dense:
		return "dense"
	}
	return fmt.Sprintf("SolverBackend(%d)", int8(b))
}

// ParseBackend parses "auto", "sparselu", or "dense".
func ParseBackend(s string) (SolverBackend, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return AutoBackend, nil
	case "sparselu", "sparse", "lu":
		return SparseLU, nil
	case "dense":
		return Dense, nil
	}
	return AutoBackend, fmt.Errorf("lp: unknown backend %q (want auto|sparselu|dense)", s)
}

// defaultBackend is what AutoBackend resolves to; see SetDefaultBackend.
var defaultBackend = SparseLU

// SetDefaultBackend changes what AutoBackend resolves to for every
// subsequent solve and returns the previous default. It is meant for
// process-wide configuration (benchmark harnesses, command-line flags)
// before solving starts; it is not synchronized with concurrent solves.
func SetDefaultBackend(b SolverBackend) SolverBackend {
	prev := defaultBackend
	if b == AutoBackend {
		b = SparseLU
	}
	defaultBackend = b
	return prev
}

func (b SolverBackend) resolve() SolverBackend {
	if b == AutoBackend {
		return defaultBackend
	}
	return b
}

// UpdateStrategy selects how the SparseLU backend absorbs simplex pivots
// between refactorizations.
type UpdateStrategy int8

const (
	// AutoUpdate resolves to the package default, ForrestTomlin. It is the
	// zero value, so Options{} picks the in-place update everywhere.
	AutoUpdate UpdateStrategy = iota
	// ForrestTomlin folds each pivot into the stored U factor in place
	// (spike column plus a row-elimination eta), keeping ftran/btran cost
	// proportional to the factor's true fill. Updates that would be
	// numerically unstable (tiny final diagonal, huge eliminator) are
	// rejected and answered with a refactorization from scratch, so the
	// strategy never changes solve outcomes.
	ForrestTomlin
	// EtaUpdate is the legacy product-form file: each pivot appends an eta
	// term and solves replay the whole file. Kept for differential testing
	// against ForrestTomlin.
	EtaUpdate
)

func (u UpdateStrategy) String() string {
	switch u {
	case AutoUpdate:
		return "auto"
	case ForrestTomlin:
		return "forrest-tomlin"
	case EtaUpdate:
		return "eta"
	}
	return fmt.Sprintf("UpdateStrategy(%d)", int8(u))
}

// ParseUpdate parses "auto", "forrest-tomlin" (or "ft"), or "eta".
func ParseUpdate(s string) (UpdateStrategy, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return AutoUpdate, nil
	case "forrest-tomlin", "forresttomlin", "ft":
		return ForrestTomlin, nil
	case "eta", "product-form", "pfi":
		return EtaUpdate, nil
	}
	return AutoUpdate, fmt.Errorf("lp: unknown update strategy %q (want auto|forrest-tomlin|eta)", s)
}

func (u UpdateStrategy) resolve() UpdateStrategy {
	if u == AutoUpdate {
		return ForrestTomlin
	}
	return u
}

// DualPricing selects the leaving-row rule of the dual simplex phase.
type DualPricing int8

const (
	// AutoDualPricing resolves to the package default, DualDevex.
	AutoDualPricing DualPricing = iota
	// DualDevex ranks bound-violating basic rows by the devex score
	// violation²/weight, the dual analogue of the primal reference
	// framework: weights track how much each row has already been worked
	// by recent pivots, which steers long delta chains away from repeatedly
	// hammering the same degenerate rows and cuts dual pivot counts.
	DualDevex
	// DualDantzig picks the largest raw bound violation: the legacy rule,
	// kept for differential testing.
	DualDantzig
)

func (d DualPricing) String() string {
	switch d {
	case AutoDualPricing:
		return "auto"
	case DualDevex:
		return "devex"
	case DualDantzig:
		return "dantzig"
	}
	return fmt.Sprintf("DualPricing(%d)", int8(d))
}

// ParseDualPricing parses "auto", "devex", or "dantzig".
func ParseDualPricing(s string) (DualPricing, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return AutoDualPricing, nil
	case "devex":
		return DualDevex, nil
	case "dantzig":
		return DualDantzig, nil
	}
	return AutoDualPricing, fmt.Errorf("lp: unknown dual pricing %q (want auto|devex|dantzig)", s)
}

func (d DualPricing) resolve() DualPricing {
	if d == AutoDualPricing {
		return DualDevex
	}
	return d
}

// Options tune the solver. The zero value selects sensible defaults.
type Options struct {
	// Backend selects the basis-factorization engine. The zero value
	// (AutoBackend) resolves to SparseLU.
	Backend SolverBackend
	// MaxIters bounds total pivots; 0 means 50·(m+n)+10000.
	MaxIters int
	// TolFeas is the primal feasibility tolerance (default 1e-7).
	TolFeas float64
	// TolOpt is the dual feasibility (reduced-cost) tolerance (default 1e-7).
	TolOpt float64
	// TolPivot is the smallest acceptable pivot magnitude (default 1e-8).
	TolPivot float64
	// ReinvertEvery rebuilds the basis inverse after this many pivots
	// (default 512). Rebuilds also happen on detected drift.
	ReinvertEvery int
	// BlandOnly forces Bland's rule from the first pivot. Slower but useful
	// for differential testing against the default pricing.
	BlandOnly bool
	// Scale applies geometric-mean equilibration (powers of two) before
	// solving and unscales the solution afterwards. Recommended for models
	// whose coefficients span several orders of magnitude.
	Scale bool
	// Devex enables reference devex pricing (Forrest–Goldfarb) instead of
	// Dantzig's rule. Devex approximates steepest-edge at a fraction of the
	// cost and typically cuts iteration counts substantially on the
	// allocation LPs in this repository.
	Devex bool
	// WarmBasis optionally seeds the solve from a basis snapshot, typically
	// Solution.Basis of a previous solve of a similar problem. A snapshot
	// that no longer fits (wrong dimensions, singular, or unrepairably
	// infeasible after the data changed) is silently discarded in favour of
	// a cold phase 1, so warm starts never change the solve outcome — only
	// its speed. Works with both backends.
	WarmBasis *Basis
	// Obs, when non-nil, receives per-solve telemetry: phase spans
	// (standardize, factor, refactor, phase1, phase2, dual, warm-repair),
	// warm-path instants (cold-fallback, dual-reject), and solve-level
	// counters/histograms. The nil default costs one pointer check per
	// hook site. See internal/obs.
	Obs *obs.Observer
	// Dual attempts a dual simplex re-solve from WarmBasis before the
	// primal warm path: the snapshot's statuses are installed, and if they
	// are still dual feasible (which an optimal basis remains under
	// rhs/bound-only perturbations), dual pivots drive the out-of-bounds
	// basics home in a handful of iterations instead of a primal repair
	// phase. A start that is dual infeasible, or a dual phase that fails
	// (iteration limit, numerical trouble, apparent infeasibility), falls
	// back to the primal warm path and then cold, so enabling Dual never
	// changes the solve outcome. Ignored without WarmBasis. Model.Solve
	// sets this automatically when only rhs/bounds changed since the
	// basis was taken.
	Dual bool
	// Update selects how the SparseLU backend absorbs pivots between
	// refactorizations. The zero value (AutoUpdate) resolves to
	// ForrestTomlin: in-place U updates with an adaptive refactorization
	// trigger (measured U fill growth and ftran residual drift) and
	// automatic refactor-from-scratch on numerically unstable updates.
	// EtaUpdate restores the legacy product-form eta file with its fixed
	// fill cutoff. Ignored by the Dense backend.
	Update UpdateStrategy
	// DualPricing selects the dual simplex leaving-row rule. The zero value
	// (AutoDualPricing) resolves to DualDevex; DualDantzig restores the raw
	// largest-violation rule. Ignored unless the dual phase runs (Dual with
	// WarmBasis).
	DualPricing DualPricing
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 50*(m+n) + 10000
	}
	if o.TolFeas == 0 {
		o.TolFeas = 1e-7
	}
	if o.TolOpt == 0 {
		o.TolOpt = 1e-7
	}
	if o.TolPivot == 0 {
		o.TolPivot = 1e-8
	}
	if o.ReinvertEvery == 0 {
		o.ReinvertEvery = 512
	}
	return o
}

// Solve optimizes the problem with default options.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithOptions(Options{})
}

// SolveWithOptions optimizes the problem. A non-nil error is returned only
// for malformed models; solver outcomes (infeasible, unbounded, ...) are
// reported through Solution.Status.
func (p *Problem) SolveWithOptions(opts Options) (*Solution, error) {
	if len(p.obj) == 0 {
		return nil, fmt.Errorf("lp: model has no variables")
	}
	s := newSimplex(p, opts)
	sol := s.solve()
	// Last line of the SparseLU fallback policy: if the sparse backend (or
	// its mid-solve dense fallback) still ended in numerical failure,
	// re-solve once from scratch with the dense backend, whose pivot
	// sequence differs enough to escape most bad factorizations. A
	// warm-started dense solve gets the same one retry (cold), so a stale
	// basis can never change the solve outcome.
	if sol.Status == Numerical && (s.backend != Dense || opts.WarmBasis != nil) {
		opts.Obs.Instant("lp.dense-retry", nil)
		opts.Backend = Dense
		opts.WarmBasis = nil // a bad warm basis must not poison the retry
		opts.Dual = false
		s = newSimplex(p, opts)
		sol = s.solve()
	}
	return sol, nil
}

// standardized holds the equality-form model  min cᵀx, Ax = b, l ≤ x ≤ u.
// Columns 0..n-1 are structural; columns n..n+m-1 are slacks (one per row).
type standardized struct {
	m, n  int // rows, structural columns
	ncols int // n + m

	// Column-wise sparse A, including slack columns.
	colPtr []int32
	rowInd []int32
	values []float64

	c      []float64 // minimization costs, len ncols
	lb, ub []float64 // len ncols
	b      []float64 // len m

	maximize bool
	objSign  float64 // -1 when maximize (c was negated), else +1
}

// standardize converts the builder into equality form.
func (p *Problem) standardize() *standardized {
	m := len(p.rows)
	n := len(p.obj)
	s := &standardized{
		m:        m,
		n:        n,
		ncols:    n + m,
		c:        make([]float64, n+m),
		lb:       make([]float64, n+m),
		ub:       make([]float64, n+m),
		b:        make([]float64, m),
		maximize: p.objective == Maximize,
		objSign:  1,
	}
	if s.maximize {
		s.objSign = -1
	}
	for j := 0; j < n; j++ {
		s.c[j] = s.objSign * p.obj[j]
		s.lb[j] = p.lb[j]
		s.ub[j] = p.ub[j]
	}

	// Accumulate rows into a column-count pass, then fill.
	counts := make([]int32, n+m+1)
	for i, r := range p.rows {
		seen := map[int]bool{}
		for _, v := range r.idx {
			if !seen[v] {
				counts[v+1]++
				seen[v] = true
			}
		}
		_ = i
	}
	// One slack per row.
	for i := 0; i < m; i++ {
		counts[n+i+1]++
	}
	s.colPtr = make([]int32, n+m+1)
	for j := 0; j < n+m; j++ {
		s.colPtr[j+1] = s.colPtr[j] + counts[j+1]
	}
	total := s.colPtr[n+m]
	s.rowInd = make([]int32, total)
	s.values = make([]float64, total)
	fill := make([]int32, n+m)
	copy(fill, s.colPtr[:n+m])

	// Merge duplicate indices within a row while filling.
	merged := map[int]float64{}
	for i, r := range p.rows {
		clear(merged)
		for t, v := range r.idx {
			merged[v] += r.val[t]
		}
		for v, coef := range merged {
			pos := fill[v]
			s.rowInd[pos] = int32(i)
			s.values[pos] = coef
			fill[v]++
		}
		s.b[i] = r.rhs

		// Slack column.
		sc := n + i
		pos := fill[sc]
		fill[sc]++
		s.rowInd[pos] = int32(i)
		switch r.sense {
		case LE:
			s.values[pos] = 1
			s.lb[sc], s.ub[sc] = 0, Inf
		case GE:
			s.values[pos] = -1
			s.lb[sc], s.ub[sc] = 0, Inf
		case EQ:
			s.values[pos] = 1
			s.lb[sc], s.ub[sc] = 0, 0
		}
	}
	return s
}

// col returns the sparse column j as (row indices, values).
func (s *standardized) col(j int) ([]int32, []float64) {
	lo, hi := s.colPtr[j], s.colPtr[j+1]
	return s.rowInd[lo:hi], s.values[lo:hi]
}

// clone deep-copies the standardized form. Model solves clone before any
// option (Scale) that would mutate the shared arrays in place.
func (s *standardized) clone() *standardized {
	c := *s
	c.colPtr = append([]int32(nil), s.colPtr...)
	c.rowInd = append([]int32(nil), s.rowInd...)
	c.values = append([]float64(nil), s.values...)
	c.c = append([]float64(nil), s.c...)
	c.lb = append([]float64(nil), s.lb...)
	c.ub = append([]float64(nil), s.ub...)
	c.b = append([]float64(nil), s.b...)
	return &c
}
