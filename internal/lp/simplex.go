package lp

import (
	"math"
	"time"
)

// Variable status codes for the bounded-variable simplex.
const (
	statBasic int8 = iota
	statLower      // nonbasic at lower bound
	statUpper      // nonbasic at upper bound
	statFree       // nonbasic free variable, held at zero
)

type simplex struct {
	std  *standardized
	opts Options

	// Scaling factors when opts.Scale is set (nil otherwise); solutions are
	// unscaled in extract.
	rowScale, colScale []float64

	m, ncols int
	phase    int // 1 or 2

	// Per-column state; artificial columns live at indices ncols..ncols+m-1.
	status []int8
	x      []float64

	// cost is the objective being minimized in the current phase.
	cost []float64

	// Basis: basis[i] is the column occupying row position i.
	basis []int

	// bas maintains the basis factorization (dense inverse or sparse LU,
	// per backend). fellBack records a mid-solve SparseLU→Dense switch.
	bas      basisFactor
	backend  SolverBackend
	fellBack bool

	// artStart is the first artificial column index; artSign[i] is the
	// coefficient (±1) of the artificial for row i.
	artStart int
	artSign  []float64

	// Scratch buffers.
	y, w, rhs []float64

	// Devex reference weights (nil unless opts.Devex); devexRow is the
	// btranUnit scratch for the pivot row, allocated on first use.
	devexW   []float64
	devexRow []float64

	// Dual devex reference weights over basis positions (nil unless the
	// dual phase runs with devex pricing); see initWarmDual.
	dualW []float64

	// Harris dual ratio test scratch: eligible entering candidates stashed
	// by the relaxed pass so the exact pass need not recompute pivot rows.
	dualCandJ []int32
	dualCandA []float64
	dualCandD []float64

	iters          int
	dualPivots     int
	refactors      int // reinvert() calls, booked to metrics at solve end
	ftUpdates      int // Forrest–Tomlin updates absorbed in place
	ftRejects      int // FT updates rejected as unstable (answered by refactor)
	driftRefactors int // refactors triggered by measured ftran residual drift
	fillRefactors  int // refactors triggered by U fill growth
	sinceReinvert  int
	degenerateRun  int
	blandMode      bool
	numericTrouble bool
	warmStarted    bool

	// dualRho is the btranUnit scratch of the dual simplex pivot row,
	// allocated on first use.
	dualRho []float64
}

func newSimplex(p *Problem, opts Options) *simplex {
	sp := opts.Obs.Span("lp.standardize")
	std := p.standardize()
	sp.End()
	return newSimplexStd(std, opts)
}

// newSimplexStd builds a solver over an already-standardized model; Model
// re-solves hand their incrementally-maintained form here, skipping the
// per-solve standardize pass.
func newSimplexStd(std *standardized, opts Options) *simplex {
	s := &simplex{
		std:   std,
		m:     std.m,
		ncols: std.ncols,
	}
	s.opts = opts.withDefaults(std.m, std.ncols)
	s.backend = s.opts.Backend.resolve()
	if s.opts.Scale {
		s.rowScale, s.colScale = applyScaling(std)
	}
	return s
}

// lbOf and ubOf extend the bound arrays over artificial columns: [0, +Inf)
// during phase 1, pinned to [0, 0] during phase 2.
func (s *simplex) lbOf(j int) float64 {
	if j >= s.artStart {
		return 0
	}
	return s.std.lb[j]
}

func (s *simplex) ubOf(j int) float64 {
	if j >= s.artStart {
		if s.phase == 1 {
			return math.Inf(1)
		}
		return 0
	}
	return s.std.ub[j]
}

// solve runs the full solve and, when an Observer is attached, wraps it in
// an "lp.solve" span and books the solve-level metrics. All algorithmic
// work lives in solveInner.
func (s *simplex) solve() *Solution {
	o := s.opts.Obs
	if o == nil {
		return s.solveInner()
	}
	sp := o.Span("lp.solve").Arg("m", s.m).Arg("n", s.std.n)
	start := time.Now()
	sol := s.solveInner()
	sp.Arg("status", sol.Status.String()).
		Arg("iters", sol.Iterations).
		Arg("warm", sol.WarmStarted).
		End()
	s.bookSolve(o, sol, time.Since(start))
	return sol
}

func (s *simplex) solveInner() *Solution {
	if s.m == 0 {
		return s.solveUnconstrained()
	}
	if s.opts.WarmBasis != nil && s.opts.Dual {
		sp := s.opts.Obs.Span("lp.dual")
		if s.initWarmDual(s.opts.WarmBasis) {
			if st := s.dualIterate(); st == Optimal {
				s.warmStarted = true
				s.dualPivots = s.iters
			} else {
				// Any dual failure — apparent infeasibility included, since
				// the stale start makes it untrustworthy — falls back to the
				// primal warm path below with a clean slate, so Dual never
				// changes the solve outcome.
				s.resetStart()
			}
		} else {
			s.resetStart()
		}
		sp.Arg("accepted", s.warmStarted).End()
		if !s.warmStarted {
			s.opts.Obs.Instant("lp.dual-reject", nil)
		}
	}
	if !s.warmStarted && s.opts.WarmBasis != nil {
		sp := s.opts.Obs.Span("lp.warm-repair")
		s.warmStarted = s.initWarm(s.opts.WarmBasis)
		sp.Arg("accepted", s.warmStarted).End()
		if !s.warmStarted {
			// The cold fallback must behave exactly as if no warm basis had
			// been supplied: give it back the full iteration budget and a
			// clean trouble flag.
			s.opts.Obs.Instant("lp.cold-fallback", nil)
			s.resetStart()
		}
	}
	for {
		if !s.warmStarted {
			if st := s.runPhase1(); st != Optimal {
				return s.failure(st)
			}
		}

		// Phase 2: real costs; artificials are pinned to [0,0] by ubOf.
		s.phase = 2
		for j := s.artStart; j < s.artStart+s.m; j++ {
			s.cost[j] = 0
			if s.status[j] != statBasic {
				s.status[j] = statLower
				s.x[j] = 0
			}
		}
		copy(s.cost, s.std.c)
		s.degenerateRun = 0
		s.blandMode = s.opts.BlandOnly

		sp := s.opts.Obs.Span("lp.phase2")
		st := s.iterate()
		if st == Optimal && !s.solutionFinite() {
			st = Numerical // NaN/Inf iterate: optimality tests passed vacuously
		}
		sp.Arg("status", st.String()).End()
		if st != Optimal {
			if s.warmStarted && st == Numerical {
				// A stale warm basis drove the iteration into numerical
				// breakdown; retry once from the cold all-artificial start,
				// exactly as if no snapshot had been supplied.
				s.opts.Obs.Instant("lp.cold-fallback", nil)
				s.resetStart()
				continue
			}
			return s.failure(st)
		}
		return s.extract()
	}
}

// runPhase1 builds the all-artificial start and drives the phase-1
// objective to zero, reporting Optimal when a feasible basis is in hand.
func (s *simplex) runPhase1() Status {
	sp := s.opts.Obs.Span("lp.phase1")
	defer sp.End()
	s.initPhase1()
	if s.initialFeasible() {
		return Optimal
	}
	if st := s.iterate(); st == IterLimit || st == Numerical {
		return st
	}
	if s.phase1Objective() > 1e2*s.opts.TolFeas*float64(1+s.m) {
		return Infeasible
	}
	return Optimal
}

// solutionFinite reports whether every structural and slack value is finite.
// A near-singular basis can inject NaN/Inf into s.x mid-iteration, after
// which bound and reduced-cost comparisons pass vacuously and iterate()
// reports a bogus Optimal.
func (s *simplex) solutionFinite() bool {
	for j := 0; j < s.ncols; j++ {
		if math.IsNaN(s.x[j]) || math.IsInf(s.x[j], 0) {
			return false
		}
	}
	return true
}

// resetStart returns the solver to a pristine pre-start state after a
// rejected or failed warm/dual start, so the next start strategy behaves
// exactly as if it had been the first: full iteration budget, clean
// numerical-trouble flag, no dual pivots booked, and pricing weights back
// at the reference framework — weights drifted during a failed start refer
// to a basis the next strategy will not install, so carrying them over
// would silently mis-rank its first pivots.
func (s *simplex) resetStart() {
	s.iters = 0
	s.dualPivots = 0
	s.numericTrouble = false
	s.warmStarted = false
	s.degenerateRun = 0
	s.blandMode = s.opts.BlandOnly
	if s.devexW != nil {
		s.resetDevex()
	}
	if s.dualW != nil {
		s.resetDualDevex()
	}
}

// solveUnconstrained handles models with no constraints: each variable moves
// independently to its best bound.
func (s *simplex) solveUnconstrained() *Solution {
	n := s.std.n
	sol := &Solution{
		Status:      Optimal,
		X:           make([]float64, n),
		ReducedCost: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		c := s.std.c[j]
		lb, ub := s.std.lb[j], s.std.ub[j]
		switch {
		case c > 0:
			if math.IsInf(lb, -1) {
				sol.Status = Unbounded
				return sol
			}
			sol.X[j] = lb
		case c < 0:
			if math.IsInf(ub, 1) {
				sol.Status = Unbounded
				return sol
			}
			sol.X[j] = ub
		default:
			switch {
			case lb > 0:
				sol.X[j] = lb
			case ub < 0:
				sol.X[j] = ub
			}
		}
		sol.Objective += s.std.c[j] * sol.X[j] * s.std.objSign
		sol.ReducedCost[j] = s.std.c[j] * s.std.objSign
	}
	return sol
}

// initPhase1 builds the all-artificial starting basis.
func (s *simplex) initPhase1() {
	std := s.std
	m := s.m
	s.phase = 1

	// Nonbasic placement for every real column: nearest finite bound, or
	// free at zero.
	s.status = make([]int8, s.ncols+m)
	s.x = make([]float64, s.ncols+m)
	for j := 0; j < s.ncols; j++ {
		lb, ub := std.lb[j], std.ub[j]
		switch {
		case !math.IsInf(lb, -1):
			s.status[j] = statLower
			s.x[j] = lb
		case !math.IsInf(ub, 1):
			s.status[j] = statUpper
			s.x[j] = ub
		default:
			s.status[j] = statFree
			s.x[j] = 0
		}
	}

	// Residual r = b - A·x_N decides each artificial's sign.
	r := make([]float64, m)
	copy(r, std.b)
	for j := 0; j < s.ncols; j++ {
		if s.x[j] == 0 {
			continue
		}
		ind, val := std.col(j)
		for t, i := range ind {
			r[i] -= val[t] * s.x[j]
		}
	}

	s.artStart = s.ncols
	s.basis = make([]int, m)
	s.cost = make([]float64, s.ncols+m)
	s.artSign = make([]float64, m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if r[i] < 0 {
			sign = -1.0
		}
		s.artSign[i] = sign
		a := s.artStart + i
		s.cost[a] = 1

		// Prefer the row's own slack as the starting basic variable when it
		// can absorb the residual; this usually eliminates phase 1 entirely.
		// Slack columns are diagonal (coefficient ±1 in their own row only),
		// so the starting basis stays diagonal either way. Note the residual
		// r was computed with the slack at its lower bound 0, so the slack's
		// prospective basic value is r_i / coef.
		sc := std.n + i
		coef := std.values[std.colPtr[sc]] // slack columns have exactly one entry
		want := r[i] / coef
		if want >= std.lb[sc]-1e-12 && want <= std.ub[sc]+1e-12 {
			s.basis[i] = sc
			s.status[sc] = statBasic
			s.x[sc] = want
			// Artificial stays nonbasic at zero.
			s.status[a] = statLower
			s.x[a] = 0
			continue
		}
		s.basis[i] = a
		s.status[a] = statBasic
		s.x[a] = math.Abs(r[i])
	}
	s.y = make([]float64, m)
	s.w = make([]float64, m)
	s.rhs = make([]float64, m)
	if s.opts.Devex {
		s.initDevex()
	}
	// The starting basis is diagonal (slacks and artificials only), so the
	// initial factorization cannot fail.
	if s.backend == Dense {
		s.bas = newDenseFactor(s)
	} else {
		s.bas = newLUFactor(s)
	}
	sp := s.opts.Obs.Span("lp.factor")
	s.bas.refactor()
	sp.End()
}

// initDevex (re)establishes the primal reference framework for a fresh
// start. Every basis-install path goes through here so weights from an
// earlier (possibly different) basis never leak into a new start.
func (s *simplex) initDevex() {
	if len(s.devexW) != s.ncols {
		s.devexW = make([]float64, s.ncols)
	}
	s.resetDevex()
}

// resetDevex restores the reference framework (all weights 1), done at
// start and whenever the weights have drifted too far to be trustworthy.
func (s *simplex) resetDevex() {
	for j := range s.devexW {
		s.devexW[j] = 1
	}
}

// resetDualDevex restores the dual reference framework (all row weights 1).
func (s *simplex) resetDualDevex() {
	for i := range s.dualW {
		s.dualW[i] = 1
	}
}

// initialFeasible reports whether the initial point already satisfies all
// constraints, in which case phase 1 is skipped.
func (s *simplex) initialFeasible() bool {
	for i := 0; i < s.m; i++ {
		if s.x[s.artStart+i] > s.opts.TolFeas {
			return false
		}
	}
	return true
}

func (s *simplex) phase1Objective() float64 {
	sum := 0.0
	for i := 0; i < s.m; i++ {
		sum += math.Abs(s.x[s.artStart+i])
	}
	return sum
}

// iterate runs simplex pivots until the current-phase objective is optimal.
func (s *simplex) iterate() Status {
	for {
		if s.iters >= s.opts.MaxIters {
			return IterLimit
		}
		s.btran()
		q, dq := s.price()
		if q < 0 {
			return Optimal
		}
		s.ftran(q)

		sigma := 1.0 // direction of movement of x[q]
		switch s.status[q] {
		case statUpper:
			sigma = -1
		case statFree:
			if dq > 0 {
				sigma = -1
			}
		}

		leave, tmax, flip := s.ratioTest(q, sigma)
		if leave < 0 && !flip {
			if s.phase == 1 {
				// Phase-1 objective is bounded below by 0; an unbounded ray
				// means numerical trouble.
				if s.tryRecover() {
					continue
				}
				return Numerical
			}
			return Unbounded
		}

		if tmax < s.opts.TolFeas {
			s.degenerateRun++
			if s.degenerateRun > 2*s.m+20 {
				s.blandMode = true
			}
		} else {
			s.degenerateRun = 0
			if !s.opts.BlandOnly {
				s.blandMode = false
			}
		}

		s.applyStep(q, sigma, tmax)
		if flip {
			// Bound flip: q jumps to its opposite bound, basis unchanged.
			if s.status[q] == statLower {
				s.status[q] = statUpper
				s.x[q] = s.std.ub[q]
			} else {
				s.status[q] = statLower
				s.x[q] = s.std.lb[q]
			}
		} else {
			if s.devexW != nil {
				s.updateDevex(leave, q, s.w[leave])
			}
			if !s.pivot(leave, q) {
				// The factorization refused the pivot as unstable; rebuild
				// from the (already updated) basis instead.
				if !s.reinvert() {
					return Numerical
				}
			}
		}
		s.iters++
		s.sinceReinvert++
		if s.sinceReinvert >= s.opts.ReinvertEvery || s.bas.wantRefactor() {
			if !s.reinvert() {
				return Numerical
			}
		}
	}
}

// tryRecover reinverts once on numerical trouble; returns true if the caller
// should retry the iteration.
func (s *simplex) tryRecover() bool {
	if s.numericTrouble {
		return false
	}
	s.numericTrouble = true
	return s.reinvert()
}

// btran computes y = c_Bᵀ B⁻¹ into s.y.
func (s *simplex) btran() {
	s.bas.btranCost(s.y)
}

// reducedCost returns c_j - yᵀA_j using the current s.y.
func (s *simplex) reducedCost(j int) float64 {
	d := s.cost[j]
	if j >= s.artStart {
		k := j - s.artStart
		return d - s.y[k]*s.artSign[k]
	}
	ind, val := s.std.col(j)
	for t, i := range ind {
		d -= s.y[i] * val[t]
	}
	return d
}

// price selects the entering column, returning (-1, 0) at optimality. Only
// structural and slack columns are eligible; artificials never re-enter.
// Eligibility is always judged on the raw reduced cost against TolOpt;
// ranking among eligible columns uses Dantzig (largest violation) or, with
// opts.Devex, the devex score d²/w.
func (s *simplex) price() (int, float64) {
	tol := s.opts.TolOpt
	best := -1
	bestScore := math.Inf(-1)
	var bestD float64
	for j := 0; j < s.ncols; j++ {
		st := s.status[j]
		if st == statBasic {
			continue
		}
		if s.std.lb[j] == s.std.ub[j] {
			continue // fixed variables can never improve
		}
		d := s.reducedCost(j)
		var viol float64
		switch st {
		case statLower:
			viol = -d
		case statUpper:
			viol = d
		case statFree:
			viol = math.Abs(d)
		}
		if viol <= tol {
			continue
		}
		if s.blandMode {
			return j, d
		}
		score := viol
		if s.devexW != nil {
			score = viol * viol / s.devexW[j]
		}
		if score > bestScore {
			bestScore = score
			best = j
			bestD = d
		}
	}
	return best, bestD
}

// updateDevex refreshes the reference weights after a pivot in row `leave`
// with entering column q. alphaQ is the pivot element (w[leave]). The pivot
// row of the tableau, αⱼ = (e_r B⁻¹)·Aⱼ, is computed against the pre-pivot
// inverse, so this must run before the eta update.
func (s *simplex) updateDevex(leave, q int, alphaQ float64) {
	if alphaQ == 0 {
		return
	}
	if s.devexRow == nil {
		s.devexRow = make([]float64, s.m)
	}
	rowr := s.devexRow
	s.bas.btranUnit(leave, rowr)
	wq := s.devexW[q]
	inv2 := 1 / (alphaQ * alphaQ)
	maxW := 1.0
	for j := 0; j < s.ncols; j++ {
		if s.status[j] == statBasic || j == q {
			continue
		}
		var alpha float64
		ind, val := s.std.col(j)
		for t, i := range ind {
			alpha += rowr[i] * val[t]
		}
		if alpha == 0 {
			continue
		}
		cand := alpha * alpha * inv2 * wq
		if cand > s.devexW[j] {
			s.devexW[j] = cand
		}
		if s.devexW[j] > maxW {
			maxW = s.devexW[j]
		}
	}
	// The leaving variable becomes nonbasic with weight max(wq/αq², 1).
	out := wq * inv2
	if out < 1 {
		out = 1
	}
	s.devexW[s.basis[leave]] = out
	// Reset the framework when weights blow up (standard devex hygiene).
	if maxW > 1e8 {
		s.resetDevex()
	}
}

// ftran computes w = B⁻¹ A_q into s.w.
func (s *simplex) ftran(q int) {
	s.bas.ftranCol(q, s.w)
}

// ratioTest finds how far the entering variable q can move in direction
// sigma. It returns the leaving row position (or -1), the step length, and
// whether the step is a bound flip of q itself.
//
// The default is a Harris-style two-pass bounded test: pass 1 computes the
// largest step every basic variable tolerates with its bound relaxed by the
// feasibility tolerance; pass 2 picks, among the rows whose exact ratio
// fits under that relaxed step, the one with the largest pivot magnitude.
// Degenerate vertices thus cost a tiny (≤ tolF) bound excursion instead of
// a tiny pivot, which is where eta/FT update instability is born. Bland
// mode keeps the strict smallest-ratio test for its termination guarantee.
func (s *simplex) ratioTest(q int, sigma float64) (leave int, tmax float64, flip bool) {
	if s.blandMode {
		return s.ratioTestBland(q, sigma)
	}
	tolP := s.opts.TolPivot
	tolF := s.opts.TolFeas

	// Pass 1: relaxed step bound.
	thetaR := math.Inf(1)
	for i := 0; i < s.m; i++ {
		wi := s.w[i] * sigma
		if math.Abs(wi) <= tolP {
			continue
		}
		bcol := s.basis[i]
		xb := s.x[bcol]
		var t float64
		if wi > 0 {
			lb := s.lbOf(bcol)
			if math.IsInf(lb, -1) {
				continue
			}
			t = (xb - lb + tolF) / wi
		} else {
			ub := s.ubOf(bcol)
			if math.IsInf(ub, 1) {
				continue
			}
			t = (ub - xb + tolF) / (-wi)
		}
		if t < 0 {
			t = 0
		}
		if t < thetaR {
			thetaR = t
		}
	}

	// A bound flip of q itself wins whenever its distance fits under the
	// relaxed bound — same basis, no factorization update.
	lbq, ubq := s.std.lb[q], s.std.ub[q]
	if !math.IsInf(lbq, -1) && !math.IsInf(ubq, 1) && ubq-lbq <= thetaR {
		return -1, ubq - lbq, true
	}
	if math.IsInf(thetaR, 1) {
		return -1, thetaR, false // unbounded ray
	}

	// Pass 2: largest pivot among rows whose exact ratio fits.
	leave = -1
	bestPiv := 0.0
	for i := 0; i < s.m; i++ {
		wi := s.w[i] * sigma
		awi := math.Abs(wi)
		if awi <= tolP || awi <= bestPiv {
			continue
		}
		bcol := s.basis[i]
		xb := s.x[bcol]
		var t float64
		if wi > 0 {
			lb := s.lbOf(bcol)
			if math.IsInf(lb, -1) {
				continue
			}
			t = (xb - lb) / wi
		} else {
			ub := s.ubOf(bcol)
			if math.IsInf(ub, 1) {
				continue
			}
			t = (ub - xb) / (-wi)
		}
		if t < 0 {
			t = 0
		}
		if t <= thetaR {
			bestPiv = awi
			leave = i
			tmax = t
		}
	}
	if leave < 0 {
		// The exact minimum ratio always fits under the relaxed bound, so
		// this is unreachable barring floating-point corner cases; the
		// strict test is a safe answer for those.
		return s.ratioTestBland(q, sigma)
	}
	return leave, tmax, false
}

// ratioTestBland is the strict one-pass test: smallest (tolerance-relaxed)
// ratio wins, with Bland's smallest-index tie-break under blandMode —
// the finite-termination anchor the Harris test falls back to.
func (s *simplex) ratioTestBland(q int, sigma float64) (leave int, tmax float64, flip bool) {
	tolP := s.opts.TolPivot
	tolF := s.opts.TolFeas
	tmax = math.Inf(1)
	leave = -1

	// Bound flip distance for q.
	lbq, ubq := s.std.lb[q], s.std.ub[q]
	if !math.IsInf(lbq, -1) && !math.IsInf(ubq, 1) {
		tmax = ubq - lbq
		flip = true
	}

	for i := 0; i < s.m; i++ {
		wi := s.w[i] * sigma
		if math.Abs(wi) <= tolP {
			continue
		}
		bcol := s.basis[i]
		xb := s.x[bcol]
		var t float64
		if wi > 0 {
			// Basic variable decreases toward its lower bound.
			lb := s.lbOf(bcol)
			if math.IsInf(lb, -1) {
				continue
			}
			t = (xb - lb + tolF) / wi
		} else {
			// Basic variable increases toward its upper bound.
			ub := s.ubOf(bcol)
			if math.IsInf(ub, 1) {
				continue
			}
			t = (ub - xb + tolF) / (-wi)
		}
		if t < 0 {
			t = 0
		}
		if t < tmax {
			tmax = t
			leave = i
			flip = false
		} else if s.blandMode && leave >= 0 && !flip && t <= tmax+tolF && s.basis[i] < s.basis[leave] {
			// Bland tie-break: among (near-)ties prefer the smallest column
			// index, which guarantees finite termination under degeneracy.
			leave = i
		}
	}
	if leave >= 0 {
		// Remove the tolerance slack added above to keep steps conservative.
		wi := s.w[leave] * sigma
		bcol := s.basis[leave]
		xb := s.x[bcol]
		if wi > 0 {
			tmax = (xb - s.lbOf(bcol)) / wi
		} else {
			tmax = (s.ubOf(bcol) - xb) / (-wi)
		}
		if tmax < 0 {
			tmax = 0
		}
	}
	if math.IsInf(tmax, 1) {
		return -1, tmax, false
	}
	return leave, tmax, flip
}

// applyStep moves the entering variable and all basic variables by step t.
func (s *simplex) applyStep(q int, sigma, t float64) {
	if t == 0 {
		return
	}
	for i := 0; i < s.m; i++ {
		if s.w[i] == 0 {
			continue
		}
		b := s.basis[i]
		s.x[b] -= sigma * t * s.w[i]
	}
	s.x[q] += sigma * t
}

// pivot makes q basic in the `leave` row position and folds the change into
// the basis factorization (a product-form/eta transformation in both
// backends). It reports whether the factorization accepted the update; on
// false the caller must refactor.
func (s *simplex) pivot(leave, q int) bool {
	out := s.basis[leave]

	// Snap the leaving variable exactly onto the bound it reached: the side
	// is determined by which bound the ratio test hit.
	lb, ub := s.lbOf(out), s.ubOf(out)
	xo := s.x[out]
	if math.Abs(xo-lb) <= math.Abs(xo-ub) || math.IsInf(ub, 1) {
		s.status[out] = statLower
		s.x[out] = lb
	} else {
		s.status[out] = statUpper
		s.x[out] = ub
	}

	s.basis[leave] = q
	s.status[q] = statBasic

	return s.bas.update(leave, s.w)
}

// reinvert rebuilds the basis factorization from scratch and recomputes
// basic values. A SparseLU backend that fails numerically falls back to the
// dense backend for the rest of the solve; reinvert returns false only if
// the dense rebuild also finds the basis singular.
func (s *simplex) reinvert() bool {
	s.refactors++
	sp := s.opts.Obs.Span("lp.refactor")
	defer sp.End()
	ok := s.bas.refactor()
	if !ok {
		if _, dense := s.bas.(*denseFactor); !dense {
			s.bas = newDenseFactor(s)
			s.fellBack = true
			ok = s.bas.refactor()
		}
	}
	if !ok {
		return false
	}
	s.sinceReinvert = 0
	s.recomputeBasics()
	return true
}

// recomputeBasics recomputes x_B = B⁻¹(b - N x_N) from the current inverse,
// clearing accumulated drift.
func (s *simplex) recomputeBasics() {
	m := s.m
	r := s.rhs
	copy(r, s.std.b)
	for j := 0; j < s.ncols; j++ {
		if s.status[j] == statBasic || s.x[j] == 0 {
			continue
		}
		ind, val := s.std.col(j)
		for t, i := range ind {
			r[i] -= val[t] * s.x[j]
		}
	}
	// Nonbasic artificials are always zero, so they never contribute.
	s.bas.ftranDense(r)
	for i := 0; i < m; i++ {
		s.x[s.basis[i]] = r[i]
	}
}

// extract builds the Solution in the original orientation.
func (s *simplex) extract() *Solution {
	std := s.std
	n := std.n
	sol := &Solution{
		Status:      Optimal,
		X:           make([]float64, n),
		Dual:        make([]float64, s.m),
		ReducedCost: make([]float64, n),
		Iterations:  s.iters,
		DualPivots:  s.dualPivots,
		Basis:       s.snapshotBasis(),
		WarmStarted: s.warmStarted,
	}
	for j := 0; j < n; j++ {
		sol.X[j] = s.x[j]
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += std.c[j] * s.x[j] // invariant under scaling: c'·x' = c·x
	}
	sol.Objective = obj * std.objSign

	// Duals: y from the final btran with phase-2 costs; undo the sign flip
	// used internally when maximizing.
	s.btran()
	for i := 0; i < s.m; i++ {
		sol.Dual[i] = s.y[i] * std.objSign
	}
	for j := 0; j < n; j++ {
		sol.ReducedCost[j] = s.reducedCost(j) * std.objSign
	}
	// Unscale: x = C·x', y = R·y', d = d'/C.
	if s.colScale != nil {
		for j := 0; j < n; j++ {
			sol.X[j] *= s.colScale[j]
			sol.ReducedCost[j] /= s.colScale[j]
		}
		for i := 0; i < s.m; i++ {
			sol.Dual[i] *= s.rowScale[i]
		}
	}
	return sol
}

func (s *simplex) failure(st Status) *Solution {
	n := s.std.n
	sol := &Solution{Status: st, Iterations: s.iters, DualPivots: s.dualPivots, X: make([]float64, n), WarmStarted: s.warmStarted}
	for j := 0; j < n && j < len(s.x); j++ {
		sol.X[j] = s.x[j]
	}
	return sol
}
