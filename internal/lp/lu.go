package lp

import (
	"math"
	"sort"
)

// luFactor is the sparse basis backend: B is factorized as P·B·Q = L·U by
// left-looking sparse Gaussian elimination with a Markowitz-style ordering
// (columns processed sparsest-first, threshold partial pivoting preferring
// low-count rows). Simplex pivots are absorbed by one of two update
// strategies (Options.Update):
//
//   - ForrestTomlin (default): the pivot modifies the stored U in place. The
//     leaving column is replaced by the entering column's spike, the spiked
//     row is cyclically rotated to the last triangular position, and its
//     off-diagonal entries are eliminated by row operations recorded as a
//     compact row eta. ftran/btran cost stays proportional to the factor's
//     actual fill, and refactorization is scheduled adaptively: on measured
//     U fill growth and on ftran residual drift sampled during the solve.
//
//   - EtaUpdate (legacy): each pivot appends a product-form eta term and
//     every solve replays the whole file, refactoring at a fixed fill
//     cutoff. Kept for differential testing.
//
// On granular allocation LPs the basis columns hold only a handful of
// nonzeros each, so per-iteration solve time scales with factor fill rather
// than denseFactor's m². Refactorization keeps an O(m²) symbolic scan (the
// left-looking sweep and pivot search touch every row per column) but with
// a trivial constant — far below dense Gauss-Jordan's m³ flops.
//
// Vector-space bookkeeping for the Forrest–Tomlin mode: L's elimination
// steps are frozen at refactor time and double as row "handles" for U — row
// h of the triangular system U·z = L⁻¹P·a is the output of L step h, and
// handles keep their identity as updates reorder U's triangular structure.
// perm maps the current triangular order to handles (perm[step] = handle);
// cperm maps handles to basis positions and never changes between
// refactorizations (a replaced column keeps its position and its handle).
type luFactor struct {
	s  *simplex
	m  int
	ft bool // Forrest–Tomlin updates (default); false = product-form eta file

	// Factorization of the basis at the last refactor. Elimination step t
	// pivots on original row pr[t] and eliminates the column at basis
	// position cperm[t]. lcols[t] holds the below-pivot multipliers of L
	// column t as (original row, value); the unit diagonal is implicit.
	// ucols[h] holds the above-diagonal entries of U column h as
	// (row handle, value); udiag[h] is the pivot. In eta mode handles and
	// triangular steps coincide (entries sort below the diagonal step);
	// in FT mode the triangular order lives in perm/stepOf instead.
	lcols [][]luEntry
	ucols [][]luEntry
	udiag []float64
	pr    []int
	cperm []int

	// Forrest–Tomlin state (allocated only when ft is set). urows mirrors
	// ucols row-wise: urows[h] holds row h's entries right of the diagonal
	// as (column handle, value). posH inverts cperm. rowEtas records, in
	// chronological order, the row eliminations applied to U; each is
	// applied between the L solve and the U solve during ftran (and
	// transposed, in reverse, during btran).
	perm      []int
	stepOf    []int
	posH      []int
	urows     [][]luEntry
	rowEtas   []rowEta
	rowEtaNnz int
	unnz      int // current U fill (diagonal + off-diagonal)
	unnz0     int // U fill right after the last refactor

	// Adaptive-refactor state: ftrans clocks ftranCol calls so every 64th
	// one measures the true residual ‖B·w − a_q‖∞; drift latches the
	// verdict until the next refactor.
	ftrans int
	drift  bool

	// Product-form updates since the last refactor, oldest first (eta mode).
	etas   []etaTerm
	etaNnz int

	// Scratch: x is row-space (all zeros between calls), g and pos are
	// handle/position-space, elim maps original row -> elimination
	// step (-1 while unpivoted during factor). spike/rowAcc are FT
	// handle-space accumulators with their touched-index lists tlist/rlist.
	// artInd/artVal back the one-entry column returned by basisCol for
	// artificials.
	x, g, pos    []float64
	elim         []int
	spike        []float64
	rowAcc       []float64
	tlist, rlist []int
	artInd       [1]int32
	artVal       [1]float64
}

type luEntry struct {
	idx int32
	val float64
}

// etaTerm records one product-form pivot: the entering column's ftran w,
// split into the pivot element w[r] and the remaining nonzeros.
type etaTerm struct {
	r    int
	piv  float64
	ents []luEntry
}

// rowEta records one Forrest–Tomlin row elimination: row `target` of the
// spiked U had each row h in ents subtracted from it with multiplier val,
// leaving only its new diagonal.
type rowEta struct {
	target int
	ents   []luEntry
}

func newLUFactor(s *simplex) *luFactor {
	m := s.m
	return &luFactor{
		s: s, m: m,
		ft: s.opts.Update.resolve() == ForrestTomlin,
		x:  make([]float64, m), g: make([]float64, m), pos: make([]float64, m),
		elim: make([]int, m),
	}
}

// basisCol returns the sparse column of the basis occupying position pos.
func (f *luFactor) basisCol(pos int) ([]int32, []float64) {
	s := f.s
	j := s.basis[pos]
	if j >= s.artStart {
		k := j - s.artStart
		f.artInd[0] = int32(k)
		f.artVal[0] = s.artSign[k]
		return f.artInd[:], f.artVal[:]
	}
	return s.std.col(j)
}

func (f *luFactor) refactor() bool {
	m := f.m
	f.etas = f.etas[:0]
	f.etaNnz = 0
	f.rowEtas = f.rowEtas[:0]
	f.rowEtaNnz = 0
	f.ftrans = 0
	f.drift = false
	if f.lcols == nil {
		f.lcols = make([][]luEntry, m)
		f.ucols = make([][]luEntry, m)
		f.udiag = make([]float64, m)
		f.pr = make([]int, m)
		f.cperm = make([]int, m)
	}

	// Column order: ascending nonzero count (approximate Markowitz), ties
	// by position for determinism. Row counts feed the pivot tie-break.
	order := make([]int, m)
	colNnz := make([]int, m)
	rowCount := make([]int, m)
	for pos := 0; pos < m; pos++ {
		order[pos] = pos
		ind, _ := f.basisCol(pos)
		colNnz[pos] = len(ind)
		for _, r := range ind {
			rowCount[r]++
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if colNnz[order[a]] != colNnz[order[b]] {
			return colNnz[order[a]] < colNnz[order[b]]
		}
		return order[a] < order[b]
	})

	x := f.x
	for i := range f.elim {
		f.elim[i] = -1
	}
	for t := 0; t < m; t++ {
		pos := order[t]
		ind, val := f.basisCol(pos)
		for k, r := range ind {
			x[r] = val[k]
		}

		// Left-looking update: apply every earlier elimination step whose
		// pivot row currently carries a nonzero. Fill lands only on pivot
		// rows of later steps, so one ascending scan suffices.
		ucol := f.ucols[t][:0]
		for j := 0; j < t; j++ {
			xj := x[f.pr[j]]
			if xj == 0 {
				continue
			}
			ucol = append(ucol, luEntry{int32(j), xj})
			x[f.pr[j]] = 0 // consumed into U
			for _, e := range f.lcols[j] {
				x[e.idx] -= e.val * xj
			}
		}

		// Threshold partial pivoting among unpivoted rows: candidates
		// within 10× of the largest magnitude, preferring the row with the
		// fewest static nonzeros (Markowitz tie-break), then the smallest
		// index for determinism.
		vmax := 0.0
		for i := 0; i < m; i++ {
			if f.elim[i] >= 0 {
				continue
			}
			if v := math.Abs(x[i]); v > vmax {
				vmax = v
			}
		}
		if vmax < 1e-12 {
			// Singular: zero out scratch before failing.
			for i := range x {
				x[i] = 0
			}
			f.ucols[t] = ucol
			return false
		}
		piv := -1
		for i := 0; i < m; i++ {
			if f.elim[i] >= 0 || math.Abs(x[i]) < 0.1*vmax {
				continue
			}
			if piv < 0 || rowCount[i] < rowCount[piv] {
				piv = i
			}
		}

		d := x[piv]
		lcol := f.lcols[t][:0]
		for i := 0; i < m; i++ {
			if i == piv || f.elim[i] >= 0 || x[i] == 0 {
				continue
			}
			lcol = append(lcol, luEntry{int32(i), x[i] / d})
			x[i] = 0
		}
		x[piv] = 0
		f.elim[piv] = t
		f.pr[t] = piv
		f.cperm[t] = pos
		f.udiag[t] = d
		f.lcols[t] = lcol
		f.ucols[t] = ucol
	}
	if f.ft {
		f.initFT()
	}
	return true
}

// initFT (re)derives the Forrest–Tomlin bookkeeping from a fresh
// factorization: identity triangular order, the row-wise mirror of U, the
// position→handle map, and the fill baseline the adaptive refactor trigger
// measures growth against.
func (f *luFactor) initFT() {
	m := f.m
	if f.perm == nil {
		f.perm = make([]int, m)
		f.stepOf = make([]int, m)
		f.posH = make([]int, m)
		f.urows = make([][]luEntry, m)
		f.spike = make([]float64, m)
		f.rowAcc = make([]float64, m)
	}
	nnz := m // diagonal
	for h := 0; h < m; h++ {
		f.perm[h] = h
		f.stepOf[h] = h
		f.posH[f.cperm[h]] = h
		f.urows[h] = f.urows[h][:0]
	}
	for h := 0; h < m; h++ {
		for _, e := range f.ucols[h] {
			f.urows[e.idx] = append(f.urows[e.idx], luEntry{int32(h), e.val})
		}
		nnz += len(f.ucols[h])
	}
	f.unnz = nnz
	f.unnz0 = nnz
}

// solveLU solves B₀ x = v through L, the row etas, and U: v enters in row
// space and leaves in position space. (In eta mode there are no row etas
// and the product-form file is applied by the caller afterwards.)
func (f *luFactor) solveLU(v []float64) {
	m := f.m
	g := f.g
	// Forward: L y = v. The output is handle-indexed (handles are L steps).
	for t := 0; t < m; t++ {
		yt := v[f.pr[t]]
		g[t] = yt
		if yt != 0 {
			for _, e := range f.lcols[t] {
				v[e.idx] -= e.val * yt
			}
		}
	}
	if f.ft {
		// Row etas in chronological order: each one replays the elimination
		// of a spiked row on the right-hand side.
		for i := range f.rowEtas {
			e := &f.rowEtas[i]
			acc := g[e.target]
			for _, t := range e.ents {
				acc -= t.val * g[t.idx]
			}
			g[e.target] = acc
		}
		// Backward: U z = y, columns visited in reverse triangular order.
		for ti := m - 1; ti >= 0; ti-- {
			h := f.perm[ti]
			zt := g[h] / f.udiag[h]
			g[h] = zt
			if zt != 0 {
				for _, e := range f.ucols[h] {
					g[e.idx] -= e.val * zt
				}
			}
		}
	} else {
		// Backward: U z = y (column-oriented, steps ≡ handles).
		for t := m - 1; t >= 0; t-- {
			zt := g[t] / f.udiag[t]
			g[t] = zt
			if zt != 0 {
				for _, e := range f.ucols[t] {
					g[e.idx] -= e.val * zt
				}
			}
		}
	}
	// Scatter into position space.
	for t := 0; t < m; t++ {
		f.pos[f.cperm[t]] = g[t]
	}
	copy(v, f.pos)
}

// solveLUT solves B₀ᵀ y = c through Uᵀ, the transposed row etas, and Lᵀ:
// c enters in position space and leaves in row space.
func (f *luFactor) solveLUT(c []float64) {
	m := f.m
	g := f.g
	for t := 0; t < m; t++ {
		g[t] = c[f.cperm[t]]
	}
	if f.ft {
		// Forward: Uᵀ g' = g in triangular order.
		for ti := 0; ti < m; ti++ {
			h := f.perm[ti]
			acc := g[h]
			for _, e := range f.ucols[h] {
				acc -= e.val * g[e.idx]
			}
			g[h] = acc / f.udiag[h]
		}
		// Transposed row etas in reverse chronological order: each spreads
		// the target component back over its eliminators.
		for i := len(f.rowEtas) - 1; i >= 0; i-- {
			e := &f.rowEtas[i]
			gt := g[e.target]
			if gt != 0 {
				for _, t := range e.ents {
					g[t.idx] -= t.val * gt
				}
			}
		}
	} else {
		// Forward: Uᵀ g' = g (steps ≡ handles).
		for t := 0; t < m; t++ {
			acc := g[t]
			for _, e := range f.ucols[t] {
				acc -= e.val * g[e.idx]
			}
			g[t] = acc / f.udiag[t]
		}
	}
	// Backward: Lᵀ y = g'. L column t touches only rows pivoted later, so
	// a descending sweep resolves every dependency.
	for t := m - 1; t >= 0; t-- {
		acc := g[t]
		for _, e := range f.lcols[t] {
			acc -= e.val * c[e.idx]
		}
		c[f.pr[t]] = acc
	}
}

// applyEtasFtran applies E_k⁻¹…E_1⁻¹ in chronological order to the
// position-space vector v (eta mode only; the list is empty under FT).
func (f *luFactor) applyEtasFtran(v []float64) {
	for i := range f.etas {
		e := &f.etas[i]
		vr := v[e.r]
		if vr == 0 {
			continue
		}
		vr /= e.piv
		v[e.r] = vr
		for _, t := range e.ents {
			v[t.idx] -= t.val * vr
		}
	}
}

// applyEtasBtran applies E_1⁻ᵀ…E_k⁻ᵀ in reverse chronological order to the
// position-space vector c. Only component r changes per eta.
func (f *luFactor) applyEtasBtran(c []float64) {
	for i := len(f.etas) - 1; i >= 0; i-- {
		e := &f.etas[i]
		acc := c[e.r]
		for _, t := range e.ents {
			acc -= t.val * c[t.idx]
		}
		c[e.r] = acc / e.piv
	}
}

func (f *luFactor) ftranDense(v []float64) {
	f.solveLU(v)
	f.applyEtasFtran(v)
}

func (f *luFactor) btranCost(y []float64) {
	s := f.s
	for i := 0; i < f.m; i++ {
		y[i] = s.cost[s.basis[i]]
	}
	f.applyEtasBtran(y)
	f.solveLUT(y)
}

func (f *luFactor) btranUnit(r int, z []float64) {
	for i := range z {
		z[i] = 0
	}
	z[r] = 1
	f.applyEtasBtran(z)
	f.solveLUT(z)
}

func (f *luFactor) ftranCol(q int, w []float64) {
	s := f.s
	x := f.x
	if q >= s.artStart {
		k := q - s.artStart
		x[k] = s.artSign[k]
	} else {
		ind, val := s.std.col(q)
		for t, r := range ind {
			x[r] = val[t]
		}
	}
	copy(w, x)
	for i := range x {
		x[i] = 0
	}
	f.ftranDense(w)
	if f.ft && !f.drift {
		// Sampled drift measurement: every 64th column solve verifies the
		// factorization against the actual basis by computing the true
		// residual B·w − a_q. Exceeding the tolerance latches `drift`, and
		// wantRefactor schedules a rebuild before the next pivot.
		f.ftrans++
		if f.ftrans&63 == 0 {
			f.measureDrift(q, w)
		}
	}
}

// measureDrift computes r = B·w − a_q in row space and latches f.drift when
// ‖r‖∞ is out of proportion to the operands — the honest signal that the
// accumulated updates have degraded the factorization.
func (f *luFactor) measureDrift(q int, w []float64) {
	s := f.s
	x := f.x // all zeros on entry; restored to zeros before returning
	wmax := 0.0
	for p := 0; p < f.m; p++ {
		wp := w[p]
		if wp == 0 {
			continue
		}
		if a := math.Abs(wp); a > wmax {
			wmax = a
		}
		ind, val := f.basisCol(p)
		for t, r := range ind {
			x[r] += val[t] * wp
		}
	}
	amax := 0.0
	if q >= s.artStart {
		k := q - s.artStart
		x[k] -= s.artSign[k]
		amax = 1
	} else {
		ind, val := s.std.col(q)
		for t, r := range ind {
			x[r] -= val[t]
			if a := math.Abs(val[t]); a > amax {
				amax = a
			}
		}
	}
	res := 0.0
	for i := range x {
		if a := math.Abs(x[i]); a > res {
			res = a
		}
		x[i] = 0
	}
	if res > 1e-9*(1+amax+wmax) {
		f.drift = true
	}
}

func (f *luFactor) update(leave int, w []float64) bool {
	if f.ft {
		return f.updateFT(leave, w)
	}
	piv := w[leave]
	if math.Abs(piv) < 1e-11 {
		return false
	}
	ents := make([]luEntry, 0, 8)
	for i, v := range w {
		if v != 0 && i != leave {
			ents = append(ents, luEntry{int32(i), v})
		}
	}
	f.etas = append(f.etas, etaTerm{r: leave, piv: piv, ents: ents})
	f.etaNnz += len(ents) + 1
	return true
}

// updateFT folds one pivot into the stored factors in place. The column at
// handle h0 (basis position `leave`) is replaced by the entering column's
// spike s = U·w (w already solved through the whole factorization, so U·w
// re-expresses it in the factor's internal frame), h0 is rotated to the
// last triangular position, and the now out-of-place old row h0 is
// eliminated by row operations recorded as one rowEta. Returns false —
// leaving the caller to refactor from scratch, which rebuilds all state —
// when the elimination is numerically unstable (huge multiplier) or the
// final diagonal is negligible.
func (f *luFactor) updateFT(leave int, w []float64) bool {
	m := f.m
	h0 := f.posH[leave]

	// Spike: s = U·(w gathered into handle space).
	s := f.spike
	touched := f.tlist[:0]
	for p := 0; p < m; p++ {
		zp := w[p]
		if zp == 0 {
			continue
		}
		h := f.posH[p]
		if s[h] == 0 {
			touched = append(touched, h)
		}
		s[h] += f.udiag[h] * zp
		for _, e := range f.ucols[h] {
			if s[e.idx] == 0 {
				touched = append(touched, int(e.idx))
			}
			s[e.idx] += e.val * zp
		}
	}
	f.tlist = touched[:0]

	// Drop the old column h0 — the spike replaces it wholesale — and detach
	// the old row h0 from the column lists; its entries seed the
	// elimination below.
	for _, e := range f.ucols[h0] {
		f.urows[e.idx] = removeHandle(f.urows[e.idx], h0)
	}
	f.unnz -= len(f.ucols[h0])
	f.ucols[h0] = f.ucols[h0][:0]

	oldRow := f.urows[h0]
	racc := f.rowAcc
	rtouch := f.rlist[:0]
	for _, e := range oldRow {
		f.ucols[e.idx] = removeHandle(f.ucols[e.idx], h0)
		racc[e.idx] = e.val
		rtouch = append(rtouch, int(e.idx))
	}
	f.unnz -= len(oldRow)
	f.urows[h0] = oldRow[:0]

	// Cyclic rotation: handles between h0's old step and the end shift one
	// step earlier; h0 becomes the last step.
	t0 := f.stepOf[h0]
	for t := t0; t < m-1; t++ {
		h := f.perm[t+1]
		f.perm[t] = h
		f.stepOf[h] = t
	}
	f.perm[m-1] = h0
	f.stepOf[h0] = m - 1

	// Install the spike as the new column h0 (every other handle now sits
	// at an earlier step, so all entries are above the diagonal). Scratch
	// is zeroed as it is consumed, which also makes duplicate touched
	// indices harmless.
	d := s[h0]
	ucol := f.ucols[h0]
	for _, h := range touched {
		v := s[h]
		s[h] = 0
		if v == 0 || h == h0 {
			continue
		}
		ucol = append(ucol, luEntry{int32(h), v})
		f.urows[h] = append(f.urows[h], luEntry{int32(h0), v})
	}
	f.ucols[h0] = ucol
	f.unnz += len(ucol)

	// Eliminate the old row h0 against rows t0..m-2 in triangular order.
	// Entries the row ops place in column h0 fold into the new diagonal d;
	// everything else is fill tracked in racc. Entries below the drop
	// tolerance are discarded (the sampled drift check guards the
	// accumulated error).
	var ents []luEntry
	for t := t0; t < m-1; t++ {
		h := f.perm[t]
		v := racc[h]
		if v == 0 {
			continue
		}
		racc[h] = 0
		if math.Abs(v) <= 1e-13 {
			continue
		}
		mult := v / f.udiag[h]
		if math.Abs(mult) > 1e7 {
			for _, rr := range rtouch {
				racc[rr] = 0
			}
			f.rlist = rtouch[:0]
			f.s.ftRejects++
			f.s.opts.Obs.Instant("lp.ft-reject", nil)
			return false
		}
		ents = append(ents, luEntry{int32(h), mult})
		for _, e := range f.urows[h] {
			if int(e.idx) == h0 {
				d -= mult * e.val
			} else {
				if racc[e.idx] == 0 {
					rtouch = append(rtouch, int(e.idx))
				}
				racc[e.idx] -= mult * e.val
			}
		}
	}
	for _, rr := range rtouch {
		racc[rr] = 0
	}
	f.rlist = rtouch[:0]

	if math.Abs(d) < 1e-11 {
		f.s.ftRejects++
		f.s.opts.Obs.Instant("lp.ft-reject", nil)
		return false
	}
	f.udiag[h0] = d
	if len(ents) > 0 {
		f.rowEtas = append(f.rowEtas, rowEta{target: h0, ents: ents})
		f.rowEtaNnz += len(ents)
	}
	f.s.ftUpdates++
	return true
}

// removeHandle swap-removes the entry with index h from ents (entry order
// within U rows/columns is not meaningful).
func removeHandle(ents []luEntry, h int) []luEntry {
	for t := range ents {
		if int(ents[t].idx) == h {
			last := len(ents) - 1
			ents[t] = ents[last]
			return ents[:last]
		}
	}
	return ents
}

// wantRefactor triggers an early refactorization. FT mode is adaptive:
// measured ftran residual drift, or the factor's live fill (U plus the row
// eta file) outgrowing the post-refactor baseline. Eta mode keeps the
// legacy fixed cutoff on the product-form file. The trigger fires at most
// once per rebuild (the callers refactor immediately), so the counters
// book one refactor reason each.
func (f *luFactor) wantRefactor() bool {
	if !f.ft {
		return f.etaNnz > 10*f.m+1000
	}
	if f.drift {
		f.s.driftRefactors++
		f.s.opts.Obs.Instant("lp.drift-refactor", nil)
		return true
	}
	if f.unnz+f.rowEtaNnz > 2*f.unnz0+4*f.m+64 {
		f.s.fillRefactors++
		return true
	}
	return false
}
