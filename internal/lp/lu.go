package lp

import (
	"math"
	"sort"
)

// luFactor is the sparse basis backend: B is factorized as P·B·Q = L·U by
// left-looking sparse Gaussian elimination with a Markowitz-style ordering
// (columns processed sparsest-first, threshold partial pivoting preferring
// low-count rows), and each subsequent simplex pivot appends a product-form
// eta term instead of touching the factors. ftran/btran are sparse
// triangular solves through L, U, and the eta file.
//
// On granular allocation LPs the basis columns hold only a handful of
// nonzeros each, so per-iteration solve time scales with factor fill rather
// than denseFactor's m². Refactorization keeps an O(m²) symbolic scan (the
// left-looking sweep and pivot search touch every row per column) but with
// a trivial constant — far below dense Gauss-Jordan's m³ flops.
type luFactor struct {
	s *simplex
	m int

	// Factorization of the basis at the last refactor. Elimination step t
	// pivots on original row pr[t] and eliminates the column at basis
	// position cperm[t]. lcols[t] holds the below-pivot multipliers of L
	// column t as (original row, value); the unit diagonal is implicit.
	// ucols[t] holds the above-diagonal entries of U column t as
	// (elimination step j < t, value); udiag[t] is the pivot.
	lcols [][]luEntry
	ucols [][]luEntry
	udiag []float64
	pr    []int
	cperm []int

	// Product-form updates since the last refactor, oldest first.
	etas   []etaTerm
	etaNnz int

	// Scratch: x is row-space (all zeros between calls), g and pos are
	// elimination/position-space, elim maps original row -> elimination
	// step (-1 while unpivoted during factor). artInd/artVal back the
	// one-entry column returned by basisCol for artificials.
	x, g, pos []float64
	elim      []int
	artInd    [1]int32
	artVal    [1]float64
}

type luEntry struct {
	idx int32
	val float64
}

// etaTerm records one pivot: the entering column's ftran w, split into the
// pivot element w[r] and the remaining nonzeros.
type etaTerm struct {
	r    int
	piv  float64
	ents []luEntry
}

func newLUFactor(s *simplex) *luFactor {
	m := s.m
	return &luFactor{
		s: s, m: m,
		x: make([]float64, m), g: make([]float64, m), pos: make([]float64, m),
		elim: make([]int, m),
	}
}

// basisCol returns the sparse column of the basis occupying position pos.
func (f *luFactor) basisCol(pos int) ([]int32, []float64) {
	s := f.s
	j := s.basis[pos]
	if j >= s.artStart {
		k := j - s.artStart
		f.artInd[0] = int32(k)
		f.artVal[0] = s.artSign[k]
		return f.artInd[:], f.artVal[:]
	}
	return s.std.col(j)
}

func (f *luFactor) refactor() bool {
	m := f.m
	f.etas = f.etas[:0]
	f.etaNnz = 0
	if f.lcols == nil {
		f.lcols = make([][]luEntry, m)
		f.ucols = make([][]luEntry, m)
		f.udiag = make([]float64, m)
		f.pr = make([]int, m)
		f.cperm = make([]int, m)
	}

	// Column order: ascending nonzero count (approximate Markowitz), ties
	// by position for determinism. Row counts feed the pivot tie-break.
	order := make([]int, m)
	colNnz := make([]int, m)
	rowCount := make([]int, m)
	for pos := 0; pos < m; pos++ {
		order[pos] = pos
		ind, _ := f.basisCol(pos)
		colNnz[pos] = len(ind)
		for _, r := range ind {
			rowCount[r]++
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if colNnz[order[a]] != colNnz[order[b]] {
			return colNnz[order[a]] < colNnz[order[b]]
		}
		return order[a] < order[b]
	})

	x := f.x
	for i := range f.elim {
		f.elim[i] = -1
	}
	for t := 0; t < m; t++ {
		pos := order[t]
		ind, val := f.basisCol(pos)
		for k, r := range ind {
			x[r] = val[k]
		}

		// Left-looking update: apply every earlier elimination step whose
		// pivot row currently carries a nonzero. Fill lands only on pivot
		// rows of later steps, so one ascending scan suffices.
		ucol := f.ucols[t][:0]
		for j := 0; j < t; j++ {
			xj := x[f.pr[j]]
			if xj == 0 {
				continue
			}
			ucol = append(ucol, luEntry{int32(j), xj})
			x[f.pr[j]] = 0 // consumed into U
			for _, e := range f.lcols[j] {
				x[e.idx] -= e.val * xj
			}
		}

		// Threshold partial pivoting among unpivoted rows: candidates
		// within 10× of the largest magnitude, preferring the row with the
		// fewest static nonzeros (Markowitz tie-break), then the smallest
		// index for determinism.
		vmax := 0.0
		for i := 0; i < m; i++ {
			if f.elim[i] >= 0 {
				continue
			}
			if v := math.Abs(x[i]); v > vmax {
				vmax = v
			}
		}
		if vmax < 1e-12 {
			// Singular: zero out scratch before failing.
			for i := range x {
				x[i] = 0
			}
			f.ucols[t] = ucol
			return false
		}
		piv := -1
		for i := 0; i < m; i++ {
			if f.elim[i] >= 0 || math.Abs(x[i]) < 0.1*vmax {
				continue
			}
			if piv < 0 || rowCount[i] < rowCount[piv] {
				piv = i
			}
		}

		d := x[piv]
		lcol := f.lcols[t][:0]
		for i := 0; i < m; i++ {
			if i == piv || f.elim[i] >= 0 || x[i] == 0 {
				continue
			}
			lcol = append(lcol, luEntry{int32(i), x[i] / d})
			x[i] = 0
		}
		x[piv] = 0
		f.elim[piv] = t
		f.pr[t] = piv
		f.cperm[t] = pos
		f.udiag[t] = d
		f.lcols[t] = lcol
		f.ucols[t] = ucol
	}
	return true
}

// solveLU solves B₀ x = v for the refactored basis (ignoring etas): v enters
// in row space and leaves in position space.
func (f *luFactor) solveLU(v []float64) {
	m := f.m
	g := f.g
	// Forward: L y = v.
	for t := 0; t < m; t++ {
		yt := v[f.pr[t]]
		g[t] = yt
		if yt != 0 {
			for _, e := range f.lcols[t] {
				v[e.idx] -= e.val * yt
			}
		}
	}
	// Backward: U z = y (column-oriented).
	for t := m - 1; t >= 0; t-- {
		zt := g[t] / f.udiag[t]
		g[t] = zt
		if zt != 0 {
			for _, e := range f.ucols[t] {
				g[e.idx] -= e.val * zt
			}
		}
	}
	// Scatter into position space.
	for t := 0; t < m; t++ {
		f.pos[f.cperm[t]] = g[t]
	}
	copy(v, f.pos)
}

// solveLUT solves B₀ᵀ y = c: c enters in position space and leaves in row
// space.
func (f *luFactor) solveLUT(c []float64) {
	m := f.m
	g := f.g
	for t := 0; t < m; t++ {
		g[t] = c[f.cperm[t]]
	}
	// Forward: Uᵀ g' = g.
	for t := 0; t < m; t++ {
		acc := g[t]
		for _, e := range f.ucols[t] {
			acc -= e.val * g[e.idx]
		}
		g[t] = acc / f.udiag[t]
	}
	// Backward: Lᵀ y = g'. L column t touches only rows pivoted later, so
	// a descending sweep resolves every dependency.
	for t := m - 1; t >= 0; t-- {
		acc := g[t]
		for _, e := range f.lcols[t] {
			acc -= e.val * c[e.idx]
		}
		c[f.pr[t]] = acc
	}
}

// applyEtasFtran applies E_k⁻¹…E_1⁻¹ in chronological order to the
// position-space vector v.
func (f *luFactor) applyEtasFtran(v []float64) {
	for i := range f.etas {
		e := &f.etas[i]
		vr := v[e.r]
		if vr == 0 {
			continue
		}
		vr /= e.piv
		v[e.r] = vr
		for _, t := range e.ents {
			v[t.idx] -= t.val * vr
		}
	}
}

// applyEtasBtran applies E_1⁻ᵀ…E_k⁻ᵀ in reverse chronological order to the
// position-space vector c. Only component r changes per eta.
func (f *luFactor) applyEtasBtran(c []float64) {
	for i := len(f.etas) - 1; i >= 0; i-- {
		e := &f.etas[i]
		acc := c[e.r]
		for _, t := range e.ents {
			acc -= t.val * c[t.idx]
		}
		c[e.r] = acc / e.piv
	}
}

func (f *luFactor) ftranDense(v []float64) {
	f.solveLU(v)
	f.applyEtasFtran(v)
}

func (f *luFactor) ftranCol(q int, w []float64) {
	s := f.s
	x := f.x
	if q >= s.artStart {
		k := q - s.artStart
		x[k] = s.artSign[k]
	} else {
		ind, val := s.std.col(q)
		for t, r := range ind {
			x[r] = val[t]
		}
	}
	copy(w, x)
	for i := range x {
		x[i] = 0
	}
	f.ftranDense(w)
}

func (f *luFactor) btranCost(y []float64) {
	s := f.s
	for i := 0; i < f.m; i++ {
		y[i] = s.cost[s.basis[i]]
	}
	f.applyEtasBtran(y)
	f.solveLUT(y)
}

func (f *luFactor) btranUnit(r int, z []float64) {
	for i := range z {
		z[i] = 0
	}
	z[r] = 1
	f.applyEtasBtran(z)
	f.solveLUT(z)
}

func (f *luFactor) update(leave int, w []float64) bool {
	piv := w[leave]
	if math.Abs(piv) < 1e-11 {
		return false
	}
	ents := make([]luEntry, 0, 8)
	for i, v := range w {
		if v != 0 && i != leave {
			ents = append(ents, luEntry{int32(i), v})
		}
	}
	f.etas = append(f.etas, etaTerm{r: leave, piv: piv, ents: ents})
	f.etaNnz += len(ents) + 1
	return true
}

// wantRefactor triggers an early refactorization once the eta file's fill
// outweighs the cost of refactoring (solve cost grows linearly with it).
func (f *luFactor) wantRefactor() bool {
	return f.etaNnz > 10*f.m+1000
}
