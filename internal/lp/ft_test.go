package lp

import (
	"math"
	"math/rand"
	"testing"
)

// colOf materializes column q (structural, slack, or artificial) of the
// current standardized problem as a dense row-space vector.
func colOf(s *simplex, q int) []float64 {
	want := make([]float64, s.m)
	if q >= s.artStart {
		want[q-s.artStart] = s.artSign[q-s.artStart]
	} else {
		ind, val := s.std.col(q)
		for t, i := range ind {
			want[i] = val[t]
		}
	}
	return want
}

// TestFTPivotChainMatchesRefactor is the Forrest–Tomlin equivalence
// property suite: starting from a solved basis, apply a long randomized
// chain of basis exchanges through updateFT and verify after every accepted
// update that ftran still inverts the true basis (B·(B⁻¹a_q) = a_q) and
// btran its transpose — then refactor from scratch and check the updated
// factors and the fresh ones solve identically. A rejected update (the FT
// stability guard) must leave the factorization rebuildable.
func TestFTPivotChainMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		s, f := solvedLU(t, rng, 12+rng.Intn(10), 20+rng.Intn(16),
			Options{ReinvertEvery: 1 << 30})
		if !f.ft {
			t.Fatal("default update strategy is not Forrest–Tomlin")
		}
		w := make([]float64, s.m)
		w2 := make([]float64, s.m)
		z := make([]float64, s.m)
		steps := 0
		for attempt := 0; attempt < 400 && steps < 3*s.m; attempt++ {
			q := rng.Intn(s.ncols + s.m)
			inBasis := false
			for _, j := range s.basis {
				if j == q {
					inBasis = true
					break
				}
			}
			if inBasis {
				continue
			}
			f.ftranCol(q, w)
			leave, best := -1, 0.1
			for i := 0; i < s.m; i++ {
				if a := math.Abs(w[i]); a > best {
					best, leave = a, i
				}
			}
			if leave < 0 {
				continue // no stable pivot for this column; try another
			}
			if !f.update(leave, w) {
				// Stability rejection: the factors are in an undefined state
				// until rebuilt, exactly as the solver treats it.
				if !f.refactor() {
					t.Fatalf("trial %d: refactor failed after FT rejection", trial)
				}
				continue
			}
			s.basis[leave] = q
			steps++

			// The entering column must round-trip through the updated factors.
			f.ftranCol(q, w2)
			if d := maxAbsDiff(mulBasis(f, w2), colOf(s, q)); d > 1e-7 {
				t.Fatalf("trial %d step %d: ftran residual %g after FT update",
					trial, steps, d)
			}
			// And a unit btran must round-trip through the transpose.
			r := rng.Intn(s.m)
			f.btranUnit(r, z)
			got := mulBasisT(f, z)
			want := make([]float64, s.m)
			want[r] = 1
			if d := maxAbsDiff(got, want); d > 1e-7 {
				t.Fatalf("trial %d step %d: btranUnit(%d) residual %g after FT update",
					trial, steps, r, d)
			}
		}
		if steps < s.m {
			t.Fatalf("trial %d: chain only absorbed %d updates", trial, steps)
		}

		// FT-updated factors and a refactorization from scratch must agree on
		// every solve they are asked for.
		probe := make([]int, 0, 8)
		for len(probe) < 8 {
			probe = append(probe, rng.Intn(s.ncols+s.m))
		}
		ftSol := make([][]float64, len(probe))
		for k, q := range probe {
			f.ftranCol(q, w)
			ftSol[k] = append([]float64(nil), w...)
		}
		yFT := make([]float64, s.m)
		f.btranCost(yFT)
		if !f.refactor() {
			t.Fatalf("trial %d: refactor failed on an FT-updated basis", trial)
		}
		for k, q := range probe {
			f.ftranCol(q, w)
			if d := maxAbsDiff(ftSol[k], w); d > 1e-7 {
				t.Fatalf("trial %d: FT vs refactor ftran(%d) differ by %g", trial, q, d)
			}
		}
		yFresh := make([]float64, s.m)
		f.btranCost(yFresh)
		if d := maxAbsDiff(yFT, yFresh); d > 1e-7 {
			t.Fatalf("trial %d: FT vs refactor btranCost differ by %g", trial, d)
		}
	}
}

// TestFTAgreesWithEtaFile: the update strategy is a performance choice, not
// a semantic one — Forrest–Tomlin and the legacy product-form eta file must
// return the same statuses and objectives over randomized instances, warm
// and cold.
func TestFTAgreesWithEtaFile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		p1 := randomFeasibleLP(rng, 8+rng.Intn(12), 14+rng.Intn(20))
		p2 := cloneProblem(p1)
		// A small reinvert cadence keeps both paths exercising updates and
		// refactorizations within these small instances.
		s1, err := p1.SolveWithOptions(Options{Backend: SparseLU, ReinvertEvery: 11})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveWithOptions(Options{Backend: SparseLU, Update: EtaUpdate, ReinvertEvery: 11})
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v (ft) vs %v (eta)", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal && !approxEq(s1.Objective, s2.Objective, 1e-6) {
			t.Fatalf("trial %d: obj %.10g (ft) vs %.10g (eta)", trial, s1.Objective, s2.Objective)
		}
	}
}

// degenerateLP builds instances that live on highly degenerate vertices:
// many zero right-hand sides (the feasible region's corner at the origin has
// far more tight constraints than dimensions) and duplicated rows (exact
// ties in every ratio test). This is the family where a one-pass ratio test
// stalls on near-zero pivots and cycling lives.
func degenerateLP(rng *rand.Rand, m, n int) *Problem {
	p := NewProblem(Maximize)
	for j := 0; j < n; j++ {
		p.AddVariable(rng.NormFloat64(), 0, 2+float64(rng.Intn(3)), "")
	}
	for i := 0; i < m; i++ {
		var idx []int
		var val []float64
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				idx = append(idx, j)
				val = append(val, float64(1+rng.Intn(3)))
			}
		}
		if len(idx) == 0 {
			continue
		}
		rhs := 0.0
		if rng.Float64() < 0.5 {
			rhs = float64(rng.Intn(3))
		}
		p.AddConstraint(idx, val, LE, rhs, "")
		if rng.Float64() < 0.3 {
			p.AddConstraint(idx, val, LE, rhs, "")
		}
	}
	return p
}

// TestHarrisRatioTestDegenerateFuzz: on the degenerate family, the Harris
// two-pass ratio tests (primal and, through warm re-solves, dual) must
// terminate within the iteration budget and agree with Bland's rule and the
// dense backend — the two references whose termination and correctness are
// known. A cycling or stalling regression shows up as IterLimit or an
// objective mismatch.
func TestHarrisRatioTestDegenerateFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		p1 := degenerateLP(rng, 6+rng.Intn(11), 8+rng.Intn(17))
		p2 := cloneProblem(p1)
		p3 := cloneProblem(p1)
		s1, err := p1.SolveWithOptions(Options{Backend: SparseLU})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveWithOptions(Options{Backend: SparseLU, BlandOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		s3, err := p3.SolveWithOptions(Options{Backend: Dense})
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != Optimal || s2.Status != Optimal || s3.Status != Optimal {
			t.Fatalf("trial %d: statuses %v/%v/%v", trial, s1.Status, s2.Status, s3.Status)
		}
		if !approxEq(s1.Objective, s2.Objective, 1e-6) || !approxEq(s1.Objective, s3.Objective, 1e-6) {
			t.Fatalf("trial %d: objectives %.10g (harris) %.10g (bland) %.10g (dense)",
				trial, s1.Objective, s2.Objective, s3.Objective)
		}
		if err := p1.CheckFeasible(s1.X, 1e-6); err != nil {
			t.Fatalf("trial %d: harris solution infeasible: %v", trial, err)
		}
	}
}
