package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyFeasibilityAndCertificates: for random feasible LPs, the
// returned point must satisfy all constraints, reproduce the reported
// objective, and satisfy the complementary-slackness/strong-duality
// identity for bounded-variable LPs:
//
//	cᵀx = yᵀb + Σ_{j at lower} d_j·l_j + Σ_{j at upper} d_j·u_j
func TestPropertyFeasibilityAndCertificates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(16)
		p := randomFeasibleLP(rng, m, n)
		sol, err := p.SolveWithOptions(Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status != Optimal {
			// Random feasible-by-construction LPs with boxed variables are
			// never unbounded or infeasible.
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
		if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !approxEq(p.Value(sol.X), sol.Objective, 1e-7) {
			t.Logf("seed %d: objective mismatch %g vs %g", seed, p.Value(sol.X), sol.Objective)
			return false
		}
		// Strong duality with bound contributions. All variables here have
		// bounds [0, 5]: lower-bound terms vanish, upper-bound terms are
		// 5·d_j for variables at 5.
		dualVal := 0.0
		for i, r := range p.rows {
			dualVal += sol.Dual[i] * r.rhs
		}
		for j := range p.obj {
			x := sol.X[j]
			switch {
			case approxEq(x, p.lb[j], 1e-7):
				dualVal += sol.ReducedCost[j] * p.lb[j]
			case approxEq(x, p.ub[j], 1e-7):
				dualVal += sol.ReducedCost[j] * p.ub[j]
			}
		}
		if !approxEq(dualVal, sol.Objective, 1e-5) {
			t.Logf("seed %d: duality gap %g vs %g", seed, dualVal, sol.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDualSigns: for a maximization with ≤ rows, shadow prices are
// nonnegative; for ≥ rows they are nonpositive.
func TestPropertyDualSigns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem(Maximize)
		n := 3 + rng.Intn(6)
		for j := 0; j < n; j++ {
			p.AddVariable(rng.Float64()*4-1, 0, 10, "")
		}
		// One ≤ row and one ≥ row, both loose enough to stay feasible.
		idx := make([]int, n)
		le := make([]float64, n)
		ge := make([]float64, n)
		for j := 0; j < n; j++ {
			idx[j] = j
			le[j] = rng.Float64() + 0.1
			ge[j] = rng.Float64() + 0.1
		}
		p.AddConstraint(idx, le, LE, 5+rng.Float64()*10, "le")
		p.AddConstraint(idx, ge, GE, 0, "ge") // trivially satisfiable at x=0
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return true // skip non-optimal cases (not this property's job)
		}
		if sol.Dual[0] < -1e-7 {
			t.Logf("seed %d: ≤ row dual %g < 0", seed, sol.Dual[0])
			return false
		}
		if sol.Dual[1] > 1e-7 {
			t.Logf("seed %d: ≥ row dual %g > 0", seed, sol.Dual[1])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScaleInvariance: scaling the objective leaves the argmax
// unchanged and scales the optimum.
func TestPropertyScaleInvariance(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 0.5 + float64(scaleRaw%50)
		p1 := randomFeasibleLP(rng, 5, 8)
		p2 := cloneProblem(p1)
		for j := range p2.obj {
			p2.obj[j] *= scale
		}
		s1, err1 := p1.Solve()
		s2, err2 := p2.Solve()
		if err1 != nil || err2 != nil || s1.Status != Optimal || s2.Status != Optimal {
			return false
		}
		return approxEq(s1.Objective*scale, s2.Objective, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTighteningMonotone: adding a constraint can only reduce a
// maximization optimum.
func TestPropertyTighteningMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1 := randomFeasibleLP(rng, 4, 10)
		s1, err := p1.Solve()
		if err != nil || s1.Status != Optimal {
			return false
		}
		// Tighten: cap a random variable at half its current value.
		j := rng.Intn(10)
		p2 := cloneProblem(p1)
		p2.AddConstraint([]int{j}, []float64{1}, LE, s1.X[j]/2, "tighten")
		s2, err := p2.Solve()
		if err != nil {
			return false
		}
		if s2.Status == Infeasible {
			return true // tightening below the lower bound; fine
		}
		return s2.Status == Optimal && s2.Objective <= s1.Objective+1e-6*(1+math.Abs(s1.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEqualityResidual: equality constraints hold to tolerance at
// optimality.
func TestPropertyEqualityResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		p := NewProblem(Minimize)
		x0 := make([]float64, n)
		for j := 0; j < n; j++ {
			x0[j] = rng.Float64() * 3
			p.AddVariable(rng.NormFloat64(), 0, 4, "")
		}
		// Two equality rows satisfied by x0 (so the LP is feasible).
		for i := 0; i < 2; i++ {
			idx := make([]int, n)
			coef := make([]float64, n)
			rhs := 0.0
			for j := 0; j < n; j++ {
				idx[j] = j
				coef[j] = rng.Float64()
				rhs += coef[j] * x0[j]
			}
			p.AddConstraint(idx, coef, EQ, rhs, "")
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			t.Logf("seed %d: err=%v status=%v", seed, err, sol.Status)
			return false
		}
		return p.CheckFeasible(sol.X, 1e-5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
