package lp

import "math"

// This file implements the dual simplex phase used to re-solve
// rhs/bound-only perturbations of an already-solved model. The previous
// optimal basis stays dual feasible under such deltas (reduced costs do not
// depend on b, l, or u), so instead of repairing primal feasibility with the
// bound-shifting phase 1 the solver can run dual pivots: repeatedly choose a
// basic variable that violates one of its bounds, drive it out of the basis
// onto that bound, and bring in the nonbasic column whose reduced-cost ratio
// keeps every other column dual feasible. Each pivot removes one
// infeasibility, so load-change deltas typically settle in a handful of
// pivots where a primal warm repair would grind through a composite
// phase 1.
//
// Leaving-row selection uses dual devex weights by default
// (Options.DualPricing): rows are ranked by violation²/weight, where the
// reference-framework weights grow as rows participate in pivots — the dual
// analogue of the primal devex pricing in simplex.go. Entering-column
// selection is a Harris two-pass bounded ratio test: pass 1 relaxes every
// reduced cost by the dual tolerance to find the loosest admissible ratio,
// pass 2 takes the largest-pivot candidate under it, trading a ≤ TolOpt
// dual excursion for pivot quality on degenerate chains.
//
// Entry is gated by initWarmDual, which rejects (returning the caller to
// the primal warm path) any start that is not an exact-shape, factorizable,
// dual-feasible snapshot. dualIterate likewise reports anything other than
// a clean primally-feasible finish as a failure — including apparent
// infeasibility, which a stale start cannot be trusted to prove — and the
// caller falls back, so the dual phase changes solve speed, never solve
// outcomes.

// initWarmDual attempts to install basis snapshot b as a dual simplex
// starting point. Unlike the primal warm path it demands an exact fit: the
// snapshot must have the model's shape, exactly m basic columns, a
// factorizable basis matrix, and reduced costs that are still dual feasible
// for the current objective. On success the solver holds phase-2 costs, a
// factorized basis, and (possibly bound-violating) basic values, ready for
// dualIterate.
func (s *simplex) initWarmDual(b *Basis) bool {
	if b == nil || len(b.VarStatus) != s.std.n || len(b.SlackStatus) != s.std.m {
		return false
	}
	if b.NumBasic() != s.std.m {
		// A repaired basic count means promoted/demoted columns whose
		// reduced costs carry no dual-feasibility promise; leave those
		// snapshots to the primal warm path.
		return false
	}
	if !s.installBasis(b) {
		return false
	}
	s.phase = 2
	copy(s.cost, s.std.c)

	// Dual feasibility check against the real costs. An optimal snapshot
	// perturbed only in b/l/u passes exactly; anything else that happens to
	// pass is equally safe to pivot on.
	s.btran()
	tol := 10 * s.opts.TolOpt
	for j := 0; j < s.ncols; j++ {
		if s.status[j] == statBasic || s.std.lb[j] == s.std.ub[j] {
			continue
		}
		d := s.reducedCost(j)
		switch s.status[j] {
		case statLower:
			if d < -tol {
				return false
			}
		case statUpper:
			if d > tol {
				return false
			}
		default: // statFree
			if math.Abs(d) > tol {
				return false
			}
		}
	}
	if s.opts.DualPricing.resolve() == DualDevex {
		// Fresh reference framework per install — weights describe this
		// basis only.
		if len(s.dualW) != s.m {
			s.dualW = make([]float64, s.m)
		}
		s.resetDualDevex()
	} else {
		s.dualW = nil
	}
	return true
}

// dualIterate runs dual simplex pivots until every basic variable is back
// inside its bounds (Optimal — primal and dual feasible, so the phase-2
// primal cleanup that follows typically takes zero pivots) or the phase
// fails. Infeasible here means no entering column could absorb the
// violation — a certificate the caller re-derives through the primal path
// rather than trusting a warm start with.
func (s *simplex) dualIterate() Status {
	tolP := s.opts.TolPivot
	tolF := s.opts.TolFeas
	if s.dualRho == nil {
		s.dualRho = make([]float64, s.m)
	}
	rho := s.dualRho

	for {
		if s.iters >= s.opts.MaxIters {
			return IterLimit
		}

		// Leaving row: devex-scored bound violation (violation²/weight), raw
		// largest violation under DualDantzig, first violation under Bland
		// mode (guaranteeing finite termination under degeneracy).
		r := -1
		above := false // true when the violation is past the upper bound
		worst := 0.0
		for i := 0; i < s.m; i++ {
			j := s.basis[i]
			viol, up := 0.0, false
			if v := s.lbOf(j) - s.x[j]; v > tolF {
				viol = v
			}
			if v := s.x[j] - s.ubOf(j); v > tolF && v > viol {
				viol, up = v, true
			}
			if viol == 0 {
				continue
			}
			if s.blandMode {
				r, above = i, up
				break
			}
			score := viol
			if s.dualW != nil {
				score = viol * viol / s.dualW[i]
			}
			if score > worst {
				worst, r, above = score, i, up
			}
		}
		if r < 0 {
			return Optimal
		}

		out := s.basis[r]
		var bound float64
		vdir := 1.0
		if above {
			bound = s.ubOf(out)
		} else {
			bound = s.lbOf(out)
			vdir = -1
		}
		delta := s.x[out] - bound // sign matches vdir

		// Duals for the ratio test, and the pivot row ρ = B⁻ᵀe_r.
		s.btran()
		s.bas.btranUnit(r, rho)

		// Entering column, Harris two-pass. Pass 1 collects every column
		// whose movement can absorb the violation and the loosest
		// admissible ratio (each reduced cost relaxed by the dual
		// tolerance); pass 2 picks the largest |pivot| among candidates
		// whose exact ratio fits under it, so degenerate chains pay a
		// ≤ TolOpt dual excursion instead of a near-zero pivot. Bland
		// mode keeps the strict smallest-ratio, smallest-index rule.
		candJ := s.dualCandJ[:0]
		candA := s.dualCandA[:0]
		candD := s.dualCandD[:0]
		thetaMax := math.Inf(1)
		tolD := s.opts.TolOpt
		for j := 0; j < s.ncols; j++ {
			st := s.status[j]
			if st == statBasic || s.std.lb[j] == s.std.ub[j] {
				continue
			}
			var alpha float64
			ind, val := s.std.col(j)
			for t, i := range ind {
				alpha += rho[i] * val[t]
			}
			abar := alpha * vdir
			switch st {
			case statLower:
				if abar <= tolP {
					continue
				}
			case statUpper:
				if abar >= -tolP {
					continue
				}
			default: // statFree
				if abar <= tolP && abar >= -tolP {
					continue
				}
			}
			dj := math.Abs(s.reducedCost(j))
			if t := (dj + tolD) / math.Abs(alpha); t < thetaMax {
				thetaMax = t
			}
			candJ = append(candJ, int32(j))
			candA = append(candA, alpha)
			candD = append(candD, dj)
		}
		s.dualCandJ, s.dualCandA, s.dualCandD = candJ, candA, candD
		if len(candJ) == 0 {
			// No column can absorb the violation: the primal is infeasible
			// (dual unbounded) — as far as this start can tell.
			return Infeasible
		}
		q := -1
		var alphaQ, bestRatio, bestPiv float64
		if s.blandMode {
			bestRatio = math.Inf(1)
			for t, j := range candJ {
				ratio := candD[t] / math.Abs(candA[t])
				if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-12 && (q < 0 || int(j) < q)) {
					q, alphaQ, bestRatio = int(j), candA[t], ratio
				}
			}
		} else {
			for t, j := range candJ {
				a := math.Abs(candA[t])
				if a <= bestPiv {
					continue
				}
				if ratio := candD[t] / a; ratio <= thetaMax {
					q, alphaQ, bestRatio, bestPiv = int(j), candA[t], ratio, a
				}
			}
			if q < 0 {
				// Unreachable barring floating-point corner cases (the exact
				// minimum ratio always fits under the relaxed bound); take
				// the strict minimum as the safe answer.
				bestRatio = math.Inf(1)
				for t, j := range candJ {
					if ratio := candD[t] / math.Abs(candA[t]); ratio < bestRatio {
						q, alphaQ, bestRatio = int(j), candA[t], ratio
					}
				}
			}
		}

		// Pivot. The ftran'd entering column must agree with the row-wise
		// pivot element; a mismatch or vanishing pivot means the
		// factorization has drifted — reinvert once, then give up.
		s.ftran(q)
		wr := s.w[r]
		if math.Abs(wr) <= tolP || wr*alphaQ < 0 {
			if s.tryRecover() {
				continue
			}
			return Numerical
		}
		if s.dualW != nil {
			s.updateDualDevex(r)
		}
		step := delta / wr
		for i := 0; i < s.m; i++ {
			if wi := s.w[i]; wi != 0 {
				s.x[s.basis[i]] -= wi * step
			}
		}
		s.x[out] = bound
		if above {
			s.status[out] = statUpper
		} else {
			s.status[out] = statLower
		}
		s.x[q] += step
		s.basis[r] = q
		s.status[q] = statBasic

		// Dual degeneracy (zero-ratio pivots) is where cycling lives; after
		// a run of them, switch to Bland-style selection.
		if bestRatio <= s.opts.TolOpt {
			s.degenerateRun++
			if s.degenerateRun > 2*s.m+20 {
				s.blandMode = true
			}
		} else {
			s.degenerateRun = 0
			if !s.opts.BlandOnly {
				s.blandMode = false
			}
		}

		if !s.bas.update(r, s.w) {
			if !s.reinvert() {
				return Numerical
			}
		}
		s.iters++
		s.sinceReinvert++
		if s.sinceReinvert >= s.opts.ReinvertEvery || s.bas.wantRefactor() {
			if !s.reinvert() {
				return Numerical
			}
		}
	}
}

// updateDualDevex refreshes the dual reference weights after a pivot in row
// r, reading the entering column's ftran from s.w (so it must run after
// s.ftran(q) and before the basis update). Weights live on basis positions:
// position i's weight grows with (w_i/w_r)² relative to the pivot row's, the
// standard Forrest–Goldfarb recurrence transposed to rows.
func (s *simplex) updateDualDevex(r int) {
	wr := s.w[r]
	wref := s.dualW[r]
	inv2 := 1 / (wr * wr)
	maxW := 1.0
	for i, wi := range s.w {
		if wi == 0 || i == r {
			continue
		}
		if cand := wi * wi * inv2 * wref; cand > s.dualW[i] {
			s.dualW[i] = cand
		}
		if s.dualW[i] > maxW {
			maxW = s.dualW[i]
		}
	}
	out := wref * inv2
	if out < 1 {
		out = 1
	}
	s.dualW[r] = out
	// Reset the framework when weights blow up (standard devex hygiene).
	if maxW > 1e8 {
		s.resetDualDevex()
	}
}
