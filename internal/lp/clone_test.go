package lp_test

// Tests for Model.Clone (shared-matrix copy-on-write fan-out) and for basis
// snapshot ownership: a snapshot handed out by the model (Solution.Basis,
// Basis()) or handed in (SetBasis) must never alias the model's internal
// warm-start state, so caller-side mutation cannot corrupt a later solve —
// the invariant the parallel branch-and-bound's shared node snapshots rely
// on.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"pop/internal/lp"
	"pop/internal/lp/gen"
)

// solveRebuilt solves a deep copy of the model's current state from scratch
// — the ground truth a mutated clone must match.
func solveRebuilt(t *testing.T, m *lp.Model) *lp.Solution {
	t.Helper()
	sol, err := m.CopyProblem().Solve()
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func agree(t *testing.T, tag string, got, want *lp.Solution) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status %v, rebuild %v", tag, got.Status, want.Status)
	}
	if want.Status == lp.Optimal && math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
		t.Fatalf("%s: objective %.12g, rebuild %.12g", tag, got.Objective, want.Objective)
	}
}

// TestModelCloneDivergentMutations clones a solved model, applies different
// delta classes to original and clone (including coefficient edits, which
// must trigger the copy-on-write split), and checks that every model always
// re-solves to its own rebuilt ground truth — no clone ever observes
// another's edits.
func TestModelCloneDivergentMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		m := lp.NewModelFromProblem(gen.LB(gen.Small, int64(40+trial)))
		if sol, err := m.Solve(); err != nil || sol.Status != lp.Optimal {
			t.Fatalf("trial %d: root solve %v %v", trial, sol.Status, err)
		}
		c1 := m.Clone()
		c2 := m.Clone()
		nv := m.NumVariables()

		// Original: bounds-only deltas (the branch-and-bound shape).
		for k := 0; k < 3; k++ {
			v := rng.Intn(nv)
			m.SetBounds(v, 0, float64(rng.Intn(2)))
		}
		// Clone 1: coefficient edits — must copy-on-write, not corrupt m/c2.
		for k := 0; k < 3; k++ {
			row := rng.Intn(c1.NumConstraints())
			c1.SetCoeff(row, rng.Intn(nv), 1+rng.Float64())
		}
		// Clone 2: rhs + objective deltas.
		for k := 0; k < 3; k++ {
			c2.SetRHS(rng.Intn(c2.NumConstraints()), 1+rng.Float64()*5)
			c2.SetObjectiveCoeff(rng.Intn(nv), rng.NormFloat64())
		}

		for i, mm := range []*lp.Model{m, c1, c2} {
			got, err := mm.Solve()
			if err != nil {
				t.Fatalf("trial %d model %d: %v", trial, i, err)
			}
			agree(t, "divergent clone", got, solveRebuilt(t, mm))
		}
	}
}

// TestModelCloneStructuralEdit drives a structural block edit through a
// clone: the shared matrix must split instead of shifting the sibling's
// row indices.
func TestModelCloneStructuralEdit(t *testing.T) {
	m := lp.NewModelFromProblem(gen.Cluster(gen.Small, 3))
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	at := c.NumVariables() / 2
	c.InsertVariables(at, 2, 0.5, 0, 2)
	c.RemoveVariables(0, 1)

	for i, mm := range []*lp.Model{m, c} {
		got, err := mm.Solve()
		if err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		agree(t, "structural clone", got, solveRebuilt(t, mm))
	}
}

// TestModelCloneConcurrentSolves is the fan-out contract under -race: many
// clones of one model, each bound-tightened and solved in its own
// goroutine, all land on their rebuilt ground truths.
func TestModelCloneConcurrentSolves(t *testing.T) {
	m := lp.NewModelFromProblem(gen.LB(gen.Small, 11))
	if sol, err := m.Solve(); err != nil || sol.Status != lp.Optimal {
		t.Fatalf("root solve: %v %v", sol.Status, err)
	}
	const workers = 8
	clones := make([]*lp.Model, workers)
	for w := range clones {
		clones[w] = m.Clone()
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	objs := make([]float64, workers)
	wants := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mm := clones[w]
			rng := rand.New(rand.NewSource(int64(w)))
			for k := 0; k < 2; k++ {
				mm.SetBounds(rng.Intn(mm.NumVariables()), 0, 1)
			}
			got, err := mm.Solve()
			if err != nil {
				errs[w] = err
				return
			}
			want, err := mm.CopyProblem().Solve()
			if err != nil {
				errs[w] = err
				return
			}
			if got.Status != want.Status {
				objs[w], wants[w] = math.NaN(), 0
				return
			}
			objs[w], wants[w] = got.Objective, want.Objective
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if math.IsNaN(objs[w]) || math.Abs(objs[w]-wants[w]) > 1e-6*(1+math.Abs(wants[w])) {
			t.Fatalf("worker %d: objective %.12g, rebuild %.12g", w, objs[w], wants[w])
		}
	}
}

// scribble corrupts a basis snapshot in place.
func scribble(b *lp.Basis) {
	for i := range b.VarStatus {
		b.VarStatus[i] = lp.BasisBasic
	}
	for i := range b.SlackStatus {
		b.SlackStatus[i] = lp.BasisUpper
	}
}

// TestMutatedSnapshotCannotCorruptSolve is the basis-aliasing regression
// test: scribbling over every snapshot the model ever handed out — the
// solve's Solution.Basis, Basis(), and the caller's own copy passed to
// SetBasis — must not change any later solve's outcome, and the installed
// warm start must still engage.
func TestMutatedSnapshotCannotCorruptSolve(t *testing.T) {
	m := lp.NewModelFromProblem(gen.LB(gen.Small, 23))
	sol, err := m.Solve()
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("root solve: %v %v", sol.Status, err)
	}
	keep := m.Basis()
	if keep == nil || sol.Basis == nil {
		t.Fatal("no snapshots after an optimal solve")
	}

	// Corrupt the returned snapshots, then re-solve a perturbed model: the
	// stored warm state must be untouched by the scribbling.
	scribble(sol.Basis)
	snap := m.Basis()
	scribble(snap)
	m.SetBounds(0, 0, 0)
	got, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	agree(t, "after scribbled returns", got, solveRebuilt(t, m))
	if got.Status == lp.Optimal && !got.WarmStarted {
		t.Fatal("warm start lost after caller-side snapshot mutation")
	}

	// Install a good snapshot, then corrupt the caller's copy afterwards:
	// clone-on-install means the solve still starts from the good statuses.
	m.SetBasis(keep)
	scribble(keep)
	m.SetBounds(0, 0, 1)
	got, err = m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	agree(t, "after scribbled install", got, solveRebuilt(t, m))
	if got.Status == lp.Optimal && !got.WarmStarted {
		t.Fatal("clone-on-install lost the warm start")
	}
}
