package lp_test

import (
	"bytes"
	"os"
	"testing"

	"pop/internal/lp"
	"pop/internal/lp/gen"
	"pop/internal/obs"
)

// TestNumericalDriftGuard is the CI drift budget for the Forrest–Tomlin
// update path: on the case-study-shaped gen instances, the FT and legacy
// eta-file factorization paths must return the same statuses and objectives
// to 1e-6, and the FT solutions must satisfy the original constraints to the
// same residual bound — so in-place U modification never trades correctness
// for its per-pivot win. The FT run carries a metrics registry, and the
// guard also asserts the refactor/update counters actually export, which is
// what popserver's /metrics and lpbench -metrics surface.
//
// Gated behind LP_DRIFT_GUARD=1: it re-solves every small+medium instance
// twice, too slow for the default short run.
func TestNumericalDriftGuard(t *testing.T) {
	if os.Getenv("LP_DRIFT_GUARD") != "1" {
		t.Skip("set LP_DRIFT_GUARD=1 to run the FT-vs-eta numerical drift guard")
	}
	reg := obs.NewRegistry()
	o := &obs.Observer{Metrics: reg}
	for _, in := range gen.All(1) {
		if in.Size == gen.Large {
			continue // the large trio triples runtime without adding coverage
		}
		ft, err := in.P.Clone().SolveWithOptions(lp.Options{Backend: lp.SparseLU, Obs: o})
		if err != nil {
			t.Fatalf("%s ft: %v", in.Name(), err)
		}
		eta, err := in.P.Clone().SolveWithOptions(lp.Options{Backend: lp.SparseLU, Update: lp.EtaUpdate})
		if err != nil {
			t.Fatalf("%s eta: %v", in.Name(), err)
		}
		if ft.Status != eta.Status {
			t.Fatalf("%s: status %v (ft) vs %v (eta)", in.Name(), ft.Status, eta.Status)
		}
		if ft.Status != lp.Optimal {
			t.Fatalf("%s: status %v", in.Name(), ft.Status)
		}
		if !approxEqF(ft.Objective, eta.Objective, 1e-6) {
			t.Fatalf("%s: obj %.12g (ft) vs %.12g (eta)", in.Name(), ft.Objective, eta.Objective)
		}
		if err := in.P.CheckFeasible(ft.X, 1e-6); err != nil {
			t.Fatalf("%s: ft solution residual out of bounds: %v", in.Name(), err)
		}
	}

	// The counters the FT path books must reach the Prometheus export.
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	for _, series := range []string{
		"pop_lp_refactors_total",
		"pop_lp_ft_updates_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Fatalf("metrics export missing %s", series)
		}
	}
	if o.Counter("pop_lp_ft_updates_total", "").Value() == 0 {
		t.Fatal("FT runs over the gen instances booked zero FT updates")
	}
}
