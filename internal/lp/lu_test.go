package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solvedLU runs a SparseLU solve to completion and hands back the simplex
// with its final basis factorization (which has seen refactorizations and
// eta updates along the way).
func solvedLU(t *testing.T, rng *rand.Rand, m, n int, opts Options) (*simplex, *luFactor) {
	t.Helper()
	p := randomFeasibleLP(rng, m, n)
	opts.Backend = SparseLU
	s := newSimplex(p, opts)
	sol := s.solve()
	if sol.Status != Optimal {
		t.Fatalf("setup solve status %v", sol.Status)
	}
	f, ok := s.bas.(*luFactor)
	if !ok {
		t.Fatalf("backend fell back to dense during a benign solve")
	}
	return s, f
}

// mulBasis computes r = B·w for the current basis (w in position space,
// r in row space).
func mulBasis(f *luFactor, w []float64) []float64 {
	r := make([]float64, f.m)
	for pos := 0; pos < f.m; pos++ {
		if w[pos] == 0 {
			continue
		}
		ind, val := f.basisCol(pos)
		for t, i := range ind {
			r[i] += val[t] * w[pos]
		}
	}
	return r
}

// mulBasisT computes c = Bᵀ·y (y in row space, c in position space).
func mulBasisT(f *luFactor, y []float64) []float64 {
	c := make([]float64, f.m)
	for pos := 0; pos < f.m; pos++ {
		ind, val := f.basisCol(pos)
		sum := 0.0
		for t, i := range ind {
			sum += val[t] * y[i]
		}
		c[pos] = sum
	}
	return c
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// TestLUFtranRoundTrip: B·(B⁻¹ a_q) must reproduce a_q for structural,
// slack, and artificial columns, through both the fresh factors and the
// accumulated eta file.
func TestLUFtranRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		// Small ReinvertEvery so the final factorization carries etas.
		s, f := solvedLU(t, rng, 10+rng.Intn(10), 16+rng.Intn(16), Options{ReinvertEvery: 7})
		w := make([]float64, s.m)
		for q := 0; q < s.ncols+s.m; q += 1 + rng.Intn(3) {
			f.ftranCol(q, w)
			got := mulBasis(f, w)
			want := make([]float64, s.m)
			if q >= s.artStart {
				want[q-s.artStart] = s.artSign[q-s.artStart]
			} else {
				ind, val := s.std.col(q)
				for t2, i := range ind {
					want[i] = val[t2]
				}
			}
			if d := maxAbsDiff(got, want); d > 1e-8 {
				t.Fatalf("trial %d col %d: ftran round-trip residual %g", trial, q, d)
			}
		}
	}
}

// TestLUBtranRoundTrip: Bᵀ·(B⁻ᵀ c) must reproduce c for the phase cost
// vector and for unit vectors (the devex pivot-row solve).
func TestLUBtranRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 8; trial++ {
		s, f := solvedLU(t, rng, 10+rng.Intn(10), 16+rng.Intn(16), Options{ReinvertEvery: 7})
		y := make([]float64, s.m)
		f.btranCost(y)
		got := mulBasisT(f, y)
		want := make([]float64, s.m)
		for i := 0; i < s.m; i++ {
			want[i] = s.cost[s.basis[i]]
		}
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("trial %d: btranCost round-trip residual %g", trial, d)
		}
		z := make([]float64, s.m)
		for r := 0; r < s.m; r++ {
			f.btranUnit(r, z)
			got := mulBasisT(f, z)
			want := make([]float64, s.m)
			want[r] = 1
			if d := maxAbsDiff(got, want); d > 1e-8 {
				t.Fatalf("trial %d: btranUnit(%d) round-trip residual %g", trial, r, d)
			}
		}
	}
}

// TestLURefactorResidualInvariant: refactorizing must not move the basic
// solution — the eta-composed factorization and a fresh LU agree on
// x_B = B⁻¹(b - N x_N) to tight tolerance, and the refactored basis
// reproduces the right-hand side.
func TestLURefactorResidualInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		s, f := solvedLU(t, rng, 12+rng.Intn(8), 20+rng.Intn(12), Options{ReinvertEvery: 9})
		xbBefore := make([]float64, s.m)
		for i, j := range s.basis {
			xbBefore[i] = s.x[j]
		}
		if !s.reinvert() {
			t.Fatalf("trial %d: refactor failed on a solved basis", trial)
		}
		if len(f.etas) != 0 {
			t.Fatalf("trial %d: refactor left %d etas", trial, len(f.etas))
		}
		xbAfter := make([]float64, s.m)
		for i, j := range s.basis {
			xbAfter[i] = s.x[j]
		}
		if d := maxAbsDiff(xbBefore, xbAfter); d > 1e-7 {
			t.Fatalf("trial %d: refactor moved basics by %g", trial, d)
		}
		// Residual of the linear system the basics claim to solve.
		r := make([]float64, s.m)
		copy(r, s.std.b)
		for j := 0; j < s.ncols; j++ {
			if s.status[j] == statBasic || s.x[j] == 0 {
				continue
			}
			ind, val := s.std.col(j)
			for t2, i := range ind {
				r[i] -= val[t2] * s.x[j]
			}
		}
		bx := mulBasis(f, xbAfter)
		if d := maxAbsDiff(bx, r); d > 1e-7 {
			t.Fatalf("trial %d: ‖B·x_B - (b - N·x_N)‖∞ = %g", trial, d)
		}
	}
}

// TestLUSingularBasisFailsAndFallsBack: a structurally singular basis must
// be rejected by the LU factorization, and reinvert must at least attempt
// the dense fallback path.
func TestLUSingularBasisFailsAndFallsBack(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(1, 0, 10, "x")
	y := p.AddVariable(1, 0, 10, "y")
	p.AddConstraint([]int{x, y}, []float64{1, 1}, LE, 6, "")
	p.AddConstraint([]int{x, y}, []float64{2, 2}, LE, 12, "")
	s := newSimplex(p, Options{Backend: SparseLU}.withDefaults(2, 4))
	s.initPhase1()
	// Force the same structural column into both basis positions.
	s.basis[0], s.basis[1] = x, x
	f := s.bas.(*luFactor)
	if f.refactor() {
		t.Fatal("LU accepted a singular basis")
	}
	if s.reinvert() {
		t.Fatal("reinvert succeeded on a singular basis")
	}
	if !s.fellBack {
		t.Fatal("reinvert did not attempt the dense fallback")
	}
	if _, dense := s.bas.(*denseFactor); !dense {
		t.Fatal("backend not switched to dense after LU failure")
	}
}

// TestLUReinvertCadenceAgrees mirrors TestReinversionMidSolve for the
// sparse backend: aggressive refactorization cadence must not change
// results.
func TestLUReinvertCadenceAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		p1 := randomFeasibleLP(rng, 12, 24)
		p2 := cloneProblem(p1)
		s1, err := p1.SolveWithOptions(Options{Backend: SparseLU})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveWithOptions(Options{Backend: SparseLU, ReinvertEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal && !approxEq(s1.Objective, s2.Objective, 1e-5) {
			t.Fatalf("trial %d: obj %.10g vs %.10g", trial, s1.Objective, s2.Objective)
		}
	}
}

// TestLUFillTriggersRefactor: the fill-based refactor trigger must fire in
// both update modes once accumulated update storage outgrows its budget —
// the eta file past its nnz cutoff, the Forrest–Tomlin U past its
// fill-growth bound.
func TestLUFillTriggersRefactor(t *testing.T) {
	for _, upd := range []UpdateStrategy{ForrestTomlin, EtaUpdate} {
		rng := rand.New(rand.NewSource(17))
		s, f := solvedLU(t, rng, 8, 14, Options{Update: upd})
		if f.wantRefactor() {
			t.Fatalf("%v: fresh factorization already wants refactor", upd)
		}
		w := make([]float64, s.m)
		for i := range w {
			w[i] = 1
		}
		for i := 0; !f.wantRefactor(); i++ {
			if !f.update(i%s.m, w) {
				t.Fatalf("%v: update rejected a unit pivot", upd)
			}
			if i > 100*s.m {
				t.Fatalf("%v: fill trigger never fired", upd)
			}
		}
	}
}
