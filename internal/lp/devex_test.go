package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDevexAgreesWithDantzig: pricing strategy must not change the optimum.
func TestDevexAgreesWithDantzig(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		p1 := randomFeasibleLP(rng, 10, 30)
		p2 := cloneProblem(p1)
		s1, err := p1.SolveWithOptions(Options{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveWithOptions(Options{Devex: true})
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal && !approxEq(s1.Objective, s2.Objective, 1e-6) {
			t.Fatalf("trial %d: obj %.10g vs %.10g", trial, s1.Objective, s2.Objective)
		}
	}
}

// TestDevexPropertyFeasible: devex solutions satisfy the same feasibility
// certificates as Dantzig ones.
func TestDevexPropertyFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomFeasibleLP(rng, 6, 18)
		sol, err := p.SolveWithOptions(Options{Devex: true})
		if err != nil || sol.Status != Optimal {
			return false
		}
		return p.CheckFeasible(sol.X, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDevexWithScalingAndStatuses: devex composes with equilibration and
// preserves infeasible/unbounded detection.
func TestDevexWithScalingAndStatuses(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(1e5, 0, 1, "x")
	y := p.AddVariable(1, 0, 1e4, "y")
	p.AddConstraint([]int{x, y}, []float64{1e5, 1e-2}, LE, 1e5+50, "")
	sol, err := p.SolveWithOptions(Options{Devex: true, Scale: true})
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 109950) // x=0.9995 frees y to its full 1e4

	inf := NewProblem(Maximize)
	v := inf.AddVariable(1, 0, 10, "v")
	inf.AddConstraint([]int{v}, []float64{1}, GE, 20, "")
	s2, err := inf.SolveWithOptions(Options{Devex: true})
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, s2, Infeasible)

	unb := NewProblem(Maximize)
	u := unb.AddVariable(1, 0, Inf, "u")
	w := unb.AddVariable(0, 0, Inf, "w")
	unb.AddConstraint([]int{u, w}, []float64{1, -1}, LE, 1, "")
	s3, err := unb.SolveWithOptions(Options{Devex: true})
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, s3, Unbounded)
}
