package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDevexAgreesWithDantzig: pricing strategy must not change the optimum.
func TestDevexAgreesWithDantzig(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		p1 := randomFeasibleLP(rng, 10, 30)
		p2 := cloneProblem(p1)
		s1, err := p1.SolveWithOptions(Options{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveWithOptions(Options{Devex: true})
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal && !approxEq(s1.Objective, s2.Objective, 1e-6) {
			t.Fatalf("trial %d: obj %.10g vs %.10g", trial, s1.Objective, s2.Objective)
		}
	}
}

// TestDevexPropertyFeasible: devex solutions satisfy the same feasibility
// certificates as Dantzig ones.
func TestDevexPropertyFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomFeasibleLP(rng, 6, 18)
		sol, err := p.SolveWithOptions(Options{Devex: true})
		if err != nil || sol.Status != Optimal {
			return false
		}
		return p.CheckFeasible(sol.X, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDevexWeightsResetOnInstall: installing a basis snapshot must reset the
// primal devex reference framework — weights tuned while pricing a previous
// basis (an earlier start strategy in the same solve, or a SetBasis chain)
// must not rank pivots for the newly installed one. Regression test for the
// install paths silently inheriting stale weights.
func TestDevexWeightsResetOnInstall(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := randomFeasibleLP(rng, 10, 24)
	sol, err := cloneProblem(p).SolveWithOptions(Options{Backend: SparseLU})
	if err != nil || sol.Status != Optimal || sol.Basis == nil {
		t.Fatalf("setup solve: err=%v status=%v", err, sol.Status)
	}

	s := newSimplex(p, Options{Backend: SparseLU, Devex: true})
	// Poison the framework as a failed earlier start strategy would leave it.
	s.devexW = make([]float64, s.ncols)
	for j := range s.devexW {
		s.devexW[j] = 1e6 * float64(j+1)
	}
	if !s.installBasis(sol.Basis) {
		t.Fatal("installBasis rejected a fresh optimal snapshot")
	}
	for j, w := range s.devexW {
		if w != 1 {
			t.Fatalf("devexW[%d] = %g after install, want 1", j, w)
		}
	}
}

// TestDualDevexWeightsResetOnWarmInstall mirrors the primal reset check for
// the dual reference framework: entering the dual phase through initWarmDual
// must start from all-ones weights, whatever a previous phase left behind.
func TestDualDevexWeightsResetOnWarmInstall(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := randomFeasibleLP(rng, 10, 24)
	sol, err := cloneProblem(p).SolveWithOptions(Options{Backend: SparseLU})
	if err != nil || sol.Status != Optimal || sol.Basis == nil {
		t.Fatalf("setup solve: err=%v status=%v", err, sol.Status)
	}

	s := newSimplex(p, Options{Backend: SparseLU})
	s.dualW = make([]float64, s.m)
	for i := range s.dualW {
		s.dualW[i] = 1e6 * float64(i+1)
	}
	if !s.initWarmDual(sol.Basis) {
		t.Fatal("initWarmDual rejected the problem's own optimal basis")
	}
	for i, w := range s.dualW {
		if w != 1 {
			t.Fatalf("dualW[%d] = %g after dual warm install, want 1", i, w)
		}
	}
}

// TestDevexSetBasisChainAgrees: re-solving through a chain of SetBasis
// installs with devex pricing on must match the devex-less outcomes — the
// end-to-end shape of the weight-reset guarantee.
func TestDevexSetBasisChainAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		p := randomFeasibleLP(rng, 10, 24)
		m1 := NewModelFromProblem(p)
		sol, err := m1.SolveWithOptions(Options{Backend: SparseLU, Devex: true})
		if err != nil || sol.Status != Optimal {
			t.Fatalf("trial %d: err=%v status=%v", trial, err, sol.Status)
		}
		snap := sol.Basis
		for step := 0; step < 4; step++ {
			v := rng.Intn(p.NumVariables())
			m1.SetBounds(v, 0, 1+4*rng.Float64())
			if step%2 == 1 {
				m1.SetBasis(snap) // jump back to the old snapshot mid-chain
			}
			warm, err := m1.SolveWithOptions(Options{Backend: SparseLU, Devex: true})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := m1.CopyProblem().SolveWithOptions(Options{Backend: SparseLU})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d step %d: status %v vs cold %v", trial, step, warm.Status, cold.Status)
			}
			if warm.Status == Optimal && !approxEq(warm.Objective, cold.Objective, 1e-6) {
				t.Fatalf("trial %d step %d: obj %.10g vs cold %.10g", trial, step, warm.Objective, cold.Objective)
			}
		}
	}
}

// TestDevexWithScalingAndStatuses: devex composes with equilibration and
// preserves infeasible/unbounded detection.
func TestDevexWithScalingAndStatuses(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable(1e5, 0, 1, "x")
	y := p.AddVariable(1, 0, 1e4, "y")
	p.AddConstraint([]int{x, y}, []float64{1e5, 1e-2}, LE, 1e5+50, "")
	sol, err := p.SolveWithOptions(Options{Devex: true, Scale: true})
	if err != nil {
		t.Fatal(err)
	}
	requireObj(t, sol, 109950) // x=0.9995 frees y to its full 1e4

	inf := NewProblem(Maximize)
	v := inf.AddVariable(1, 0, 10, "v")
	inf.AddConstraint([]int{v}, []float64{1}, GE, 20, "")
	s2, err := inf.SolveWithOptions(Options{Devex: true})
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, s2, Infeasible)

	unb := NewProblem(Maximize)
	u := unb.AddVariable(1, 0, Inf, "u")
	w := unb.AddVariable(0, 0, Inf, "w")
	unb.AddConstraint([]int{u, w}, []float64{1, -1}, LE, 1, "")
	s3, err := unb.SolveWithOptions(Options{Devex: true})
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, s3, Unbounded)
}
