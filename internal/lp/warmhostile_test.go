package lp_test

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/lp"
	"pop/internal/obs"
)

func approxEqF(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// hostileFixture builds a random feasible maximize LP as a Model, solves it
// once (storing a basis and its duals), and returns the model with an
// observer registry to read the hostile-drop counter from.
func hostileFixture(t *testing.T, seed int64) (*lp.Model, *obs.Observer) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := lp.NewModel(lp.Maximize)
	n := 60
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		x0[j] = rng.Float64() * 2
		m.AddVariable(rng.NormFloat64(), 0, 5, "")
	}
	for i := 0; i < 20; i++ {
		var idx []int
		var val []float64
		rhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				c := rng.Float64() * 3
				idx = append(idx, j)
				val = append(val, c)
				rhs += c * x0[j]
			}
		}
		if len(idx) > 0 {
			m.AddConstraint(idx, val, lp.LE, rhs+0.1, "")
		}
	}
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	sol, err := m.SolveWithOptions(lp.Options{Obs: o})
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("setup solve: err=%v status=%v", err, sol.Status)
	}
	if !m.HasBasis() {
		t.Fatal("optimal solve did not store a basis")
	}
	return m, o
}

func hostileDrops(o *obs.Observer) int64 {
	return o.Counter("pop_lp_warm_hostile_drops_total", "").Value()
}

// TestWarmHostileDropsOnGlobalRotation: a coefficient refresh that rotates
// the whole optimality picture — here every objective coefficient replaced
// at once, the shape of an equal-share denominator shift in the online
// engines — must trip the model's hostile-refresh sampler: the stale basis
// is dropped (cold re-solve, counter booked) and the outcome still matches
// a fresh build solved cold.
func TestWarmHostileDropsOnGlobalRotation(t *testing.T) {
	m, o := hostileFixture(t, 61)
	for j := 0; j < m.NumVariables(); j++ {
		m.SetObjectiveCoeff(j, 1000*float64(j+1))
	}
	sol, err := m.SolveWithOptions(lp.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if got := hostileDrops(o); got != 1 {
		t.Fatalf("hostile drops = %d, want 1", got)
	}
	if sol.WarmStarted {
		t.Fatal("solve warm-started from a basis the sampler should have dropped")
	}
	cold, err := m.CopyProblem().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != cold.Status {
		t.Fatalf("status %v vs cold %v", sol.Status, cold.Status)
	}
	if sol.Status == lp.Optimal && !approxEqF(sol.Objective, cold.Objective, 1e-6) {
		t.Fatalf("obj %.10g vs cold %.10g", sol.Objective, cold.Objective)
	}
}

// TestWarmHostileKeepsLocalDeltas: an ordinary local delta — one objective
// coefficient nudged — must NOT trip the sampler; the basis survives and the
// warm start goes through.
func TestWarmHostileKeepsLocalDeltas(t *testing.T) {
	m, o := hostileFixture(t, 67)
	m.SetObjectiveCoeff(3, 0.25)
	sol, err := m.SolveWithOptions(lp.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if got := hostileDrops(o); got != 0 {
		t.Fatalf("hostile drops = %d on a local delta, want 0", got)
	}
	if sol.Status == lp.Optimal && !sol.WarmStarted {
		t.Fatal("local coefficient delta lost its warm start")
	}
}

// TestWarmHostileDropsOnBroadRowChurn exercises the churn-volume signal:
// rewriting existing coefficients across a quarter or more of the rows must
// drop the basis even when the edits are too small to flip reduced-cost
// signs (the shape of broad per-member throughput churn in the pair
// layout). The fixture builds rows with known entries so every edit hits a
// stored coefficient — a fill-in would dirty the standardized form and
// route around the hostility check entirely.
func TestWarmHostileDropsOnBroadRowChurn(t *testing.T) {
	m := lp.NewModel(lp.Maximize)
	n, rows := 40, 24
	for j := 0; j < n; j++ {
		m.AddVariable(1+0.01*float64(j), 0, 3, "")
	}
	for i := 0; i < rows; i++ {
		idx := []int{i % n, (i + 7) % n, (i + 19) % n}
		val := []float64{1, 2, 1.5}
		m.AddConstraint(idx, val, lp.LE, 10, "")
	}
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	sol, err := m.SolveWithOptions(lp.Options{Obs: o})
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("setup solve: err=%v status=%v", err, sol.Status)
	}
	// Nudge one stored entry in half the rows: 12 touched of 24 clears both
	// the >=8 floor and the quarter-of-rows bar, while the 1% perturbation
	// leaves the reduced-cost sample quiet.
	for i := 0; i < 12; i++ {
		m.SetCoeff(i, i%n, 1.01)
	}
	sol, err = m.SolveWithOptions(lp.Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if got := hostileDrops(o); got != 1 {
		t.Fatalf("hostile drops = %d, want 1", got)
	}
	if sol.WarmStarted {
		t.Fatal("solve warm-started from a basis the churn signal should have dropped")
	}
	cold, err := m.CopyProblem().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != cold.Status {
		t.Fatalf("status %v vs cold %v", sol.Status, cold.Status)
	}
	if sol.Status == lp.Optimal && !approxEqF(sol.Objective, cold.Objective, 1e-6) {
		t.Fatalf("obj %.10g vs cold %.10g", sol.Objective, cold.Objective)
	}
}

// TestWarmHostileNeverChangesOutcomes: over randomized mutate-and-resolve
// chains mixing local and global coefficient refreshes, the sampler's
// keep-or-drop decisions must be invisible in outcomes — every re-solve
// matches the fresh-build cold solve.
func TestWarmHostileNeverChangesOutcomes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m, o := hostileFixture(t, 100+seed)
		rng := rand.New(rand.NewSource(200 + seed))
		for step := 0; step < 6; step++ {
			if rng.Float64() < 0.3 {
				scale := 1 + 50*rng.Float64()
				for j := 0; j < m.NumVariables(); j++ {
					m.SetObjectiveCoeff(j, scale*rng.NormFloat64())
				}
			} else {
				m.SetObjectiveCoeff(rng.Intn(m.NumVariables()), rng.NormFloat64())
			}
			sol, err := m.SolveWithOptions(lp.Options{Obs: o})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := m.CopyProblem().Solve()
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != cold.Status {
				t.Fatalf("seed %d step %d: status %v vs cold %v", seed, step, sol.Status, cold.Status)
			}
			if sol.Status == lp.Optimal && !approxEqF(sol.Objective, cold.Objective, 1e-6) {
				t.Fatalf("seed %d step %d: obj %.10g vs cold %.10g",
					seed, step, sol.Objective, cold.Objective)
			}
		}
	}
}
