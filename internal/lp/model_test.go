package lp_test

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"pop/internal/lp"
	"pop/internal/lp/gen"
)

// mutateRound applies one round of random in-place deltas to the model.
// kind selects the delta class: 0 rhs-only, 1 bounds-only, 2 objective,
// 3 coefficients (with occasional fill-in), 4 structural block edits.
func mutateRound(rng *rand.Rand, m *lp.Model, kind int) {
	nv, nr := m.NumVariables(), m.NumConstraints()
	switch kind {
	case 0:
		for k := 0; k < 1+rng.Intn(4); k++ {
			r := rng.Intn(nr)
			m.SetRHS(r, m.RHS(r)*(0.7+0.6*rng.Float64()))
		}
	case 1:
		for k := 0; k < 1+rng.Intn(4); k++ {
			v := rng.Intn(nv)
			lb, ub := m.Bounds(v)
			if !math.IsInf(ub, 1) {
				ub *= 0.6 + 0.8*rng.Float64()
				if ub < lb {
					ub = lb
				}
			}
			m.SetBounds(v, lb, ub)
		}
	case 2:
		for k := 0; k < 1+rng.Intn(4); k++ {
			m.SetObjectiveCoeff(rng.Intn(nv), rng.NormFloat64())
		}
	case 3:
		for k := 0; k < 1+rng.Intn(6); k++ {
			row, v := rng.Intn(nr), rng.Intn(nv)
			// Mostly perturbations of whatever is there; occasionally an
			// explicit fill-in or zero-out.
			m.SetCoeff(row, v, rng.Float64()*2)
		}
	case 4:
		switch {
		case rng.Intn(2) == 0 && nv > 8:
			at := rng.Intn(nv - 2)
			m.RemoveVariables(at, 1+rng.Intn(2))
		case nr > 4:
			m.RemoveConstraints(rng.Intn(nr-1), 1)
		}
		// And grow back: a fresh variable wired into a fresh constraint.
		v := m.InsertVariables(rng.Intn(m.NumVariables()+1), 1, rng.NormFloat64(), 0, 3)
		m.InsertConstraint(rng.Intn(m.NumConstraints()+1),
			[]int{v, rng.Intn(m.NumVariables())}, []float64{1, 1}, lp.LE, 2+rng.Float64(), "")
	}
}

// TestModelMutateResolveMatchesFreshBuild is the mutation-equivalence
// acceptance suite: over randomized delta chains on te/cluster/lb-shaped
// instances, mutate-then-resolve must match a fresh cold build+solve of the
// same state — status and objective to 1e-6 — every round, while the warm
// and dual fast paths actually engage.
func TestModelMutateResolveMatchesFreshBuild(t *testing.T) {
	chains, rounds := 4, 6
	if testing.Short() {
		chains, rounds = 2, 4
	}
	builders := map[string]func(int64) *lp.Problem{
		"te":      func(seed int64) *lp.Problem { return gen.TE(gen.Small, seed) },
		"cluster": func(seed int64) *lp.Problem { return gen.Cluster(gen.Small, seed) },
		"lb":      func(seed int64) *lp.Problem { return gen.LB(gen.Small, seed) },
	}
	warmStarts, dualSolves := 0, 0
	for family, build := range builders {
		t.Run(family, func(t *testing.T) {
			for chain := 0; chain < chains; chain++ {
				rng := rand.New(rand.NewSource(int64(100*chain + 7)))
				m := lp.NewModelFromProblem(build(int64(chain + 1)))
				if _, err := m.Solve(); err != nil {
					t.Fatal(err)
				}
				for round := 0; round < rounds; round++ {
					mutateRound(rng, m, rng.Intn(5))
					got, err := m.Solve()
					if err != nil {
						t.Fatal(err)
					}
					want, err := m.CopyProblem().Solve()
					if err != nil {
						t.Fatal(err)
					}
					if got.Status != want.Status {
						t.Fatalf("chain %d round %d: mutate status %v != rebuild %v",
							chain, round, got.Status, want.Status)
					}
					if want.Status == lp.Optimal {
						if d := math.Abs(got.Objective - want.Objective); d > 1e-6*(1+math.Abs(want.Objective)) {
							t.Fatalf("chain %d round %d: mutate objective %.12g != rebuild %.12g",
								chain, round, got.Objective, want.Objective)
						}
						if err := m.CheckFeasible(got.X, 1e-6); err != nil {
							t.Fatalf("chain %d round %d: mutated-model solution infeasible: %v",
								chain, round, err)
						}
					}
					if got.WarmStarted {
						warmStarts++
						if got.DualPivots > 0 || got.Iterations == 0 {
							dualSolves++
						}
					}
				}
			}
		})
	}
	if warmStarts == 0 {
		t.Fatal("no mutated re-solve ever warm-started; the incremental path is dead")
	}
	t.Logf("warm re-solves: %d (dual-path: %d)", warmStarts, dualSolves)
}

// TestModelRHSOnlyChainsStayOnDualPath: pure load-shift chains — the
// production regime — must ride the dual simplex, not fall back cold.
func TestModelRHSOnlyChainsStayOnDualPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := lp.NewModelFromProblem(gen.Cluster(gen.Small, 3))
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	warm := 0
	for round := 0; round < 8; round++ {
		mutateRound(rng, m, 0)
		got, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.CopyProblem().Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("round %d: status %v != rebuild %v", round, got.Status, want.Status)
		}
		if want.Status == lp.Optimal {
			if d := math.Abs(got.Objective - want.Objective); d > 1e-6*(1+math.Abs(want.Objective)) {
				t.Fatalf("round %d: objective %.12g != rebuild %.12g", round, got.Objective, want.Objective)
			}
		}
		if got.WarmStarted {
			warm++
		}
	}
	if warm < 4 {
		t.Fatalf("only %d of 8 rhs-only re-solves warm-started", warm)
	}
}

// TestModelBlockOpsMatchManualRebuild pins the block-edit semantics:
// removing a variable/constraint block must leave exactly the LP a fresh
// build without that block produces.
func TestModelBlockOpsMatchManualRebuild(t *testing.T) {
	build := func(withMiddle bool) *lp.Problem {
		p := lp.NewProblem(lp.Maximize)
		a := p.AddVariable(1, 0, 4, "a")
		var b int
		if withMiddle {
			b = p.AddVariable(2, 0, 1, "b")
		}
		c := p.AddVariable(1, 0, 3, "c")
		if withMiddle {
			p.AddConstraint([]int{a, b}, []float64{1, 1}, lp.LE, 2, "r0")
		}
		p.AddConstraint([]int{a, c}, []float64{1, 2}, lp.LE, 5, "r1")
		return p
	}
	m := lp.NewModelFromProblem(build(true))
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	m.RemoveConstraints(0, 1) // r0
	m.RemoveVariables(1, 1)   // b
	got, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := build(false).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("block removal: got %v %.12g, want %v %.12g",
			got.Status, got.Objective, want.Status, want.Objective)
	}

	// Insert a block back in the middle and cross-check against a fresh
	// model built in the final shape.
	v := m.InsertVariables(1, 1, 3, 0, 2)
	m.InsertConstraint(0, []int{0, v}, []float64{1, 1}, lp.LE, 3, "rx")
	got2, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want2, err := m.CopyProblem().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got2.Status != want2.Status || math.Abs(got2.Objective-want2.Objective) > 1e-9 {
		t.Fatalf("block insert: got %v %.12g, want %v %.12g",
			got2.Status, got2.Objective, want2.Status, want2.Objective)
	}
}

// TestModelBuilderCompatible: the same construction code against Problem
// and Model must produce the same solve.
func TestModelBuilderCompatible(t *testing.T) {
	construct := func(b lp.Builder) {
		x := b.AddVariable(3, 0, lp.Inf, "x")
		y := b.AddVariables(2, 1, 0, 2)
		b.AddConstraint([]int{x, y}, []float64{1, 1}, lp.LE, 4, "cap")
		b.AddConstraint([]int{x, y + 1}, []float64{2, 1}, lp.LE, 6, "cap2")
		b.SetObjectiveCoeff(y, 2)
		b.SetBounds(x, 0, 5)
	}
	p := lp.NewProblem(lp.Maximize)
	construct(p)
	m := lp.NewModel(lp.Maximize)
	construct(m)
	ps, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != ms.Status || math.Abs(ps.Objective-ms.Objective) > 1e-12 {
		t.Fatalf("Problem %v %.12g vs Model %v %.12g", ps.Status, ps.Objective, ms.Status, ms.Objective)
	}
}

// TestModelDualVsPrimalWarmAgreement: the same rhs-perturbed re-solve taken
// through the dual path and the primal warm path must land on the same
// answer.
func TestModelDualVsPrimalWarmAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		base := gen.LB(gen.Small, int64(trial+1))
		sol, err := base.Clone().Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			continue
		}
		mdl := lp.NewModelFromProblem(base)
		nr := mdl.NumConstraints()
		for k := 0; k < 5; k++ {
			r := rng.Intn(nr)
			f := 0.8 + 0.4*rng.Float64()
			mdl.SetRHS(r, mdl.RHS(r)*f)
		}
		pertP := mdl.CopyProblem()
		dual, err := pertP.Clone().SolveWithOptions(lp.Options{WarmBasis: sol.Basis, Dual: true})
		if err != nil {
			t.Fatal(err)
		}
		primal, err := pertP.Clone().SolveWithOptions(lp.Options{WarmBasis: sol.Basis})
		if err != nil {
			t.Fatal(err)
		}
		if dual.Status != primal.Status {
			t.Fatalf("trial %d: dual %v != primal warm %v", trial, dual.Status, primal.Status)
		}
		if dual.Status == lp.Optimal {
			if d := math.Abs(dual.Objective - primal.Objective); d > 1e-6*(1+math.Abs(primal.Objective)) {
				t.Fatalf("trial %d: dual %.12g != primal warm %.12g", trial, dual.Objective, primal.Objective)
			}
		}
	}
}

// TestModelSetCoeffsMatchesPerEntry: the bulk row setter must be
// observationally identical to the per-entry loop — including merged
// duplicates, fill-ins, and zero-outs — and classify dirt the same way.
func TestModelSetCoeffsMatchesPerEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	build := func() *lp.Model {
		m := lp.NewModel(lp.Maximize)
		m.AddVariables(6, 1, 0, 3)
		// A row with a duplicate index (merged semantics) and a gap (var 4
		// absent, so setting it is a fill-in).
		m.AddConstraint([]int{0, 1, 2, 1, 5}, []float64{1, 2, 3, 4, 5}, lp.LE, 10, "r0")
		m.AddConstraint([]int{0, 3}, []float64{1, 1}, lp.GE, 1, "r1")
		return m
	}
	for trial := 0; trial < 30; trial++ {
		idx := []int{0, 1, 2, 4, 5}
		val := make([]float64, len(idx))
		for t := range val {
			switch rng.Intn(3) {
			case 0:
				val[t] = 0
			default:
				val[t] = rng.NormFloat64() * 3
			}
		}
		bulk, loop := build(), build()
		if _, err := bulk.Solve(); err != nil {
			t.Fatal(err)
		}
		if _, err := loop.Solve(); err != nil {
			t.Fatal(err)
		}
		bulk.SetCoeffs(0, idx, val)
		for t2, v := range idx {
			loop.SetCoeff(0, v, val[t2])
		}
		bs, err := bulk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		ls, err := loop.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if bs.Status != ls.Status || math.Abs(bs.Objective-ls.Objective) > 1e-9 {
			t.Fatalf("trial %d: bulk %v %.12g != per-entry %v %.12g",
				trial, bs.Status, bs.Objective, ls.Status, ls.Objective)
		}
		ws, err := bulk.CopyProblem().Solve()
		if err != nil {
			t.Fatal(err)
		}
		if bs.Status != ws.Status || (bs.Status == lp.Optimal && math.Abs(bs.Objective-ws.Objective) > 1e-9) {
			t.Fatalf("trial %d: bulk %v %.12g != rebuild %v %.12g",
				trial, bs.Status, bs.Objective, ws.Status, ws.Objective)
		}
	}
	// Unchanged values must not dirty the model out of the dual path.
	m := build()
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	m.SetCoeffs(1, []int{0, 3}, []float64{1, 1})
	m.SetRHS(1, 0.5)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.WarmStarted {
		t.Fatal("no-op SetCoeffs plus rhs change should have stayed on the warm/dual path")
	}

	// Wide rows take the one-pass path (len > 32); it must agree with the
	// per-entry loop there too, fill-ins and zero-outs included.
	const wide = 48
	buildWide := func() *lp.Model {
		m := lp.NewModel(lp.Minimize)
		m.AddVariables(wide, 1, 0, 2)
		idx := make([]int, 0, wide)
		val := make([]float64, 0, wide)
		for v := 0; v < wide; v += 2 { // gaps: odd vars are fill-ins later
			idx = append(idx, v)
			val = append(val, 1)
		}
		m.AddConstraint(idx, val, lp.GE, 5, "widerow")
		return m
	}
	for trial := 0; trial < 10; trial++ {
		idx := make([]int, wide)
		val := make([]float64, wide)
		for v := 0; v < wide; v++ {
			idx[v] = v
			val[v] = float64(rng.Intn(4)) // includes zero-outs
		}
		bulk, loop := buildWide(), buildWide()
		if _, err := bulk.Solve(); err != nil {
			t.Fatal(err)
		}
		if _, err := loop.Solve(); err != nil {
			t.Fatal(err)
		}
		bulk.SetCoeffs(0, idx, val)
		for t2, v := range idx {
			loop.SetCoeff(0, v, val[t2])
		}
		bs, err := bulk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		ls, err := loop.Solve()
		if err != nil {
			t.Fatal(err)
		}
		ws, err := bulk.CopyProblem().Solve()
		if err != nil {
			t.Fatal(err)
		}
		if bs.Status != ls.Status || bs.Status != ws.Status {
			t.Fatalf("wide trial %d: statuses diverge: bulk %v per-entry %v rebuild %v",
				trial, bs.Status, ls.Status, ws.Status)
		}
		if bs.Status == lp.Optimal &&
			(math.Abs(bs.Objective-ls.Objective) > 1e-9 || math.Abs(bs.Objective-ws.Objective) > 1e-9) {
			t.Fatalf("wide trial %d: objectives diverge: bulk %.12g per-entry %.12g rebuild %.12g",
				trial, bs.Objective, ls.Objective, ws.Objective)
		}
	}
}

// TestModelSetBasisSearchTreePattern exercises the snapshot/restore cycle a
// branch-and-bound search runs: snapshot the basis after a solve, tighten
// bounds and re-solve down one path, then jump back by re-installing the
// snapshot under a sibling's bounds. Every re-solve must match a cold
// rebuild, and the bound-only regime must keep the dual path engaged.
func TestModelSetBasisSearchTreePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := lp.NewModelFromProblem(gen.LB(gen.Small, 5))
	root, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if root.Status != lp.Optimal {
		t.Fatalf("root status %v", root.Status)
	}
	snapshot := m.Basis()
	if snapshot == nil {
		t.Fatal("no basis stored after an optimal solve")
	}

	check := func(tag string) *lp.Solution {
		t.Helper()
		got, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.CopyProblem().Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("%s: status %v != rebuild %v", tag, got.Status, want.Status)
		}
		if want.Status == lp.Optimal && math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
			t.Fatalf("%s: objective %.12g != rebuild %.12g", tag, got.Objective, want.Objective)
		}
		return got
	}

	// Plunge: tighten a few variables to an integer floor/ceiling, dual
	// re-solving from the model's own basis chain.
	nv := m.NumVariables()
	dualSeen := false
	touched := []int{}
	for step := 0; step < 4; step++ {
		v := rng.Intn(nv)
		m.SetBounds(v, 0, 0)
		touched = append(touched, v)
		sol := check("plunge")
		if sol.Status == lp.Optimal && sol.DualPivots > 0 {
			dualSeen = true
		}
	}

	// Jump: restore base bounds, install the root snapshot, and tighten a
	// different variable — the best-bound-jump shape.
	for _, v := range touched {
		m.SetBounds(v, 0, 1)
	}
	m.SetBasis(snapshot)
	if got := m.Basis(); got == nil || len(got.VarStatus) != len(snapshot.VarStatus) ||
		!slices.Equal(got.VarStatus, snapshot.VarStatus) || !slices.Equal(got.SlackStatus, snapshot.SlackStatus) {
		t.Fatal("Basis() does not return the installed snapshot's statuses")
	}
	m.SetBounds((touched[0]+1)%nv, 1, 1)
	jump := check("jump")
	if jump.Status == lp.Optimal && !jump.WarmStarted {
		t.Fatal("best-bound jump did not warm-start from the installed snapshot")
	}
	if !dualSeen && jump.DualPivots == 0 {
		t.Fatal("dual simplex never engaged across a bound-only search pattern")
	}

	// SetBasis(nil) behaves as ForgetBasis: the next solve runs cold.
	m.SetBasis(nil)
	cold := check("forgotten")
	if cold.WarmStarted {
		t.Fatal("solve after SetBasis(nil) still warm-started")
	}
}
