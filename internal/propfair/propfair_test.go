package propfair

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/core"
)

// randomProblem builds a feasible instance with realistic GPU-like
// throughput ratios.
func randomProblem(n int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{
		T:   make([][]float64, n),
		Cap: []float64{float64(n) / 3, float64(n) / 3, float64(n) / 3},
	}
	for j := 0; j < n; j++ {
		base := 0.5 + rng.Float64()
		p.T[j] = []float64{base, base * (1.5 + rng.Float64()), base * (3 + 2*rng.Float64())}
	}
	return p
}

func TestFrankWolfeTwoJobsClosedForm(t *testing.T) {
	// Two identical jobs, one resource with capacity 1: symmetric optimum
	// A = [[0.5], [0.5]], objective 2·log(0.5·T).
	p := &Problem{
		T:   [][]float64{{2}, {2}},
		Cap: []float64{1},
	}
	sol, err := p.SolveFrankWolfe(FWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Log(1) // 0.5 * 2 = 1 throughput each
	if math.Abs(sol.Objective-want) > 5e-3 {
		t.Fatalf("objective = %g, want %g", sol.Objective, want)
	}
	if math.Abs(sol.A[0][0]-0.5) > 0.02 {
		t.Fatalf("A = %v, want ~[[0.5],[0.5]]", sol.A)
	}
}

func TestFrankWolfeAsymmetricWeights(t *testing.T) {
	// One resource, two jobs, weights 2:1 → Eisenberg-Gale optimum splits
	// capacity 2/3 : 1/3.
	p := &Problem{
		T:   [][]float64{{1}, {1}},
		W:   []float64{2, 1},
		Cap: []float64{1},
	}
	sol, err := p.SolveFrankWolfe(FWOptions{MaxIters: 400, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.A[0][0]-2.0/3) > 0.02 || math.Abs(sol.A[1][0]-1.0/3) > 0.02 {
		t.Fatalf("A = %v, want [2/3, 1/3]", sol.A)
	}
}

func TestFrankWolfeFeasible(t *testing.T) {
	p := randomProblem(30, 1)
	sol, err := p.SolveFrankWolfe(FWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyFeasible(sol.A, 1e-6); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(sol.Objective, -1) {
		t.Fatal("zero throughput at FW solution")
	}
}

func TestPriceDiscoveryAgreesWithFrankWolfe(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := randomProblem(24, seed)
		fw, err := p.SolveFrankWolfe(FWOptions{MaxIters: 300, Tol: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		pd, err := p.SolvePriceDiscovery(PDOptions{MaxIters: 1500})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.VerifyFeasible(pd.A, 1e-6); err != nil {
			t.Fatal(err)
		}
		// With the exact per-job best response, PD converges tightly; the
		// two solvers must agree to within a small absolute gap (both stop
		// at finite tolerance, so either may lead slightly).
		if math.Abs(pd.Objective-fw.Objective) > 0.05 {
			t.Fatalf("seed %d: PD %g vs FW %g", seed, pd.Objective, fw.Objective)
		}
	}
}

func TestPOPNearOptimal(t *testing.T) {
	p := randomProblem(60, 7)
	exact, err := p.SolveFrankWolfe(FWOptions{MaxIters: 300, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		sol, err := SolvePOP(p, FrankWolfe, core.Options{K: k, Seed: 3, Parallel: true},
			FWOptions{MaxIters: 300, Tol: 1e-6}, PDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.VerifyFeasible(sol.A, 1e-6); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Paper reports an extremely small optimality gap (7e-5) at large n;
		// at n=60 allow a small per-job slack.
		if sol.Objective < exact.Objective-0.1*60 {
			t.Fatalf("k=%d: POP obj %g too far from exact %g", k, sol.Objective, exact.Objective)
		}
		if sol.Objective > exact.Objective+1e-3*(1+math.Abs(exact.Objective)) {
			t.Fatalf("k=%d: POP obj %g above optimum %g", k, sol.Objective, exact.Objective)
		}
	}
}

func TestObjectiveInfForZeroThroughput(t *testing.T) {
	p := &Problem{T: [][]float64{{1}}, Cap: []float64{1}}
	A := [][]float64{{0}}
	if !math.IsInf(p.Objective(A), -1) {
		t.Fatal("expected -Inf for zero allocation")
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{}
	if err := p.Validate(); err == nil {
		t.Fatal("empty problem should fail validation")
	}
	p2 := &Problem{T: [][]float64{{1, 2}}, Cap: []float64{1}}
	if err := p2.Validate(); err == nil {
		t.Fatal("ragged T should fail validation")
	}
	p3 := &Problem{T: [][]float64{{1}}, Cap: []float64{1}, W: []float64{1, 2}}
	if err := p3.Validate(); err == nil {
		t.Fatal("wrong W length should fail validation")
	}
}

func TestScaledJobs(t *testing.T) {
	// Jobs occupying multiple units must consume proportionally more
	// capacity.
	p := &Problem{
		T:   [][]float64{{1}, {1}},
		Z:   []float64{3, 1},
		Cap: []float64{2},
	}
	sol, err := p.SolveFrankWolfe(FWOptions{MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyFeasible(sol.A, 1e-6); err != nil {
		t.Fatal(err)
	}
	used := 3*sol.A[0][0] + sol.A[1][0]
	if used > 2+1e-6 {
		t.Fatalf("capacity violated: %g", used)
	}
}
