// Package propfair solves the proportional-fairness allocation problem from
// §4.1 of the POP paper:
//
//	maximize   Σ_j w_j · log(Σ_i T_ji · A_ji)
//	subject to Σ_i A_ji ≤ 1            for every job j
//	           Σ_j z_j · A_ji ≤ cap_i  for every resource type i
//	           A ≥ 0
//
// The paper solves this with a custom price-discovery solver built on
// PyTorch (Agrawal et al.); this package substitutes two from-scratch
// solvers in the same spirit:
//
//   - SolvePriceDiscovery: dual (price) subgradient ascent. Given prices on
//     the capacity constraints, each job's best response has a closed form
//     (buy time on the resource with the best throughput-per-dollar, an
//     Eisenberg-Gale-style demand); prices rise on over-demanded resources.
//     Ergodic averaging of the primal iterates plus a final feasibility
//     projection yields the allocation.
//
//   - SolveFrankWolfe: conditional gradient over the feasible polytope,
//     reusing the package lp simplex for the linear subproblems. Provably
//     convergent (O(1/t)); used as the reference in tests and as the
//     default solver for the Figure-7 experiments.
package propfair

import (
	"fmt"
	"math"

	"pop/internal/lp"
)

// Problem is a proportional-fairness instance over n jobs and r resource
// types.
type Problem struct {
	// T[j][i] is the throughput of job j on resource type i.
	T [][]float64
	// W[j] is the fair-share weight of job j (1 if nil).
	W []float64
	// Z[j] is the number of resource units job j occupies when scheduled
	// (z_j in the paper; 1 if nil).
	Z []float64
	// Cap[i] is the number of units of resource type i.
	Cap []float64
}

func (p *Problem) dims() (n, r int) { return len(p.T), len(p.Cap) }

func (p *Problem) weight(j int) float64 {
	if p.W == nil {
		return 1
	}
	return p.W[j]
}

func (p *Problem) scale(j int) float64 {
	if p.Z == nil {
		return 1
	}
	return p.Z[j]
}

// Validate checks dimensions.
func (p *Problem) Validate() error {
	n, r := p.dims()
	if n == 0 || r == 0 {
		return fmt.Errorf("propfair: empty problem")
	}
	for j, row := range p.T {
		if len(row) != r {
			return fmt.Errorf("propfair: T[%d] has %d types, want %d", j, len(row), r)
		}
	}
	if p.W != nil && len(p.W) != n {
		return fmt.Errorf("propfair: len(W)=%d, want %d", len(p.W), n)
	}
	if p.Z != nil && len(p.Z) != n {
		return fmt.Errorf("propfair: len(Z)=%d, want %d", len(p.Z), n)
	}
	return nil
}

// Solution is an allocation with its objective value Σ w_j log(thr_j).
type Solution struct {
	A          [][]float64
	Objective  float64
	Iterations int
}

// Objective evaluates Σ_j w_j log(throughput_j) for an allocation.
func (p *Problem) Objective(A [][]float64) float64 {
	obj := 0.0
	for j, row := range A {
		thr := 0.0
		for i, a := range row {
			thr += p.T[j][i] * a
		}
		if thr <= 0 {
			return math.Inf(-1)
		}
		obj += p.weight(j) * math.Log(thr)
	}
	return obj
}

// Throughputs returns the per-job effective throughput under A.
func (p *Problem) Throughputs(A [][]float64) []float64 {
	out := make([]float64, len(A))
	for j, row := range A {
		for i, a := range row {
			out[j] += p.T[j][i] * a
		}
	}
	return out
}

// VerifyFeasible checks the two constraint families within tol.
func (p *Problem) VerifyFeasible(A [][]float64, tol float64) error {
	n, r := p.dims()
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < r; i++ {
			if A[j][i] < -tol {
				return fmt.Errorf("propfair: A[%d][%d] = %g < 0", j, i, A[j][i])
			}
			sum += A[j][i]
		}
		if sum > 1+tol {
			return fmt.Errorf("propfair: job %d time share %g > 1", j, sum)
		}
	}
	for i := 0; i < r; i++ {
		used := 0.0
		for j := 0; j < n; j++ {
			used += p.scale(j) * A[j][i]
		}
		if used > p.Cap[i]+tol*(1+p.Cap[i]) {
			return fmt.Errorf("propfair: resource %d used %g > cap %g", i, used, p.Cap[i])
		}
	}
	return nil
}

// feasibleStart builds a strictly positive interior point: each job gets a
// share of every type proportional to capacity, scaled to respect both
// constraint families.
func (p *Problem) feasibleStart() [][]float64 {
	n, r := p.dims()
	totalZ := 0.0
	for j := 0; j < n; j++ {
		totalZ += p.scale(j)
	}
	A := make([][]float64, n)
	for j := 0; j < n; j++ {
		A[j] = make([]float64, r)
		rowSum := 0.0
		for i := 0; i < r; i++ {
			A[j][i] = p.Cap[i] / totalZ * 0.999
			rowSum += A[j][i]
		}
		if rowSum > 1 {
			for i := 0; i < r; i++ {
				A[j][i] /= rowSum * 1.001
			}
		}
	}
	return A
}

// FWOptions tune SolveFrankWolfe.
type FWOptions struct {
	// MaxIters bounds conditional-gradient steps; 0 means 120.
	MaxIters int
	// Tol stops when the Frank-Wolfe gap (an upper bound on suboptimality)
	// falls below Tol·(1+|obj|); 0 means 1e-4.
	Tol float64
	// LP propagates options to the linear subproblem solver.
	LP lp.Options
}

// SolveFrankWolfe runs conditional gradient descent on the (concave)
// objective over the feasible polytope.
func (p *Problem) SolveFrankWolfe(opts FWOptions) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 120
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-4
	}
	n, r := p.dims()
	A := p.feasibleStart()

	// The LP feasible region is fixed; build it once and swap objectives.
	lpProb := lp.NewProblem(lp.Maximize)
	varOf := make([][]int, n)
	for j := 0; j < n; j++ {
		varOf[j] = make([]int, r)
		for i := 0; i < r; i++ {
			varOf[j][i] = lpProb.AddVariable(0, 0, 1, "")
		}
	}
	for j := 0; j < n; j++ {
		coef := make([]float64, r)
		for i := range coef {
			coef[i] = 1
		}
		lpProb.AddConstraint(varOf[j], coef, lp.LE, 1, "time")
	}
	for i := 0; i < r; i++ {
		idx := make([]int, n)
		coef := make([]float64, n)
		for j := 0; j < n; j++ {
			idx[j] = varOf[j][i]
			coef[j] = p.scale(j)
		}
		lpProb.AddConstraint(idx, coef, lp.LE, p.Cap[i], "cap")
	}

	thr := p.Throughputs(A)
	grad := func(j, i int) float64 {
		if thr[j] <= 0 {
			return 0 // job with all-zero throughput row: excluded
		}
		return p.weight(j) * p.T[j][i] / thr[j]
	}
	trial := make([][]float64, n)
	for j := range trial {
		trial[j] = make([]float64, r)
	}

	iters := 0
	for t := 0; t < opts.MaxIters; t++ {
		iters++
		for j := 0; j < n; j++ {
			for i := 0; i < r; i++ {
				lpProb.SetObjectiveCoeff(varOf[j][i], grad(j, i))
			}
		}
		sol, err := lpProb.SolveWithOptions(opts.LP)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("propfair: FW subproblem %v", sol.Status)
		}
		// FW gap = ∇f·(S-A) upper-bounds the suboptimality; stop when small.
		gap := 0.0
		for j := 0; j < n; j++ {
			for i := 0; i < r; i++ {
				gap += grad(j, i) * (sol.X[varOf[j][i]] - A[j][i])
			}
		}
		obj := p.Objective(A)
		if gap <= opts.Tol*(1+math.Abs(obj)) {
			break
		}
		// Backtracking step: the log objective explodes at the boundary, so
		// never take gamma = 1, and halve until the objective improves.
		gamma := 2 / float64(t+3)
		accepted := false
		for try := 0; try < 40; try++ {
			for j := 0; j < n; j++ {
				for i := 0; i < r; i++ {
					trial[j][i] = A[j][i] + gamma*(sol.X[varOf[j][i]]-A[j][i])
				}
			}
			if p.Objective(trial) > obj {
				accepted = true
				break
			}
			gamma /= 2
		}
		if !accepted {
			break // no improving step along the FW direction: converged
		}
		for j := 0; j < n; j++ {
			copy(A[j], trial[j])
		}
		thr = p.Throughputs(A)
	}
	return &Solution{A: A, Objective: p.Objective(A), Iterations: iters}, nil
}

// PDOptions tune SolvePriceDiscovery.
type PDOptions struct {
	// MaxIters bounds price updates; 0 means 400.
	MaxIters int
	// Step is the initial subgradient step size; 0 means 1.
	Step float64
	// Seed is reserved for randomized variants (unused; kept for API
	// stability).
	Seed int64
}

// SolvePriceDiscovery runs dual subgradient ascent with ergodic primal
// averaging and a final feasibility projection.
func (p *Problem) SolvePriceDiscovery(opts PDOptions) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 400
	}
	if opts.Step == 0 {
		opts.Step = 1
	}
	n, r := p.dims()

	// Initial prices: uniform positive, scaled by aggregate demand pressure.
	price := make([]float64, r)
	totalZ := 0.0
	for j := 0; j < n; j++ {
		totalZ += p.scale(j)
	}
	for i := range price {
		price[i] = totalZ / (p.Cap[i] * float64(r))
	}

	avg := make([][]float64, n)
	for j := range avg {
		avg[j] = make([]float64, r)
	}
	sumW := 0.0
	demand := make([]float64, r)

	cur := make([][]float64, n)
	for j := range cur {
		cur[j] = make([]float64, r)
	}
	for t := 1; t <= opts.MaxIters; t++ {
		for i := range demand {
			demand[i] = 0
		}
		// Exact best response per job under current prices.
		for j := 0; j < n; j++ {
			p.bestResponse(j, price, cur[j])
			zi := p.scale(j)
			for i := 0; i < r; i++ {
				demand[i] += zi * cur[j][i]
			}
		}

		// Tail average: only iterates from the second half contribute, with
		// uniform weight. Early iterates reflect badly mis-priced markets
		// and would otherwise dominate a decreasing-step ergodic average.
		if t > opts.MaxIters/2 {
			sumW += 1
			for j := 0; j < n; j++ {
				for i := 0; i < r; i++ {
					avg[j][i] += cur[j][i]
				}
			}
		}

		// Price update: rise on over-demand, fall (floored) otherwise, with
		// a diminishing step.
		alpha := opts.Step / math.Sqrt(float64(t))
		for i := 0; i < r; i++ {
			price[i] = math.Max(1e-9, price[i]+alpha*(demand[i]-p.Cap[i])/math.Max(1, p.Cap[i]))
		}
	}

	A := make([][]float64, n)
	for j := range A {
		A[j] = make([]float64, r)
		for i := range A[j] {
			A[j][i] = avg[j][i] / sumW
		}
	}
	p.projectFeasible(A)
	return &Solution{A: A, Objective: p.Objective(A), Iterations: opts.MaxIters}, nil
}

// bestResponse solves job j's subproblem exactly for the given prices:
//
//	maximize  w·log(Σ_i t_i·x_i) − Σ_i c_i·x_i,  c_i = z_j·price_i
//	s.t.      Σ_i x_i ≤ 1, x ≥ 0
//
// By the KKT conditions the optimum is supported on at most two resources
// (active resources must tie in t_i/(c_i+μ) for the common multiplier μ), so
// enumerating all singleton and pair supports is exact. The result is
// written into out.
func (p *Problem) bestResponse(j int, price []float64, out []float64) {
	r := len(price)
	w := p.weight(j)
	z := p.scale(j)
	t := p.T[j]

	for i := range out {
		out[i] = 0
	}
	bestVal := 0.0 // x = 0 yields -Inf utility; any positive x beats it, so
	// track value explicitly starting from the first candidate.
	bestVal = math.Inf(-1)
	var bestI, bestI2 = -1, -1
	var bestX, bestX2 float64

	value := func(u, cost float64) float64 {
		if u <= 0 {
			return math.Inf(-1)
		}
		return w*math.Log(u) - cost
	}

	// Singletons: x_i = min(1, w/c_i).
	for i := 0; i < r; i++ {
		if t[i] <= 0 {
			continue
		}
		ci := z * price[i]
		x := 1.0
		if ci > 0 {
			x = math.Min(1, w/ci)
		}
		if v := value(t[i]*x, ci*x); v > bestVal {
			bestVal, bestI, bestI2, bestX, bestX2 = v, i, -1, x, 0
		}
	}
	// Pairs on the time boundary: x_a + x_b = 1. The stationary utility is
	// u* = w(t_a - t_b)/(c_a - c_b); clamp the mixing weight to [0,1].
	for a := 0; a < r; a++ {
		if t[a] <= 0 {
			continue
		}
		for b := a + 1; b < r; b++ {
			if t[b] <= 0 {
				continue
			}
			ca, cb := z*price[a], z*price[b]
			dt, dc := t[a]-t[b], ca-cb
			if dt == 0 || dc == 0 {
				continue // degenerate: singleton candidates cover it
			}
			u := w * dt / dc
			xa := (u - t[b]) / dt
			if xa <= 0 || xa >= 1 {
				continue // boundary cases are the singleton candidates
			}
			xb := 1 - xa
			uu := t[a]*xa + t[b]*xb
			if v := value(uu, ca*xa+cb*xb); v > bestVal {
				bestVal, bestI, bestI2, bestX, bestX2 = v, a, b, xa, xb
			}
		}
	}
	if bestI >= 0 && bestVal > math.Inf(-1) {
		out[bestI] = bestX
		if bestI2 >= 0 {
			out[bestI2] = bestX2
		}
	}
}

// projectFeasible scales rows/columns down so both constraint families hold.
func (p *Problem) projectFeasible(A [][]float64) {
	n, r := p.dims()
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < r; i++ {
			sum += A[j][i]
		}
		if sum > 1 {
			for i := 0; i < r; i++ {
				A[j][i] /= sum
			}
		}
	}
	for i := 0; i < r; i++ {
		used := 0.0
		for j := 0; j < n; j++ {
			used += p.scale(j) * A[j][i]
		}
		if used > p.Cap[i] {
			f := p.Cap[i] / used
			for j := 0; j < n; j++ {
				A[j][i] *= f
			}
		}
	}
}
