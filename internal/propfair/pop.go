package propfair

import (
	"pop/internal/core"
)

// Method selects the underlying solver for POP sub-problems.
type Method int8

const (
	// FrankWolfe uses the conditional-gradient solver (reference quality).
	FrankWolfe Method = iota
	// PriceDiscovery uses the dual subgradient solver (cheapest).
	PriceDiscovery
)

// SolvePOP applies the POP procedure to a proportional-fairness instance:
// jobs are partitioned randomly into k sub-problems, each sub-problem
// receives 1/k of every resource type's capacity, sub-problems are solved
// independently (in parallel when opts.Parallel), and the per-job
// allocations are concatenated. Because the objective is separable per job
// (Σ_j w_j log thr_j), the coalesced objective is the sum of sub-objectives;
// this is the regime where POP equals one step of primal decomposition
// (§5.2 of the paper).
func SolvePOP(p *Problem, method Method, opts core.Options, fw FWOptions, pd PDOptions) (*Solution, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	n, r := p.dims()

	groups := core.Partition(n, k, opts.Strategy, opts.Seed, func(j int) float64 { return p.scale(j) })

	subCap := make([]float64, r)
	for i := range subCap {
		subCap[i] = p.Cap[i] / float64(k)
	}

	subs := make([]*Problem, k)
	for part, g := range groups {
		sp := &Problem{
			T:   make([][]float64, len(g)),
			Cap: subCap,
		}
		if p.W != nil {
			sp.W = make([]float64, len(g))
		}
		if p.Z != nil {
			sp.Z = make([]float64, len(g))
		}
		for t, j := range g {
			sp.T[t] = p.T[j]
			if p.W != nil {
				sp.W[t] = p.W[j]
			}
			if p.Z != nil {
				sp.Z[t] = p.Z[j]
			}
		}
		subs[part] = sp
	}

	subSols := make([]*Solution, k)
	err := core.ParallelMap(k, opts.Parallel, func(part int) error {
		var sol *Solution
		var err error
		switch method {
		case PriceDiscovery:
			sol, err = subs[part].SolvePriceDiscovery(pd)
		default:
			sol, err = subs[part].SolveFrankWolfe(fw)
		}
		subSols[part] = sol
		return err
	})
	if err != nil {
		return nil, err
	}

	A := make([][]float64, n)
	iters := 0
	for part, g := range groups {
		iters += subSols[part].Iterations
		for t, j := range g {
			A[j] = subSols[part].A[t]
		}
	}
	return &Solution{A: A, Objective: p.Objective(A), Iterations: iters}, nil
}
