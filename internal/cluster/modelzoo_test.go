package cluster

import (
	"testing"

	"pop/internal/core"
	"pop/internal/lp"
)

func TestModelZooStructure(t *testing.T) {
	for _, m := range ModelZoo() {
		if m.Base <= 0 || m.P100Speedup <= 1 || m.V100Speedup <= m.P100Speedup {
			t.Fatalf("%s: implausible speedups %+v", m.Name, m)
		}
		if m.MemFrac <= 0 || m.MemFrac >= 1 {
			t.Fatalf("%s: memfrac %g", m.Name, m.MemFrac)
		}
		if len(m.ScaleChoices) == 0 {
			t.Fatalf("%s: no scale choices", m.Name)
		}
	}
}

func TestGenerateJobsFromZoo(t *testing.T) {
	jobs := GenerateJobsFromZoo(60, 3, false)
	if len(jobs) != 60 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	sawMulti := false
	for _, j := range jobs {
		if j.Throughput[2] <= j.Throughput[1] || j.Throughput[1] <= 0 {
			t.Fatalf("job %d: nonmonotone throughputs %v", j.ID, j.Throughput)
		}
		if j.Scale > 1 {
			sawMulti = true
		}
	}
	if !sawMulti {
		t.Fatal("zoo never produced a multi-GPU job")
	}
	for _, j := range GenerateJobsFromZoo(40, 5, true) {
		if j.Scale != 1 {
			t.Fatalf("singleGPUOnly violated: scale %g", j.Scale)
		}
	}
}

func TestZooHeterogeneityMatters(t *testing.T) {
	// Heterogeneity-aware max-min should place RL-like jobs (tiny V100
	// gain) on slower GPUs and transformers on V100s. Check aggregate: the
	// allocation's mean normalized throughput must beat a homogeneous
	// random assignment proxy — here, simply assert the exact LP finds a
	// feasible allocation with min ratio > 0 and that jobs with the largest
	// V100 speedup get at least as much V100 share as those with the least.
	jobs := GenerateJobsFromZoo(30, 11, true)
	c := NewCluster(10, 10, 10)
	a, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Identify extreme jobs by V100/K80 ratio.
	hi, lo := 0, 0
	for idx, j := range jobs {
		r := j.Throughput[2] / j.Throughput[0]
		if r > jobs[hi].Throughput[2]/jobs[hi].Throughput[0] {
			hi = idx
		}
		if r < jobs[lo].Throughput[2]/jobs[lo].Throughput[0] {
			lo = idx
		}
	}
	v100Share := func(idx int) float64 {
		total := 0.0
		for _, v := range a.X[idx] {
			total += v
		}
		if total == 0 {
			return 0
		}
		return a.X[idx][2] / total
	}
	if v100Share(hi) < v100Share(lo)-1e-6 {
		t.Fatalf("V100-hungry job got share %g, V100-indifferent job %g",
			v100Share(hi), v100Share(lo))
	}
}

func TestZooUnderPOPSpaceSharing(t *testing.T) {
	jobs := GenerateJobsFromZoo(24, 17, true)
	c := NewCluster(6, 6, 6)
	a, err := SolvePOPSpaceSharing(jobs, c, core.Options{K: 2, Seed: 1, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
		t.Fatal(err)
	}
}
