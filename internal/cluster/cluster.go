// Package cluster implements the GPU cluster scheduling case study from
// §4.1 of the POP paper, modelled on Gavel (Narayanan et al., OSDI 20):
// heterogeneity-aware allocation of jobs to GPU types by time fraction,
// under three policies — max-min fairness (optionally with space sharing),
// proportional fairness, and minimize-makespan — plus the Gandiva-style
// greedy heuristic baseline and POP adapters for every policy.
//
// Throughput data comes from a synthetic oracle with realistic relative
// speeds across GPU generations (the paper's measured throughputs are not
// redistributable); what matters for reproducing the paper's claims is the
// heterogeneity structure — jobs prefer different GPU types by different
// ratios — which the oracle preserves.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Cluster describes the available GPUs by type. Counts are float64 so POP
// sub-clusters can hold fractional shares while keeping the coalesced
// allocation feasible.
type Cluster struct {
	TypeNames []string
	NumGPUs   []float64
}

// NewCluster builds a cluster with the canonical Gavel GPU types.
func NewCluster(k80, p100, v100 float64) Cluster {
	return Cluster{
		TypeNames: []string{"K80", "P100", "V100"},
		NumGPUs:   []float64{k80, p100, v100},
	}
}

// NumTypes returns the number of GPU types.
func (c Cluster) NumTypes() int { return len(c.NumGPUs) }

// TotalGPUs sums GPUs over all types.
func (c Cluster) TotalGPUs() float64 {
	s := 0.0
	for _, v := range c.NumGPUs {
		s += v
	}
	return s
}

// Split returns the sub-cluster with 1/k of every GPU type (POP's resource
// partitioning for cluster scheduling: each sub-cluster has an equal number
// of resources of each type).
func (c Cluster) Split(k int) Cluster {
	out := Cluster{TypeNames: c.TypeNames, NumGPUs: make([]float64, len(c.NumGPUs))}
	for i, v := range c.NumGPUs {
		out.NumGPUs[i] = v / float64(k)
	}
	return out
}

// Job is a runnable training job (a POP client).
type Job struct {
	ID int
	// Throughput[i] is steps/sec on GPU type i when running alone.
	Throughput []float64
	// Weight is the fair-share weight w_j.
	Weight float64
	// Scale is z_j, the number of GPUs the job occupies when scheduled.
	Scale float64
	// NumSteps is the remaining iterations (drives makespan and JCT).
	NumSteps float64
	// MemFrac in (0,1) is the job's GPU memory footprint fraction; it
	// drives space-sharing interference.
	MemFrac float64
	// Priority is an optional attribute for priority-weighted policies.
	Priority float64
}

// GenerateJobs synthesizes n jobs with Gavel-like heterogeneity: each job
// model has a base K80 throughput and distinct P100/V100 speedups, so
// different jobs prefer different GPU types by different ratios.
// multiGPUFrac of jobs request 2 or 4 GPUs (set 0 for space-sharing
// experiments, which pair only single-GPU jobs).
func GenerateJobs(n int, seed int64, multiGPUFrac float64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for j := 0; j < n; j++ {
		base := math.Exp(rng.NormFloat64() * 0.5) // lognormal base steps/sec
		p100 := base * (1.6 + 1.4*rng.Float64())
		v100 := base * (2.5 + 3.5*rng.Float64())
		scale := 1.0
		if rng.Float64() < multiGPUFrac {
			if rng.Float64() < 0.5 {
				scale = 2
			} else {
				scale = 4
			}
		}
		jobs[j] = Job{
			ID:         j,
			Throughput: []float64{base, p100, v100},
			Weight:     1,
			Scale:      scale,
			NumSteps:   math.Exp(rng.NormFloat64()*0.8) * 40000,
			MemFrac:    0.15 + 0.7*rng.Float64(),
			Priority:   1,
		}
	}
	return jobs
}

// EqualShare computes the paper's A_equal: the time fraction each job would
// receive on each type under an equal share of the cluster, used to
// normalize effective throughputs in the max-min fairness objective. Every
// job receives NumGPUs_i/Σ_j z_j time share of type i, clamped so the
// per-job total stays within 1.
func EqualShare(jobs []Job, c Cluster) [][]float64 {
	totalZ := 0.0
	for _, j := range jobs {
		totalZ += j.Scale
	}
	if totalZ == 0 {
		totalZ = 1
	}
	r := c.NumTypes()
	out := make([][]float64, len(jobs))
	for idx := range jobs {
		row := make([]float64, r)
		sum := 0.0
		for i := 0; i < r; i++ {
			row[i] = c.NumGPUs[i] / totalZ
			sum += row[i]
		}
		if sum > 1 {
			for i := range row {
				row[i] /= sum
			}
		}
		out[idx] = row
	}
	return out
}

// EffectiveThroughput computes Σ_i T_ji·A_ji for a solo allocation row.
func EffectiveThroughput(j Job, row []float64) float64 {
	thr := 0.0
	for i, a := range row {
		thr += j.Throughput[i] * a
	}
	return thr
}

// Allocation is the result of a scheduling policy. Exactly one of X (solo
// time fractions) or Pairs/PairX (space sharing) is populated; EffThr is
// always populated.
type Allocation struct {
	// X[j][i] is the time fraction job j spends alone on type i.
	X [][]float64
	// Pairs lists job pairs (J2 = -1 for a solo slot); PairX[q][i] is the
	// time fraction pair q runs on type i.
	Pairs []Pair
	PairX [][]float64
	// EffThr[j] is the effective throughput of job j under this allocation.
	EffThr []float64
	// LPVariables is the variable count of the LP(s) solved (summed across
	// POP sub-problems); 0 for heuristics.
	LPVariables int
}

// Pair identifies two jobs sharing a GPU (J2 == -1 means J1 runs alone).
type Pair struct {
	J1, J2 int
}

// NormalizedRatios returns each job's effective throughput normalized by
// its weight, equal-share throughput, and scale — the quantity the max-min
// fairness policy maximizes the minimum of.
func NormalizedRatios(jobs []Job, c Cluster, a *Allocation) []float64 {
	eq := EqualShare(jobs, c)
	out := make([]float64, len(jobs))
	for idx, j := range jobs {
		eqThr := EffectiveThroughput(j, eq[idx])
		if eqThr <= 0 {
			continue
		}
		out[idx] = a.EffThr[idx] / (j.Weight * eqThr * j.Scale)
	}
	return out
}

// MinMean summarizes a slice as (min, mean).
func MinMean(xs []float64) (min, mean float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min = math.Inf(1)
	for _, v := range xs {
		if v < min {
			min = v
		}
		mean += v
	}
	return min, mean / float64(len(xs))
}

// Makespan returns max_j NumSteps_j / EffThr_j; +Inf if any job is starved.
func Makespan(jobs []Job, a *Allocation) float64 {
	ms := 0.0
	for idx, j := range jobs {
		if a.EffThr[idx] <= 0 {
			return math.Inf(1)
		}
		ms = math.Max(ms, j.NumSteps/a.EffThr[idx])
	}
	return ms
}

// VerifyFeasible checks per-job time budgets and per-type GPU capacities.
func VerifyFeasible(jobs []Job, c Cluster, a *Allocation, tol float64) error {
	r := c.NumTypes()
	used := make([]float64, r)
	timeOf := make([]float64, len(jobs))
	switch {
	case a.X != nil:
		for idx, j := range jobs {
			for i := 0; i < r; i++ {
				v := a.X[idx][i]
				if v < -tol {
					return fmt.Errorf("cluster: negative fraction job %d type %d: %g", j.ID, i, v)
				}
				timeOf[idx] += v
				used[i] += v * j.Scale
			}
		}
	case a.PairX != nil:
		index := indexByID(jobs)
		for q, pr := range a.Pairs {
			for i := 0; i < r; i++ {
				v := a.PairX[q][i]
				if v < -tol {
					return fmt.Errorf("cluster: negative fraction pair %v type %d: %g", pr, i, v)
				}
				used[i] += v // each pair occupies one GPU
				timeOf[index[pr.J1]] += v
				if pr.J2 >= 0 {
					timeOf[index[pr.J2]] += v
				}
			}
		}
	default:
		return fmt.Errorf("cluster: allocation has neither X nor PairX")
	}
	for idx, tv := range timeOf {
		if tv > 1+tol {
			return fmt.Errorf("cluster: job %d time %g > 1", jobs[idx].ID, tv)
		}
	}
	for i := 0; i < r; i++ {
		if used[i] > c.NumGPUs[i]+tol*(1+c.NumGPUs[i]) {
			return fmt.Errorf("cluster: type %d used %g > %g", i, used[i], c.NumGPUs[i])
		}
	}
	return nil
}

func indexByID(jobs []Job) map[int]int {
	m := make(map[int]int, len(jobs))
	for idx, j := range jobs {
		m[j.ID] = idx
	}
	return m
}

// Interference returns the space-sharing throughput retention factor for
// two jobs sharing a GPU: close to 1 for memory-light pairs, degrading as
// combined footprints approach and exceed device memory. Mirrors the shape
// of Gavel/Gandiva's measured colocation penalties.
func Interference(a, b Job) float64 {
	combined := a.MemFrac + b.MemFrac
	kappa := 1 - 0.55*combined
	if combined > 1 {
		kappa -= 0.2 * (combined - 1)
	}
	return math.Max(0.25, kappa)
}
