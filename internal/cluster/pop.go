package cluster

import (
	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/propfair"
)

// PolicyFunc solves a scheduling policy on one (sub-)instance.
type PolicyFunc func(jobs []Job, c Cluster, opts lp.Options) (*Allocation, error)

// SolvePOP applies POP to any solo-allocation policy: jobs are partitioned
// randomly into k groups (weighted by Scale so GPU demand balances),
// the cluster is split into k equal sub-clusters with 1/k of every GPU
// type, each sub-problem is solved with the unchanged policy formulation,
// and allocations are concatenated. The coalesced allocation is feasible by
// construction since sub-cluster capacities sum to the original.
func SolvePOP(jobs []Job, c Cluster, policy PolicyFunc, opts core.Options, lpOpts lp.Options) (*Allocation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	groups := core.Partition(len(jobs), k, opts.Strategy, opts.Seed,
		func(i int) float64 { return jobs[i].Scale })
	k = len(groups) // Partition clamps k when there are fewer jobs than sub-problems
	subCluster := c.Split(k)
	subJobs := core.Gather(jobs, groups)

	subAllocs := make([]*Allocation, k)
	err := core.ParallelMap(k, opts.Parallel, func(p int) error {
		a, err := policy(subJobs[p], subCluster, lpOpts)
		subAllocs[p] = a
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeAllocations(jobs, groups, subAllocs), nil
}

// SolvePOPSpaceSharing applies POP to the pair-variable space-sharing
// policy. Pairs only form within a sub-problem, which is where the paper's
// §5.3 cubic speedup comes from: sub-problems have (n/k)² pair variables
// instead of n².
func SolvePOPSpaceSharing(jobs []Job, c Cluster, opts core.Options, lpOpts lp.Options) (*Allocation, error) {
	return SolvePOP(jobs, c, func(js []Job, sc Cluster, lo lp.Options) (*Allocation, error) {
		return MaxMinFairnessSpaceSharing(js, sc, lo)
	}, opts, lpOpts)
}

// SolvePOPPropFairness applies POP to the proportional-fairness policy with
// the price-discovery solver in each sub-problem.
func SolvePOPPropFairness(jobs []Job, c Cluster, opts core.Options, pd propfair.PDOptions) (*Allocation, error) {
	return SolvePOP(jobs, c, func(js []Job, sc Cluster, _ lp.Options) (*Allocation, error) {
		return ProportionalFairness(js, sc, pd)
	}, opts, lp.Options{})
}

// mergeAllocations coalesces per-partition allocations onto the original
// job order (POP's reduce step). Solo and pair allocations are both
// supported; partitions must agree on the representation.
func mergeAllocations(jobs []Job, groups [][]int, subs []*Allocation) *Allocation {
	out := &Allocation{EffThr: make([]float64, len(jobs))}
	solo := subs[0] != nil && subs[0].X != nil
	if solo {
		out.X = make([][]float64, len(jobs))
	}
	for p, g := range groups {
		sa := subs[p]
		out.LPVariables += sa.LPVariables
		for t, j := range g {
			out.EffThr[j] = sa.EffThr[t]
			if solo {
				out.X[j] = sa.X[t]
			}
		}
		if !solo {
			out.Pairs = append(out.Pairs, sa.Pairs...)
			out.PairX = append(out.PairX, sa.PairX...)
		}
	}
	return out
}
