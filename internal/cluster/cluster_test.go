package cluster

import (
	"math"
	"testing"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/propfair"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestGenerateJobsShape(t *testing.T) {
	jobs := GenerateJobs(50, 1, 0.2)
	if len(jobs) != 50 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	for _, j := range jobs {
		if len(j.Throughput) != 3 {
			t.Fatalf("job %d has %d types", j.ID, len(j.Throughput))
		}
		// V100 strictly faster than K80 for every model.
		if j.Throughput[2] <= j.Throughput[0] {
			t.Fatalf("job %d: V100 %g <= K80 %g", j.ID, j.Throughput[2], j.Throughput[0])
		}
		if j.Scale != 1 && j.Scale != 2 && j.Scale != 4 {
			t.Fatalf("job %d scale %g", j.ID, j.Scale)
		}
		if j.MemFrac <= 0 || j.MemFrac >= 1 {
			t.Fatalf("job %d memfrac %g", j.ID, j.MemFrac)
		}
	}
}

func TestMaxMinFairnessBasics(t *testing.T) {
	jobs := GenerateJobs(24, 2, 0.1)
	c := NewCluster(8, 8, 8)
	a, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	min, mean := MinMean(NormalizedRatios(jobs, c, a))
	if min <= 0 {
		t.Fatalf("min normalized throughput %g", min)
	}
	// Tolerance: when every job gets the same ratio (the equal-share
	// optimum), the summed mean can round one ulp below the min.
	if mean < min-1e-12*(1+math.Abs(min)) {
		t.Fatalf("mean %g < min %g", mean, min)
	}
}

func TestMaxMinFairnessEqualJobsSymmetric(t *testing.T) {
	// Identical jobs must receive identical normalized throughputs.
	base := GenerateJobs(1, 3, 0)[0]
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = base
		jobs[i].ID = i
	}
	c := NewCluster(2, 2, 2)
	a, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratios := NormalizedRatios(jobs, c, a)
	for i := 1; i < len(ratios); i++ {
		if !approxEq(ratios[i], ratios[0], 1e-5) {
			t.Fatalf("asymmetric ratios: %v", ratios)
		}
	}
}

func TestWeightsShiftAllocation(t *testing.T) {
	jobs := GenerateJobs(8, 5, 0)
	c := NewCluster(2, 2, 2)
	a1, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Doubling one job's weight must not increase its normalized (weighted)
	// share; the LP equalizes the weighted ratios.
	jobs2 := append([]Job(nil), jobs...)
	jobs2[0].Weight = 4
	a2, err := MaxMinFairness(jobs2, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted fairness gives the heavy job more raw throughput.
	if a2.EffThr[0] <= a1.EffThr[0]*1.05 {
		t.Fatalf("weight had no effect: %g vs %g", a2.EffThr[0], a1.EffThr[0])
	}
}

func TestMinMakespan(t *testing.T) {
	jobs := GenerateJobs(20, 7, 0.1)
	c := NewCluster(6, 6, 6)
	a, err := MinMakespan(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	ms := Makespan(jobs, a)
	if math.IsInf(ms, 1) || ms <= 0 {
		t.Fatalf("makespan = %g", ms)
	}
	// The makespan LP must beat (or tie) max-min fairness on makespan.
	b, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Makespan(jobs, a) > Makespan(jobs, b)+1e-6*Makespan(jobs, b) {
		t.Fatalf("makespan policy %g worse than fairness %g", Makespan(jobs, a), Makespan(jobs, b))
	}
}

func TestSpaceSharingBeatsSolo(t *testing.T) {
	// With more jobs than GPUs, space sharing strictly helps the min ratio.
	jobs := GenerateJobs(18, 11, 0)
	c := NewCluster(3, 3, 3)
	solo, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := MaxMinFairnessSpaceSharing(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, shared, 1e-6); err != nil {
		t.Fatal(err)
	}
	minSolo, _ := MinMean(NormalizedRatios(jobs, c, solo))
	minShared, _ := MinMean(NormalizedRatios(jobs, c, shared))
	if minShared < minSolo-1e-6 {
		t.Fatalf("space sharing hurt: %g < %g", minShared, minSolo)
	}
}

func TestGandivaFeasibleButWorse(t *testing.T) {
	jobs := GenerateJobs(18, 13, 0)
	c := NewCluster(3, 3, 3)
	lpAlloc, err := MaxMinFairnessSpaceSharing(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gandiva := Gandiva(jobs, c, 1)
	if err := VerifyFeasible(jobs, c, gandiva, 1e-6); err != nil {
		t.Fatal(err)
	}
	minLP, _ := MinMean(NormalizedRatios(jobs, c, lpAlloc))
	minG, _ := MinMean(NormalizedRatios(jobs, c, gandiva))
	if minG > minLP+1e-6 {
		t.Fatalf("heuristic beat the LP on its own objective: %g > %g", minG, minLP)
	}
}

func TestPOPMaxMinNearExact(t *testing.T) {
	jobs := GenerateJobs(48, 17, 0)
	c := NewCluster(16, 16, 16)
	exact, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		a, err := SolvePOP(jobs, c, MaxMinFairness, core.Options{K: k, Seed: 5, Parallel: true}, lp.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		minE, meanE := MinMean(NormalizedRatios(jobs, c, exact))
		minP, meanP := MinMean(NormalizedRatios(jobs, c, a))
		if minP > minE+1e-6 {
			t.Fatalf("k=%d: POP min %g beat exact %g", k, minP, minE)
		}
		if meanP < 0.6*meanE {
			t.Fatalf("k=%d: POP mean %g far below exact %g", k, meanP, meanE)
		}
		_ = meanE
	}
}

func TestPOPSpaceSharingVariableReduction(t *testing.T) {
	jobs := GenerateJobs(32, 19, 0)
	c := NewCluster(8, 8, 8)
	exact, err := MaxMinFairnessSpaceSharing(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolvePOPSpaceSharing(jobs, c, core.Options{K: 4, Seed: 5, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Pair variables shrink ~quadratically: 4 sub-problems of (n/4)² pairs
	// ≈ n²/4 total versus n².
	if a.LPVariables*3 > exact.LPVariables {
		t.Fatalf("expected ≥3x variable reduction: POP %d vs exact %d",
			a.LPVariables, exact.LPVariables)
	}
}

func TestPOPPropFairness(t *testing.T) {
	jobs := GenerateJobs(40, 23, 0.1)
	c := NewCluster(12, 12, 12)
	exact, err := ProportionalFairness(jobs, c, propfair.PDOptions{MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolvePOPPropFairness(jobs, c, core.Options{K: 4, Seed: 7, Parallel: true}, propfair.PDOptions{MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-5); err != nil {
		t.Fatal(err)
	}
	// Sum-of-logs gap per job should be small (paper: 7e-5 overall at scale;
	// here modest n so allow a loose bound).
	if LogUtility(jobs, a) < LogUtility(jobs, exact)-0.1*float64(len(jobs)) {
		t.Fatalf("POP log utility %g too far below exact %g",
			LogUtility(jobs, a), LogUtility(jobs, exact))
	}
}

func TestMakespanPOP(t *testing.T) {
	jobs := GenerateJobs(30, 29, 0.1)
	c := NewCluster(10, 10, 10)
	exact, err := MinMakespan(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolvePOP(jobs, c, MinMakespan, core.Options{K: 4, Seed: 9}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	msE, msP := Makespan(jobs, exact), Makespan(jobs, a)
	if msP < msE-1e-6*msE {
		t.Fatalf("POP makespan %g beat exact %g", msP, msE)
	}
	// Paper: nearly identical makespan; allow 30% at this small scale.
	if msP > 1.3*msE {
		t.Fatalf("POP makespan %g far above exact %g", msP, msE)
	}
}

func TestEqualShareClamped(t *testing.T) {
	jobs := GenerateJobs(2, 31, 0)
	c := NewCluster(10, 10, 10) // plenty of GPUs: shares clamp at 1 total
	eq := EqualShare(jobs, c)
	for _, row := range eq {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 1+1e-9 {
			t.Fatalf("equal share row sums to %g", sum)
		}
	}
}

func TestInterferenceBounds(t *testing.T) {
	light := Job{MemFrac: 0.1}
	heavy := Job{MemFrac: 0.9}
	if k := Interference(light, light); k < 0.8 {
		t.Fatalf("light pair retention %g too low", k)
	}
	if k := Interference(heavy, heavy); k > 0.5 {
		t.Fatalf("heavy pair retention %g too high", k)
	}
	if k := Interference(heavy, heavy); k < 0.25-1e-12 {
		t.Fatalf("retention %g below floor", k)
	}
}

func TestEmptyJobs(t *testing.T) {
	c := NewCluster(1, 1, 1)
	a, err := MaxMinFairness(nil, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EffThr) != 0 {
		t.Fatal("expected empty allocation")
	}
}
