package cluster

import (
	"testing"

	"pop/internal/core"
	"pop/internal/lp"
)

func TestWaterfillDominatesSingleLevel(t *testing.T) {
	jobs := GenerateJobs(16, 3, 0)
	c := NewCluster(4, 4, 4)
	single, err := MaxMinFairness(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := MaxMinFairnessWaterfill(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, wf, 1e-6); err != nil {
		t.Fatal(err)
	}
	minS, meanS := MinMean(NormalizedRatios(jobs, c, single))
	minW, meanW := MinMean(NormalizedRatios(jobs, c, wf))
	// Same worst-off job value (both are max-min optimal at level 1)...
	if minW < minS-1e-5 {
		t.Fatalf("waterfill min %g below single-level %g", minW, minS)
	}
	// ...but the lexicographic refinement cannot do worse on the mean.
	if meanW < meanS-1e-5 {
		t.Fatalf("waterfill mean %g below single-level %g", meanW, meanS)
	}
}

func TestWaterfillImprovesSlackJobs(t *testing.T) {
	// Construct a case where the single-level LP may leave capacity on the
	// table: two "fast" jobs and one job that can only use one GPU type.
	base := GenerateJobs(3, 9, 0)
	jobs := []Job{base[0], base[1], base[2]}
	jobs[2].Throughput = []float64{0.5, 0, 0} // K80 only
	for i := range jobs {
		jobs[i].ID = i
	}
	c := NewCluster(2, 2, 2)
	wf, err := MaxMinFairnessWaterfill(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, wf, 1e-6); err != nil {
		t.Fatal(err)
	}
	// The slack jobs (0, 1) must do at least as well as the constrained one.
	ratios := NormalizedRatios(jobs, c, wf)
	if ratios[0] < ratios[2]-1e-6 || ratios[1] < ratios[2]-1e-6 {
		t.Fatalf("waterfill left slack jobs below the bottleneck: %v", ratios)
	}
}

func TestWaterfillUnderPOP(t *testing.T) {
	jobs := GenerateJobs(24, 13, 0)
	c := NewCluster(8, 8, 8)
	a, err := SolvePOP(jobs, c, MaxMinFairnessWaterfill, core.Options{K: 2, Seed: 1, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(jobs, c, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	min, _ := MinMean(NormalizedRatios(jobs, c, a))
	if min <= 0 {
		t.Fatalf("POP waterfill starved a job: min %g", min)
	}
}

func TestWaterfillEmpty(t *testing.T) {
	c := NewCluster(1, 1, 1)
	a, err := MaxMinFairnessWaterfill(nil, c, lp.Options{})
	if err != nil || len(a.EffThr) != 0 {
		t.Fatalf("err=%v len=%d", err, len(a.EffThr))
	}
}
