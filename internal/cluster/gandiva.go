package cluster

import (
	"math/rand"
	"sort"
)

// Gandiva is the greedy space-sharing heuristic the paper compares against
// in Figure 2 (after Xiao et al., OSDI 18). It assigns each job full-time to
// the fastest GPU type with free capacity; when GPUs run out, it packs the
// remaining jobs onto already-assigned single-GPU jobs, choosing for each
// the partner that maximizes the interference retention factor.
//
// The heuristic runs in O(n log n + n·m) time and needs no solver, but its
// allocation quality trails the space-sharing LP — the trade-off Figure 2
// plots.
func Gandiva(jobs []Job, c Cluster, seed int64) *Allocation {
	r := c.NumTypes()
	free := append([]float64(nil), c.NumGPUs...)
	rng := rand.New(rand.NewSource(seed))

	// Process jobs in random order (Gandiva is an online packer; random
	// order avoids systematic bias in the comparison).
	order := rng.Perm(len(jobs))

	type slot struct {
		pair Pair
		typ  int
	}
	var slots []slot
	// soloOnType[i] lists indices into slots of single-GPU solo slots on
	// type i, available for packing.
	var packable []int

	var unplaced []int
	for _, idx := range order {
		j := jobs[idx]
		// Fastest type with enough free GPUs.
		best, bestThr := -1, 0.0
		for i := 0; i < r; i++ {
			if free[i] >= j.Scale && j.Throughput[i] > bestThr {
				best, bestThr = i, j.Throughput[i]
			}
		}
		if best < 0 {
			unplaced = append(unplaced, idx)
			continue
		}
		free[best] -= j.Scale
		slots = append(slots, slot{Pair{J1: j.ID, J2: -1}, best})
		if j.Scale == 1 {
			packable = append(packable, len(slots)-1)
		}
	}

	// Pack leftovers onto the compatible solo slot with the best retention.
	// Heaviest-memory jobs go first: they are the hardest to place.
	sort.SliceStable(unplaced, func(a, b int) bool {
		return jobs[unplaced[a]].MemFrac > jobs[unplaced[b]].MemFrac
	})
	index := indexByID(jobs)
	for _, idx := range unplaced {
		j := jobs[idx]
		if j.Scale != 1 {
			continue // multi-GPU jobs cannot space-share; they starve
		}
		bestSlot, bestKappa := -1, 0.0
		for si, s := range packable {
			if s < 0 {
				continue
			}
			host := jobs[index[slots[s].pair.J1]]
			if k := Interference(host, j); k > bestKappa {
				bestKappa = k
				bestSlot = si
			}
		}
		if bestSlot < 0 {
			continue
		}
		s := packable[bestSlot]
		slots[s].pair.J2 = j.ID
		packable[bestSlot] = -1 // a GPU hosts at most two jobs
	}

	// Materialize: each slot runs full-time on its chosen type.
	a := &Allocation{
		Pairs:  make([]Pair, len(slots)),
		PairX:  make([][]float64, len(slots)),
		EffThr: make([]float64, len(jobs)),
	}
	for si, s := range slots {
		a.Pairs[si] = s.pair
		row := make([]float64, r)
		row[s.typ] = 1
		a.PairX[si] = row
	}
	FillPairEffThr(jobs, a)
	return a
}
