package cluster

import (
	"fmt"
	"math"

	"pop/internal/lp"
)

// MaxMinFairnessWaterfill computes the lexicographic max-min fair
// allocation by iterated water filling, the procedure Gavel itself uses:
// solve the single-level max-min LP, freeze every job whose normalized
// throughput is pinned at the optimum t* (detected by re-solving with that
// job's ratio fixed), and re-optimize the remainder until all jobs are
// frozen.
//
// The POP paper's formulation (§4.1) is the single-level LP
// (MaxMinFairness); this extension exists because downstream users of a
// fairness policy usually want the lexicographic refinement — jobs that
// could get more without hurting anyone should get more. It is also a
// stress test for the LP substrate: each round re-solves with tightened
// equality rows.
func MaxMinFairnessWaterfill(jobs []Job, c Cluster, opts lp.Options) (*Allocation, error) {
	if len(jobs) == 0 {
		return emptyAllocation(), nil
	}
	r := c.NumTypes()
	eq := EqualShare(jobs, c)
	frozen := make([]bool, len(jobs))
	floor := make([]float64, len(jobs)) // per-job normalized-ratio lower bound
	maxRounds := len(jobs)

	var lastAlloc *Allocation
	lpVars := 0
	for round := 0; round < maxRounds; round++ {
		// Epigraph LP over unfrozen jobs; frozen jobs keep ratio ≥ floor.
		p := lp.NewProblem(lp.Maximize)
		varOf := soloVars(p, len(jobs), r)
		tv := p.AddVariable(1, math.Inf(-1), lp.Inf, "t")
		addSoloCaps(p, jobs, c, varOf)
		for idx, j := range jobs {
			eqThr := EffectiveThroughput(j, eq[idx])
			if eqThr <= 0 {
				continue
			}
			idxs := make([]int, 0, r+1)
			coefs := make([]float64, 0, r+1)
			for i := 0; i < r; i++ {
				idxs = append(idxs, varOf[idx][i])
				coefs = append(coefs, j.Throughput[i]/(j.Weight*eqThr*j.Scale))
			}
			if frozen[idx] {
				p.AddConstraint(idxs, coefs, lp.GE, floor[idx], "frozen")
			} else {
				idxs = append(idxs, tv)
				coefs = append(coefs, -1)
				p.AddConstraint(idxs, coefs, lp.GE, 0, "fair")
			}
		}
		sol, err := p.SolveWithOptions(opts)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("cluster: waterfill round %d: %v", round, sol.Status)
		}
		lpVars += p.NumVariables()
		lastAlloc = soloAllocation(jobs, r, varOf, sol, lpVars)
		tStar := sol.Objective

		// Freeze jobs pinned at t*: a job is pinned if raising everyone
		// else cannot raise it, detected conservatively by freezing all
		// unfrozen jobs whose ratio sits at t* within tolerance. At least
		// one job is always pinned at the optimum, so the loop terminates.
		ratios := NormalizedRatios(jobs, c, lastAlloc)
		progressed := false
		for idx := range jobs {
			if frozen[idx] {
				continue
			}
			if ratios[idx] <= tStar*(1+1e-6)+1e-9 {
				frozen[idx] = true
				floor[idx] = tStar
				progressed = true
			}
		}
		if !progressed {
			break
		}
		done := true
		for idx := range jobs {
			if !frozen[idx] {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return lastAlloc, nil
}
