package cluster

import (
	"fmt"
	"math"

	"pop/internal/lp"
	"pop/internal/propfair"
)

// MaxMinFairness solves the heterogeneity-aware Least Attained Service
// policy from §4.1 (no space sharing):
//
//	maximize  min_j  (1/w_j) · thr(j,A) / (thr(j,A_equal) · z_j)
//	s.t.      0 ≤ A_ji ≤ 1,  Σ_i A_ji ≤ 1,  Σ_j A_ji·z_j ≤ NumGPUs_i
//
// expressed as an epigraph LP with a free auxiliary t.
func MaxMinFairness(jobs []Job, c Cluster, opts lp.Options) (*Allocation, error) {
	if len(jobs) == 0 {
		return emptyAllocation(), nil
	}
	r := c.NumTypes()
	eq := EqualShare(jobs, c)

	p := lp.NewModel(lp.Maximize)
	varOf := soloVars(p, len(jobs), r)
	tv := p.AddVariable(1, math.Inf(-1), lp.Inf, "t")

	addSoloCaps(p, jobs, c, varOf)
	for idx, j := range jobs {
		eqThr := EffectiveThroughput(j, eq[idx])
		if eqThr <= 0 {
			continue
		}
		idxs := make([]int, 0, r+1)
		coefs := make([]float64, 0, r+1)
		for i := 0; i < r; i++ {
			idxs = append(idxs, varOf[idx][i])
			coefs = append(coefs, j.Throughput[i]/(j.Weight*eqThr*j.Scale))
		}
		idxs = append(idxs, tv)
		coefs = append(coefs, -1)
		p.AddConstraint(idxs, coefs, lp.GE, 0, "fair")
	}

	sol, err := p.SolveWithOptions(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("cluster: max-min LP %v", sol.Status)
	}
	return soloAllocation(jobs, r, varOf, sol, p.NumVariables()), nil
}

// MinMakespan solves the §4.1 makespan policy. Minimizing
// max_j num_steps_j / thr(j,A) equals maximizing θ = min_j thr(j,A)/steps_j,
// another epigraph LP; the resulting makespan is 1/θ*.
func MinMakespan(jobs []Job, c Cluster, opts lp.Options) (*Allocation, error) {
	if len(jobs) == 0 {
		return emptyAllocation(), nil
	}
	r := c.NumTypes()
	p := lp.NewModel(lp.Maximize)
	varOf := soloVars(p, len(jobs), r)
	tv := p.AddVariable(1, math.Inf(-1), lp.Inf, "theta")

	addSoloCaps(p, jobs, c, varOf)
	for idx, j := range jobs {
		if j.NumSteps <= 0 {
			continue
		}
		idxs := make([]int, 0, r+1)
		coefs := make([]float64, 0, r+1)
		for i := 0; i < r; i++ {
			idxs = append(idxs, varOf[idx][i])
			coefs = append(coefs, j.Throughput[i]/j.NumSteps)
		}
		idxs = append(idxs, tv)
		coefs = append(coefs, -1)
		p.AddConstraint(idxs, coefs, lp.GE, 0, "rate")
	}

	sol, err := p.SolveWithOptions(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("cluster: makespan LP %v", sol.Status)
	}
	return soloAllocation(jobs, r, varOf, sol, p.NumVariables()), nil
}

// ProportionalFairness solves the §4.1 sum-of-logs policy via the propfair
// price-discovery solver (the paper's custom-solver analogue).
func ProportionalFairness(jobs []Job, c Cluster, opts propfair.PDOptions) (*Allocation, error) {
	if len(jobs) == 0 {
		return emptyAllocation(), nil
	}
	prob := toPropfair(jobs, c)
	sol, err := prob.SolvePriceDiscovery(opts)
	if err != nil {
		return nil, err
	}
	return fromPropfair(jobs, sol), nil
}

// ProportionalFairnessFW is the Frank-Wolfe variant (reference quality,
// slower).
func ProportionalFairnessFW(jobs []Job, c Cluster, opts propfair.FWOptions) (*Allocation, error) {
	if len(jobs) == 0 {
		return emptyAllocation(), nil
	}
	prob := toPropfair(jobs, c)
	sol, err := prob.SolveFrankWolfe(opts)
	if err != nil {
		return nil, err
	}
	return fromPropfair(jobs, sol), nil
}

// LogUtility evaluates Σ_j w_j·log(thr_j) for an allocation — the
// proportional-fairness objective plotted in Figure 7.
func LogUtility(jobs []Job, a *Allocation) float64 {
	obj := 0.0
	for idx, j := range jobs {
		if a.EffThr[idx] <= 0 {
			return math.Inf(-1)
		}
		obj += j.Weight * math.Log(a.EffThr[idx])
	}
	return obj
}

func toPropfair(jobs []Job, c Cluster) *propfair.Problem {
	prob := &propfair.Problem{
		T:   make([][]float64, len(jobs)),
		W:   make([]float64, len(jobs)),
		Z:   make([]float64, len(jobs)),
		Cap: append([]float64(nil), c.NumGPUs...),
	}
	for idx, j := range jobs {
		prob.T[idx] = j.Throughput
		prob.W[idx] = j.Weight
		prob.Z[idx] = j.Scale
	}
	return prob
}

func fromPropfair(jobs []Job, sol *propfair.Solution) *Allocation {
	a := &Allocation{X: sol.A, EffThr: make([]float64, len(jobs))}
	for idx, j := range jobs {
		a.EffThr[idx] = EffectiveThroughput(j, sol.A[idx])
	}
	return a
}

func emptyAllocation() *Allocation {
	return &Allocation{X: [][]float64{}, EffThr: []float64{}}
}

func soloVars(p lp.Builder, n, r int) [][]int {
	varOf := make([][]int, n)
	for j := 0; j < n; j++ {
		varOf[j] = make([]int, r)
		for i := 0; i < r; i++ {
			varOf[j][i] = p.AddVariable(0, 0, 1, "")
		}
	}
	return varOf
}

func addSoloCaps(p lp.Builder, jobs []Job, c Cluster, varOf [][]int) {
	r := c.NumTypes()
	for idx := range jobs {
		coef := make([]float64, r)
		for i := range coef {
			coef[i] = 1
		}
		p.AddConstraint(varOf[idx], coef, lp.LE, 1, "time")
	}
	for i := 0; i < r; i++ {
		idxs := make([]int, len(jobs))
		coefs := make([]float64, len(jobs))
		for idx, j := range jobs {
			idxs[idx] = varOf[idx][i]
			coefs[idx] = j.Scale
		}
		p.AddConstraint(idxs, coefs, lp.LE, c.NumGPUs[i], "gpus")
	}
}

func soloAllocation(jobs []Job, r int, varOf [][]int, sol *lp.Solution, lpVars int) *Allocation {
	a := &Allocation{
		X:           make([][]float64, len(jobs)),
		EffThr:      make([]float64, len(jobs)),
		LPVariables: lpVars,
	}
	for idx, j := range jobs {
		a.X[idx] = make([]float64, r)
		for i := 0; i < r; i++ {
			a.X[idx][i] = sol.X[varOf[idx][i]]
		}
		a.EffThr[idx] = EffectiveThroughput(j, a.X[idx])
	}
	return a
}
