package cluster

import (
	"math/rand"
)

// ModelTemplate describes a training-job archetype with its relative
// throughputs across GPU generations, mirroring the measured workload
// tables Gavel uses (exact numbers are not redistributable; the ratios
// below preserve the published qualitative structure: convolutional vision
// models gain 3–5× from K80→V100, transformers 6–10× thanks to tensor
// cores, RL workloads much less because they are environment-bound, and
// recommendation models sit in between).
type ModelTemplate struct {
	Name string
	// Base is the K80 throughput in steps/sec.
	Base float64
	// P100Speedup and V100Speedup are multiples of Base.
	P100Speedup, V100Speedup float64
	// MemFrac is the typical GPU memory footprint fraction.
	MemFrac float64
	// ScaleChoices lists GPU counts this model is usually trained with.
	ScaleChoices []float64
}

// ModelZoo returns the job archetypes used by GenerateJobsFromZoo.
func ModelZoo() []ModelTemplate {
	return []ModelTemplate{
		{Name: "resnet50", Base: 1.0, P100Speedup: 2.4, V100Speedup: 4.5, MemFrac: 0.55, ScaleChoices: []float64{1, 2, 4}},
		{Name: "resnet18", Base: 2.2, P100Speedup: 2.1, V100Speedup: 3.8, MemFrac: 0.30, ScaleChoices: []float64{1, 2}},
		{Name: "transformer", Base: 0.6, P100Speedup: 3.0, V100Speedup: 8.5, MemFrac: 0.75, ScaleChoices: []float64{1, 4, 8}},
		{Name: "lm-lstm", Base: 1.4, P100Speedup: 2.2, V100Speedup: 5.0, MemFrac: 0.60, ScaleChoices: []float64{1, 2}},
		{Name: "recommendation", Base: 3.0, P100Speedup: 1.8, V100Speedup: 3.2, MemFrac: 0.45, ScaleChoices: []float64{1}},
		{Name: "a3c-rl", Base: 4.0, P100Speedup: 1.3, V100Speedup: 1.6, MemFrac: 0.20, ScaleChoices: []float64{1}},
		{Name: "cyclegan", Base: 0.8, P100Speedup: 2.6, V100Speedup: 5.5, MemFrac: 0.70, ScaleChoices: []float64{1}},
	}
}

// GenerateJobsFromZoo synthesizes n jobs by sampling model archetypes with
// per-job jitter, giving a workload with Gavel-like heterogeneity structure:
// jobs disagree not just on speed but on *which* GPU they prefer and by how
// much. When singleGPUOnly is set, every job uses one GPU (required by the
// space-sharing experiments).
func GenerateJobsFromZoo(n int, seed int64, singleGPUOnly bool) []Job {
	rng := rand.New(rand.NewSource(seed))
	zoo := ModelZoo()
	jobs := make([]Job, n)
	for j := 0; j < n; j++ {
		t := zoo[rng.Intn(len(zoo))]
		jitter := func() float64 { return 0.85 + 0.3*rng.Float64() }
		base := t.Base * jitter()
		scale := t.ScaleChoices[rng.Intn(len(t.ScaleChoices))]
		if singleGPUOnly {
			scale = 1
		}
		jobs[j] = Job{
			ID:         j,
			Throughput: []float64{base, base * t.P100Speedup * jitter(), base * t.V100Speedup * jitter()},
			Weight:     1,
			Scale:      scale,
			NumSteps:   (0.5 + rng.Float64()) * 60000,
			MemFrac:    clamp01(t.MemFrac * jitter()),
			Priority:   1,
		}
	}
	return jobs
}

func clamp01(x float64) float64 {
	if x < 0.05 {
		return 0.05
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}
