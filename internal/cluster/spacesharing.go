package cluster

import (
	"fmt"
	"math"

	"pop/internal/lp"
)

// MaxMinFairnessSpaceSharing solves the max-min fairness policy with space
// sharing (§4.1): allocation variables exist for every job pair (and every
// solo job), so two jobs can run concurrently on one GPU with reduced
// throughputs. The variable count grows quadratically in the number of jobs
// — the regime of Figure 2, where POP's k² (here k³, per §5.3) variable
// reduction matters most.
//
// Space sharing is restricted to single-GPU jobs (Scale == 1), matching
// Gavel; multi-GPU jobs participate solo.
func MaxMinFairnessSpaceSharing(jobs []Job, c Cluster, opts lp.Options) (*Allocation, error) {
	if len(jobs) == 0 {
		return emptyAllocation(), nil
	}
	r := c.NumTypes()
	eq := EqualShare(jobs, c)

	// Enumerate slots: one solo slot per job, one shared slot per pair of
	// single-GPU jobs.
	var pairs []Pair
	for idx := range jobs {
		pairs = append(pairs, Pair{J1: jobs[idx].ID, J2: -1})
	}
	for a := 0; a < len(jobs); a++ {
		if jobs[a].Scale != 1 {
			continue
		}
		for b := a + 1; b < len(jobs); b++ {
			if jobs[b].Scale != 1 {
				continue
			}
			pairs = append(pairs, Pair{J1: jobs[a].ID, J2: jobs[b].ID})
		}
	}
	index := indexByID(jobs)

	p := lp.NewProblem(lp.Maximize)
	// varOf[q][i] is the time fraction of slot q on type i.
	varOf := make([][]int, len(pairs))
	for q := range pairs {
		varOf[q] = make([]int, r)
		for i := 0; i < r; i++ {
			varOf[q][i] = p.AddVariable(0, 0, 1, "")
		}
	}
	tv := p.AddVariable(1, math.Inf(-1), lp.Inf, "t")

	// Per-job time budget and per-job fairness rows are built from the
	// slots containing each job.
	type term struct {
		v    int
		thr  float64 // effective throughput coefficient for the job
		load float64 // GPU usage of the slot (z for solo, 1 for shared)
	}
	jobTerms := make([][]term, len(jobs))
	for q, pr := range pairs {
		a := index[pr.J1]
		if pr.J2 < 0 {
			for i := 0; i < r; i++ {
				jobTerms[a] = append(jobTerms[a], term{varOf[q][i], jobs[a].Throughput[i], jobs[a].Scale})
			}
			continue
		}
		b := index[pr.J2]
		kappa := Interference(jobs[a], jobs[b])
		for i := 0; i < r; i++ {
			jobTerms[a] = append(jobTerms[a], term{varOf[q][i], jobs[a].Throughput[i] * kappa, 1})
			jobTerms[b] = append(jobTerms[b], term{varOf[q][i], jobs[b].Throughput[i] * kappa, 1})
		}
	}

	for idx, j := range jobs {
		idxs := make([]int, 0, len(jobTerms[idx]))
		ones := make([]float64, 0, len(jobTerms[idx]))
		for _, t := range jobTerms[idx] {
			idxs = append(idxs, t.v)
			ones = append(ones, 1)
		}
		p.AddConstraint(idxs, ones, lp.LE, 1, "time")

		eqThr := EffectiveThroughput(j, eq[idx])
		if eqThr <= 0 {
			continue
		}
		fIdx := make([]int, 0, len(jobTerms[idx])+1)
		fCoef := make([]float64, 0, len(jobTerms[idx])+1)
		for _, t := range jobTerms[idx] {
			fIdx = append(fIdx, t.v)
			fCoef = append(fCoef, t.thr/(j.Weight*eqThr*j.Scale))
		}
		fIdx = append(fIdx, tv)
		fCoef = append(fCoef, -1)
		p.AddConstraint(fIdx, fCoef, lp.GE, 0, "fair")
	}

	// Per-type GPU capacity: solo slot of job j consumes z_j GPUs; shared
	// slots consume 1.
	for i := 0; i < r; i++ {
		idxs := make([]int, 0, len(pairs))
		coefs := make([]float64, 0, len(pairs))
		for q, pr := range pairs {
			load := 1.0
			if pr.J2 < 0 {
				load = jobs[index[pr.J1]].Scale
			}
			idxs = append(idxs, varOf[q][i])
			coefs = append(coefs, load)
		}
		p.AddConstraint(idxs, coefs, lp.LE, c.NumGPUs[i], "gpus")
	}

	sol, err := p.SolveWithOptions(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("cluster: space-sharing LP %v", sol.Status)
	}

	a := &Allocation{
		Pairs:       pairs,
		PairX:       make([][]float64, len(pairs)),
		EffThr:      make([]float64, len(jobs)),
		LPVariables: p.NumVariables(),
	}
	for q := range pairs {
		a.PairX[q] = make([]float64, r)
		for i := 0; i < r; i++ {
			a.PairX[q][i] = sol.X[varOf[q][i]]
		}
	}
	FillPairEffThr(jobs, a)
	return a, nil
}

// FillPairEffThr recomputes EffThr from Pairs/PairX, applying the
// interference factor to shared slots. jobs must cover every job referenced
// by a.Pairs; extra jobs are left at zero throughput. The online
// space-sharing adapter composes per-partition allocations and reuses this
// to score them consistently with the batch policy.
func FillPairEffThr(jobs []Job, a *Allocation) {
	index := indexByID(jobs)
	for idx := range a.EffThr {
		a.EffThr[idx] = 0
	}
	for q, pr := range a.Pairs {
		ja := index[pr.J1]
		if pr.J2 < 0 {
			for i, f := range a.PairX[q] {
				a.EffThr[ja] += jobs[ja].Throughput[i] * f
			}
			continue
		}
		jb := index[pr.J2]
		kappa := Interference(jobs[ja], jobs[jb])
		for i, f := range a.PairX[q] {
			a.EffThr[ja] += jobs[ja].Throughput[i] * kappa * f
			a.EffThr[jb] += jobs[jb].Throughput[i] * kappa * f
		}
	}
}
