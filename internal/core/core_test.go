package core

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPartitionCoversAllClients(t *testing.T) {
	for _, strat := range []Strategy{Random, PowerOfTwo, Skewed, RoundRobin} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			n, k := 103, 7
			load := func(i int) float64 { return float64(i % 13) }
			groups := Partition(n, k, strat, 5, load)
			if len(groups) != k {
				t.Fatalf("got %d groups", len(groups))
			}
			seen := make([]bool, n)
			for _, g := range groups {
				for _, i := range g {
					if seen[i] {
						t.Fatalf("client %d assigned twice", i)
					}
					seen[i] = true
				}
			}
			for i, s := range seen {
				if !s {
					t.Fatalf("client %d unassigned", i)
				}
			}
		})
	}
}

func TestPartitionBalanced(t *testing.T) {
	groups := Partition(100, 8, Random, 1, nil)
	for _, g := range groups {
		if len(g) < 12 || len(g) > 13 {
			t.Fatalf("unbalanced group size %d", len(g))
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := Partition(50, 4, Random, 99, nil)
	b := Partition(50, 4, Random, 99, nil)
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatal("nondeterministic partition")
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatal("nondeterministic partition")
			}
		}
	}
}

func TestPartitionKLargerThanN(t *testing.T) {
	groups := Partition(3, 10, Random, 1, nil)
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 3 {
		t.Fatalf("assigned %d clients, want 3", total)
	}
}

func TestSkewedConcentratesLoad(t *testing.T) {
	n, k := 64, 4
	load := func(i int) float64 { return float64(i) }
	groups := Partition(n, k, Skewed, 1, load)
	sums := make([]float64, k)
	for p, g := range groups {
		for _, i := range g {
			sums[p] += load(i)
		}
	}
	// First chunk holds the largest loads under Skewed.
	if sums[0] <= sums[k-1] {
		t.Fatalf("skewed did not concentrate: %v", sums)
	}
}

func TestPowerOfTwoBalancesLoad(t *testing.T) {
	n, k := 400, 4
	rng := rand.New(rand.NewSource(2))
	loads := make([]float64, n)
	for i := range loads {
		loads[i] = rng.Float64() * 10
	}
	load := func(i int) float64 { return loads[i] }

	sumsFor := func(strat Strategy) []float64 {
		groups := Partition(n, k, strat, 7, load)
		sums := make([]float64, k)
		for p, g := range groups {
			for _, i := range g {
				sums[p] += load(i)
			}
		}
		return sums
	}
	spread := func(s []float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	if p2 := spread(sumsFor(PowerOfTwo)); p2 > spread(sumsFor(Skewed)) {
		t.Fatalf("power-of-two spread %g worse than skewed", p2)
	}
}

func TestGather(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	groups := [][]int{{3, 0}, {1, 2}}
	got := Gather(items, groups)
	if got[0][0] != "d" || got[0][1] != "a" || got[1][0] != "b" {
		t.Fatalf("gather wrong: %v", got)
	}
}

func TestEvenSplit(t *testing.T) {
	got := EvenSplit(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EvenSplit = %v, want %v", got, want)
		}
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 10 {
		t.Fatal("split loses units")
	}
}

func TestEvenSplitProperty(t *testing.T) {
	f := func(m uint8, k uint8) bool {
		if k == 0 {
			return true
		}
		parts := EvenSplit(int(m), int(k))
		sum := 0
		min, max := int(m)+1, -1
		for _, p := range parts {
			sum += p
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return sum == int(m) && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitResource(t *testing.T) {
	type link struct{ cap float64 }
	res := []link{{10}, {20}}
	parts := SplitResource(res, 4, func(r link, k int) link { return link{r.cap / float64(k)} })
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0.0
	for _, p := range parts {
		total += p[0].cap + p[1].cap
	}
	if !approxEq(total, 30, 1e-12) {
		t.Fatalf("capacity not conserved: %g", total)
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestParallelMapRunsAll(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		var count int64
		err := ParallelMap(8, parallel, func(p int) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
		if err != nil || count != 8 {
			t.Fatalf("parallel=%v: err=%v count=%d", parallel, err, count)
		}
	}
}

// TestParallelMapBoundsConcurrency drives a map far wider than the worker
// pool and checks the peak number of simultaneously running bodies never
// exceeds GOMAXPROCS — the pool pulls indices from a counter instead of
// spawning one goroutine per part.
func TestParallelMapBoundsConcurrency(t *testing.T) {
	limit := int64(runtime.GOMAXPROCS(0))
	var inFlight, peak int64
	err := ParallelMap(64, true, func(p int) error {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > limit {
		t.Fatalf("peak concurrency %d exceeds GOMAXPROCS %d", peak, limit)
	}
}

// TestParallelMapFirstErrorByIndex pins the error-selection contract: when
// several parts fail, the error of the lowest-indexed failing part wins,
// regardless of completion order.
func TestParallelMapFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := ParallelMap(16, true, func(p int) error {
		switch p {
		case 3:
			time.Sleep(5 * time.Millisecond) // finishes last
			return errLow
		case 11:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want the lowest-indexed part's error", err)
	}
}

func TestParallelMapPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ParallelMap(4, true, func(p int) error {
		if p == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

type fakeClient struct{ loadv float64 }

func TestSplitClientsAlgorithm2(t *testing.T) {
	clients := []fakeClient{{8}, {1}, {1}, {1}}
	virtual := SplitClients(clients, 0.75, // allow up to 7 virtual clients
		func(c fakeClient) float64 { return c.loadv },
		func(c fakeClient) (fakeClient, fakeClient) {
			h := c.loadv / 2
			return fakeClient{h}, fakeClient{h}
		})
	if len(virtual) != 7 {
		t.Fatalf("got %d virtual clients, want 7", len(virtual))
	}
	// Total load preserved.
	total := 0.0
	perOrig := map[int]float64{}
	for _, vc := range virtual {
		total += vc.Client.loadv
		perOrig[vc.Orig] += vc.Client.loadv
	}
	if !approxEq(total, 11, 1e-12) {
		t.Fatalf("total load = %g, want 11", total)
	}
	if !approxEq(perOrig[0], 8, 1e-12) {
		t.Fatalf("client 0 load = %g, want 8", perOrig[0])
	}
	// The heavy client must have been split the most.
	count0 := 0
	for _, vc := range virtual {
		if vc.Orig == 0 {
			count0++
		}
	}
	if count0 < 3 {
		t.Fatalf("heavy client split only %d times", count0)
	}
}

func TestSplitClientsZeroT(t *testing.T) {
	clients := []fakeClient{{5}, {3}}
	virtual := SplitClients(clients, 0,
		func(c fakeClient) float64 { return c.loadv },
		func(c fakeClient) (fakeClient, fakeClient) {
			return fakeClient{c.loadv / 2}, fakeClient{c.loadv / 2}
		})
	if len(virtual) != 2 {
		t.Fatalf("t=0 should not split, got %d", len(virtual))
	}
}

func TestSplitClientsLoadConservedProperty(t *testing.T) {
	f := func(seed int64, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		clients := make([]fakeClient, n)
		want := 0.0
		for i := range clients {
			clients[i] = fakeClient{rng.Float64() * 100}
			want += clients[i].loadv
		}
		tv := float64(tRaw%150) / 100
		virtual := SplitClients(clients, tv,
			func(c fakeClient) float64 { return c.loadv },
			func(c fakeClient) (fakeClient, fakeClient) {
				return fakeClient{c.loadv / 2}, fakeClient{c.loadv / 2}
			})
		got := 0.0
		for _, vc := range virtual {
			got += vc.Client.loadv
		}
		return approxEq(got, want, 1e-9) && len(virtual) >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceByOrig(t *testing.T) {
	virtual := []VirtualClient[fakeClient]{
		{Orig: 0, Client: fakeClient{}},
		{Orig: 1, Client: fakeClient{}},
		{Orig: 0, Client: fakeClient{}},
	}
	got := CoalesceByOrig(virtual, []float64{1, 5, 2}, 2)
	if got[0] != 3 || got[1] != 5 {
		t.Fatalf("coalesce = %v", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{K: 0}).Validate(); err == nil {
		t.Fatal("K=0 should fail")
	}
	if err := (Options{K: 2, SplitT: -1}).Validate(); err == nil {
		t.Fatal("negative SplitT should fail")
	}
	if err := (Options{K: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}
