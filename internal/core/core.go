// Package core implements the POP (Partitioned Optimization Problems)
// machinery from the paper: partitioning clients and resources into k
// sub-problems, granularization transforms (client splitting, Algorithm 2,
// and resource splitting), the parallel map step, and coalescing helpers.
//
// The domain case studies (packages te, cluster, lb) build their POP
// variants out of these primitives; the root package pop re-exports the
// public surface.
package core

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Strategy selects how clients are assigned to sub-problems.
type Strategy int8

const (
	// Random shuffles clients and deals them round-robin, giving each
	// sub-problem an equal-sized random subset. This is POP's default and
	// the subject of the paper's §5.1 analysis.
	Random Strategy = iota
	// PowerOfTwo assigns each client to the better of two randomly chosen
	// sub-problems, picking the one whose current load profile is most
	// similar to the global distribution (lower total load). Evaluated in
	// Figure 16 of the paper.
	PowerOfTwo
	// Skewed sorts clients by load and assigns contiguous chunks,
	// deliberately concentrating similar clients — the paper's example of a
	// bad partition (Figure 16).
	Skewed
	// RoundRobin deals clients in index order without shuffling;
	// deterministic, mainly for tests.
	RoundRobin
)

func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case PowerOfTwo:
		return "power-of-2"
	case Skewed:
		return "skewed"
	case RoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Partition assigns n clients to k sub-problems and returns the index sets,
// one per sub-problem. load is consulted by the PowerOfTwo and Skewed
// strategies and may be nil for Random/RoundRobin. The result is
// deterministic in (n, k, strategy, seed).
func Partition(n, k int, strategy Strategy, seed int64, load func(i int) float64) [][]int {
	if k <= 0 {
		panic("core: k must be positive")
	}
	if k > n && n > 0 {
		k = n
	}
	groups := make([][]int, k)
	rng := rand.New(rand.NewSource(seed))
	switch strategy {
	case Random:
		order := rng.Perm(n)
		for pos, i := range order {
			p := pos % k
			groups[p] = append(groups[p], i)
		}
	case RoundRobin:
		for i := 0; i < n; i++ {
			groups[i%k] = append(groups[i%k], i)
		}
	case PowerOfTwo:
		if load == nil {
			load = func(int) float64 { return 1 }
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		order := rng.Perm(n)
		target := n / k
		for _, i := range order {
			a := rng.Intn(k)
			b := rng.Intn(k)
			// Prefer the sub-problem with lower load; break ties toward the
			// one with fewer clients, keeping sizes near-equal.
			pick := a
			if counts[a] > target && counts[b] <= target {
				pick = b
			} else if counts[b] > target && counts[a] <= target {
				pick = a
			} else if sums[b] < sums[a] || (sums[b] == sums[a] && counts[b] < counts[a]) {
				pick = b
			}
			groups[pick] = append(groups[pick], i)
			sums[pick] += load(i)
			counts[pick]++
		}
	case Skewed:
		if load == nil {
			load = func(int) float64 { return 1 }
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		// Sort by load descending; stability keeps equal-load clients in
		// index order for determinism.
		sort.SliceStable(order, func(a, b int) bool { return load(order[a]) > load(order[b]) })
		per := (n + k - 1) / k
		for pos, i := range order {
			p := pos / per
			if p >= k {
				p = k - 1
			}
			groups[p] = append(groups[p], i)
		}
	default:
		panic(fmt.Sprintf("core: unknown strategy %v", strategy))
	}
	return groups
}

// Gather materializes the client subsets selected by groups.
func Gather[T any](items []T, groups [][]int) [][]T {
	out := make([][]T, len(groups))
	for p, g := range groups {
		sub := make([]T, len(g))
		for t, i := range g {
			sub[t] = items[i]
		}
		out[p] = sub
	}
	return out
}

// EvenSplit partitions m indistinguishable resource units across k
// sub-problems as evenly as possible (the first m%k sub-problems get one
// extra unit).
func EvenSplit(m, k int) []int {
	out := make([]int, k)
	for p := range out {
		out[p] = m / k
		if p < m%k {
			out[p]++
		}
	}
	return out
}

// SplitResource implements the paper's resource splitting: every sub-problem
// receives a copy of each resource scaled to 1/k of its capacity, so the
// coalesced allocation remains feasible by construction. scale must return a
// copy of r with capacity divided by k.
func SplitResource[R any](resources []R, k int, scale func(r R, k int) R) [][]R {
	out := make([][]R, k)
	for p := 0; p < k; p++ {
		sub := make([]R, len(resources))
		for i, r := range resources {
			sub[i] = scale(r, k)
		}
		out[p] = sub
	}
	return out
}

// ParallelMap runs f(part) for part in [0,k), concurrently when parallel is
// true, and returns the first error (by part index) encountered. Concurrency
// is bounded by GOMAXPROCS: a fixed pool of goroutines pulls part indices
// from a shared counter, so a large-k POP sweep (k in the hundreds during a
// k-sensitivity scan) costs pool-sized scheduler load instead of k
// simultaneous goroutines, with results and error order unchanged.
func ParallelMap(k int, parallel bool, f func(part int) error) error {
	if !parallel || k == 1 {
		for p := 0; p < k; p++ {
			if err := f(p); err != nil {
				return err
			}
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	errs := make([]error, k)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= k {
					return
				}
				errs[p] = f(p)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// VirtualClient tags a (possibly split) client with the index of the real
// client it derives from, so coalescing can sum virtual allocations back.
type VirtualClient[C any] struct {
	Orig   int
	Client C
}

// SplitClients is Algorithm 2 of the paper: repeatedly halve the largest
// client by its splitting attribute until (1+t)·n virtual clients exist.
// load reads the splitting attribute; split must return two copies of c with
// the attribute halved. The total of the splitting attribute is preserved,
// so any feasible allocation to the virtual clients coalesces to a feasible
// allocation for the originals.
func SplitClients[C any](clients []C, t float64, load func(C) float64, split func(C) (C, C)) []VirtualClient[C] {
	n := len(clients)
	h := &maxHeap[C]{load: load}
	for i, c := range clients {
		h.items = append(h.items, VirtualClient[C]{Orig: i, Client: c})
	}
	heap.Init(h)
	limit := int(float64(n) * (1 + t))
	for h.Len() < limit {
		top := heap.Pop(h).(VirtualClient[C])
		a, b := split(top.Client)
		heap.Push(h, VirtualClient[C]{Orig: top.Orig, Client: a})
		heap.Push(h, VirtualClient[C]{Orig: top.Orig, Client: b})
	}
	return h.items
}

type maxHeap[C any] struct {
	items []VirtualClient[C]
	load  func(C) float64
}

func (h *maxHeap[C]) Len() int { return len(h.items) }
func (h *maxHeap[C]) Less(i, j int) bool {
	return h.load(h.items[i].Client) > h.load(h.items[j].Client)
}
func (h *maxHeap[C]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *maxHeap[C]) Push(x any) {
	h.items = append(h.items, x.(VirtualClient[C]))
}
func (h *maxHeap[C]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// CoalesceByOrig sums per-virtual-client scalar allocations back onto the n
// real clients.
func CoalesceByOrig[C any](virtual []VirtualClient[C], alloc []float64, n int) []float64 {
	out := make([]float64, n)
	for i, vc := range virtual {
		out[vc.Orig] += alloc[i]
	}
	return out
}

// Options bundles the standard POP knobs shared by the domain adapters.
type Options struct {
	// K is the number of sub-problems (POP-k in the paper's figures).
	K int
	// Strategy is the client partitioning strategy; Random is the default.
	Strategy Strategy
	// Seed makes the random partition reproducible.
	Seed int64
	// Parallel solves sub-problems concurrently (the paper's map step).
	Parallel bool
	// SplitT is the client-splitting threshold t from Algorithm 2: the ratio
	// of extra virtual clients allowed. 0 disables client splitting.
	SplitT float64
}

// Validate checks the option invariants shared by all adapters.
func (o Options) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("pop: K must be ≥ 1, got %d", o.K)
	}
	if o.SplitT < 0 {
		return fmt.Errorf("pop: SplitT must be ≥ 0, got %g", o.SplitT)
	}
	return nil
}
