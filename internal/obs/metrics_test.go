package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pop_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("pop_test_total", ""); again != c {
		t.Fatalf("second lookup returned a different counter")
	}

	g := r.Gauge("pop_depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveNs(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil handles must read zero")
	}
	r.WritePrometheus(&strings.Builder{})

	var o *Observer
	o.Span("s").Arg("k", 1).End()
	o.Instant("i", nil)
	o.Counter("c", "").Inc()
	o.Gauge("g", "").Set(1)
	o.Histogram("h", "").Observe(1)
	if o.WithTID(3) != nil {
		t.Fatalf("nil Observer.WithTID must stay nil")
	}

	var tr *Trace
	tr.Begin(0, "s").End()
	tr.Instant(0, "i", nil)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatalf("nil Trace must record nothing")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pop_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-102.65) > 1e-9 {
		t.Fatalf("sum = %g, want 102.65", got)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP pop_lat_seconds latency",
		"# TYPE pop_lat_seconds histogram",
		`pop_lat_seconds_bucket{le="0.1"} 2`, // 0.05 and 0.1 (le is inclusive)
		`pop_lat_seconds_bucket{le="1"} 3`,
		`pop_lat_seconds_bucket{le="10"} 4`,
		`pop_lat_seconds_bucket{le="+Inf"} 5`,
		"pop_lat_seconds_sum 102.65",
		"pop_lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledSeriesShareHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter(`pop_http_requests_total{path="/b"}`, "requests").Add(2)
	r.Counter(`pop_http_requests_total{path="/a"}`, "").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Count(out, "# TYPE pop_http_requests_total counter") != 1 {
		t.Fatalf("want exactly one TYPE header:\n%s", out)
	}
	ai := strings.Index(out, `pop_http_requests_total{path="/a"} 1`)
	bi := strings.Index(out, `pop_http_requests_total{path="/b"} 2`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("labelled series missing or unsorted:\n%s", out)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("pop_mixed", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic on kind clash")
		}
	}()
	r.Gauge("pop_mixed", "")
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("pop_total", "")
			h := r.Histogram("pop_h_seconds", "", nil)
			g := r.Gauge("pop_g", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("pop_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("pop_h_seconds", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("pop_g", "").Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
}
