// Package obs is the repository's zero-dependency observability layer:
// a lock-light metrics registry with a Prometheus text exporter, and a
// span/event tracer that emits Chrome trace-event JSON. The solver stack
// (lp, online, milp) and the popserver daemon hook into it through the
// nil-safe Observer bundle, so the disabled path — the default everywhere —
// costs one pointer check per hook site and allocates nothing.
//
// # Design
//
// The POP paper's claim is empirical: partitioned sub-problems cut solve
// latency with negligible quality loss. End-of-run bench JSON can state
// that, but it cannot say *where* a slow round spent its time (LU
// factorization vs pivots vs model rebuild), which warm starts fell back
// cold, or what a live popserver is doing right now. obs closes that gap
// with two complementary views:
//
//   - Metrics are cheap cumulative aggregates, always safe to leave on in
//     a server: atomic counters, gauges, and fixed-bucket latency
//     histograms, exported in Prometheus text format (popserver's
//     GET /metrics).
//   - Traces are detailed per-run timelines, enabled for one bench run or
//     one debugging session: every solve, round, and search node becomes a
//     span in a Chrome trace-event JSON file that chrome://tracing or
//     https://ui.perfetto.dev opens directly (the benches' -trace flag).
//
// # Metrics
//
// A Registry hands out get-or-create metric handles by name:
//
//	reg := obs.NewRegistry()
//	solves := reg.Counter("pop_lp_solves_total", "completed LP solves")
//	solves.Inc()
//	lat := reg.Histogram("pop_round_seconds", "round latency", nil)
//	lat.Observe(dur.Seconds())
//
// Counters and gauges are single atomics; histograms are a fixed array of
// atomic bucket counts (no locks on the observe path). The registry itself
// takes an RWMutex read lock only on handle lookup — callers on hot paths
// resolve handles once and keep them. A name may carry a constant
// Prometheus label block, e.g. `pop_http_request_seconds{path="/v1/jobs"}`;
// the exporter groups such series under one HELP/TYPE header. Every method
// is nil-receiver-safe: a nil *Registry returns nil handles, and nil
// handles accept Add/Set/Observe as no-ops, which is what makes the
// Observer plumbing free when disabled.
//
// # Traces
//
// A Trace collects complete ("X") and instant ("i") events keyed by a
// thread-id lane. Span nesting is by wall-clock containment: a parent span
// that ends after its children encloses them in the viewer. Conventions
// used across the repository:
//
//	run                              bench top-level (tid 0)
//	online.round                     one engine round (engine tid)
//	online.{rebuild,splice,refresh,extract,subsolve}   per-partition lanes (tid base+1+p)
//	lp.solve                         one LP solve, with phase children:
//	lp.{standardize,factor,refactor,phase1,phase2,dual,warm-repair}
//	lp.cold-fallback, lp.dual-reject instants marking abandoned warm paths
//	lp.dense-retry                   instant: sparse backend failed, dense retry
//	milp.search / milp.node          branch-and-bound, one lane per worker
//	milp.{steal,fathom,incumbent}    instants on the owning worker's lane
//
// # Observer
//
// Observer bundles a Registry, a Trace (either may be nil), and the trace
// lane (TID) the holder should emit on. Solver options embed *Observer
// (lp.Options.Obs, online.Options.Obs, milp.Options.Obs); fan-out layers
// derive per-partition or per-worker lanes with WithTID. All methods are
// nil-safe, so instrumented code reads
//
//	sp := opts.Obs.Span("lp.phase2")   // no-op when Obs is nil
//	...
//	sp.End()
//
// and the only cost on the disabled path is the nil check. CI enforces
// this with an overhead-guard test comparing obs-disabled and obs-enabled
// solves on a mid-size generated instance.
package obs
