package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter accepts every method as a no-op, so handles
// from a nil Registry can be used unconditionally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can move both ways (queue depths, live
// client counts). The zero value reads 0; nil receivers no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge reading (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram: one atomic count per
// bucket plus an atomic sum, so Observe takes no locks. Bucket upper
// bounds are set at creation and never change; the implicit last bucket
// is +Inf, matching Prometheus histogram semantics (bucket{le="x"} counts
// observations ≤ x, cumulatively at export).
type Histogram struct {
	upper  []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one value (typically seconds). Nil receivers no-op; NaN
// is dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bound ≥ v, or len → +Inf bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveNs records a duration given in nanoseconds, converted to seconds.
func (h *Histogram) ObserveNs(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns count exponentially spaced upper bounds starting at
// start and growing by factor. start must be > 0 and factor > 1.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("obs: bad ExpBuckets(%g, %g, %d)", start, factor, count))
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefTimeBuckets is the default latency bucket layout: 1µs to ~15min,
// ×2.5 per bucket — wide enough for a microsecond sub-solve and a
// minutes-long MILP search in the same histogram.
var DefTimeBuckets = ExpBuckets(1e-6, 2.5, 16)

// Registry is a named collection of metrics with get-or-create semantics.
// Handle lookup takes a read lock; the metrics themselves are lock-free.
// A metric name may carry a constant Prometheus label block
// (`name{key="value",...}`); series sharing a base name share one
// HELP/TYPE header at export. All methods are nil-receiver-safe and return
// nil handles, whose operations are no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // by base name
	kinds    map[string]string // base name -> "counter" | "gauge" | "histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
		kinds:    map[string]string{},
	}
}

// baseName strips the optional {label} block.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labels returns the inner label block of name ("" when unlabelled).
func labels(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// register books HELP/TYPE metadata, panicking on a kind clash — mixing
// metric kinds under one base name is a programming error that would emit
// an unparsable exposition.
func (r *Registry) register(name, kind, help string) {
	base := baseName(name)
	if k, ok := r.kinds[base]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", base, k, kind))
	}
	r.kinds[base] = kind
	if help != "" {
		r.help[base] = help
	}
}

// Counter returns the counter registered under name, creating it on first
// use. help may be empty on repeat lookups.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.register(name, "counter", help)
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.register(name, "gauge", help)
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (nil means DefTimeBuckets) on first use.
// Later lookups reuse the original buckets; the buckets argument is then
// ignored.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	if buckets == nil {
		buckets = DefTimeBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
	}
	r.register(name, "histogram", help)
	h = &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	r.hists[name] = h
	return h
}

// sample is one export line group, sorted by (base, labels) so all series
// of one metric stay contiguous regardless of label interleaving.
type sample struct {
	base, labels string
	write        func(w io.Writer, base, labels string)
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name for deterministic
// output. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()

	var samples []sample
	for name, c := range r.counters {
		samples = append(samples, sample{baseName(name), labels(name), func(w io.Writer, base, lbl string) {
			fmt.Fprintf(w, "%s %d\n", seriesName(base, lbl), c.Value())
		}})
	}
	for name, g := range r.gauges {
		samples = append(samples, sample{baseName(name), labels(name), func(w io.Writer, base, lbl string) {
			fmt.Fprintf(w, "%s %s\n", seriesName(base, lbl), formatFloat(g.Value()))
		}})
	}
	for name, h := range r.hists {
		samples = append(samples, sample{baseName(name), labels(name), func(w io.Writer, base, lbl string) {
			cum := int64(0)
			for i, ub := range h.upper {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s %d\n", seriesName(base+"_bucket", mergeLabels(lbl, `le="`+formatFloat(ub)+`"`)), cum)
			}
			fmt.Fprintf(w, "%s %d\n", seriesName(base+"_bucket", mergeLabels(lbl, `le="+Inf"`)), h.Count())
			fmt.Fprintf(w, "%s %s\n", seriesName(base+"_sum", lbl), formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s %d\n", seriesName(base+"_count", lbl), h.Count())
		}})
	}
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].base != samples[j].base {
			return samples[i].base < samples[j].base
		}
		return samples[i].labels < samples[j].labels
	})
	lastBase := ""
	for _, s := range samples {
		if s.base != lastBase {
			if help := r.help[s.base]; help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.base, help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.base, r.kinds[s.base])
			lastBase = s.base
		}
		s.write(w, s.base, s.labels)
	}
}

func seriesName(base, lbl string) string {
	if lbl == "" {
		return base
	}
	return base + "{" + lbl + "}"
}

func mergeLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
