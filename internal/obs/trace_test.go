package obs

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingRoundTrip(t *testing.T) {
	tr := NewTrace()
	run := tr.Begin(0, "run")
	round := tr.Begin(0, "online.round").Arg("round", 1)
	solve := tr.Begin(1, "lp.solve")
	time.Sleep(time.Millisecond)
	solve.End()
	tr.Instant(1, "lp.cold-fallback", map[string]any{"part": 0})
	round.End()
	run.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}

	byName := map[string]Event{}
	for _, e := range events {
		byName[e.Name] = e
	}
	runEv, roundEv, solveEv := byName["run"], byName["online.round"], byName["lp.solve"]
	if runEv.Phase != "X" || solveEv.Dur <= 0 {
		t.Fatalf("bad span events: %+v", events)
	}
	if !runEv.Contains(roundEv) || !roundEv.Contains(solveEv) {
		t.Fatalf("want solve < round < run nesting: %+v", events)
	}
	inst := byName["lp.cold-fallback"]
	if inst.Phase != "i" || inst.Args["part"] != float64(0) {
		t.Fatalf("bad instant event: %+v", inst)
	}
	if roundEv.Args["round"] != float64(1) {
		t.Fatalf("span arg lost: %+v", roundEv)
	}
}

func TestObserverLanes(t *testing.T) {
	tr := NewTrace()
	o := &Observer{Trace: tr, TID: 5}
	o.Span("a").End()
	o.WithTID(9).Span("b").End()
	o.Instant("c", nil)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	tids := map[string]int{}
	for _, e := range evs {
		tids[e.Name] = e.TID
	}
	if tids["a"] != 5 || tids["b"] != 9 || tids["c"] != 5 {
		t.Fatalf("lane assignment wrong: %v", tids)
	}
}

func TestTraceConcurrentAppend(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Begin(tid, "e").End()
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Len(); got != 1600 {
		t.Fatalf("got %d events, want 1600", got)
	}
}
