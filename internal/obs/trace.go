package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one Chrome trace-event record. Complete spans use Phase "X"
// with TS/Dur; instant events use Phase "i". Timestamps are microseconds
// since the trace started. chrome://tracing and https://ui.perfetto.dev
// load the emitted files directly.
type Event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope ("t" = thread)
	Args  map[string]any `json:"args,omitempty"`
}

// End returns the event's end timestamp (TS for instants).
func (e Event) End() float64 { return e.TS + e.Dur }

// Contains reports whether span e wholly encloses span other in time —
// the nesting relation the trace tests verify (tids are lanes, not scopes,
// so containment is judged on wall clock alone).
func (e Event) Contains(other Event) bool {
	return e.TS <= other.TS && other.End() <= e.End()
}

// Trace is a concurrency-safe event collector. Producers append spans and
// instants from any goroutine; one writer serializes the file at the end.
// A nil *Trace accepts every method as a no-op.
type Trace struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewTrace starts an empty trace; timestamps are relative to this call.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

func (t *Trace) sinceUs(at time.Time) float64 {
	return float64(at.Sub(t.start).Nanoseconds()) / 1e3
}

func (t *Trace) append(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span is an open interval started by Trace.Begin; End records it as a
// complete event. A nil *Span (from a nil Trace or Observer) no-ops, so
// instrumented code never branches on whether tracing is live.
type Span struct {
	t     *Trace
	tid   int
	name  string
	start time.Time
	args  map[string]any
}

// Begin opens a span named name on thread lane tid.
func (t *Trace) Begin(tid int, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, tid: tid, name: name, start: time.Now()}
}

// Arg attaches a key/value pair shown in the trace viewer's detail pane.
// It returns the span for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
	return s
}

// End closes the span and records it. Calling End twice records the span
// twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.append(Event{
		Name:  s.name,
		Phase: "X",
		TS:    s.t.sinceUs(s.start),
		Dur:   float64(time.Since(s.start).Nanoseconds()) / 1e3,
		PID:   1,
		TID:   s.tid,
		Args:  s.args,
	})
}

// Instant records a zero-duration marker event on lane tid.
func (t *Trace) Instant(tid int, name string, args map[string]any) {
	if t == nil {
		return
	}
	t.append(Event{
		Name:  name,
		Phase: "i",
		TS:    t.sinceUs(time.Now()),
		PID:   1,
		TID:   tid,
		Scope: "t",
		Args:  args,
	})
}

// Len reports the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// traceFile is the on-disk JSON envelope (the Chrome trace "JSON object
// format").
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Write serializes the trace as Chrome trace-event JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path, replacing any existing file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads the events of a trace file written by WriteFile — the
// verification half used by tests that assert span nesting.
func ReadFile(path string) ([]Event, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return nil, err
	}
	return tf.TraceEvents, nil
}
