package obs

// Observer bundles the metrics registry and the tracer a component should
// report into, plus the trace lane (TID) it owns. Solver options embed a
// *Observer; a nil observer — the default — makes every hook a no-op at
// the cost of one pointer check, so production solves without telemetry
// pay nothing. Either half may be nil independently: popserver runs
// metrics without tracing, the benches' -trace flag runs tracing without
// a registry.
type Observer struct {
	Metrics *Registry
	Trace   *Trace
	// TID is the Chrome-trace thread lane events are emitted on. Fan-out
	// layers (online partitions, milp workers) derive disjoint lanes with
	// WithTID so parallel work renders side by side.
	TID int
}

// WithTID returns a copy of the observer emitting on lane tid (nil in,
// nil out).
func (o *Observer) WithTID(tid int) *Observer {
	if o == nil {
		return nil
	}
	c := *o
	c.TID = tid
	return &c
}

// Span opens a trace span on the observer's lane; nil-safe.
func (o *Observer) Span(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Begin(o.TID, name)
}

// Instant records a marker event on the observer's lane; nil-safe.
func (o *Observer) Instant(name string, args map[string]any) {
	if o == nil {
		return
	}
	o.Trace.Instant(o.TID, name, args)
}

// Counter resolves a counter handle from the observer's registry; nil-safe
// (returns a nil handle whose methods no-op).
func (o *Observer) Counter(name, help string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, help)
}

// Gauge resolves a gauge handle from the observer's registry; nil-safe.
func (o *Observer) Gauge(name, help string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, help)
}

// Histogram resolves a latency histogram (DefTimeBuckets) from the
// observer's registry; nil-safe.
func (o *Observer) Histogram(name, help string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, help, nil)
}
