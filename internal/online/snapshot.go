package online

import (
	"encoding/json"
	"fmt"
	"slices"

	"pop/internal/cluster"
	"pop/internal/lp"
)

// ClusterState is the serializable warm state of a ClusterEngine: the jobs,
// their partition assignment (the stable-partition structure POP's
// incremental quality rests on), each partition's last simplex basis, and
// the work counters. Restoring it into a freshly constructed engine makes
// the first round solve warm — the restored bases seed the rebuilt models —
// instead of cold-starting, which is what lets a crashed shard worker or a
// restarted single-process popserver resume at steady-state cost.
//
// A basis is a combinatorial snapshot (see lp.Basis): it carries no numeric
// values, so restoring against slightly different job data is safe — the
// solver repairs or drops a stale basis on its own.
type ClusterState struct {
	Policy     string        `json:"policy"`
	K          int           `json:"k"`
	TypeNames  []string      `json:"type_names,omitempty"`
	GPUs       []float64     `json:"gpus,omitempty"`
	Jobs       []cluster.Job `json:"jobs"`
	Partitions [][]int       `json:"partitions"`
	Bases      []*lp.Basis   `json:"bases,omitempty"`
	Stats      Stats         `json:"stats"`
}

// Marshal encodes the state as JSON.
func (s *ClusterState) Marshal() ([]byte, error) { return json.Marshal(s) }

// Snapshot captures the engine's warm state. Call it between rounds (the
// engine is not safe for concurrent use); the result aliases nothing, so it
// may be marshaled or held across later mutations.
func (e *ClusterEngine) Snapshot() *ClusterState {
	st := &ClusterState{
		Policy:     e.st.policy.String(),
		K:          e.eng.t.opts.K,
		Jobs:       e.Jobs(),
		Partitions: make([][]int, e.eng.t.opts.K),
		Stats:      e.eng.t.stats,
	}
	if e.st.haveC {
		st.TypeNames = slices.Clone(e.st.c.TypeNames)
		st.GPUs = slices.Clone(e.st.c.NumGPUs)
	}
	haveBasis := false
	bases := make([]*lp.Basis, e.eng.t.opts.K)
	for p, part := range e.eng.t.parts {
		st.Partitions[p] = slices.Clone(part.ids)
		if m := e.eng.subs[p].model; m != nil && m.HasBasis() {
			bases[p] = m.Basis()
			haveBasis = true
		}
	}
	if haveBasis {
		st.Bases = bases
	}
	return st
}

// Restore installs a snapshot into the engine, replacing its jobs,
// partition assignment, and counters; the snapshot's bases are kept as
// seeds for the partitions' first model builds, so the next Solve attempts
// warm starts immediately. The snapshot must match the engine's policy and
// K and be internally consistent (every partitioned id has a job and vice
// versa); on error the engine is left empty but usable.
func (e *ClusterEngine) Restore(st *ClusterState) error {
	if st.Policy != e.st.policy.String() {
		return fmt.Errorf("online: snapshot policy %q does not match engine policy %q", st.Policy, e.st.policy)
	}
	if st.K != e.eng.t.opts.K {
		return fmt.Errorf("online: snapshot K=%d does not match engine K=%d", st.K, e.eng.t.opts.K)
	}
	if len(st.Partitions) != st.K {
		return fmt.Errorf("online: snapshot has %d partitions, want %d", len(st.Partitions), st.K)
	}
	e.resetState()
	jobs := make(map[int]cluster.Job, len(st.Jobs))
	for _, j := range st.Jobs {
		jobs[j.ID] = j
	}
	t := e.eng.t
	placed := 0
	for p, ids := range st.Partitions {
		part := t.parts[p]
		part.ids = slices.Clone(ids)
		part.dirty = true
		for _, id := range ids {
			j, ok := jobs[id]
			if !ok {
				e.resetState()
				return fmt.Errorf("online: snapshot partition %d holds unknown job %d", p, id)
			}
			if _, dup := t.partOf[id]; dup {
				e.resetState()
				return fmt.Errorf("online: snapshot places job %d in two partitions", id)
			}
			t.partOf[id] = p
			t.loadOf[id] = j.Scale
			part.load += j.Scale
			placed++
		}
	}
	if placed != len(jobs) {
		e.resetState()
		return fmt.Errorf("online: snapshot partitions cover %d jobs, registry has %d", placed, len(jobs))
	}
	e.st.jobs = jobs
	t.stats = st.Stats
	if len(st.Bases) == st.K {
		seeds := make([]*lp.Basis, st.K)
		for p, b := range st.Bases {
			seeds[p] = b.Clone()
		}
		e.eng.seeds = seeds
	}
	if len(st.GPUs) > 0 {
		e.SetCluster(cluster.Cluster{TypeNames: slices.Clone(st.TypeNames), NumGPUs: slices.Clone(st.GPUs)})
	}
	return nil
}

// RestoreBytes unmarshals and installs a Marshal-ed snapshot.
func (e *ClusterEngine) RestoreBytes(raw []byte) error {
	var st ClusterState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("online: bad snapshot: %w", err)
	}
	return e.Restore(&st)
}

// resetState returns the engine to empty: no jobs, fresh partitions, no
// models, no basis seeds. Counters and the installed cluster survive.
func (e *ClusterEngine) resetState() {
	t := e.eng.t
	for p := range t.parts {
		t.parts[p] = &partition{}
	}
	t.partOf = make(map[int]int)
	t.loadOf = make(map[int]float64)
	e.st.jobs = make(map[int]cluster.Job)
	e.st.results = make([]*clusterSubResult, t.opts.K)
	e.eng.invalidateModels()
	e.eng.seeds = nil
}
