package online

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/cluster"
	"pop/internal/lp"
)

func snapJob(id int, rnd *rand.Rand) cluster.Job {
	return cluster.Job{
		ID:         id,
		Throughput: []float64{1 + rnd.Float64(), 2 + 2*rnd.Float64(), 3 + 3*rnd.Float64()},
		Weight:     1,
		Scale:      float64(1 + rnd.Intn(2)),
		NumSteps:   1000,
		Priority:   1,
	}
}

// TestSnapshotRestoreRoundTrip: a restored engine reproduces the donor's
// partitions and, stepped on the same active set, the same allocation —
// and its first solves warm-start from the persisted bases.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := cluster.NewCluster(16, 16, 16)
	donor, err := NewClusterEngine(c, MaxMinFairness, Options{K: 3}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(42))
	jobs := make([]cluster.Job, 0, 24)
	for id := 0; id < 24; id++ {
		jobs = append(jobs, snapJob(id, rnd))
	}
	// A few churn rounds so the donor carries non-trivial warm state.
	for r := 0; r < 3; r++ {
		if _, err := donor.Step(jobs[:18+2*r], c); err != nil {
			t.Fatal(err)
		}
	}
	want, err := donor.Step(jobs, c)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := donor.Snapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewClusterEngine(c, MaxMinFairness, Options{K: 3}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got, wantN := len(restored.Jobs()), len(donor.Jobs()); got != wantN {
		t.Fatalf("restored %d jobs, want %d", got, wantN)
	}
	if restored.Stats() != donor.Stats() {
		t.Fatalf("restored stats %+v != donor stats %+v", restored.Stats(), donor.Stats())
	}

	statsBefore := restored.Stats()
	got, err := restored.Step(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if d := math.Abs(got.EffThr[i] - want.EffThr[i]); d > 1e-6 {
			t.Fatalf("job %d: restored engine allocates %g, donor %g", jobs[i].ID, got.EffThr[i], want.EffThr[i])
		}
		for k := range want.X[i] {
			if d := math.Abs(got.X[i][k] - want.X[i][k]); d > 1e-6 {
				t.Fatalf("job %d: x[%d] diverged by %g after restore", jobs[i].ID, k, d)
			}
		}
	}
	d := restored.Stats()
	if d.WarmAttempts == statsBefore.WarmAttempts {
		t.Fatal("restored engine never warm-started from the snapshot bases")
	}
}

// TestSnapshotRestoreRejectsMismatch: wrong policy or partition shape must
// not corrupt the engine.
func TestSnapshotRestoreRejectsMismatch(t *testing.T) {
	c := cluster.NewCluster(8, 8, 8)
	donor, err := NewClusterEngine(c, MaxMinFairness, Options{K: 2}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	jobs := []cluster.Job{snapJob(0, rnd), snapJob(1, rnd), snapJob(2, rnd)}
	if _, err := donor.Step(jobs, c); err != nil {
		t.Fatal(err)
	}
	st := donor.Snapshot()

	other, err := NewClusterEngine(c, MinMakespan, Options{K: 2}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(st); err == nil {
		t.Fatal("policy-mismatched restore succeeded")
	}
	smaller, err := NewClusterEngine(c, MaxMinFairness, Options{K: 4}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := smaller.Restore(st); err == nil {
		t.Fatal("K-mismatched restore succeeded")
	}
	if _, err := smaller.Step(jobs, c); err != nil {
		t.Fatalf("engine unusable after rejected restore: %v", err)
	}
}

// TestSnapshotRestoreCorruptPlacement: a snapshot whose partitions reference
// unknown jobs or double-place a job is rejected.
func TestSnapshotRestoreCorruptPlacement(t *testing.T) {
	c := cluster.NewCluster(8, 8, 8)
	donor, err := NewClusterEngine(c, MaxMinFairness, Options{K: 2}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(8))
	jobs := []cluster.Job{snapJob(0, rnd), snapJob(1, rnd)}
	if _, err := donor.Step(jobs, c); err != nil {
		t.Fatal(err)
	}

	fresh := func() *ClusterEngine {
		e, err := NewClusterEngine(c, MaxMinFairness, Options{K: 2}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	unknown := donor.Snapshot()
	unknown.Partitions[0] = append(unknown.Partitions[0], 999)
	if err := fresh().Restore(unknown); err == nil {
		t.Fatal("snapshot placing an unknown job restored cleanly")
	}
	double := donor.Snapshot()
	double.Partitions[0] = []int{0, 1}
	double.Partitions[1] = []int{1}
	if err := fresh().Restore(double); err == nil {
		t.Fatal("snapshot double-placing a job restored cleanly")
	}
}
