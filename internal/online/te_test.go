package online

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/lp"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

// driveTEDeltas applies one random round of deltas to every engine
// identically: demand-amount jitter (the rhs fast path), re-routes
// (endpoint changes, which must resplice the block even when the new path
// set has the old one's size), arrivals, and departures. The topology
// never changes — TE re-plans traffic, not fiber.
func driveTEDeltas(rng *rand.Rand, engines []*TEEngine, live map[int]tm.Demand, nNodes int, nextID *int) {
	ops := 1 + rng.Intn(6)
	for o := 0; o < ops; o++ {
		switch {
		case len(live) > 0 && rng.Float64() < 0.15:
			id := anyDemandKey(rng, live)
			d := live[id]
			d.Src, d.Dst = rng.Intn(nNodes), rng.Intn(nNodes)
			live[id] = d
			for _, e := range engines {
				e.Upsert(id, d)
			}
		case len(live) == 0 || rng.Float64() < 0.25:
			d := tm.Demand{Src: rng.Intn(nNodes), Dst: rng.Intn(nNodes), Amount: 1 + 9*rng.Float64()}
			id := *nextID
			*nextID++
			live[id] = d
			for _, e := range engines {
				e.Upsert(id, d)
			}
		case rng.Float64() < 0.2:
			id := anyDemandKey(rng, live)
			delete(live, id)
			for _, e := range engines {
				e.Remove(id)
			}
		default:
			id := anyDemandKey(rng, live)
			d := live[id]
			d.Amount *= math.Exp(rng.NormFloat64() * 0.3)
			live[id] = d
			for _, e := range engines {
				e.Upsert(id, d)
			}
		}
	}
}

func anyDemandKey(rng *rand.Rand, m map[int]tm.Demand) int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys[rng.Intn(len(keys))]
}

// TestTEEngineMatchesColdFullSolve is the acceptance-criterion test: across
// randomized demand-churn sequences over a stable topology, the incremental
// warm-started TE engine must match a cold full solve (same partitions, no
// warm start, all sub-problems re-solved) to 1e-6 on the objective, every
// round — and the demand-only rounds must actually engage the dual simplex.
func TestTEEngineMatchesColdFullSolve(t *testing.T) {
	sequences := 20
	rounds := 4
	if testing.Short() {
		sequences = 6
	}
	tp := topo.GenerateScaled("Deltacom", 0.3)
	nNodes := tp.G.N
	totalWarmHits, totalDualPivots := 0, 0
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(4000 + seq)))
		warm, err := NewTEEngine(tp, te.MaxTotalFlow, 4, Options{K: 4}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewTEEngine(tp, te.MaxTotalFlow, 4, Options{K: 4, NoWarmStart: true}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]tm.Demand{}
		nextID := 0
		for b := 0; b < 32; b++ {
			d := tm.Demand{Src: rng.Intn(nNodes), Dst: rng.Intn(nNodes), Amount: 1 + 9*rng.Float64()}
			live[nextID] = d
			warm.Upsert(nextID, d)
			cold.Upsert(nextID, d)
			nextID++
		}
		for round := 0; round < rounds; round++ {
			driveTEDeltas(rng, []*TEEngine{warm, cold}, live, nNodes, &nextID)
			if err := warm.Solve(); err != nil {
				t.Fatalf("seq %d round %d warm: %v", seq, round, err)
			}
			cold.MarkAllDirty()
			if err := cold.Solve(); err != nil {
				t.Fatalf("seq %d round %d cold: %v", seq, round, err)
			}
			if w, cobj := warm.Objective(), cold.Objective(); !approxEq(w, cobj, 1e-6) {
				t.Fatalf("seq %d round %d: warm objective %.12g != cold %.12g", seq, round, w, cobj)
			}
		}
		totalWarmHits += warm.Stats().WarmHits
		totalDualPivots += warm.Stats().DualPivots
	}
	if totalWarmHits == 0 {
		t.Fatal("TE warm engine never actually warm-started; the incremental path is dead")
	}
	if totalDualPivots == 0 {
		t.Fatal("demand-only churn never engaged the dual simplex; rhs deltas are being misclassified")
	}
}

// TestTEEngineConcurrentFlowMatchesCold runs the same churn under the
// MaxConcurrentFlow objective, whose demand changes also touch the fraction
// rows' t coefficients (the primal-warm path, not the dual one).
func TestTEEngineConcurrentFlowMatchesCold(t *testing.T) {
	sequences := 6
	if testing.Short() {
		sequences = 3
	}
	tp := topo.GenerateScaled("Deltacom", 0.3)
	nNodes := tp.G.N
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(5000 + seq)))
		warm, err := NewTEEngine(tp, te.MaxConcurrentFlow, 4, Options{K: 3}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewTEEngine(tp, te.MaxConcurrentFlow, 4, Options{K: 3, NoWarmStart: true}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]tm.Demand{}
		nextID := 0
		for b := 0; b < 20; b++ {
			d := tm.Demand{Src: rng.Intn(nNodes), Dst: rng.Intn(nNodes), Amount: 1 + 4*rng.Float64()}
			live[nextID] = d
			warm.Upsert(nextID, d)
			cold.Upsert(nextID, d)
			nextID++
		}
		for round := 0; round < 3; round++ {
			driveTEDeltas(rng, []*TEEngine{warm, cold}, live, nNodes, &nextID)
			if err := warm.Solve(); err != nil {
				t.Fatalf("seq %d round %d warm: %v", seq, round, err)
			}
			cold.MarkAllDirty()
			if err := cold.Solve(); err != nil {
				t.Fatalf("seq %d round %d cold: %v", seq, round, err)
			}
			if w, cobj := warm.Objective(), cold.Objective(); !approxEq(w, cobj, 1e-6) {
				t.Fatalf("seq %d round %d: warm objective %.12g != cold %.12g", seq, round, w, cobj)
			}
		}
	}
}

// TestTEEngineFeasibleAndTracked: the composed edge flows respect full
// capacities (each sub-problem ran at 1/k), per-commodity flows respect
// demands, dirty tracking skips clean sub-problems, and re-routing a
// commodity (endpoint change) re-splices without losing equivalence.
func TestTEEngineFeasibleAndTracked(t *testing.T) {
	tp := topo.GenerateScaled("Deltacom", 0.3)
	nNodes := tp.G.N
	rng := rand.New(rand.NewSource(77))
	e, err := NewTEEngine(tp, te.MaxTotalFlow, 4, Options{K: 4, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	live := map[int]tm.Demand{}
	for id := 0; id < 40; id++ {
		d := tm.Demand{Src: rng.Intn(nNodes), Dst: rng.Intn(nNodes), Amount: 1 + 9*rng.Float64()}
		live[id] = d
		e.Upsert(id, d)
	}
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	base := e.Stats()
	if base.SubSolves != 4 {
		t.Fatalf("first round solved %d sub-problems, want 4", base.SubSolves)
	}
	checkTEFeasible(t, e, tp, live)

	// One amount change dirties exactly one sub-problem.
	d := live[7]
	d.Amount *= 2
	live[7] = d
	e.Upsert(7, d)
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if got := s.SubSolves - base.SubSolves; got != 1 {
		t.Fatalf("after one-demand delta, %d sub-problems re-solved, want 1", got)
	}

	// Idle round: nothing solves.
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().SubSolves - s.SubSolves; got != 0 {
		t.Fatalf("idle round re-solved %d sub-problems", got)
	}

	// Re-route: an endpoint change replaces the commodity's block.
	d = live[3]
	d.Src, d.Dst = d.Dst, d.Src
	live[3] = d
	e.Upsert(3, d)
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	checkTEFeasible(t, e, tp, live)
}

func checkTEFeasible(t *testing.T, e *TEEngine, tp *topo.Topology, live map[int]tm.Demand) {
	t.Helper()
	ef := e.EdgeFlows()
	for eid, edge := range tp.G.Edges {
		if ef[eid] > edge.Capacity+1e-6*(1+edge.Capacity) {
			t.Fatalf("edge %d over capacity: %g > %g", eid, ef[eid], edge.Capacity)
		}
	}
	for id, d := range live {
		f := e.Flow(id)
		if f > d.Amount+1e-6*(1+d.Amount) {
			t.Fatalf("demand %d over-served: %g > %g", id, f, d.Amount)
		}
		if f < -1e-9 {
			t.Fatalf("demand %d negative flow %g", id, f)
		}
	}
}
