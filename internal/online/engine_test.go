package online

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/cluster"
	"pop/internal/lp"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// driveRandomDeltas applies one random round of deltas to both engines
// identically: arrivals, departures, and weight changes.
func driveRandomDeltas(rng *rand.Rand, engines []*ClusterEngine, pool []cluster.Job, live map[int]cluster.Job, nextID *int) {
	ops := 1 + rng.Intn(6)
	for o := 0; o < ops; o++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.4:
			j := pool[rng.Intn(len(pool))]
			j.ID = *nextID
			*nextID++
			live[j.ID] = j
			for _, e := range engines {
				e.Upsert(j)
			}
		case rng.Float64() < 0.5:
			id := anyKey(rng, live)
			delete(live, id)
			for _, e := range engines {
				e.Remove(id)
			}
		default:
			id := anyKey(rng, live)
			j := live[id]
			j.Weight *= 0.5 + rng.Float64()
			live[id] = j
			for _, e := range engines {
				e.Upsert(j)
			}
		}
	}
}

func anyKey(rng *rand.Rand, m map[int]cluster.Job) int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order before the random draw.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys[rng.Intn(len(keys))]
}

// TestClusterEngineMatchesColdFullSolve is the acceptance-criterion test:
// across ≥50 randomized delta sequences, the incremental warm-started
// engine must match a cold full solve (same partitions, no warm start, all
// sub-problems re-solved) to 1e-6 on the objective, every round.
func TestClusterEngineMatchesColdFullSolve(t *testing.T) {
	sequences := 50
	rounds := 4
	if testing.Short() {
		sequences = 12
	}
	c := cluster.NewCluster(12, 12, 12)
	pool := cluster.GenerateJobs(64, 9, 0.2)
	totalWarmHits := 0
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(1000 + seq)))
		warm, err := NewClusterEngine(c, MaxMinFairness, Options{K: 4}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewClusterEngine(c, MaxMinFairness, Options{K: 4, NoWarmStart: true}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]cluster.Job{}
		nextID := 0
		// Seed a base workload so sub-problems are non-trivial from round 0.
		for b := 0; b < 24; b++ {
			j := pool[rng.Intn(len(pool))]
			j.ID = nextID
			nextID++
			live[j.ID] = j
			warm.Upsert(j)
			cold.Upsert(j)
		}
		for round := 0; round < rounds; round++ {
			driveRandomDeltas(rng, []*ClusterEngine{warm, cold}, pool, live, &nextID)
			if err := warm.Solve(); err != nil {
				t.Fatalf("seq %d round %d warm: %v", seq, round, err)
			}
			cold.MarkAllDirty()
			if err := cold.Solve(); err != nil {
				t.Fatalf("seq %d round %d cold: %v", seq, round, err)
			}
			if w, cobj := warm.Objective(), cold.Objective(); !approxEq(w, cobj, 1e-6) {
				t.Fatalf("seq %d round %d: warm objective %.12g != cold %.12g", seq, round, w, cobj)
			}
		}
		totalWarmHits += warm.Stats().WarmHits
	}
	if totalWarmHits == 0 {
		t.Fatal("warm engine never actually warm-started; the incremental path is dead")
	}
}

// TestClusterEngineSkipsCleanSubProblems: deltas confined to one
// sub-problem must not re-solve the others.
func TestClusterEngineSkipsCleanSubProblems(t *testing.T) {
	c := cluster.NewCluster(8, 8, 8)
	e, err := NewClusterEngine(c, MaxMinFairness, Options{K: 4}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := cluster.GenerateJobs(20, 3, 0)
	for _, j := range jobs {
		e.Upsert(j)
	}
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	base := e.Stats()
	if base.SubSolves != 4 {
		t.Fatalf("first round solved %d sub-problems, want 4", base.SubSolves)
	}

	// One weight change dirties exactly one sub-problem.
	j := jobs[7]
	j.Weight = 3
	e.Upsert(j)
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if got := s.SubSolves - base.SubSolves; got != 1 {
		t.Fatalf("after one-job delta, %d sub-problems re-solved, want 1", got)
	}
	if got := s.SkippedClean - base.SkippedClean; got != 3 {
		t.Fatalf("after one-job delta, %d sub-problems skipped, want 3", got)
	}

	// No deltas at all: nothing solves.
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().SubSolves - s.SubSolves; got != 0 {
		t.Fatalf("idle round re-solved %d sub-problems", got)
	}

	// A capacity change dirties everything.
	e.SetCluster(cluster.NewCluster(8, 8, 16))
	if err := e.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().SubSolves - e.Stats().Rounds; got < 0 {
		t.Fatal("stats accounting broke")
	}
	if got := e.Stats().SubSolves - s.SubSolves; got != 4 {
		t.Fatalf("after capacity change, %d sub-problems re-solved, want 4", got)
	}
}

// TestStablePartitionInvariants: arrivals go to the least-loaded
// sub-problem; departures never move survivors; updates never migrate.
func TestStablePartitionInvariants(t *testing.T) {
	tr, err := newTracker(Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Weights chosen so placement is forced: 5 → p0; 3 → p1; 1 → p2;
	// next (1) goes to p2 again (load 2 < 3 < 5).
	if p := tr.upsert(0, 5); p != 0 {
		t.Fatalf("first arrival to %d, want 0", p)
	}
	if p := tr.upsert(1, 3); p != 1 {
		t.Fatalf("second arrival to %d, want 1", p)
	}
	if p := tr.upsert(2, 1); p != 2 {
		t.Fatalf("third arrival to %d, want 2", p)
	}
	if p := tr.upsert(3, 1); p != 2 {
		t.Fatalf("fourth arrival to %d, want 2 (least loaded)", p)
	}
	before := map[int]int{}
	for id, p := range tr.partOf {
		before[id] = p
	}
	// Departure: survivors stay put.
	tr.remove(1)
	for id, p := range tr.partOf {
		if before[id] != p {
			t.Fatalf("departure moved survivor %d: %d → %d", id, before[id], p)
		}
	}
	// Update: weight change does not migrate.
	if p := tr.upsert(0, 0.1); p != 0 {
		t.Fatalf("update migrated client 0 to %d", p)
	}
	// New arrival lands on the now-emptiest sub-problem (p1, load 0).
	if p := tr.upsert(9, 1); p != 1 {
		t.Fatalf("arrival after departure to %d, want 1", p)
	}
	// Order inside a partition is stable.
	if got := tr.parts[2].ids; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("partition 2 order drifted: %v", got)
	}
}

// TestRebalanceBoundsLoadDrift: with Rebalance on, at most one client moves
// per round, the load spread never widens, and under a static population it
// settles below the lightest member of the heaviest partition — the drift
// bound.
func TestRebalanceBoundsLoadDrift(t *testing.T) {
	tr, err := newTracker(Options{K: 3, Rebalance: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	noop := func(p int, ids []int) (subReport, error) { return subReport{}, nil }

	// Build a skew: fill all partitions, then drain two of them by
	// departures so partition loads diverge hard.
	for id := 0; id < 60; id++ {
		tr.upsert(id, 0.5+rng.Float64())
	}
	for id := 0; id < 60; id++ {
		if p := tr.partOf[id]; p != 0 && rng.Float64() < 0.8 {
			tr.remove(id)
		}
	}

	spread := func() float64 {
		hi, lo := math.Inf(-1), math.Inf(1)
		for _, part := range tr.parts {
			hi = math.Max(hi, part.load)
			lo = math.Min(lo, part.load)
		}
		return hi - lo
	}

	prev := spread()
	for round := 0; round < 40; round++ {
		moved := tr.stats.Rebalances
		tr.rebalance()
		if err := tr.solveDirty(noop); err != nil {
			t.Fatal(err)
		}
		if tr.stats.Rebalances-moved > 1 {
			t.Fatalf("round %d moved %d clients, want ≤ 1", round, tr.stats.Rebalances-moved)
		}
		if s := spread(); s > prev+1e-9 {
			t.Fatalf("round %d widened the spread: %g → %g", round, prev, s)
		} else {
			prev = s
		}
	}
	if tr.stats.Rebalances == 0 {
		t.Fatal("rebalancer never moved a client off the skew")
	}
	// At the fixpoint the spread is below the lightest member of the
	// heaviest partition (otherwise that member would still move).
	hi := 0
	for p := range tr.parts {
		if tr.parts[p].load > tr.parts[hi].load {
			hi = p
		}
	}
	lightest := math.Inf(1)
	for _, id := range tr.parts[hi].ids {
		lightest = math.Min(lightest, tr.loadOf[id])
	}
	if len(tr.parts[hi].ids) > 0 && prev > lightest+1e-9 {
		t.Fatalf("spread %g did not settle below the heaviest partition's lightest member %g", prev, lightest)
	}
	// Sanity: partition bookkeeping survived the moves.
	for id, p := range tr.partOf {
		found := false
		for _, m := range tr.parts[p].ids {
			if m == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("client %d claims partition %d but is not a member", id, p)
		}
	}
}

// TestClusterEngineRebalanceMatchesCold: the drift-bounding moves are
// deterministic, so a warm and a cold engine with Rebalance on take the
// same partition trajectory and must agree on the POP objective.
func TestClusterEngineRebalanceMatchesCold(t *testing.T) {
	c := cluster.NewCluster(12, 12, 12)
	pool := cluster.GenerateJobs(64, 21, 0.2)
	rng := rand.New(rand.NewSource(99))
	warm, err := NewClusterEngine(c, MaxMinFairness, Options{K: 4, Rebalance: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewClusterEngine(c, MaxMinFairness, Options{K: 4, Rebalance: true, NoWarmStart: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	live := map[int]cluster.Job{}
	nextID := 0
	for b := 0; b < 30; b++ {
		j := pool[rng.Intn(len(pool))]
		j.ID = nextID
		nextID++
		live[j.ID] = j
		warm.Upsert(j)
		cold.Upsert(j)
	}
	for round := 0; round < 8; round++ {
		driveRandomDeltas(rng, []*ClusterEngine{warm, cold}, pool, live, &nextID)
		if err := warm.Solve(); err != nil {
			t.Fatalf("round %d warm: %v", round, err)
		}
		cold.MarkAllDirty()
		if err := cold.Solve(); err != nil {
			t.Fatalf("round %d cold: %v", round, err)
		}
		if w, cobj := warm.Objective(), cold.Objective(); !approxEq(w, cobj, 1e-6) {
			t.Fatalf("round %d: warm objective %.12g != cold %.12g", round, w, cobj)
		}
	}
	if warm.Stats().Rebalances == 0 && cold.Stats().Rebalances == 0 {
		t.Log("note: no rebalance triggered this sequence")
	}
}

// TestClusterEngineAllocationFeasible: the composed allocation must satisfy
// the full cluster's budgets (sub-cluster capacities sum to the original).
func TestClusterEngineAllocationFeasible(t *testing.T) {
	c := cluster.NewCluster(10, 10, 10)
	e, err := NewClusterEngine(c, MinMakespan, Options{K: 3, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := cluster.GenerateJobs(30, 17, 0.3)
	alloc, err := e.Step(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.VerifyFeasible(jobs, c, alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Shrink the active set; the composed allocation must track it.
	alloc, err = e.Step(jobs[:11], c)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.EffThr) != 11 {
		t.Fatalf("allocation has %d rows, want 11", len(alloc.EffThr))
	}
	if err := cluster.VerifyFeasible(jobs[:11], c, alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Departures != 19 {
		t.Fatalf("departures = %d, want 19", st.Departures)
	}
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := NewClusterEngine(cluster.NewCluster(1, 1, 1), MaxMinFairness, Options{K: 0}, lp.Options{}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewLBEngine(Options{K: -1}, lp.Options{}); err == nil {
		t.Fatal("K=-1 accepted")
	}
}
