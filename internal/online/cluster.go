package online

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"pop/internal/cluster"
	"pop/internal/lp"
)

// ClusterPolicy selects the solo scheduling policy a ClusterEngine runs in
// each sub-problem.
type ClusterPolicy int8

const (
	// MaxMinFairness is the §4.1 heterogeneity-aware least-attained-service
	// policy (no space sharing).
	MaxMinFairness ClusterPolicy = iota
	// MinMakespan is the §4.1 makespan-minimizing policy.
	MinMakespan
)

func (p ClusterPolicy) String() string {
	switch p {
	case MaxMinFairness:
		return "max-min-fairness"
	case MinMakespan:
		return "min-makespan"
	}
	return fmt.Sprintf("ClusterPolicy(%d)", int8(p))
}

// clusterSubResult caches one sub-problem's last allocation.
type clusterSubResult struct {
	ids       []int
	index     map[int]int // id -> position in ids
	alloc     *cluster.Allocation
	objective float64
}

// clusterSub is one sub-problem's persistent LP state: the live model and
// the member list (in block order) it currently encodes. Between rounds the
// model is mutated in place — blocks spliced for arrivals/departures,
// coefficients and right-hand sides patched for data changes — so a
// re-solve pays pivots, not construction.
//
// Block layout, for n members over r GPU types: variables are r allocation
// fractions per member (block i at [i·r, (i+1)·r)) then the shared epigraph
// t at n·r; rows are a time row and an objective row per member (block i at
// [2i, 2i+2)) then r shared capacity rows at [2n, 2n+r).
type clusterSub struct {
	model *lp.Model
	ids   []int
	// totalZ and cap fingerprint the equal-share inputs the model's
	// objective rows were computed against. Under MaxMinFairness a change
	// in either rotates every member's denominator at once — a global
	// coefficient refresh that leaves the stale basis worthless, so the
	// sync drops it (keeping the model) rather than pay a fruitless warm
	// repair.
	totalZ float64
	cap    []float64
}

// ClusterEngine incrementally maintains a POP allocation for the solo GPU
// scheduling policies: jobs arrive, depart, and change; the engine keeps
// one mutable LP model per sub-cluster, applies deltas in place, and
// re-solves only the dirtied models — through the dual simplex when only
// capacities moved, warm-started otherwise. Not safe for concurrent use.
type ClusterEngine struct {
	t       *tracker
	policy  ClusterPolicy
	lpOpts  lp.Options
	c       cluster.Cluster
	sub     cluster.Cluster // c.Split(K)
	haveC   bool
	jobs    map[int]cluster.Job
	subs    []*clusterSub
	results []*clusterSubResult
}

// NewClusterEngine creates an engine for cluster c running the given solo
// policy with K sub-problems.
func NewClusterEngine(c cluster.Cluster, policy ClusterPolicy, opts Options, lpOpts lp.Options) (*ClusterEngine, error) {
	t, err := newTracker(opts)
	if err != nil {
		return nil, err
	}
	e := &ClusterEngine{
		t:       t,
		policy:  policy,
		lpOpts:  lpOpts,
		jobs:    make(map[int]cluster.Job),
		subs:    make([]*clusterSub, opts.K),
		results: make([]*clusterSubResult, opts.K),
	}
	for p := range e.subs {
		e.subs[p] = &clusterSub{}
	}
	e.SetCluster(c)
	return e, nil
}

// SetCluster installs a new resource pool. A capacity change dirties every
// sub-problem (each holds 1/k of every GPU type); under MinMakespan it is a
// pure rhs delta, so the re-solves ride the dual simplex.
func (e *ClusterEngine) SetCluster(c cluster.Cluster) {
	if e.haveC && clustersEqual(e.c, c) {
		return
	}
	e.c = c
	e.sub = c.Split(e.t.opts.K)
	e.haveC = true
	e.t.markAllDirty()
}

func clustersEqual(a, b cluster.Cluster) bool {
	if len(a.NumGPUs) != len(b.NumGPUs) {
		return false
	}
	for i := range a.NumGPUs {
		if a.NumGPUs[i] != b.NumGPUs[i] {
			return false
		}
	}
	return true
}

// Upsert adds job j (keyed by j.ID) or applies a change to it. Unchanged
// re-submissions are no-ops and dirty nothing.
func (e *ClusterEngine) Upsert(j cluster.Job) {
	if old, ok := e.jobs[j.ID]; ok {
		if jobsEqual(old, j) {
			return
		}
		e.jobs[j.ID] = j
		e.t.upsert(j.ID, j.Scale)
		e.t.touch(j.ID)
		return
	}
	e.jobs[j.ID] = j
	e.t.upsert(j.ID, j.Scale)
}

// Remove drops the job; survivors keep their sub-problems.
func (e *ClusterEngine) Remove(id int) bool {
	if _, ok := e.jobs[id]; !ok {
		return false
	}
	delete(e.jobs, id)
	return e.t.remove(id)
}

func jobsEqual(a, b cluster.Job) bool {
	if a.Weight != b.Weight || a.Scale != b.Scale || a.NumSteps != b.NumSteps ||
		a.Priority != b.Priority || a.MemFrac != b.MemFrac || len(a.Throughput) != len(b.Throughput) {
		return false
	}
	for i := range a.Throughput {
		if a.Throughput[i] != b.Throughput[i] {
			return false
		}
	}
	return true
}

// MarkAllDirty forces a full re-solve on the next Solve (benchmark and
// testing hook).
func (e *ClusterEngine) MarkAllDirty() { e.t.markAllDirty() }

// NumJobs reports the number of jobs currently held.
func (e *ClusterEngine) NumJobs() int { return len(e.jobs) }

// Jobs returns the live jobs in ascending-ID order.
func (e *ClusterEngine) Jobs() []cluster.Job {
	out := make([]cluster.Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Cluster returns the current resource pool.
func (e *ClusterEngine) Cluster() cluster.Cluster { return e.c }

// Stats returns the engine's work counters.
func (e *ClusterEngine) Stats() Stats { return e.t.stats }

// Solve re-solves every dirty sub-problem from its persistent model,
// leaving clean ones untouched.
func (e *ClusterEngine) Solve() error {
	e.t.rebalance()
	return e.t.solveDirty(func(p int, ids []int) (subReport, error) {
		if len(ids) == 0 {
			e.results[p] = &clusterSubResult{index: map[int]int{}}
			e.subs[p] = &clusterSub{}
			return subReport{}, nil
		}
		members := make([]cluster.Job, len(ids))
		for i, id := range ids {
			members[i] = e.jobs[id]
		}
		start := time.Now()
		m := e.syncModel(p, ids, members)
		warmAttempted := m.HasBasis()
		buildNs := time.Since(start).Nanoseconds()

		start = time.Now()
		sol, err := m.SolveWithOptions(e.lpOpts)
		solveNs := time.Since(start).Nanoseconds()
		if err != nil {
			return subReport{}, err
		}
		if sol.Status != lp.Optimal {
			return subReport{}, fmt.Errorf("%v LP %v", e.policy, sol.Status)
		}
		r := e.sub.NumTypes()
		alloc := &cluster.Allocation{
			X:           make([][]float64, len(ids)),
			EffThr:      make([]float64, len(ids)),
			LPVariables: m.NumVariables(),
		}
		index := make(map[int]int, len(ids))
		for i := range ids {
			index[ids[i]] = i
			alloc.X[i] = make([]float64, r)
			copy(alloc.X[i], sol.X[i*r:(i+1)*r])
			alloc.EffThr[i] = cluster.EffectiveThroughput(members[i], alloc.X[i])
		}
		e.results[p] = &clusterSubResult{
			ids:       append([]int(nil), ids...),
			index:     index,
			alloc:     alloc,
			objective: sol.Objective,
		}
		return subReport{
			warmAttempted: warmAttempted,
			warmStarted:   sol.WarmStarted,
			iterations:    sol.Iterations,
			dualPivots:    sol.DualPivots,
			buildNs:       buildNs,
			solveNs:       solveNs,
		}, nil
	})
}

// syncModel brings partition p's persistent model in line with the current
// member list and data, building it fresh only when there is no model yet,
// warm starts are disabled, or membership churned beyond recognition.
// Departed members' blocks are spliced out, arrivals' blocks appended, and
// every data-dependent coefficient and rhs rewritten — the model's setters
// no-op on unchanged values, so the resulting delta class (and with it the
// dual-simplex eligibility) stays exact.
func (e *ClusterEngine) syncModel(p int, ids []int, members []cluster.Job) *lp.Model {
	cs := e.subs[p]
	r := e.sub.NumTypes()
	// Under MaxMinFairness, a shift in the equal-share inputs (total scale
	// or capacity) rotates every member's denominator at once; the stale
	// basis carries nothing through that, so it is dropped below — and when
	// membership also changed, block splicing buys nothing over the cheaper
	// fresh build.
	globalRot := e.policy == MaxMinFairness &&
		(totalScale(members) != cs.totalZ || !slices.Equal(cs.cap, e.sub.NumGPUs))
	if cs.model == nil || e.t.opts.NoWarmStart || overlap(cs.ids, ids) < 0.5 ||
		(globalRot && !slices.Equal(cs.ids, ids)) {
		return e.rebuild(cs, ids, members)
	}
	m := cs.model
	if !syncMemberBlocks(m, &cs.ids, ids, r, 2, func(bi int) { e.appendJobBlock(m, bi) }) {
		return e.rebuild(cs, ids, members)
	}

	// Full data refresh against the current members and capacities: each
	// member's own objective row entry by entry, the shared capacity rows
	// through the bulk setter (one pass per row, not per member).
	n := len(ids)
	tv := n * r
	eq := cluster.EqualShare(members, e.sub)
	for i, j := range members {
		coefs, tc := clusterObjCoefs(e.policy, j, eq[i])
		row := 2*i + 1
		for k := 0; k < r; k++ {
			m.SetCoeff(row, i*r+k, coefs[k])
		}
		m.SetCoeff(row, tv, tc)
	}
	idxs := make([]int, n)
	scales := make([]float64, n)
	for k := 0; k < r; k++ {
		for i, j := range members {
			idxs[i] = i*r + k
			scales[i] = j.Scale
		}
		m.SetCoeffs(2*n+k, idxs, scales)
		m.SetRHS(2*n+k, e.sub.NumGPUs[k])
	}
	if globalRot {
		m.ForgetBasis()
	}
	cs.fingerprint(members, e.sub)
	return m
}

func (e *ClusterEngine) rebuild(cs *clusterSub, ids []int, members []cluster.Job) *lp.Model {
	cs.model = buildClusterModel(e.policy, members, e.sub)
	cs.ids = append([]int(nil), ids...)
	cs.fingerprint(members, e.sub)
	return cs.model
}

func (cs *clusterSub) fingerprint(members []cluster.Job, sub cluster.Cluster) {
	cs.totalZ = totalScale(members)
	cs.cap = append(cs.cap[:0], sub.NumGPUs...)
}

func totalScale(members []cluster.Job) float64 {
	z := 0.0
	for _, j := range members {
		z += j.Scale
	}
	return z
}

// appendJobBlock splices a new member block (r variables, a time row, and a
// structurally-complete objective row) at block index bi. Coefficient
// values — including the member's column in the shared capacity rows — are
// left to the refresh pass, which runs on every sync.
func (e *ClusterEngine) appendJobBlock(m *lp.Model, bi int) {
	r := e.sub.NumTypes()
	at := bi * r
	m.InsertVariables(at, r, 0, 0, 1)
	vars := make([]int, r)
	ones := make([]float64, r)
	zeros := make([]float64, r+1)
	for k := 0; k < r; k++ {
		vars[k] = at + k
		ones[k] = 1
	}
	m.InsertConstraint(2*bi, vars, ones, lp.LE, 1, "time")
	tv := (bi + 1) * r // t's index after the insertion
	m.InsertConstraint(2*bi+1, append(append([]int(nil), vars...), tv), zeros, lp.GE, 0, "obj")
}

// clusterObjCoefs computes a member's objective-row coefficients: its r
// throughput ratios and the epigraph coefficient. Degenerate jobs (no
// remaining steps, or zero equal-share throughput) get an all-zero row —
// the vacuous 0 ≥ 0 that keeps the block layout without constraining t.
func clusterObjCoefs(policy ClusterPolicy, j cluster.Job, eqShare []float64) ([]float64, float64) {
	r := len(j.Throughput)
	var denom float64
	switch policy {
	case MinMakespan:
		denom = j.NumSteps
	default:
		denom = j.Weight * cluster.EffectiveThroughput(j, eqShare) * j.Scale
	}
	coefs := make([]float64, r)
	if denom <= 0 {
		return coefs, 0
	}
	for i := 0; i < r; i++ {
		coefs[i] = j.Throughput[i] / denom
	}
	return coefs, -1
}

// Objective sums the sub-problem objectives — a checksum the equivalence
// tests compare against a cold full solve.
func (e *ClusterEngine) Objective() float64 {
	total := 0.0
	for _, r := range e.results {
		if r != nil {
			total += r.objective
		}
	}
	return total
}

// Step applies the diff between the engine's state and the given active set
// (arrivals, changes, departures), re-solves incrementally, and returns the
// allocation in active-set order. It is the bridge into round loops like
// gavelsim's.
func (e *ClusterEngine) Step(active []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	e.SetCluster(c)
	seen := make(map[int]bool, len(active))
	for _, j := range active {
		seen[j.ID] = true
		e.Upsert(j)
	}
	var gone []int
	for id := range e.jobs {
		if !seen[id] {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		e.Remove(id)
	}
	if err := e.Solve(); err != nil {
		return nil, err
	}

	out := &cluster.Allocation{
		X:      make([][]float64, len(active)),
		EffThr: make([]float64, len(active)),
	}
	counted := make([]bool, len(e.results))
	for pos, j := range active {
		p, ok := e.t.partOf[j.ID]
		if !ok || e.results[p] == nil {
			return nil, fmt.Errorf("online: job %d has no sub-problem result", j.ID)
		}
		res := e.results[p]
		i, ok := res.index[j.ID]
		if !ok {
			return nil, fmt.Errorf("online: job %d missing from sub-problem %d result", j.ID, p)
		}
		// Copy: handing out the cached row would let a caller's in-place
		// edits corrupt the allocation served on later clean rounds.
		out.X[pos] = append([]float64(nil), res.alloc.X[i]...)
		out.EffThr[pos] = res.alloc.EffThr[i]
		if !counted[p] {
			counted[p] = true
			out.LPVariables += res.alloc.LPVariables
		}
	}
	return out, nil
}

// Policy adapts the engine to gavelsim's round loop: each call diffs the
// active set against engine state and re-solves incrementally. The returned
// function has gavelsim.Policy's signature.
func (e *ClusterEngine) Policy() func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	return func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return e.Step(jobs, c)
	}
}

// buildClusterModel assembles the solo policy epigraph LP as a mutable
// model in the block layout documented on clusterSub. Objective rows are
// always structurally complete (r+1 entries, zeroed when the member is
// degenerate) so later data refreshes patch values without fill-in. The
// formulations match cluster.MaxMinFairness / cluster.MinMakespan (modulo
// row ordering, which changes neither feasible set nor optimum).
func buildClusterModel(policy ClusterPolicy, members []cluster.Job, sub cluster.Cluster) *lp.Model {
	r := sub.NumTypes()
	m := lp.NewModel(lp.Maximize)
	for range members {
		m.AddVariables(r, 0, 0, 1)
	}
	tv := m.AddVariable(1, math.Inf(-1), lp.Inf, "t")

	eq := cluster.EqualShare(members, sub)
	for idx, j := range members {
		vars := make([]int, r)
		ones := make([]float64, r)
		for i := 0; i < r; i++ {
			vars[i] = idx*r + i
			ones[i] = 1
		}
		m.AddConstraint(vars, ones, lp.LE, 1, "time")

		coefs, tc := clusterObjCoefs(policy, j, eq[idx])
		idxs := append(append([]int(nil), vars...), tv)
		m.AddConstraint(idxs, append(coefs, tc), lp.GE, 0, "obj")
	}
	for i := 0; i < r; i++ {
		idxs := make([]int, len(members))
		coefs := make([]float64, len(members))
		for idx, j := range members {
			idxs[idx] = idx*r + i
			coefs[idx] = j.Scale
		}
		m.AddConstraint(idxs, coefs, lp.LE, sub.NumGPUs[i], "gpus")
	}
	return m
}
