package online

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"pop/internal/cluster"
	"pop/internal/lp"
)

// ClusterPolicy selects the scheduling policy a ClusterEngine runs in each
// sub-problem.
type ClusterPolicy int8

const (
	// MaxMinFairness is the §4.1 heterogeneity-aware least-attained-service
	// policy (no space sharing).
	MaxMinFairness ClusterPolicy = iota
	// MinMakespan is the §4.1 makespan-minimizing policy.
	MinMakespan
	// SpaceSharing is max-min fairness with space sharing (§4.1, Fig 6):
	// allocation slots exist for every pair of single-GPU jobs, so two jobs
	// can time-share one GPU with interference-reduced throughputs. Pairs
	// only form within a sub-problem (the paper's §5.3 cubic reduction).
	SpaceSharing
)

func (p ClusterPolicy) String() string {
	switch p {
	case MaxMinFairness:
		return "max-min-fairness"
	case MinMakespan:
		return "min-makespan"
	case SpaceSharing:
		return "space-sharing"
	}
	return fmt.Sprintf("ClusterPolicy(%d)", int8(p))
}

// clusterSubResult caches one sub-problem's last allocation.
type clusterSubResult struct {
	ids       []int
	index     map[int]int // id -> position in ids
	alloc     *cluster.Allocation
	objective float64
}

// clusterState is the domain state shared by the cluster adapters: the
// resource pool, the live jobs, and the per-partition results. (The
// equal-share fingerprints that used to live here — detecting when a total
// scale or capacity shift rotated every fairness denominator at once — are
// gone: lp.Model now prices the refreshed coefficients against its previous
// duals and drops a hostile basis itself.)
type clusterState struct {
	policy  ClusterPolicy
	c       cluster.Cluster
	sub     cluster.Cluster // c.Split(K)
	haveC   bool
	jobs    map[int]cluster.Job
	results []*clusterSubResult
}

func (st *clusterState) member(id int) cluster.Job { return st.jobs[id] }

// soloIDs extracts the member ids from a layout's single-owner blocks, in
// block order — the member list both cluster adapters key their rows by.
func soloIDs(layout []Block) []int {
	ids := make([]int, 0, len(layout))
	for _, b := range layout {
		if b.Key.B == NoPartner {
			ids = append(ids, b.Key.A)
		}
	}
	return ids
}

func (st *clusterState) soloMembers(layout []Block) []cluster.Job {
	members := make([]cluster.Job, 0, len(layout))
	for _, b := range layout {
		if b.Key.B == NoPartner {
			members = append(members, st.jobs[b.Key.A])
		}
	}
	return members
}

func (st *clusterState) clear(p int) {
	st.results[p] = &clusterSubResult{index: map[int]int{}}
}

// ClusterEngine incrementally maintains a POP allocation for the GPU
// scheduling policies: jobs arrive, depart, and change; the engine keeps one
// mutable LP model per sub-cluster, applies deltas in place, and re-solves
// only the dirtied models — through the dual simplex when only capacities
// moved, warm-started otherwise. The SpaceSharing policy runs the
// pair-variable LP online: each partition's model holds a slot block per
// solo job plus one per single-GPU job pair, spliced as membership churns.
// Not safe for concurrent use.
type ClusterEngine struct {
	st  *clusterState
	eng *engine
}

// NewClusterEngine creates an engine for cluster c running the given policy
// with K sub-problems.
func NewClusterEngine(c cluster.Cluster, policy ClusterPolicy, opts Options, lpOpts lp.Options) (*ClusterEngine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	st := &clusterState{
		policy:  policy,
		jobs:    make(map[int]cluster.Job),
		results: make([]*clusterSubResult, opts.K),
	}
	var ad Adapter
	if policy == SpaceSharing {
		ad = &pairAdapter{st}
	} else {
		ad = &soloAdapter{st}
	}
	eng, err := newEngine(ad, opts, lpOpts)
	if err != nil {
		return nil, err
	}
	e := &ClusterEngine{st: st, eng: eng}
	e.SetCluster(c)
	return e, nil
}

// SetCluster installs a new resource pool. A capacity change dirties every
// sub-problem (each holds 1/k of every GPU type); under MinMakespan it is a
// pure rhs delta, so the re-solves ride the dual simplex.
func (e *ClusterEngine) SetCluster(c cluster.Cluster) {
	if e.st.haveC && clustersEqual(e.st.c, c) {
		return
	}
	e.st.c = c
	e.st.sub = c.Split(e.eng.t.opts.K)
	e.st.haveC = true
	e.eng.t.markAllDirty()
}

func clustersEqual(a, b cluster.Cluster) bool {
	if len(a.NumGPUs) != len(b.NumGPUs) {
		return false
	}
	for i := range a.NumGPUs {
		if a.NumGPUs[i] != b.NumGPUs[i] {
			return false
		}
	}
	return true
}

// Upsert adds job j (keyed by j.ID) or applies a change to it. Unchanged
// re-submissions are no-ops and dirty nothing.
func (e *ClusterEngine) Upsert(j cluster.Job) {
	if old, ok := e.st.jobs[j.ID]; ok {
		if jobsEqual(old, j) {
			return
		}
		e.st.jobs[j.ID] = j
		e.eng.t.upsert(j.ID, j.Scale)
		e.eng.t.touch(j.ID)
		return
	}
	e.st.jobs[j.ID] = j
	e.eng.t.upsert(j.ID, j.Scale)
}

// Remove drops the job; survivors keep their sub-problems.
func (e *ClusterEngine) Remove(id int) bool {
	if _, ok := e.st.jobs[id]; !ok {
		return false
	}
	delete(e.st.jobs, id)
	return e.eng.t.remove(id)
}

func jobsEqual(a, b cluster.Job) bool {
	if a.Weight != b.Weight || a.Scale != b.Scale || a.NumSteps != b.NumSteps ||
		a.Priority != b.Priority || a.MemFrac != b.MemFrac || len(a.Throughput) != len(b.Throughput) {
		return false
	}
	for i := range a.Throughput {
		if a.Throughput[i] != b.Throughput[i] {
			return false
		}
	}
	return true
}

// MarkAllDirty forces a full re-solve on the next Solve (benchmark and
// testing hook).
func (e *ClusterEngine) MarkAllDirty() { e.eng.t.markAllDirty() }

// NumJobs reports the number of jobs currently held.
func (e *ClusterEngine) NumJobs() int { return len(e.st.jobs) }

// Jobs returns the live jobs in ascending-ID order.
func (e *ClusterEngine) Jobs() []cluster.Job {
	out := make([]cluster.Job, 0, len(e.st.jobs))
	for _, j := range e.st.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Cluster returns the current resource pool.
func (e *ClusterEngine) Cluster() cluster.Cluster { return e.st.c }

// Stats returns the engine's work counters.
func (e *ClusterEngine) Stats() Stats { return e.eng.t.stats }

// Solve re-solves every dirty sub-problem from its persistent model,
// leaving clean ones untouched.
func (e *ClusterEngine) Solve() error {
	e.eng.t.rebalance()
	return e.eng.solveRound()
}

// Objective sums the sub-problem objectives — a checksum the equivalence
// tests compare against a cold full solve.
func (e *ClusterEngine) Objective() float64 {
	total := 0.0
	for _, r := range e.st.results {
		if r != nil {
			total += r.objective
		}
	}
	return total
}

// Step applies the diff between the engine's state and the given active set
// (arrivals, changes, departures), re-solves incrementally, and returns the
// allocation in active-set order (solo policies: X rows per job; space
// sharing: the composed Pairs/PairX slot list). It is the bridge into round
// loops like gavelsim's.
func (e *ClusterEngine) Step(active []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	e.SetCluster(c)
	seen := make(map[int]bool, len(active))
	for _, j := range active {
		seen[j.ID] = true
		e.Upsert(j)
	}
	var gone []int
	for id := range e.st.jobs {
		if !seen[id] {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		e.Remove(id)
	}
	if err := e.Solve(); err != nil {
		return nil, err
	}
	if e.st.policy == SpaceSharing {
		return e.composePairs(active)
	}

	out := &cluster.Allocation{
		X:      make([][]float64, len(active)),
		EffThr: make([]float64, len(active)),
	}
	counted := make([]bool, len(e.st.results))
	for pos, j := range active {
		res, i, p, err := e.resultOf(j.ID)
		if err != nil {
			return nil, err
		}
		// Copy: handing out the cached row would let a caller's in-place
		// edits corrupt the allocation served on later clean rounds.
		out.X[pos] = append([]float64(nil), res.alloc.X[i]...)
		out.EffThr[pos] = res.alloc.EffThr[i]
		if !counted[p] {
			counted[p] = true
			out.LPVariables += res.alloc.LPVariables
		}
	}
	return out, nil
}

// resultOf locates job id's cached sub-problem result and its local index.
func (e *ClusterEngine) resultOf(id int) (*clusterSubResult, int, int, error) {
	p, ok := e.eng.t.partOf[id]
	if !ok || e.st.results[p] == nil {
		return nil, 0, 0, fmt.Errorf("online: job %d has no sub-problem result", id)
	}
	res := e.st.results[p]
	i, ok := res.index[id]
	if !ok {
		return nil, 0, 0, fmt.Errorf("online: job %d missing from sub-problem %d result", id, p)
	}
	return res, i, p, nil
}

// composePairs concatenates the per-partition pair allocations onto the
// active set (POP's reduce step for the space-sharing policy).
func (e *ClusterEngine) composePairs(active []cluster.Job) (*cluster.Allocation, error) {
	out := &cluster.Allocation{EffThr: make([]float64, len(active))}
	counted := make([]bool, len(e.st.results))
	for pos, j := range active {
		res, i, p, err := e.resultOf(j.ID)
		if err != nil {
			return nil, err
		}
		out.EffThr[pos] = res.alloc.EffThr[i]
		if !counted[p] {
			counted[p] = true
			out.LPVariables += res.alloc.LPVariables
			for q := range res.alloc.Pairs {
				out.Pairs = append(out.Pairs, res.alloc.Pairs[q])
				out.PairX = append(out.PairX, append([]float64(nil), res.alloc.PairX[q]...))
			}
		}
	}
	return out, nil
}

// Policy adapts the engine to gavelsim's round loop: each call diffs the
// active set against engine state and re-solves incrementally. The returned
// function has gavelsim.Policy's signature.
func (e *ClusterEngine) Policy() func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	return func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return e.Step(jobs, c)
	}
}

// soloAdapter is the Adapter for the solo policies (MaxMinFairness,
// MinMakespan): one block per job.
//
// Block layout, for n members over r GPU types: block i holds the member's
// r allocation-fraction variables and two rows — a time row and a
// structurally-complete objective row; the shared epigraph t trails the
// block variables and the r shared capacity rows trail the block rows.
type soloAdapter struct {
	*clusterState
}

func (ad *soloAdapter) Layout(p int, ids []int) []Block {
	r := ad.sub.NumTypes()
	layout := make([]Block, len(ids))
	for i, id := range ids {
		layout[i] = Block{Key: BlockKey{id, NoPartner}, Vars: r, Rows: 2}
	}
	return layout
}

func (ad *soloAdapter) BuildModel(p int, layout []Block) *lp.Model {
	return buildClusterModel(ad.policy, ad.soloMembers(layout), ad.sub)
}

// SpliceBlock inserts a member block (r variables, a time row, and a
// structurally-complete objective row). Coefficient values — including the
// member's column in the shared capacity rows — are left to RefreshModel,
// which runs on every splice pass.
func (ad *soloAdapter) SpliceBlock(m *lp.Model, p int, b Block, varAt, rowAt int) {
	r := ad.sub.NumTypes()
	m.InsertVariables(varAt, r, 0, 0, 1)
	vars := make([]int, r)
	ones := make([]float64, r)
	zeros := make([]float64, r+1)
	for k := 0; k < r; k++ {
		vars[k] = varAt + k
		ones[k] = 1
	}
	m.InsertConstraint(rowAt, vars, ones, lp.LE, 1, "time")
	tv := m.NumVariables() - 1 // the shared epigraph stays the last variable
	m.InsertConstraint(rowAt+1, append(append([]int(nil), vars...), tv), zeros, lp.GE, 0, "obj")
}

// RefreshModel rewrites every data-dependent value against the current
// members and capacities: each member's own objective row entry by entry,
// the shared capacity rows through the bulk setter (one pass per row, not
// per member).
func (ad *soloAdapter) RefreshModel(m *lp.Model, p int, layout []Block) {
	members := ad.soloMembers(layout)
	n := len(members)
	r := ad.sub.NumTypes()
	tv := n * r
	eq := cluster.EqualShare(members, ad.sub)
	for i, j := range members {
		coefs, tc := clusterObjCoefs(ad.policy, j, eq[i])
		row := 2*i + 1
		for k := 0; k < r; k++ {
			m.SetCoeff(row, i*r+k, coefs[k])
		}
		m.SetCoeff(row, tv, tc)
	}
	idxs := make([]int, n)
	scales := make([]float64, n)
	for k := 0; k < r; k++ {
		for i, j := range members {
			idxs[i] = i*r + k
			scales[i] = j.Scale
		}
		m.SetCoeffs(2*n+k, idxs, scales)
		m.SetRHS(2*n+k, ad.sub.NumGPUs[k])
	}
}

func (ad *soloAdapter) Extract(p int, layout []Block, sol *lp.Solution, nVars int) error {
	if sol.Status != lp.Optimal {
		return fmt.Errorf("%v LP %v", ad.policy, sol.Status)
	}
	ids := soloIDs(layout)
	r := ad.sub.NumTypes()
	alloc := &cluster.Allocation{
		X:           make([][]float64, len(ids)),
		EffThr:      make([]float64, len(ids)),
		LPVariables: nVars,
	}
	index := make(map[int]int, len(ids))
	for i, id := range ids {
		index[id] = i
		alloc.X[i] = make([]float64, r)
		copy(alloc.X[i], sol.X[i*r:(i+1)*r])
		alloc.EffThr[i] = cluster.EffectiveThroughput(ad.jobs[id], alloc.X[i])
	}
	ad.results[p] = &clusterSubResult{
		ids:       slices.Clone(ids),
		index:     index,
		alloc:     alloc,
		objective: sol.Objective,
	}
	return nil
}

func (ad *soloAdapter) Clear(p int) { ad.clear(p) }

// clusterObjCoefs computes a member's objective-row coefficients: its r
// throughput ratios and the epigraph coefficient. Degenerate jobs (no
// remaining steps, or zero equal-share throughput) get an all-zero row —
// the vacuous 0 ≥ 0 that keeps the block layout without constraining t.
func clusterObjCoefs(policy ClusterPolicy, j cluster.Job, eqShare []float64) ([]float64, float64) {
	r := len(j.Throughput)
	var denom float64
	switch policy {
	case MinMakespan:
		denom = j.NumSteps
	default:
		denom = j.Weight * cluster.EffectiveThroughput(j, eqShare) * j.Scale
	}
	coefs := make([]float64, r)
	if denom <= 0 {
		return coefs, 0
	}
	for i := 0; i < r; i++ {
		coefs[i] = j.Throughput[i] / denom
	}
	return coefs, -1
}

// buildClusterModel assembles the solo policy epigraph LP as a mutable
// model in the block layout documented on soloAdapter. Objective rows are
// always structurally complete (r+1 entries, zeroed when the member is
// degenerate) so later data refreshes patch values without fill-in. The
// formulations match cluster.MaxMinFairness / cluster.MinMakespan (modulo
// row ordering, which changes neither feasible set nor optimum).
func buildClusterModel(policy ClusterPolicy, members []cluster.Job, sub cluster.Cluster) *lp.Model {
	r := sub.NumTypes()
	m := lp.NewModel(lp.Maximize)
	for range members {
		m.AddVariables(r, 0, 0, 1)
	}
	tv := m.AddVariable(1, math.Inf(-1), lp.Inf, "t")

	eq := cluster.EqualShare(members, sub)
	for idx, j := range members {
		vars := make([]int, r)
		ones := make([]float64, r)
		for i := 0; i < r; i++ {
			vars[i] = idx*r + i
			ones[i] = 1
		}
		m.AddConstraint(vars, ones, lp.LE, 1, "time")

		coefs, tc := clusterObjCoefs(policy, j, eq[idx])
		idxs := append(append([]int(nil), vars...), tv)
		m.AddConstraint(idxs, append(coefs, tc), lp.GE, 0, "obj")
	}
	for i := 0; i < r; i++ {
		idxs := make([]int, len(members))
		coefs := make([]float64, len(members))
		for idx, j := range members {
			idxs[idx] = idx*r + i
			coefs[idx] = j.Scale
		}
		m.AddConstraint(idxs, coefs, lp.LE, sub.NumGPUs[i], "gpus")
	}
	return m
}
