package online

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"pop/internal/cluster"
	"pop/internal/lp"
)

// ClusterPolicy selects the solo scheduling policy a ClusterEngine runs in
// each sub-problem.
type ClusterPolicy int8

const (
	// MaxMinFairness is the §4.1 heterogeneity-aware least-attained-service
	// policy (no space sharing).
	MaxMinFairness ClusterPolicy = iota
	// MinMakespan is the §4.1 makespan-minimizing policy.
	MinMakespan
)

func (p ClusterPolicy) String() string {
	switch p {
	case MaxMinFairness:
		return "max-min-fairness"
	case MinMakespan:
		return "min-makespan"
	}
	return fmt.Sprintf("ClusterPolicy(%d)", int8(p))
}

// clusterSubResult caches one sub-problem's last allocation.
type clusterSubResult struct {
	ids       []int
	index     map[int]int // id -> position in ids
	alloc     *cluster.Allocation
	objective float64
}

// ClusterEngine incrementally maintains a POP allocation for the solo GPU
// scheduling policies: jobs arrive, depart, and change; the engine
// re-solves only the dirtied sub-clusters, warm-starting each from its
// previous basis. Not safe for concurrent use.
type ClusterEngine struct {
	t       *tracker
	policy  ClusterPolicy
	lpOpts  lp.Options
	c       cluster.Cluster
	sub     cluster.Cluster // c.Split(K)
	haveC   bool
	jobs    map[int]cluster.Job
	results []*clusterSubResult
}

// NewClusterEngine creates an engine for cluster c running the given solo
// policy with K sub-problems.
func NewClusterEngine(c cluster.Cluster, policy ClusterPolicy, opts Options, lpOpts lp.Options) (*ClusterEngine, error) {
	t, err := newTracker(opts)
	if err != nil {
		return nil, err
	}
	// Max-min-style optima reshuffle when most members' data changes at
	// once; beyond this churn the stale basis loses to a cold phase 1.
	t.warmTouchLimit = 0.75
	e := &ClusterEngine{
		t:       t,
		policy:  policy,
		lpOpts:  lpOpts,
		jobs:    make(map[int]cluster.Job),
		results: make([]*clusterSubResult, opts.K),
	}
	e.SetCluster(c)
	return e, nil
}

// SetCluster installs a new resource pool. A capacity change dirties every
// sub-problem (each holds 1/k of every GPU type).
func (e *ClusterEngine) SetCluster(c cluster.Cluster) {
	if e.haveC && clustersEqual(e.c, c) {
		return
	}
	e.c = c
	e.sub = c.Split(e.t.opts.K)
	e.haveC = true
	e.t.markAllDirty()
}

func clustersEqual(a, b cluster.Cluster) bool {
	if len(a.NumGPUs) != len(b.NumGPUs) {
		return false
	}
	for i := range a.NumGPUs {
		if a.NumGPUs[i] != b.NumGPUs[i] {
			return false
		}
	}
	return true
}

// Upsert adds job j (keyed by j.ID) or applies a change to it. Unchanged
// re-submissions are no-ops and dirty nothing.
func (e *ClusterEngine) Upsert(j cluster.Job) {
	if old, ok := e.jobs[j.ID]; ok {
		if jobsEqual(old, j) {
			return
		}
		e.jobs[j.ID] = j
		e.t.upsert(j.ID, j.Scale)
		e.t.touch(j.ID)
		return
	}
	e.jobs[j.ID] = j
	e.t.upsert(j.ID, j.Scale)
}

// Remove drops the job; survivors keep their sub-problems.
func (e *ClusterEngine) Remove(id int) bool {
	if _, ok := e.jobs[id]; !ok {
		return false
	}
	delete(e.jobs, id)
	return e.t.remove(id)
}

func jobsEqual(a, b cluster.Job) bool {
	if a.Weight != b.Weight || a.Scale != b.Scale || a.NumSteps != b.NumSteps ||
		a.Priority != b.Priority || a.MemFrac != b.MemFrac || len(a.Throughput) != len(b.Throughput) {
		return false
	}
	for i := range a.Throughput {
		if a.Throughput[i] != b.Throughput[i] {
			return false
		}
	}
	return true
}

// MarkAllDirty forces a full re-solve on the next Solve (benchmark and
// testing hook).
func (e *ClusterEngine) MarkAllDirty() { e.t.markAllDirty() }

// NumJobs reports the number of jobs currently held.
func (e *ClusterEngine) NumJobs() int { return len(e.jobs) }

// Jobs returns the live jobs in ascending-ID order.
func (e *ClusterEngine) Jobs() []cluster.Job {
	out := make([]cluster.Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Cluster returns the current resource pool.
func (e *ClusterEngine) Cluster() cluster.Cluster { return e.c }

// Stats returns the engine's work counters.
func (e *ClusterEngine) Stats() Stats { return e.t.stats }

// clusterLayout is the remap contract of buildClusterLP.
func (e *ClusterEngine) clusterLayout() BlockLayout {
	r := e.sub.NumTypes()
	return BlockLayout{VarsPerClient: r, RowsPerClient: 2, SharedVars: 1, SharedRows: r}
}

// Solve re-solves every dirty sub-problem, warm-started, leaving clean ones
// untouched.
func (e *ClusterEngine) Solve() error {
	lay := e.clusterLayout()
	return e.t.solveDirty(func(p int, ids []int, prevBasis *lp.Basis, prevIDs []int) (subReport, error) {
		if len(ids) == 0 {
			e.results[p] = &clusterSubResult{index: map[int]int{}}
			return subReport{}, nil
		}
		members := make([]cluster.Job, len(ids))
		for i, id := range ids {
			members[i] = e.jobs[id]
		}
		warm := prevBasis
		if warm != nil && !slices.Equal(prevIDs, ids) {
			warm = RemapBasis(warm, lay, prevIDs, ids)
		}
		opts := e.lpOpts
		opts.WarmBasis = warm
		prob := buildClusterLP(e.policy, members, e.sub)
		sol, err := prob.SolveWithOptions(opts)
		if err != nil {
			return subReport{}, err
		}
		if sol.Status != lp.Optimal {
			return subReport{}, fmt.Errorf("%v LP %v", e.policy, sol.Status)
		}
		r := e.sub.NumTypes()
		alloc := &cluster.Allocation{
			X:           make([][]float64, len(ids)),
			EffThr:      make([]float64, len(ids)),
			LPVariables: prob.NumVariables(),
		}
		index := make(map[int]int, len(ids))
		for i := range ids {
			index[ids[i]] = i
			alloc.X[i] = make([]float64, r)
			copy(alloc.X[i], sol.X[i*r:(i+1)*r])
			alloc.EffThr[i] = cluster.EffectiveThroughput(members[i], alloc.X[i])
		}
		e.results[p] = &clusterSubResult{
			ids:       append([]int(nil), ids...),
			index:     index,
			alloc:     alloc,
			objective: sol.Objective,
		}
		return subReport{basis: sol.Basis, warmStarted: sol.WarmStarted, iterations: sol.Iterations}, nil
	})
}

// Objective sums the sub-problem objectives — a checksum the equivalence
// tests compare against a cold full solve.
func (e *ClusterEngine) Objective() float64 {
	total := 0.0
	for _, r := range e.results {
		if r != nil {
			total += r.objective
		}
	}
	return total
}

// Step applies the diff between the engine's state and the given active set
// (arrivals, changes, departures), re-solves incrementally, and returns the
// allocation in active-set order. It is the bridge into round loops like
// gavelsim's.
func (e *ClusterEngine) Step(active []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	e.SetCluster(c)
	seen := make(map[int]bool, len(active))
	for _, j := range active {
		seen[j.ID] = true
		e.Upsert(j)
	}
	var gone []int
	for id := range e.jobs {
		if !seen[id] {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		e.Remove(id)
	}
	if err := e.Solve(); err != nil {
		return nil, err
	}

	out := &cluster.Allocation{
		X:      make([][]float64, len(active)),
		EffThr: make([]float64, len(active)),
	}
	counted := make([]bool, len(e.results))
	for pos, j := range active {
		p, ok := e.t.partOf[j.ID]
		if !ok || e.results[p] == nil {
			return nil, fmt.Errorf("online: job %d has no sub-problem result", j.ID)
		}
		res := e.results[p]
		i, ok := res.index[j.ID]
		if !ok {
			return nil, fmt.Errorf("online: job %d missing from sub-problem %d result", j.ID, p)
		}
		// Copy: handing out the cached row would let a caller's in-place
		// edits corrupt the allocation served on later clean rounds.
		out.X[pos] = append([]float64(nil), res.alloc.X[i]...)
		out.EffThr[pos] = res.alloc.EffThr[i]
		if !counted[p] {
			counted[p] = true
			out.LPVariables += res.alloc.LPVariables
		}
	}
	return out, nil
}

// Policy adapts the engine to gavelsim's round loop: each call diffs the
// active set against engine state and re-solves incrementally. The returned
// function has gavelsim.Policy's signature.
func (e *ClusterEngine) Policy() func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	return func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return e.Step(jobs, c)
	}
}

// buildClusterLP assembles the solo policy epigraph LP in the remap-friendly
// block layout: per job, r allocation variables then a time row and an
// objective row; shared epigraph variable t and per-type capacity rows
// trail. The formulations match cluster.MaxMinFairness / cluster.MinMakespan
// (modulo row ordering, which changes neither feasible set nor optimum).
func buildClusterLP(policy ClusterPolicy, members []cluster.Job, sub cluster.Cluster) *lp.Problem {
	r := sub.NumTypes()
	p := lp.NewProblem(lp.Maximize)
	for range members {
		p.AddVariables(r, 0, 0, 1)
	}
	tv := p.AddVariable(1, math.Inf(-1), lp.Inf, "t")

	eq := cluster.EqualShare(members, sub)
	for idx, j := range members {
		vars := make([]int, r)
		ones := make([]float64, r)
		for i := 0; i < r; i++ {
			vars[i] = idx*r + i
			ones[i] = 1
		}
		p.AddConstraint(vars, ones, lp.LE, 1, "time")

		var denom float64
		switch policy {
		case MinMakespan:
			denom = j.NumSteps
		default:
			denom = j.Weight * cluster.EffectiveThroughput(j, eq[idx]) * j.Scale
		}
		if denom <= 0 {
			// Degenerate job (no remaining steps, or zero equal-share
			// throughput): the batch policies skip its row so it cannot
			// constrain t; emit a vacuous row to keep the block layout.
			p.AddConstraint(nil, nil, lp.LE, 0, "vacuous")
			continue
		}
		idxs := make([]int, 0, r+1)
		coefs := make([]float64, 0, r+1)
		for i := 0; i < r; i++ {
			idxs = append(idxs, idx*r+i)
			coefs = append(coefs, j.Throughput[i]/denom)
		}
		idxs = append(idxs, tv)
		coefs = append(coefs, -1)
		p.AddConstraint(idxs, coefs, lp.GE, 0, "obj")
	}
	for i := 0; i < r; i++ {
		idxs := make([]int, len(members))
		coefs := make([]float64, len(members))
		for idx, j := range members {
			idxs[idx] = idx*r + i
			coefs[idx] = j.Scale
		}
		p.AddConstraint(idxs, coefs, lp.LE, sub.NumGPUs[i], "gpus")
	}
	return p
}
