package online

import (
	"fmt"
	"math"
	"slices"

	"pop/internal/cluster"
	"pop/internal/lp"
)

// pairAdapter is the Adapter for the space-sharing policy (§4.1 with GPU
// sharing, Fig 6) — the formulation whose pair variables break the
// one-block-per-client layout and kept it a cold solve before multi-block
// clients existed.
//
// Block layout, for n members over r GPU types: one solo slot block per
// member (in member order), then one shared slot block per pair of
// single-GPU members (canonical i<j member order, which stays splice-able
// under arrivals and departures because the tracker appends members). Every
// block holds the slot's r time-fraction variables; a member's two rows —
// the time budget and the fairness row over all slots containing it — live
// in its solo block, pair blocks carry no rows. The shared epigraph t trails
// the block variables; the r capacity rows trail the block rows. A member's
// rows reference variables across many blocks, so splicing a pair block in
// fills coefficients into rows it does not own — RefreshModel rewrites them
// all, and the model's setters keep unchanged entries untouched.
type pairAdapter struct {
	*clusterState
}

func (ad *pairAdapter) Layout(p int, ids []int) []Block {
	r := ad.sub.NumTypes()
	layout := make([]Block, 0, len(ids)+len(ids)*len(ids)/2)
	for _, id := range ids {
		layout = append(layout, Block{Key: BlockKey{id, NoPartner}, Vars: r, Rows: 2})
	}
	for i, a := range ids {
		if ad.jobs[a].Scale != 1 {
			continue
		}
		for _, b := range ids[i+1:] {
			if ad.jobs[b].Scale != 1 {
				continue
			}
			layout = append(layout, Block{Key: BlockKey{a, b}, Vars: r, Rows: 0})
		}
	}
	return layout
}

// slotTerms gathers, for member id, the (variable, throughput) pairs of
// every slot containing it: its solo slot at full throughput, its shared
// slots at interference-reduced throughput.
func (ad *pairAdapter) slotTerms(layout []Block, id int) (vars []int, thr []float64) {
	r := ad.sub.NumTypes()
	j := ad.jobs[id]
	for q, b := range layout {
		if !b.Key.Contains(id) {
			continue
		}
		scale := 1.0
		if b.Key.B != NoPartner {
			other := b.Key.A
			if other == id {
				other = b.Key.B
			}
			scale = cluster.Interference(j, ad.jobs[other])
		}
		for i := 0; i < r; i++ {
			vars = append(vars, q*r+i)
			thr = append(thr, j.Throughput[i]*scale)
		}
	}
	return vars, thr
}

func (ad *pairAdapter) BuildModel(p int, layout []Block) *lp.Model {
	r := ad.sub.NumTypes()
	members := ad.soloMembers(layout)

	m := lp.NewModel(lp.Maximize)
	for range layout {
		m.AddVariables(r, 0, 0, 1)
	}
	tv := m.AddVariable(1, math.Inf(-1), lp.Inf, "t")

	eq := cluster.EqualShare(members, ad.sub)
	for idx, j := range members {
		vars, thr := ad.slotTerms(layout, j.ID)
		ones := make([]float64, len(vars))
		for t := range ones {
			ones[t] = 1
		}
		m.AddConstraint(vars, ones, lp.LE, 1, "time")

		coefs, tc := pairFairCoefs(j, eq[idx], thr)
		m.AddConstraint(append(slices.Clone(vars), tv), append(coefs, tc), lp.GE, 0, "fair")
	}
	for i := 0; i < r; i++ {
		idxs := make([]int, len(layout))
		loads := make([]float64, len(layout))
		for q, b := range layout {
			idxs[q] = q*r + i
			loads[q] = slotLoad(ad.jobs, b.Key)
		}
		m.AddConstraint(idxs, loads, lp.LE, ad.sub.NumGPUs[i], "gpus")
	}
	return m
}

// SpliceBlock inserts a slot block's variables; a solo block also brings the
// member's (initially empty) time and fairness rows. All coefficients —
// including the new slot's entries in other members' rows and in the shared
// capacity rows — are left to RefreshModel's fill-ins.
func (ad *pairAdapter) SpliceBlock(m *lp.Model, p int, b Block, varAt, rowAt int) {
	r := ad.sub.NumTypes()
	m.InsertVariables(varAt, r, 0, 0, 1)
	if b.Key.B == NoPartner {
		m.InsertConstraint(rowAt, nil, nil, lp.LE, 1, "time")
		m.InsertConstraint(rowAt+1, nil, nil, lp.GE, 0, "fair")
	}
}

func (ad *pairAdapter) RefreshModel(m *lp.Model, p int, layout []Block) {
	r := ad.sub.NumTypes()
	members := ad.soloMembers(layout)
	n := len(members)
	tv := len(layout) * r
	eq := cluster.EqualShare(members, ad.sub)
	for idx, j := range members {
		vars, thr := ad.slotTerms(layout, j.ID)
		ones := make([]float64, len(vars))
		for t := range ones {
			ones[t] = 1
		}
		m.SetCoeffs(2*idx, vars, ones)
		coefs, tc := pairFairCoefs(j, eq[idx], thr)
		m.SetCoeffs(2*idx+1, vars, coefs)
		m.SetCoeff(2*idx+1, tv, tc)
	}
	idxs := make([]int, len(layout))
	loads := make([]float64, len(layout))
	for i := 0; i < r; i++ {
		for q, b := range layout {
			idxs[q] = q*r + i
			loads[q] = slotLoad(ad.jobs, b.Key)
		}
		m.SetCoeffs(2*n+i, idxs, loads)
		m.SetRHS(2*n+i, ad.sub.NumGPUs[i])
	}
}

func (ad *pairAdapter) Extract(p int, layout []Block, sol *lp.Solution, nVars int) error {
	if sol.Status != lp.Optimal {
		return fmt.Errorf("%v LP %v", ad.policy, sol.Status)
	}
	r := ad.sub.NumTypes()
	ids := soloIDs(layout)
	members := ad.soloMembers(layout)
	alloc := &cluster.Allocation{
		Pairs:       make([]cluster.Pair, len(layout)),
		PairX:       make([][]float64, len(layout)),
		EffThr:      make([]float64, len(ids)),
		LPVariables: nVars,
	}
	for q, b := range layout {
		pr := cluster.Pair{J1: b.Key.A, J2: b.Key.B}
		if b.Key.B == NoPartner {
			pr.J2 = -1
		}
		alloc.Pairs[q] = pr
		alloc.PairX[q] = make([]float64, r)
		copy(alloc.PairX[q], sol.X[q*r:(q+1)*r])
	}
	cluster.FillPairEffThr(members, alloc)
	index := make(map[int]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	ad.results[p] = &clusterSubResult{
		ids:       slices.Clone(ids),
		index:     index,
		alloc:     alloc,
		objective: sol.Objective,
	}
	return nil
}

func (ad *pairAdapter) Clear(p int) { ad.clear(p) }

// pairFairCoefs normalizes a member's slot throughputs into its fairness-row
// coefficients and epigraph coefficient; degenerate members (zero
// equal-share throughput) get the vacuous all-zero row, like the solo
// policies.
func pairFairCoefs(j cluster.Job, eqShare []float64, thr []float64) ([]float64, float64) {
	denom := j.Weight * cluster.EffectiveThroughput(j, eqShare) * j.Scale
	coefs := make([]float64, len(thr))
	if denom <= 0 {
		return coefs, 0
	}
	for t, v := range thr {
		coefs[t] = v / denom
	}
	return coefs, -1
}

// slotLoad is the GPU usage of a slot on each type it runs on: z_j for a
// solo slot, 1 for a shared slot.
func slotLoad(jobs map[int]cluster.Job, k BlockKey) float64 {
	if k.B == NoPartner {
		return jobs[k.A].Scale
	}
	return 1
}
