package online

import (
	"fmt"
	"slices"

	"pop/internal/graph"
	"pop/internal/lp"
	"pop/internal/te"
	"pop/internal/tm"
	"pop/internal/topo"
)

// teSubResult caches one sub-problem's last flow allocation, keyed by
// commodity id. paths freezes each commodity's path set as of the solve, so
// edge-flow composition stays consistent even if a commodity is re-routed
// before the next round.
type teSubResult struct {
	flows     map[int]float64
	pathFlow  map[int][]float64
	paths     map[int][]*graph.Path
	objective float64
	variables int
}

// teState is the domain state behind the traffic-engineering adapter.
type teState struct {
	obj     te.Objective
	k       int // POP sub-problem count: every edge runs at capacity/k
	paths   *te.PathCache
	demands map[int]tm.Demand
	dpaths  map[int][]*graph.Path // id -> current path set
	// routeGen counts a commodity's re-routes. It becomes the block's Gen,
	// so an endpoint change forces the engine to resplice the block even
	// when the new path set happens to have the old one's size — the shared
	// edge rows hold static per-path coefficients only SpliceBlock writes.
	routeGen map[int]int
	results  []*teSubResult
}

// TEEngine incrementally maintains a POP traffic-engineering allocation on
// the §4.2 path formulation: commodities arrive, depart, and shift demand;
// the engine keeps one mutable LP model per sub-problem (every sub-problem
// sees the whole topology at 1/k capacity — the paper's resource splitting)
// and re-solves only the dirtied ones. Under MaxTotalFlow a demand-only
// change is a pure rhs delta on the commodity's cap row, so re-plans ride
// the dual simplex from the previous basis — the regime WAN controllers
// live in, where traffic shifts every few minutes but the topology doesn't.
// Re-routing (a Src/Dst change) re-splices the commodity's block. Not safe
// for concurrent use.
type TEEngine struct {
	st  *teState
	eng *engine
}

// NewTEEngine creates a TE engine over the topology with K sub-problems.
// numPaths is the per-commodity path budget (≤ 0 selects the default of 4).
func NewTEEngine(t *topo.Topology, obj te.Objective, numPaths int, opts Options, lpOpts lp.Options) (*TEEngine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	st := &teState{
		obj:      obj,
		k:        opts.K,
		paths:    te.NewPathCache(t, numPaths),
		demands:  make(map[int]tm.Demand),
		dpaths:   make(map[int][]*graph.Path),
		routeGen: make(map[int]int),
		results:  make([]*teSubResult, opts.K),
	}
	eng, err := newEngine(&teAdapter{st}, opts, lpOpts)
	if err != nil {
		return nil, err
	}
	return &TEEngine{st: st, eng: eng}, nil
}

// Upsert adds commodity id or applies a change to it. Unchanged
// re-submissions are no-ops; an Amount-only change is the dual-simplex fast
// path; an endpoint change re-routes the commodity.
func (e *TEEngine) Upsert(id int, d tm.Demand) {
	old, ok := e.st.demands[id]
	if ok && old == d {
		return
	}
	e.st.demands[id] = d
	if !ok || old.Src != d.Src || old.Dst != d.Dst {
		e.st.dpaths[id] = e.st.paths.Paths(d.Src, d.Dst)
		e.st.routeGen[id]++
	}
	e.eng.t.upsert(id, d.Amount)
	if ok {
		e.eng.t.touch(id)
	}
}

// Remove drops commodity id; survivors keep their sub-problems.
func (e *TEEngine) Remove(id int) bool {
	if _, ok := e.st.demands[id]; !ok {
		return false
	}
	delete(e.st.demands, id)
	delete(e.st.dpaths, id)
	delete(e.st.routeGen, id)
	return e.eng.t.remove(id)
}

// NumDemands reports the number of live commodities.
func (e *TEEngine) NumDemands() int { return len(e.st.demands) }

// MarkAllDirty forces a full re-solve on the next Solve (benchmark and
// testing hook).
func (e *TEEngine) MarkAllDirty() { e.eng.t.markAllDirty() }

// Stats returns the engine's work counters.
func (e *TEEngine) Stats() Stats { return e.eng.t.stats }

// Solve re-solves every dirty sub-problem from its persistent model.
func (e *TEEngine) Solve() error {
	e.eng.t.rebalance()
	return e.eng.solveRound()
}

// Objective sums the sub-problem objectives — the checksum the equivalence
// tests compare against a cold full solve (for MaxTotalFlow it equals
// TotalFlow).
func (e *TEEngine) Objective() float64 {
	total := 0.0
	for _, r := range e.st.results {
		if r != nil {
			total += r.objective
		}
	}
	return total
}

// Flow returns the last solved total flow of commodity id (0 if unknown or
// unroutable).
func (e *TEEngine) Flow(id int) float64 {
	p, ok := e.eng.t.partOf[id]
	if !ok || e.st.results[p] == nil {
		return 0
	}
	return e.st.results[p].flows[id]
}

// TotalFlow sums the granted flow over all commodities.
func (e *TEEngine) TotalFlow() float64 {
	total := 0.0
	for _, r := range e.st.results {
		if r == nil {
			continue
		}
		for _, f := range r.flows {
			total += f
		}
	}
	return total
}

// EdgeFlows composes the aggregate per-edge flow across sub-problems, in
// edge-ID order — feasible against full capacities by construction, since
// each sub-problem respected capacity/k.
func (e *TEEngine) EdgeFlows() []float64 {
	out := make([]float64, len(e.st.paths.Topology().G.Edges))
	for _, r := range e.st.results {
		if r == nil {
			continue
		}
		for id, pf := range r.pathFlow {
			for pi, f := range pf {
				for _, eid := range r.paths[id][pi].Edges {
					out[eid] += f
				}
			}
		}
	}
	return out
}

// teAdapter is the Adapter for the path-based TE formulation: one block per
// routable commodity.
//
// Block layout: a commodity's block holds one flow variable per candidate
// path and its demand-cap row (Σ_p x ≤ D_j); under MaxConcurrentFlow also
// its fraction row (Σ_p x − D_j·t ≥ 0). Commodities with no route have no
// block at all. The shared min-fraction variable t (concurrent flow only)
// trails the block variables; one capacity row per topology edge — present
// even while no current path crosses the edge, so the shared-row shape
// never changes — trails the block rows at rhs capacity/k. Flow-variable
// upper bounds stay infinite: the cap row already enforces the demand, so
// an Amount change is a single rhs edit, not a bound sweep.
type teAdapter struct {
	*teState
}

func (ad *teAdapter) rowsPer() int {
	if ad.obj == te.MaxConcurrentFlow {
		return 2
	}
	return 1
}

func (ad *teAdapter) objCoef() float64 {
	if ad.obj == te.MaxTotalFlow {
		return 1
	}
	return 0
}

func (ad *teAdapter) Layout(p int, ids []int) []Block {
	rows := ad.rowsPer()
	layout := make([]Block, 0, len(ids))
	for _, id := range ids {
		np := len(ad.dpaths[id])
		if np == 0 {
			continue // unroutable: no variables, no rows, zero flow
		}
		layout = append(layout, Block{Key: BlockKey{id, NoPartner}, Vars: np, Rows: rows, Gen: ad.routeGen[id]})
	}
	return layout
}

func (ad *teAdapter) BuildModel(p int, layout []Block) *lp.Model {
	edges := ad.paths.Topology().G.Edges
	m := lp.NewModel(lp.Maximize)
	for _, b := range layout {
		m.AddVariables(b.Vars, ad.objCoef(), 0, lp.Inf)
	}
	tv := -1
	if ad.obj == te.MaxConcurrentFlow {
		tv = m.AddVariable(1, 0, 1, "t")
	}

	varAt := 0
	edgeVars := make([][]int, len(edges))
	for _, b := range layout {
		d := ad.demands[b.Key.A]
		vars := make([]int, b.Vars)
		ones := make([]float64, b.Vars)
		for i := range vars {
			vars[i] = varAt + i
			ones[i] = 1
		}
		m.AddConstraint(vars, ones, lp.LE, d.Amount, "demand")
		if tv >= 0 {
			m.AddConstraint(append(slices.Clone(vars), tv), append(slices.Clone(ones), -d.Amount), lp.GE, 0, "fraction")
		}
		for pi, path := range ad.dpaths[b.Key.A] {
			for _, eid := range path.Edges {
				edgeVars[eid] = append(edgeVars[eid], varAt+pi)
			}
		}
		varAt += b.Vars
	}
	for eid := range edges {
		ones := make([]float64, len(edgeVars[eid]))
		for i := range ones {
			ones[i] = 1
		}
		m.AddConstraint(edgeVars[eid], ones, lp.LE, edges[eid].Capacity/float64(ad.k), "edge")
	}
	return m
}

// SpliceBlock inserts a commodity block: its path-flow variables, its cap
// (and fraction) rows, and its static unit entries in the shared edge rows.
// The data-dependent rhs and t coefficient are left to RefreshModel.
func (ad *teAdapter) SpliceBlock(m *lp.Model, p int, b Block, varAt, rowAt int) {
	m.InsertVariables(varAt, b.Vars, ad.objCoef(), 0, lp.Inf)
	vars := make([]int, b.Vars)
	ones := make([]float64, b.Vars)
	for i := range vars {
		vars[i] = varAt + i
		ones[i] = 1
	}
	m.InsertConstraint(rowAt, vars, ones, lp.LE, 0, "demand")
	if ad.obj == te.MaxConcurrentFlow {
		tv := m.NumVariables() - 1
		m.InsertConstraint(rowAt+1, append(slices.Clone(vars), tv), append(slices.Clone(ones), 0), lp.GE, 0, "fraction")
	}
	nEdges := len(ad.paths.Topology().G.Edges)
	edgeRowBase := m.NumConstraints() - nEdges
	for pi, path := range ad.dpaths[b.Key.A] {
		for _, eid := range path.Edges {
			m.SetCoeff(edgeRowBase+eid, varAt+pi, 1)
		}
	}
}

// RefreshModel rewrites each commodity's demand: the cap-row rhs, and under
// MaxConcurrentFlow the fraction row's t coefficient. Edge rows are static
// (unit entries, capacities fixed at 1/k since construction).
func (ad *teAdapter) RefreshModel(m *lp.Model, p int, layout []Block) {
	rows := ad.rowsPer()
	tv := m.NumVariables() - 1
	for bi, b := range layout {
		d := ad.demands[b.Key.A]
		m.SetRHS(bi*rows, d.Amount)
		if rows == 2 {
			m.SetCoeff(bi*rows+1, tv, -d.Amount)
		}
	}
}

func (ad *teAdapter) Extract(p int, layout []Block, sol *lp.Solution, nVars int) error {
	res := &teSubResult{
		flows:     make(map[int]float64, len(layout)),
		pathFlow:  make(map[int][]float64, len(layout)),
		paths:     make(map[int][]*graph.Path, len(layout)),
		variables: nVars,
	}
	if sol != nil {
		if sol.Status != lp.Optimal {
			return fmt.Errorf("te %v LP %v", ad.obj, sol.Status)
		}
		varAt := 0
		for _, b := range layout {
			id := b.Key.A
			pf := make([]float64, b.Vars)
			copy(pf, sol.X[varAt:varAt+b.Vars])
			total := 0.0
			for _, f := range pf {
				total += f
			}
			res.flows[id] = total
			res.pathFlow[id] = pf
			res.paths[id] = ad.dpaths[id]
			varAt += b.Vars
		}
		res.objective = sol.Objective
	}
	ad.results[p] = res
	return nil
}

func (ad *teAdapter) Clear(p int) { ad.results[p] = &teSubResult{} }
