package online

import (
	"math"
	"testing"

	"pop/internal/lb"
	"pop/internal/lp"
)

// checkAssignment verifies coverage and linking. Memory is deliberately not
// checked: like lb.SolveLPRounding, the relaxation's rounded-up placements
// can overshoot the (relaxed) memory bound — that is the documented cost of
// relaxing the MILP.
func checkAssignment(t *testing.T, inst *lb.Instance, a *lb.Assignment) {
	t.Helper()
	for i := range inst.Shards {
		sum := 0.0
		for j := range inst.Servers {
			f := a.Frac[i][j]
			if f < -1e-6 {
				t.Fatalf("negative fraction shard %d server %d", i, j)
			}
			if f > 1e-6 && !a.Placed[i][j] {
				t.Fatalf("shard %d serves from %d without placement", i, j)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("shard %d coverage %g != 1", i, sum)
		}
	}
}

// TestLBEngineMatchesColdFullSolve: over shifting-load round sequences, the
// warm incremental balancer must match a cold full solve (same partitions)
// on the relaxed movement objective to 1e-6. Both engines see the same
// placement trajectory (the warm engine's output drives the instance, as in
// lb.RunRounds).
func TestLBEngineMatchesColdFullSolve(t *testing.T) {
	sequences := 12
	rounds := 4
	if testing.Short() {
		sequences = 4
	}
	warmHits := 0
	for seq := 0; seq < sequences; seq++ {
		inst := lb.NewInstance(32, 8, 0.05, int64(300+seq))
		warm, err := NewLBEngine(Options{K: 2}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewLBEngine(Options{K: 2, NoWarmStart: true}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < rounds; round++ {
			inst.ShiftLoads(int64(seq*1000 + round))
			wa, err := warm.Step(inst)
			if err != nil {
				t.Fatalf("seq %d round %d warm: %v", seq, round, err)
			}
			cold.MarkAllDirty()
			if _, err := cold.Step(inst); err != nil {
				t.Fatalf("seq %d round %d cold: %v", seq, round, err)
			}
			if w, c := warm.Objective(), cold.Objective(); !approxEq(w, c, 1e-6) {
				t.Fatalf("seq %d round %d: warm objective %.12g != cold %.12g", seq, round, w, c)
			}
			checkAssignment(t, inst, wa)
			inst.Placement = wa.Placed
		}
		warmHits += warm.Stats().WarmHits
	}
	if warmHits == 0 {
		t.Fatal("LB engine never warm-started")
	}
}

// TestLBEngineDeltas: arrivals, departures, and server changes flow through
// the dirty tracking.
func TestLBEngineDeltas(t *testing.T) {
	inst := lb.NewInstance(24, 6, 0.05, 5)
	e, err := NewLBEngine(Options{K: 2, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Step(inst)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, inst, a)
	base := e.Stats()
	if base.SubSolves != 2 {
		t.Fatalf("first round solved %d sub-problems, want 2", base.SubSolves)
	}

	// Idle round: loads and placement unchanged → nothing re-solves. (Note
	// that feeding the engine's own output placement back would NOT be idle:
	// a placement change re-anchors the movement costs.)
	if _, err := e.Step(inst); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().SubSolves - base.SubSolves; got != 0 {
		t.Fatalf("idle round re-solved %d sub-problems", got)
	}

	// Shard departure dirties only its own sub-problem.
	removed := inst.Shards[3].ID
	inst.Shards = append(inst.Shards[:3], inst.Shards[4:]...)
	inst.Placement = append(inst.Placement[:3], inst.Placement[4:]...)
	a, err = e.Step(inst)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Departures != 1 {
		t.Fatalf("departures = %d, want 1", s.Departures)
	}
	if got := s.SubSolves - base.SubSolves; got != 1 {
		t.Fatalf("departure re-solved %d sub-problems, want 1", got)
	}
	checkAssignment(t, inst, a)

	// Server capacity change dirties everything.
	inst.Servers[0].MemCap *= 2
	if _, err := e.Step(inst); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().SubSolves - s.SubSolves; got != 2 {
		t.Fatalf("capacity change re-solved %d sub-problems, want 2", got)
	}
	_ = removed
}

// TestLBEngineInRunRounds wires the engine into the stock round loop.
func TestLBEngineInRunRounds(t *testing.T) {
	inst := lb.NewInstance(20, 4, 0.05, 21)
	e, err := NewLBEngine(Options{K: 2}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lb.RunRounds(inst, 3, 99, e.Solver())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	st := e.Stats()
	if st.Rounds != 3 {
		t.Fatalf("engine saw %d rounds, want 3", st.Rounds)
	}
	if st.WarmHits == 0 {
		t.Fatal("no warm hits across RunRounds")
	}
}
