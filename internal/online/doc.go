// Package online is the stateful incremental allocation engine: it keeps a
// POP-partitioned problem alive across scheduling rounds, accepts deltas
// (client arrive/depart, load change, resource capacity change), and
// re-solves only the sub-problems the deltas touched, each warm-started
// from its previous optimal basis. One generic engine drives all three of
// the paper's case studies through the Adapter contract: ClusterEngine
// (solo GPU scheduling and pair-variable space sharing), LBEngine (shard
// balancing), and TEEngine (traffic engineering). It is the round-loop
// driver behind gavelsim's online policies, lb's online balancer, and
// cmd/popserver.
//
// # Stable partitions
//
// Where the batch POP adapters (cluster.SolvePOP, lb.SolvePOP, te.SolvePOP)
// re-partition clients from scratch every call, the engine repartitions
// minimally:
//
//   - a new client joins the sub-problem with the smallest current total
//     load (ties: fewest members, then lowest index), and nothing else
//     moves;
//   - a departing client leaves its sub-problem; survivors keep both their
//     sub-problem and their relative order inside it;
//   - a load change keeps the client where it is.
//
// These invariants mean a delta dirties exactly one sub-problem (a resource
// capacity change dirties all of them, since every sub-problem holds 1/k of
// each resource), so a round's work is proportional to the number of
// sub-problems actually touched. The price is partition drift, bounded by
// Options.Rebalance: each round at most one client moves from the most- to
// the least-loaded sub-problem, only when that strictly narrows their
// spread, so the spread shrinks monotonically while reassignment stays
// minimal. Moves are deterministic, so warm and cold engines stay
// comparable.
//
// # The adapter contract
//
// The generic engine owns everything domain-independent: the tracker,
// dirty marking, one persistent lp.Model per partition, the
// rebuild-vs-splice decision, solve timing, and Stats. A domain plugs in by
// implementing Adapter:
//
//   - Layout(p, ids) declares the partition's block sequence — each Block a
//     keyed run of Vars variables and Rows rows. Keys name the owning
//     client (BlockKey{id, NoPartner}) or client pair (BlockKey{a, b}); one
//     client may own many blocks, which is what lets the space-sharing LP —
//     a slot block per job plus one per single-GPU pair — live online.
//   - BuildModel constructs a fresh model for a layout; SpliceBlock inserts
//     one block's structure into a live model at engine-computed positions;
//     RefreshModel rewrites every data-dependent value afterward.
//   - Extract caches a partition's solution; Clear empties it.
//
// Block-shape rules: a model lays out its blocks contiguously in layout
// order — block variables first, then shared variables (an epigraph t, a
// min-fraction t); block rows first, then shared rows (capacity rows, band
// rows). Shared structure must keep a fixed shape across membership churn
// (TEEngine keeps one capacity row per topology edge even when empty, so
// the shared-row region never moves). A block's rows may reference other
// blocks' variables — a job's fairness row spans every slot containing it —
// because RefreshModel rewrites all data-dependent coefficients and
// lp.Model setters no-op on unchanged values, keeping the delta class the
// solver sees exact. Layouts must enumerate blocks so survivors keep their
// relative order as members arrive and depart (member-order and canonical
// pair-order enumerations do); a layout that cannot is rebuilt fresh, never
// answered wrong.
//
// Per dirty partition the engine then picks a sync path: build fresh (no
// model yet, warm starts disabled, or block-key overlap < 0.5), or splice
// departed blocks out / new blocks in — the stored basis spliced in
// lockstep — and refresh the rest in place. A re-solve therefore pays
// pivots, not construction: rhs/bound-only deltas (capacity jitter under
// MinMakespan, lb tolerance shifts, TE demand shifts) ride the dual simplex
// from the previous basis; coefficient and objective deltas take the primal
// warm path; the lp solver owns correctness, falling back primal-warm then
// cold, so warm starts change solve speed, never solve outcomes.
//
// # Warm-hostile refreshes
//
// Some refreshes leave nothing for a warm start to reuse — a total-scale or
// capacity shift under the fairness policies rotates every member's
// equal-share denominator at once. Earlier versions made each adapter
// declare these rounds through a WarmHostile hook backed by hand-tuned
// fingerprints; that hook is gone. lp.Model detects hostility itself from
// the actual incoming numbers, uniformly for every adapter, with no domain
// knowledge to keep in sync: after coefficient edits it drops the stale
// basis when a quarter or more of the constraint rows were rewritten (broad
// per-member churn — the pair layout's heavy-jitter rounds), or when a
// strided sample of nonbasic columns priced against the previous solve's
// duals shows a majority flipped (a global rotation, like the equal-share
// denominator shifts above, even when few entries changed).
//
// # Adding a fourth adapter
//
// Pick the client granularity (the tracker id), decide the block shape per
// client — fixed-width like cluster (r vars, 2 rows) and lb (2m vars, m+1
// rows), variable-width like TE (one var per candidate path), or multi-
// block like space sharing — and put everything data-dependent behind
// RefreshModel. Wrap the engine with the domain's delta API (Upsert /
// Remove / Solve) the way te.go does in ~150 lines; the equivalence suites'
// pattern (warm engine vs NoWarmStart engine, 1e-6 objective agreement over
// randomized delta sequences) transfers unchanged and should be the first
// test written.
//
// # Engines
//
// ClusterEngine runs the §4.1 GPU-scheduling policies — max-min fairness
// and minimize-makespan on solo blocks, and the space-sharing policy (Fig
// 6) on the pair-block layout; its Policy method adapts it to gavelsim's
// round loop. LBEngine runs the §4.3 shard balancer on the continuous
// relaxation (the MILP's integer search cannot reuse a simplex basis; the
// relaxation is where the paper's round-over-round latency lives); its
// Solver method plugs into lb.RunRounds. TEEngine runs the §4.2 path
// formulation over a fixed topology with every edge at 1/k capacity;
// demand-amount shifts are single rhs edits — the dual-simplex fast path —
// while endpoint changes re-route by re-splicing the commodity's block.
// Engine stats split each round into model build/mutation time and solver
// time (Stats.BuildNs / Stats.SolveNs) — the mutation path exists to shrink
// the former. Engines are not safe for concurrent use; callers like
// cmd/popserver serialize rounds themselves.
package online
