// Package online is the stateful incremental allocation engine: it keeps a
// POP-partitioned problem alive across scheduling rounds, accepts deltas
// (client arrive/depart, load change, resource capacity change), and
// re-solves only the sub-problems the deltas touched, each warm-started
// from its previous optimal basis. It is the round-loop driver behind
// gavelsim's online policies, lb's online balancer, and cmd/popserver.
//
// # Stable partitions
//
// Where the batch POP adapters (cluster.SolvePOP, lb.SolvePOP) re-partition
// clients from scratch every call, the engine repartitions minimally:
//
//   - a new client joins the sub-problem with the smallest current total
//     load (ties: fewest members, then lowest index), and nothing else
//     moves;
//   - a departing client leaves its sub-problem; survivors keep both their
//     sub-problem and their relative order inside it;
//   - a load change keeps the client where it is.
//
// These invariants mean a delta dirties exactly one sub-problem (a resource
// capacity change dirties all of them, since every sub-problem holds 1/k of
// each resource), so a round's work is proportional to the number of
// sub-problems actually touched. The price is partition drift: sub-problem
// loads slowly diverge from the balanced split a fresh partitioning would
// produce, trading a little allocation quality for minimal churn — the same
// trade the paper's load balancer makes (§4.3) when it minimizes shard
// movement instead of re-placing everything.
//
// # Warm-start contract
//
// Each sub-problem stores the lp.Basis snapshot of its last solve together
// with the member list it was taken under. On re-solve:
//
//   - unchanged membership: the snapshot is passed directly as
//     lp.Options.WarmBasis (only coefficients drifted, the shape is
//     identical);
//   - changed membership: the snapshot is remapped through the adapter's
//     BlockLayout — survivors carry their per-client variable and row
//     statuses over, newcomers enter nonbasic at their lower bounds with
//     their rows' slacks basic, departed clients' blocks are dropped;
//   - the lp solver owns correctness: a warm basis that is singular, the
//     wrong shape, or unrepairably infeasible is discarded in favour of a
//     cold phase 1 (Solution.WarmStarted reports which path ran), so warm
//     starts change solve speed, never solve outcomes.
//
// Adapters therefore build their LPs in a remap-friendly layout: all
// per-client variables first (a fixed-size block per client, in member
// order), shared variables after; per-client rows first (fixed-size blocks,
// same order), shared rows after.
//
// # Engines
//
// ClusterEngine runs the solo GPU-scheduling policies (max-min fairness,
// minimize makespan) from §4.1; its Policy method adapts it to gavelsim's
// round loop. LBEngine runs the §4.3 shard balancer on the continuous
// relaxation (the MILP's integer search cannot reuse a simplex basis; the
// relaxation is where the paper's round-over-round latency lives); its
// Solver method plugs into lb.RunRounds. Engines are not safe for
// concurrent use — callers like cmd/popserver serialize rounds themselves.
package online
