// Package online is the stateful incremental allocation engine: it keeps a
// POP-partitioned problem alive across scheduling rounds, accepts deltas
// (client arrive/depart, load change, resource capacity change), and
// re-solves only the sub-problems the deltas touched, each warm-started
// from its previous optimal basis. It is the round-loop driver behind
// gavelsim's online policies, lb's online balancer, and cmd/popserver.
//
// # Stable partitions
//
// Where the batch POP adapters (cluster.SolvePOP, lb.SolvePOP) re-partition
// clients from scratch every call, the engine repartitions minimally:
//
//   - a new client joins the sub-problem with the smallest current total
//     load (ties: fewest members, then lowest index), and nothing else
//     moves;
//   - a departing client leaves its sub-problem; survivors keep both their
//     sub-problem and their relative order inside it;
//   - a load change keeps the client where it is.
//
// These invariants mean a delta dirties exactly one sub-problem (a resource
// capacity change dirties all of them, since every sub-problem holds 1/k of
// each resource), so a round's work is proportional to the number of
// sub-problems actually touched. The price is partition drift: sub-problem
// loads slowly diverge from the balanced split a fresh partitioning would
// produce, trading a little allocation quality for minimal churn — the same
// trade the paper's load balancer makes (§4.3) when it minimizes shard
// movement instead of re-placing everything.
//
// # Persistent models and the re-solve contract
//
// Each sub-problem owns a persistent lp.Model: built once, then mutated in
// place between rounds instead of being rebuilt. The model maintains its
// standardized form incrementally and keeps the last optimal basis, so a
// round's deltas arrive at the solver classified:
//
//   - rhs/bound-only deltas (a capacity change under MinMakespan, a
//     tolerance change in lb) re-solve with the dual simplex from the
//     previous basis — a handful of pivots, no rebuild, no phase 1;
//   - coefficient and objective deltas (load shifts, weight changes,
//     placement drift) re-solve through the primal warm path;
//   - membership changes splice whole client blocks out of / into the
//     model, carrying the surviving blocks' basis statuses along, so the
//     shape repair settles only the churned remainder;
//   - when a delta rotates every coefficient at once (cluster max-min's
//     equal-share denominators under scale or capacity changes), the stale
//     basis carries nothing: the adapter drops it — and rebuilds outright
//     if membership also changed, since splicing buys nothing then.
//
// The lp solver owns correctness: every fast path falls back (primal warm,
// then cold) rather than trust a stale start, so warm and dual starts
// change solve speed, never solve outcomes (Solution.WarmStarted and
// Solution.DualPivots report which path ran).
//
// Adapters therefore build their LPs in a block layout: all per-client
// variables first (a fixed-size block per client, in member order), shared
// variables after; per-client rows first (fixed-size blocks, same order),
// shared rows after. Engine stats split each round into model
// build/mutation time and solver time (Stats.BuildNs / Stats.SolveNs) —
// the mutation path exists to shrink the former.
//
// # Drift-bounded rebalancing
//
// Options.Rebalance bounds the partition-load drift: each round at most
// one client moves from the most- to the least-loaded sub-problem, and
// only when the move strictly narrows their spread, so the spread shrinks
// monotonically to below the lightest member of the heaviest sub-problem
// while reassignment stays minimal. Moves are deterministic, so warm and
// cold engines stay comparable.
//
// # Engines
//
// ClusterEngine runs the solo GPU-scheduling policies (max-min fairness,
// minimize makespan) from §4.1; its Policy method adapts it to gavelsim's
// round loop. LBEngine runs the §4.3 shard balancer on the continuous
// relaxation (the MILP's integer search cannot reuse a simplex basis; the
// relaxation is where the paper's round-over-round latency lives); its
// Solver method plugs into lb.RunRounds. Engines are not safe for
// concurrent use — callers like cmd/popserver serialize rounds themselves.
package online
