package online

import (
	"math"
	"slices"
	"time"

	"pop/internal/lp"
	"pop/internal/obs"
)

// NoPartner marks a BlockKey owned by a single client.
const NoPartner = -1

// BlockKey identifies one LP block inside a sub-problem's persistent model.
// A is the owning client's tracker id; B is a second owner for blocks shared
// by two clients (the space-sharing pair slots), or NoPartner for blocks
// owned by one client alone. One client may own any number of blocks.
type BlockKey struct {
	A, B int
}

// Contains reports whether id owns (part of) the block.
func (k BlockKey) Contains(id int) bool { return k.A == id || k.B == id }

// Block is one keyed slice of a sub-problem's LP: Vars consecutive
// variables and Rows consecutive constraint rows. A partition's model lays
// its blocks out contiguously in layout order — all block variables first
// (then any shared variables), all block rows first (then any shared rows) —
// so the engine can splice whole blocks with lp.Model's structural
// operations while the stored basis carries the survivors' statuses along.
//
// Gen is an adapter-chosen content generation: a block whose Gen differs
// from the model's current one is removed and respliced even though its key
// and shape are unchanged. Adapters whose block *structure* depends on data
// RefreshModel does not rewrite (the TE adapter's path sets, which place
// static coefficients in the shared edge rows) bump it when that data
// changes; adapters whose structure is a pure function of key and shape
// leave it zero.
type Block struct {
	Key  BlockKey
	Vars int
	Rows int
	Gen  int
}

// Adapter is the problem-specific half of an online engine. The generic
// engine owns partitions, dirty tracking, the rebuild-vs-splice decision,
// solve timing, and stats; the adapter owns the LP formulation:
//
//   - Layout declares the block sequence a partition's model must hold for
//     its current members — the block-shape contract. Layouts must be
//     deterministic in (p, ids) and keep a departing member's blocks
//     removable and an arriving member's blocks insertable without
//     reordering survivors (append-ordered enumerations have this
//     property). Shared variables and rows trail the block region and are
//     not declared; the adapter places them in BuildModel and locates them
//     by counting from the model's end.
//   - BuildModel constructs a fresh model for the layout, encoding the
//     current data completely (it is also the cold-baseline build, so it
//     should use the plain builder API, not splices).
//   - SpliceBlock inserts one block's structure into a live model at the
//     engine-computed variable/row positions. Static coefficients may be
//     written here; data-dependent values are left to RefreshModel, which
//     always runs after a splice pass.
//   - RefreshModel rewrites every data-dependent coefficient, objective
//     entry, bound, and right-hand side against the current member data.
//     Model setters no-op on unchanged values, so the delta class the
//     solver sees — and with it dual-simplex eligibility — stays exact.
//   - Extract caches partition p's solution on the adapter side (the engine
//     never interprets variables). sol is nil when the layout was empty or
//     all-zero-width — a vacuous sub-problem the engine did not solve.
//   - Clear resets partition p's cached result to empty (no members).
type Adapter interface {
	Layout(p int, ids []int) []Block
	BuildModel(p int, layout []Block) *lp.Model
	SpliceBlock(m *lp.Model, p int, b Block, varAt, rowAt int)
	RefreshModel(m *lp.Model, p int, layout []Block)
	Extract(p int, layout []Block, sol *lp.Solution, nVars int) error
	Clear(p int)
}

// sub is one partition's persistent LP state: the live model and the block
// sequence it currently encodes.
type sub struct {
	model  *lp.Model
	blocks []Block
}

// engine is the domain-independent online engine: a tracker for stable
// partitions plus one persistent model per partition, kept in sync with the
// adapter's declared layout. Domain engines (ClusterEngine, LBEngine,
// TEEngine) wrap it with their delta APIs.
type engine struct {
	t      *tracker
	ad     Adapter
	lpOpts lp.Options
	subs   []*sub
	// seeds holds per-partition basis snapshots installed by a state
	// restore; each is consumed by that partition's next model build, so a
	// restored engine's first round attempts warm starts instead of solving
	// cold. A seed whose dimensions no longer fit is dropped by the solver.
	seeds []*lp.Basis
}

func newEngine(ad Adapter, opts Options, lpOpts lp.Options) (*engine, error) {
	t, err := newTracker(opts)
	if err != nil {
		return nil, err
	}
	e := &engine{t: t, ad: ad, lpOpts: lpOpts, subs: make([]*sub, opts.K)}
	for p := range e.subs {
		e.subs[p] = &sub{}
	}
	return e, nil
}

// invalidateModels discards every partition's persistent model (the next
// sync rebuilds fresh). Domain engines call it when a shared-structure input
// changes shape — e.g. lb's server pool, which sets the per-block width.
func (e *engine) invalidateModels() {
	for p := range e.subs {
		e.subs[p] = &sub{}
	}
}

// solveRound re-solves every dirty partition through the adapter. With an
// observer attached it wraps the round in an "online.round" span and books
// the round-delta counters; the disabled path is one nil check.
func (e *engine) solveRound() error {
	o := e.t.opts.Obs
	if o == nil {
		return e.t.solveDirty(e.subSolve)
	}
	before := e.t.stats
	sp := o.Span("online.round")
	start := time.Now()
	err := e.t.solveDirty(e.subSolve)
	dur := time.Since(start)
	d := e.t.stats
	sp.Arg("subsolves", d.SubSolves-before.SubSolves).
		Arg("skipped", d.SkippedClean-before.SkippedClean).
		Arg("pivots", d.Iterations-before.Iterations).
		End()
	o.Counter("pop_online_rounds_total", "engine solve rounds").Inc()
	o.Histogram("pop_online_round_seconds", "engine round wall time").Observe(dur.Seconds())
	o.Counter("pop_online_subsolves_total", "dirty sub-problems re-solved").Add(int64(d.SubSolves - before.SubSolves))
	o.Counter("pop_online_skipped_clean_total", "clean sub-problems skipped").Add(int64(d.SkippedClean - before.SkippedClean))
	o.Counter("pop_online_warm_attempts_total", "sub-solves entered with a live basis").Add(int64(d.WarmAttempts - before.WarmAttempts))
	o.Counter("pop_online_warm_hits_total", "sub-solves the solver warm-started").Add(int64(d.WarmHits - before.WarmHits))
	return err
}

// subSolve brings partition p's persistent model in line with the adapter's
// declared layout and current data, solves it, and hands the solution to the
// adapter. The sync path is chosen once per round:
//
//   - no model yet, warm starts disabled, or membership churned beyond
//     recognition (block-key overlap < 0.5): build fresh;
//   - otherwise splice departed blocks out and new blocks in, then refresh
//     all data-dependent values. A splice that cannot preserve survivor
//     order or shape falls back to a fresh build.
//
// Whether the refreshed coefficients left the stale basis worth warm
// repairing is no longer the engine's call: lp.Model prices a sample of the
// incoming coefficients against the previous solve's duals and drops a
// hostile basis itself, uniformly across adapters.
func (e *engine) subSolve(p int, ids []int) (subReport, error) {
	o := e.t.opts.Obs
	if o == nil {
		return e.subSolveObs(nil, p, ids)
	}
	// Each partition gets its own trace lane so parallel sub-solves render
	// side by side instead of overlapping on the engine's lane.
	po := o.WithTID(o.TID + 1 + p)
	sp := po.Span("online.subsolve").Arg("part", p).Arg("members", len(ids))
	rep, err := e.subSolveObs(po, p, ids)
	sp.End()
	return rep, err
}

func (e *engine) subSolveObs(po *obs.Observer, p int, ids []int) (subReport, error) {
	if len(ids) == 0 {
		e.subs[p] = &sub{}
		e.ad.Clear(p)
		return subReport{}, nil
	}
	start := time.Now()
	want := e.ad.Layout(p, ids)
	if blockVars(want) == 0 {
		// Vacuous sub-problem (e.g. every commodity unroutable): nothing to
		// solve, but the adapter still records the empty result.
		e.subs[p] = &sub{}
		if err := e.ad.Extract(p, want, nil, 0); err != nil {
			return subReport{}, err
		}
		return subReport{buildNs: time.Since(start).Nanoseconds()}, nil
	}
	s := e.subs[p]
	switch {
	case s.model == nil || e.t.opts.NoWarmStart || keyOverlap(s.blocks, want) < 0.5:
		e.rebuildObs(po, s, p, want)
	case !e.spliceObs(po, s, p, want):
		e.rebuildObs(po, s, p, want)
	default:
		rsp := po.Span("online.refresh")
		e.ad.RefreshModel(s.model, p, s.blocks)
		rsp.End()
	}
	warmAttempted := s.model.HasBasis()
	buildNs := time.Since(start).Nanoseconds()

	lpo := e.lpOpts
	if po != nil {
		lpo.Obs = po
	}
	start = time.Now()
	sol, err := s.model.SolveWithOptions(lpo)
	solveNs := time.Since(start).Nanoseconds()
	if err != nil {
		return subReport{}, err
	}
	esp := po.Span("online.extract")
	err = e.ad.Extract(p, s.blocks, sol, s.model.NumVariables())
	esp.End()
	if err != nil {
		return subReport{}, err
	}
	return subReport{
		warmAttempted: warmAttempted,
		warmStarted:   sol.WarmStarted,
		iterations:    sol.Iterations,
		dualPivots:    sol.DualPivots,
		buildNs:       buildNs,
		solveNs:       solveNs,
	}, nil
}

func (e *engine) rebuild(s *sub, p int, want []Block) {
	s.model = e.ad.BuildModel(p, want)
	s.blocks = slices.Clone(want)
	if p < len(e.seeds) && e.seeds[p] != nil {
		s.model.SetBasis(e.seeds[p])
		e.seeds[p] = nil
	}
}

// rebuildObs and spliceObs wrap the sync paths in their phase spans.
func (e *engine) rebuildObs(po *obs.Observer, s *sub, p int, want []Block) {
	sp := po.Span("online.rebuild").Arg("blocks", len(want))
	e.rebuild(s, p, want)
	sp.End()
}

func (e *engine) spliceObs(po *obs.Observer, s *sub, p int, want []Block) bool {
	sp := po.Span("online.splice")
	ok := e.splice(s, p, want)
	sp.Arg("ok", ok).End()
	return ok
}

// splice mutates s.model toward the want layout: blocks that vanished —
// or whose shape or content generation changed, making their structure
// stale — are removed back-to-front, missing blocks are inserted at their
// layout positions, and surviving blocks keep their variables, rows, and
// basis statuses. It reports false — the caller rebuilds — when the
// survivors' relative order differs from want's.
func (e *engine) splice(s *sub, p int, want []Block) bool {
	wantPos := make(map[BlockKey]int, len(want))
	for i, b := range want {
		wantPos[b.Key] = i
	}
	// Classify survivors (must match the wanted block exactly) and verify
	// their relative order before touching the model, so a doomed splice
	// never half-mutates it.
	keep := make([]bool, len(s.blocks))
	last := -1
	for i, b := range s.blocks {
		wi, ok := wantPos[b.Key]
		if !ok || want[wi] != b {
			continue // vanished, reshaped, or regenerated: remove + resplice
		}
		if wi <= last {
			return false
		}
		last = wi
		keep[i] = true
	}
	// Remove non-survivors back-to-front so earlier offsets stay valid.
	varOff := make([]int, len(s.blocks)+1)
	rowOff := make([]int, len(s.blocks)+1)
	for i, b := range s.blocks {
		varOff[i+1] = varOff[i] + b.Vars
		rowOff[i+1] = rowOff[i] + b.Rows
	}
	for bi := len(s.blocks) - 1; bi >= 0; bi-- {
		if keep[bi] {
			continue
		}
		s.model.RemoveConstraints(rowOff[bi], s.blocks[bi].Rows)
		s.model.RemoveVariables(varOff[bi], s.blocks[bi].Vars)
		s.blocks = slices.Delete(s.blocks, bi, bi+1)
		keep = slices.Delete(keep, bi, bi+1)
	}
	// Walk want, inserting the blocks the survivors do not cover.
	varAt, rowAt, ci := 0, 0, 0
	for _, b := range want {
		if ci < len(s.blocks) && s.blocks[ci].Key == b.Key {
			ci++
		} else {
			e.ad.SpliceBlock(s.model, p, b, varAt, rowAt)
			s.blocks = slices.Insert(s.blocks, ci, b)
			ci++
		}
		varAt += b.Vars
		rowAt += b.Rows
	}
	return true
}

func blockVars(layout []Block) int {
	n := 0
	for _, b := range layout {
		n += b.Vars
	}
	return n
}

// keyOverlap is the fraction of the larger layout whose block keys both
// layouts share — the churn heuristic behind the rebuild-vs-splice decision.
// For one-block-per-client layouts it equals the member overlap; pair
// layouts churn faster (one departure takes all its pair blocks along),
// which correctly biases them toward rebuilding.
func keyOverlap(cur, want []Block) float64 {
	if len(cur) == 0 || len(want) == 0 {
		return 0
	}
	in := make(map[BlockKey]bool, len(cur))
	for _, b := range cur {
		in[b.Key] = true
	}
	shared := 0
	for _, b := range want {
		if in[b.Key] {
			shared++
		}
	}
	return float64(shared) / math.Max(float64(len(cur)), float64(len(want)))
}
