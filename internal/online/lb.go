package online

import (
	"fmt"
	"math"
	"slices"
	"time"

	"pop/internal/core"
	"pop/internal/lb"
	"pop/internal/lp"
)

// lbSubResult caches one sub-problem's last assignment, in local (member,
// partition-server) coordinates.
type lbSubResult struct {
	ids       []int
	index     map[int]int
	frac      [][]float64
	placed    [][]bool
	objective float64
	variables int
	optimal   bool
}

// lbSub is one sub-problem's persistent LP state — the live relaxation
// model and the member list it encodes.
//
// Block layout, for n shards over mS partition servers: variables are mS
// serving fractions then mS placement indicators per shard (block i at
// [i·2mS, (i+1)·2mS)); rows are mS linking rows then the coverage row per
// shard (block i at [i·(mS+1), (i+1)·(mS+1))), followed by the shared
// per-server load-band and memory rows (3 per server).
type lbSub struct {
	model *lp.Model
	ids   []int
}

// LBEngine incrementally maintains a POP shard-balancing assignment on the
// continuous relaxation of the §4.3 formulation: shard load changes patch
// the persistent sub-problem models in place (band right-hand sides and
// load coefficients), so a re-solve pays pivots, not construction; a
// tolerance-only change is a pure rhs delta and rides the dual simplex.
// Servers are split across sub-problems once, at the first Step. Not safe
// for concurrent use.
type LBEngine struct {
	t       *tracker
	lpOpts  lp.Options
	servers []lb.Server
	groups  [][]int // partition -> indices into servers
	shards  map[int]lb.Shard
	// placed[id] is the shard's current placement over its partition's
	// servers (local order) — the cost anchor of the movement objective.
	placed  map[int][]bool
	subs    []*lbSub
	results []*lbSubResult
	tolFrac float64
	haveTol bool
}

// NewLBEngine creates a shard-balancing engine with K sub-problems.
func NewLBEngine(opts Options, lpOpts lp.Options) (*LBEngine, error) {
	t, err := newTracker(opts)
	if err != nil {
		return nil, err
	}
	e := &LBEngine{
		t:       t,
		lpOpts:  lpOpts,
		shards:  make(map[int]lb.Shard),
		placed:  make(map[int][]bool),
		subs:    make([]*lbSub, opts.K),
		results: make([]*lbSubResult, opts.K),
	}
	for p := range e.subs {
		e.subs[p] = &lbSub{}
	}
	return e, nil
}

// Stats returns the engine's work counters.
func (e *LBEngine) Stats() Stats { return e.t.stats }

// MarkAllDirty forces a full re-solve on the next Step (benchmark and
// testing hook).
func (e *LBEngine) MarkAllDirty() { e.t.markAllDirty() }

// Objective sums the sub-problem objectives (relaxed moved bytes) — the
// checksum the equivalence tests compare against a cold full solve.
func (e *LBEngine) Objective() float64 {
	total := 0.0
	for _, r := range e.results {
		if r != nil {
			total += r.objective
		}
	}
	return total
}

// syncServers (re)installs the server pool. Any capacity change dirties
// every sub-problem and invalidates the persistent models (the per-server
// block shape may have changed).
func (e *LBEngine) syncServers(servers []lb.Server) error {
	k := e.t.opts.K
	if len(servers) < k {
		return fmt.Errorf("online: %d servers cannot back %d sub-problems", len(servers), k)
	}
	if slices.Equal(e.servers, servers) {
		return nil
	}
	e.servers = append([]lb.Server(nil), servers...)
	e.groups = core.Partition(len(servers), k, core.RoundRobin, 0, nil)
	for p := range e.subs {
		e.subs[p] = &lbSub{}
	}
	e.t.markAllDirty()
	return nil
}

// Step diffs the instance against engine state (shard arrivals, departures,
// load/memory changes, placement drift, server changes), re-solves the
// dirtied sub-problems from their persistent models, and returns the
// composed assignment in the instance's coordinates. It has lb.Solver's
// shape via Solver.
func (e *LBEngine) Step(inst *lb.Instance) (*lb.Assignment, error) {
	if len(inst.Shards) == 0 || len(inst.Servers) == 0 {
		return nil, fmt.Errorf("online: empty instance")
	}
	if err := e.syncServers(inst.Servers); err != nil {
		return nil, err
	}
	if !e.haveTol || e.tolFrac != inst.TolFrac {
		if e.haveTol {
			e.t.markAllDirty()
		}
		e.tolFrac = inst.TolFrac
		e.haveTol = true
	}

	// Shard arrivals and changes.
	seen := make(map[int]bool, len(inst.Shards))
	rowOf := make(map[int]int, len(inst.Shards))
	for row, s := range inst.Shards {
		seen[s.ID] = true
		rowOf[s.ID] = row
		old, ok := e.shards[s.ID]
		e.shards[s.ID] = s
		p := e.t.upsert(s.ID, s.Load)
		if ok && (old.Load != s.Load || old.Mem != s.Mem) {
			e.t.touch(s.ID)
		}
		// Placement drift dirties too: it anchors the movement costs.
		local := localPlacement(inst.Placement[row], e.groups[p])
		if ok && !slices.Equal(e.placed[s.ID], local) {
			e.t.touch(s.ID)
		}
		e.placed[s.ID] = local
	}
	// Departures.
	var gone []int
	for id := range e.shards {
		if !seen[id] {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		delete(e.shards, id)
		delete(e.placed, id)
		e.t.remove(id)
	}

	// A rebalance move changes a shard's partition, and with it the local
	// coordinates of its placement anchor; move first, then refresh the
	// anchors so the dirtied sub-problems solve against consistent costs.
	if e.t.opts.Rebalance {
		e.t.rebalance()
		for id, row := range rowOf {
			e.placed[id] = localPlacement(inst.Placement[row], e.groups[e.t.partOf[id]])
		}
	}
	if err := e.solve(); err != nil {
		return nil, err
	}
	return e.compose(inst, rowOf)
}

// Solver adapts the engine to lb.RunRounds' round loop.
func (e *LBEngine) Solver() lb.Solver {
	return func(inst *lb.Instance) (*lb.Assignment, error) { return e.Step(inst) }
}

func localPlacement(full []bool, group []int) []bool {
	out := make([]bool, len(group))
	for li, j := range group {
		out[li] = full[j]
	}
	return out
}

// solve re-solves the dirty sub-problems on the relaxed §4.3 formulation,
// falling back to the greedy when a sub-problem's band is infeasible.
func (e *LBEngine) solve() error {
	return e.t.solveDirty(func(p int, ids []int) (subReport, error) {
		group := e.groups[p]
		mS := len(group)
		if len(ids) == 0 {
			e.results[p] = &lbSubResult{index: map[int]int{}, optimal: true}
			e.subs[p] = &lbSub{}
			return subReport{}, nil
		}
		members := make([]lb.Shard, len(ids))
		placement := make([][]bool, len(ids))
		for i, id := range ids {
			members[i] = e.shards[id]
			placement[i] = e.placed[id]
		}

		start := time.Now()
		m := e.syncLBModel(p, ids, members, placement)
		warmAttempted := m.HasBasis()
		buildNs := time.Since(start).Nanoseconds()

		start = time.Now()
		sol, err := m.SolveWithOptions(e.lpOpts)
		solveNs := time.Since(start).Nanoseconds()
		if err != nil {
			return subReport{}, err
		}

		res := &lbSubResult{
			ids:       append([]int(nil), ids...),
			index:     make(map[int]int, len(ids)),
			frac:      make([][]float64, len(ids)),
			placed:    make([][]bool, len(ids)),
			variables: m.NumVariables(),
		}
		for i, id := range ids {
			res.index[id] = i
		}
		if sol.Status != lp.Optimal {
			// Band infeasible in this sub-problem: greedy best effort, like
			// the batch solvers do.
			g := lb.SolveGreedy(e.subInstance(members, placement, p))
			res.frac, res.placed = g.Frac, g.Placed
			res.objective = g.MovedBytes
			e.results[p] = res
			return subReport{warmAttempted: warmAttempted, buildNs: buildNs, solveNs: solveNs}, nil
		}
		for i := range ids {
			res.frac[i] = make([]float64, mS)
			res.placed[i] = make([]bool, mS)
			base := i * 2 * mS
			for s := 0; s < mS; s++ {
				res.frac[i][s] = sol.X[base+s]
				res.placed[i][s] = sol.X[base+s] > 1e-6
			}
		}
		res.objective = sol.Objective
		res.optimal = true
		e.results[p] = res
		return subReport{
			warmAttempted: warmAttempted,
			warmStarted:   sol.WarmStarted,
			iterations:    sol.Iterations,
			dualPivots:    sol.DualPivots,
			buildNs:       buildNs,
			solveNs:       solveNs,
		}, nil
	})
}

// syncLBModel brings partition p's persistent relaxation model in line with
// the current members, placements, loads, and tolerance. Structure is
// spliced for membership changes; every data-dependent value is rewritten
// through setters that no-op on unchanged values, so a tolerance-only round
// arrives at the solver as a pure rhs delta (dual simplex) and a
// placement-only round as a pure objective delta.
func (e *LBEngine) syncLBModel(p int, ids []int, members []lb.Shard, placement [][]bool) *lp.Model {
	ls := e.subs[p]
	group := e.groups[p]
	mS := len(group)
	if ls.model == nil || e.t.opts.NoWarmStart || overlap(ls.ids, ids) < 0.5 {
		return e.rebuildLB(ls, ids, members, placement, p)
	}
	m := ls.model
	if !syncMemberBlocks(m, &ls.ids, ids, 2*mS, mS+1, func(bi int) { appendShardBlock(m, bi, mS) }) {
		return e.rebuildLB(ls, ids, members, placement, p)
	}

	// Full data refresh: movement costs per member, the shared band and
	// memory rows through the bulk setter (one pass per row, not per
	// member).
	n := len(ids)
	total := 0.0
	for _, s := range members {
		total += s.Load
	}
	L := total / float64(mS)
	eps := e.tolFrac * L
	sr := n * (mS + 1) // first shared row
	aVar := func(i, j int) int { return i*2*mS + j }
	mVar := func(i, j int) int { return i*2*mS + mS + j }
	for i, s := range members {
		for j := 0; j < mS; j++ {
			cost := s.Mem
			if placement[i][j] {
				cost = 0
			}
			m.SetObjectiveCoeff(mVar(i, j), cost)
		}
	}
	aIdx := make([]int, n)
	loads := make([]float64, n)
	mIdx := make([]int, n)
	mems := make([]float64, n)
	for j := 0; j < mS; j++ {
		for i, s := range members {
			aIdx[i] = aVar(i, j)
			loads[i] = s.Load
			mIdx[i] = mVar(i, j)
			mems[i] = s.Mem
		}
		m.SetCoeffs(sr+3*j, aIdx, loads)   // loadhi
		m.SetCoeffs(sr+3*j+1, aIdx, loads) // loadlo
		m.SetCoeffs(sr+3*j+2, mIdx, mems)  // mem
		m.SetRHS(sr+3*j, L+eps)
		m.SetRHS(sr+3*j+1, L-eps)
		m.SetRHS(sr+3*j+2, e.servers[group[j]].MemCap)
	}
	return m
}

func (e *LBEngine) rebuildLB(ls *lbSub, ids []int, members []lb.Shard, placement [][]bool, p int) *lp.Model {
	ls.model = buildLBModel(members, placement, e.subServers(p), e.tolFrac)
	ls.ids = append([]int(nil), ids...)
	return ls.model
}

// appendShardBlock splices a new shard block at block index bi: mS serving
// fractions, mS placement indicators, the linking rows, and the coverage
// row. The shard's columns in the shared band/memory rows and its movement
// costs are left to the refresh pass.
func appendShardBlock(m *lp.Model, bi, mS int) {
	at := bi * 2 * mS
	m.InsertVariables(at, mS, 0, 0, 1)    // serving fractions
	m.InsertVariables(at+mS, mS, 0, 0, 1) // placement indicators
	rowAt := bi * (mS + 1)
	aIdxs := make([]int, mS)
	ones := make([]float64, mS)
	for j := 0; j < mS; j++ {
		m.InsertConstraint(rowAt+j, []int{at + j, at + mS + j}, []float64{1, -1}, lp.LE, 0, "link")
		aIdxs[j] = at + j
		ones[j] = 1
	}
	m.InsertConstraint(rowAt+mS, aIdxs, ones, lp.EQ, 1, "cover")
}

func (e *LBEngine) subServers(p int) []lb.Server {
	out := make([]lb.Server, len(e.groups[p]))
	for li, j := range e.groups[p] {
		out[li] = e.servers[j]
	}
	return out
}

func (e *LBEngine) subInstance(members []lb.Shard, placement [][]bool, p int) *lb.Instance {
	sub := &lb.Instance{
		Shards:    members,
		Servers:   e.subServers(p),
		TolFrac:   e.tolFrac,
		Placement: placement,
	}
	return sub
}

// compose stitches the per-partition local assignments back onto the
// instance's (shard row, server column) coordinates and computes the
// round's movement and deviation metrics.
func (e *LBEngine) compose(inst *lb.Instance, rowOf map[int]int) (*lb.Assignment, error) {
	n, m := len(inst.Shards), len(inst.Servers)
	out := &lb.Assignment{
		Frac:    make([][]float64, n),
		Placed:  make([][]bool, n),
		Optimal: true,
	}
	for i := 0; i < n; i++ {
		out.Frac[i] = make([]float64, m)
		out.Placed[i] = make([]bool, m)
	}
	for p, res := range e.results {
		if res == nil {
			continue
		}
		out.Variables += res.variables
		out.Optimal = out.Optimal && res.optimal
		for li, id := range res.ids {
			row, ok := rowOf[id]
			if !ok {
				return nil, fmt.Errorf("online: stale shard %d in sub-problem %d", id, p)
			}
			for ls, j := range e.groups[p] {
				out.Frac[row][j] = res.frac[li][ls]
				out.Placed[row][j] = res.placed[li][ls]
			}
		}
	}

	L := inst.AvgLoad()
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if out.Placed[i][j] && !inst.Placement[i][j] {
				out.Movements++
				out.MovedBytes += inst.Shards[i].Mem
			}
		}
	}
	for j := 0; j < m; j++ {
		load := 0.0
		for i := 0; i < n; i++ {
			load += out.Frac[i][j] * inst.Shards[i].Load
		}
		if dev := math.Abs(load-L) / L; dev > out.MaxDeviation {
			out.MaxDeviation = dev
		}
	}
	return out, nil
}

// buildLBModel assembles the relaxed §4.3 LP as a mutable model in the
// block layout documented on lbSub. Per shard: mS serving fractions then mS
// placement indicators (variables), mS linking rows then the coverage row;
// shared per-server band and memory rows trail.
func buildLBModel(members []lb.Shard, placement [][]bool, servers []lb.Server, tolFrac float64) *lp.Model {
	n, mS := len(members), len(servers)
	total := 0.0
	for _, s := range members {
		total += s.Load
	}
	L := total / float64(mS)
	eps := tolFrac * L

	m := lp.NewModel(lp.Minimize)
	for i, s := range members {
		m.AddVariables(mS, 0, 0, 1) // serving fractions a_{i,*}
		for j := 0; j < mS; j++ {   // placement indicators m_{i,*}
			cost := s.Mem
			if placement[i][j] {
				cost = 0
			}
			m.AddVariable(cost, 0, 1, "")
		}
	}
	aVar := func(i, j int) int { return i*2*mS + j }
	mVar := func(i, j int) int { return i*2*mS + mS + j }

	for i := range members {
		for j := 0; j < mS; j++ {
			m.AddConstraint([]int{aVar(i, j), mVar(i, j)}, []float64{1, -1}, lp.LE, 0, "link")
		}
		idxs := make([]int, mS)
		ones := make([]float64, mS)
		for j := 0; j < mS; j++ {
			idxs[j] = aVar(i, j)
			ones[j] = 1
		}
		m.AddConstraint(idxs, ones, lp.EQ, 1, "cover")
	}
	for j := 0; j < mS; j++ {
		idxs := make([]int, n)
		loads := make([]float64, n)
		midx := make([]int, n)
		mems := make([]float64, n)
		for i, s := range members {
			idxs[i] = aVar(i, j)
			loads[i] = s.Load
			midx[i] = mVar(i, j)
			mems[i] = s.Mem
		}
		m.AddConstraint(idxs, loads, lp.LE, L+eps, "loadhi")
		m.AddConstraint(idxs, loads, lp.GE, L-eps, "loadlo")
		m.AddConstraint(midx, mems, lp.LE, servers[j].MemCap, "mem")
	}
	return m
}
