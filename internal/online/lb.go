package online

import (
	"fmt"
	"math"
	"slices"

	"pop/internal/core"
	"pop/internal/lb"
	"pop/internal/lp"
)

// lbSubResult caches one sub-problem's last assignment, in local (member,
// partition-server) coordinates.
type lbSubResult struct {
	ids       []int
	index     map[int]int
	frac      [][]float64
	placed    [][]bool
	objective float64
	variables int
	optimal   bool
}

// lbState is the domain state behind the shard-balancing adapter.
type lbState struct {
	servers []lb.Server
	groups  [][]int // partition -> indices into servers
	shards  map[int]lb.Shard
	// placed[id] is the shard's current placement over its partition's
	// servers (local order) — the cost anchor of the movement objective.
	placed  map[int][]bool
	results []*lbSubResult
	tolFrac float64
	haveTol bool
}

// LBEngine incrementally maintains a POP shard-balancing assignment on the
// continuous relaxation of the §4.3 formulation: shard load changes patch
// the persistent sub-problem models in place (band right-hand sides and
// load coefficients), so a re-solve pays pivots, not construction; a
// tolerance-only change is a pure rhs delta and rides the dual simplex.
// Servers are split across sub-problems once, at the first Step. Not safe
// for concurrent use.
type LBEngine struct {
	st  *lbState
	eng *engine
}

// NewLBEngine creates a shard-balancing engine with K sub-problems.
func NewLBEngine(opts Options, lpOpts lp.Options) (*LBEngine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	st := &lbState{
		shards:  make(map[int]lb.Shard),
		placed:  make(map[int][]bool),
		results: make([]*lbSubResult, opts.K),
	}
	eng, err := newEngine(&lbAdapter{st}, opts, lpOpts)
	if err != nil {
		return nil, err
	}
	return &LBEngine{st: st, eng: eng}, nil
}

// Stats returns the engine's work counters.
func (e *LBEngine) Stats() Stats { return e.eng.t.stats }

// MarkAllDirty forces a full re-solve on the next Step (benchmark and
// testing hook).
func (e *LBEngine) MarkAllDirty() { e.eng.t.markAllDirty() }

// Objective sums the sub-problem objectives (relaxed moved bytes) — the
// checksum the equivalence tests compare against a cold full solve.
func (e *LBEngine) Objective() float64 {
	total := 0.0
	for _, r := range e.st.results {
		if r != nil {
			total += r.objective
		}
	}
	return total
}

// syncServers (re)installs the server pool. Any capacity change dirties
// every sub-problem and invalidates the persistent models (the per-server
// block shape may have changed).
func (e *LBEngine) syncServers(servers []lb.Server) error {
	k := e.eng.t.opts.K
	if len(servers) < k {
		return fmt.Errorf("online: %d servers cannot back %d sub-problems", len(servers), k)
	}
	if slices.Equal(e.st.servers, servers) {
		return nil
	}
	e.st.servers = append([]lb.Server(nil), servers...)
	e.st.groups = core.Partition(len(servers), k, core.RoundRobin, 0, nil)
	e.eng.invalidateModels()
	e.eng.t.markAllDirty()
	return nil
}

// Step diffs the instance against engine state (shard arrivals, departures,
// load/memory changes, placement drift, server changes), re-solves the
// dirtied sub-problems from their persistent models, and returns the
// composed assignment in the instance's coordinates. It has lb.Solver's
// shape via Solver.
func (e *LBEngine) Step(inst *lb.Instance) (*lb.Assignment, error) {
	if len(inst.Shards) == 0 || len(inst.Servers) == 0 {
		return nil, fmt.Errorf("online: empty instance")
	}
	if err := e.syncServers(inst.Servers); err != nil {
		return nil, err
	}
	t := e.eng.t
	if !e.st.haveTol || e.st.tolFrac != inst.TolFrac {
		if e.st.haveTol {
			t.markAllDirty()
		}
		e.st.tolFrac = inst.TolFrac
		e.st.haveTol = true
	}

	// Shard arrivals and changes.
	seen := make(map[int]bool, len(inst.Shards))
	rowOf := make(map[int]int, len(inst.Shards))
	for row, s := range inst.Shards {
		seen[s.ID] = true
		rowOf[s.ID] = row
		old, ok := e.st.shards[s.ID]
		e.st.shards[s.ID] = s
		p := t.upsert(s.ID, s.Load)
		if ok && (old.Load != s.Load || old.Mem != s.Mem) {
			t.touch(s.ID)
		}
		// Placement drift dirties too: it anchors the movement costs.
		local := localPlacement(inst.Placement[row], e.st.groups[p])
		if ok && !slices.Equal(e.st.placed[s.ID], local) {
			t.touch(s.ID)
		}
		e.st.placed[s.ID] = local
	}
	// Departures.
	var gone []int
	for id := range e.st.shards {
		if !seen[id] {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		delete(e.st.shards, id)
		delete(e.st.placed, id)
		t.remove(id)
	}

	// A rebalance move changes a shard's partition, and with it the local
	// coordinates of its placement anchor; move first, then refresh the
	// anchors so the dirtied sub-problems solve against consistent costs.
	if t.opts.Rebalance {
		t.rebalance()
		for id, row := range rowOf {
			e.st.placed[id] = localPlacement(inst.Placement[row], e.st.groups[t.partOf[id]])
		}
	}
	if err := e.eng.solveRound(); err != nil {
		return nil, err
	}
	return e.compose(inst, rowOf)
}

// Solver adapts the engine to lb.RunRounds' round loop.
func (e *LBEngine) Solver() lb.Solver {
	return func(inst *lb.Instance) (*lb.Assignment, error) { return e.Step(inst) }
}

func localPlacement(full []bool, group []int) []bool {
	out := make([]bool, len(group))
	for li, j := range group {
		out[li] = full[j]
	}
	return out
}

// lbAdapter is the Adapter for the relaxed §4.3 shard balancer: one block
// per shard.
//
// Block layout, for n shards over mS partition servers: block i holds the
// shard's mS serving fractions then its mS placement indicators, and its mS
// linking rows then its coverage row; the shared per-server load-band and
// memory rows (3 per server) trail the block rows. There are no shared
// variables.
type lbAdapter struct {
	*lbState
}

func (ad *lbAdapter) Layout(p int, ids []int) []Block {
	mS := len(ad.groups[p])
	layout := make([]Block, len(ids))
	for i, id := range ids {
		layout[i] = Block{Key: BlockKey{id, NoPartner}, Vars: 2 * mS, Rows: mS + 1}
	}
	return layout
}

func (ad *lbAdapter) memberData(layout []Block) ([]lb.Shard, [][]bool) {
	members := make([]lb.Shard, len(layout))
	placement := make([][]bool, len(layout))
	for i, b := range layout {
		members[i] = ad.shards[b.Key.A]
		placement[i] = ad.placed[b.Key.A]
	}
	return members, placement
}

func (ad *lbAdapter) BuildModel(p int, layout []Block) *lp.Model {
	members, placement := ad.memberData(layout)
	return buildLBModel(members, placement, ad.subServers(p), ad.tolFrac)
}

// SpliceBlock inserts a shard block: mS serving fractions, mS placement
// indicators, the linking rows, and the coverage row. The shard's columns in
// the shared band/memory rows and its movement costs are left to
// RefreshModel.
func (ad *lbAdapter) SpliceBlock(m *lp.Model, p int, b Block, varAt, rowAt int) {
	mS := len(ad.groups[p])
	m.InsertVariables(varAt, mS, 0, 0, 1)    // serving fractions
	m.InsertVariables(varAt+mS, mS, 0, 0, 1) // placement indicators
	aIdxs := make([]int, mS)
	ones := make([]float64, mS)
	for j := 0; j < mS; j++ {
		m.InsertConstraint(rowAt+j, []int{varAt + j, varAt + mS + j}, []float64{1, -1}, lp.LE, 0, "link")
		aIdxs[j] = varAt + j
		ones[j] = 1
	}
	m.InsertConstraint(rowAt+mS, aIdxs, ones, lp.EQ, 1, "cover")
}

// RefreshModel rewrites the data-dependent values: movement costs per
// member, the shared band and memory rows through the bulk setter (one pass
// per row, not per member).
func (ad *lbAdapter) RefreshModel(m *lp.Model, p int, layout []Block) {
	members, placement := ad.memberData(layout)
	group := ad.groups[p]
	mS := len(group)
	n := len(members)
	total := 0.0
	for _, s := range members {
		total += s.Load
	}
	L := total / float64(mS)
	eps := ad.tolFrac * L
	sr := n * (mS + 1) // first shared row
	aVar := func(i, j int) int { return i*2*mS + j }
	mVar := func(i, j int) int { return i*2*mS + mS + j }
	for i, s := range members {
		for j := 0; j < mS; j++ {
			cost := s.Mem
			if placement[i][j] {
				cost = 0
			}
			m.SetObjectiveCoeff(mVar(i, j), cost)
		}
	}
	aIdx := make([]int, n)
	loads := make([]float64, n)
	mIdx := make([]int, n)
	mems := make([]float64, n)
	for j := 0; j < mS; j++ {
		for i, s := range members {
			aIdx[i] = aVar(i, j)
			loads[i] = s.Load
			mIdx[i] = mVar(i, j)
			mems[i] = s.Mem
		}
		m.SetCoeffs(sr+3*j, aIdx, loads)   // loadhi
		m.SetCoeffs(sr+3*j+1, aIdx, loads) // loadlo
		m.SetCoeffs(sr+3*j+2, mIdx, mems)  // mem
		m.SetRHS(sr+3*j, L+eps)
		m.SetRHS(sr+3*j+1, L-eps)
		m.SetRHS(sr+3*j+2, ad.servers[group[j]].MemCap)
	}
}

func (ad *lbAdapter) Extract(p int, layout []Block, sol *lp.Solution, nVars int) error {
	mS := len(ad.groups[p])
	ids := soloIDs(layout)
	res := &lbSubResult{
		ids:       slices.Clone(ids),
		index:     make(map[int]int, len(ids)),
		frac:      make([][]float64, len(ids)),
		placed:    make([][]bool, len(ids)),
		variables: nVars,
	}
	for i, id := range ids {
		res.index[id] = i
	}
	if sol.Status != lp.Optimal {
		// Band infeasible in this sub-problem: greedy best effort, like the
		// batch solvers do.
		members, placement := ad.memberData(layout)
		g := lb.SolveGreedy(ad.subInstance(members, placement, p))
		res.frac, res.placed = g.Frac, g.Placed
		res.objective = g.MovedBytes
		ad.results[p] = res
		return nil
	}
	for i := range ids {
		res.frac[i] = make([]float64, mS)
		res.placed[i] = make([]bool, mS)
		base := i * 2 * mS
		for s := 0; s < mS; s++ {
			res.frac[i][s] = sol.X[base+s]
			res.placed[i][s] = sol.X[base+s] > 1e-6
		}
	}
	res.objective = sol.Objective
	res.optimal = true
	ad.results[p] = res
	return nil
}

func (ad *lbAdapter) Clear(p int) {
	ad.results[p] = &lbSubResult{index: map[int]int{}, optimal: true}
}

func (st *lbState) subServers(p int) []lb.Server {
	out := make([]lb.Server, len(st.groups[p]))
	for li, j := range st.groups[p] {
		out[li] = st.servers[j]
	}
	return out
}

func (st *lbState) subInstance(members []lb.Shard, placement [][]bool, p int) *lb.Instance {
	return &lb.Instance{
		Shards:    members,
		Servers:   st.subServers(p),
		TolFrac:   st.tolFrac,
		Placement: placement,
	}
}

// compose stitches the per-partition local assignments back onto the
// instance's (shard row, server column) coordinates and computes the
// round's movement and deviation metrics.
func (e *LBEngine) compose(inst *lb.Instance, rowOf map[int]int) (*lb.Assignment, error) {
	n, m := len(inst.Shards), len(inst.Servers)
	out := &lb.Assignment{
		Frac:    make([][]float64, n),
		Placed:  make([][]bool, n),
		Optimal: true,
	}
	for i := 0; i < n; i++ {
		out.Frac[i] = make([]float64, m)
		out.Placed[i] = make([]bool, m)
	}
	for p, res := range e.st.results {
		if res == nil {
			continue
		}
		out.Variables += res.variables
		out.Optimal = out.Optimal && res.optimal
		for li, id := range res.ids {
			row, ok := rowOf[id]
			if !ok {
				return nil, fmt.Errorf("online: stale shard %d in sub-problem %d", id, p)
			}
			for ls, j := range e.st.groups[p] {
				out.Frac[row][j] = res.frac[li][ls]
				out.Placed[row][j] = res.placed[li][ls]
			}
		}
	}

	L := inst.AvgLoad()
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if out.Placed[i][j] && !inst.Placement[i][j] {
				out.Movements++
				out.MovedBytes += inst.Shards[i].Mem
			}
		}
	}
	for j := 0; j < m; j++ {
		load := 0.0
		for i := 0; i < n; i++ {
			load += out.Frac[i][j] * inst.Shards[i].Load
		}
		if dev := math.Abs(load-L) / L; dev > out.MaxDeviation {
			out.MaxDeviation = dev
		}
	}
	return out, nil
}

// buildLBModel assembles the relaxed §4.3 LP as a mutable model in the
// block layout documented on lbAdapter. Per shard: mS serving fractions then
// mS placement indicators (variables), mS linking rows then the coverage
// row; shared per-server band and memory rows trail.
func buildLBModel(members []lb.Shard, placement [][]bool, servers []lb.Server, tolFrac float64) *lp.Model {
	n, mS := len(members), len(servers)
	total := 0.0
	for _, s := range members {
		total += s.Load
	}
	L := total / float64(mS)
	eps := tolFrac * L

	m := lp.NewModel(lp.Minimize)
	for i, s := range members {
		m.AddVariables(mS, 0, 0, 1) // serving fractions a_{i,*}
		for j := 0; j < mS; j++ {   // placement indicators m_{i,*}
			cost := s.Mem
			if placement[i][j] {
				cost = 0
			}
			m.AddVariable(cost, 0, 1, "")
		}
	}
	aVar := func(i, j int) int { return i*2*mS + j }
	mVar := func(i, j int) int { return i*2*mS + mS + j }

	for i := range members {
		for j := 0; j < mS; j++ {
			m.AddConstraint([]int{aVar(i, j), mVar(i, j)}, []float64{1, -1}, lp.LE, 0, "link")
		}
		idxs := make([]int, mS)
		ones := make([]float64, mS)
		for j := 0; j < mS; j++ {
			idxs[j] = aVar(i, j)
			ones[j] = 1
		}
		m.AddConstraint(idxs, ones, lp.EQ, 1, "cover")
	}
	for j := 0; j < mS; j++ {
		idxs := make([]int, n)
		loads := make([]float64, n)
		midx := make([]int, n)
		mems := make([]float64, n)
		for i, s := range members {
			idxs[i] = aVar(i, j)
			loads[i] = s.Load
			midx[i] = mVar(i, j)
			mems[i] = s.Mem
		}
		m.AddConstraint(idxs, loads, lp.LE, L+eps, "loadhi")
		m.AddConstraint(idxs, loads, lp.GE, L-eps, "loadlo")
		m.AddConstraint(midx, mems, lp.LE, servers[j].MemCap, "mem")
	}
	return m
}
