package online

import (
	"fmt"
	"math"
	"slices"

	"pop/internal/core"
	"pop/internal/lb"
	"pop/internal/lp"
)

// lbSubResult caches one sub-problem's last assignment, in local (member,
// partition-server) coordinates.
type lbSubResult struct {
	ids       []int
	index     map[int]int
	frac      [][]float64
	placed    [][]bool
	objective float64
	variables int
	optimal   bool
}

// LBEngine incrementally maintains a POP shard-balancing assignment on the
// continuous relaxation of the §4.3 formulation: shard load changes dirty
// only their own sub-problem, which is re-solved warm-started from its
// previous basis. Servers are split across sub-problems once, at the first
// Step. Not safe for concurrent use.
type LBEngine struct {
	t       *tracker
	lpOpts  lp.Options
	servers []lb.Server
	groups  [][]int // partition -> indices into servers
	shards  map[int]lb.Shard
	// placed[id] is the shard's current placement over its partition's
	// servers (local order) — the cost anchor of the movement objective.
	placed  map[int][]bool
	results []*lbSubResult
	tolFrac float64
	haveTol bool
}

// NewLBEngine creates a shard-balancing engine with K sub-problems.
func NewLBEngine(opts Options, lpOpts lp.Options) (*LBEngine, error) {
	t, err := newTracker(opts)
	if err != nil {
		return nil, err
	}
	return &LBEngine{
		t:       t,
		lpOpts:  lpOpts,
		shards:  make(map[int]lb.Shard),
		placed:  make(map[int][]bool),
		results: make([]*lbSubResult, opts.K),
	}, nil
}

// Stats returns the engine's work counters.
func (e *LBEngine) Stats() Stats { return e.t.stats }

// MarkAllDirty forces a full re-solve on the next Step (benchmark and
// testing hook).
func (e *LBEngine) MarkAllDirty() { e.t.markAllDirty() }

// Objective sums the sub-problem objectives (relaxed moved bytes) — the
// checksum the equivalence tests compare against a cold full solve.
func (e *LBEngine) Objective() float64 {
	total := 0.0
	for _, r := range e.results {
		if r != nil {
			total += r.objective
		}
	}
	return total
}

// syncServers (re)installs the server pool. Any capacity change dirties
// every sub-problem.
func (e *LBEngine) syncServers(servers []lb.Server) error {
	k := e.t.opts.K
	if len(servers) < k {
		return fmt.Errorf("online: %d servers cannot back %d sub-problems", len(servers), k)
	}
	if slices.Equal(e.servers, servers) {
		return nil
	}
	e.servers = append([]lb.Server(nil), servers...)
	e.groups = core.Partition(len(servers), k, core.RoundRobin, 0, nil)
	e.t.markAllDirty()
	return nil
}

// Step diffs the instance against engine state (shard arrivals, departures,
// load/memory changes, placement drift, server changes), re-solves the
// dirtied sub-problems warm-started, and returns the composed assignment in
// the instance's coordinates. It has lb.Solver's shape via Solver.
func (e *LBEngine) Step(inst *lb.Instance) (*lb.Assignment, error) {
	if len(inst.Shards) == 0 || len(inst.Servers) == 0 {
		return nil, fmt.Errorf("online: empty instance")
	}
	if err := e.syncServers(inst.Servers); err != nil {
		return nil, err
	}
	if !e.haveTol || e.tolFrac != inst.TolFrac {
		if e.haveTol {
			e.t.markAllDirty()
		}
		e.tolFrac = inst.TolFrac
		e.haveTol = true
	}

	// Shard arrivals and changes.
	seen := make(map[int]bool, len(inst.Shards))
	rowOf := make(map[int]int, len(inst.Shards))
	for row, s := range inst.Shards {
		seen[s.ID] = true
		rowOf[s.ID] = row
		old, ok := e.shards[s.ID]
		e.shards[s.ID] = s
		p := e.t.upsert(s.ID, s.Load)
		if ok && (old.Load != s.Load || old.Mem != s.Mem) {
			e.t.touch(s.ID)
		}
		// Placement drift dirties too: it anchors the movement costs.
		local := localPlacement(inst.Placement[row], e.groups[p])
		if ok && !slices.Equal(e.placed[s.ID], local) {
			e.t.touch(s.ID)
		}
		e.placed[s.ID] = local
	}
	// Departures.
	var gone []int
	for id := range e.shards {
		if !seen[id] {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		delete(e.shards, id)
		delete(e.placed, id)
		e.t.remove(id)
	}

	if err := e.solve(); err != nil {
		return nil, err
	}
	return e.compose(inst, rowOf)
}

// Solver adapts the engine to lb.RunRounds' round loop.
func (e *LBEngine) Solver() lb.Solver {
	return func(inst *lb.Instance) (*lb.Assignment, error) { return e.Step(inst) }
}

func localPlacement(full []bool, group []int) []bool {
	out := make([]bool, len(group))
	for li, j := range group {
		out[li] = full[j]
	}
	return out
}

// solve re-solves the dirty sub-problems on the relaxed §4.3 formulation,
// falling back to the greedy when a sub-problem's band is infeasible.
func (e *LBEngine) solve() error {
	return e.t.solveDirty(func(p int, ids []int, prevBasis *lp.Basis, prevIDs []int) (subReport, error) {
		group := e.groups[p]
		mS := len(group)
		if len(ids) == 0 {
			e.results[p] = &lbSubResult{index: map[int]int{}, optimal: true}
			return subReport{}, nil
		}
		lay := BlockLayout{VarsPerClient: 2 * mS, RowsPerClient: mS + 1, SharedVars: 0, SharedRows: 3 * mS}
		warm := prevBasis
		if warm != nil && !slices.Equal(prevIDs, ids) {
			warm = RemapBasis(warm, lay, prevIDs, ids)
		}

		members := make([]lb.Shard, len(ids))
		placement := make([][]bool, len(ids))
		for i, id := range ids {
			members[i] = e.shards[id]
			placement[i] = e.placed[id]
		}
		prob := buildLBRelaxation(members, placement, e.subServers(p), e.tolFrac)
		opts := e.lpOpts
		opts.WarmBasis = warm
		sol, err := prob.SolveWithOptions(opts)
		if err != nil {
			return subReport{}, err
		}

		res := &lbSubResult{
			ids:       append([]int(nil), ids...),
			index:     make(map[int]int, len(ids)),
			frac:      make([][]float64, len(ids)),
			placed:    make([][]bool, len(ids)),
			variables: prob.NumVariables(),
		}
		for i, id := range ids {
			res.index[id] = i
		}
		if sol.Status != lp.Optimal {
			// Band infeasible in this sub-problem: greedy best effort, like
			// the batch solvers do.
			g := lb.SolveGreedy(e.subInstance(members, placement, p))
			res.frac, res.placed = g.Frac, g.Placed
			res.objective = g.MovedBytes
			e.results[p] = res
			return subReport{}, nil
		}
		for i := range ids {
			res.frac[i] = make([]float64, mS)
			res.placed[i] = make([]bool, mS)
			base := i * 2 * mS
			for s := 0; s < mS; s++ {
				res.frac[i][s] = sol.X[base+s]
				res.placed[i][s] = sol.X[base+s] > 1e-6
			}
		}
		res.objective = sol.Objective
		res.optimal = true
		e.results[p] = res
		return subReport{basis: sol.Basis, warmStarted: sol.WarmStarted, iterations: sol.Iterations}, nil
	})
}

func (e *LBEngine) subServers(p int) []lb.Server {
	out := make([]lb.Server, len(e.groups[p]))
	for li, j := range e.groups[p] {
		out[li] = e.servers[j]
	}
	return out
}

func (e *LBEngine) subInstance(members []lb.Shard, placement [][]bool, p int) *lb.Instance {
	sub := &lb.Instance{
		Shards:    members,
		Servers:   e.subServers(p),
		TolFrac:   e.tolFrac,
		Placement: placement,
	}
	return sub
}

// compose stitches the per-partition local assignments back onto the
// instance's (shard row, server column) coordinates and computes the
// round's movement and deviation metrics.
func (e *LBEngine) compose(inst *lb.Instance, rowOf map[int]int) (*lb.Assignment, error) {
	n, m := len(inst.Shards), len(inst.Servers)
	out := &lb.Assignment{
		Frac:    make([][]float64, n),
		Placed:  make([][]bool, n),
		Optimal: true,
	}
	for i := 0; i < n; i++ {
		out.Frac[i] = make([]float64, m)
		out.Placed[i] = make([]bool, m)
	}
	for p, res := range e.results {
		if res == nil {
			continue
		}
		out.Variables += res.variables
		out.Optimal = out.Optimal && res.optimal
		for li, id := range res.ids {
			row, ok := rowOf[id]
			if !ok {
				return nil, fmt.Errorf("online: stale shard %d in sub-problem %d", id, p)
			}
			for ls, j := range e.groups[p] {
				out.Frac[row][j] = res.frac[li][ls]
				out.Placed[row][j] = res.placed[li][ls]
			}
		}
	}

	L := inst.AvgLoad()
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if out.Placed[i][j] && !inst.Placement[i][j] {
				out.Movements++
				out.MovedBytes += inst.Shards[i].Mem
			}
		}
	}
	for j := 0; j < m; j++ {
		load := 0.0
		for i := 0; i < n; i++ {
			load += out.Frac[i][j] * inst.Shards[i].Load
		}
		if dev := math.Abs(load-L) / L; dev > out.MaxDeviation {
			out.MaxDeviation = dev
		}
	}
	return out, nil
}

// buildLBRelaxation assembles the relaxed §4.3 LP in the remap-friendly
// block layout. Per shard: mS serving fractions then mS placement
// indicators (variables), mS linking rows then the coverage row; shared
// per-server band and memory rows trail.
func buildLBRelaxation(members []lb.Shard, placement [][]bool, servers []lb.Server, tolFrac float64) *lp.Problem {
	n, mS := len(members), len(servers)
	total := 0.0
	for _, s := range members {
		total += s.Load
	}
	L := total / float64(mS)
	eps := tolFrac * L

	p := lp.NewProblem(lp.Minimize)
	for i, s := range members {
		p.AddVariables(mS, 0, 0, 1) // serving fractions a_{i,*}
		for j := 0; j < mS; j++ {   // placement indicators m_{i,*}
			cost := s.Mem
			if placement[i][j] {
				cost = 0
			}
			p.AddVariable(cost, 0, 1, "")
		}
	}
	aVar := func(i, j int) int { return i*2*mS + j }
	mVar := func(i, j int) int { return i*2*mS + mS + j }

	for i := range members {
		for j := 0; j < mS; j++ {
			p.AddConstraint([]int{aVar(i, j), mVar(i, j)}, []float64{1, -1}, lp.LE, 0, "link")
		}
		idxs := make([]int, mS)
		ones := make([]float64, mS)
		for j := 0; j < mS; j++ {
			idxs[j] = aVar(i, j)
			ones[j] = 1
		}
		p.AddConstraint(idxs, ones, lp.EQ, 1, "cover")
	}
	for j := 0; j < mS; j++ {
		idxs := make([]int, n)
		loads := make([]float64, n)
		midx := make([]int, n)
		mems := make([]float64, n)
		for i, s := range members {
			idxs[i] = aVar(i, j)
			loads[i] = s.Load
			midx[i] = mVar(i, j)
			mems[i] = s.Mem
		}
		p.AddConstraint(idxs, loads, lp.LE, L+eps, "loadhi")
		p.AddConstraint(idxs, loads, lp.GE, L-eps, "loadlo")
		p.AddConstraint(midx, mems, lp.LE, servers[j].MemCap, "mem")
	}
	return p
}
