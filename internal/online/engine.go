package online

import (
	"fmt"
	"math"

	"pop/internal/core"
	"pop/internal/obs"
)

// Options configure an incremental engine.
type Options struct {
	// K is the number of POP sub-problems; required ≥ 1.
	K int
	// Obs, when non-nil, receives engine telemetry: an "online.round" span
	// per solve round, per-partition "online.subsolve" spans (with
	// rebuild/splice/refresh/extract phase children) on trace lanes
	// TID+1+p, and round-level counters/histograms. The observer is also
	// threaded into each partition's LP solve. Nil — the default — costs
	// one pointer check per round.
	Obs *obs.Observer
	// Parallel re-solves dirty sub-problems concurrently (the map step).
	Parallel bool
	// NoWarmStart disables the persistent-model mutation path, making every
	// dirty sub-problem rebuild its LP from scratch and solve cold. Used for
	// the cold baseline in benchmarks and the equivalence tests; production
	// engines leave it false.
	NoWarmStart bool
	// Rebalance moves at most one client per round from the most- to the
	// least-loaded sub-problem when that strictly narrows the load spread,
	// bounding partition drift under churn while keeping reassignment
	// minimal. Both moved-between sub-problems re-solve that round.
	Rebalance bool
}

func (o Options) validate() error {
	if o.K < 1 {
		return fmt.Errorf("online: K must be ≥ 1, got %d", o.K)
	}
	return nil
}

// Stats counts the engine's work since creation. The JSON tags fix the
// wire names popserver's /v1/stats exposes, so adding a field here extends
// the snapshot instead of silently dropping from it.
type Stats struct {
	// Rounds is the number of Solve calls.
	Rounds int `json:"rounds"`
	// SubSolves counts dirty sub-problems actually re-solved.
	SubSolves int `json:"sub_solves"`
	// SkippedClean counts sub-problems a round left untouched.
	SkippedClean int `json:"skipped_clean"`
	// WarmAttempts counts sub-solves entered with a live basis in the
	// sub-problem's persistent model; WarmHits counts those where the
	// solver accepted it (Solution.WarmStarted).
	WarmAttempts int `json:"warm_attempts"`
	WarmHits     int `json:"warm_hits"`
	// Iterations is the total simplex pivots across all sub-solves;
	// DualPivots is the subset taken by the dual simplex phase on
	// rhs/bound-only deltas.
	Iterations int `json:"iterations"`
	DualPivots int `json:"dual_pivots"`
	// BuildNs is time spent constructing or mutating sub-problem LP models;
	// SolveNs is time spent inside the LP solver. Their ratio is the
	// constant-factor story: the mutation path exists to shrink BuildNs.
	BuildNs int64 `json:"build_ns"`
	SolveNs int64 `json:"solve_ns"`
	// Arrivals, Departures, and Updates count the applied deltas;
	// Rebalances counts clients moved by the drift-bounding rebalancer.
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
	Updates    int `json:"updates"`
	Rebalances int `json:"rebalances"`
}

// partition is the engine-internal state of one sub-problem.
type partition struct {
	ids   []int // members in stable (insertion) order
	load  float64
	dirty bool
	// touched collects the members whose data changed since the last solve,
	// deduplicating the Stats.Updates count per round.
	touched map[int]struct{}
}

func (p *partition) markTouched(id int) {
	if p.touched == nil {
		p.touched = make(map[int]struct{})
	}
	p.touched[id] = struct{}{}
}

// tracker keeps the partition bookkeeping of an engine: stable partitions,
// dirty marking, drift-bounded rebalancing, and the dirty-only solve loop.
// LP state lives with the generic engine (adapter.go), which keeps one
// persistent lp.Model per partition and mutates it in place between solves.
type tracker struct {
	opts   Options
	parts  []*partition
	partOf map[int]int
	loadOf map[int]float64
	stats  Stats
}

func newTracker(opts Options) (*tracker, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &tracker{
		opts:   opts,
		parts:  make([]*partition, opts.K),
		partOf: make(map[int]int),
		loadOf: make(map[int]float64),
	}
	for p := range t.parts {
		t.parts[p] = &partition{}
	}
	return t, nil
}

// upsert places (or keeps) client id with partitioning weight load and
// returns its partition. New clients go to the least-loaded sub-problem —
// the stable-partition arrival rule.
func (t *tracker) upsert(id int, load float64) int {
	if p, ok := t.partOf[id]; ok {
		t.parts[p].load += load - t.loadOf[id]
		t.loadOf[id] = load
		return p
	}
	best := 0
	for p := 1; p < len(t.parts); p++ {
		cand, cur := t.parts[p], t.parts[best]
		if cand.load < cur.load || (cand.load == cur.load && len(cand.ids) < len(cur.ids)) {
			best = p
		}
	}
	t.parts[best].ids = append(t.parts[best].ids, id)
	t.parts[best].load += load
	t.partOf[id] = best
	t.loadOf[id] = load
	t.parts[best].dirty = true
	t.parts[best].markTouched(id)
	t.stats.Arrivals++
	return best
}

// remove drops client id; survivors keep their partitions and order.
func (t *tracker) remove(id int) bool {
	p, ok := t.partOf[id]
	if !ok {
		return false
	}
	part := t.parts[p]
	for i, m := range part.ids {
		if m == id {
			part.ids = append(part.ids[:i], part.ids[i+1:]...)
			break
		}
	}
	part.load -= t.loadOf[id]
	part.dirty = true
	delete(part.touched, id) // departed blocks drop from the model
	delete(t.partOf, id)
	delete(t.loadOf, id)
	t.stats.Departures++
	return true
}

// touch marks client id's sub-problem dirty (its data changed).
func (t *tracker) touch(id int) {
	if p, ok := t.partOf[id]; ok {
		part := t.parts[p]
		if _, seen := part.touched[id]; !seen {
			t.stats.Updates++
		}
		part.dirty = true
		part.markTouched(id)
	}
}

// markAllDirty forces every sub-problem to re-solve next round (resource
// capacity changes touch all sub-problems, which hold 1/k of each resource).
func (t *tracker) markAllDirty() {
	for _, part := range t.parts {
		part.dirty = true
	}
}

// rebalance moves at most one client from the most-loaded to the
// least-loaded sub-problem, choosing the member whose move most nearly
// levels the pair, and only when the move strictly narrows their spread.
// Repeated rounds therefore shrink the spread monotonically until it is
// below the lightest member of the heaviest sub-problem — the drift bound
// under churn. The moved client's old and new sub-problems both go dirty.
func (t *tracker) rebalance() {
	if !t.opts.Rebalance || len(t.parts) < 2 {
		return
	}
	hi, lo := 0, 0
	for p := 1; p < len(t.parts); p++ {
		if t.parts[p].load > t.parts[hi].load {
			hi = p
		}
		if t.parts[p].load < t.parts[lo].load {
			lo = p
		}
	}
	diff := t.parts[hi].load - t.parts[lo].load
	if hi == lo || diff <= 0 {
		return
	}
	best, bestScore := -1, math.Inf(1)
	for _, id := range t.parts[hi].ids {
		w := t.loadOf[id]
		// Any 0 < w < diff strictly improves the pair's spread; prefer the
		// move that levels it best.
		if w <= 0 || w >= diff {
			continue
		}
		if score := math.Abs(diff - 2*w); score < bestScore {
			best, bestScore = id, score
		}
	}
	if best < 0 {
		return
	}
	src, dst := t.parts[hi], t.parts[lo]
	for i, m := range src.ids {
		if m == best {
			src.ids = append(src.ids[:i], src.ids[i+1:]...)
			break
		}
	}
	dst.ids = append(dst.ids, best)
	w := t.loadOf[best]
	src.load -= w
	dst.load += w
	t.partOf[best] = lo
	src.dirty, dst.dirty = true, true
	t.stats.Rebalances++
}

// subReport is what an adapter's per-partition solve returns to the loop.
type subReport struct {
	warmAttempted bool
	warmStarted   bool
	iterations    int
	dualPivots    int
	buildNs       int64
	solveNs       int64
}

// solveDirty runs solve for every dirty partition (concurrently when
// configured) and books the results. Engines that enable rebalancing call
// tracker.rebalance themselves before this, so partition-local state (like
// lb's placement anchors) can be refreshed between the move and the solve.
// The keep-or-drop decision for each model's stale basis lives in lp.Model,
// whose hostile-refresh sampler prices the refreshed coefficients against
// the previous duals. Clean partitions are skipped entirely — their cached
// results stand.
func (t *tracker) solveDirty(solve func(p int, ids []int) (subReport, error)) error {
	t.stats.Rounds++
	var dirty []int
	for p, part := range t.parts {
		if part.dirty {
			dirty = append(dirty, p)
		}
	}
	t.stats.SkippedClean += len(t.parts) - len(dirty)
	if len(dirty) == 0 {
		return nil
	}
	reports := make([]subReport, len(dirty))
	err := core.ParallelMap(len(dirty), t.opts.Parallel, func(i int) error {
		p := dirty[i]
		rep, err := solve(p, t.parts[p].ids)
		if err != nil {
			return fmt.Errorf("online: sub-problem %d: %w", p, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return err
	}
	for i, p := range dirty {
		part := t.parts[p]
		part.dirty = false
		part.touched = nil
		t.stats.SubSolves++
		if reports[i].warmAttempted {
			t.stats.WarmAttempts++
			if reports[i].warmStarted {
				t.stats.WarmHits++
			}
		}
		t.stats.Iterations += reports[i].iterations
		t.stats.DualPivots += reports[i].dualPivots
		t.stats.BuildNs += reports[i].buildNs
		t.stats.SolveNs += reports[i].solveNs
	}
	return nil
}
