package online

import (
	"fmt"
	"math"

	"pop/internal/core"
	"pop/internal/lp"
)

// Options configure an incremental engine.
type Options struct {
	// K is the number of POP sub-problems; required ≥ 1.
	K int
	// Parallel re-solves dirty sub-problems concurrently (the map step).
	Parallel bool
	// NoWarmStart disables warm-started re-solves, making every dirty
	// sub-problem solve cold. Used for the cold baseline in benchmarks and
	// the equivalence tests; production engines leave it false.
	NoWarmStart bool
}

func (o Options) validate() error {
	if o.K < 1 {
		return fmt.Errorf("online: K must be ≥ 1, got %d", o.K)
	}
	return nil
}

// Stats counts the engine's work since creation.
type Stats struct {
	// Rounds is the number of Solve calls.
	Rounds int
	// SubSolves counts dirty sub-problems actually re-solved.
	SubSolves int
	// SkippedClean counts sub-problems a round left untouched.
	SkippedClean int
	// WarmAttempts counts sub-solves handed a warm basis; WarmHits counts
	// those where the solver accepted it (Solution.WarmStarted).
	WarmAttempts, WarmHits int
	// Iterations is the total simplex pivots across all sub-solves.
	Iterations int
	// Arrivals, Departures, and Updates count the applied deltas.
	Arrivals, Departures, Updates int
}

// BlockLayout describes how an adapter assembles its sub-problem LP from
// uniform per-client blocks plus shared trailing variables and rows. It is
// the contract that makes basis snapshots remappable across membership
// changes.
type BlockLayout struct {
	VarsPerClient int // leading variables: one block per client, member order
	RowsPerClient int // leading rows: one block per client, member order
	SharedVars    int // trailing variables (e.g. an epigraph t)
	SharedRows    int // trailing rows (e.g. per-resource capacities)
}

func (l BlockLayout) numVars(clients int) int { return clients*l.VarsPerClient + l.SharedVars }
func (l BlockLayout) numRows(clients int) int { return clients*l.RowsPerClient + l.SharedRows }

// RemapBasis transfers a basis snapshot taken under member list prev onto
// member list cur: surviving clients keep their block statuses, newcomers
// enter nonbasic at their lower bounds with their rows' slacks basic, and
// departed clients' blocks are dropped. Shared tails carry over unchanged.
// It returns nil (cold start) when the snapshot does not match the layout.
// The basic-variable count of the result rarely lands on exactly the row
// count; lp's warm-start repair settles that.
func RemapBasis(b *lp.Basis, lay BlockLayout, prev, cur []int) *lp.Basis {
	if b == nil {
		return nil
	}
	if len(b.VarStatus) != lay.numVars(len(prev)) || len(b.SlackStatus) != lay.numRows(len(prev)) {
		return nil
	}
	at := make(map[int]int, len(prev))
	for i, id := range prev {
		at[id] = i
	}
	out := &lp.Basis{
		VarStatus:   make([]lp.BasisStatus, lay.numVars(len(cur))),
		SlackStatus: make([]lp.BasisStatus, lay.numRows(len(cur))),
	}
	for ci, id := range cur {
		vDst := out.VarStatus[ci*lay.VarsPerClient : (ci+1)*lay.VarsPerClient]
		rDst := out.SlackStatus[ci*lay.RowsPerClient : (ci+1)*lay.RowsPerClient]
		if pi, ok := at[id]; ok {
			copy(vDst, b.VarStatus[pi*lay.VarsPerClient:(pi+1)*lay.VarsPerClient])
			copy(rDst, b.SlackStatus[pi*lay.RowsPerClient:(pi+1)*lay.RowsPerClient])
			continue
		}
		for v := range vDst {
			vDst[v] = lp.BasisLower
		}
		for r := range rDst {
			rDst[r] = lp.BasisBasic
		}
	}
	copy(out.VarStatus[len(cur)*lay.VarsPerClient:], b.VarStatus[len(prev)*lay.VarsPerClient:])
	copy(out.SlackStatus[len(cur)*lay.RowsPerClient:], b.SlackStatus[len(prev)*lay.RowsPerClient:])
	return out
}

// partition is the engine-internal state of one sub-problem.
type partition struct {
	ids   []int // members in stable (insertion) order
	load  float64
	dirty bool
	// touched collects the members whose data changed since the last solve;
	// it decides whether the stale basis still carries information.
	touched map[int]struct{}

	// basis is the snapshot of the last solve, taken under basisIDs.
	basis    *lp.Basis
	basisIDs []int
}

func (p *partition) markTouched(id int) {
	if p.touched == nil {
		p.touched = make(map[int]struct{})
	}
	p.touched[id] = struct{}{}
}

// tracker is the domain-independent heart of an engine: stable partitions,
// dirty marking, warm-basis bookkeeping, and the dirty-only solve loop.
type tracker struct {
	opts   Options
	parts  []*partition
	partOf map[int]int
	loadOf map[int]float64
	stats  Stats
	// warmTouchLimit is the largest fraction of members whose data may have
	// changed for the stale basis to still be offered as a warm start.
	// Adapters whose optimal bases survive wholesale coefficient refreshes
	// (lb: movement costs anchor the assignment) leave it at 1; adapters
	// whose optima reshuffle under refresh (cluster max-min: the binding
	// minimum moves) tighten it.
	warmTouchLimit float64
}

func newTracker(opts Options) (*tracker, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &tracker{
		opts:           opts,
		parts:          make([]*partition, opts.K),
		partOf:         make(map[int]int),
		loadOf:         make(map[int]float64),
		warmTouchLimit: 1,
	}
	for p := range t.parts {
		t.parts[p] = &partition{}
	}
	return t, nil
}

// upsert places (or keeps) client id with partitioning weight load and
// returns its partition. New clients go to the least-loaded sub-problem —
// the stable-partition arrival rule.
func (t *tracker) upsert(id int, load float64) int {
	if p, ok := t.partOf[id]; ok {
		t.parts[p].load += load - t.loadOf[id]
		t.loadOf[id] = load
		return p
	}
	best := 0
	for p := 1; p < len(t.parts); p++ {
		cand, cur := t.parts[p], t.parts[best]
		if cand.load < cur.load || (cand.load == cur.load && len(cand.ids) < len(cur.ids)) {
			best = p
		}
	}
	t.parts[best].ids = append(t.parts[best].ids, id)
	t.parts[best].load += load
	t.partOf[id] = best
	t.loadOf[id] = load
	t.parts[best].dirty = true
	t.parts[best].markTouched(id)
	t.stats.Arrivals++
	return best
}

// remove drops client id; survivors keep their partitions and order.
func (t *tracker) remove(id int) bool {
	p, ok := t.partOf[id]
	if !ok {
		return false
	}
	part := t.parts[p]
	for i, m := range part.ids {
		if m == id {
			part.ids = append(part.ids[:i], part.ids[i+1:]...)
			break
		}
	}
	part.load -= t.loadOf[id]
	part.dirty = true
	delete(part.touched, id) // departed blocks drop from the remapped basis
	delete(t.partOf, id)
	delete(t.loadOf, id)
	t.stats.Departures++
	return true
}

// touch marks client id's sub-problem dirty (its data changed).
func (t *tracker) touch(id int) {
	if p, ok := t.partOf[id]; ok {
		part := t.parts[p]
		if _, seen := part.touched[id]; !seen {
			t.stats.Updates++
		}
		part.dirty = true
		part.markTouched(id)
	}
}

// markAllDirty forces every sub-problem to re-solve next round (resource
// capacity changes touch all sub-problems, which hold 1/k of each resource).
func (t *tracker) markAllDirty() {
	for _, part := range t.parts {
		part.dirty = true
	}
}

// subReport is what an adapter's per-partition solve returns to the loop.
type subReport struct {
	basis       *lp.Basis
	warmStarted bool
	iterations  int
}

// solveDirty runs solve for every dirty partition (concurrently when
// configured), handing each its previous basis snapshot for warm-starting,
// and books the results. Clean partitions are skipped entirely — their
// cached results stand.
func (t *tracker) solveDirty(solve func(p int, ids []int, prevBasis *lp.Basis, prevIDs []int) (subReport, error)) error {
	t.stats.Rounds++
	var dirty []int
	for p, part := range t.parts {
		if part.dirty {
			dirty = append(dirty, p)
		}
	}
	t.stats.SkippedClean += len(t.parts) - len(dirty)
	if len(dirty) == 0 {
		return nil
	}
	reports := make([]subReport, len(dirty))
	warmGiven := make([]bool, len(dirty))
	err := core.ParallelMap(len(dirty), t.opts.Parallel, func(i int) error {
		p := dirty[i]
		part := t.parts[p]
		var warm *lp.Basis
		var prevIDs []int
		// A stale basis only carries information when most members survived
		// AND (per warmTouchLimit) enough members' data is unchanged; heavy
		// churn makes a cold phase 1 the better start.
		unchanged := len(part.ids) == 0 ||
			float64(len(part.touched)) <= t.warmTouchLimit*float64(len(part.ids))
		if !t.opts.NoWarmStart && part.basis != nil && unchanged &&
			overlap(part.basisIDs, part.ids) >= 0.5 {
			warm = part.basis
			prevIDs = part.basisIDs
			warmGiven[i] = true
		}
		rep, err := solve(p, part.ids, warm, prevIDs)
		if err != nil {
			return fmt.Errorf("online: sub-problem %d: %w", p, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return err
	}
	for i, p := range dirty {
		part := t.parts[p]
		part.dirty = false
		part.touched = nil
		part.basis = reports[i].basis
		part.basisIDs = append([]int(nil), part.ids...)
		t.stats.SubSolves++
		if warmGiven[i] {
			t.stats.WarmAttempts++
			if reports[i].warmStarted {
				t.stats.WarmHits++
			}
		}
		t.stats.Iterations += reports[i].iterations
	}
	return nil
}

// overlap is the fraction of the larger set shared by both id lists.
func overlap(a, b []int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	in := make(map[int]bool, len(a))
	for _, id := range a {
		in[id] = true
	}
	shared := 0
	for _, id := range b {
		if in[id] {
			shared++
		}
	}
	return float64(shared) / math.Max(float64(len(a)), float64(len(b)))
}
