package online

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/cluster"
	"pop/internal/lp"
)

// TestSpaceSharingEngineMatchesColdFullSolve is the acceptance-criterion
// test for the pair-block layout: across randomized delta sequences
// (arrivals, departures, weight changes), the warm incremental space-sharing
// engine must match a cold full solve (same partitions, no warm start) to
// 1e-6 on the objective, every round.
func TestSpaceSharingEngineMatchesColdFullSolve(t *testing.T) {
	sequences := 20
	rounds := 4
	if testing.Short() {
		sequences = 6
	}
	c := cluster.NewCluster(10, 10, 10)
	pool := cluster.GenerateJobs(64, 31, 0.2)
	totalWarmHits := 0
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(7000 + seq)))
		warm, err := NewClusterEngine(c, SpaceSharing, Options{K: 3}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewClusterEngine(c, SpaceSharing, Options{K: 3, NoWarmStart: true}, lp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		live := map[int]cluster.Job{}
		nextID := 0
		for b := 0; b < 18; b++ {
			j := pool[rng.Intn(len(pool))]
			j.ID = nextID
			nextID++
			live[j.ID] = j
			warm.Upsert(j)
			cold.Upsert(j)
		}
		for round := 0; round < rounds; round++ {
			driveRandomDeltas(rng, []*ClusterEngine{warm, cold}, pool, live, &nextID)
			if err := warm.Solve(); err != nil {
				t.Fatalf("seq %d round %d warm: %v", seq, round, err)
			}
			cold.MarkAllDirty()
			if err := cold.Solve(); err != nil {
				t.Fatalf("seq %d round %d cold: %v", seq, round, err)
			}
			if w, cobj := warm.Objective(), cold.Objective(); !approxEq(w, cobj, 1e-6) {
				t.Fatalf("seq %d round %d: warm objective %.12g != cold %.12g", seq, round, w, cobj)
			}
		}
		totalWarmHits += warm.Stats().WarmHits
	}
	if totalWarmHits == 0 {
		t.Fatal("space-sharing warm engine never actually warm-started; the pair-block splice path is dead")
	}
}

// TestSpaceSharingEngineMatchesBatchPolicy: with one sub-problem, the online
// engine solves the same LP as the batch cluster.MaxMinFairnessSpaceSharing
// (modulo slot ordering), so the optimal min normalized ratio must agree to
// 1e-6. This pins the online formulation to the paper's, not just warm to
// cold.
func TestSpaceSharingEngineMatchesBatchPolicy(t *testing.T) {
	c := cluster.NewCluster(6, 6, 6)
	jobs := cluster.GenerateJobs(14, 5, 0.2)
	e, err := NewClusterEngine(c, SpaceSharing, Options{K: 1}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	online, err := e.Step(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := cluster.MaxMinFairnessSpaceSharing(jobs, c, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	om, _ := cluster.MinMean(cluster.NormalizedRatios(jobs, c, online))
	bm, _ := cluster.MinMean(cluster.NormalizedRatios(jobs, c, batch))
	if !approxEq(om, bm, 1e-6) {
		t.Fatalf("online min ratio %.12g != batch %.12g", om, bm)
	}
	if online.LPVariables != batch.LPVariables {
		t.Fatalf("online solved %d variables, batch %d — slot enumeration differs", online.LPVariables, batch.LPVariables)
	}
}

// TestSpaceSharingEngineFeasibleAndPaired: the composed allocation respects
// time budgets and capacities, actually contains shared slots, and tracks a
// shrinking active set.
func TestSpaceSharingEngineFeasibleAndPaired(t *testing.T) {
	c := cluster.NewCluster(8, 8, 8)
	e, err := NewClusterEngine(c, SpaceSharing, Options{K: 2, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := cluster.GenerateJobs(20, 41, 0.25)
	alloc, err := e.Step(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.VerifyFeasible(jobs, c, alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, pr := range alloc.Pairs {
		if pr.J2 >= 0 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no shared slots in the space-sharing allocation")
	}
	if alloc.X != nil {
		t.Fatal("space-sharing allocation should use Pairs/PairX, not X")
	}

	// Shrink the active set; the composed allocation must track it, and
	// departed jobs' slots must vanish.
	alloc, err = e.Step(jobs[:9], c)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.EffThr) != 9 {
		t.Fatalf("allocation has %d rows, want 9", len(alloc.EffThr))
	}
	if err := cluster.VerifyFeasible(jobs[:9], c, alloc, 1e-6); err != nil {
		t.Fatal(err)
	}
	keep := map[int]bool{}
	for _, j := range jobs[:9] {
		keep[j.ID] = true
	}
	for _, pr := range alloc.Pairs {
		if !keep[pr.J1] || (pr.J2 >= 0 && !keep[pr.J2]) {
			t.Fatalf("stale slot %v survived the departures", pr)
		}
	}
}

// TestSpaceSharingScaleFlipRelayouts: a job whose Scale changes between 1
// and >1 gains/loses pair eligibility — the layout changes shape without any
// arrival or departure, exercising the mid-layout block splice.
func TestSpaceSharingScaleFlipRelayouts(t *testing.T) {
	c := cluster.NewCluster(6, 6, 6)
	warm, err := NewClusterEngine(c, SpaceSharing, Options{K: 1}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewClusterEngine(c, SpaceSharing, Options{K: 1, NoWarmStart: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := cluster.GenerateJobs(10, 13, 0)
	for _, j := range jobs {
		warm.Upsert(j)
		cold.Upsert(j)
	}
	step := func() {
		t.Helper()
		if err := warm.Solve(); err != nil {
			t.Fatal(err)
		}
		cold.MarkAllDirty()
		if err := cold.Solve(); err != nil {
			t.Fatal(err)
		}
		if w, cobj := warm.Objective(), cold.Objective(); !approxEq(w, cobj, 1e-6) {
			t.Fatalf("warm objective %.12g != cold %.12g", w, cobj)
		}
	}
	step()
	for flip := 0; flip < 3; flip++ {
		j := jobs[4]
		if math.Mod(float64(flip), 2) == 0 {
			j.Scale = 2 // leaves every pair containing it
		}
		warm.Upsert(j)
		cold.Upsert(j)
		step()
	}
}
