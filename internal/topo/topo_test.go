package topo

import (
	"testing"
)

func TestTable1SpecsGenerate(t *testing.T) {
	for _, spec := range Table1() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tp := Generate(spec.Name)
			if tp.G.N != spec.Nodes {
				t.Fatalf("nodes = %d, want %d", tp.G.N, spec.Nodes)
			}
			// Directed edge count must match Table 1 exactly when the link
			// budget is above the spanning-tree minimum.
			if len(tp.G.Edges) != spec.Edges {
				t.Fatalf("edges = %d, want %d", len(tp.G.Edges), spec.Edges)
			}
			if !tp.G.Connected() {
				t.Fatal("generated topology is disconnected")
			}
			if len(tp.Coords) != spec.Nodes {
				t.Fatalf("coords = %d, want %d", len(tp.Coords), spec.Nodes)
			}
		})
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate("Cogentco")
	b := Generate("Cogentco")
	if len(a.G.Edges) != len(b.G.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.G.Edges {
		if a.G.Edges[i] != b.G.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.G.Edges[i], b.G.Edges[i])
		}
	}
}

func TestGenerateScaled(t *testing.T) {
	tp := GenerateScaled("Kdl", 0.25)
	if tp.G.N >= 754 || tp.G.N < 8 {
		t.Fatalf("scaled nodes = %d", tp.G.N)
	}
	if !tp.G.Connected() {
		t.Fatal("scaled topology disconnected")
	}
}

func TestCapacitiesPositive(t *testing.T) {
	tp := Generate("Deltacom")
	for _, e := range tp.G.Edges {
		if e.Capacity <= 0 {
			t.Fatalf("edge %d has capacity %g", e.ID, e.Capacity)
		}
		if e.Weight <= 0 {
			t.Fatalf("edge %d has weight %g", e.ID, e.Weight)
		}
	}
	if tp.TotalCapacity() <= 0 {
		t.Fatal("zero total capacity")
	}
}

func TestBidirectionalLinks(t *testing.T) {
	tp := Generate("UsCarrier")
	// Every link must exist in both directions with equal capacity.
	type key struct{ a, b int }
	caps := map[key]float64{}
	for _, e := range tp.G.Edges {
		caps[key{e.From, e.To}] = e.Capacity
	}
	for _, e := range tp.G.Edges {
		rev, ok := caps[key{e.To, e.From}]
		if !ok {
			t.Fatalf("edge %d→%d has no reverse", e.From, e.To)
		}
		if rev != e.Capacity {
			t.Fatalf("asymmetric capacities on %d↔%d", e.From, e.To)
		}
	}
}

func TestTiny(t *testing.T) {
	tp := Tiny()
	if tp.G.N != 6 || len(tp.G.Edges) != 14 {
		t.Fatalf("tiny: %d nodes %d edges", tp.G.N, len(tp.G.Edges))
	}
	if !tp.G.Connected() {
		t.Fatal("tiny disconnected")
	}
}

func TestUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown topology")
		}
	}()
	Generate("NotATopology")
}
