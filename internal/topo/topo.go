// Package topo provides WAN topologies shaped like the Internet Topology
// Zoo graphs the POP paper evaluates on (Table 1).
//
// The Topology Zoo GraphML files are not redistributable inside this
// offline repository, so each named topology is synthesized deterministically
// with the exact node and directed-edge counts reported in Table 1 of the
// paper: nodes are placed in the unit square, a Euclidean minimum spanning
// tree guarantees connectivity, and the remaining links are drawn with a
// Waxman-style preference for short distances, which reproduces the
// geographic locality of real WANs. Link capacities are tiered and
// negatively correlated with distance (long-haul links in these networks
// are fewer and fatter, regional links many and thinner), and edge weights
// are Euclidean distances.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"pop/internal/graph"
)

// Spec names a topology and its Table-1 size. Edges counts directed edges
// (each physical link is one edge per direction), matching the paper.
type Spec struct {
	Name  string
	Nodes int
	Edges int
}

// Table1 lists the WAN topologies used to benchmark POP for traffic
// engineering, with the node/edge counts from Table 1 of the paper.
func Table1() []Spec {
	return []Spec{
		{"Kdl", 754, 1790},
		{"Cogentco", 197, 486},
		{"UsCarrier", 158, 378},
		{"Colt", 153, 354},
		{"GtsCe", 149, 386},
		{"TataNld", 145, 372},
		{"DialtelecomCz", 138, 302},
		{"Deltacom", 113, 322},
	}
}

// Topology is a generated WAN: a directed capacitated graph plus node
// coordinates (used by the NCFlow-style geographic clustering baseline).
type Topology struct {
	Name   string
	G      *graph.Graph
	Coords [][2]float64
}

// Generate synthesizes the named Table-1 topology. It panics on unknown
// names; use GenerateSized for custom sizes.
func Generate(name string) *Topology {
	for _, s := range Table1() {
		if s.Name == name {
			return GenerateSized(name, s.Nodes, s.Edges)
		}
	}
	panic(fmt.Sprintf("topo: unknown topology %q", name))
}

// GenerateScaled synthesizes a reduced version of the named topology with
// node and edge counts multiplied by factor (≤ 1). This keeps test and
// benchmark runtimes manageable while preserving the topology's density.
func GenerateScaled(name string, factor float64) *Topology {
	for _, s := range Table1() {
		if s.Name == name {
			n := int(math.Max(8, math.Round(float64(s.Nodes)*factor)))
			e := int(math.Round(float64(s.Edges) * factor))
			if e < 2*n {
				e = 2 * n // keep at least a bidirectional tree plus slack
			}
			return GenerateSized(name, n, e)
		}
	}
	panic(fmt.Sprintf("topo: unknown topology %q", name))
}

// GenerateSized synthesizes a connected topology with the given number of
// nodes and directed edges. The generation is deterministic in (name, nodes,
// edges).
func GenerateSized(name string, nodes, edges int) *Topology {
	if nodes < 2 {
		panic("topo: need at least 2 nodes")
	}
	links := edges / 2
	if links < nodes-1 {
		links = nodes - 1
	}
	rng := rand.New(rand.NewSource(seedFor(name, nodes, edges)))

	coords := make([][2]float64, nodes)
	for i := range coords {
		coords[i] = [2]float64{rng.Float64(), rng.Float64()}
	}

	g := graph.New(nodes)
	type link struct{ a, b int }
	have := map[link]bool{}
	addLink := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || have[link{a, b}] {
			return
		}
		have[link{a, b}] = true
		d := dist(coords[a], coords[b])
		g.AddBidirectional(a, b, capacityFor(d, rng), d+1e-3)
	}

	// Euclidean MST via Prim's algorithm: guarantees connectivity with
	// geographically plausible short links.
	inTree := make([]bool, nodes)
	best := make([]float64, nodes)
	bestFrom := make([]int, nodes)
	for i := range best {
		best[i] = math.Inf(1)
	}
	inTree[0] = true
	for i := 1; i < nodes; i++ {
		best[i] = dist(coords[0], coords[i])
		bestFrom[i] = 0
	}
	for t := 1; t < nodes; t++ {
		pick, pd := -1, math.Inf(1)
		for i := 0; i < nodes; i++ {
			if !inTree[i] && best[i] < pd {
				pick, pd = i, best[i]
			}
		}
		inTree[pick] = true
		addLink(pick, bestFrom[pick])
		for i := 0; i < nodes; i++ {
			if !inTree[i] {
				if d := dist(coords[pick], coords[i]); d < best[i] {
					best[i] = d
					bestFrom[i] = pick
				}
			}
		}
	}

	// Waxman-style extra links: sample pairs, accept short ones more often.
	const alpha = 0.12
	attempts := 0
	for len(have) < links && attempts < links*200 {
		attempts++
		a := rng.Intn(nodes)
		b := rng.Intn(nodes)
		if a == b {
			continue
		}
		d := dist(coords[a], coords[b])
		if rng.Float64() < math.Exp(-d/alpha) {
			addLink(a, b)
		}
	}
	// If the Waxman acceptance stalls (tiny alpha vs. spread-out nodes),
	// fall back to nearest unconnected pairs.
	for len(have) < links {
		a := rng.Intn(nodes)
		bestB, bd := -1, math.Inf(1)
		for b := 0; b < nodes; b++ {
			if b == a {
				continue
			}
			la, lb := a, b
			if la > lb {
				la, lb = lb, la
			}
			if have[link{la, lb}] {
				continue
			}
			if d := dist(coords[a], coords[b]); d < bd {
				bestB, bd = b, d
			}
		}
		if bestB < 0 {
			break // complete graph reached
		}
		addLink(a, bestB)
	}

	return &Topology{Name: name, G: g, Coords: coords}
}

func dist(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return math.Sqrt(dx*dx + dy*dy)
}

// capacityFor assigns a tiered link capacity. Short regional links get lower
// tiers, long-haul links higher tiers, with some randomness, mirroring the
// capacity heterogeneity of Topology Zoo annotations.
func capacityFor(d float64, rng *rand.Rand) float64 {
	tiers := []float64{10, 40, 100, 400}
	var base float64
	switch {
	case d < 0.05:
		base = tiers[rng.Intn(2)]
	case d < 0.15:
		base = tiers[rng.Intn(3)]
	default:
		base = tiers[1+rng.Intn(3)]
	}
	return base
}

// seedFor derives a stable seed from the generation parameters (FNV-1a).
func seedFor(name string, nodes, edges int) int64 {
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	for _, v := range []int{nodes, edges} {
		for s := 0; s < 64; s += 8 {
			mix(byte(v >> s))
		}
	}
	return int64(h & 0x7fffffffffffffff)
}

// TotalCapacity sums the capacity over all directed edges.
func (t *Topology) TotalCapacity() float64 {
	sum := 0.0
	for _, e := range t.G.Edges {
		sum += e.Capacity
	}
	return sum
}

// Tiny returns a small hand-built topology for unit tests: a 2x3 grid with
// uniform capacities. Deterministic and easy to reason about.
func Tiny() *Topology {
	//  0 - 1 - 2
	//  |   |   |
	//  3 - 4 - 5
	g := graph.New(6)
	pairs := [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {1, 4}, {2, 5}}
	for _, p := range pairs {
		g.AddBidirectional(p[0], p[1], 10, 1)
	}
	coords := [][2]float64{{0, 0}, {0.5, 0}, {1, 0}, {0, 1}, {0.5, 1}, {1, 1}}
	return &Topology{Name: "Tiny", G: g, Coords: coords}
}
