package milp

import (
	"math/rand"
	"testing"
	"time"

	"pop/internal/lp"
)

func TestTimeLimitStopsSearch(t *testing.T) {
	// A 40-item knapsack with correlated weights makes B&B work hard; a
	// microscopic time limit must force an early exit with a usable status.
	rng := rand.New(rand.NewSource(11))
	p := NewProblem(lp.Maximize)
	n := 40
	vars := make([]int, n)
	weights := make([]float64, n)
	for j := 0; j < n; j++ {
		w := 10 + rng.Float64()
		vars[j] = p.AddBinary(w+0.5*rng.Float64(), "")
		weights[j] = w
	}
	p.LP.AddConstraint(vars, weights, lp.LE, 205, "")
	start := time.Now()
	sol, err := p.SolveWithOptions(Options{TimeLimit: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("time limit ignored: ran %v", elapsed)
	}
	switch sol.Status {
	case Optimal, Feasible, Unknown:
	default:
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestIncumbentWarmStart(t *testing.T) {
	p := NewProblem(lp.Maximize)
	x := p.AddBinary(2, "x")
	y := p.AddBinary(3, "y")
	p.LP.AddConstraint([]int{x, y}, []float64{1, 1}, lp.LE, 1, "")
	// Warm start with the suboptimal-but-feasible x=1.
	sol, err := p.SolveWithOptions(Options{Incumbent: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 3 {
		t.Fatalf("got %v obj=%g, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestInvalidIncumbentIgnored(t *testing.T) {
	p := NewProblem(lp.Maximize)
	x := p.AddBinary(2, "x")
	y := p.AddBinary(3, "y")
	p.LP.AddConstraint([]int{x, y}, []float64{1, 1}, lp.LE, 1, "")
	// Infeasible (violates the constraint) and fractional warm starts must
	// both be rejected without corrupting the search.
	for _, inc := range [][]float64{{1, 1}, {0.5, 0}} {
		sol, err := p.SolveWithOptions(Options{Incumbent: inc})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal || sol.Objective != 3 {
			t.Fatalf("incumbent %v: got %v obj=%g", inc, sol.Status, sol.Objective)
		}
	}
}

func TestEmptyMILPErrors(t *testing.T) {
	p := NewProblem(lp.Minimize)
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for empty model")
	}
}
