package milp_test

// Property suite for the parallel branch and bound: any worker count must
// reach the same status and objective (to solver tolerance) with a feasible
// integral incumbent — node and pivot counts may differ, since workers race
// for nodes — and Workers=1 must be deterministic run to run. CI runs this
// file under -race; the coordinator mutex, the copy-on-write model clones,
// and the clone-on-install basis snapshots are exactly the machinery it
// stresses.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"pop/internal/lb"
	"pop/internal/lp"
	"pop/internal/milp"
)

// workerCounts is the sweep every equivalence check runs: sequential, the
// smallest genuinely concurrent count, and everything the machine has.
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// checkWorkersAgree solves prob at every worker count and enforces the
// cross-worker-count equivalence contract.
func checkWorkersAgree(t *testing.T, label string, prob *milp.Problem, opts milp.Options, intVars []int) []*milp.Solution {
	t.Helper()
	var sols []*milp.Solution
	for _, w := range workerCounts() {
		o := opts
		o.Workers = w
		sol, err := prob.SolveWithOptions(o)
		if err != nil {
			t.Fatalf("%s: workers=%d: %v", label, w, err)
		}
		sols = append(sols, sol)
	}
	base := sols[0]
	for i, sol := range sols[1:] {
		w := workerCounts()[i+1]
		if sol.Status != base.Status {
			t.Fatalf("%s: status workers=1 %v, workers=%d %v", label, base.Status, w, sol.Status)
		}
		if base.Status == milp.Optimal && !approxEqT(sol.Objective, base.Objective) {
			t.Fatalf("%s: objective workers=1 %.12g, workers=%d %.12g", label, base.Objective, w, sol.Objective)
		}
	}
	if base.Status == milp.Optimal || base.Status == milp.Feasible {
		for i, sol := range sols {
			if err := prob.LP.CheckFeasible(sol.X, 1e-6); err != nil {
				t.Fatalf("%s: workers=%d incumbent infeasible: %v", label, workerCounts()[i], err)
			}
			integral(t, label, intVars, sol.X)
		}
	}
	return sols
}

// TestParallelEquivalenceOnLBInstances drives randomized §4.3 instances —
// the MILP the parallel search exists for — through every worker count.
func TestParallelEquivalenceOnLBInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		shards := 6 + rng.Intn(8)
		servers := 2 + rng.Intn(3)
		inst := lb.NewInstance(shards, servers, 0.05+rng.Float64()*0.1, int64(500+trial))
		inst.ShiftLoads(int64(600 + trial))
		prob, _, mVar := lb.BuildMILP(inst)
		var ints []int
		for _, row := range mVar {
			ints = append(ints, row...)
		}
		checkWorkersAgree(t, "lb parallel", prob, milp.Options{MaxNodes: 20000}, ints)
	}
}

// TestParallelEquivalenceOnRandomBinaries fuzzes small random binary
// programs (any status can come out) across worker counts.
func TestParallelEquivalenceOnRandomBinaries(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		nv := 4 + rng.Intn(10)
		mc := 1 + rng.Intn(4)
		prob := milp.NewProblem(lp.Maximize)
		vars := make([]int, nv)
		for j := 0; j < nv; j++ {
			vars[j] = prob.AddBinary(math.Round(rng.NormFloat64()*10)/2, "")
		}
		for i := 0; i < mc; i++ {
			coef := make([]float64, nv)
			for j := range coef {
				coef[j] = math.Round(rng.Float64() * 4)
			}
			sense := lp.LE
			if rng.Intn(4) == 0 {
				sense = lp.GE
			}
			prob.LP.AddConstraint(vars, coef, sense, math.Round(rng.Float64()*float64(nv)), "")
		}
		checkWorkersAgree(t, "binary parallel", prob, milp.Options{}, vars)
	}
}

// TestWorkersOneDeterministic pins the sequential contract: two Workers=1
// runs with a fixed seed instance are identical down to node, pivot, and
// warm-start counts (the timing fields are the only nondeterminism left).
func TestWorkersOneDeterministic(t *testing.T) {
	inst := lb.NewInstance(11, 3, 0.06, 77)
	prob, _, _ := lb.BuildMILP(inst)
	opts := milp.Options{Workers: 1, MaxNodes: 20000}
	a, err := prob.SolveWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := prob.SolveWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status || a.Objective != b.Objective {
		t.Fatalf("outcome differs: %v %.12g vs %v %.12g", a.Status, a.Objective, b.Status, b.Objective)
	}
	sa, sb := a.SearchStats, b.SearchStats
	sa.BuildNs, sa.SolveNs, sb.BuildNs, sb.SolveNs = 0, 0, 0, 0
	if sa != sb {
		t.Fatalf("search stats differ between identical runs:\n  %+v\n  %+v", sa, sb)
	}
}

// TestRelGapFathomingPrunes is the fathoming regression test: the old prune
// compared node bounds only against incumbent+AbsGap, so a loose RelGap
// terminated the search but never pruned with it. With the combined cutoff
// a RelGap-limited run must explore strictly fewer nodes than the
// prove-to-AbsGap run and still land inside the requested gap.
func TestRelGapFathomingPrunes(t *testing.T) {
	inst := lb.NewInstance(13, 4, 0.04, 123)
	prob, _, _ := lb.BuildMILP(inst)

	tight, err := prob.SolveWithOptions(milp.Options{MaxNodes: 50000, RelGap: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Status != milp.Optimal {
		t.Skipf("instance not solved to optimality: %v", tight.Status)
	}
	loose, err := prob.SolveWithOptions(milp.Options{MaxNodes: 50000, RelGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Status != milp.Optimal {
		t.Fatalf("loose-gap run: %v", loose.Status)
	}
	if loose.Nodes >= tight.Nodes {
		t.Fatalf("RelGap=0.05 explored %d nodes, tight run %d — relative gap not fathoming", loose.Nodes, tight.Nodes)
	}
	// The incumbent must still be within the requested relative gap of the
	// true optimum (lb minimizes makespan).
	if loose.Objective > tight.Objective*(1+0.05)+1e-9 {
		t.Fatalf("loose incumbent %.9g outside RelGap of optimum %.9g", loose.Objective, tight.Objective)
	}
}

// TestHeuristicSolvesSpareNodeBudget is the node-accounting regression
// test: root rounding re-solves are booked as HeuristicSolves, so a
// MaxNodes budget of 1 still admits the root relaxation and exits with the
// heuristic incumbent instead of burning the budget before branching.
func TestHeuristicSolvesSpareNodeBudget(t *testing.T) {
	// A knapsack with a fractional root: floor-rounding an LE knapsack is
	// always feasible, so the heuristic is guaranteed to plant an incumbent
	// (lb's assignment EQ rows would reject rounding outright).
	prob := milp.NewProblem(lp.Maximize)
	a := prob.AddBinary(5, "a")
	b := prob.AddBinary(6, "b")
	c := prob.AddBinary(4, "c")
	prob.LP.AddConstraint([]int{a, b, c}, []float64{3, 5, 4}, lp.LE, 6, "cap")

	sol, err := prob.SolveWithOptions(milp.Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.HeuristicSolves == 0 {
		t.Fatal("root rounding booked no heuristic solves")
	}
	if sol.Nodes != 1 {
		t.Fatalf("MaxNodes=1 solved %d nodes; heuristics are leaking into the budget", sol.Nodes)
	}
	if sol.Status != milp.Feasible && sol.Status != milp.Optimal {
		t.Fatalf("status %v: rounding incumbent lost", sol.Status)
	}
	if err := prob.LP.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Fatalf("heuristic incumbent infeasible: %v", err)
	}
}

// TestParallelSearchWarmsNodes checks the steal path stays warm: at
// Workers=2 on an instance that branches, stolen nodes install their
// carried snapshots and the dual simplex engages.
func TestParallelSearchWarmsNodes(t *testing.T) {
	inst := lb.NewInstance(14, 4, 0.04, 321)
	prob, _, _ := lb.BuildMILP(inst)
	sol, err := prob.SolveWithOptions(milp.Options{Workers: 2, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Nodes > 3 && sol.WarmNodes == 0 {
		t.Fatalf("%d nodes solved across 2 workers, none warm", sol.Nodes)
	}
}
