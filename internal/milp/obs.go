package milp

import (
	"time"

	"pop/internal/obs"
)

// bookSearch records search-level metrics once per completed solve, so the
// per-node hot path never touches the registry.
func bookSearch(o *obs.Observer, sol *Solution, dur time.Duration) {
	o.Counter("pop_milp_searches_total", "completed branch-and-bound searches").Inc()
	o.Histogram("pop_milp_search_seconds", "branch-and-bound wall time").Observe(dur.Seconds())
	o.Counter("pop_milp_nodes_total", "solved node relaxations").Add(int64(sol.Nodes))
	o.Counter("pop_milp_warm_nodes_total", "node solves that accepted the parent basis").Add(int64(sol.WarmNodes))
	o.Counter("pop_milp_cold_fallbacks_total", "warm-eligible node solves that fell back cold").Add(int64(sol.ColdFallbacks))
	o.Counter("pop_milp_heuristic_solves_total", "primal-heuristic LP re-solves").Add(int64(sol.HeuristicSolves))
	o.Counter("pop_milp_lp_pivots_total", "simplex pivots across all node relaxations").Add(int64(sol.LPPivots))
	o.Counter("pop_milp_dual_pivots_total", "dual simplex pivots across all node relaxations").Add(int64(sol.DualPivots))
}
