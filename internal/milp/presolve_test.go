package milp_test

// Tests for the light presolve pass: integer bound rounding, fixed-variable
// substitution into right-hand sides, and empty/constant-row elimination.
// Presolve keeps variable indexing intact (fixed variables stay in the
// reduced problem with pinned bounds), so every check here is end-to-end
// through SolveWithOptions: reductions must never change the reported
// objective or solution vector.

import (
	"testing"

	"pop/internal/lp"
	"pop/internal/milp"
)

// TestPresolveFixedVariableSubstitution builds a knapsack with one binary
// pre-fixed to 1 by its bounds: the fixed variable's weight must be charged
// against the capacity and its value must appear in the objective.
func TestPresolveFixedVariableSubstitution(t *testing.T) {
	prob := milp.NewProblem(lp.Maximize)
	a := prob.AddBinary(5, "a")
	b := prob.AddBinary(4, "b")
	c := prob.AddBinary(3, "c")
	prob.LP.SetBounds(a, 1, 1) // pre-fixed: always packed
	// Capacity 5; a eats 3, leaving residual 2 — room for c (w=2), not b
	// (w=3). Dropping a's weight from the row instead of substituting it
	// into the rhs would admit b and report 9.
	prob.LP.AddConstraint([]int{a, b, c}, []float64{3, 3, 2}, lp.LE, 5, "cap")

	sol, err := prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !approxEqT(sol.Objective, 8) { // a=1, c=1 (5+3)
		t.Fatalf("objective %.9g, want 8", sol.Objective)
	}
	if sol.X[a] != 1 {
		t.Fatalf("fixed variable moved: x[a]=%g", sol.X[a])
	}
}

// TestPresolveEmptyAndConstantRows checks consistent empty rows and rows
// collapsed to constants by fixed variables are eliminated without changing
// the outcome, and inconsistent ones prove infeasibility before any LP is
// built.
func TestPresolveEmptyAndConstantRows(t *testing.T) {
	build := func(emptyRHS float64) *milp.Problem {
		prob := milp.NewProblem(lp.Maximize)
		a := prob.AddBinary(2, "a")
		b := prob.AddBinary(1, "b")
		prob.LP.SetBounds(a, 1, 1)
		prob.LP.AddConstraint(nil, nil, lp.LE, emptyRHS, "empty")
		prob.LP.AddConstraint([]int{a}, []float64{1}, lp.LE, 1, "const") // collapses once a is fixed
		prob.LP.AddConstraint([]int{a, b}, []float64{1, 1}, lp.LE, 2, "cap")
		return prob
	}

	sol, err := build(0).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.Optimal || !approxEqT(sol.Objective, 3) {
		t.Fatalf("consistent rows: status %v obj %.9g, want optimal 3", sol.Status, sol.Objective)
	}

	sol, err = build(-1).Solve() // empty row demands 0 ≤ -1
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.Infeasible {
		t.Fatalf("inconsistent empty row: status %v, want infeasible", sol.Status)
	}
}

// TestPresolveCrossedIntegerBounds checks an integer variable whose domain
// contains no integer is caught by bound rounding.
func TestPresolveCrossedIntegerBounds(t *testing.T) {
	prob := milp.NewProblem(lp.Maximize)
	v := prob.LP.AddVariable(1, 0.2, 0.8, "x")
	prob.SetInteger(v)

	sol, err := prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	if sol.Nodes != 0 {
		t.Fatalf("presolve infeasibility still solved %d nodes", sol.Nodes)
	}
}

// TestPresolveIntegerBoundRounding checks fractional bounds on integer
// variables are tightened to the enclosed integer range.
func TestPresolveIntegerBoundRounding(t *testing.T) {
	prob := milp.NewProblem(lp.Maximize)
	v := prob.LP.AddVariable(1, 0.3, 2.7, "x")
	prob.SetInteger(v)

	sol, err := prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.Optimal || !approxEqT(sol.Objective, 2) {
		t.Fatalf("status %v obj %.9g, want optimal 2", sol.Status, sol.Objective)
	}
}
