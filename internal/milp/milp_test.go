package milp

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/lp"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50.
	// Optimum: items 2,3 → 220.
	values := []float64{60, 100, 120}
	weights := []float64{10, 20, 30}
	p := NewProblem(lp.Maximize)
	var vars []int
	for i := range values {
		vars = append(vars, p.AddBinary(values[i], ""))
	}
	p.LP.AddConstraint(vars, weights, lp.LE, 50, "cap")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Objective, 220, 1e-6) {
		t.Fatalf("objective = %g, want 220", sol.Objective)
	}
	for _, v := range vars {
		r := math.Round(sol.X[v])
		if math.Abs(sol.X[v]-r) > 1e-6 {
			t.Fatalf("non-integral solution: %v", sol.X)
		}
	}
}

func TestIntegerMinimize(t *testing.T) {
	// min x + y s.t. 2x + y >= 5.5, x,y integer >= 0 → x=3,y=0 (3) or x=2,y=2 (4)
	// → check: 2x+y>=5.5 with x=3: 6>=5.5 ok, obj 3. x=2,y=2: 6>=5.5 obj 4.
	p := NewProblem(lp.Minimize)
	x := p.LP.AddVariable(1, 0, 10, "x")
	y := p.LP.AddVariable(1, 0, 10, "y")
	p.SetInteger(x)
	p.SetInteger(y)
	p.LP.AddConstraint([]int{x, y}, []float64{2, 1}, lp.GE, 5.5, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Objective, 3, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 3x + 2y, x binary, y continuous in [0, 1.5], x + y <= 2.
	// x=1, y=1 → 5.
	p := NewProblem(lp.Maximize)
	x := p.AddBinary(3, "x")
	y := p.LP.AddVariable(2, 0, 1.5, "y")
	p.LP.AddConstraint([]int{x, y}, []float64{1, 1}, lp.LE, 2, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Objective, 5, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := NewProblem(lp.Maximize)
	x := p.AddBinary(1, "x")
	y := p.AddBinary(1, "y")
	p.LP.AddConstraint([]int{x, y}, []float64{1, 1}, lp.GE, 3, "") // > 2 possible
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestIntegerInfeasibleButLPFeasible(t *testing.T) {
	// 2x = 1 with x in {0, 1}: LP relaxation feasible (x=0.5), MILP not.
	p := NewProblem(lp.Maximize)
	x := p.AddBinary(1, "x")
	p.LP.AddConstraint([]int{x}, []float64{2}, lp.EQ, 1, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestPureLPPassThrough(t *testing.T) {
	// No integer variables: B&B should terminate at the root.
	p := NewProblem(lp.Maximize)
	x := p.LP.AddVariable(1, 0, 4, "x")
	p.LP.AddConstraint([]int{x}, []float64{1}, lp.LE, 3, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Objective, 3, 1e-9) {
		t.Fatalf("got %v obj=%g", sol.Status, sol.Objective)
	}
	if sol.Nodes > 2 {
		t.Fatalf("expected root-only solve, used %d nodes", sol.Nodes)
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3x3 assignment: binary x_ij, each row/col exactly one. Costs chosen so
	// the optimum is the anti-diagonal (3+2+2=7... compute below).
	costs := [3][3]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	// Optimal assignment minimizing: enumerate: perms of {0,1,2}:
	// (0,1,2): 4+0+2=6; (0,2,1): 4+5+2=11; (1,0,2): 1+2+2=5;
	// (1,2,0): 1+5+3=9; (2,0,1): 3+2+2=7; (2,1,0): 3+0+3=6. → min 5.
	p := NewProblem(lp.Minimize)
	var vars [3][3]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			vars[i][j] = p.AddBinary(costs[i][j], "")
		}
	}
	for i := 0; i < 3; i++ {
		p.LP.AddConstraint([]int{vars[i][0], vars[i][1], vars[i][2]}, []float64{1, 1, 1}, lp.EQ, 1, "row")
		p.LP.AddConstraint([]int{vars[0][i], vars[1][i], vars[2][i]}, []float64{1, 1, 1}, lp.EQ, 1, "col")
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Objective, 5, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 5", sol.Status, sol.Objective)
	}
}

// TestAgainstBruteForce cross-checks B&B against exhaustive enumeration on
// random small binary programs.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		_ = trial
		nv := 3 + rng.Intn(6)
		mc := 1 + rng.Intn(3)
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = math.Round(rng.NormFloat64()*10) / 2
		}
		type cons struct {
			coef []float64
			rhs  float64
		}
		conss := make([]cons, mc)
		for i := range conss {
			coef := make([]float64, nv)
			for j := range coef {
				coef[j] = math.Round(rng.Float64() * 4)
			}
			conss[i] = cons{coef, math.Round(rng.Float64() * float64(nv) * 2)}
		}

		// Brute force.
		bestObj := math.Inf(-1)
		feasible := false
		for mask := 0; mask < 1<<nv; mask++ {
			ok := true
			for _, c := range conss {
				sum := 0.0
				for j := 0; j < nv; j++ {
					if mask&(1<<j) != 0 {
						sum += c.coef[j]
					}
				}
				if sum > c.rhs+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasible = true
			val := 0.0
			for j := 0; j < nv; j++ {
				if mask&(1<<j) != 0 {
					val += obj[j]
				}
			}
			if val > bestObj {
				bestObj = val
			}
		}

		// B&B.
		p := NewProblem(lp.Maximize)
		vars := make([]int, nv)
		for j := 0; j < nv; j++ {
			vars[j] = p.AddBinary(obj[j], "")
		}
		for _, c := range conss {
			p.LP.AddConstraint(vars, c.coef, lp.LE, c.rhs, "")
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if !approxEq(sol.Objective, bestObj, 1e-6) {
			t.Fatalf("trial %d: obj %g, brute force %g", trial, sol.Objective, bestObj)
		}
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewProblem(lp.Maximize)
	nv := 20
	vars := make([]int, nv)
	coef := make([]float64, nv)
	for j := 0; j < nv; j++ {
		vars[j] = p.AddBinary(rng.Float64()*10, "")
		coef[j] = 1 + rng.Float64()*3
	}
	p.LP.AddConstraint(vars, coef, lp.LE, 20, "")
	sol, err := p.SolveWithOptions(Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Feasible && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Status == Feasible && sol.Gap <= 0 {
		t.Fatalf("expected positive gap at early exit, got %g", sol.Gap)
	}
}

func TestBoundReporting(t *testing.T) {
	p := NewProblem(lp.Maximize)
	x := p.AddBinary(3, "x")
	y := p.AddBinary(2, "y")
	p.LP.AddConstraint([]int{x, y}, []float64{2, 2}, lp.LE, 3, "")
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Objective, 3, 1e-6) {
		t.Fatalf("got %v obj=%g", sol.Status, sol.Objective)
	}
	if !approxEq(sol.Bound, sol.Objective, 1e-6) {
		t.Fatalf("bound %g != objective %g at optimality", sol.Bound, sol.Objective)
	}
}
