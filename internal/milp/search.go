package milp

import (
	"container/heap"
	"math"
	"sync"
	"time"

	"pop/internal/lp"
	"pop/internal/obs"
)

// worker owns everything one branch-and-bound goroutine mutates freely: a
// clone of the persistent LP model (sharing the immutable constraint matrix
// with its siblings copy-on-write), the applied-delta bookkeeping that says
// which variables currently carry node bounds on that model, an optional
// plunge child handed to it by its own last branching, and a private stats
// block merged into the solution after the search ends. Workers touch
// shared search state only through the coordinator's mutex.
type worker struct {
	id      int
	model   *lp.Model
	applied map[int]bool
	// dive is the plunge child from this worker's last branching, explored
	// next so the model stays one bound change away from the solve before
	// it. Written and consumed under search.mu.
	dive  *node
	stats SearchStats
	// obs is the search observer shifted onto this worker's trace lane
	// (nil when the search runs without one); lpOpts is s.opts.LP with that
	// observer threaded in, so node relaxations trace on the worker's lane.
	obs    *obs.Observer
	lpOpts lp.Options
}

// initWorker derives the worker's trace lane and LP options from the
// search's observer; a no-op wiring of s.opts.LP when none is attached.
func (s *search) initWorker(w *worker) {
	w.lpOpts = s.opts.LP
	if o := s.opts.Obs; o != nil {
		w.obs = o.WithTID(o.TID + 1 + w.id)
		w.lpOpts.Obs = w.obs
	}
}

// search is the branch-and-bound coordinator: the mutex-protected open heap
// workers steal best-bound nodes from, the incumbent, the pseudo-cost
// table, and the termination latch. The invariant the termination protocol
// rests on: outstanding == len(open) + (non-nil dives) + (in-flight nodes),
// so outstanding == 0 means the tree is fully explored.
type search struct {
	prob     *Problem
	opts     Options
	maximize bool
	deadline time.Time

	baseLB, baseUB []float64 // presolved bounds snapshot
	intVars        []int     // integer variables in ascending order

	mu   sync.Mutex
	cond *sync.Cond
	// open holds unexplored nodes ordered by most promising bound; each
	// carries its parent's basis snapshot so any worker restarts it warm.
	open nodeHeap
	// outstanding counts live nodes (open + dives + in flight); nodesStarted
	// counts node relaxations begun, heuristic solves excluded, and is the
	// MaxNodes budget.
	outstanding  int
	nodesStarted int
	// inFlight[w] is the bound of the node worker w is currently solving
	// (-Inf when idle); it keeps bestBound honest while the heap is empty.
	inFlight     []float64
	incumbent    []float64
	incumbentObj float64 // in maximization orientation
	haveInc      bool
	pc           *pseudoCosts
	stopped      bool
	earlyExit    bool    // node/time limit hit: Feasible, not Optimal
	exitBound    float64 // bestBound at the moment the limit fired
	err          error

	workers   []*worker
	rootBasis *lp.Basis
}

// orient converts an LP objective (original orientation) into the internal
// maximization orientation.
func (s *search) orient(v float64) float64 {
	if s.maximize {
		return v
	}
	return -v
}

func (s *search) run() (*Solution, error) {
	p := s.prob
	s.maximize = p.LP.ObjectiveSense() == lp.Maximize
	s.cond = sync.NewCond(&s.mu)
	s.incumbentObj = math.Inf(-1)
	s.inFlight = make([]float64, s.opts.Workers)
	for i := range s.inFlight {
		s.inFlight[i] = math.Inf(-1)
	}
	// A sorted branching order makes tie-breaks deterministic (map iteration
	// would jitter node and pivot counts run to run at Workers=1).
	s.intVars = sortedKeys(p.integer)
	s.pc = newPseudoCosts(p.LP.NumVariables())

	pre := presolve(p)
	if pre.infeasible {
		return s.finish(Infeasible, 0), nil
	}
	s.snapshotBounds(pre.lp)

	w0 := &worker{id: 0, model: lp.NewModelFromProblem(pre.lp), applied: map[int]bool{}}
	s.initWorker(w0)
	s.workers = append(s.workers, w0)

	root := &node{lb: map[int]float64{}, ub: map[int]float64{}, bound: math.Inf(1), pcVar: -1}
	if !s.opts.ColdNodes && !pre.reducedRows {
		root.basis = s.opts.RootBasis
	}
	rootSol, err := w0.solveNode(s, root, false)
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return s.finish(Infeasible, 0), nil
	case lp.Unbounded:
		return s.finish(Unbounded, 0), nil
	case lp.Optimal:
	default:
		return s.finish(Unknown, 0), nil
	}
	s.rootBasis = rootSol.Basis
	s.nodesStarted = 1

	// Warm start from a caller-provided incumbent, then the root rounding
	// heuristic; both run before any branching so the first fathom checks
	// already have a cutoff.
	s.tryIncumbent()
	s.tryRounding(w0, rootSol)

	// Route the root through the same branch/accept path as every other
	// node: count it outstanding, then retire-and-expand it.
	s.outstanding = 1
	s.finishNode(w0, root, rootSol)

	// Fan out: workers 1..W-1 get cheap clones of worker 0's model (same
	// bounds, same applied set, shared matrix) and every worker runs the
	// steal-solve-branch loop until the coordinator latches a stop.
	for i := 1; i < s.opts.Workers; i++ {
		w := &worker{id: i, model: w0.model.Clone(), applied: copyBoolMap(w0.applied)}
		s.initWorker(w)
		s.workers = append(s.workers, w)
	}
	var wg sync.WaitGroup
	for _, w := range s.workers {
		wg.Add(1)
		go s.runWorker(w, &wg)
	}
	wg.Wait()
	if s.err != nil {
		return nil, s.err
	}

	switch {
	case s.earlyExit:
		return s.finish(Feasible, s.exitBound), nil
	case !s.haveInc:
		return s.finish(Infeasible, 0), nil
	default:
		return s.finish(Optimal, s.incumbentObj), nil
	}
}

func (s *search) runWorker(w *worker, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		n := s.next(w)
		if n == nil {
			return
		}
		sol, err := w.solveNode(s, n, false)
		if err != nil {
			s.fail(err)
			return
		}
		s.finishNode(w, n, sol)
	}
}

// next hands worker w its next node: the worker's own plunge child when one
// is pending (its parent solved last on this worker's model, so bounds and
// basis are one branching step away), otherwise the globally best-bound
// open node, whose carried snapshot makes the steal warm. It blocks while
// the heap is empty but other workers may still branch, and returns nil
// when the search is over.
func (s *search) next(w *worker) *node {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.err != nil {
			return nil
		}
		if s.haveInc && s.gapClosedLocked() {
			s.stopLocked(false)
			return nil
		}
		if s.nodesStarted >= s.opts.MaxNodes || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
			s.stopLocked(true)
			return nil
		}
		var n *node
		switch {
		case w.dive != nil:
			n = w.dive
			w.dive = nil
		case len(s.open) > 0:
			n = heap.Pop(&s.open).(*node)
			w.obs.Instant("milp.steal", nil)
		default:
			if s.outstanding == 0 {
				s.stopLocked(false)
				return nil
			}
			s.cond.Wait()
			continue
		}
		if s.haveInc && n.bound <= s.cutoffLocked() {
			w.obs.Instant("milp.fathom", nil)
			s.retireLocked()
			continue // fathomed by bound
		}
		s.nodesStarted++
		s.inFlight[w.id] = n.bound
		return n
	}
}

// finishNode retires a solved node under the coordinator lock: it feeds the
// pseudo-cost table, accepts an integer-feasible relaxation as incumbent,
// fathoms against the combined absolute+relative cutoff, or branches.
func (s *search) finishNode(w *worker, n *node, sol *lp.Solution) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.cond.Broadcast()
	s.inFlight[w.id] = math.Inf(-1)
	s.outstanding--
	if sol.Status != lp.Optimal {
		return // infeasible subtree (unbounded cannot appear below the root)
	}
	obj := s.orient(sol.Objective)
	if n.pcVar >= 0 && !math.IsInf(n.bound, 1) {
		// The node was created by moving pcVar a fractional distance pcDist;
		// the objective degradation versus its parent is the observation.
		s.pc.observe(n.pcVar, n.pcUp, n.pcDist, math.Max(0, n.bound-obj))
	}
	n.bound = obj
	v, f := s.pc.selectBranch(s.intVars, sol.X, s.opts.IntTol)
	if v < 0 {
		// Integer feasible.
		if obj > s.incumbentObj {
			s.incumbentObj = obj
			s.incumbent = append([]float64(nil), sol.X...)
			s.haveInc = true
			w.obs.Instant("milp.incumbent", map[string]any{"obj": sol.Objective})
		}
		return
	}
	if s.stopped {
		return // a limit fired while this node was in flight
	}
	if s.haveInc && obj <= s.cutoffLocked() {
		w.obs.Instant("milp.fathom", nil)
		return // fathomed by bound
	}
	s.branchLocked(w, n, sol, v, f)
}

// branchLocked splits node n on variable v (fractional part f of sol.X[v]).
// Both children carry the relaxation's basis snapshot — safe to share now
// that SetBasis clones on install. The child the fractional value leans
// toward becomes this worker's plunge target; the other joins the open heap
// for any worker to steal.
func (s *search) branchLocked(w *worker, n *node, sol *lp.Solution, v int, f float64) {
	floor := math.Floor(sol.X[v])
	down := &node{lb: copyMap(n.lb), ub: copyMap(n.ub), bound: n.bound, depth: n.depth + 1,
		basis: sol.Basis, pcVar: v, pcDist: f, pcUp: false}
	tightenUB(down, v, floor)
	up := &node{lb: copyMap(n.lb), ub: copyMap(n.ub), bound: n.bound, depth: n.depth + 1,
		basis: sol.Basis, pcVar: v, pcDist: 1 - f, pcUp: true}
	tightenLB(up, v, floor+1)

	dive, rest := down, up
	if f >= 0.5 {
		dive, rest = up, down
	}
	w.dive = dive
	heap.Push(&s.open, rest)
	s.outstanding += 2
}

// cutoffLocked is the fathoming threshold: a node whose bound cannot beat
// the incumbent by more than the combined absolute/relative gap tolerance
// is pruned — the same predicate gapClosedLocked uses, so fathoming and
// termination agree (the sequential search compared against AbsGap alone
// and pointlessly solved nodes inside the relative gap).
func (s *search) cutoffLocked() float64 {
	return s.incumbentObj + math.Max(s.opts.AbsGap, s.opts.RelGap*math.Max(1, math.Abs(s.incumbentObj)))
}

// bestBoundLocked is the most optimistic bound over all unexplored and
// in-flight nodes.
func (s *search) bestBoundLocked() float64 {
	bound := math.Inf(-1)
	if len(s.open) > 0 {
		bound = s.open[0].bound
	}
	for _, w := range s.workers {
		if w.dive != nil && w.dive.bound > bound {
			bound = w.dive.bound
		}
	}
	for _, b := range s.inFlight {
		if b > bound {
			bound = b
		}
	}
	if math.IsInf(bound, -1) {
		bound = s.incumbentObj
	}
	return bound
}

func (s *search) gapClosedLocked() bool {
	if s.outstanding == 0 {
		return true
	}
	gap := s.bestBoundLocked() - s.incumbentObj
	return gap <= s.opts.AbsGap || gap <= s.opts.RelGap*math.Max(1, math.Abs(s.incumbentObj))
}

// retireLocked drops a node without solving it (fathomed at pop). The
// broadcast when the count hits zero releases workers blocked in next.
func (s *search) retireLocked() {
	s.outstanding--
	if s.outstanding == 0 {
		s.cond.Broadcast()
	}
}

// stopLocked latches termination; the first stopper decides the flavor
// (early = node/time limit → Feasible; otherwise the tree is explored or
// the gap closed → Optimal/Infeasible).
func (s *search) stopLocked(early bool) {
	if s.stopped {
		return
	}
	s.stopped = true
	if early {
		s.earlyExit = true
		s.exitBound = s.bestBoundLocked()
	}
	s.cond.Broadcast()
}

func (s *search) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
	s.stopped = true
	s.cond.Broadcast()
}

// solveNode solves the LP relaxation under the node's extra bounds on this
// worker's model: the node's bound deltas are applied in place, the node's
// carried basis snapshot is installed (bound-only deltas keep it dual
// feasible, so the dual simplex settles it in a few pivots; an ineligible
// snapshot falls back primal-warm→cold inside lp), and the solve is booked
// into the worker's private stats — as a node, or as a heuristic solve that
// does not consume the MaxNodes budget.
func (w *worker) solveNode(s *search, n *node, heuristic bool) (*lp.Solution, error) {
	if w.obs == nil {
		return w.solveNodeInner(s, n, heuristic)
	}
	sp := w.obs.Span("milp.node").Arg("depth", n.depth).Arg("heuristic", heuristic)
	sol, err := w.solveNodeInner(s, n, heuristic)
	if sol != nil {
		sp.Arg("status", sol.Status.String())
	}
	sp.End()
	return sol, err
}

func (w *worker) solveNodeInner(s *search, n *node, heuristic bool) (*lp.Solution, error) {
	t0 := time.Now()
	w.applyBounds(s, n)
	warm := false
	if s.opts.ColdNodes || n.basis == nil {
		w.model.ForgetBasis()
	} else {
		w.model.SetBasis(n.basis)
		warm = true
	}
	w.stats.BuildNs += time.Since(t0).Nanoseconds()
	if heuristic {
		w.stats.HeuristicSolves++
	} else {
		w.stats.Nodes++
	}

	t0 = time.Now()
	sol, err := w.model.SolveWithOptions(w.lpOpts)
	w.stats.SolveNs += time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	w.stats.LPPivots += sol.Iterations
	w.stats.DualPivots += sol.DualPivots
	if warm {
		if sol.WarmStarted {
			w.stats.WarmNodes++
		} else {
			w.stats.ColdFallbacks++
		}
	}
	return sol, nil
}

// applyBounds switches this worker's model from its previous node's bounds
// to n's: variables the previous node tightened but n does not return to
// their base bounds, and n's tightenings are applied (SetBounds no-ops on
// unchanged values, so a parent→child plunge costs one real edit).
func (w *worker) applyBounds(s *search, n *node) {
	for v := range w.applied {
		_, inLB := n.lb[v]
		_, inUB := n.ub[v]
		if inLB || inUB {
			continue
		}
		w.model.SetBounds(v, s.baseLB[v], s.baseUB[v])
		delete(w.applied, v)
	}
	// Branching tightens lb upward and ub downward around fractional LP
	// values inside the current domain, so lb ≤ ub always holds; the clamps
	// below are purely defensive.
	for v, lb := range n.lb {
		ub := s.baseUB[v]
		if u, ok := n.ub[v]; ok && u < ub {
			ub = u
		}
		if lb > ub {
			lb = ub
		}
		w.model.SetBounds(v, lb, ub)
		w.applied[v] = true
	}
	for v, ub := range n.ub {
		if _, done := n.lb[v]; done {
			continue
		}
		lb := s.baseLB[v]
		if ub < lb {
			ub = lb
		}
		w.model.SetBounds(v, lb, ub)
		w.applied[v] = true
	}
}

func (s *search) snapshotBounds(p *lp.Problem) {
	nv := p.NumVariables()
	s.baseLB = make([]float64, nv)
	s.baseUB = make([]float64, nv)
	for v := 0; v < nv; v++ {
		lb, ub := p.Bounds(v)
		s.baseLB[v] = lb
		s.baseUB[v] = ub
	}
}

// tryIncumbent validates and installs the caller-provided warm start. It
// judges feasibility against the original problem, whose bounds neither
// presolve nor the per-worker node deltas ever touch.
func (s *search) tryIncumbent() {
	x := s.opts.Incumbent
	if x == nil {
		return
	}
	if err := s.prob.LP.CheckFeasible(x, 1e-6); err != nil {
		return
	}
	for _, v := range s.intVars {
		if math.Abs(x[v]-math.Round(x[v])) > s.opts.IntTol {
			return
		}
	}
	obj := s.orient(s.prob.LP.Value(x))
	if obj > s.incumbentObj {
		s.incumbentObj = obj
		s.incumbent = append([]float64(nil), x...)
		s.haveInc = true
	}
}

// tryRounding rounds the root relaxation and accepts it if feasible: all
// integer vars are fixed at rounded values and the continuous LP re-solved
// through worker 0's model, warm from the root basis. The re-solves are
// booked as HeuristicSolves, not Nodes, so they never consume the MaxNodes
// budget.
func (s *search) tryRounding(w *worker, rootSol *lp.Solution) {
	if len(s.prob.integer) == 0 {
		return
	}
	for _, round := range []func(float64) float64{math.Round, math.Floor} {
		fixed := &node{lb: map[int]float64{}, ub: map[int]float64{}, basis: rootSol.Basis, pcVar: -1}
		for _, v := range s.intVars {
			r := round(rootSol.X[v])
			if r < s.baseLB[v] {
				r = math.Ceil(s.baseLB[v])
			}
			if r > s.baseUB[v] {
				r = math.Floor(s.baseUB[v])
			}
			fixed.lb[v] = r
			fixed.ub[v] = r
		}
		sol, err := w.solveNode(s, fixed, true)
		if err != nil || sol.Status != lp.Optimal {
			continue
		}
		obj := s.orient(sol.Objective)
		if obj > s.incumbentObj {
			s.incumbentObj = obj
			s.incumbent = append([]float64(nil), sol.X...)
			s.haveInc = true
		}
		return
	}
}

func (s *search) finish(st Status, bound float64) *Solution {
	var stats SearchStats
	for _, w := range s.workers {
		stats.Add(w.stats)
	}
	sol := &Solution{Status: st, RootBasis: s.rootBasis, SearchStats: stats}
	if st == Infeasible || st == Unbounded {
		return sol
	}
	if !s.haveInc {
		sol.Status = Unknown
		return sol
	}
	obj := s.incumbentObj
	gap := math.Abs(bound-obj) / math.Max(1, math.Abs(obj))
	if st == Optimal {
		gap = 0
		bound = obj
	}
	objOut, boundOut := obj, bound
	if !s.maximize {
		objOut, boundOut = -obj, -bound
	}
	sol.Objective = objOut
	sol.X = s.incumbent
	sol.Bound = boundOut
	sol.Gap = gap
	return sol
}

func copyBoolMap(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
