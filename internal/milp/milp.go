// Package milp implements a mixed-integer linear-programming solver by
// branch and bound over the LP relaxations provided by package lp.
//
// The search uses best-bound node selection with depth-first plunging (the
// most recently created child is explored first until it is fathomed, then
// the globally best-bound node is taken), most-fractional branching, and a
// root rounding heuristic to obtain an early incumbent. Termination criteria
// are absolute/relative gap, node limit, and wall-clock limit.
//
// This is what the load-balancing case study (§4.3 of the POP paper) uses:
// its formulation is a small MILP whose exponential solve time motivates POP
// in the first place.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"pop/internal/lp"
)

// Problem is a mixed-integer linear program: an lp.Problem plus a set of
// integer-constrained variables.
type Problem struct {
	LP *lp.Problem

	integer map[int]bool
}

// NewProblem wraps an LP under construction. Mark variables integral with
// SetInteger after adding them to the underlying LP.
func NewProblem(objective lp.Objective) *Problem {
	return &Problem{LP: lp.NewProblem(objective), integer: map[int]bool{}}
}

// Wrap turns an existing LP (e.g. one parsed from MPS) into a MILP.
func Wrap(p *lp.Problem, intVars []int) *Problem {
	mp := &Problem{LP: p, integer: map[int]bool{}}
	for _, v := range intVars {
		mp.SetInteger(v)
	}
	return mp
}

// SetInteger constrains variable v to take integer values.
func (p *Problem) SetInteger(v int) {
	if p.integer == nil {
		p.integer = map[int]bool{}
	}
	p.integer[v] = true
}

// AddBinary adds a {0,1} variable with objective coefficient c.
func (p *Problem) AddBinary(c float64, name string) int {
	v := p.LP.AddVariable(c, 0, 1, name)
	p.SetInteger(v)
	return v
}

// NumInteger reports how many variables are integer-constrained.
func (p *Problem) NumInteger() int { return len(p.integer) }

// Options tune the branch-and-bound search.
type Options struct {
	// MaxNodes bounds explored nodes; 0 means 200000.
	MaxNodes int
	// TimeLimit bounds wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// RelGap stops when (bound-incumbent)/max(1,|incumbent|) falls below it;
	// 0 means 1e-6.
	RelGap float64
	// AbsGap stops when bound-incumbent falls below it; 0 means 1e-9.
	AbsGap float64
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// Incumbent optionally warm-starts the search with a known feasible
	// point (e.g. from a domain heuristic); it is validated before use and
	// lets the search prune aggressively from the first node.
	Incumbent []float64
	// LP propagates options to the relaxation solver.
	LP lp.Options
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap == 0 {
		o.RelGap = 1e-6
	}
	if o.AbsGap == 0 {
		o.AbsGap = 1e-9
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Status reports the outcome of a MILP solve.
type Status int8

const (
	// Optimal means the incumbent is proven optimal within the gap.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation (and hence the MILP) is unbounded.
	Unbounded
	// Feasible means the search stopped early (node/time limit) with an
	// incumbent but no optimality proof.
	Feasible
	// Unknown means the search stopped early with no incumbent.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Feasible:
		return "feasible"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Bound is the best proven bound on the optimum (≥ incumbent for
	// maximization, ≤ for minimization at early exit).
	Bound float64
	// Gap is |Bound-Objective| / max(1, |Objective|) at exit.
	Gap   float64
	Nodes int
}

type node struct {
	// Extra bounds imposed by branching, keyed by variable.
	lb, ub map[int]float64
	bound  float64 // parent LP objective (optimistic)
	depth  int
}

// nodeHeap orders nodes by most promising bound (max-heap on bound for
// maximization problems; the solver normalizes to maximization internally).
type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound > h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type solver struct {
	prob     *Problem
	opts     Options
	maximize bool
	deadline time.Time

	baseLB, baseUB []float64 // original bounds snapshot

	incumbent    []float64
	incumbentObj float64 // in maximization orientation
	haveInc      bool

	nodes int
}

// Solve runs branch and bound with default options.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithOptions(Options{})
}

// SolveWithOptions runs branch and bound.
func (p *Problem) SolveWithOptions(opts Options) (*Solution, error) {
	if p.LP.NumVariables() == 0 {
		return nil, fmt.Errorf("milp: model has no variables")
	}
	s := &solver{prob: p, opts: opts.withDefaults()}
	if s.opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(s.opts.TimeLimit)
	}
	return s.run()
}

// orient converts an LP objective (original orientation) into the internal
// maximization orientation.
func (s *solver) orient(v float64) float64 {
	if s.maximize {
		return v
	}
	return -v
}

func (s *solver) run() (*Solution, error) {
	p := s.prob
	s.maximize = p.LP.ObjectiveSense() == lp.Maximize
	s.snapshotBounds()
	defer s.restoreBounds()
	s.incumbentObj = math.Inf(-1)

	root := &node{lb: map[int]float64{}, ub: map[int]float64{}, bound: math.Inf(1)}
	rootSol, err := s.solveRelaxation(root)
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return &Solution{Status: Infeasible}, nil
	case lp.Unbounded:
		return &Solution{Status: Unbounded}, nil
	case lp.Optimal:
	default:
		return &Solution{Status: Unknown}, nil
	}

	// Warm start from a caller-provided incumbent, if valid.
	s.tryIncumbent()

	// Root rounding heuristic: round the relaxation to the nearest integer
	// point and re-solve the continuous rest with integers fixed.
	s.tryRounding(root, rootSol)

	open := &nodeHeap{}
	heap.Init(open)
	root.bound = s.orient(rootSol.Objective)
	s.expandOrAccept(open, root, rootSol)

	for open.Len() > 0 {
		if s.stopEarly() {
			return s.finish(Feasible, (*open)[0].bound), nil
		}
		n := heap.Pop(open).(*node)
		if s.haveInc && n.bound <= s.incumbentObj+s.opts.AbsGap {
			continue // fathomed by bound
		}
		sol, err := s.solveRelaxation(n)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			continue // infeasible subtree (unbounded cannot appear below root)
		}
		n.bound = s.orient(sol.Objective)
		if s.haveInc && n.bound <= s.incumbentObj+s.opts.AbsGap {
			continue
		}
		s.expandOrAccept(open, n, sol)

		if s.haveInc && s.gapClosed(open) {
			break
		}
	}

	bound := s.incumbentObj
	if open.Len() > 0 {
		bound = (*open)[0].bound
	}
	if !s.haveInc {
		return &Solution{Status: Infeasible, Nodes: s.nodes}, nil
	}
	return s.finish(Optimal, bound), nil
}

func (s *solver) gapClosed(open *nodeHeap) bool {
	if open.Len() == 0 {
		return true
	}
	best := (*open)[0].bound
	gap := best - s.incumbentObj
	return gap <= s.opts.AbsGap || gap <= s.opts.RelGap*math.Max(1, math.Abs(s.incumbentObj))
}

func (s *solver) stopEarly() bool {
	if s.nodes >= s.opts.MaxNodes {
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	return false
}

// expandOrAccept either records an integer-feasible relaxation as the new
// incumbent or branches on the most fractional variable.
func (s *solver) expandOrAccept(open *nodeHeap, n *node, sol *lp.Solution) {
	frac, v := s.mostFractional(sol.X)
	if v < 0 {
		// Integer feasible.
		obj := s.orient(sol.Objective)
		if obj > s.incumbentObj {
			s.incumbentObj = obj
			s.incumbent = append([]float64(nil), sol.X...)
			s.haveInc = true
		}
		return
	}
	_ = frac
	x := sol.X[v]
	floor := math.Floor(x)

	down := &node{lb: copyMap(n.lb), ub: copyMap(n.ub), bound: n.bound, depth: n.depth + 1}
	tightenUB(down, v, floor)
	up := &node{lb: copyMap(n.lb), ub: copyMap(n.ub), bound: n.bound, depth: n.depth + 1}
	tightenLB(up, v, floor+1)

	// Push the child whose side the fractional value leans toward last so
	// plunging (best-bound ties broken by heap order) tends to follow it.
	heap.Push(open, down)
	heap.Push(open, up)
}

func tightenUB(n *node, v int, val float64) {
	if cur, ok := n.ub[v]; !ok || val < cur {
		n.ub[v] = val
	}
}

func tightenLB(n *node, v int, val float64) {
	if cur, ok := n.lb[v]; !ok || val > cur {
		n.lb[v] = val
	}
}

func copyMap(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mostFractional returns (fractionality, variable) of the integer variable
// farthest from integrality, or (0, -1) if all are integral.
func (s *solver) mostFractional(x []float64) (float64, int) {
	best, bestV := s.opts.IntTol, -1
	for v := range s.prob.integer {
		f := math.Abs(x[v] - math.Round(x[v]))
		if f > best {
			best = f
			bestV = v
		}
	}
	return best, bestV
}

// solveRelaxation solves the LP relaxation under the node's extra bounds.
func (s *solver) solveRelaxation(n *node) (*lp.Solution, error) {
	s.applyBounds(n)
	defer s.restoreBounds()
	s.nodes++
	return s.prob.LP.SolveWithOptions(s.opts.LP)
}

func (s *solver) snapshotBounds() {
	nv := s.prob.LP.NumVariables()
	s.baseLB = make([]float64, nv)
	s.baseUB = make([]float64, nv)
	for v := 0; v < nv; v++ {
		lb, ub := s.prob.LP.Bounds(v)
		s.baseLB[v] = lb
		s.baseUB[v] = ub
	}
}

func (s *solver) applyBounds(n *node) {
	// Branching tightens lb upward and ub downward around fractional LP
	// values inside the current domain, so lb ≤ ub always holds; the clamps
	// below are purely defensive.
	for v, lb := range n.lb {
		ub := s.baseUB[v]
		if u, ok := n.ub[v]; ok && u < ub {
			ub = u
		}
		if lb > ub {
			lb = ub
		}
		s.prob.LP.SetBounds(v, lb, ub)
	}
	for v, ub := range n.ub {
		if _, done := n.lb[v]; done {
			continue
		}
		lb := s.baseLB[v]
		if ub < lb {
			ub = lb
		}
		s.prob.LP.SetBounds(v, lb, ub)
	}
}

func (s *solver) restoreBounds() {
	for v := range s.baseLB {
		s.prob.LP.SetBounds(v, s.baseLB[v], s.baseUB[v])
	}
}

// tryIncumbent validates and installs the caller-provided warm start.
func (s *solver) tryIncumbent() {
	x := s.opts.Incumbent
	if x == nil {
		return
	}
	if err := s.prob.LP.CheckFeasible(x, 1e-6); err != nil {
		return
	}
	for v := range s.prob.integer {
		if math.Abs(x[v]-math.Round(x[v])) > s.opts.IntTol {
			return
		}
	}
	obj := s.orient(s.prob.LP.Value(x))
	if obj > s.incumbentObj {
		s.incumbentObj = obj
		s.incumbent = append([]float64(nil), x...)
		s.haveInc = true
	}
}

// tryRounding rounds the root relaxation and accepts it if feasible: all
// integer vars are fixed at rounded values and the continuous LP re-solved.
func (s *solver) tryRounding(root *node, rootSol *lp.Solution) {
	if len(s.prob.integer) == 0 {
		return
	}
	for _, round := range []func(float64) float64{math.Round, math.Floor} {
		fixed := &node{lb: map[int]float64{}, ub: map[int]float64{}}
		for v := range s.prob.integer {
			r := round(rootSol.X[v])
			if r < s.baseLB[v] {
				r = math.Ceil(s.baseLB[v])
			}
			if r > s.baseUB[v] {
				r = math.Floor(s.baseUB[v])
			}
			fixed.lb[v] = r
			fixed.ub[v] = r
		}
		sol, err := s.solveRelaxation(fixed)
		if err != nil || sol.Status != lp.Optimal {
			continue
		}
		obj := s.orient(sol.Objective)
		if obj > s.incumbentObj {
			s.incumbentObj = obj
			s.incumbent = append([]float64(nil), sol.X...)
			s.haveInc = true
		}
		return
	}
}

func (s *solver) finish(st Status, bound float64) *Solution {
	if !s.haveInc {
		return &Solution{Status: Unknown, Nodes: s.nodes}
	}
	obj := s.incumbentObj
	gap := math.Abs(bound-obj) / math.Max(1, math.Abs(obj))
	if st == Optimal {
		gap = 0
		bound = obj
	}
	objOut, boundOut := obj, bound
	if !s.maximize {
		objOut, boundOut = -obj, -bound
	}
	return &Solution{
		Status:    st,
		Objective: objOut,
		X:         s.incumbent,
		Bound:     boundOut,
		Gap:       gap,
		Nodes:     s.nodes,
	}
}
