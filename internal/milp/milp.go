// Package milp implements a mixed-integer linear-programming solver by
// branch and bound over the LP relaxations provided by package lp.
//
// The search keeps one persistent lp.Model per solve instead of re-building
// (or mutate-and-restoring) an LP per node: the root relaxation standardizes
// and factors once, and every subsequent node applies its branching bounds
// as in-place SetBounds deltas on that model. A child node differs from its
// parent by a single variable-bound tightening — exactly the delta shape the
// dual simplex re-solves from a still-dual-feasible basis — so each node
// installs its parent's optimal basis snapshot (nodes carry one; SetBasis
// restores it) and re-solves in a handful of dual pivots. Depth-first
// plunging explores the most recently branched child first, keeping the
// installed basis one bound-change away from the solve before it; when a
// plunge fathoms, the search jumps to the globally best-bound open node,
// whose carried snapshot makes the jump warm rather than cold. The root
// rounding heuristic re-solves through the same model with the integer
// variables fixed, warm from the root basis.
//
// Warm starts never change outcomes: an ineligible or failed dual start
// falls back to the primal warm path and then to a cold solve inside lp, so
// statuses and objectives match a cold-per-node search exactly (the
// persistent_test.go property suite holds the two searches to the same
// status, objective, and incumbent feasibility; Options.ColdNodes selects
// the cold baseline). Solution embeds SearchStats — warm/cold node counts,
// primal/dual pivot totals, and a build-vs-pivot time split — so callers
// can attribute where a search spent its time.
//
// Branching is most-fractional; termination criteria are absolute/relative
// gap, node limit, and wall-clock limit. This is what the load-balancing
// case study (§4.3 of the POP paper) uses: its formulation is a small MILP
// whose exponential solve time motivates POP in the first place.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"pop/internal/lp"
)

// Problem is a mixed-integer linear program: an lp.Problem plus a set of
// integer-constrained variables.
type Problem struct {
	LP *lp.Problem

	integer map[int]bool
}

// NewProblem wraps an LP under construction. Mark variables integral with
// SetInteger after adding them to the underlying LP.
func NewProblem(objective lp.Objective) *Problem {
	return &Problem{LP: lp.NewProblem(objective), integer: map[int]bool{}}
}

// Wrap turns an existing LP (e.g. one parsed from MPS) into a MILP.
func Wrap(p *lp.Problem, intVars []int) *Problem {
	mp := &Problem{LP: p, integer: map[int]bool{}}
	for _, v := range intVars {
		mp.SetInteger(v)
	}
	return mp
}

// SetInteger constrains variable v to take integer values.
func (p *Problem) SetInteger(v int) {
	if p.integer == nil {
		p.integer = map[int]bool{}
	}
	p.integer[v] = true
}

// AddBinary adds a {0,1} variable with objective coefficient c.
func (p *Problem) AddBinary(c float64, name string) int {
	v := p.LP.AddVariable(c, 0, 1, name)
	p.SetInteger(v)
	return v
}

// NumInteger reports how many variables are integer-constrained.
func (p *Problem) NumInteger() int { return len(p.integer) }

// Options tune the branch-and-bound search.
type Options struct {
	// MaxNodes bounds explored nodes; 0 means 200000.
	MaxNodes int
	// TimeLimit bounds wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// RelGap stops when (bound-incumbent)/max(1,|incumbent|) falls below it;
	// 0 means 1e-6.
	RelGap float64
	// AbsGap stops when bound-incumbent falls below it; 0 means 1e-9.
	AbsGap float64
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// Incumbent optionally warm-starts the search with a known feasible
	// point (e.g. from a domain heuristic); it is validated before use and
	// lets the search prune aggressively from the first node.
	Incumbent []float64
	// RootBasis optionally warm-starts the root relaxation with a basis
	// snapshot from an earlier solve of the same (or a perturbed) LP —
	// typically Solution.RootBasis of the previous round's search over the
	// same formulation. A snapshot that no longer fits is discarded inside
	// the LP solver, so seeding never changes outcomes.
	RootBasis *lp.Basis
	// ColdNodes disables every warm start inside the search: each node's
	// relaxation solves from scratch, reproducing the pre-persistent-model
	// cold-per-node search. The equivalence suite and cmd/milpbench use it
	// as the baseline; outcomes never differ, only pivot counts and time.
	ColdNodes bool
	// LP propagates options to the relaxation solver.
	LP lp.Options
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap == 0 {
		o.RelGap = 1e-6
	}
	if o.AbsGap == 0 {
		o.AbsGap = 1e-9
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Status reports the outcome of a MILP solve.
type Status int8

const (
	// Optimal means the incumbent is proven optimal within the gap.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation (and hence the MILP) is unbounded.
	Unbounded
	// Feasible means the search stopped early (node/time limit) with an
	// incumbent but no optimality proof.
	Feasible
	// Unknown means the search stopped early with no incumbent.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Feasible:
		return "feasible"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// SearchStats is the branch-and-bound accounting: how many node relaxations
// were solved, how many of them actually started warm, and where the time
// went. It mirrors online.Stats' build-vs-pivot split so BENCH rows across
// the repository attribute time the same way.
type SearchStats struct {
	// Nodes counts solved node relaxations (including rounding re-solves).
	Nodes int
	// LPPivots is the total simplex pivots across all node relaxations;
	// DualPivots is the subset taken by the dual simplex phase on the
	// bound-only node deltas.
	LPPivots, DualPivots int
	// WarmNodes counts node solves that accepted their parent's basis
	// snapshot; ColdFallbacks counts warm-eligible solves where the solver
	// rejected the snapshot and fell back to a cold start. Nodes without a
	// parent basis (the root, or every node under Options.ColdNodes) are in
	// neither bucket.
	WarmNodes, ColdFallbacks int
	// BuildNs is time spent mutating the persistent model (bound deltas,
	// basis snapshots); SolveNs is time spent inside the LP solver.
	BuildNs, SolveNs int64
}

// Add accumulates other into s (POP sums its sub-searches this way).
func (s *SearchStats) Add(other SearchStats) {
	s.Nodes += other.Nodes
	s.LPPivots += other.LPPivots
	s.DualPivots += other.DualPivots
	s.WarmNodes += other.WarmNodes
	s.ColdFallbacks += other.ColdFallbacks
	s.BuildNs += other.BuildNs
	s.SolveNs += other.SolveNs
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Bound is the best proven bound on the optimum (≥ incumbent for
	// maximization, ≤ for minimization at early exit).
	Bound float64
	// Gap is |Bound-Objective| / max(1, |Objective|) at exit.
	Gap float64
	// RootBasis is the root relaxation's optimal basis (nil when the root
	// did not solve to optimality). Feeding it to Options.RootBasis of a
	// later search over the same formulation — the next balancing round,
	// say — warm-starts that search's root.
	RootBasis *lp.Basis
	SearchStats
}

type node struct {
	// Extra bounds imposed by branching, keyed by variable.
	lb, ub map[int]float64
	bound  float64 // parent LP objective (optimistic)
	depth  int
	// basis is the parent relaxation's optimal basis snapshot: the node's
	// LP differs from the parent's by one bound tightening, so the snapshot
	// is still dual feasible and the dual simplex restarts from it.
	basis *lp.Basis
}

// nodeHeap orders nodes by most promising bound (max-heap on bound for
// maximization problems; the solver normalizes to maximization internally).
type nodeHeap []*node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type solver struct {
	prob     *Problem
	opts     Options
	maximize bool
	deadline time.Time

	// model is the one persistent LP of the whole search: built from a deep
	// copy of prob.LP (the original is never touched), standardized once,
	// then mutated in place per node. applied tracks which variables
	// currently carry node bounds, so switching nodes resets exactly the
	// stale ones.
	model   *lp.Model
	applied map[int]bool

	baseLB, baseUB []float64 // original bounds snapshot
	intVars        []int     // integer variables in ascending order

	// dive is the preferred child of the last branched node, explored next
	// (depth-first plunging) before the heap's best-bound node.
	dive *node

	incumbent    []float64
	incumbentObj float64 // in maximization orientation
	haveInc      bool

	rootBasis *lp.Basis
	stats     SearchStats
}

// Solve runs branch and bound with default options.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithOptions(Options{})
}

// SolveWithOptions runs branch and bound.
func (p *Problem) SolveWithOptions(opts Options) (*Solution, error) {
	if p.LP.NumVariables() == 0 {
		return nil, fmt.Errorf("milp: model has no variables")
	}
	s := &solver{prob: p, opts: opts.withDefaults()}
	if s.opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(s.opts.TimeLimit)
	}
	return s.run()
}

// orient converts an LP objective (original orientation) into the internal
// maximization orientation.
func (s *solver) orient(v float64) float64 {
	if s.maximize {
		return v
	}
	return -v
}

func (s *solver) run() (*Solution, error) {
	p := s.prob
	s.maximize = p.LP.ObjectiveSense() == lp.Maximize
	// A sorted branching order makes the whole search deterministic (map
	// iteration would jitter tie-breaks, and with them node and pivot
	// counts, run to run).
	s.intVars = make([]int, 0, len(p.integer))
	for v := range p.integer {
		s.intVars = append(s.intVars, v)
	}
	sort.Ints(s.intVars)
	s.snapshotBounds()
	s.model = lp.NewModelFromProblem(p.LP)
	s.applied = map[int]bool{}
	s.incumbentObj = math.Inf(-1)

	root := &node{lb: map[int]float64{}, ub: map[int]float64{}, bound: math.Inf(1)}
	if !s.opts.ColdNodes {
		root.basis = s.opts.RootBasis
	}
	rootSol, err := s.solveRelaxation(root)
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return s.finish(Infeasible, 0), nil
	case lp.Unbounded:
		return s.finish(Unbounded, 0), nil
	case lp.Optimal:
	default:
		return s.finish(Unknown, 0), nil
	}
	s.rootBasis = rootSol.Basis

	// Warm start from a caller-provided incumbent, if valid.
	s.tryIncumbent()

	// Root rounding heuristic: round the relaxation to the nearest integer
	// point and re-solve the continuous rest with integers fixed.
	s.tryRounding(rootSol)

	open := &nodeHeap{}
	heap.Init(open)
	root.bound = s.orient(rootSol.Objective)
	s.expandOrAccept(open, root, rootSol)

	for s.dive != nil || open.Len() > 0 {
		if s.haveInc && s.gapClosed(open) {
			break
		}
		if s.stopEarly() {
			return s.finish(Feasible, s.bestBound(open)), nil
		}
		n := s.nextNode(open)
		if s.haveInc && n.bound <= s.incumbentObj+s.opts.AbsGap {
			continue // fathomed by bound
		}
		sol, err := s.solveRelaxation(n)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			continue // infeasible subtree (unbounded cannot appear below root)
		}
		n.bound = s.orient(sol.Objective)
		if s.haveInc && n.bound <= s.incumbentObj+s.opts.AbsGap {
			continue
		}
		s.expandOrAccept(open, n, sol)
	}

	if !s.haveInc {
		return s.finish(Infeasible, 0), nil
	}
	return s.finish(Optimal, s.incumbentObj), nil
}

// nextNode takes the plunge child when one is pending — its parent solved
// last, so the model's bounds and basis are one branching step away — and
// otherwise pops the best-bound node, whose carried basis snapshot makes
// the jump warm.
func (s *solver) nextNode(open *nodeHeap) *node {
	if s.dive != nil {
		n := s.dive
		s.dive = nil
		return n
	}
	return heap.Pop(open).(*node)
}

// bestBound is the most optimistic bound over all unexplored nodes.
func (s *solver) bestBound(open *nodeHeap) float64 {
	bound := math.Inf(-1)
	if s.dive != nil {
		bound = s.dive.bound
	}
	if open.Len() > 0 && (*open)[0].bound > bound {
		bound = (*open)[0].bound
	}
	if math.IsInf(bound, -1) {
		bound = s.incumbentObj
	}
	return bound
}

func (s *solver) gapClosed(open *nodeHeap) bool {
	if s.dive == nil && open.Len() == 0 {
		return true
	}
	gap := s.bestBound(open) - s.incumbentObj
	return gap <= s.opts.AbsGap || gap <= s.opts.RelGap*math.Max(1, math.Abs(s.incumbentObj))
}

func (s *solver) stopEarly() bool {
	if s.stats.Nodes >= s.opts.MaxNodes {
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	return false
}

// expandOrAccept either records an integer-feasible relaxation as the new
// incumbent or branches on the most fractional variable. Both children
// carry the relaxation's basis snapshot; the child the fractional value
// leans toward becomes the plunge target, the other joins the open heap.
func (s *solver) expandOrAccept(open *nodeHeap, n *node, sol *lp.Solution) {
	_, v := s.mostFractional(sol.X)
	if v < 0 {
		// Integer feasible.
		obj := s.orient(sol.Objective)
		if obj > s.incumbentObj {
			s.incumbentObj = obj
			s.incumbent = append([]float64(nil), sol.X...)
			s.haveInc = true
		}
		return
	}
	x := sol.X[v]
	floor := math.Floor(x)

	down := &node{lb: copyMap(n.lb), ub: copyMap(n.ub), bound: n.bound, depth: n.depth + 1, basis: sol.Basis}
	tightenUB(down, v, floor)
	up := &node{lb: copyMap(n.lb), ub: copyMap(n.ub), bound: n.bound, depth: n.depth + 1, basis: sol.Basis}
	tightenLB(up, v, floor+1)

	// Plunge toward the side the fractional value leans to; the other child
	// waits on the heap with its basis snapshot for a warm best-bound jump.
	// nextNode cleared s.dive before this node was solved, so the slot is
	// free.
	if x-floor >= 0.5 {
		s.dive = up
		heap.Push(open, down)
	} else {
		s.dive = down
		heap.Push(open, up)
	}
}

func tightenUB(n *node, v int, val float64) {
	if cur, ok := n.ub[v]; !ok || val < cur {
		n.ub[v] = val
	}
}

func tightenLB(n *node, v int, val float64) {
	if cur, ok := n.lb[v]; !ok || val > cur {
		n.lb[v] = val
	}
}

func copyMap(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mostFractional returns (fractionality, variable) of the integer variable
// farthest from integrality, or (0, -1) if all are integral.
func (s *solver) mostFractional(x []float64) (float64, int) {
	best, bestV := s.opts.IntTol, -1
	for _, v := range s.intVars {
		f := math.Abs(x[v] - math.Round(x[v]))
		if f > best {
			best = f
			bestV = v
		}
	}
	return best, bestV
}

// solveRelaxation solves the LP relaxation under the node's extra bounds:
// the node's bound deltas are applied to the persistent model in place, the
// node's carried basis snapshot is installed (bound-only deltas keep it
// dual feasible, so the dual simplex settles it in a few pivots; an
// ineligible snapshot falls back primal-warm→cold inside lp), and the
// re-solve is booked into the search stats.
func (s *solver) solveRelaxation(n *node) (*lp.Solution, error) {
	t0 := time.Now()
	s.applyBounds(n)
	warm := false
	if s.opts.ColdNodes || n.basis == nil {
		s.model.ForgetBasis()
	} else {
		s.model.SetBasis(n.basis)
		warm = true
	}
	s.stats.BuildNs += time.Since(t0).Nanoseconds()
	s.stats.Nodes++

	t0 = time.Now()
	sol, err := s.model.SolveWithOptions(s.opts.LP)
	s.stats.SolveNs += time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	s.stats.LPPivots += sol.Iterations
	s.stats.DualPivots += sol.DualPivots
	if warm {
		if sol.WarmStarted {
			s.stats.WarmNodes++
		} else {
			s.stats.ColdFallbacks++
		}
	}
	return sol, nil
}

func (s *solver) snapshotBounds() {
	nv := s.prob.LP.NumVariables()
	s.baseLB = make([]float64, nv)
	s.baseUB = make([]float64, nv)
	for v := 0; v < nv; v++ {
		lb, ub := s.prob.LP.Bounds(v)
		s.baseLB[v] = lb
		s.baseUB[v] = ub
	}
}

// applyBounds switches the persistent model from the previous node's bounds
// to n's: variables the previous node tightened but n does not return to
// their base bounds, and n's tightenings are applied (SetBounds no-ops on
// unchanged values, so a parent→child plunge costs one real edit).
func (s *solver) applyBounds(n *node) {
	for v := range s.applied {
		_, inLB := n.lb[v]
		_, inUB := n.ub[v]
		if inLB || inUB {
			continue
		}
		s.model.SetBounds(v, s.baseLB[v], s.baseUB[v])
		delete(s.applied, v)
	}
	// Branching tightens lb upward and ub downward around fractional LP
	// values inside the current domain, so lb ≤ ub always holds; the clamps
	// below are purely defensive.
	for v, lb := range n.lb {
		ub := s.baseUB[v]
		if u, ok := n.ub[v]; ok && u < ub {
			ub = u
		}
		if lb > ub {
			lb = ub
		}
		s.model.SetBounds(v, lb, ub)
		s.applied[v] = true
	}
	for v, ub := range n.ub {
		if _, done := n.lb[v]; done {
			continue
		}
		lb := s.baseLB[v]
		if ub < lb {
			ub = lb
		}
		s.model.SetBounds(v, lb, ub)
		s.applied[v] = true
	}
}

// tryIncumbent validates and installs the caller-provided warm start. It
// judges feasibility against the original problem, whose bounds the
// persistent model's node deltas never touch.
func (s *solver) tryIncumbent() {
	x := s.opts.Incumbent
	if x == nil {
		return
	}
	if err := s.prob.LP.CheckFeasible(x, 1e-6); err != nil {
		return
	}
	for _, v := range s.intVars {
		if math.Abs(x[v]-math.Round(x[v])) > s.opts.IntTol {
			return
		}
	}
	obj := s.orient(s.prob.LP.Value(x))
	if obj > s.incumbentObj {
		s.incumbentObj = obj
		s.incumbent = append([]float64(nil), x...)
		s.haveInc = true
	}
}

// tryRounding rounds the root relaxation and accepts it if feasible: all
// integer vars are fixed at rounded values and the continuous LP re-solved
// through the same persistent model, warm from the root basis.
func (s *solver) tryRounding(rootSol *lp.Solution) {
	if len(s.prob.integer) == 0 {
		return
	}
	for _, round := range []func(float64) float64{math.Round, math.Floor} {
		fixed := &node{lb: map[int]float64{}, ub: map[int]float64{}, basis: rootSol.Basis}
		for _, v := range s.intVars {
			r := round(rootSol.X[v])
			if r < s.baseLB[v] {
				r = math.Ceil(s.baseLB[v])
			}
			if r > s.baseUB[v] {
				r = math.Floor(s.baseUB[v])
			}
			fixed.lb[v] = r
			fixed.ub[v] = r
		}
		sol, err := s.solveRelaxation(fixed)
		if err != nil || sol.Status != lp.Optimal {
			continue
		}
		obj := s.orient(sol.Objective)
		if obj > s.incumbentObj {
			s.incumbentObj = obj
			s.incumbent = append([]float64(nil), sol.X...)
			s.haveInc = true
		}
		return
	}
}

func (s *solver) finish(st Status, bound float64) *Solution {
	sol := &Solution{Status: st, RootBasis: s.rootBasis, SearchStats: s.stats}
	if st == Infeasible || st == Unbounded {
		return sol
	}
	if !s.haveInc {
		sol.Status = Unknown
		return sol
	}
	obj := s.incumbentObj
	gap := math.Abs(bound-obj) / math.Max(1, math.Abs(obj))
	if st == Optimal {
		gap = 0
		bound = obj
	}
	objOut, boundOut := obj, bound
	if !s.maximize {
		objOut, boundOut = -obj, -bound
	}
	sol.Objective = objOut
	sol.X = s.incumbent
	sol.Bound = boundOut
	sol.Gap = gap
	return sol
}
