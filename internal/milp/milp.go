// Package milp implements a mixed-integer linear-programming solver by
// parallel branch and bound over the LP relaxations provided by package lp.
//
// The search is a coordinator/worker design. A central coordinator owns the
// mutex-protected open heap (ordered by most promising bound), the
// incumbent, the pseudo-cost branching table, and the termination latch;
// each of Options.Workers goroutines owns a private clone of the persistent
// lp.Model. Clones are cheap — lp.Model.Clone shares the immutable
// constraint matrix copy-on-write and copies only mutable state (bounds,
// basis, and the applied-delta bookkeeping lives here in the worker) — so
// worker count scales with CPUs, not with problem size.
//
// Each worker loops: steal the best-bound open node (or take its own plunge
// child), apply the node's bound deltas to its model in place, install the
// node's carried basis snapshot, solve, and hand the result back to the
// coordinator, which updates pseudo-costs, accepts integer-feasible points
// as incumbents, fathoms against the combined absolute+relative gap cutoff,
// or branches. A child node differs from its parent by a single
// variable-bound tightening — exactly the delta shape the dual simplex
// re-solves from a still-dual-feasible basis — so every node carries its
// parent's optimal basis snapshot and restarts warm in a handful of dual
// pivots on whichever worker steals it (SetBasis clones on install, so a
// snapshot shared by both children and several workers is never observed
// mid-mutation). Depth-first plunging keeps each worker's model one bound
// change away from its previous solve; a best-bound steal from the heap
// jumps warm off the carried snapshot.
//
// Branching is pseudo-cost seeded by most-fractional: per-variable
// objective degradations per unit of fractionality are learned from solved
// children, and before any observations exist the selection reduces to the
// most-fractional rule. A light presolve pass (integer bound rounding,
// fixed-variable substitution, empty/constant-row elimination) runs once
// before the root relaxation. The root rounding heuristic re-solves through
// worker 0's model warm from the root basis; heuristic re-solves are booked
// as SearchStats.HeuristicSolves and never consume the MaxNodes budget.
//
// Warm starts never change outcomes: an ineligible or failed dual start
// falls back to the primal warm path and then to a cold solve inside lp, so
// statuses and objectives match a cold-per-node search exactly
// (Options.ColdNodes selects the cold baseline, and the property suites
// hold warm vs cold and every worker count to the same status, objective,
// and incumbent feasibility; node and pivot counts vary with timing at
// Workers>1, while Workers=1 is deterministic run to run). Solution embeds
// SearchStats so callers can attribute where a search spent its time.
//
// Termination criteria are absolute/relative gap, node limit, and
// wall-clock limit. This is what the load-balancing case study (§4.3 of the
// POP paper) uses: its formulation is a small MILP whose exponential solve
// time motivates POP in the first place.
package milp

import (
	"fmt"
	"sort"
	"time"

	"pop/internal/lp"
	"pop/internal/obs"
)

// Problem is a mixed-integer linear program: an lp.Problem plus a set of
// integer-constrained variables.
type Problem struct {
	LP *lp.Problem

	integer map[int]bool
}

// NewProblem wraps an LP under construction. Mark variables integral with
// SetInteger after adding them to the underlying LP.
func NewProblem(objective lp.Objective) *Problem {
	return &Problem{LP: lp.NewProblem(objective), integer: map[int]bool{}}
}

// Wrap turns an existing LP (e.g. one parsed from MPS) into a MILP.
func Wrap(p *lp.Problem, intVars []int) *Problem {
	mp := &Problem{LP: p, integer: map[int]bool{}}
	for _, v := range intVars {
		mp.SetInteger(v)
	}
	return mp
}

// SetInteger constrains variable v to take integer values.
func (p *Problem) SetInteger(v int) {
	if p.integer == nil {
		p.integer = map[int]bool{}
	}
	p.integer[v] = true
}

// AddBinary adds a {0,1} variable with objective coefficient c.
func (p *Problem) AddBinary(c float64, name string) int {
	v := p.LP.AddVariable(c, 0, 1, name)
	p.SetInteger(v)
	return v
}

// NumInteger reports how many variables are integer-constrained.
func (p *Problem) NumInteger() int { return len(p.integer) }

// Options tune the branch-and-bound search.
type Options struct {
	// Workers is the number of branch-and-bound worker goroutines; 0 means
	// 1. Each worker owns a cheap clone of the persistent model and steals
	// best-bound nodes from the shared open heap. Any worker count produces
	// the same status and objective (to solver tolerance); node and pivot
	// counts vary with scheduling at Workers>1, while Workers=1 is
	// deterministic run to run.
	Workers int
	// MaxNodes bounds explored nodes (heuristic re-solves excluded); 0
	// means 200000.
	MaxNodes int
	// TimeLimit bounds wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// RelGap stops when (bound-incumbent)/max(1,|incumbent|) falls below it;
	// 0 means 1e-6.
	RelGap float64
	// AbsGap stops when bound-incumbent falls below it; 0 means 1e-9.
	AbsGap float64
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// Incumbent optionally warm-starts the search with a known feasible
	// point (e.g. from a domain heuristic); it is validated before use and
	// lets the search prune aggressively from the first node.
	Incumbent []float64
	// RootBasis optionally warm-starts the root relaxation with a basis
	// snapshot from an earlier solve of the same (or a perturbed) LP —
	// typically Solution.RootBasis of the previous round's search over the
	// same formulation. A snapshot that no longer fits is discarded inside
	// the LP solver, so seeding never changes outcomes.
	RootBasis *lp.Basis
	// ColdNodes disables every warm start inside the search: each node's
	// relaxation solves from scratch, reproducing the pre-persistent-model
	// cold-per-node search. The equivalence suite and cmd/milpbench use it
	// as the baseline; outcomes never differ, only pivot counts and time.
	ColdNodes bool
	// LP propagates options to the relaxation solver.
	LP lp.Options
	// Obs, when non-nil, receives search telemetry: a "milp.search" span
	// per solve, per-node "milp.node" spans on per-worker trace lanes
	// (TID+1+worker), steal/fathom/incumbent instants, and search-level
	// counters. The observer is also threaded into every node's LP solve.
	// Nil — the default — costs one pointer check per node.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap == 0 {
		o.RelGap = 1e-6
	}
	if o.AbsGap == 0 {
		o.AbsGap = 1e-9
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Status reports the outcome of a MILP solve.
type Status int8

const (
	// Optimal means the incumbent is proven optimal within the gap.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation (and hence the MILP) is unbounded.
	Unbounded
	// Feasible means the search stopped early (node/time limit) with an
	// incumbent but no optimality proof.
	Feasible
	// Unknown means the search stopped early with no incumbent.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Feasible:
		return "feasible"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// SearchStats is the branch-and-bound accounting: how many node relaxations
// were solved, how many of them actually started warm, and where the time
// went. At Workers>1 each worker accumulates privately and the totals are
// merged in worker order on exit. It mirrors online.Stats' build-vs-pivot
// split so BENCH rows across the repository attribute time the same way.
type SearchStats struct {
	// Nodes counts solved node relaxations. HeuristicSolves counts LP
	// re-solves made by primal heuristics (root rounding); they are booked
	// separately and do not count against Options.MaxNodes, so a tiny node
	// budget cannot be exhausted before branching starts.
	Nodes           int
	HeuristicSolves int
	// LPPivots is the total simplex pivots across all node relaxations;
	// DualPivots is the subset taken by the dual simplex phase on the
	// bound-only node deltas.
	LPPivots, DualPivots int
	// WarmNodes counts node solves that accepted their parent's basis
	// snapshot; ColdFallbacks counts warm-eligible solves where the solver
	// rejected the snapshot and fell back to a cold start. Nodes without a
	// parent basis (the root, or every node under Options.ColdNodes) are in
	// neither bucket.
	WarmNodes, ColdFallbacks int
	// BuildNs is time spent mutating the persistent model (bound deltas,
	// basis snapshots); SolveNs is time spent inside the LP solver. At
	// Workers>1 these are CPU-time sums across workers, not wall clock.
	BuildNs, SolveNs int64
}

// Add accumulates other into s (POP sums its sub-searches this way, and the
// coordinator merges per-worker stats the same way).
func (s *SearchStats) Add(other SearchStats) {
	s.Nodes += other.Nodes
	s.HeuristicSolves += other.HeuristicSolves
	s.LPPivots += other.LPPivots
	s.DualPivots += other.DualPivots
	s.WarmNodes += other.WarmNodes
	s.ColdFallbacks += other.ColdFallbacks
	s.BuildNs += other.BuildNs
	s.SolveNs += other.SolveNs
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Bound is the best proven bound on the optimum (≥ incumbent for
	// maximization, ≤ for minimization at early exit).
	Bound float64
	// Gap is |Bound-Objective| / max(1, |Objective|) at exit.
	Gap float64
	// RootBasis is the root relaxation's optimal basis (nil when the root
	// did not solve to optimality). Feeding it to Options.RootBasis of a
	// later search over the same formulation — the next balancing round,
	// say — warm-starts that search's root.
	RootBasis *lp.Basis
	SearchStats
}

// node is one open subproblem of the branch-and-bound tree. Nodes are
// created under the coordinator lock and solved by exactly one worker, so
// the struct needs no synchronization of its own; the basis snapshot may be
// shared between siblings because SetBasis clones on install.
type node struct {
	// Extra bounds imposed by branching, keyed by variable.
	lb, ub map[int]float64
	bound  float64 // parent LP objective (optimistic)
	depth  int
	// basis is the parent relaxation's optimal basis snapshot: the node's
	// LP differs from the parent's by one bound tightening, so the snapshot
	// is still dual feasible and the dual simplex restarts from it.
	basis *lp.Basis
	// Pseudo-cost bookkeeping: the variable the parent branched on to
	// create this node, the fractional distance moved, and the direction.
	// pcVar is -1 for the root and heuristic nodes.
	pcVar  int
	pcDist float64
	pcUp   bool
}

// nodeHeap orders nodes by most promising bound (max-heap on bound for
// maximization problems; the solver normalizes to maximization internally).
type nodeHeap []*node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound with default options.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithOptions(Options{})
}

// SolveWithOptions runs branch and bound.
func (p *Problem) SolveWithOptions(opts Options) (*Solution, error) {
	if p.LP.NumVariables() == 0 {
		return nil, fmt.Errorf("milp: model has no variables")
	}
	s := &search{prob: p, opts: opts.withDefaults()}
	if s.opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(s.opts.TimeLimit)
	}
	o := s.opts.Obs
	if o == nil {
		return s.run()
	}
	sp := o.Span("milp.search").Arg("workers", s.opts.Workers)
	start := time.Now()
	sol, err := s.run()
	if sol != nil {
		sp.Arg("status", sol.Status.String()).Arg("nodes", sol.Nodes)
	}
	sp.End()
	if err == nil && sol != nil {
		bookSearch(o, sol, time.Since(start))
	}
	return sol, err
}

func tightenUB(n *node, v int, val float64) {
	if cur, ok := n.ub[v]; !ok || val < cur {
		n.ub[v] = val
	}
}

func tightenLB(n *node, v int, val float64) {
	if cur, ok := n.lb[v]; !ok || val > cur {
		n.lb[v] = val
	}
}

func copyMap(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
