package milp_test

// Property suite for the persistent-model branch and bound: the warm search
// (per-node dual-simplex re-solves from parent basis snapshots over one
// persistent lp.Model) must reach exactly the outcomes of the cold-per-node
// baseline (Options.ColdNodes) — same status, objectives within 1e-6, and a
// feasible integral incumbent — over lb-shaped instances (the §4.3
// formulation the search exists for), random binary programs, and the MPS
// fixtures. It lives in an external test package so it can drive the real
// lb formulation through lb.BuildMILP without an import cycle.

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"pop/internal/lb"
	"pop/internal/lp"
	"pop/internal/milp"
)

// checkWarmColdAgree solves prob both ways and enforces the equivalence
// contract, returning the two solutions for extra assertions.
func checkWarmColdAgree(t *testing.T, label string, prob *milp.Problem, opts milp.Options) (warm, cold *milp.Solution) {
	t.Helper()
	warmOpts := opts
	warmOpts.ColdNodes = false
	coldOpts := opts
	coldOpts.ColdNodes = true

	warm, err := prob.SolveWithOptions(warmOpts)
	if err != nil {
		t.Fatalf("%s: warm: %v", label, err)
	}
	cold, err = prob.SolveWithOptions(coldOpts)
	if err != nil {
		t.Fatalf("%s: cold: %v", label, err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("%s: status warm=%v cold=%v", label, warm.Status, cold.Status)
	}
	if warm.Status != milp.Optimal {
		return warm, cold
	}
	if !approxEqT(warm.Objective, cold.Objective) {
		t.Fatalf("%s: objective warm=%.12g cold=%.12g", label, warm.Objective, cold.Objective)
	}
	for _, sol := range []*milp.Solution{warm, cold} {
		if err := prob.LP.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Fatalf("%s: incumbent infeasible: %v", label, err)
		}
	}
	return warm, cold
}

func approxEqT(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

// integral asserts every integer-constrained variable of sol sits on an
// integer within tolerance.
func integral(t *testing.T, label string, intVars []int, x []float64) {
	t.Helper()
	for _, v := range intVars {
		if math.Abs(x[v]-math.Round(x[v])) > 1e-6 {
			t.Fatalf("%s: variable %d fractional: %g", label, v, x[v])
		}
	}
}

// TestPersistentEqualsColdOnLBInstances drives randomized §4.3 instances —
// the MILP whose node re-solves the persistent model exists for — through
// both searches.
func TestPersistentEqualsColdOnLBInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 12
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		shards := 6 + rng.Intn(8)
		servers := 2 + rng.Intn(3)
		inst := lb.NewInstance(shards, servers, 0.05+rng.Float64()*0.1, int64(100+trial))
		inst.ShiftLoads(int64(200 + trial))
		prob, _, mVar := lb.BuildMILP(inst)

		label := "lb trial"
		warm, cold := checkWarmColdAgree(t, label, prob, milp.Options{MaxNodes: 20000})
		if warm.Status != milp.Optimal {
			continue
		}
		var ints []int
		for _, row := range mVar {
			ints = append(ints, row...)
		}
		integral(t, label, ints, warm.X)
		integral(t, label, ints, cold.X)
		if warm.RootBasis == nil {
			t.Fatalf("trial %d: no root basis emitted", trial)
		}
		// The warm search must actually engage its warm machinery whenever
		// it branched at all.
		if warm.Nodes > 3 && warm.WarmNodes == 0 {
			t.Fatalf("trial %d: %d nodes solved, none warm", trial, warm.Nodes)
		}
		if cold.WarmNodes != 0 || cold.ColdFallbacks != 0 {
			t.Fatalf("trial %d: cold search booked warm nodes: %+v", trial, cold.SearchStats)
		}
	}
}

// TestPersistentEqualsColdOnRandomBinaries fuzzes small random binary
// programs (any status can come out) through both searches.
func TestPersistentEqualsColdOnRandomBinaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 40
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		nv := 4 + rng.Intn(10)
		mc := 1 + rng.Intn(4)
		prob := milp.NewProblem(lp.Maximize)
		vars := make([]int, nv)
		for j := 0; j < nv; j++ {
			vars[j] = prob.AddBinary(math.Round(rng.NormFloat64()*10)/2, "")
		}
		for i := 0; i < mc; i++ {
			coef := make([]float64, nv)
			for j := range coef {
				coef[j] = math.Round(rng.Float64() * 4)
			}
			sense := lp.LE
			if rng.Intn(4) == 0 {
				sense = lp.GE
			}
			prob.LP.AddConstraint(vars, coef, sense, math.Round(rng.Float64()*float64(nv)), "")
		}
		warm, _ := checkWarmColdAgree(t, "binary trial", prob, milp.Options{})
		if warm.Status == milp.Optimal {
			integral(t, "binary trial", vars, warm.X)
		}
	}
}

// intMPSFixtures are MILPs in MPS form (MARKER sections), mirroring what
// cmd/popsolve feeds the solver.
var intMPSFixtures = []struct {
	name string
	src  string
	obj  float64
}{
	{"knap", `NAME KNAP
OBJSENSE
    MAX
ROWS
 N  OBJ
 L  CAP
COLUMNS
    MARKER  'MARKER'  'INTORG'
    X  OBJ  60  CAP  10
    Y  OBJ  100  CAP  20
    Z  OBJ  120  CAP  30
    MARKER  'MARKER'  'INTEND'
RHS
    RHS  CAP  50
BOUNDS
 UP BND  X  1
 UP BND  Y  1
 UP BND  Z  1
ENDATA
`, 220},
	{"mixed", `NAME MIXED
OBJSENSE
    MAX
ROWS
 N  OBJ
 L  R1
COLUMNS
    MARKER  'MARKER'  'INTORG'
    X  OBJ  3  R1  1
    MARKER  'MARKER'  'INTEND'
    Y  OBJ  2  R1  1
RHS
    RHS  R1  2
BOUNDS
 UP BND  X  1
 UP BND  Y  1.5
ENDATA
`, 5},
	{"intinfeasible", `NAME II
ROWS
 N  OBJ
 E  R1
COLUMNS
    MARKER  'MARKER'  'INTORG'
    X  OBJ  1  R1  2
    MARKER  'MARKER'  'INTEND'
RHS
    RHS  R1  1
BOUNDS
 UP BND  X  1
ENDATA
`, 0},
}

// TestPersistentEqualsColdOnMPSFixtures runs the MPS corpus through both
// searches and against the known optima.
func TestPersistentEqualsColdOnMPSFixtures(t *testing.T) {
	for _, fx := range intMPSFixtures {
		t.Run(fx.name, func(t *testing.T) {
			p, ints, err := lp.ReadMPS(strings.NewReader(fx.src))
			if err != nil {
				t.Fatal(err)
			}
			if len(ints) == 0 {
				t.Fatal("fixture lost its integer markers")
			}
			prob := milp.Wrap(p, ints)
			warm, _ := checkWarmColdAgree(t, fx.name, prob, milp.Options{})
			if warm.Status == milp.Optimal {
				if !approxEqT(warm.Objective, fx.obj) {
					t.Fatalf("objective %g, want %g", warm.Objective, fx.obj)
				}
				integral(t, fx.name, ints, warm.X)
			}
		})
	}
}

// TestRootBasisSeeding re-solves a perturbed instance with the previous
// solve's root basis: outcomes must be unchanged and the root must accept
// the seed (a warm node beyond what the unseeded search books).
func TestRootBasisSeeding(t *testing.T) {
	inst := lb.NewInstance(10, 3, 0.08, 51)
	inst.ShiftLoads(52)
	prob, _, _ := lb.BuildMILP(inst)
	first, err := prob.SolveWithOptions(milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != milp.Optimal || first.RootBasis == nil {
		t.Fatalf("reference solve: status %v, basis %v", first.Status, first.RootBasis != nil)
	}

	// Next round: loads drift, formulation shape is identical.
	inst.ShiftLoads(53)
	prob2, _, _ := lb.BuildMILP(inst)
	seeded, err := prob2.SolveWithOptions(milp.Options{MaxNodes: 20000, RootBasis: first.RootBasis})
	if err != nil {
		t.Fatal(err)
	}
	unseeded, err := prob2.SolveWithOptions(milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Status != unseeded.Status {
		t.Fatalf("status seeded=%v unseeded=%v", seeded.Status, unseeded.Status)
	}
	if seeded.Status == milp.Optimal && !approxEqT(seeded.Objective, unseeded.Objective) {
		t.Fatalf("objective seeded=%g unseeded=%g", seeded.Objective, unseeded.Objective)
	}
	if seeded.WarmNodes+seeded.ColdFallbacks <= unseeded.WarmNodes+unseeded.ColdFallbacks {
		t.Fatalf("root seed not attempted: seeded %+v, unseeded %+v",
			seeded.SearchStats, unseeded.SearchStats)
	}
}

// TestWarmSearchCutsPivots is the perf contract behind BENCH_milp.json: on
// an lb instance with a real search tree, the persistent-model search must
// spend well under half the cold baseline's pivots.
func TestWarmSearchCutsPivots(t *testing.T) {
	inst := lb.NewInstance(14, 4, 0.05, 71)
	inst.ShiftLoads(72)
	prob, _, _ := lb.BuildMILP(inst)
	warm, cold := checkWarmColdAgree(t, "pivot budget", prob, milp.Options{MaxNodes: 20000})
	if warm.Status != milp.Optimal || warm.Nodes < 4 {
		t.Skipf("instance too easy for a pivot comparison: %v, %d nodes", warm.Status, warm.Nodes)
	}
	if warm.LPPivots*2 > cold.LPPivots {
		t.Fatalf("warm search took %d pivots, cold %d — less than 2x win", warm.LPPivots, cold.LPPivots)
	}
	if warm.DualPivots == 0 {
		t.Fatal("dual simplex never engaged on bound-only node deltas")
	}
}
