package milp

import (
	"math"

	"pop/internal/lp"
)

// presolved is the outcome of the light presolve pass that runs once before
// the root relaxation.
type presolved struct {
	// lp is the reduced problem the search actually solves. Variable
	// indexing is preserved — fixed variables stay in the problem with
	// lb==ub, so Solution.X and the objective need no back-substitution —
	// but rows whose every coefficient hits a fixed variable collapse to
	// constants and are dropped, and remaining rows have fixed-variable
	// terms folded into their right-hand sides.
	lp *lp.Problem
	// infeasible reports that presolve proved the MILP infeasible (an
	// integer variable's rounded bounds crossed, or a constant row's
	// residual violates its sense).
	infeasible bool
	// reducedRows reports whether any row was dropped or rewritten; when
	// true a caller-supplied RootBasis from the unreduced formulation no
	// longer fits and is discarded by the LP solver's dimension check.
	reducedRows bool
	// fixed marks variables whose (rounded) bounds pin them to one value.
	fixed []bool
}

// presolve applies GoMILP-style light reductions to a copy of the problem:
// integer bound rounding, fixed-variable substitution into row right-hand
// sides, and empty/constant row elimination. The original problem is never
// modified. The pass is deliberately shallow — one sweep, no propagation —
// because the lb instances it runs on are already tight; its value is
// catching degenerate inputs (pre-fixed binaries, constant rows) before the
// search builds per-worker models around them.
func presolve(p *Problem) *presolved {
	const tol = 1e-9
	red := p.LP.Clone()
	nv := red.NumVariables()
	out := &presolved{lp: red, fixed: make([]bool, nv)}

	// Integer bound rounding: ceil the lower, floor the upper. Crossed
	// rounded bounds prove infeasibility outright.
	for v := 0; v < nv; v++ {
		lo, hi := red.Bounds(v)
		if p.integer[v] {
			if rl := math.Ceil(lo - tol); rl > lo {
				lo = rl
			}
			if ru := math.Floor(hi + tol); ru < hi {
				hi = ru
			}
			if lo > hi {
				out.infeasible = true
				return out
			}
			red.SetBounds(v, lo, hi)
		}
		if hi-lo <= tol {
			out.fixed[v] = true
		}
	}

	// Row sweep: fold fixed-variable terms into the rhs and drop rows with
	// no free support. A constant row is checked against its sense and then
	// eliminated; an inconsistent one proves infeasibility.
	nrows := red.NumConstraints()
	type keptRow struct {
		idx   []int
		val   []float64
		sense lp.Sense
		rhs   float64
		name  string
	}
	var kept []keptRow
	for i := 0; i < nrows; i++ {
		idx, val, sense, rhs := red.Constraint(i)
		freeIdx := idx[:0]
		freeVal := val[:0]
		for t, v := range idx {
			if out.fixed[v] {
				lo, _ := red.Bounds(v)
				rhs -= val[t] * lo
				continue
			}
			freeIdx = append(freeIdx, v)
			freeVal = append(freeVal, val[t])
		}
		if len(freeIdx) == 0 {
			// Constant (or originally empty) row: 0 ⋈ rhs must hold.
			feasTol := 1e-7 * (1 + math.Abs(rhs))
			switch sense {
			case lp.LE:
				if rhs < -feasTol {
					out.infeasible = true
					return out
				}
			case lp.GE:
				if rhs > feasTol {
					out.infeasible = true
					return out
				}
			default: // EQ
				if math.Abs(rhs) > feasTol {
					out.infeasible = true
					return out
				}
			}
			out.reducedRows = true
			continue
		}
		if len(freeIdx) != len(idx) {
			out.reducedRows = true
		}
		kept = append(kept, keptRow{freeIdx, freeVal, sense, rhs, red.ConstraintName(i)})
	}
	if !out.reducedRows {
		return out
	}

	// Rebuild the problem with the surviving rows. Variables (including the
	// fixed ones, now inert) carry over verbatim so indexing is stable.
	rb := lp.NewProblem(red.ObjectiveSense())
	for v := 0; v < nv; v++ {
		lo, hi := red.Bounds(v)
		rb.AddVariable(red.ObjectiveCoeff(v), lo, hi, "")
	}
	for _, r := range kept {
		rb.AddConstraint(r.idx, r.val, r.sense, r.rhs, r.name)
	}
	out.lp = rb
	return out
}
