package milp

import "math"

// pseudoCosts maintains per-variable estimates of how much the relaxation
// objective degrades per unit of fractionality when branching a variable
// down (toward its floor) or up (toward its ceiling). Observations come
// from solved child relaxations: a child created by moving variable v a
// fractional distance d that lost Δ objective versus its parent contributes
// Δ/d to v's running average for that direction.
//
// Scores fall back per-variable → global average → 1.0, so before any
// observation exists the selection rule min(down·f, up·(1−f)) reduces to
// min(f, 1−f) — exactly the most-fractional rule the sequential search
// used. The structure is guarded by the coordinator mutex; workers never
// touch it directly.
type pseudoCosts struct {
	downSum, upSum         []float64
	downCnt, upCnt         []int
	globDown, globUp       float64
	globDownCnt, globUpCnt int
}

func newPseudoCosts(nv int) *pseudoCosts {
	return &pseudoCosts{
		downSum: make([]float64, nv),
		upSum:   make([]float64, nv),
		downCnt: make([]int, nv),
		upCnt:   make([]int, nv),
	}
}

// observe records that branching variable v in the given direction over
// fractional distance dist degraded the relaxation objective by deg ≥ 0.
func (pc *pseudoCosts) observe(v int, up bool, dist, deg float64) {
	if dist < 1e-9 {
		return
	}
	perUnit := deg / dist
	if up {
		pc.upSum[v] += perUnit
		pc.upCnt[v]++
		pc.globUp += perUnit
		pc.globUpCnt++
	} else {
		pc.downSum[v] += perUnit
		pc.downCnt[v]++
		pc.globDown += perUnit
		pc.globDownCnt++
	}
}

func (pc *pseudoCosts) down(v int) float64 {
	if pc.downCnt[v] > 0 {
		return pc.downSum[v] / float64(pc.downCnt[v])
	}
	if pc.globDownCnt > 0 {
		return pc.globDown / float64(pc.globDownCnt)
	}
	return 1
}

func (pc *pseudoCosts) up(v int) float64 {
	if pc.upCnt[v] > 0 {
		return pc.upSum[v] / float64(pc.upCnt[v])
	}
	if pc.globUpCnt > 0 {
		return pc.globUp / float64(pc.globUpCnt)
	}
	return 1
}

// selectBranch picks the branching variable for relaxation solution x: the
// integer variable maximizing min(downCost·f, upCost·(1−f)) over fractional
// variables, ties broken toward the lowest index so a fixed observation
// history yields a deterministic choice. Returns (-1, 0) when x is integer
// feasible within tol. Caller holds the coordinator mutex.
func (pc *pseudoCosts) selectBranch(intVars []int, x []float64, tol float64) (int, float64) {
	// bestScore starts below any real score: a zero score (degenerate
	// observed degradations) must still beat "no fractional variable".
	bestV, bestScore := -1, -1.0
	var bestFrac float64
	for _, v := range intVars {
		f := x[v] - math.Floor(x[v])
		if math.Min(f, 1-f) <= tol {
			continue
		}
		score := math.Min(pc.down(v)*f, pc.up(v)*(1-f))
		if score > bestScore {
			bestScore = score
			bestV = v
			bestFrac = f
		}
	}
	return bestV, bestFrac
}
