package te

import (
	"pop/internal/core"
	"pop/internal/graph"
	"pop/internal/lp"
	"pop/internal/tm"
	"pop/internal/topo"
)

// vdem is a virtual commodity: a (possibly split) share of an original
// demand's traffic. Virtual demands reuse the original's precomputed paths.
type vdem struct {
	orig   int
	amount float64
}

// SolvePOP applies the POP procedure to a TE instance:
//
//  1. Optional client splitting (Algorithm 2) with threshold opts.SplitT,
//     halving the largest demands into virtual commodities — needed for
//     skewed (Poisson) traffic where a few commodities dominate.
//  2. Resource splitting: every sub-problem sees the whole topology with
//     every link at 1/k capacity. The paper shows (Figure 15) that sharding
//     the topology instead collapses total flow, because commodities must
//     use the links between their specific sites.
//  3. Random partition of the (virtual) commodities into k sub-problems.
//  4. Map: solve each sub-problem LP, in parallel when opts.Parallel.
//  5. Reduce: concatenate path flows, summing virtual commodities back onto
//     their original demands.
//
// The coalesced allocation is feasible by construction (capacities were
// pre-divided); VerifyFeasible is cheap and tests assert it.
func SolvePOP(inst *Instance, obj Objective, opts core.Options, lpOpts lp.Options) (*Allocation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	k := opts.K

	virtual := splitDemands(inst, opts.SplitT)
	groups := core.Partition(len(virtual), k, opts.Strategy, opts.Seed,
		func(i int) float64 { return virtual[i].amount })

	subInsts := make([]*Instance, k)
	for p, g := range groups {
		sub := &Instance{Topo: inst.Topo, NumPaths: inst.NumPaths}
		sub.Demands = make([]tm.Demand, len(g))
		sub.Paths = make([][]*graph.Path, len(g))
		for t, vi := range g {
			v := virtual[vi]
			od := inst.Demands[v.orig]
			sub.Demands[t] = tm.Demand{Src: od.Src, Dst: od.Dst, Amount: v.amount}
			sub.Paths[t] = inst.Paths[v.orig]
		}
		subInsts[p] = sub
	}

	subAllocs := make([]*Allocation, k)
	err := core.ParallelMap(k, opts.Parallel, func(p int) error {
		a, err := solveScaled(subInsts[p], obj, float64(k), nil, lpOpts)
		subAllocs[p] = a
		return err
	})
	if err != nil {
		return nil, err
	}

	out := newAllocation(inst)
	for p, g := range groups {
		sa := subAllocs[p]
		out.LPVariables += sa.LPVariables
		for t, vi := range g {
			orig := virtual[vi].orig
			for pi, f := range sa.PathFlow[t] {
				out.PathFlow[orig][pi] += f
			}
		}
	}
	out.finalize(inst)
	return out, nil
}

func splitDemands(inst *Instance, t float64) []vdem {
	base := make([]vdem, len(inst.Demands))
	for j, d := range inst.Demands {
		base[j] = vdem{orig: j, amount: d.Amount}
	}
	if t <= 0 {
		return base
	}
	split := core.SplitClients(base, t,
		func(c vdem) float64 { return c.amount },
		func(c vdem) (vdem, vdem) {
			h := c.amount / 2
			return vdem{c.orig, h}, vdem{c.orig, h}
		})
	out := make([]vdem, len(split))
	for i, vc := range split {
		out[i] = vc.Client
	}
	return out
}

// SolveSharded is the Figure-15 ablation: POP *without* resource splitting.
// The topology's links are randomly partitioned into k disjoint
// sub-networks, each link appearing (at full capacity) in exactly one
// sub-problem; commodities are partitioned randomly as usual. Because a
// commodity's useful links often land in other sub-problems, total flow
// collapses as k grows — which is the point of the ablation.
func SolveSharded(inst *Instance, obj Objective, opts core.Options, lpOpts lp.Options) (*Allocation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	g := inst.Topo.G

	edgeGroups := core.Partition(len(g.Edges), k, core.Random, opts.Seed+1, nil)
	demGroups := core.Partition(len(inst.Demands), k, opts.Strategy, opts.Seed,
		func(i int) float64 { return inst.Demands[i].Amount })

	type subResult struct {
		inst  *Instance
		alloc *Allocation
		// edgeMap maps sub-graph edge IDs back to original edge IDs.
		edgeMap []int
		g       []int // demand indices
	}
	results := make([]subResult, k)

	for p := 0; p < k; p++ {
		// Build the sub-graph containing only this partition's edges.
		subG := graph.New(g.N)
		edgeMap := make([]int, 0, len(edgeGroups[p]))
		for _, eid := range edgeGroups[p] {
			e := g.Edges[eid]
			subG.AddEdge(e.From, e.To, e.Capacity, e.Weight)
			edgeMap = append(edgeMap, eid)
		}
		subTopo := &topo.Topology{Name: inst.Topo.Name, G: subG, Coords: inst.Topo.Coords}

		demands := make([]tm.Demand, len(demGroups[p]))
		for t, j := range demGroups[p] {
			demands[t] = inst.Demands[j]
		}
		results[p] = subResult{
			inst:    NewInstance(subTopo, demands, inst.NumPaths),
			edgeMap: edgeMap,
			g:       demGroups[p],
		}
	}

	err := core.ParallelMap(k, opts.Parallel, func(p int) error {
		a, err := SolveLP(results[p].inst, obj, lpOpts)
		results[p].alloc = a
		return err
	})
	if err != nil {
		return nil, err
	}

	// Coalesce onto the original instance. Path indices differ (paths were
	// recomputed in the sub-graph), so we only coalesce flows and edge
	// loads, not PathFlow.
	out := newAllocation(inst)
	out.MinFraction = 1
	for p := range results {
		r := results[p]
		out.LPVariables += r.alloc.LPVariables
		for t, j := range r.g {
			out.Flow[j] = r.alloc.Flow[t]
			out.TotalFlow += r.alloc.Flow[t]
		}
		for se, f := range r.alloc.EdgeFlow {
			out.EdgeFlow[r.edgeMap[se]] += f
		}
	}
	for j, d := range inst.Demands {
		if d.Amount > 0 {
			frac := out.Flow[j] / d.Amount
			if frac < out.MinFraction {
				out.MinFraction = frac
			}
		}
	}
	return out, nil
}
