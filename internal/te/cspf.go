package te

import (
	"sort"
)

// SolveCSPF is the Constrained Shortest Path First heuristic the paper
// compares against (Fortz et al.): commodities are processed in descending
// demand order; each is routed greedily over its precomputed paths in
// weight order, taking as much of the residual capacity as it can, with a
// widest-path fallback when the precomputed paths are saturated.
//
// CSPF is fast — one pass over the commodities — but leaves flow on the
// table because early commodities grab capacity later ones needed.
func SolveCSPF(inst *Instance) *Allocation {
	g := inst.Topo.G
	residual := make([]float64, len(g.Edges))
	for i, e := range g.Edges {
		residual[i] = e.Capacity
	}

	order := make([]int, len(inst.Demands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return inst.Demands[order[a]].Amount > inst.Demands[order[b]].Amount
	})

	a := newAllocation(inst)
	for _, j := range order {
		remaining := inst.Demands[j].Amount
		for pi, path := range inst.Paths[j] {
			if remaining <= 0 {
				break
			}
			// Bottleneck residual along the path.
			bottleneck := remaining
			for _, eid := range path.Edges {
				if residual[eid] < bottleneck {
					bottleneck = residual[eid]
				}
			}
			if bottleneck <= 0 {
				continue
			}
			a.PathFlow[j][pi] += bottleneck
			remaining -= bottleneck
			for _, eid := range path.Edges {
				residual[eid] -= bottleneck
			}
		}
	}
	a.finalize(inst)
	return a
}
