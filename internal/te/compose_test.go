package te

import (
	"testing"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/tm"
)

func TestPOPWithNCFlowComposition(t *testing.T) {
	inst := smallWAN(t, 400, tm.Gravity, 41)
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := SolvePOPWithNCFlow(inst, core.Options{K: 4, Seed: 3, Parallel: true}, NCFlowOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility on edges (composition must never oversubscribe a link).
	for _, e := range inst.Topo.G.Edges {
		if composed.EdgeFlow[e.ID] > e.Capacity+1e-6*(1+e.Capacity) {
			t.Fatalf("edge %d over capacity: %g > %g", e.ID, composed.EdgeFlow[e.ID], e.Capacity)
		}
	}
	if composed.TotalFlow <= 0 {
		t.Fatal("composition allocated nothing")
	}
	if composed.TotalFlow > exact.TotalFlow+1e-6 {
		t.Fatalf("composition %g beat exact %g", composed.TotalFlow, exact.TotalFlow)
	}
	// Demand caps.
	for j, d := range inst.Demands {
		if composed.Flow[j] > d.Amount+1e-6*(1+d.Amount) {
			t.Fatalf("demand %d over-served", j)
		}
	}
}

func TestGeoPartitionCoversAll(t *testing.T) {
	inst := smallWAN(t, 200, tm.Uniform, 43)
	groups := GeoPartition(inst, 6, 2)
	seen := map[int]bool{}
	for _, g := range groups {
		for _, j := range g {
			if seen[j] {
				t.Fatalf("demand %d in two groups", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != len(inst.Demands) {
		t.Fatalf("covered %d of %d demands", len(seen), len(inst.Demands))
	}
	if len(groups) < 2 {
		t.Fatalf("degenerate partition: %d groups", len(groups))
	}
}

func TestSolvePOPGeoFeasible(t *testing.T) {
	inst := smallWAN(t, 300, tm.Gravity, 47)
	geo, err := SolvePOPGeo(inst, MaxTotalFlow, 4, 2, true, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := geo.VerifyFeasible(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if geo.TotalFlow > exact.TotalFlow+1e-6 {
		t.Fatalf("geo %g beat exact %g", geo.TotalFlow, exact.TotalFlow)
	}
	if geo.TotalFlow <= 0 {
		t.Fatal("geo allocated nothing")
	}
}

func TestGeoVsRandomPartitioning(t *testing.T) {
	// Neither strictly dominates in general; both must be feasible and in a
	// sane band of the optimum on a granular instance.
	inst := smallWAN(t, 500, tm.Gravity, 53)
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	random, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 4, Seed: 2, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	geo, err := SolvePOPGeo(inst, MaxTotalFlow, 4, 2, true, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]*Allocation{"random": random, "geo": geo} {
		ratio := a.TotalFlow / exact.TotalFlow
		if ratio < 0.4 || ratio > 1.001 {
			t.Fatalf("%s ratio %g out of band", name, ratio)
		}
	}
}
