package te

import (
	"math"
	"math/rand"
	"sort"

	"pop/internal/graph"
	"pop/internal/lp"
	"pop/internal/tm"
	"pop/internal/topo"
)

// NCFlowOptions tune the simplified NCFlow baseline.
type NCFlowOptions struct {
	// Clusters is the number of geographic clusters; 0 picks ~√N.
	Clusters int
	// Seed controls the k-means initialization.
	Seed int64
	// LP propagates solver options.
	LP lp.Options
}

// SolveNCFlow is a simplified reimplementation of the NCFlow baseline
// (Abuzaid et al., NSDI 21) the paper compares against in Figure 9:
//
//  1. Nodes are clustered geographically (k-means on coordinates).
//  2. Intra-cluster commodities are solved exactly within their cluster's
//     subgraph (small LPs).
//  3. Inter-cluster commodities are aggregated per cluster pair and solved
//     on the contracted cluster graph (another small LP); the granted
//     aggregate flow is then realized greedily on the real topology along
//     each commodity's precomputed paths, subject to the capacity left over
//     by step 2.
//
// Compared to the real NCFlow this skips the iterative reconciliation
// between levels, so it loses somewhat more flow; it preserves the
// baseline's essential behaviour — faster than the exact LP, total flow
// below it — which is what Figure 9 needs.
func SolveNCFlow(inst *Instance, opts NCFlowOptions) (*Allocation, error) {
	g := inst.Topo.G
	n := g.N
	nc := opts.Clusters
	if nc <= 0 {
		nc = int(math.Max(2, math.Round(math.Sqrt(float64(n))/1.5)))
	}
	assign := kmeans(inst.Topo.Coords, nc, opts.Seed)

	residual := make([]float64, len(g.Edges))
	for i, e := range g.Edges {
		residual[i] = e.Capacity
	}
	out := newAllocation(inst)

	// --- Step 2: intra-cluster commodities, exact per-cluster LPs. ---
	intra := make(map[int][]int) // cluster -> demand indices
	var inter []int
	for j, d := range inst.Demands {
		if assign[d.Src] == assign[d.Dst] {
			c := assign[d.Src]
			intra[c] = append(intra[c], j)
		} else {
			inter = append(inter, j)
		}
	}
	clusters := make([]int, 0, len(intra))
	for c := range intra {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	lpVars := 0
	for _, c := range clusters {
		js := intra[c]
		// Sub-graph: edges fully inside cluster c.
		subG := graph.New(n)
		var edgeMap []int
		for _, e := range g.Edges {
			if assign[e.From] == c && assign[e.To] == c {
				subG.AddEdge(e.From, e.To, e.Capacity, e.Weight)
				edgeMap = append(edgeMap, e.ID)
			}
		}
		demands := make([]tm.Demand, len(js))
		for t, j := range js {
			demands[t] = inst.Demands[j]
		}
		subTopo := &topo.Topology{Name: inst.Topo.Name, G: subG, Coords: inst.Topo.Coords}
		subInst := NewInstance(subTopo, demands, inst.NumPaths)
		a, err := SolveLP(subInst, MaxTotalFlow, opts.LP)
		if err != nil {
			return nil, err
		}
		lpVars += a.LPVariables
		for t, j := range js {
			out.Flow[j] = a.Flow[t]
		}
		for se, f := range a.EdgeFlow {
			out.EdgeFlow[edgeMap[se]] += f
			residual[edgeMap[se]] -= f
		}
	}

	// --- Step 3: inter-cluster commodities on the contracted graph. ---
	if len(inter) > 0 {
		contracted := graph.New(nc)
		// Aggregate inter-cluster capacity per ordered cluster pair.
		agg := map[[2]int]float64{}
		for _, e := range g.Edges {
			ca, cb := assign[e.From], assign[e.To]
			if ca != cb {
				agg[[2]int{ca, cb}] += e.Capacity
			}
		}
		pairs := make([][2]int, 0, len(agg))
		for pr := range agg {
			pairs = append(pairs, pr)
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a][0] != pairs[b][0] {
				return pairs[a][0] < pairs[b][0]
			}
			return pairs[a][1] < pairs[b][1]
		})
		for _, pr := range pairs {
			contracted.AddEdge(pr[0], pr[1], agg[pr], 1)
		}

		// Aggregate demands per cluster pair.
		aggDem := map[[2]int]float64{}
		for _, j := range inter {
			d := inst.Demands[j]
			aggDem[[2]int{assign[d.Src], assign[d.Dst]}] += d.Amount
		}
		dPairs := make([][2]int, 0, len(aggDem))
		for pr := range aggDem {
			dPairs = append(dPairs, pr)
		}
		sort.Slice(dPairs, func(a, b int) bool {
			if dPairs[a][0] != dPairs[b][0] {
				return dPairs[a][0] < dPairs[b][0]
			}
			return dPairs[a][1] < dPairs[b][1]
		})
		cDemands := make([]tm.Demand, len(dPairs))
		for i, pr := range dPairs {
			cDemands[i] = tm.Demand{Src: pr[0], Dst: pr[1], Amount: aggDem[pr]}
		}
		cTopo := &topo.Topology{Name: "contracted", G: contracted}
		cInst := NewInstance(cTopo, cDemands, inst.NumPaths)
		cAlloc, err := SolveLP(cInst, MaxTotalFlow, opts.LP)
		if err != nil {
			return nil, err
		}
		lpVars += cAlloc.LPVariables

		// Grant each inter-cluster commodity its proportional share of the
		// aggregate, then realize it greedily on the real graph.
		grant := map[[2]int]float64{}
		for i, pr := range dPairs {
			if aggDem[pr] > 0 {
				grant[pr] = cAlloc.Flow[i] / aggDem[pr] // fraction granted
			}
		}
		// Largest first for better packing.
		sort.SliceStable(inter, func(a, b int) bool {
			return inst.Demands[inter[a]].Amount > inst.Demands[inter[b]].Amount
		})
		for _, j := range inter {
			d := inst.Demands[j]
			pr := [2]int{assign[d.Src], assign[d.Dst]}
			want := d.Amount * grant[pr]
			for pi, path := range inst.Paths[j] {
				if want <= 1e-12 {
					break
				}
				bottleneck := want
				for _, eid := range path.Edges {
					if residual[eid] < bottleneck {
						bottleneck = residual[eid]
					}
				}
				if bottleneck <= 0 {
					continue
				}
				out.PathFlow[j][pi] += bottleneck
				want -= bottleneck
				for _, eid := range path.Edges {
					residual[eid] -= bottleneck
					out.EdgeFlow[eid] += bottleneck
				}
				out.Flow[j] += bottleneck
			}
		}
	}

	// Recompute aggregates. finalize() would wipe the intra-cluster flows
	// (they are not expressed in PathFlow), so total directly.
	out.TotalFlow = 0
	out.MinFraction = math.Inf(1)
	for j, d := range inst.Demands {
		out.TotalFlow += out.Flow[j]
		if d.Amount > 0 {
			out.MinFraction = math.Min(out.MinFraction, out.Flow[j]/d.Amount)
		}
	}
	if math.IsInf(out.MinFraction, 1) {
		out.MinFraction = 0
	}
	out.LPVariables = lpVars
	return out, nil
}

// kmeans clusters 2-D points into k clusters with a few Lloyd iterations.
// Deterministic in seed; empty clusters are reseeded from the farthest
// point.
func kmeans(points [][2]float64, k int, seed int64) []int {
	n := len(points)
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][2]float64, k)
	perm := rng.Perm(n)
	for i := 0; i < k; i++ {
		centers[i] = points[perm[i]]
	}
	assign := make([]int, n)
	for iter := 0; iter < 12; iter++ {
		// Assign.
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c, ctr := range centers {
				d := sq(p[0]-ctr[0]) + sq(p[1]-ctr[1])
				if d < bd {
					best, bd = c, d
				}
			}
			assign[i] = best
		}
		// Update.
		sums := make([][2]float64, k)
		counts := make([]int, k)
		for i, p := range points {
			c := assign[i]
			sums[c][0] += p[0]
			sums[c][1] += p[1]
			counts[c]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				centers[c] = points[rng.Intn(n)]
				continue
			}
			centers[c] = [2]float64{sums[c][0] / float64(counts[c]), sums[c][1] / float64(counts[c])}
		}
	}
	return assign
}

func sq(x float64) float64 { return x * x }
