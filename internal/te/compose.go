package te

import (
	"math"
	"sort"

	"pop/internal/core"
	"pop/internal/graph"
	"pop/internal/lp"
	"pop/internal/tm"
	"pop/internal/topo"
)

// SolvePOPWithNCFlow demonstrates POP's composability (§3.4 "Composability"
// and §8: "POP and NCFlow can be used together"): POP runs as the outer
// simplifying loop — random commodity partition plus resource splitting —
// and each sub-problem is solved by the NCFlow decomposition instead of the
// exact LP. The combination keeps POP's generality while inheriting
// NCFlow's cheaper per-problem cost.
func SolvePOPWithNCFlow(inst *Instance, opts core.Options, nc NCFlowOptions) (*Allocation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	virtual := splitDemands(inst, opts.SplitT)
	groups := core.Partition(len(virtual), k, opts.Strategy, opts.Seed,
		func(i int) float64 { return virtual[i].amount })

	// Resource splitting for a sub-solver that reads capacities from the
	// topology itself: one scaled copy of the topology, shared by all
	// sub-problems (NCFlow reads Topo.G.Edges[...].Capacity directly).
	scaled := scaleTopology(inst.Topo, float64(k))

	subInsts := make([]*Instance, k)
	for p, g := range groups {
		sub := &Instance{Topo: scaled, NumPaths: inst.NumPaths}
		sub.Demands = make([]tm.Demand, len(g))
		sub.Paths = make([][]*graph.Path, len(g))
		for t, vi := range g {
			v := virtual[vi]
			od := inst.Demands[v.orig]
			sub.Demands[t] = tm.Demand{Src: od.Src, Dst: od.Dst, Amount: v.amount}
			sub.Paths[t] = inst.Paths[v.orig]
		}
		subInsts[p] = sub
	}

	subAllocs := make([]*Allocation, k)
	err := core.ParallelMap(k, opts.Parallel, func(p int) error {
		a, err := SolveNCFlow(subInsts[p], nc)
		subAllocs[p] = a
		return err
	})
	if err != nil {
		return nil, err
	}

	// Coalesce flows per original demand; edge flows sum across
	// sub-problems (each sub saw 1/k capacities, so the sum is feasible).
	out := newAllocation(inst)
	out.MinFraction = math.Inf(1)
	for p, g := range groups {
		sa := subAllocs[p]
		out.LPVariables += sa.LPVariables
		for t, vi := range g {
			orig := virtual[vi].orig
			out.Flow[orig] += sa.Flow[t]
		}
		for e, f := range sa.EdgeFlow {
			out.EdgeFlow[e] += f
		}
	}
	for j, d := range inst.Demands {
		out.TotalFlow += out.Flow[j]
		if d.Amount > 0 {
			out.MinFraction = math.Min(out.MinFraction, out.Flow[j]/d.Amount)
		}
	}
	if math.IsInf(out.MinFraction, 1) {
		out.MinFraction = 0
	}
	return out, nil
}

// GeoPartition assigns commodities to sub-problems by geographic proximity
// of their endpoints (k-means over source/destination midpoints). The paper
// leaves "assign geographically close clients and resources to the same
// sub-problem" as an alternative partitioning strategy (§3.2); this
// implements it for TE so it can be compared against random partitioning.
func GeoPartition(inst *Instance, k int, seed int64) [][]int {
	n := len(inst.Demands)
	if k > n {
		k = n
	}
	points := make([][2]float64, n)
	for j, d := range inst.Demands {
		s := inst.Topo.Coords[d.Src]
		t := inst.Topo.Coords[d.Dst]
		points[j] = [2]float64{(s[0] + t[0]) / 2, (s[1] + t[1]) / 2}
	}
	assign := kmeans(points, k, seed)
	groups := make([][]int, k)
	for j, c := range assign {
		groups[c] = append(groups[c], j)
	}
	// kmeans can leave empty clusters; drop them deterministically (POP
	// sub-problems tolerate unequal group counts).
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			sort.Ints(g)
			out = append(out, g)
		}
	}
	return out
}

// SolvePOPGeo runs POP with the geographic partitioner instead of a random
// one (resource splitting unchanged).
func SolvePOPGeo(inst *Instance, obj Objective, k int, seed int64, parallel bool, lpOpts lp.Options) (*Allocation, error) {
	groups := GeoPartition(inst, k, seed)
	k = len(groups)

	subInsts := make([]*Instance, k)
	for p, g := range groups {
		sub := &Instance{Topo: inst.Topo, NumPaths: inst.NumPaths}
		sub.Demands = make([]tm.Demand, len(g))
		sub.Paths = make([][]*graph.Path, len(g))
		for t, j := range g {
			sub.Demands[t] = inst.Demands[j]
			sub.Paths[t] = inst.Paths[j]
		}
		subInsts[p] = sub
	}
	subAllocs := make([]*Allocation, k)
	err := core.ParallelMap(k, parallel, func(p int) error {
		a, err := solveScaled(subInsts[p], obj, float64(k), nil, lpOpts)
		subAllocs[p] = a
		return err
	})
	if err != nil {
		return nil, err
	}
	out := newAllocation(inst)
	for p, g := range groups {
		sa := subAllocs[p]
		out.LPVariables += sa.LPVariables
		for t, j := range g {
			for pi, f := range sa.PathFlow[t] {
				out.PathFlow[j][pi] += f
			}
		}
	}
	out.finalize(inst)
	return out, nil
}

// scaleTopology clones the topology with every edge capacity divided by f.
func scaleTopology(t *topo.Topology, f float64) *topo.Topology {
	g := t.G.Clone()
	for i := range g.Edges {
		g.Edges[i].Capacity /= f
	}
	return &topo.Topology{Name: t.Name, G: g, Coords: t.Coords}
}
