package te

import (
	"math"
	"testing"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/tm"
	"pop/internal/topo"
)

func tinyInstance(t *testing.T, commodities int, model tm.Model) *Instance {
	t.Helper()
	tp := topo.Tiny()
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: model,
		TotalDemand: tp.TotalCapacity() * 0.5, Seed: 11,
	})
	return NewInstance(tp, ds, 4)
}

func smallWAN(t *testing.T, commodities int, model tm.Model, seed int64) *Instance {
	t.Helper()
	tp := topo.GenerateScaled("Deltacom", 0.3) // ~34 nodes
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: commodities, Model: model,
		TotalDemand: tp.TotalCapacity() * 0.4, Seed: seed,
	})
	return NewInstance(tp, ds, 4)
}

func TestExactLPFeasibleAndPositive(t *testing.T) {
	inst := tinyInstance(t, 12, tm.Uniform)
	a, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyFeasible(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
	if a.TotalFlow <= 0 {
		t.Fatal("no flow allocated")
	}
}

func TestExactLPSaturatesSingleLink(t *testing.T) {
	// One demand over a single bottleneck link: flow = min(demand, capacity).
	tp := topo.Tiny()
	ds := []tm.Demand{{Src: 0, Dst: 1, Amount: 25}} // link capacity 10
	inst := NewInstance(tp, ds, 4)
	a, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 0→1 direct (cap 10) plus 0→3→4→1 (cap 10) = 20 achievable.
	if a.TotalFlow < 19.9 || a.TotalFlow > 20.1 {
		t.Fatalf("total flow = %g, want ≈20", a.TotalFlow)
	}
}

func TestConcurrentFlowObjective(t *testing.T) {
	inst := tinyInstance(t, 10, tm.Uniform)
	a, err := SolveLP(inst, MaxConcurrentFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyFeasible(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
	if a.MinFraction <= 0 || a.MinFraction > 1+1e-9 {
		t.Fatalf("min fraction = %g", a.MinFraction)
	}
	// Concurrent-flow optimum must weakly dominate the max-flow solution's
	// min fraction.
	b, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MinFraction+1e-6 < b.MinFraction {
		t.Fatalf("concurrent %g < max-flow %g", a.MinFraction, b.MinFraction)
	}
}

func TestPOPFeasibleAndNearOptimal(t *testing.T) {
	// Quality depends on granularity (condition 2 of §2): with 600
	// commodities on a ~34-node WAN, POP-2 lands within a few percent of
	// optimal and POP-4 within ~10% (the paper's near-optimal regime needs
	// its 10⁵–10⁶ commodity scale; the trend is what we assert here).
	inst := smallWAN(t, 600, tm.Gravity, 3)
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	minRatio := map[int]float64{1: 0.999, 2: 0.93, 4: 0.85}
	for _, k := range []int{1, 2, 4} {
		a, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: k, Seed: 1, Parallel: true}, lp.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := a.VerifyFeasible(inst, 1e-6); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		ratio := a.TotalFlow / exact.TotalFlow
		if ratio > 1+1e-6 {
			t.Fatalf("k=%d: POP beat the exact optimum: %g", k, ratio)
		}
		if ratio < minRatio[k] {
			t.Fatalf("k=%d: POP ratio too low: %g < %g", k, ratio, minRatio[k])
		}
	}
}

func TestPOPK1MatchesExact(t *testing.T) {
	inst := tinyInstance(t, 8, tm.Uniform)
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 1, Seed: 9}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalFlow-exact.TotalFlow) > 1e-6*(1+exact.TotalFlow) {
		t.Fatalf("POP-1 %g != exact %g", a.TotalFlow, exact.TotalFlow)
	}
}

func TestPOPParallelMatchesSerial(t *testing.T) {
	inst := smallWAN(t, 40, tm.Uniform, 5)
	serial, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 4, Seed: 2}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 4, Seed: 2, Parallel: true}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.TotalFlow-parallel.TotalFlow) > 1e-9*(1+serial.TotalFlow) {
		t.Fatalf("parallel %g != serial %g", parallel.TotalFlow, serial.TotalFlow)
	}
}

func TestPOPVariableReduction(t *testing.T) {
	inst := smallWAN(t, 60, tm.Uniform, 7)
	exact, _ := SolveLP(inst, MaxTotalFlow, lp.Options{})
	a, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 4, Seed: 1}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With k sub-problems each LP holds ~1/k of the commodity-path vars;
	// totals match (resource splitting does not duplicate variables).
	if a.LPVariables > exact.LPVariables+4 {
		t.Fatalf("POP variables %d > exact %d", a.LPVariables, exact.LPVariables)
	}
}

func TestClientSplittingHelpsSkewedTraffic(t *testing.T) {
	inst := smallWAN(t, 50, tm.Poisson, 13)
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	noSplit, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 8, Seed: 3}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	withSplit, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 8, Seed: 3, SplitT: 0.75}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := withSplit.VerifyFeasible(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
	rNo := noSplit.TotalFlow / exact.TotalFlow
	rSplit := withSplit.TotalFlow / exact.TotalFlow
	if rSplit < rNo-1e-9 {
		t.Fatalf("client splitting hurt: %g vs %g", rSplit, rNo)
	}
}

func TestShardedCollapsesAtHighK(t *testing.T) {
	inst := smallWAN(t, 40, tm.Gravity, 17)
	popA, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: 8, Seed: 3}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := SolveSharded(inst, MaxTotalFlow, core.Options{K: 8, Seed: 3}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if shard.TotalFlow > popA.TotalFlow {
		t.Fatalf("sharded %g should lose to resource splitting %g at k=8",
			shard.TotalFlow, popA.TotalFlow)
	}
}

func TestCSPFFeasibleAndBelowOptimal(t *testing.T) {
	inst := smallWAN(t, 50, tm.Gravity, 19)
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := SolveCSPF(inst)
	if err := a.VerifyFeasible(inst, 1e-9); err != nil {
		t.Fatal(err)
	}
	if a.TotalFlow > exact.TotalFlow+1e-6 {
		t.Fatalf("CSPF %g beat exact %g", a.TotalFlow, exact.TotalFlow)
	}
	if a.TotalFlow <= 0 {
		t.Fatal("CSPF allocated nothing")
	}
}

func TestNCFlowFeasibleAndBelowOptimal(t *testing.T) {
	inst := smallWAN(t, 50, tm.Gravity, 23)
	exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolveNCFlow(inst, NCFlowOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility: edge loads within capacity (PathFlow-based verify does
	// not apply because intra-cluster flows are tracked only in EdgeFlow).
	for _, e := range inst.Topo.G.Edges {
		if a.EdgeFlow[e.ID] > e.Capacity+1e-6*(1+e.Capacity) {
			t.Fatalf("edge %d over capacity: %g > %g", e.ID, a.EdgeFlow[e.ID], e.Capacity)
		}
	}
	if a.TotalFlow > exact.TotalFlow+1e-6 {
		t.Fatalf("NCFlow %g beat exact %g", a.TotalFlow, exact.TotalFlow)
	}
	if a.TotalFlow <= 0 {
		t.Fatal("NCFlow allocated nothing")
	}
}

func TestPOPConcurrentFlow(t *testing.T) {
	inst := smallWAN(t, 30, tm.Uniform, 29)
	exact, err := SolveLP(inst, MaxConcurrentFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolvePOP(inst, MaxConcurrentFlow, core.Options{K: 4, Seed: 5}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyFeasible(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
	if a.MinFraction > exact.MinFraction+1e-6 {
		t.Fatalf("POP fraction %g beat exact %g", a.MinFraction, exact.MinFraction)
	}
}

func TestUnroutableDemand(t *testing.T) {
	// A demand with no path (disconnected node pair) must get zero flow and
	// not break the LP.
	tp := topo.Tiny()
	ds := []tm.Demand{{Src: 0, Dst: 5, Amount: 3}}
	inst := NewInstance(tp, ds, 2)
	if len(inst.Paths[0]) == 0 {
		t.Fatal("tiny grid should route 0→5") // sanity: grid is connected
	}
	// Make a genuinely unroutable one: graph with an isolated node.
	g2 := topo.Tiny()
	ds2 := []tm.Demand{{Src: 0, Dst: 0, Amount: 0}}
	inst2 := NewInstance(g2, ds2, 2)
	a, err := SolveLP(inst2, MaxTotalFlow, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFlow != 0 {
		t.Fatalf("flow = %g for empty instance", a.TotalFlow)
	}
}

func TestInstanceVariableCount(t *testing.T) {
	inst := tinyInstance(t, 10, tm.Uniform)
	want := 0
	for _, ps := range inst.Paths {
		want += len(ps)
	}
	if inst.NumVariables() != want {
		t.Fatalf("NumVariables = %d, want %d", inst.NumVariables(), want)
	}
}
