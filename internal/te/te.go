// Package te implements the traffic engineering case study from §4.2 of the
// POP paper: path-based multi-commodity flow over a WAN topology, with the
// two objectives the paper evaluates (maximize total flow, maximize
// concurrent flow), an exact LP formulation, the POP adapter (resource
// splitting plus random commodity partitioning plus optional client
// splitting), and two baselines (CSPF and a simplified NCFlow).
package te

import (
	"fmt"
	"math"

	"pop/internal/graph"
	"pop/internal/lp"
	"pop/internal/tm"
	"pop/internal/topo"
)

// Objective selects the TE optimization goal.
type Objective int8

const (
	// MaxTotalFlow maximizes Σ_j A_j (paper §4.2, "Maximize Total Flow").
	MaxTotalFlow Objective = iota
	// MaxConcurrentFlow maximizes min_j A_j/D_j, the minimum fractional
	// flow plotted in Figure 12.
	MaxConcurrentFlow
)

func (o Objective) String() string {
	switch o {
	case MaxTotalFlow:
		return "max-total-flow"
	case MaxConcurrentFlow:
		return "max-concurrent-flow"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Instance is a TE problem: a topology, a set of commodities, and the
// precomputed path set P (up to NumPaths shortest paths per commodity, as in
// NCFlow and the paper).
type Instance struct {
	Topo     *topo.Topology
	Demands  []tm.Demand
	NumPaths int

	// Paths[j] lists the candidate paths of demand j.
	Paths [][]*graph.Path
}

// PathCache memoizes k-shortest path sets per (src, dst) pair over one
// topology. It is the shared path-computation core of NewInstance and of the
// online TE engine, which routes commodities as they arrive instead of
// against a frozen demand list. Endpoints outside the topology yield an
// empty path set rather than a panic, so online callers can feed it
// unvalidated demands.
type PathCache struct {
	t     *topo.Topology
	k     int
	cache map[[2]int][]*graph.Path
}

// NewPathCache creates a cache computing up to numPaths shortest paths per
// commodity (the paper's path budget; ≤ 0 selects the default of 4).
func NewPathCache(t *topo.Topology, numPaths int) *PathCache {
	if numPaths <= 0 {
		numPaths = 4
	}
	return &PathCache{t: t, k: numPaths, cache: map[[2]int][]*graph.Path{}}
}

// NumPaths reports the per-commodity path budget.
func (pc *PathCache) NumPaths() int { return pc.k }

// Topology returns the topology the cache routes over.
func (pc *PathCache) Topology() *topo.Topology { return pc.t }

// Paths returns the cached path set from src to dst, computing it on first
// use. Disconnected or out-of-range endpoints get an empty set.
func (pc *PathCache) Paths(src, dst int) []*graph.Path {
	key := [2]int{src, dst}
	if p, ok := pc.cache[key]; ok {
		return p
	}
	var p []*graph.Path
	if src >= 0 && dst >= 0 && src < pc.t.G.N && dst < pc.t.G.N {
		p = pc.t.G.KShortestPaths(src, dst, pc.k)
	}
	pc.cache[key] = p
	return p
}

// NewInstance precomputes paths for every commodity. Commodities whose
// endpoints are disconnected get an empty path list (and can never receive
// flow). Path sets are cached per (src, dst) pair.
func NewInstance(t *topo.Topology, demands []tm.Demand, numPaths int) *Instance {
	pc := NewPathCache(t, numPaths)
	inst := &Instance{Topo: t, Demands: demands, NumPaths: pc.NumPaths()}
	inst.Paths = make([][]*graph.Path, len(demands))
	for j, d := range demands {
		inst.Paths[j] = pc.Paths(d.Src, d.Dst)
	}
	return inst
}

// NumVariables reports the LP variable count of the exact formulation (one
// per commodity-path pair), the quantity Figure 3 of the paper reasons
// about.
func (inst *Instance) NumVariables() int {
	n := 0
	for _, ps := range inst.Paths {
		n += len(ps)
	}
	return n
}

// Allocation is the result of a TE solve.
type Allocation struct {
	// Flow[j] is the total flow granted to demand j across its paths.
	Flow []float64
	// PathFlow[j][p] is the flow of demand j on its p-th path.
	PathFlow [][]float64
	// EdgeFlow[e] is the aggregate flow crossing edge e.
	EdgeFlow []float64
	// TotalFlow is Σ_j Flow[j].
	TotalFlow float64
	// MinFraction is min_j Flow[j]/D_j over demands with D_j > 0.
	MinFraction float64
	// LPVariables is the number of LP variables solved (summed over
	// sub-problems for POP).
	LPVariables int
}

func newAllocation(inst *Instance) *Allocation {
	a := &Allocation{
		Flow:     make([]float64, len(inst.Demands)),
		PathFlow: make([][]float64, len(inst.Demands)),
		EdgeFlow: make([]float64, len(inst.Topo.G.Edges)),
	}
	for j := range inst.Demands {
		a.PathFlow[j] = make([]float64, len(inst.Paths[j]))
	}
	return a
}

// finalize computes the aggregate metrics from PathFlow.
func (a *Allocation) finalize(inst *Instance) {
	for e := range a.EdgeFlow {
		a.EdgeFlow[e] = 0
	}
	a.TotalFlow = 0
	a.MinFraction = math.Inf(1)
	for j := range inst.Demands {
		fj := 0.0
		for p, f := range a.PathFlow[j] {
			fj += f
			for _, eid := range inst.Paths[j][p].Edges {
				a.EdgeFlow[eid] += f
			}
		}
		a.Flow[j] = fj
		a.TotalFlow += fj
		if d := inst.Demands[j].Amount; d > 0 {
			a.MinFraction = math.Min(a.MinFraction, fj/d)
		}
	}
	if math.IsInf(a.MinFraction, 1) {
		a.MinFraction = 0
	}
}

// VerifyFeasible checks edge capacities and demand caps within tol,
// returning a descriptive error on violation. Used by tests and by the POP
// adapter's invariant checks.
func (a *Allocation) VerifyFeasible(inst *Instance, tol float64) error {
	for _, e := range inst.Topo.G.Edges {
		if a.EdgeFlow[e.ID] > e.Capacity+tol*(1+e.Capacity) {
			return fmt.Errorf("te: edge %d over capacity: %g > %g", e.ID, a.EdgeFlow[e.ID], e.Capacity)
		}
	}
	for j, d := range inst.Demands {
		if a.Flow[j] > d.Amount+tol*(1+d.Amount) {
			return fmt.Errorf("te: demand %d over-served: %g > %g", j, a.Flow[j], d.Amount)
		}
		if a.Flow[j] < -tol {
			return fmt.Errorf("te: demand %d negative flow %g", j, a.Flow[j])
		}
	}
	return nil
}

// SolveLP solves the exact path-based LP formulation from §4.2.
func SolveLP(inst *Instance, obj Objective, opts lp.Options) (*Allocation, error) {
	return solveScaled(inst, obj, 1, nil, opts)
}

// solveScaled solves the LP with edge capacities divided by capScale and,
// when sub != nil, restricted to the demand indices in sub. This is the
// common core shared by the exact solve (capScale=1, all demands) and POP
// sub-problems (capScale=k, one partition).
func solveScaled(inst *Instance, obj Objective, capScale float64, sub []int, opts lp.Options) (*Allocation, error) {
	if sub == nil {
		sub = make([]int, len(inst.Demands))
		for j := range sub {
			sub[j] = j
		}
	}
	p := lp.NewModel(lp.Maximize)

	// One variable per (demand, path).
	type varRef struct{ j, p int }
	varOf := map[varRef]int{}
	edgeRows := make(map[int][]int)      // edge id -> var indices
	edgeCoefs := make(map[int][]float64) // parallel coefficients

	objCoef := 0.0
	if obj == MaxTotalFlow {
		objCoef = 1
	}
	for _, j := range sub {
		for pi, path := range inst.Paths[j] {
			v := p.AddVariable(objCoef, 0, inst.Demands[j].Amount, "")
			varOf[varRef{j, pi}] = v
			for _, eid := range path.Edges {
				edgeRows[eid] = append(edgeRows[eid], v)
				edgeCoefs[eid] = append(edgeCoefs[eid], 1)
			}
		}
	}
	if p.NumVariables() == 0 {
		// No routable demand in this sub-problem.
		a := newAllocation(inst)
		a.finalize(inst)
		return a, nil
	}

	var tVar = -1
	if obj == MaxConcurrentFlow {
		tVar = p.AddVariable(1, 0, 1, "t")
	}

	// Demand caps: Σ_p x_{j,p} ≤ D_j, and for concurrent flow also
	// Σ_p x_{j,p} - t·D_j ≥ 0.
	for _, j := range sub {
		if len(inst.Paths[j]) == 0 {
			continue
		}
		idx := make([]int, 0, len(inst.Paths[j])+1)
		coef := make([]float64, 0, len(inst.Paths[j])+1)
		for pi := range inst.Paths[j] {
			idx = append(idx, varOf[varRef{j, pi}])
			coef = append(coef, 1)
		}
		p.AddConstraint(idx, coef, lp.LE, inst.Demands[j].Amount, "demand")
		if obj == MaxConcurrentFlow && inst.Demands[j].Amount > 0 {
			idx2 := append(append([]int(nil), idx...), tVar)
			coef2 := append(append([]float64(nil), coef...), -inst.Demands[j].Amount)
			p.AddConstraint(idx2, coef2, lp.GE, 0, "fraction")
		}
	}

	// Edge capacities (scaled for POP's resource splitting). Iterate edges
	// in ID order so the row layout — and hence the simplex pivot sequence —
	// is deterministic.
	for eid := range inst.Topo.G.Edges {
		vars, used := edgeRows[eid]
		if !used {
			continue
		}
		cap := inst.Topo.G.Edges[eid].Capacity / capScale
		p.AddConstraint(vars, edgeCoefs[eid], lp.LE, cap, "edge")
	}

	sol, err := p.SolveWithOptions(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("te: LP not optimal: %v", sol.Status)
	}

	a := newAllocation(inst)
	for _, j := range sub {
		for pi := range inst.Paths[j] {
			a.PathFlow[j][pi] = sol.X[varOf[varRef{j, pi}]]
		}
	}
	a.finalize(inst)
	a.LPVariables = p.NumVariables()
	return a, nil
}

// ConcurrentFraction computes min_j Flow[j]/D_j for demands restricted to
// the given subset (used to score POP sub-allocations).
func ConcurrentFraction(inst *Instance, a *Allocation, sub []int) float64 {
	frac := math.Inf(1)
	for _, j := range sub {
		if d := inst.Demands[j].Amount; d > 0 {
			frac = math.Min(frac, a.Flow[j]/d)
		}
	}
	if math.IsInf(frac, 1) {
		return 0
	}
	return frac
}
