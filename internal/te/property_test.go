package te

import (
	"testing"
	"testing/quick"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/tm"
	"pop/internal/topo"
)

// TestPropertyPOPAlwaysFeasibleAndBounded: for random seeds, traffic
// models, fan-outs, and splitting thresholds, the coalesced POP allocation
// is feasible and never exceeds the exact optimum.
func TestPropertyPOPAlwaysFeasibleAndBounded(t *testing.T) {
	tp := topo.GenerateScaled("Deltacom", 0.25)
	exactCache := map[int64]float64{}

	f := func(seed int64, kRaw, modelRaw, splitRaw uint8) bool {
		tmSeed := seed%4 + 1 // few distinct TMs so the exact solve caches
		model := tm.Models()[int(modelRaw)%4]
		_ = model
		ds := tm.Generate(tm.Config{
			Nodes: tp.G.N, Commodities: 150, Model: tm.Models()[int(modelRaw)%4],
			TotalDemand: tp.TotalCapacity() * 0.3, Seed: tmSeed,
		})
		inst := NewInstance(tp, ds, 4)

		cacheKey := tmSeed*10 + int64(modelRaw%4)
		exactFlow, ok := exactCache[cacheKey]
		if !ok {
			exact, err := SolveLP(inst, MaxTotalFlow, lp.Options{})
			if err != nil {
				t.Logf("exact: %v", err)
				return false
			}
			exactFlow = exact.TotalFlow
			exactCache[cacheKey] = exactFlow
		}

		k := 1 + int(kRaw)%8
		splitT := float64(splitRaw%3) * 0.5
		a, err := SolvePOP(inst, MaxTotalFlow,
			core.Options{K: k, Seed: seed, SplitT: splitT, Parallel: true}, lp.Options{})
		if err != nil {
			t.Logf("pop: %v", err)
			return false
		}
		if err := a.VerifyFeasible(inst, 1e-6); err != nil {
			t.Logf("seed=%d k=%d t=%g: %v", seed, k, splitT, err)
			return false
		}
		if a.TotalFlow > exactFlow*(1+1e-6) {
			t.Logf("seed=%d k=%d: POP %g beat exact %g", seed, k, a.TotalFlow, exactFlow)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyShardedNeverBeatsResourceSplit: across seeds, sharding the
// topology (Fig 15's ablation) never beats resource splitting at the same
// k by more than noise. (The paper's claim is one-directional and strong;
// we allow a tiny epsilon for degenerate tiny-k cases.)
func TestPropertyShardedNeverBeatsResourceSplit(t *testing.T) {
	tp := topo.GenerateScaled("Cogentco", 0.2)
	ds := tm.Generate(tm.Config{
		Nodes: tp.G.N, Commodities: 200, Model: tm.Gravity,
		TotalDemand: tp.TotalCapacity() * 0.3, Seed: 5,
	})
	inst := NewInstance(tp, ds, 4)

	f := func(seed int64, kRaw uint8) bool {
		k := 2 + int(kRaw)%7
		split, err := SolvePOP(inst, MaxTotalFlow, core.Options{K: k, Seed: seed, Parallel: true}, lp.Options{})
		if err != nil {
			return false
		}
		shard, err := SolveSharded(inst, MaxTotalFlow, core.Options{K: k, Seed: seed, Parallel: true}, lp.Options{})
		if err != nil {
			return false
		}
		return shard.TotalFlow <= split.TotalFlow*1.10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyClientSplittingPreservesDemand: total virtual demand equals
// total original demand for any threshold.
func TestPropertyClientSplittingPreservesDemand(t *testing.T) {
	tp := topo.Tiny()
	f := func(seed int64, tRaw uint8) bool {
		ds := tm.Generate(tm.Config{
			Nodes: tp.G.N, Commodities: 20, Model: tm.Poisson,
			TotalDemand: 100, Seed: seed,
		})
		inst := NewInstance(tp, ds, 2)
		splitT := float64(tRaw%20) / 10
		virtual := splitDemands(inst, splitT)
		total := 0.0
		for _, v := range virtual {
			total += v.amount
			if v.orig < 0 || v.orig >= len(ds) {
				return false
			}
		}
		return total > 99.9999 && total < 100.0001 && len(virtual) >= len(ds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
