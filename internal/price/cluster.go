package price

import (
	"fmt"
	"math"

	"pop/internal/cluster"
)

// ClusterPolicy selects which §4.1 scheduling objective a cluster-domain
// price solve approximates.
type ClusterPolicy int8

const (
	// MaxMinFairness approximates the heterogeneity-aware least-attained-
	// service policy through an alpha-fair utility (Options.Alpha) over the
	// normalized throughput ratios.
	MaxMinFairness ClusterPolicy = iota
	// ProportionalFairness is the §4.1 sum-of-logs policy, solved exactly
	// in the limit (log utility is the Eisenberg-Gale market).
	ProportionalFairness
)

func (p ClusterPolicy) String() string {
	switch p {
	case MaxMinFairness:
		return "max-min-fairness"
	case ProportionalFairness:
		return "proportional-fairness"
	}
	return fmt.Sprintf("ClusterPolicy(%d)", int8(p))
}

// clusterDomain prices the GPU-type capacities: client j's best response
// maximizes φ(Σ_i t_ji·x_i) − Σ_i z_j·price_i·x_i over Σ_i x_i ≤ 1, x ≥ 0,
// where t is the (policy-normalized) throughput row. By the KKT conditions
// the optimum is supported on at most two resources, so enumerating
// singleton and pair supports is exact — each call is O(r²) closed forms,
// no solver.
type clusterDomain struct {
	t     []float64 // n×r row-major normalized throughputs
	z     []float64 // per-job resource scale z_j
	w     []float64 // log-utility weights (alpha == 0)
	cap   []float64
	n, r  int
	alpha float64 // > 0: alpha-fair utility u^(1-α)/(1-α); 0: w·log(u)
	hint  float64

	// Alpha-fair fast path (alpha > 0): the per-iteration cost of a best
	// response is dominated by math.Pow, so everything price-independent is
	// hoisted here at build time —
	//   tPow[j][i]  = t_ji^(1/α − 1)  (interior singleton demand factor)
	//   tUtil[j][i] = t_ji^(1−α)      (clamped singleton utility)
	//   zRoot[j]    = z_j^(−1/α)
	// and pRoot_i = price_i^(−1/α) is refreshed once per iteration by
	// PrepareIteration instead of once per client. When α is a power of two
	// the remaining per-pair root s^(−1/α) runs as a √-chain (sqrtSteps
	// hardware square roots) instead of a Pow call.
	tPow, tUtil []float64
	zRoot       []float64
	pRoot       []float64
	// Pair supports factor the same way: the stationary utility of pair
	// (a, b) is u = (dc/dt)^(−1/α) = z^(−1/α)·|Δp|^(−1/α)·|Δt|^(1/α), so
	// dtRoot holds |t_a−t_b|^(1/α) per client pair (build time) and
	// pairRoot |p_a−p_b|^(−1/α) per pair (each PrepareIteration) — no roots
	// remain in the per-client hot path.
	dtRoot    []float64 // n×npairs row-major
	pairRoot  []float64 // npairs
	npairs    int
	sqrtSteps int // k with α == 2^k, or 0 to fall back to math.Pow
}

func (d *clusterDomain) Dims() (int, int)       { return d.n, d.r }
func (d *clusterDomain) Capacity(out []float64) { copy(out, d.cap) }
func (d *clusterDomain) DemandHint() float64    { return d.hint }

func (d *clusterDomain) phi(j int, u float64) float64 {
	if u <= 0 {
		return math.Inf(-1)
	}
	if d.alpha > 0 {
		return math.Pow(u, 1-d.alpha) / (1 - d.alpha)
	}
	return d.w[j] * math.Log(u)
}

// invPhiPrime inverts the marginal utility: the u with φ'(u) = s, s > 0.
func (d *clusterDomain) invPhiPrime(j int, s float64) float64 {
	if d.alpha > 0 {
		return math.Pow(s, -1/d.alpha)
	}
	return d.w[j] / s
}

func (d *clusterDomain) BestResponse(j int, price []float64, out []float64) {
	if d.alpha > 0 {
		d.bestResponseAlpha(j, price, out)
		return
	}
	r := d.r
	t := d.t[j*r : (j+1)*r]
	z := d.z[j]
	for i := range out {
		out[i] = 0
	}
	bestVal := math.Inf(-1)
	bestA, bestB := -1, -1
	var xA, xB float64

	// Singletons: t_i·φ'(t_i·x) = c_i, clamped to the time budget.
	for i := 0; i < r; i++ {
		if t[i] <= 0 {
			continue
		}
		ci := z * price[i]
		x := 1.0
		if ci > 0 {
			x = math.Min(1, d.invPhiPrime(j, ci/t[i])/t[i])
		}
		if x <= 0 {
			continue
		}
		if v := d.phi(j, t[i]*x) - ci*x; v > bestVal {
			bestVal, bestA, bestB, xA, xB = v, i, -1, x, 0
		}
	}
	// Pairs on the time boundary x_a + x_b = 1: stationarity gives
	// φ'(u*) = (c_a-c_b)/(t_a-t_b); interior mixes only.
	for a := 0; a < r; a++ {
		if t[a] <= 0 {
			continue
		}
		ca := z * price[a]
		for b := a + 1; b < r; b++ {
			if t[b] <= 0 {
				continue
			}
			cb := z * price[b]
			dt, dc := t[a]-t[b], ca-cb
			if dt == 0 || dc == 0 || (dt > 0) != (dc > 0) {
				continue // degenerate or dominated: singletons cover it
			}
			u := d.invPhiPrime(j, dc/dt)
			xa := (u - t[b]) / dt
			if xa <= 0 || xa >= 1 {
				continue // boundary cases are the singleton candidates
			}
			xb := 1 - xa
			if v := d.phi(j, t[a]*xa+t[b]*xb) - ca*xa - cb*xb; v > bestVal {
				bestVal, bestA, bestB, xA, xB = v, a, b, xa, xb
			}
		}
	}
	if bestA >= 0 {
		out[bestA] = z * xA
		if bestB >= 0 {
			out[bestB] = z * xB
		}
	}
}

// PrepareIteration caches price_i^(−1/α) for the iteration's best responses
// (alpha-fair fast path). Solve calls it single-threaded before each fan-out.
func (d *clusterDomain) PrepareIteration(price []float64) {
	if d.alpha <= 0 {
		return
	}
	for i, p := range price {
		d.pRoot[i] = d.invAlphaRoot(p)
	}
	pi := 0
	for a := 0; a < d.r; a++ {
		for b := a + 1; b < d.r; b++ {
			if dp := math.Abs(price[a] - price[b]); dp > 0 {
				d.pairRoot[pi] = d.invAlphaRoot(dp)
			} else {
				d.pairRoot[pi] = 0 // equal prices: pair degenerate, skipped
			}
			pi++
		}
	}
}

// invAlphaRoot computes s^(−1/α): a √-chain when α is a power of two (the
// default 32 costs five hardware square roots), math.Pow otherwise.
func (d *clusterDomain) invAlphaRoot(s float64) float64 {
	if d.sqrtSteps > 0 {
		for k := 0; k < d.sqrtSteps; k++ {
			s = math.Sqrt(s)
		}
		return 1 / s
	}
	return math.Pow(s, -1/d.alpha)
}

// bestResponseAlpha is the alpha-fair best response with all price- and
// client-invariant powers hoisted (see the clusterDomain field comment).
// Values compare through the stationarity identity u^(1−α) = u·φ'(u), so a
// candidate costs multiplies — plus one root per admissible pair.
func (d *clusterDomain) bestResponseAlpha(j int, price []float64, out []float64) {
	r := d.r
	t := d.t[j*r : (j+1)*r]
	tPow := d.tPow[j*r : (j+1)*r]
	tUtil := d.tUtil[j*r : (j+1)*r]
	z := d.z[j]
	zr := d.zRoot[j]
	for i := range out {
		out[i] = 0
	}
	// φ(u) − cost at the interior stationary point φ'(u) = s reduces to
	// (α/(1−α))·u·s − K, so candidates compare without evaluating powers.
	scale := d.alpha / (1 - d.alpha)
	bestVal := math.Inf(-1)
	bestA, bestB := -1, -1
	var xA, xB float64

	for i := 0; i < r; i++ {
		if t[i] <= 0 {
			continue
		}
		ci := z * price[i]
		// Interior singleton demand: x = (c_i/t_i)^(−1/α)/t_i, factored as
		// z^(−1/α)·p_i^(−1/α)·t_i^(1/α−1).
		x := zr * d.pRoot[i] * tPow[i]
		var v float64
		if x < 1 {
			if x <= 0 {
				continue
			}
			// v = (α/(1−α))·u·(c_i/t_i) at stationarity, u = t_i·x.
			v = scale * t[i] * x * (ci / t[i])
		} else {
			// Clamped to the full time budget: v = t_i^(1−α)/(1−α) − c_i.
			x = 1
			v = tUtil[i]/(1-d.alpha) - ci
		}
		if v > bestVal {
			bestVal, bestA, bestB, xA, xB = v, i, -1, x, 0
		}
	}
	dtRoot := d.dtRoot[j*d.npairs : (j+1)*d.npairs]
	pi := 0
	for a := 0; a < r; a++ {
		ca := z * price[a]
		for b := a + 1; b < r; b++ {
			rt := dtRoot[pi] * d.pairRoot[pi]
			pi++
			if rt == 0 || t[a] <= 0 || t[b] <= 0 {
				continue
			}
			cb := z * price[b]
			dt, dc := t[a]-t[b], ca-cb
			if dt == 0 || dc == 0 || (dt > 0) != (dc > 0) {
				continue // degenerate or dominated: singletons cover it
			}
			s := dc / dt
			u := zr * rt
			xa := (u - t[b]) / dt
			if xa <= 0 || xa >= 1 {
				continue // boundary cases are the singleton candidates
			}
			// v = (α/(1−α))·u·s − K with K = c_b − t_b·s.
			if v := scale*u*s - (cb - t[b]*s); v > bestVal {
				bestVal, bestA, bestB, xA, xB = v, a, b, xa, 1-xa
			}
		}
	}
	if bestA >= 0 {
		out[bestA] = z * xA
		if bestB >= 0 {
			out[bestB] = z * xB
		}
	}
}

// ScaleElasticity reports the market's aggregate demand elasticity under
// a uniform price rescale: interior alpha-fair demand scales as p^(−1/α),
// and the log-utility (prop-fair) demand as p^(−1), so Solve's common-mode
// Newton rescale is exact in the interior for both policies.
func (d *clusterDomain) ScaleElasticity() float64 {
	if d.alpha > 0 {
		return d.alpha
	}
	return 1
}

// prepareAlpha fills the alpha-fair fast-path caches.
func (d *clusterDomain) prepareAlpha() {
	if d.alpha <= 0 {
		return
	}
	d.tPow = make([]float64, len(d.t))
	d.tUtil = make([]float64, len(d.t))
	d.zRoot = make([]float64, d.n)
	d.pRoot = make([]float64, d.r)
	d.npairs = d.r * (d.r - 1) / 2
	d.dtRoot = make([]float64, d.n*d.npairs)
	d.pairRoot = make([]float64, d.npairs)
	if a := d.alpha; a == math.Trunc(a) && a >= 2 {
		for k, v := 0, a; v >= 2; k, v = k+1, v/2 {
			if v == 2 {
				d.sqrtSteps = k + 1
				break
			}
			if math.Mod(v, 2) != 0 {
				break
			}
		}
	}
	for idx, t := range d.t {
		if t > 0 {
			d.tPow[idx] = math.Pow(t, 1/d.alpha-1)
			d.tUtil[idx] = math.Pow(t, 1-d.alpha)
		}
	}
	for j, z := range d.z {
		if z > 0 {
			d.zRoot[j] = d.invAlphaRoot(z)
		}
	}
	for j := 0; j < d.n; j++ {
		t := d.t[j*d.r : (j+1)*d.r]
		pi := 0
		for a := 0; a < d.r; a++ {
			for b := a + 1; b < d.r; b++ {
				if dt := math.Abs(t[a] - t[b]); dt > 0 {
					// |Δt|^(1/α) = 1/invAlphaRoot(|Δt|).
					d.dtRoot[j*d.npairs+pi] = 1 / d.invAlphaRoot(dt)
				}
				pi++
			}
		}
	}
}

// newMaxMinDomain normalizes throughputs the way the max-min LP does —
// t̃_ji = T_ji/(w_j·eqThr_j·z_j), so a unit of utility is a unit of the
// normalized ratio the policy maximizes the minimum of — and applies the
// alpha-fair utility. Degenerate jobs (zero equal-share throughput) get a
// zero row and demand nothing, mirroring the LP skipping their fair row.
func newMaxMinDomain(jobs []cluster.Job, c cluster.Cluster, alpha float64) *clusterDomain {
	n, r := len(jobs), c.NumTypes()
	d := &clusterDomain{
		t:     make([]float64, n*r),
		z:     make([]float64, n),
		cap:   append([]float64(nil), c.NumGPUs...),
		n:     n,
		r:     r,
		alpha: alpha,
	}
	eq := cluster.EqualShare(jobs, c)
	for idx, j := range jobs {
		d.z[idx] = j.Scale
		d.hint += j.Scale
		denom := j.Weight * cluster.EffectiveThroughput(j, eq[idx]) * j.Scale
		if denom <= 0 {
			continue
		}
		for i := 0; i < r; i++ {
			d.t[idx*r+i] = j.Throughput[i] / denom
		}
	}
	d.prepareAlpha()
	return d
}

// newPropFairDomain uses raw throughputs with the weighted log utility —
// the Eisenberg-Gale market whose equilibrium is the proportional-fair
// optimum.
func newPropFairDomain(jobs []cluster.Job, c cluster.Cluster) *clusterDomain {
	n, r := len(jobs), c.NumTypes()
	d := &clusterDomain{
		t:   make([]float64, n*r),
		z:   make([]float64, n),
		w:   make([]float64, n),
		cap: append([]float64(nil), c.NumGPUs...),
		n:   n,
		r:   r,
	}
	for idx, j := range jobs {
		d.z[idx] = j.Scale
		d.w[idx] = j.Weight
		d.hint += j.Scale
		for i := 0; i < r; i++ {
			d.t[idx*r+i] = j.Throughput[i]
		}
	}
	return d
}

// SolveMaxMin approximates cluster.MaxMinFairness by price discovery: no
// LP, per-job closed-form best responses. The returned Solution carries the
// prices (warm start for the next round) and convergence accounting.
func SolveMaxMin(jobs []cluster.Job, c cluster.Cluster, opts Options) (*cluster.Allocation, *Solution, error) {
	if opts.Alpha == 0 {
		opts.Alpha = 32
	}
	if opts.Step == 0 {
		// Alpha-fair demand elasticity is 1/α, so an unset step scales with
		// Alpha to keep the effective price motion constant across exponents.
		opts.Step = opts.Alpha / 12
	}
	return solveCluster(newMaxMinDomain(jobs, c, opts.Alpha), jobs, c, opts)
}

// SolvePropFair approximates cluster.ProportionalFairness by price
// discovery over the Eisenberg-Gale market.
func SolvePropFair(jobs []cluster.Job, c cluster.Cluster, opts Options) (*cluster.Allocation, *Solution, error) {
	return solveCluster(newPropFairDomain(jobs, c), jobs, c, opts)
}

func solveCluster(d *clusterDomain, jobs []cluster.Job, c cluster.Cluster, opts Options) (*cluster.Allocation, *Solution, error) {
	sol, err := Solve(d, opts)
	if err != nil {
		return nil, nil, err
	}
	return clusterAllocation(jobs, c, sol), sol, nil
}

// clusterAllocation converts averaged demands back to time fractions and
// projects onto the feasible polytope: rows are clamped to the unit time
// budget (best responses already respect it; averaging preserves it), then
// overdemanded capacity columns are scaled down, which only shrinks rows.
func clusterAllocation(jobs []cluster.Job, c cluster.Cluster, sol *Solution) *cluster.Allocation {
	n, r := len(jobs), c.NumTypes()
	a := &cluster.Allocation{
		X:      make([][]float64, n),
		EffThr: make([]float64, n),
	}
	used := make([]float64, r)
	for idx, j := range jobs {
		row := make([]float64, r)
		sum := 0.0
		if z := j.Scale; z > 0 {
			dem := sol.ClientDemand(idx)
			for i := 0; i < r; i++ {
				x := dem[i] / z
				if x < 0 {
					x = 0
				}
				row[i] = x
				sum += x
			}
		}
		if sum > 1 {
			for i := range row {
				row[i] /= sum
			}
		}
		for i := range row {
			used[i] += j.Scale * row[i]
		}
		a.X[idx] = row
	}
	for i := 0; i < r; i++ {
		if used[i] > c.NumGPUs[i] && used[i] > 0 {
			f := c.NumGPUs[i] / used[i]
			for idx := range jobs {
				a.X[idx][i] *= f
			}
		}
	}
	for idx, j := range jobs {
		a.EffThr[idx] = cluster.EffectiveThroughput(j, a.X[idx])
	}
	return a
}

// MaxMinObjective evaluates the max-min policy objective — the minimum
// normalized throughput ratio over non-degenerate jobs — for comparing a
// price allocation against the LP optimum.
func MaxMinObjective(jobs []cluster.Job, c cluster.Cluster, a *cluster.Allocation) float64 {
	eq := cluster.EqualShare(jobs, c)
	min := math.Inf(1)
	for idx, j := range jobs {
		eqThr := cluster.EffectiveThroughput(j, eq[idx])
		if eqThr <= 0 {
			continue
		}
		if ratio := a.EffThr[idx] / (j.Weight * eqThr * j.Scale); ratio < min {
			min = ratio
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}
