package price

import (
	"math"
	"testing"

	"pop/internal/cluster"
	"pop/internal/lb"
)

// stepRounds plays a low-churn round sequence against an engine: each round
// replaces a couple of jobs and jitters one weight, the membership churn
// staying well under ColdChurnFrac.
func stepRounds(t *testing.T, e *ClusterEngine, c cluster.Cluster, rounds int) []float64 {
	t.Helper()
	jobs := cluster.GenerateJobs(160, 21, 0.3)
	nextID := 10_000
	objs := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		if r > 0 {
			// Two departures, two arrivals, one in-place update.
			fresh := cluster.GenerateJobs(2, int64(100+r), 0.3)
			for i := range fresh {
				fresh[i].ID = nextID
				nextID++
			}
			jobs = append(jobs[2:], fresh...)
			jobs[0].Weight *= 1.1
		}
		a, err := e.Step(jobs, c)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if err := cluster.VerifyFeasible(jobs, c, a, 1e-6); err != nil {
			t.Fatalf("round %d: infeasible: %v", r, err)
		}
		objs = append(objs, e.Objective())
	}
	return objs
}

func TestClusterEngineWarmVsCold(t *testing.T) {
	c := cluster.NewCluster(32, 32, 32)
	warmEng, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 21, Parallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	coldEng, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 21, Parallel: true}, NoWarmPrice: true})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	warmObjs := stepRounds(t, warmEng, c, rounds)
	coldObjs := stepRounds(t, coldEng, c, rounds)

	ws, cs := warmEng.Stats(), coldEng.Stats()
	t.Logf("warm engine: %+v", ws)
	t.Logf("cold engine: %+v", cs)
	if ws.WarmPriceRounds != rounds-1 || ws.ColdPriceRounds != 1 {
		t.Errorf("warm engine rounds: got warm=%d cold=%d, want %d/1", ws.WarmPriceRounds, ws.ColdPriceRounds, rounds-1)
	}
	if cs.WarmPriceRounds != 0 || cs.ColdPriceRounds != rounds {
		t.Errorf("cold engine rounds: got warm=%d cold=%d, want 0/%d", cs.WarmPriceRounds, cs.ColdPriceRounds, rounds)
	}
	// Warm and cold solve the same market to the same tolerance: the policy
	// objectives must agree within a small band even though the iteration
	// paths differ.
	for r := range warmObjs {
		if diff := math.Abs(warmObjs[r]-coldObjs[r]) / math.Max(coldObjs[r], 1e-9); diff > 0.05 {
			t.Errorf("round %d: warm objective %.4f vs cold %.4f diverge %.1f%%",
				r, warmObjs[r], coldObjs[r], 100*diff)
		}
	}
	// And warm rounds must be cheaper: total iterations strictly below the
	// all-cold engine's.
	if ws.Iterations*2 >= cs.Iterations {
		t.Errorf("warm engine spent %d iterations, cold %d: want at least a 2x cut", ws.Iterations, cs.Iterations)
	}
}

func TestClusterEngineChurnFallback(t *testing.T) {
	c := cluster.NewCluster(16, 16, 16)
	e, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	jobs := cluster.GenerateJobs(80, 3, 0.3)
	if _, err := e.Step(jobs, c); err != nil {
		t.Fatal(err)
	}
	// Replace half the jobs: membership churn 50% ≥ the default 25% drops
	// the carried prices.
	fresh := cluster.GenerateJobs(40, 999, 0.3)
	for i := range fresh {
		fresh[i].ID = 20_000 + i
	}
	if _, err := e.Step(append(jobs[40:], fresh...), c); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ColdPriceRounds != 2 || st.WarmPriceRounds != 0 {
		t.Errorf("heavy churn should solve cold: %+v", st)
	}

	// A third, low-churn round goes warm again.
	if _, err := e.Step(append(jobs[40:], fresh...), c); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.WarmPriceRounds != 1 {
		t.Errorf("low-churn round should solve warm: %+v", st)
	}
}

func TestClusterEngineCapacityRescale(t *testing.T) {
	c := cluster.NewCluster(16, 16, 16)
	e, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	jobs := cluster.GenerateJobs(60, 9, 0.3)
	if _, err := e.Step(jobs, c); err != nil {
		t.Fatal(err)
	}
	p := append([]float64(nil), e.price...)
	// Halving every capacity doubles the carried prices and stays warm.
	c2 := cluster.NewCluster(8, 8, 8)
	if _, err := e.Step(jobs, c2); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.WarmPriceRounds != 1 {
		t.Errorf("capacity change should rescale prices, not drop them: %+v", st)
	}
	_ = p
	// MarkAllDirty forces the next round cold.
	e.MarkAllDirty()
	if _, err := e.Step(jobs, c2); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ColdPriceRounds != 2 {
		t.Errorf("MarkAllDirty should force a cold round: %+v", st)
	}
}

func TestClusterEnginePropFair(t *testing.T) {
	c := cluster.NewCluster(16, 16, 16)
	e, err := NewClusterEngine(c, ProportionalFairness, EngineOptions{Solver: Options{Seed: 13, Parallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	stepRounds(t, e, c, 3)
	if st := e.Stats(); st.Rounds != 3 || st.WarmPriceRounds != 2 {
		t.Errorf("propfair engine rounds: %+v", st)
	}
	if _, err := NewClusterEngine(c, ClusterPolicy(99), EngineOptions{}); err == nil {
		t.Error("unknown policy should be rejected")
	}
}

func TestLBEngineRounds(t *testing.T) {
	inst := lb.NewInstance(300, 12, 0.05, 17)
	e, err := NewLBEngine(EngineOptions{Solver: Options{Seed: 17, Parallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lb.RunRounds(inst, 6, 17, e.Solver())
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	t.Logf("lb rounds: avgDev=%.4f avgMoved=%.1f stats=%+v", res.AvgDeviation, res.AvgMovedBytes, st)
	if st.Rounds != 6 || st.ColdPriceRounds != 1 || st.WarmPriceRounds != 5 {
		t.Errorf("lb engine should go warm after the first round: %+v", st)
	}
	if res.AvgDeviation > inst.TolFrac+0.02 {
		t.Errorf("average deviation %.4f well outside tolerance %.4f", res.AvgDeviation, inst.TolFrac)
	}
	// Load jitter lands as updates, not churn: ShiftLoads touches loads on
	// surviving shards only.
	if st.Arrivals != 300 || st.Departures != 0 {
		t.Errorf("unexpected membership churn: %+v", st)
	}
}
