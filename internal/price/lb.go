package price

import (
	"fmt"
	"math"
	"sort"

	"pop/internal/lb"
)

// moveCostWeight converts a shard's per-load-unit movement cost (Mem/Load)
// into price units in the lb best response: a shard leaves its current
// server only when the price gap exceeds moveCostWeight·Mem/Load, so
// cheap-to-move, high-load shards migrate first — the same trade the §4.3
// objective makes.
const moveCostWeight = 1.0

// snapFrac drops serving fractions below this share of a shard's load
// during extraction; maxPlacements caps the servers a shard may be spread
// over. Both keep the placement count (and with it movements and memory
// footprint) near the integral solutions the MILP produces.
const (
	snapFrac      = 0.05
	maxPlacements = 4
)

// lbDomain prices the servers: each server is a resource with capacity L
// (the average load), and a shard's best response puts its whole load on
// the cheapest server after adding the amortized movement cost of any
// server it is not already placed on. Iteration averaging then yields
// fractional serving splits across the servers a shard visited.
type lbDomain struct {
	shards []lb.Shard
	placed [][]bool
	m      int
	avg    float64
	total  float64
}

func newLBDomain(inst *lb.Instance) *lbDomain {
	d := &lbDomain{
		shards: inst.Shards,
		placed: inst.Placement,
		m:      len(inst.Servers),
	}
	for _, s := range inst.Shards {
		d.total += s.Load
	}
	d.avg = d.total / float64(d.m)
	return d
}

func (d *lbDomain) Dims() (int, int) { return len(d.shards), d.m }
func (d *lbDomain) Capacity(out []float64) {
	for j := range out {
		out[j] = d.avg
	}
}
func (d *lbDomain) DemandHint() float64 { return d.total }

func (d *lbDomain) BestResponse(i int, price []float64, out []float64) {
	s := d.shards[i]
	load := math.Max(s.Load, capFloor)
	movePenalty := moveCostWeight * s.Mem / load
	best, bestCost := 0, math.Inf(1)
	for j := 0; j < d.m; j++ {
		cost := price[j]
		if !d.placed[i][j] {
			cost += movePenalty
		}
		if cost < bestCost {
			best, bestCost = j, cost
		}
	}
	for j := range out {
		out[j] = 0
	}
	out[best] = s.Load
}

// SolveLB approximates the relaxed §4.3 shard balancer by price discovery:
// converged prices spread each shard across the servers it favored, and a
// deterministic repair pass walks the residual band violations home. The
// result is a heuristic (Optimal stays false); MovedBytes and MaxDeviation
// report its true quality, gaps included.
func SolveLB(inst *lb.Instance, opts Options) (*lb.Assignment, *Solution, error) {
	n, m := len(inst.Shards), len(inst.Servers)
	if n == 0 || m == 0 {
		return nil, nil, fmt.Errorf("price: empty instance")
	}
	if opts.MaxIters == 0 {
		// The shard market is integral — whole shards switch servers — so the
		// averaged residual plateaus early and the band repair does the final
		// leveling; a long price walk buys no quality, only latency.
		opts.MaxIters = 200
	}
	sol, err := Solve(newLBDomain(inst), opts)
	if err != nil {
		return nil, nil, err
	}
	return lbAssignment(inst, sol), sol, nil
}

func lbAssignment(inst *lb.Instance, sol *Solution) *lb.Assignment {
	n, m := len(inst.Shards), len(inst.Servers)
	L := inst.AvgLoad()
	eps := inst.TolFrac * L

	out := &lb.Assignment{
		Frac:   make([][]float64, n),
		Placed: make([][]bool, n),
	}
	// Serving fractions from the averaged demands, snapped and capped so a
	// shard lands on a few servers, then renormalized to full coverage.
	for i, s := range inst.Shards {
		frac := make([]float64, m)
		out.Frac[i] = frac
		out.Placed[i] = make([]bool, m)
		dem := sol.ClientDemand(i)
		if s.Load <= 0 {
			// A zero-load shard serves from its current home: no movement.
			frac[homeServer(inst, i)] = 1
			continue
		}
		type share struct {
			j int
			f float64
		}
		shares := make([]share, 0, maxPlacements)
		for j := 0; j < m; j++ {
			if f := dem[j] / s.Load; f >= snapFrac {
				shares = append(shares, share{j, f})
			}
		}
		if len(shares) == 0 {
			best, bestF := homeServer(inst, i), 0.0
			for j := 0; j < m; j++ {
				if f := dem[j] / s.Load; f > bestF {
					best, bestF = j, f
				}
			}
			shares = append(shares, share{best, 1})
		}
		sort.Slice(shares, func(a, b int) bool {
			if shares[a].f != shares[b].f {
				return shares[a].f > shares[b].f
			}
			return shares[a].j < shares[b].j
		})
		if len(shares) > maxPlacements {
			shares = shares[:maxPlacements]
		}
		total := 0.0
		for _, sh := range shares {
			total += sh.f
		}
		for _, sh := range shares {
			frac[sh.j] = sh.f / total
		}
	}

	repairBand(inst, out.Frac, L, eps)

	for i := range out.Frac {
		for j, f := range out.Frac[i] {
			out.Placed[i][j] = f > 1e-9
		}
	}
	finalize(inst, out, L)
	return out
}

func homeServer(inst *lb.Instance, i int) int {
	for j, p := range inst.Placement[i] {
		if p {
			return j
		}
	}
	return 0
}

// repairBand deterministically walks server loads into [L-eps, L+eps]:
// while the extremes violate the band, shift load from the most- to the
// least-loaded server, preferring shards already materialized on the target
// (no new movement) and breaking ties toward the smallest memory footprint;
// a new placement must fit the target's memory capacity. Like the greedy
// baseline, it gives up when no admissible move remains — MaxDeviation then
// reports the residual violation.
func repairBand(inst *lb.Instance, frac [][]float64, L, eps float64) {
	n, m := len(inst.Shards), len(inst.Servers)
	load := make([]float64, m)
	mem := make([]float64, m)
	for i, s := range inst.Shards {
		for j, f := range frac[i] {
			if f > 1e-9 {
				load[j] += f * s.Load
				mem[j] += s.Mem
			}
		}
	}
	for iter := 0; iter < 8*n; iter++ {
		hi, lo := 0, 0
		for j := 1; j < m; j++ {
			if load[j] > load[hi] {
				hi = j
			}
			if load[j] < load[lo] {
				lo = j
			}
		}
		if load[hi] <= L+eps && load[lo] >= L-eps {
			break
		}
		// Shift up to the leveling amount from hi to lo.
		want := math.Min(load[hi]-L, L-load[lo])
		if want <= 0 {
			want = math.Max(load[hi]-(L+eps), (L-eps)-load[lo])
		}
		best, bestCost := -1, math.Inf(1)
		for i, s := range inst.Shards {
			if frac[i][hi] <= 1e-9 || s.Load <= 0 {
				continue
			}
			cost := 0.0
			if frac[i][lo] <= 1e-9 && !inst.Placement[i][lo] {
				if mem[lo]+s.Mem > inst.Servers[lo].MemCap {
					continue // new placement would not fit
				}
				cost = s.Mem
			}
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			break // no admissible move: report the violation honestly
		}
		s := inst.Shards[best]
		delta := math.Min(want, frac[best][hi]*s.Load)
		if delta <= 0 {
			break
		}
		if frac[best][lo] <= 1e-9 {
			mem[lo] += s.Mem
		}
		frac[best][hi] -= delta / s.Load
		frac[best][lo] += delta / s.Load
		if frac[best][hi] <= 1e-9 {
			frac[best][hi] = 0
			mem[hi] -= s.Mem
		}
		load[hi] -= delta
		load[lo] += delta
	}
}

// finalize computes Movements, MovedBytes, and MaxDeviation (the
// package-external equivalent of lb's own assignment finalizer).
func finalize(inst *lb.Instance, a *lb.Assignment, L float64) {
	n, m := len(inst.Shards), len(inst.Servers)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if a.Placed[i][j] && !inst.Placement[i][j] {
				a.Movements++
				a.MovedBytes += inst.Shards[i].Mem
			}
		}
	}
	for j := 0; j < m; j++ {
		load := 0.0
		for i := 0; i < n; i++ {
			load += a.Frac[i][j] * inst.Shards[i].Load
		}
		if dev := math.Abs(load-L) / L; dev > a.MaxDeviation {
			a.MaxDeviation = dev
		}
	}
}
