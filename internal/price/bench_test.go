package price

import (
	"fmt"
	"testing"

	"pop/internal/cluster"
)

// BenchmarkWarmRound times one warm engine round (2% churn) at the sizes
// pricebench gaps against the LP — the per-round latency the online path
// pays once prices are carried.
func BenchmarkWarmRound(b *testing.B) {
	for _, n := range []int{400, 1600, 6400} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			g := float64(n) / 5
			c := cluster.NewCluster(g, g, g)
			jobs := cluster.GenerateJobs(n, 1, 0.2)
			eng, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Step(jobs, c); err != nil {
				b.Fatal(err)
			}
			nChurn := n / 50
			nextID := n
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fresh := cluster.GenerateJobs(nChurn, int64(1000+i), 0.2)
				for k := range fresh {
					fresh[k].ID = nextID
					nextID++
					jobs[k%len(jobs)] = fresh[k]
				}
				if _, err := eng.Step(jobs, c); err != nil {
					b.Fatal(err)
				}
			}
			st := eng.Stats()
			b.ReportMetric(float64(st.LastIterations), "iters/round")
		})
	}
}

// BenchmarkBestResponse times the inner closed form alone.
func BenchmarkBestResponse(b *testing.B) {
	jobs := cluster.GenerateJobs(1024, 1, 0.2)
	c := cluster.NewCluster(200, 200, 200)
	d := newMaxMinDomain(jobs, c, 32)
	price := []float64{0.3, 1.7, 0.9}
	d.PrepareIteration(price)
	out := make([]float64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.BestResponse(i%1024, price, out)
	}
}
