package price

import (
	"testing"

	"pop/internal/cluster"
	"pop/internal/lb"
	"pop/internal/lp"
	"pop/internal/propfair"
)

// maxMinGapTol is the documented quality tolerance of the price engine on
// max-min cluster instances: the price allocation's min normalized ratio
// stays within this relative gap of the global LP optimum.
const maxMinGapTol = 0.05

func TestMaxMinQualityVsLP(t *testing.T) {
	for _, n := range []int{24, 80, 240} {
		for seed := int64(1); seed <= 3; seed++ {
			jobs := cluster.GenerateJobs(n, seed, 0.3)
			c := cluster.NewCluster(float64(n)/5, float64(n)/5, float64(n)/5)

			lpA, err := cluster.MaxMinFairness(jobs, c, lp.Options{})
			if err != nil {
				t.Fatalf("n=%d seed=%d: LP: %v", n, seed, err)
			}
			lpObj := MaxMinObjective(jobs, c, lpA)

			pa, sol, err := SolveMaxMin(jobs, c, Options{Seed: seed})
			if err != nil {
				t.Fatalf("n=%d seed=%d: price: %v", n, seed, err)
			}
			if err := cluster.VerifyFeasible(jobs, c, pa, 1e-6); err != nil {
				t.Fatalf("n=%d seed=%d: infeasible price allocation: %v", n, seed, err)
			}
			pObj := MaxMinObjective(jobs, c, pa)
			gap := (lpObj - pObj) / lpObj
			t.Logf("n=%d seed=%d: lp=%.4f price=%.4f gap=%.2f%% iters=%d converged=%v residual=%.4f",
				n, seed, lpObj, pObj, 100*gap, sol.Iterations, sol.Converged, sol.Residual)
			if pObj > lpObj*(1+1e-6) {
				t.Errorf("n=%d seed=%d: price objective %.6f exceeds LP optimum %.6f on a feasible point",
					n, seed, pObj, lpObj)
			}
			if gap > maxMinGapTol {
				t.Errorf("n=%d seed=%d: max-min gap %.2f%% exceeds %.0f%% tolerance (lp=%.4f price=%.4f)",
					n, seed, 100*gap, 100*maxMinGapTol, lpObj, pObj)
			}
		}
	}
}

func TestPropFairQualityVsFW(t *testing.T) {
	for _, n := range []int{24, 80} {
		for seed := int64(1); seed <= 2; seed++ {
			jobs := cluster.GenerateJobs(n, seed, 0.3)
			c := cluster.NewCluster(float64(n)/5, float64(n)/5, float64(n)/5)

			fwA, err := cluster.ProportionalFairnessFW(jobs, c, propfair.FWOptions{})
			if err != nil {
				t.Fatalf("n=%d seed=%d: FW: %v", n, seed, err)
			}
			fwObj := cluster.LogUtility(jobs, fwA)

			pa, sol, err := SolvePropFair(jobs, c, Options{Seed: seed})
			if err != nil {
				t.Fatalf("n=%d seed=%d: price: %v", n, seed, err)
			}
			if err := cluster.VerifyFeasible(jobs, c, pa, 1e-6); err != nil {
				t.Fatalf("n=%d seed=%d: infeasible price allocation: %v", n, seed, err)
			}
			pObj := cluster.LogUtility(jobs, pa)
			// Log utilities are near-linear in weighted log throughput; compare
			// as an absolute gap per job, which is scale-free across n.
			gap := (fwObj - pObj) / float64(n)
			t.Logf("n=%d seed=%d: fw=%.4f price=%.4f gap/job=%.4f iters=%d converged=%v",
				n, seed, fwObj, pObj, gap, sol.Iterations, sol.Converged)
			if gap > 0.05 {
				t.Errorf("n=%d seed=%d: propfair log-utility gap %.4f/job exceeds 0.05 (fw=%.4f price=%.4f)",
					n, seed, gap, fwObj, pObj)
			}
		}
	}
}

func TestLBQuality(t *testing.T) {
	for _, nm := range [][2]int{{100, 10}, {400, 16}} {
		for seed := int64(1); seed <= 3; seed++ {
			inst := lb.NewInstance(nm[0], nm[1], 0.05, seed)
			inst.ShiftLoads(seed + 100)

			pa, sol, err := SolveLB(inst, Options{Seed: seed})
			if err != nil {
				t.Fatalf("n=%d m=%d seed=%d: %v", nm[0], nm[1], seed, err)
			}
			if err := lb.VerifyFeasible(inst, pa, 1e-6); err != nil {
				t.Fatalf("n=%d m=%d seed=%d: infeasible assignment: %v", nm[0], nm[1], seed, err)
			}
			g := lb.SolveGreedy(inst)
			t.Logf("n=%d m=%d seed=%d: price moved=%.1f dev=%.4f iters=%d converged=%v | greedy moved=%.1f dev=%.4f",
				nm[0], nm[1], seed, pa.MovedBytes, pa.MaxDeviation, sol.Iterations, sol.Converged,
				g.MovedBytes, g.MaxDeviation)
			if pa.MaxDeviation > inst.TolFrac+0.02 {
				t.Errorf("n=%d m=%d seed=%d: max deviation %.4f well outside band tolerance %.4f",
					nm[0], nm[1], seed, pa.MaxDeviation, inst.TolFrac)
			}
		}
	}
}
