package price

import (
	"pop/internal/cluster"
	"pop/internal/lp"
)

// HybridMaxMin solves the max-min policy exactly, seeding the LP with the
// price-discovery equilibrium: the converged prices and demand supports are
// translated into a combinatorial basis guess (CrossoverBasis) passed as
// lpOpts.WarmBasis, so the simplex starts pivoting from the market's
// near-optimal vertex instead of from scratch. The LP solution — and hence
// the returned allocation — is identical to a plain cluster.MaxMinFairness
// solve: a warm basis the solver cannot use or repair is silently dropped,
// never trusted. The price Solution is returned alongside for accounting.
func HybridMaxMin(jobs []cluster.Job, c cluster.Cluster, popts Options, lpOpts lp.Options) (*cluster.Allocation, *Solution, error) {
	if len(jobs) == 0 {
		a, err := cluster.MaxMinFairness(jobs, c, lpOpts)
		return a, nil, err
	}
	palloc, psol, err := SolveMaxMin(jobs, c, popts)
	if err != nil {
		return nil, nil, err
	}
	lpOpts.WarmBasis = CrossoverBasis(jobs, c, palloc)
	a, err := cluster.MaxMinFairness(jobs, c, lpOpts)
	return a, psol, err
}

// CrossoverBasis builds a basis guess for cluster.MaxMinFairness's exact LP
// layout (n·r solo variables job-major, then the epigraph t; n time rows,
// r capacity rows, then one fair row per non-degenerate job) from a price
// allocation:
//
//   - a job's support variables (positive time fractions, at most two per
//     best-response structure) are basic, everything else at lower bound;
//   - the free epigraph t is basic;
//   - a row's slack is basic exactly when the price solution leaves the row
//     non-binding — time rows with slack in the unit budget, capacity rows
//     with idle GPUs, fair rows strictly above the minimum ratio.
//
// The basic count rarely lands exactly on the row count; the LP solver's
// warm installation repairs the deficit or surplus and falls back to a cold
// start on anything singular, so the guess can only save pivots, never
// change the optimum.
func CrossoverBasis(jobs []cluster.Job, c cluster.Cluster, a *cluster.Allocation) *lp.Basis {
	const tol = 1e-6
	n, r := len(jobs), c.NumTypes()
	eq := cluster.EqualShare(jobs, c)

	nFair := 0
	eqThr := make([]float64, n)
	for idx, j := range jobs {
		eqThr[idx] = cluster.EffectiveThroughput(j, eq[idx])
		if eqThr[idx] > 0 {
			nFair++
		}
	}
	b := &lp.Basis{
		VarStatus:   make([]lp.BasisStatus, n*r+1),
		SlackStatus: make([]lp.BasisStatus, n+r+nFair),
	}
	for i := range b.VarStatus {
		b.VarStatus[i] = lp.BasisLower
	}
	b.VarStatus[n*r] = lp.BasisBasic // the free epigraph t

	minRatio := MaxMinObjective(jobs, c, a)
	used := make([]float64, r)
	fairRow := n + r
	for idx, j := range jobs {
		rowSum := 0.0
		for i := 0; i < r; i++ {
			x := a.X[idx][i]
			rowSum += x
			used[i] += j.Scale * x
			if x > tol {
				b.VarStatus[idx*r+i] = lp.BasisBasic
			}
		}
		if rowSum < 1-tol {
			b.SlackStatus[idx] = lp.BasisBasic // time row non-binding
		}
		if eqThr[idx] > 0 {
			ratio := a.EffThr[idx] / (j.Weight * eqThr[idx] * j.Scale)
			if ratio > minRatio*(1+1e-3) {
				b.SlackStatus[fairRow] = lp.BasisBasic // strictly above the min
			}
			fairRow++
		}
	}
	for i := 0; i < r; i++ {
		if used[i] < c.NumGPUs[i]*(1-tol) {
			b.SlackStatus[n+i] = lp.BasisBasic // capacity non-binding
		}
	}
	return b
}
