package price

import (
	"math"
	"math/rand"
	"testing"

	"pop/internal/cluster"
)

func snapJob(id int, rnd *rand.Rand) cluster.Job {
	return cluster.Job{
		ID:         id,
		Throughput: []float64{1 + rnd.Float64(), 2 + 2*rnd.Float64(), 3 + 3*rnd.Float64()},
		Weight:     1,
		Scale:      1,
		NumSteps:   1000,
		Priority:   1,
	}
}

// TestSnapshotRestoreRoundTrip: a restored price engine carries the donor's
// price vector, so its first round solves warm and lands on the same
// allocation.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := cluster.NewCluster(16, 16, 16)
	donor, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(17))
	jobs := make([]cluster.Job, 0, 30)
	for id := 0; id < 30; id++ {
		jobs = append(jobs, snapJob(id, rnd))
	}
	for r := 0; r < 3; r++ {
		if _, err := donor.Step(jobs[:24+2*r], c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := donor.Step(jobs, c); err != nil {
		t.Fatal(err)
	}

	raw, err := donor.Snapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreBytes(raw); err != nil {
		t.Fatal(err)
	}
	if restored.NumJobs() != donor.NumJobs() {
		t.Fatalf("restored %d jobs, want %d", restored.NumJobs(), donor.NumJobs())
	}
	if restored.Stats() != donor.Stats() {
		t.Fatalf("restored stats %+v != donor stats %+v", restored.Stats(), donor.Stats())
	}

	// Step donor and clone from the identical carried state: the solves are
	// deterministic, so the allocations must agree exactly.
	before := restored.Stats()
	got, err := restored.Step(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := donor.Step(jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	after := restored.Stats()
	if after.WarmPriceRounds != before.WarmPriceRounds+1 {
		t.Fatalf("restored engine did not warm-start from the saved prices: %+v -> %+v", before, after)
	}
	for i := range jobs {
		if d := math.Abs(got.EffThr[i] - want.EffThr[i]); d > 1e-6 {
			t.Fatalf("job %d: restored engine allocates %g, donor %g (diff %g)",
				jobs[i].ID, got.EffThr[i], want.EffThr[i], d)
		}
	}
}

// TestSnapshotRestoreRejectsPolicyMismatch: a snapshot from a different
// policy leaves the engine unchanged.
func TestSnapshotRestoreRejectsPolicyMismatch(t *testing.T) {
	c := cluster.NewCluster(8, 8, 8)
	donor, err := NewClusterEngine(c, MaxMinFairness, EngineOptions{Solver: Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(1))
	if _, err := donor.Step([]cluster.Job{snapJob(0, rnd), snapJob(1, rnd)}, c); err != nil {
		t.Fatal(err)
	}
	other, err := NewClusterEngine(c, ProportionalFairness, EngineOptions{Solver: Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(donor.Snapshot()); err == nil {
		t.Fatal("policy-mismatched restore succeeded")
	}
	if other.NumJobs() != 0 {
		t.Fatal("rejected restore still installed jobs")
	}
}
