package price

import (
	"math"
	"os"
	"strings"
	"testing"

	"pop/internal/cluster"
	"pop/internal/obs"
)

// linearDomain is a tiny analytic market for solver unit tests: client j has
// log utility w_j·log(x) over one resource, demanding w_j/p, so the
// equilibrium price is exactly Σw_j/capacity.
type linearDomain struct {
	w   []float64
	cap float64
}

func (d *linearDomain) Dims() (int, int)       { return len(d.w), 1 }
func (d *linearDomain) Capacity(out []float64) { out[0] = d.cap }
func (d *linearDomain) DemandHint() float64 {
	s := 0.0
	for _, w := range d.w {
		s += w
	}
	return s
}
func (d *linearDomain) BestResponse(j int, price []float64, out []float64) {
	out[0] = d.w[j] / price[0]
}

func TestSolveAnalyticMarket(t *testing.T) {
	d := &linearDomain{w: []float64{3, 5, 2, 6}, cap: 4}
	sol, err := Solve(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatalf("analytic market did not converge: %d iters, residual %g", sol.Iterations, sol.Residual)
	}
	// Equilibrium: p = Σw/cap = 16/4 = 4, client j demands w_j/4.
	if got, want := sol.Price[0], 4.0; math.Abs(got-want)/want > 0.05 {
		t.Errorf("equilibrium price = %g, want ≈ %g", got, want)
	}
	for j, w := range d.w {
		if got, want := sol.ClientDemand(j)[0], w/4; math.Abs(got-want)/want > 0.05 {
			t.Errorf("client %d demand = %g, want ≈ %g", j, got, want)
		}
	}
	agg := sol.AggregateDemand()
	if math.Abs(agg[0]-d.cap)/d.cap > 0.02 {
		t.Errorf("aggregate demand %g should clear capacity %g", agg[0], d.cap)
	}
}

func TestSolveDeterminism(t *testing.T) {
	jobs := cluster.GenerateJobs(300, 11, 0.3)
	c := cluster.NewCluster(60, 60, 60)
	solve := func(parallel bool) (*cluster.Allocation, *Solution) {
		a, sol, err := SolveMaxMin(jobs, c, Options{Seed: 11, Parallel: parallel, MaxIters: 150})
		if err != nil {
			t.Fatal(err)
		}
		return a, sol
	}
	a1, s1 := solve(false)
	a2, s2 := solve(false)
	a3, s3 := solve(true) // parallel fan-out must not change the bits

	for _, pair := range []struct {
		name   string
		a, b   *Solution
		xa, xb *cluster.Allocation
	}{{"repeat", s1, s2, a1, a2}, {"parallel", s1, s3, a1, a3}} {
		if pair.a.Iterations != pair.b.Iterations || pair.a.Residual != pair.b.Residual {
			t.Errorf("%s: accounting differs: (%d, %g) vs (%d, %g)",
				pair.name, pair.a.Iterations, pair.a.Residual, pair.b.Iterations, pair.b.Residual)
		}
		for i := range pair.a.Price {
			if pair.a.Price[i] != pair.b.Price[i] {
				t.Fatalf("%s: price[%d] differs: %v vs %v", pair.name, i, pair.a.Price[i], pair.b.Price[i])
			}
		}
		for j := range pair.xa.X {
			for i := range pair.xa.X[j] {
				if pair.xa.X[j][i] != pair.xb.X[j][i] {
					t.Fatalf("%s: X[%d][%d] differs: %v vs %v",
						pair.name, j, i, pair.xa.X[j][i], pair.xb.X[j][i])
				}
			}
		}
	}
}

func TestWarmPriceCutsIterations(t *testing.T) {
	n := 200
	jobs := cluster.GenerateJobs(n, 5, 0.3)
	c := cluster.NewCluster(40, 40, 40)
	_, cold, err := SolveMaxMin(jobs, c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged {
		t.Fatalf("cold solve did not converge (%d iters, residual %g)", cold.Iterations, cold.Residual)
	}
	// Low-churn perturbation: 2% of jobs replaced.
	perturbed := append(append([]cluster.Job{}, jobs[4:]...), cluster.GenerateJobs(4, 77, 0.3)...)
	_, cold2, err := SolveMaxMin(perturbed, c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := SolveMaxMin(perturbed, c, Options{Seed: 5, WarmPrice: cold.Price})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("warm solve did not take the warm price")
	}
	if !warm.Converged {
		t.Fatalf("warm solve did not converge (%d iters, residual %g)", warm.Iterations, warm.Residual)
	}
	t.Logf("cold=%d perturbed-cold=%d warm=%d iterations", cold.Iterations, cold2.Iterations, warm.Iterations)
	if warm.Iterations*2 >= cold2.Iterations {
		t.Errorf("warm start should cut iterations at least 2x: warm=%d vs cold=%d",
			warm.Iterations, cold2.Iterations)
	}
}

func TestWarmPriceWrongShapeIgnored(t *testing.T) {
	jobs := cluster.GenerateJobs(20, 3, 0.3)
	c := cluster.NewCluster(4, 4, 4)
	for _, bad := range [][]float64{
		{1, 2},              // wrong length
		{1, 2, 0},           // non-positive entry
		{1, 2, math.NaN()},  // NaN
		{1, math.Inf(1), 2}, // infinite
	} {
		_, sol, err := SolveMaxMin(jobs, c, Options{Seed: 3, WarmPrice: bad, MaxIters: 50})
		if err != nil {
			t.Fatalf("WarmPrice %v: %v", bad, err)
		}
		if sol.WarmStarted {
			t.Errorf("WarmPrice %v should be ignored, not warm-start", bad)
		}
	}
}

func TestSolveEmptyAndDegenerate(t *testing.T) {
	sol, err := Solve(&linearDomain{w: nil, cap: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged || sol.Iterations != 0 {
		t.Errorf("empty market should converge immediately, got %+v", sol)
	}
	if _, err := Solve(badDimsDomain{}, Options{}); err == nil {
		t.Error("zero resources should be rejected")
	}
}

type badDimsDomain struct{}

func (badDimsDomain) Dims() (int, int)                       { return 3, 0 }
func (badDimsDomain) Capacity([]float64)                     {}
func (badDimsDomain) DemandHint() float64                    { return 1 }
func (badDimsDomain) BestResponse(int, []float64, []float64) {}

// TestPriceMetricsGuard (env-gated, run by CI) asserts the price-engine
// iteration counters reach the Prometheus export.
func TestPriceMetricsGuard(t *testing.T) {
	if os.Getenv("PRICE_METRICS_GUARD") == "" {
		t.Skip("set PRICE_METRICS_GUARD=1 to run")
	}
	reg := obs.NewRegistry()
	o := &obs.Observer{Metrics: reg}
	jobs := cluster.GenerateJobs(40, 1, 0.3)
	c := cluster.NewCluster(8, 8, 8)
	if _, _, err := SolveMaxMin(jobs, c, Options{Seed: 1, MaxIters: 50, Obs: o}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, metric := range []string{
		"pop_price_solves_total",
		"pop_price_iterations_total",
		"pop_price_cold_solves_total",
		"pop_price_clearing_residual",
	} {
		if !strings.Contains(out, metric) {
			t.Errorf("Prometheus export missing %s:\n%s", metric, out)
		}
	}
}
