package price

import (
	"testing"

	"pop/internal/cluster"
	"pop/internal/lp"
)

func TestHybridMatchesPlainLP(t *testing.T) {
	for _, n := range []int{30, 90} {
		for seed := int64(1); seed <= 3; seed++ {
			jobs := cluster.GenerateJobs(n, seed, 0.3)
			c := cluster.NewCluster(float64(n)/5, float64(n)/5, float64(n)/5)

			plain, err := cluster.MaxMinFairness(jobs, c, lp.Options{})
			if err != nil {
				t.Fatalf("n=%d seed=%d: plain LP: %v", n, seed, err)
			}
			hyb, psol, err := HybridMaxMin(jobs, c, Options{Seed: seed}, lp.Options{})
			if err != nil {
				t.Fatalf("n=%d seed=%d: hybrid: %v", n, seed, err)
			}
			if psol == nil || psol.Iterations == 0 {
				t.Fatalf("n=%d seed=%d: hybrid skipped the price phase", n, seed)
			}
			if err := cluster.VerifyFeasible(jobs, c, hyb, 1e-6); err != nil {
				t.Fatalf("n=%d seed=%d: hybrid infeasible: %v", n, seed, err)
			}
			pObj := MaxMinObjective(jobs, c, plain)
			hObj := MaxMinObjective(jobs, c, hyb)
			// The crossover basis is a hint: the LP optimum must be identical
			// to a cold solve up to solver tolerance.
			if diff := pObj - hObj; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("n=%d seed=%d: hybrid objective %.9f != plain %.9f",
					n, seed, hObj, pObj)
			}
		}
	}
}

func TestHybridEmptyJobs(t *testing.T) {
	c := cluster.NewCluster(4, 4, 4)
	a, sol, err := HybridMaxMin(nil, c, Options{}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol != nil {
		t.Error("empty hybrid should skip the price phase")
	}
	if a == nil {
		t.Error("empty hybrid should still return an allocation")
	}
}
