package price

import (
	"fmt"
	"math"
	"math/rand"

	"pop/internal/core"
	"pop/internal/obs"
)

const (
	// chunkSize is the fixed per-task client count of the best-response
	// fan-out. Fixed-size chunks (rather than one task per worker) keep the
	// floating-point reduction order independent of GOMAXPROCS: partial
	// demands are accumulated per chunk and summed in chunk order.
	chunkSize = 1024
	// warmStepOffset inflates the step-decay clock of a warm-started solve:
	// prices that start near equilibrium want small corrective steps from
	// the first iteration, not the large exploratory steps of a cold start.
	// The offset is large because the low-elasticity alpha-fair market is
	// easy to destabilize: a half-size kick to near-equilibrium prices sets
	// off a bang-bang oscillation that costs ~100 iterations of averaging to
	// forget, where quarter-size corrective steps track a low-churn market
	// shift in a handful.
	warmStepOffset = 100
	// priceFloorFrac and priceCeilFrac bound prices relative to their
	// cold-start scale, keeping the multiplicative update away from zero and
	// overflow on resources that stay under- or over-demanded. The band is
	// deliberately vast: alpha-fair marginal utilities scale as u^-α, so with
	// α = 32 a market whose min ratio sits near 0.4 clears at prices ~1e13×
	// the demand-based seed — a tight ceiling silently caps the price walk
	// and freezes the residual above tolerance.
	priceFloorFrac = 1e-18
	priceCeilFrac  = 1e18
	capFloor       = 1e-9
	// scaleKappa and scaleStepClip tune the common-mode damped-Newton price
	// rescale (see scaleElastic): each iteration the whole price vector is
	// multiplied by exp(clip(scaleKappa·E·mean(log(demand/cap)), ±scaleStepClip)).
	// Half-damping absorbs the elasticity error of capped and pair-assigned
	// clients; the ±2 clip bounds a cold start's climb to ~e² per iteration.
	scaleKappa    = 0.5
	scaleStepClip = 2.0
	scaleLogClip  = 4.0
	// avgPow is the polynomial-averaging order: iterate t enters the running
	// primal average with weight ∝ t^avgPow. Order 8 forgets the cold-start
	// transient roughly 4× faster than plain t-weighting while still damping
	// the bang-bang oscillation of low-elasticity best responses.
	avgPow = 8.0
)

// Domain is the market a price-discovery solve runs over: clients demand
// bundles of divisible resources, and the solver searches for per-resource
// prices under which aggregate demand clears capacity.
type Domain interface {
	// Dims returns the number of clients and resources.
	Dims() (clients, resources int)
	// Capacity writes the per-resource capacities into out (len resources).
	Capacity(out []float64)
	// DemandHint returns the aggregate demand scale — roughly the total
	// resource units clients would consume at zero price — used to seed
	// cold-start prices.
	DemandHint() float64
	// BestResponse writes client j's utility-maximizing demand (in resource
	// units) under the given prices into out (len resources). It must be
	// deterministic in (j, price) and safe for concurrent calls with
	// distinct j: the solver fans calls out over core.ParallelMap.
	BestResponse(j int, price []float64, out []float64)
}

// iterationPreparer is an optional Domain extension: PrepareIteration runs
// single-threaded once per iteration before the best-response fan-out, so a
// domain can hoist price-dependent work (e.g. price^(−1/α) roots) out of
// the per-client hot path.
type iterationPreparer interface {
	PrepareIteration(price []float64)
}

// scaleElastic is an optional Domain extension: a market whose aggregate
// demand responds to a uniform price rescale with a known elasticity —
// demand ∝ scale^(−1/E) in the interior — exposes E, and Solve then kills
// the common-mode excess with a damped Newton rescale each iteration. A
// uniform rescale leaves relative prices, and therefore every client's
// resource choice, unchanged — so unlike the per-resource tâtonnement
// step it cannot set off the bang-bang choice-flipping oscillation, and
// may move orders of magnitude per iteration. Low-elasticity markets
// (alpha-fair with large α) need this: their clearing prices sit ~E×
// further (in log space) than the demand residual suggests, which the
// small per-resource steps would take hundreds of iterations to traverse.
type scaleElastic interface {
	ScaleElasticity() float64
}

// Options tune a price-discovery solve.
type Options struct {
	// MaxIters bounds price-update iterations; 0 means 1200.
	MaxIters int
	// MinIters is the minimum iteration count before convergence may be
	// declared (guards against a lucky first-iterate residual); 0 means 4.
	MinIters int
	// Tol is the clearing tolerance: the solve stops once the averaged
	// market's complementarity residual falls below it; 0 means 0.01.
	Tol float64
	// Step is the initial multiplicative price-update step; 0 means 0.5.
	Step float64
	// Alpha is the alpha-fair utility exponent used by the max-min cluster
	// adapter (larger approximates max-min more closely but conditions the
	// best responses worse); 0 means 32.
	Alpha float64
	// Seed fixes the deterministic cold-price jitter. Identical inputs,
	// Seed, and WarmPrice produce bit-identical output regardless of
	// Parallel.
	Seed int64
	// Parallel fans best responses out over core.ParallelMap.
	Parallel bool
	// WarmPrice, when non-nil with one finite positive entry per resource,
	// replaces the cold price seed — the cross-round warm start. A vector
	// of the wrong shape is ignored (cold start), never an error.
	WarmPrice []float64
	// Obs, when non-nil, receives a "price.solve" span with per-iteration
	// "price.bestresponse" children, iteration counters, and the clearing
	// residual gauge. Nil costs one pointer check per use.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 1200
	}
	if o.MinIters == 0 {
		o.MinIters = 4
	}
	if o.Tol == 0 {
		o.Tol = 0.01
	}
	if o.Step == 0 {
		o.Step = 0.5
	}
	if o.Alpha == 0 {
		o.Alpha = 32
	}
	return o
}

// Solution is the result of a price-discovery solve: the averaged client
// demands, the final prices (the warm start for the next round), and the
// convergence accounting.
type Solution struct {
	// Price is the final per-resource price vector.
	Price []float64
	// Iterations is the number of price updates taken.
	Iterations int
	// Residual is the clearing residual of the averaged market at exit.
	Residual float64
	// Converged reports whether Residual reached Tol within MaxIters.
	Converged bool
	// WarmStarted reports whether the solve started from WarmPrice.
	WarmStarted bool

	n, r   int
	demand []float64 // n×r row-major averaged client demands (resource units)
}

// ClientDemand returns client j's averaged demand row (resource units). The
// slice aliases solver-owned memory; callers must not retain or mutate it.
func (s *Solution) ClientDemand(j int) []float64 {
	return s.demand[j*s.r : (j+1)*s.r]
}

// AggregateDemand sums the averaged client demands per resource.
func (s *Solution) AggregateDemand() []float64 {
	out := make([]float64, s.r)
	for j := 0; j < s.n; j++ {
		for i, v := range s.ClientDemand(j) {
			out[i] += v
		}
	}
	return out
}

// Solve runs tâtonnement price discovery over the domain: each iteration
// fans the per-client best responses out over core.ParallelMap, folds the
// iterate into a polynomially weighted running average, and moves every
// price multiplicatively against its relative excess demand with a
// diminishing step. The averaged market's complementarity residual is the
// clearing measure; the solve stops when it reaches Tol or MaxIters runs
// out (Converged reports which).
func Solve(d Domain, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	n, r := d.Dims()
	if n < 0 || r <= 0 {
		return nil, fmt.Errorf("price: bad dimensions %d clients × %d resources", n, r)
	}
	capacity := make([]float64, r)
	d.Capacity(capacity)
	for i, c := range capacity {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("price: bad capacity[%d] = %g", i, c)
		}
	}

	// Cold reference prices: uniform demand pressure, hint/(cap·r) per
	// resource. A warm solve keeps them as the scale anchor of the price
	// floor/ceiling and the residual's underdemand weight.
	hint := d.DemandHint()
	if hint <= 0 || math.IsNaN(hint) || math.IsInf(hint, 0) {
		hint = 1
	}
	p0 := make([]float64, r)
	for i := range p0 {
		p0[i] = hint / (math.Max(capacity[i], capFloor) * float64(r))
	}

	price := make([]float64, r)
	warm := len(opts.WarmPrice) == r
	if warm {
		for _, p := range opts.WarmPrice {
			if !(p > 0) || math.IsInf(p, 0) {
				warm = false
				break
			}
		}
	}
	if warm {
		copy(price, opts.WarmPrice)
	} else {
		// Deterministic per-seed jitter breaks exact price ties between
		// resources, which would otherwise make pair best responses
		// degenerate on symmetric instances.
		rng := rand.New(rand.NewSource(opts.Seed))
		for i := range price {
			price[i] = p0[i] * (1 + 1e-3*rng.Float64())
		}
	}

	sol := &Solution{
		Price:       price,
		WarmStarted: warm,
		n:           n,
		r:           r,
		demand:      make([]float64, n*r),
	}
	if n == 0 {
		sol.Converged = true
		return sol, nil
	}

	span := opts.Obs.Span("price.solve").
		Arg("clients", n).Arg("resources", r).Arg("warm", warm)

	t0 := 1.0
	if warm {
		t0 = warmStepOffset
	}
	chunks := (n + chunkSize - 1) / chunkSize
	cur := make([]float64, n*r)
	avg := sol.demand
	chunkDemand := make([][]float64, chunks)
	for ci := range chunkDemand {
		chunkDemand[ci] = make([]float64, r)
	}
	demand := make([]float64, r)
	avgDemand := make([]float64, r)

	prep, _ := d.(iterationPreparer)
	elast := 0.0
	if se, ok := d.(scaleElastic); ok {
		elast = se.ScaleElasticity()
	}

	iters := 0
	resid := math.Inf(1)
	converged := false
	for t := 1; t <= opts.MaxIters; t++ {
		iters = t
		if prep != nil {
			prep.PrepareIteration(price)
		}
		brSpan := opts.Obs.Span("price.bestresponse").Arg("iter", t)
		_ = core.ParallelMap(chunks, opts.Parallel && chunks > 1, func(ci int) error {
			lo := ci * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			acc := chunkDemand[ci]
			for i := range acc {
				acc[i] = 0
			}
			for j := lo; j < hi; j++ {
				row := cur[j*r : (j+1)*r]
				d.BestResponse(j, price, row)
				for i, v := range row {
					acc[i] += v
				}
			}
			return nil
		})
		brSpan.End()
		// Chunk-ordered reduction: bit-identical regardless of Parallel.
		for i := range demand {
			demand[i] = 0
		}
		for ci := 0; ci < chunks; ci++ {
			for i, v := range chunkDemand[ci] {
				demand[i] += v
			}
		}

		// Polynomial averaging (iterate t gets weight ∝ t^avgPow): late,
		// well-priced iterates dominate and the cold-start transient is
		// forgotten quickly, without a warm-hostile restart of the average.
		gamma := (avgPow + 1) / (float64(t) + avgPow + 1)
		for idx, v := range cur {
			avg[idx] += gamma * (v - avg[idx])
		}
		for i, v := range demand {
			avgDemand[i] += gamma * (v - avgDemand[i])
		}

		resid = clearingResidual(avgDemand, capacity, price, p0)
		if t >= opts.MinIters && resid <= opts.Tol {
			converged = true
			break
		}

		// Common-mode damped Newton rescale (scaleElastic domains): the
		// mean log overdemand is the uniform component of the imbalance,
		// and demand ∝ scale^(−1/E) under a uniform rescale, so one
		// half-damped step of exp(½·E·mean(log(demand/cap))) removes most
		// of it at once — the per-resource steps below only ever chase the
		// small relative imbalance.
		scale := 1.0
		if elast > 0 {
			zbar := 0.0
			for i := range demand {
				zi := math.Log(math.Max(demand[i], capFloor) / math.Max(capacity[i], capFloor))
				if zi > scaleLogClip {
					zi = scaleLogClip
				} else if zi < -scaleLogClip {
					zi = -scaleLogClip
				}
				if zi < 0 {
					// Mirror clearingResidual: idle capacity only counts as
					// imbalance while its price sits meaningfully above the
					// cold scale p0 — a legitimately unwanted resource must
					// not drag every other price down with it.
					zi *= price[i] / (price[i] + p0[i])
				}
				zbar += zi
			}
			zbar /= float64(r)
			step := scaleKappa * elast * zbar
			if step > scaleStepClip {
				step = scaleStepClip
			} else if step < -scaleStepClip {
				step = -scaleStepClip
			}
			scale = math.Exp(step)
		}

		// Multiplicative tâtonnement on the instantaneous market: price_i
		// moves by exp(η_t · clip(relative excess demand)), η_t diminishing.
		eta := opts.Step / math.Sqrt(t0+float64(t))
		for i := range price {
			z := (demand[i] - capacity[i]) / math.Max(capacity[i], capFloor)
			if z > 1 {
				z = 1
			} else if z < -1 {
				z = -1
			}
			p := price[i] * scale * math.Exp(eta*z)
			if floor := priceFloorFrac * p0[i]; p < floor {
				p = floor
			}
			if ceil := priceCeilFrac * p0[i]; p > ceil {
				p = ceil
			}
			price[i] = p
		}
	}

	sol.Iterations = iters
	sol.Residual = resid
	sol.Converged = converged
	span.Arg("iterations", iters).Arg("residual", resid).End()
	if o := opts.Obs; o != nil {
		o.Counter("pop_price_solves_total", "price-discovery solves").Inc()
		o.Counter("pop_price_iterations_total", "price-update iterations across solves").Add(int64(iters))
		if warm {
			o.Counter("pop_price_warm_solves_total", "solves started from carried prices").Inc()
		} else {
			o.Counter("pop_price_cold_solves_total", "solves started from cold prices").Inc()
		}
		if converged {
			o.Counter("pop_price_converged_total", "solves that reached the clearing tolerance").Inc()
		}
		o.Gauge("pop_price_clearing_residual", "clearing residual of the last solve").Set(resid)
	}
	return sol, nil
}

// clearingResidual measures how far the averaged market is from clearing:
// the worst relative overdemand, or — on underdemanded resources — the
// complementarity violation, the relative idle capacity weighted by how far
// the price still sits above its floor scale (an idle resource only
// violates clearing while its price is meaningfully positive).
func clearingResidual(avgDemand, capacity, price, p0 []float64) float64 {
	resid := 0.0
	for i := range capacity {
		excess := (avgDemand[i] - capacity[i]) / math.Max(capacity[i], capFloor)
		v := excess
		if excess < 0 {
			w := price[i] / (price[i] + p0[i])
			v = math.Min(-excess, 1) * w
		}
		if v > resid {
			resid = v
		}
	}
	return resid
}
