package price

import (
	"encoding/json"
	"fmt"
	"slices"

	"pop/internal/cluster"
)

// ClusterState is the serializable warm state of a price ClusterEngine: the
// jobs, the carried price vector (the warm-start currency of the
// tâtonnement solver), and the work counters. Restoring it into a freshly
// constructed engine makes the first round solve warm from the saved
// prices, so a crashed shard worker or restarted popserver resumes at
// steady-state iteration counts instead of re-discovering the market
// equilibrium from scratch.
type ClusterState struct {
	Policy    string        `json:"policy"`
	TypeNames []string      `json:"type_names,omitempty"`
	GPUs      []float64     `json:"gpus,omitempty"`
	Jobs      []cluster.Job `json:"jobs"`
	Price     []float64     `json:"price,omitempty"`
	Stats     Stats         `json:"stats"`
}

// Marshal encodes the state as JSON.
func (s *ClusterState) Marshal() ([]byte, error) { return json.Marshal(s) }

// Snapshot captures the engine's warm state between rounds. The result
// aliases nothing.
func (e *ClusterEngine) Snapshot() *ClusterState {
	st := &ClusterState{
		Policy: e.policy.String(),
		Jobs:   e.Jobs(),
		Stats:  e.stats,
	}
	if e.haveC {
		st.TypeNames = slices.Clone(e.c.TypeNames)
		st.GPUs = slices.Clone(e.c.NumGPUs)
	}
	if e.havePrice {
		st.Price = slices.Clone(e.price)
	}
	return st
}

// Restore installs a snapshot, replacing the engine's jobs, carried prices,
// and counters. The snapshot must match the engine's policy; on mismatch
// the engine is unchanged.
func (e *ClusterEngine) Restore(st *ClusterState) error {
	if st.Policy != e.policy.String() {
		return fmt.Errorf("price: snapshot policy %q does not match engine policy %q", st.Policy, e.policy)
	}
	e.jobs = make(map[int]cluster.Job, len(st.Jobs))
	for _, j := range st.Jobs {
		e.jobs[j.ID] = j
	}
	e.price = slices.Clone(st.Price)
	e.havePrice = len(st.Price) > 0
	e.churn = 0
	e.stats = st.Stats
	if len(st.GPUs) > 0 {
		// Install directly: SetCluster's price rescaling is for live capacity
		// changes, not for re-loading the pool the prices were saved against.
		e.c = cluster.Cluster{TypeNames: slices.Clone(st.TypeNames), NumGPUs: slices.Clone(st.GPUs)}
		e.haveC = true
	}
	return nil
}

// RestoreBytes unmarshals and installs a Marshal-ed snapshot.
func (e *ClusterEngine) RestoreBytes(raw []byte) error {
	var st ClusterState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("price: bad snapshot: %w", err)
	}
	return e.Restore(&st)
}
