// Package price implements a solver-free price-discovery allocator — the
// dual-decomposition scheme of "Allocation of Fungible Resources via a
// Fast, Scalable Price Discovery Method" (Agrawal, Boyd, Narayanan,
// Kazhamiaka, Zaharia) — as a second engine beside the LP/POP path: per-
// resource prices, independent per-client best responses, and iterative
// price updates replace the simplex entirely. Best responses are closed
// forms evaluated independently per client, so the inner loop is
// embarrassingly parallel and scales to millions of clients per round.
//
// # Price update rule
//
// Each iteration t computes every client's exact best response under the
// current prices (fanned out over core.ParallelMap in fixed 1024-client
// chunks whose partial demands reduce in chunk order, so results are
// bit-identical serial or parallel), then moves each price against its
// relative excess demand multiplicatively:
//
//	p_i ← clamp(p_i · exp(η_t · clip((demand_i − cap_i)/cap_i, ±1)))
//
// with a diminishing step η_t = Step/√(t0+t). Multiplicative updates keep
// prices positive and let them traverse orders of magnitude in few
// iterations — necessary because low-elasticity utilities (the alpha-fair
// max-min approximation, Options.Alpha default 32, with Step scaled as
// Alpha/12 to hold the effective price motion constant across exponents)
// need large price swings to move demand: at equilibrium their marginal
// utilities scale as u^-α, so clearing prices legitimately sit many orders
// of magnitude above the demand-seeded cold start. Prices are therefore
// clamped to a deliberately vast [1e-18, 1e18]× band around that scale —
// a tight ceiling silently caps the walk and freezes the residual.
//
// Domains with a known aggregate elasticity (both cluster adapters:
// interior alpha-fair demand scales as p^(−1/α), log-utility as p^(−1))
// additionally get a common-mode damped Newton rescale each iteration:
// the whole price vector is multiplied by exp(½·E·mean(log(demand/cap))),
// with the underdemand side of the mean weighted by price/(price+p0) as
// in the clearing residual. A uniform rescale leaves relative prices —
// and therefore every client's resource choice — unchanged, so unlike the
// per-resource step it cannot set off choice-flipping oscillation and may
// safely move orders of magnitude at once. It carries both the cold
// start's climb to the clearing scale (~5× fewer iterations) and a warm
// round's uniform demand drift (e.g. weight growth on surviving clients),
// leaving the small per-resource steps only the relative imbalance.
//
// Primal iterates fold into a polynomially weighted running average
// (iterate t gets weight ∝ t^8), so late, well-priced responses dominate
// and the cold-start transient is forgotten quickly; the averaged demands
// are the allocation. Adapters finish with a cheap
// feasibility projection (cluster: capacity-column scaling; lb: a
// deterministic band-repair pass), so reported allocations are always
// feasible and quality gaps show up in the objective, never as constraint
// violations.
//
// # Clearing tolerance
//
// Convergence is declared when the averaged market's complementarity
// residual falls below Options.Tol (default 1%): the worst relative
// overdemand, or on underdemanded resources the relative idle capacity
// weighted by price/(price+p0) — idle capacity only violates clearing
// while its price remains meaningfully above the cold-start scale p0.
// Solves that exhaust MaxIters (default 1200) return the residual with
// Converged=false; nothing is hidden. The lb adapter runs a short walk
// (200 iterations unless set): its integral shard market plateaus early
// and the deterministic band repair does the final leveling, so it
// routinely reports Converged=false with a fully acceptable assignment.
//
// # Warm-start contract
//
// Solution.Price from one solve may be passed as Options.WarmPrice to a
// later solve of a similar market. A warm start changes the starting
// point and the step schedule (t0 = 100, so corrective steps start small
// enough not to kick near-equilibrium prices into oscillation),
// never the clearing criterion: warm and cold runs converge to the same
// tolerance against the same market, differing only in iterations spent.
// A WarmPrice of the wrong shape or with non-positive entries is ignored
// (cold start), never an error. The online engines carry prices across
// rounds automatically and drop them — mirroring lp.Model's warm-hostile
// basis drop — when membership churn (arrivals + departures, relative to
// the client count) reaches EngineOptions.ColdChurnFrac (default ¼);
// capacity changes rescale carried prices instead of dropping them. Data
// jitter on surviving clients never drops prices: absorbing it is the
// warm start's job, and on low-churn rounds warm prices cut
// iterations-to-clearing by an order of magnitude.
//
// # Determinism
//
// Given identical inputs, Options.Seed, and WarmPrice, Solve's output is
// bit-identical regardless of Options.Parallel or GOMAXPROCS: chunked
// reduction fixes the summation order, cold-start jitter derives from the
// seed, and best responses are pure functions.
//
// # Hybrid mode
//
// HybridMaxMin feeds the converged market back to the exact LP: the
// demand supports and binding pattern become a combinatorial basis guess
// (CrossoverBasis) for cluster.MaxMinFairness, so the simplex warm-starts
// from the market's near-optimal vertex. The LP result is identical to a
// cold solve — an unusable basis is repaired or dropped by the solver —
// only the pivot count changes.
package price
