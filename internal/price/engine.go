package price

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"pop/internal/cluster"
	"pop/internal/lb"
	"pop/internal/obs"
)

// EngineOptions configure an online price engine.
type EngineOptions struct {
	// Solver tunes the per-round price solve. Solver.WarmPrice is managed
	// by the engine; Solver.Obs also receives the engine's round telemetry
	// ("price.round" spans, round counters, round-latency histograms).
	Solver Options
	// ColdChurnFrac is the membership-churn fraction (arrivals plus
	// departures relative to the post-diff client count) at or above which
	// a round drops the carried prices and solves cold — the price-engine
	// mirror of lp.Model's warm-hostile basis drop. 0 means 0.25. Data
	// changes on surviving clients never trigger the drop: absorbing them
	// is what the warm start is for.
	ColdChurnFrac float64
	// NoWarmPrice disables price carrying entirely; every round solves
	// cold. Used for the cold baseline in benchmarks and the warm-vs-cold
	// property tests.
	NoWarmPrice bool
}

func (o EngineOptions) coldChurnFrac() float64 {
	if o.ColdChurnFrac == 0 {
		return 0.25
	}
	return o.ColdChurnFrac
}

// Stats counts a price engine's work since creation. The JSON tags fix the
// wire names popserver's /v1/stats exposes, matching online.Stats' pattern.
type Stats struct {
	// Rounds is the number of Step calls that solved.
	Rounds int `json:"rounds"`
	// Iterations is the total price-update iterations across rounds;
	// LastIterations and LastResidual describe the most recent round.
	Iterations     int     `json:"iterations"`
	LastIterations int     `json:"last_iterations"`
	LastResidual   float64 `json:"last_residual"`
	// ConvergedRounds counts rounds that reached the clearing tolerance.
	ConvergedRounds int `json:"converged_rounds"`
	// WarmPriceRounds counts rounds solved from carried prices;
	// ColdPriceRounds counts cold starts (first round, heavy churn, or
	// NoWarmPrice).
	WarmPriceRounds int `json:"warm_price_rounds"`
	ColdPriceRounds int `json:"cold_price_rounds"`
	// Arrivals, Departures, and Updates count the applied deltas.
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
	Updates    int `json:"updates"`
}

// ClusterEngine maintains a price-discovery allocation for the GPU
// scheduling policies across rounds: jobs arrive, depart, and change; each
// Step re-solves the whole market from the previous round's price vector
// (cold on heavy membership churn). It exposes the same round surface as
// online.ClusterEngine so popserver and round loops can hold either. Not
// safe for concurrent use.
type ClusterEngine struct {
	policy ClusterPolicy
	opts   EngineOptions

	c     cluster.Cluster
	haveC bool
	jobs  map[int]cluster.Job

	price     []float64
	havePrice bool
	churn     int // arrivals + departures since the last solve

	lastObj float64
	stats   Stats
}

// NewClusterEngine creates a price engine for cluster c running the given
// policy.
func NewClusterEngine(c cluster.Cluster, policy ClusterPolicy, opts EngineOptions) (*ClusterEngine, error) {
	if policy != MaxMinFairness && policy != ProportionalFairness {
		return nil, fmt.Errorf("price: unsupported cluster policy %v", policy)
	}
	e := &ClusterEngine{
		policy: policy,
		opts:   opts,
		jobs:   make(map[int]cluster.Job),
	}
	e.SetCluster(c)
	return e, nil
}

func (e *ClusterEngine) obs() *obs.Observer { return e.opts.Solver.Obs }

// SetCluster installs a new resource pool. Carried prices are rescaled by
// the inverse capacity change per type (scarcer capacity means a
// proportionally higher clearing price); a reshaped or zeroed pool drops
// them.
func (e *ClusterEngine) SetCluster(c cluster.Cluster) {
	if e.haveC && slices.Equal(e.c.NumGPUs, c.NumGPUs) {
		return
	}
	if e.havePrice {
		if len(c.NumGPUs) != len(e.c.NumGPUs) {
			e.havePrice = false
		} else {
			for i, old := range e.c.NumGPUs {
				if old <= 0 || c.NumGPUs[i] <= 0 {
					e.havePrice = false
					break
				}
				e.price[i] *= old / c.NumGPUs[i]
			}
		}
	}
	e.c = c
	e.haveC = true
}

// Upsert adds job j (keyed by j.ID) or applies a change to it. Unchanged
// re-submissions are no-ops.
func (e *ClusterEngine) Upsert(j cluster.Job) {
	if old, ok := e.jobs[j.ID]; ok {
		if clusterJobsEqual(old, j) {
			return
		}
		e.jobs[j.ID] = j
		e.stats.Updates++
		return
	}
	e.jobs[j.ID] = j
	e.stats.Arrivals++
	e.churn++
}

// Remove drops the job.
func (e *ClusterEngine) Remove(id int) bool {
	if _, ok := e.jobs[id]; !ok {
		return false
	}
	delete(e.jobs, id)
	e.stats.Departures++
	e.churn++
	return true
}

func clusterJobsEqual(a, b cluster.Job) bool {
	return a.Weight == b.Weight && a.Scale == b.Scale && a.NumSteps == b.NumSteps &&
		a.Priority == b.Priority && a.MemFrac == b.MemFrac &&
		slices.Equal(a.Throughput, b.Throughput)
}

// MarkAllDirty drops the carried prices, forcing the next round to solve
// cold (benchmark and testing hook, mirroring the LP engines' full
// re-solve trigger).
func (e *ClusterEngine) MarkAllDirty() { e.havePrice = false }

// NumJobs reports the number of jobs currently held.
func (e *ClusterEngine) NumJobs() int { return len(e.jobs) }

// Jobs returns the live jobs in ascending-ID order.
func (e *ClusterEngine) Jobs() []cluster.Job {
	out := make([]cluster.Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Cluster returns the current resource pool.
func (e *ClusterEngine) Cluster() cluster.Cluster { return e.c }

// Stats returns the engine's work counters.
func (e *ClusterEngine) Stats() Stats { return e.stats }

// Objective reports the policy objective of the last Step: the minimum
// normalized ratio under max-min fairness, Σ w·log(thr) under proportional
// fairness.
func (e *ClusterEngine) Objective() float64 { return e.lastObj }

// Step applies the diff between engine state and the active set, solves
// the market warm from the previous round's prices (cold on heavy churn),
// and returns the allocation in active-set order.
func (e *ClusterEngine) Step(active []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	span := e.obs().Span("price.round").Arg("clients", len(active))
	defer span.End()
	start := time.Now()

	e.SetCluster(c)
	seen := make(map[int]bool, len(active))
	for _, j := range active {
		seen[j.ID] = true
		e.Upsert(j)
	}
	for id := range e.jobs {
		if !seen[id] {
			e.Remove(id)
		}
	}

	so, warm := e.solverOptions(len(e.jobs), e.c.NumTypes())
	var (
		alloc *cluster.Allocation
		sol   *Solution
		err   error
	)
	if e.policy == ProportionalFairness {
		alloc, sol, err = SolvePropFair(active, e.c, so)
	} else {
		alloc, sol, err = SolveMaxMin(active, e.c, so)
	}
	if err != nil {
		return nil, err
	}
	e.price = sol.Price
	e.havePrice = true
	e.churn = 0
	e.bookRound(sol, warm, start)

	if e.policy == ProportionalFairness {
		e.lastObj = cluster.LogUtility(active, alloc)
	} else {
		e.lastObj = MaxMinObjective(active, e.c, alloc)
	}
	span.Arg("warm", warm).Arg("iterations", sol.Iterations)
	return alloc, nil
}

// Policy adapts the engine to gavelsim's round loop, like
// online.ClusterEngine.Policy.
func (e *ClusterEngine) Policy() func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
	return func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return e.Step(jobs, c)
	}
}

// solverOptions assembles the round's solve options, deciding warm vs cold
// from the membership churn accumulated since the last solve.
func (e *ClusterEngine) solverOptions(clients, resources int) (Options, bool) {
	so := e.opts.Solver
	warm := e.havePrice && !e.opts.NoWarmPrice && len(e.price) == resources &&
		float64(e.churn) < e.opts.coldChurnFrac()*float64(max(clients, 1))
	if warm {
		so.WarmPrice = e.price
	} else {
		so.WarmPrice = nil
	}
	return so, warm
}

func (e *ClusterEngine) bookRound(sol *Solution, warm bool, start time.Time) {
	bookRound(&e.stats, e.obs(), sol, warm, start)
}

func bookRound(st *Stats, o *obs.Observer, sol *Solution, warm bool, start time.Time) {
	st.Rounds++
	st.Iterations += sol.Iterations
	st.LastIterations = sol.Iterations
	st.LastResidual = sol.Residual
	if sol.Converged {
		st.ConvergedRounds++
	}
	if warm {
		st.WarmPriceRounds++
	} else {
		st.ColdPriceRounds++
	}
	if o != nil {
		o.Counter("pop_price_rounds_total", "price-engine rounds").Inc()
		if warm {
			o.Counter("pop_price_warm_rounds_total", "rounds solved from carried prices").Inc()
		} else {
			o.Counter("pop_price_cold_rounds_total", "rounds solved from cold prices").Inc()
		}
		o.Histogram("pop_price_round_seconds", "price-engine round latency").
			Observe(time.Since(start).Seconds())
	}
}

// LBEngine maintains a price-discovery shard-balancing assignment across
// rounds, carrying server prices between Steps. Load jitter on surviving
// shards rides the warm start (relative excess demand is what prices
// clear); only membership churn or a server-set change drops the prices.
// Not safe for concurrent use.
type LBEngine struct {
	opts EngineOptions

	servers []lb.Server
	shards  map[int]lb.Shard

	price     []float64
	havePrice bool
	churn     int

	lastObj float64
	stats   Stats
}

// NewLBEngine creates a price-discovery shard-balancing engine.
func NewLBEngine(opts EngineOptions) (*LBEngine, error) {
	return &LBEngine{
		opts:   opts,
		shards: make(map[int]lb.Shard),
	}, nil
}

func (e *LBEngine) obs() *obs.Observer { return e.opts.Solver.Obs }

// Stats returns the engine's work counters.
func (e *LBEngine) Stats() Stats { return e.stats }

// MarkAllDirty drops the carried prices (cold next round).
func (e *LBEngine) MarkAllDirty() { e.havePrice = false }

// Objective reports the moved bytes of the last Step's assignment.
func (e *LBEngine) Objective() float64 { return e.lastObj }

// Step diffs the instance against engine state, solves the server market
// warm from the previous round's prices, and returns the assignment. It has
// lb.Solver's shape via Solver.
func (e *LBEngine) Step(inst *lb.Instance) (*lb.Assignment, error) {
	if len(inst.Shards) == 0 || len(inst.Servers) == 0 {
		return nil, fmt.Errorf("price: empty instance")
	}
	span := e.obs().Span("price.round").Arg("clients", len(inst.Shards))
	defer span.End()
	start := time.Now()

	if !slices.Equal(e.servers, inst.Servers) {
		e.servers = append([]lb.Server(nil), inst.Servers...)
		e.havePrice = false
	}
	seen := make(map[int]bool, len(inst.Shards))
	for _, s := range inst.Shards {
		seen[s.ID] = true
		old, ok := e.shards[s.ID]
		e.shards[s.ID] = s
		switch {
		case !ok:
			e.stats.Arrivals++
			e.churn++
		case old.Load != s.Load || old.Mem != s.Mem:
			e.stats.Updates++
		}
	}
	for id := range e.shards {
		if !seen[id] {
			delete(e.shards, id)
			e.stats.Departures++
			e.churn++
		}
	}

	so := e.opts.Solver
	warm := e.havePrice && !e.opts.NoWarmPrice && len(e.price) == len(inst.Servers) &&
		float64(e.churn) < e.opts.coldChurnFrac()*float64(max(len(inst.Shards), 1))
	if warm {
		so.WarmPrice = e.price
	} else {
		so.WarmPrice = nil
	}
	a, sol, err := SolveLB(inst, so)
	if err != nil {
		return nil, err
	}
	e.price = sol.Price
	e.havePrice = true
	e.churn = 0
	bookRound(&e.stats, e.obs(), sol, warm, start)
	e.lastObj = a.MovedBytes
	span.Arg("warm", warm).Arg("iterations", sol.Iterations)
	return a, nil
}

// Solver adapts the engine to lb.RunRounds' round loop.
func (e *LBEngine) Solver() lb.Solver {
	return func(inst *lb.Instance) (*lb.Assignment, error) { return e.Step(inst) }
}
