// Package lb implements the query load-balancing case study from §4.3 of
// the POP paper (after E-Store/Accordion): assign data shards to servers so
// every server's query load stays within a tolerance of the system average,
// while minimizing the bytes of shard data moved from the previous
// placement. The exact formulation is a mixed-integer linear program solved
// with package milp; the baselines are the E-Store-style greedy
// (SolveGreedy) and the POP adapter (SolvePOP).
package lb

import (
	"fmt"
	"math"
	"math/rand"

	"pop/internal/lp"
	"pop/internal/milp"
)

// Shard is a collection of data items (a POP client): Load is its current
// query rate, Mem its storage footprint.
type Shard struct {
	ID   int
	Load float64
	Mem  float64
}

// Server is a storage node (a POP resource).
type Server struct {
	ID     int
	MemCap float64
}

// Instance is one balancing round: shards with fresh loads, servers, the
// current placement, and the load tolerance.
type Instance struct {
	Shards  []Shard
	Servers []Server
	// Placement[i][j] reports whether shard i is currently materialized on
	// server j (the matrix T in §4.3).
	Placement [][]bool
	// TolFrac is ε expressed as a fraction of the average server load L:
	// every server must end within [L-ε·L, L+ε·L]. The paper's experiments
	// use 5%.
	TolFrac float64
}

// AvgLoad returns L, the average per-server load.
func (inst *Instance) AvgLoad() float64 {
	total := 0.0
	for _, s := range inst.Shards {
		total += s.Load
	}
	return total / float64(len(inst.Servers))
}

// Assignment is the result of a balancing solve.
type Assignment struct {
	// Frac[i][j] is the fraction of shard i's queries served by server j.
	Frac [][]float64
	// Placed[i][j] reports whether shard i is materialized on server j
	// after the move (the indicator A' in §4.3).
	Placed [][]bool
	// Movements counts new materializations: placements with Placed=true
	// where the shard was not already on that server.
	Movements int
	// MovedBytes is the MILP objective: Σ (1-T_ij)·Placed_ij·Mem_i.
	MovedBytes float64
	// MaxDeviation is max_j |load_j - L| / L after the assignment.
	MaxDeviation float64
	// Variables is the solver's variable count (0 for the greedy).
	Variables int
	// Optimal reports whether the solver proved optimality (greedy: false).
	Optimal bool
	// Search is the branch-and-bound accounting of the solve (zero for the
	// greedy and the LP rounding; POP sums its sub-searches).
	Search milp.SearchStats
}

// NewInstance builds an instance with every shard initially placed on a
// server round-robin and uniform memory capacities sized with headroom.
func NewInstance(numShards, numServers int, tolFrac float64, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{TolFrac: tolFrac}
	totalMem := 0.0
	for i := 0; i < numShards; i++ {
		mem := 0.5 + rng.Float64()
		totalMem += mem
		inst.Shards = append(inst.Shards, Shard{
			ID:   i,
			Load: shardLoad(rng, i),
			Mem:  mem,
		})
	}
	memCap := totalMem / float64(numServers) * 3 // generous headroom
	for j := 0; j < numServers; j++ {
		inst.Servers = append(inst.Servers, Server{ID: j, MemCap: memCap})
	}
	inst.Placement = make([][]bool, numShards)
	for i := range inst.Placement {
		inst.Placement[i] = make([]bool, numServers)
		inst.Placement[i][i%numServers] = true
	}
	return inst
}

// shardLoad draws a zipf-flavoured load: a few shards are hot.
func shardLoad(rng *rand.Rand, _ int) float64 {
	u := rng.Float64()
	return 0.2 + math.Pow(1-u, -1/1.5) - 0.5
}

// ShiftLoads produces the next round's loads: multiplicative jitter around
// the current values plus occasional hot-spot spikes. The tolerance band is
// relative to the new average, so no renormalization is needed.
func (inst *Instance) ShiftLoads(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range inst.Shards {
		f := math.Exp(rng.NormFloat64() * 0.25)
		if rng.Float64() < 0.02 {
			f *= 4 // hot spike
		}
		inst.Shards[i].Load *= f
	}
}

// BuildMILP constructs the §4.3 formulation over inst:
//
//	minimize  Σ_ij (1-T_ij)·M_ij·Mem_i
//	s.t.      L-ε ≤ Σ_i A_ij·Load_i ≤ L+ε      ∀ servers j
//	          Σ_j A_ij = 1                       ∀ shards i
//	          Σ_i M_ij·Mem_i ≤ MemCap_j          ∀ servers j
//	          A_ij ≤ M_ij,  M binary, A ∈ [0,1]
//
// It returns the problem plus the A and M variable index matrices
// (aVar[i][j], mVar[i][j]). The builder is shared by SolveMILP, the
// stateful MILPSolver, the equivalence suite, and cmd/milpbench, so every
// consumer sees the identical variable and row order — which is what lets a
// basis snapshot from one round's relaxation seed the next round's search.
func BuildMILP(inst *Instance) (prob *milp.Problem, aVar, mVar [][]int) {
	n, m := len(inst.Shards), len(inst.Servers)
	L := inst.AvgLoad()
	eps := inst.TolFrac * L

	prob = milp.NewProblem(lp.Minimize)
	aVar = make([][]int, n)
	mVar = make([][]int, n)
	for i := 0; i < n; i++ {
		aVar[i] = make([]int, m)
		mVar[i] = make([]int, m)
		for j := 0; j < m; j++ {
			aVar[i][j] = prob.LP.AddVariable(0, 0, 1, "")
			cost := inst.Shards[i].Mem
			if inst.Placement[i][j] {
				cost = 0
			}
			mVar[i][j] = prob.AddBinary(cost, "")
		}
	}
	// Linking: A ≤ M.
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			prob.LP.AddConstraint([]int{aVar[i][j], mVar[i][j]}, []float64{1, -1}, lp.LE, 0, "link")
		}
	}
	// Shard coverage.
	for i := 0; i < n; i++ {
		coef := make([]float64, m)
		for j := range coef {
			coef[j] = 1
		}
		prob.LP.AddConstraint(aVar[i], coef, lp.EQ, 1, "cover")
	}
	// Load band and memory per server.
	for j := 0; j < m; j++ {
		idxs := make([]int, n)
		loads := make([]float64, n)
		mems := make([]float64, n)
		midx := make([]int, n)
		for i := 0; i < n; i++ {
			idxs[i] = aVar[i][j]
			loads[i] = inst.Shards[i].Load
			midx[i] = mVar[i][j]
			mems[i] = inst.Shards[i].Mem
		}
		prob.LP.AddConstraint(idxs, loads, lp.LE, L+eps, "loadhi")
		prob.LP.AddConstraint(idxs, loads, lp.GE, L-eps, "loadlo")
		prob.LP.AddConstraint(midx, mems, lp.LE, inst.Servers[j].MemCap, "mem")
	}
	return prob, aVar, mVar
}

// SolveMILP solves the §4.3 formulation exactly (subject to opts limits).
// A warm-start incumbent from the greedy is installed automatically; the
// returned Assignment carries the search's SearchStats. For round
// sequences, MILPSolver additionally threads each round's root-relaxation
// basis into the next round's search.
func SolveMILP(inst *Instance, opts milp.Options) (*Assignment, error) {
	a, _, err := solveMILP(inst, opts)
	return a, err
}

// solveMILP is SolveMILP plus the root-relaxation basis, which the stateful
// MILPSolver feeds back as the next round's milp.Options.RootBasis.
func solveMILP(inst *Instance, opts milp.Options) (*Assignment, *lp.Basis, error) {
	n, m := len(inst.Shards), len(inst.Servers)
	if n == 0 || m == 0 {
		return nil, nil, fmt.Errorf("lb: empty instance")
	}
	prob, aVar, mVar := BuildMILP(inst)

	// Warm start from the greedy solution.
	if opts.Incumbent == nil {
		greedy := SolveGreedy(inst)
		if greedy.MaxDeviation <= inst.TolFrac+1e-9 {
			x := make([]float64, prob.LP.NumVariables())
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					x[aVar[i][j]] = greedy.Frac[i][j]
					if greedy.Placed[i][j] {
						x[mVar[i][j]] = 1
					}
				}
			}
			opts.Incumbent = x
		}
	}

	sol, err := prob.SolveWithOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != milp.Optimal && sol.Status != milp.Feasible {
		// Node/time-limited search with no incumbent (or an infeasible
		// band): fall back to the greedy best effort, marked non-optimal.
		g := SolveGreedy(inst)
		g.Optimal = false
		g.Search = sol.SearchStats
		return g, sol.RootBasis, nil
	}

	out := &Assignment{
		Frac:      make([][]float64, n),
		Placed:    make([][]bool, n),
		Variables: prob.LP.NumVariables(),
		Optimal:   sol.Status == milp.Optimal,
		Search:    sol.SearchStats,
	}
	for i := 0; i < n; i++ {
		out.Frac[i] = make([]float64, m)
		out.Placed[i] = make([]bool, m)
		for j := 0; j < m; j++ {
			out.Frac[i][j] = sol.X[aVar[i][j]]
			out.Placed[i][j] = sol.X[mVar[i][j]] > 0.5
		}
	}
	finalizeAssignment(inst, out)
	return out, sol.RootBasis, nil
}

// MILPSolver is a stateful exact solver for round sequences: each round's
// search emits its root-relaxation basis, and the next round — the same
// formulation with drifted loads and costs — seeds its root with it
// (milp.Options.RootBasis), so the first factorization of every round after
// the first starts from last round's optimal basis instead of from scratch.
// A snapshot that no longer fits (the instance changed shape) is discarded
// inside the LP solver, so the seeding never changes outcomes.
type MILPSolver struct {
	opts      milp.Options
	rootBasis *lp.Basis
}

// NewMILPSolver returns a stateful exact solver; opts applies to every
// round (opts.RootBasis is overwritten with the threaded basis).
func NewMILPSolver(opts milp.Options) *MILPSolver {
	return &MILPSolver{opts: opts}
}

// Solve runs one balancing round, seeding the search with the previous
// round's root basis. It has the Solver signature for RunRounds.
func (s *MILPSolver) Solve(inst *Instance) (*Assignment, error) {
	opts := s.opts
	opts.RootBasis = s.rootBasis
	a, basis, err := solveMILP(inst, opts)
	if err != nil {
		return nil, err
	}
	if basis != nil {
		s.rootBasis = basis
	}
	return a, nil
}

// finalizeAssignment computes Movements, MovedBytes, and MaxDeviation.
func finalizeAssignment(inst *Instance, a *Assignment) {
	n, m := len(inst.Shards), len(inst.Servers)
	L := inst.AvgLoad()
	a.Movements = 0
	a.MovedBytes = 0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if a.Placed[i][j] && !inst.Placement[i][j] {
				a.Movements++
				a.MovedBytes += inst.Shards[i].Mem
			}
		}
	}
	a.MaxDeviation = 0
	for j := 0; j < m; j++ {
		load := 0.0
		for i := 0; i < n; i++ {
			load += a.Frac[i][j] * inst.Shards[i].Load
		}
		if dev := math.Abs(load-L) / L; dev > a.MaxDeviation {
			a.MaxDeviation = dev
		}
	}
}

// VerifyFeasible checks coverage, linking, memory, and (approximate) load
// band.
func VerifyFeasible(inst *Instance, a *Assignment, tol float64) error {
	n, m := len(inst.Shards), len(inst.Servers)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < m; j++ {
			f := a.Frac[i][j]
			if f < -tol {
				return fmt.Errorf("lb: negative fraction shard %d server %d", i, j)
			}
			if f > tol && !a.Placed[i][j] {
				return fmt.Errorf("lb: shard %d serves from %d without placement", i, j)
			}
			sum += f
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("lb: shard %d coverage %g != 1", i, sum)
		}
	}
	for j := 0; j < m; j++ {
		mem := 0.0
		for i := 0; i < n; i++ {
			if a.Placed[i][j] {
				mem += inst.Shards[i].Mem
			}
		}
		if mem > inst.Servers[j].MemCap+tol*(1+inst.Servers[j].MemCap) {
			return fmt.Errorf("lb: server %d memory %g > %g", j, mem, inst.Servers[j].MemCap)
		}
	}
	return nil
}
