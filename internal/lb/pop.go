package lb

import (
	"math/rand"
	"sort"

	"pop/internal/core"
	"pop/internal/milp"
)

// SolvePOP applies the POP procedure to a balancing instance: servers are
// divided evenly into k sub-clusters, shards are partitioned so that every
// subset carries (approximately) the same total load — the paper's §4.3
// requirement — and each sub-problem is solved with the unchanged MILP
// formulation against its own sub-average load band. Shards whose current
// server lands in a different sub-problem are forced to move, which is why
// POP's movement count grows with k on small instances (visible in
// Figure 13).
func SolvePOP(inst *Instance, opts core.Options, milpOpts milp.Options) (*Assignment, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	n, m := len(inst.Shards), len(inst.Servers)
	if k > m {
		k = m
	}

	// POP's map step and the MILP search now both parallelize; dividing the
	// worker budget across concurrent sub-searches keeps the total thread
	// demand at milpOpts.Workers instead of k× that.
	if opts.Parallel && k > 1 && milpOpts.Workers > 1 {
		milpOpts.Workers = max(1, milpOpts.Workers/k)
	}

	serverGroups := core.Partition(m, k, core.RoundRobin, opts.Seed, nil)
	shardGroups := balancedShardPartition(inst, k, opts.Seed)

	subAssignments := make([]*Assignment, k)
	subInsts := make([]*Instance, k)
	for p := 0; p < k; p++ {
		sub := &Instance{TolFrac: inst.TolFrac}
		for _, i := range shardGroups[p] {
			sub.Shards = append(sub.Shards, inst.Shards[i])
		}
		for _, j := range serverGroups[p] {
			sub.Servers = append(sub.Servers, inst.Servers[j])
		}
		sub.Placement = make([][]bool, len(sub.Shards))
		for si, i := range shardGroups[p] {
			sub.Placement[si] = make([]bool, len(sub.Servers))
			for sj, j := range serverGroups[p] {
				sub.Placement[si][sj] = inst.Placement[i][j]
			}
		}
		subInsts[p] = sub
	}

	err := core.ParallelMap(k, opts.Parallel, func(p int) error {
		a, err := SolveMILP(subInsts[p], milpOpts)
		subAssignments[p] = a
		return err
	})
	if err != nil {
		return nil, err
	}

	out := &Assignment{
		Frac:    make([][]float64, n),
		Placed:  make([][]bool, n),
		Optimal: true,
	}
	for i := 0; i < n; i++ {
		out.Frac[i] = make([]float64, m)
		out.Placed[i] = make([]bool, m)
	}
	for p := 0; p < k; p++ {
		sa := subAssignments[p]
		out.Variables += sa.Variables
		out.Optimal = out.Optimal && sa.Optimal
		out.Search.Add(sa.Search)
		for si, i := range shardGroups[p] {
			for sj, j := range serverGroups[p] {
				out.Frac[i][j] = sa.Frac[si][sj]
				out.Placed[i][j] = sa.Placed[si][sj]
			}
		}
	}
	finalizeAssignment(inst, out)
	return out, nil
}

// balancedShardPartition deals shards into k groups equalizing total load:
// shards are shuffled, then sorted by load descending and greedily assigned
// to the lightest group with room (LPT scheduling), keeping group sizes
// within ±1 of n/k.
func balancedShardPartition(inst *Instance, k int, seed int64) [][]int {
	n := len(inst.Shards)
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	sort.SliceStable(order, func(a, b int) bool {
		return inst.Shards[order[a]].Load > inst.Shards[order[b]].Load
	})
	groups := make([][]int, k)
	sums := make([]float64, k)
	capPer := (n + k - 1) / k
	for _, i := range order {
		best := -1
		for p := 0; p < k; p++ {
			if len(groups[p]) >= capPer {
				continue
			}
			if best < 0 || sums[p] < sums[best] {
				best = p
			}
		}
		if best < 0 {
			best = 0
		}
		groups[best] = append(groups[best], i)
		sums[best] += inst.Shards[i].Load
	}
	return groups
}
