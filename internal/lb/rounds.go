package lb

import (
	"time"

	"pop/internal/milp"
)

// Solver produces an assignment for one balancing round.
type Solver func(*Instance) (*Assignment, error)

// RoundsResult aggregates a multi-round simulation (Figure 13 reports the
// per-round averages).
type RoundsResult struct {
	Rounds        int
	AvgMovements  float64
	AvgMovedBytes float64
	AvgDeviation  float64
	AvgRuntime    time.Duration
	TotalRuntime  time.Duration
	// OptimalRounds counts rounds where the solver proved optimality.
	OptimalRounds int
	// Search sums the branch-and-bound accounting across all rounds (zero
	// for non-MILP solvers), so experiment rows can attribute time to model
	// builds vs LP pivots.
	Search milp.SearchStats
}

// RunRounds plays `rounds` balancing rounds: each round the shard loads
// shift (ShiftLoads), the solver computes a new assignment, and the
// resulting placement becomes the next round's starting placement — the
// stateful setting of Figure 13 ("previous round's solution is initial
// state for current round").
func RunRounds(inst *Instance, rounds int, seed int64, solver Solver) (*RoundsResult, error) {
	res := &RoundsResult{Rounds: rounds}
	for r := 0; r < rounds; r++ {
		inst.ShiftLoads(seed + int64(r)*101)
		start := time.Now()
		a, err := solver(inst)
		el := time.Since(start)
		if err != nil {
			return nil, err
		}
		res.TotalRuntime += el
		res.AvgMovements += float64(a.Movements)
		res.AvgMovedBytes += a.MovedBytes
		res.AvgDeviation += a.MaxDeviation
		res.Search.Add(a.Search)
		if a.Optimal {
			res.OptimalRounds++
		}
		// The new placement seeds the next round.
		inst.Placement = a.Placed
	}
	f := float64(rounds)
	res.AvgMovements /= f
	res.AvgMovedBytes /= f
	res.AvgDeviation /= f
	res.AvgRuntime = time.Duration(float64(res.TotalRuntime) / f)
	return res, nil
}
