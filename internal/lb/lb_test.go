package lb

import (
	"testing"

	"pop/internal/core"
	"pop/internal/lp"
	"pop/internal/milp"
)

func TestGreedyBalances(t *testing.T) {
	inst := NewInstance(24, 4, 0.1, 1)
	// Perturb loads so the round-robin start is unbalanced.
	inst.ShiftLoads(2)
	a := SolveGreedy(inst)
	if err := VerifyFeasible(inst, a, 1e-9); err != nil {
		t.Fatal(err)
	}
	if a.Movements == 0 {
		t.Log("greedy needed no movements (already balanced)")
	}
	if a.MaxDeviation > 1.0 {
		t.Fatalf("greedy left deviation %g", a.MaxDeviation)
	}
}

func TestMILPReachesBand(t *testing.T) {
	inst := NewInstance(12, 3, 0.05, 3)
	inst.ShiftLoads(4)
	a, err := SolveMILP(inst, milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Fractional query routing always allows hitting the band exactly.
	if a.MaxDeviation > 0.05+1e-6 {
		t.Fatalf("MILP deviation %g above tolerance", a.MaxDeviation)
	}
}

func TestMILPBeatsGreedyOnMovements(t *testing.T) {
	inst := NewInstance(12, 3, 0.08, 5)
	inst.ShiftLoads(6)
	greedy := SolveGreedy(inst)
	a, err := SolveMILP(inst, milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Optimal {
		t.Skip("MILP hit the node limit; movement comparison not meaningful")
	}
	// The exact MILP cannot move more bytes than a feasible greedy that
	// reaches the band.
	if greedy.MaxDeviation <= inst.TolFrac && a.MovedBytes > greedy.MovedBytes+1e-9 {
		t.Fatalf("MILP moved %g bytes, greedy %g", a.MovedBytes, greedy.MovedBytes)
	}
}

func TestPOPFeasibleAndCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("exact MILP reference solve is slow; skipped with -short")
	}
	inst := NewInstance(24, 6, 0.1, 7)
	inst.ShiftLoads(8)
	a, err := SolvePOP(inst, core.Options{K: 3, Seed: 2, Parallel: true}, milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, a, 1e-6); err != nil {
		t.Fatal(err)
	}
	exact, err := SolveMILP(inst, milp.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	// POP sub-problems together hold ~1/k the binary variables.
	if a.Variables >= exact.Variables {
		t.Fatalf("POP variables %d >= exact %d", a.Variables, exact.Variables)
	}
}

func TestRunRounds(t *testing.T) {
	inst := NewInstance(16, 4, 0.1, 9)
	res, err := RunRounds(inst, 5, 42, func(in *Instance) (*Assignment, error) {
		return SolveGreedy(in), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.AvgRuntime <= 0 {
		t.Fatal("runtime accounting missing")
	}
}

func TestRunRoundsStateful(t *testing.T) {
	// After a round, the placement must equal the assignment's Placed.
	inst := NewInstance(10, 2, 0.2, 11)
	var last *Assignment
	_, err := RunRounds(inst, 3, 1, func(in *Instance) (*Assignment, error) {
		last = SolveGreedy(in)
		return last, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Placement {
		for j := range inst.Placement[i] {
			if inst.Placement[i][j] != last.Placed[i][j] {
				t.Fatal("placement not threaded through rounds")
			}
		}
	}
}

func TestBalancedShardPartition(t *testing.T) {
	inst := NewInstance(40, 8, 0.1, 13)
	groups := balancedShardPartition(inst, 4, 1)
	if len(groups) != 4 {
		t.Fatalf("got %d groups", len(groups))
	}
	var sums []float64
	seen := map[int]bool{}
	for _, g := range groups {
		s := 0.0
		for _, i := range g {
			if seen[i] {
				t.Fatalf("shard %d in two groups", i)
			}
			seen[i] = true
			s += inst.Shards[i].Load
		}
		sums = append(sums, s)
	}
	if len(seen) != 40 {
		t.Fatalf("assigned %d shards", len(seen))
	}
	lo, hi := sums[0], sums[0]
	for _, s := range sums {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	// LPT keeps groups within a small factor.
	if hi > 1.5*lo {
		t.Fatalf("unbalanced load partition: %v", sums)
	}
}

func TestMILPWarmStartUsed(t *testing.T) {
	inst := NewInstance(10, 2, 0.15, 15)
	inst.ShiftLoads(16)
	// A tiny node budget still yields a feasible answer thanks to the
	// greedy warm start.
	a, err := SolveMILP(inst, milp.Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, a, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestLPRoundingFeasibleButMovesMore(t *testing.T) {
	inst := NewInstance(16, 4, 0.05, 21)
	inst.ShiftLoads(22)
	lpr, err := SolveLPRounding(inst, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, lpr, 1e-6); err != nil {
		t.Fatal(err)
	}
	if lpr.MaxDeviation > inst.TolFrac+1e-6 {
		t.Fatalf("LP rounding left the band: %g", lpr.MaxDeviation)
	}
	exact, err := SolveMILP(inst, milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Optimal {
		t.Skip("MILP not proven optimal; comparison not meaningful")
	}
	// The rounded relaxation cannot move less data than the true optimum.
	if lpr.MovedBytes < exact.MovedBytes-1e-9 {
		t.Fatalf("LP rounding moved %g bytes, below MILP optimum %g", lpr.MovedBytes, exact.MovedBytes)
	}
}

func TestMILPSolverThreadsRootBasisAcrossRounds(t *testing.T) {
	inst := NewInstance(10, 3, 0.1, 31)
	solver := NewMILPSolver(milp.Options{MaxNodes: 20000})
	res, err := RunRounds(inst, 3, 77, solver.Solve)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalRounds != 3 {
		t.Fatalf("only %d/3 rounds optimal", res.OptimalRounds)
	}
	if res.Search.Nodes == 0 || res.Search.LPPivots == 0 {
		t.Fatalf("search stats not aggregated: %+v", res.Search)
	}
	// After round one the solver carries a root basis, so rounds 2+ must
	// attempt the root seed (booked as warm or cold-fallback).
	if solver.rootBasis == nil {
		t.Fatal("no root basis retained across rounds")
	}

	// Seeding never changes answers: on identical instances, a solver
	// carrying a (deliberately mismatched-vintage) root basis must reach
	// the stateless solve's optimal objective. Later-round *placements* may
	// legitimately differ between runs (alternate optimal incumbents feed
	// back through inst.Placement), so the contract is per-instance.
	seededInst := NewInstance(10, 3, 0.1, 99)
	seededInst.ShiftLoads(98)
	statelessInst := NewInstance(10, 3, 0.1, 99)
	statelessInst.ShiftLoads(98)
	seeded, err := solver.Solve(seededInst) // solver still holds round 3's basis
	if err != nil {
		t.Fatal(err)
	}
	stateless, err := SolveMILP(statelessInst, milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Optimal != stateless.Optimal {
		t.Fatalf("seeded optimal=%v, stateless optimal=%v", seeded.Optimal, stateless.Optimal)
	}
	if d := seeded.MovedBytes - stateless.MovedBytes; d > 1e-6 || d < -1e-6 {
		t.Fatalf("seeded moved %g bytes, stateless %g", seeded.MovedBytes, stateless.MovedBytes)
	}
}

func TestSolveMILPReportsSearchStats(t *testing.T) {
	inst := NewInstance(12, 3, 0.05, 41)
	inst.ShiftLoads(42)
	a, err := SolveMILP(inst, milp.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Search.Nodes == 0 || a.Search.LPPivots == 0 {
		t.Fatalf("missing search stats: %+v", a.Search)
	}
	if a.Search.Nodes > 2 && a.Search.WarmNodes == 0 {
		t.Fatalf("no node ever warm-started: %+v", a.Search)
	}
}
