package lb

import (
	"fmt"

	"pop/internal/lp"
)

// SolveLPRounding is the natural non-MILP baseline: solve the continuous
// relaxation of the §4.3 formulation (placement indicators in [0,1]) and
// materialize a shard on every server that serves any of its queries. At
// the relaxation's optimum the indicator equals the served fraction, so
// rounding up inflates the movement count — demonstrating why the paper's
// formulation needs integrality (and why its exponential solve cost, which
// POP attacks, cannot simply be relaxed away).
func SolveLPRounding(inst *Instance, opts lp.Options) (*Assignment, error) {
	n, m := len(inst.Shards), len(inst.Servers)
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("lb: empty instance")
	}
	L := inst.AvgLoad()
	eps := inst.TolFrac * L

	prob := lp.NewModel(lp.Minimize)
	aVar := make([][]int, n)
	mVar := make([][]int, n)
	for i := 0; i < n; i++ {
		aVar[i] = make([]int, m)
		mVar[i] = make([]int, m)
		for j := 0; j < m; j++ {
			aVar[i][j] = prob.AddVariable(0, 0, 1, "")
			cost := inst.Shards[i].Mem
			if inst.Placement[i][j] {
				cost = 0
			}
			mVar[i][j] = prob.AddVariable(cost, 0, 1, "") // relaxed indicator
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			prob.AddConstraint([]int{aVar[i][j], mVar[i][j]}, []float64{1, -1}, lp.LE, 0, "link")
		}
		coef := make([]float64, m)
		for j := range coef {
			coef[j] = 1
		}
		prob.AddConstraint(aVar[i], coef, lp.EQ, 1, "cover")
	}
	for j := 0; j < m; j++ {
		idxs := make([]int, n)
		loads := make([]float64, n)
		midx := make([]int, n)
		mems := make([]float64, n)
		for i := 0; i < n; i++ {
			idxs[i] = aVar[i][j]
			loads[i] = inst.Shards[i].Load
			midx[i] = mVar[i][j]
			mems[i] = inst.Shards[i].Mem
		}
		prob.AddConstraint(idxs, loads, lp.LE, L+eps, "loadhi")
		prob.AddConstraint(idxs, loads, lp.GE, L-eps, "loadlo")
		prob.AddConstraint(midx, mems, lp.LE, inst.Servers[j].MemCap, "mem")
	}

	sol, err := prob.SolveWithOptions(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		g := SolveGreedy(inst)
		g.Optimal = false
		return g, nil
	}

	out := &Assignment{
		Frac:      make([][]float64, n),
		Placed:    make([][]bool, n),
		Variables: prob.NumVariables(),
	}
	for i := 0; i < n; i++ {
		out.Frac[i] = make([]float64, m)
		out.Placed[i] = make([]bool, m)
		for j := 0; j < m; j++ {
			out.Frac[i][j] = sol.X[aVar[i][j]]
			out.Placed[i][j] = sol.X[aVar[i][j]] > 1e-6
		}
	}
	finalizeAssignment(inst, out)
	return out, nil
}
