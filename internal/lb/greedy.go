package lb

import (
	"sort"
)

// SolveGreedy is the E-Store-style one-tier greedy the paper compares
// against in Figure 13. Each shard lives wholly on one server; while any
// server sits above the band, the algorithm moves the hottest shard that
// fits from the most loaded server to the least loaded one. It is fast but
// moves more data than the MILP and may fail to reach the band when shard
// loads are coarse.
func SolveGreedy(inst *Instance) *Assignment {
	n, m := len(inst.Shards), len(inst.Servers)
	L := inst.AvgLoad()
	eps := inst.TolFrac * L

	// Home server: the first current placement (round-robin initially;
	// single-home thereafter in the rounds simulation).
	home := make([]int, n)
	for i := range home {
		home[i] = 0
		for j := 0; j < m; j++ {
			if inst.Placement[i][j] {
				home[i] = j
				break
			}
		}
	}
	load := make([]float64, m)
	mem := make([]float64, m)
	for i, s := range inst.Shards {
		load[home[i]] += s.Load
		mem[home[i]] += s.Mem
	}

	moved := map[int]bool{}
	for iter := 0; iter < 4*n; iter++ {
		// Most and least loaded servers.
		hi, lo := 0, 0
		for j := 1; j < m; j++ {
			if load[j] > load[hi] {
				hi = j
			}
			if load[j] < load[lo] {
				lo = j
			}
		}
		if load[hi] <= L+eps && load[lo] >= L-eps {
			break // within band
		}
		// Hottest shard on hi that fits on lo without overshooting the
		// band on lo (prefer the largest that keeps lo ≤ L+eps).
		var cands []int
		for i := range home {
			if home[i] == hi {
				cands = append(cands, i)
			}
		}
		sort.SliceStable(cands, func(a, b int) bool {
			return inst.Shards[cands[a]].Load > inst.Shards[cands[b]].Load
		})
		movedOne := false
		for _, i := range cands {
			s := inst.Shards[i]
			if mem[lo]+s.Mem > inst.Servers[lo].MemCap {
				continue
			}
			if load[lo]+s.Load > L+eps && load[hi]-s.Load < L-eps {
				continue // move would overshoot both ways
			}
			if load[lo]+s.Load > load[hi] {
				continue // would just swap the imbalance
			}
			home[i] = lo
			load[hi] -= s.Load
			load[lo] += s.Load
			mem[hi] -= s.Mem
			mem[lo] += s.Mem
			moved[i] = true
			movedOne = true
			break
		}
		if !movedOne {
			break // no improving move
		}
	}

	out := &Assignment{
		Frac:   make([][]float64, n),
		Placed: make([][]bool, n),
	}
	for i := 0; i < n; i++ {
		out.Frac[i] = make([]float64, m)
		out.Placed[i] = make([]bool, m)
		out.Frac[i][home[i]] = 1
		out.Placed[i][home[i]] = true
	}
	finalizeAssignment(inst, out)
	return out
}
