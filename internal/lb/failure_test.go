package lb

import (
	"testing"

	"pop/internal/core"
	"pop/internal/milp"
)

func TestInfeasibleBandFallsBackToGreedy(t *testing.T) {
	// A hot shard alone does not break the band — fractional query routing
	// can always split it. Pinning the hot shard to its home server by
	// memory (it fits nowhere else) makes the ±1% band genuinely
	// unattainable, and SolveMILP must degrade to the greedy best effort
	// rather than fail.
	inst := NewInstance(6, 3, 0.01, 1)
	inst.Shards[0].Load = 1000
	inst.Shards[0].Mem = 10
	home := 0
	for j, on := range inst.Placement[0] {
		if on {
			home = j
		}
	}
	for j := range inst.Servers {
		if j == home {
			inst.Servers[j].MemCap = 20
		} else {
			inst.Servers[j].MemCap = 8 // shard 0 cannot move or replicate here
		}
	}
	a, err := SolveMILP(inst, milp.Options{MaxNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.Optimal {
		t.Fatal("an unattainable band cannot yield a proven optimum")
	}
	if err := VerifyFeasible(inst, a, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestTightMemoryRespected(t *testing.T) {
	inst := NewInstance(8, 2, 0.3, 3)
	// Memory just large enough for the current placement.
	for j := range inst.Servers {
		used := 0.0
		for i := range inst.Shards {
			if inst.Placement[i][j] {
				used += inst.Shards[i].Mem
			}
		}
		inst.Servers[j].MemCap = used * 1.2
	}
	a, err := SolveMILP(inst, milp.Options{MaxNodes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, a, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestPOPKExceedingServersClamped(t *testing.T) {
	inst := NewInstance(12, 3, 0.1, 5)
	a, err := SolvePOP(inst, core.Options{K: 10, Seed: 1}, milp.Options{MaxNodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(inst, a, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInstanceErrors(t *testing.T) {
	if _, err := SolveMILP(&Instance{}, milp.Options{}); err == nil {
		t.Fatal("expected error for empty instance")
	}
}
