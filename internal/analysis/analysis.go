// Package analysis implements the theoretical machinery of §5.1 and
// Appendix A of the POP paper: the Chernoff tail bound on the number of
// misplaced jobs under random partitioning, the union bound across resource
// types and sub-problems, the resulting optimality-gap bound (Equation 2),
// and a Monte Carlo simulator that validates the bound empirically.
package analysis

import (
	"math"
	"math/rand"
)

// ChernoffTail is C(δ, n_s, k) from Appendix A (Equation 3): an upper bound
// on the probability that the number of type-s jobs landing in one
// sub-problem exceeds its expectation n_s/k by a factor (1+δ):
//
//	Pr[X ≥ (1+δ)·n_s/k] ≤ exp(−δ²·n_s / ((2+δ)·k))
func ChernoffTail(delta, ns float64, k int) float64 {
	if delta <= 0 || ns <= 0 || k <= 0 {
		return 1
	}
	return math.Exp(-delta * delta * ns / ((2 + delta) * float64(k)))
}

// GapProbabilityBound is Equation 2: an upper bound on the probability that
// the POP solution's utility falls more than δ·u_maxgap·n below optimal,
// for n jobs split evenly over r resource types and k sub-problems:
//
//	Pr[U(Γ*) − U(Γ_POP) ≥ δ·u_maxgap·n] ≤ r·k·exp(−δ²·n / ((2+δ)·r·k))
func GapProbabilityBound(delta float64, n, r, k int) float64 {
	if r <= 0 || k <= 0 {
		return 1
	}
	ns := float64(n) / float64(r)
	b := float64(r*k) * ChernoffTail(delta, ns, k)
	return math.Min(1, b)
}

// GapBound returns the absolute utility-gap threshold δ·u_maxgap·n that
// GapProbabilityBound refers to.
func GapBound(delta, umaxgap float64, n int) float64 {
	return delta * umaxgap * float64(n)
}

// MisplacedResult summarizes a Monte Carlo experiment.
type MisplacedResult struct {
	Trials int
	// ExceedFraction is the fraction of trials in which the total number of
	// misplaced jobs Σ_{s,t} q_{s,t} reached δ·n.
	ExceedFraction float64
	// MeanMisplacedFrac is the mean of (Σ q_{s,t})/n across trials.
	MeanMisplacedFrac float64
}

// SimulateMisplaced estimates the probability the bound controls: n jobs of
// r types (n/r each) are assigned to k sub-problems uniformly at random;
// q_{s,t} = max(0, X_{s,t} − n_s/k) counts jobs of type s in sub-problem t
// beyond the per-sub-problem capacity of that type.
func SimulateMisplaced(n, r, k, trials int, delta float64, seed int64) MisplacedResult {
	rng := rand.New(rand.NewSource(seed))
	ns := n / r
	perCell := float64(ns) / float64(k)
	exceed := 0
	meanFrac := 0.0
	counts := make([]int, k)
	for trial := 0; trial < trials; trial++ {
		totalMisplaced := 0.0
		for s := 0; s < r; s++ {
			for t := range counts {
				counts[t] = 0
			}
			for j := 0; j < ns; j++ {
				counts[rng.Intn(k)]++
			}
			for t := 0; t < k; t++ {
				if over := float64(counts[t]) - perCell; over > 0 {
					totalMisplaced += over
				}
			}
		}
		frac := totalMisplaced / float64(n)
		meanFrac += frac
		if frac >= delta {
			exceed++
		}
	}
	return MisplacedResult{
		Trials:            trials,
		ExceedFraction:    float64(exceed) / float64(trials),
		MeanMisplacedFrac: meanFrac / float64(trials),
	}
}
