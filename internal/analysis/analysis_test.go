package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

// TestAppendixNumbers reproduces the worked examples in Appendix A: for
// r=2, k=2, n=m=10⁵ split equally (n_s = 5·10⁴), the probability of
// exceeding the expected count by 1%/2%/3%.
func TestAppendixNumbers(t *testing.T) {
	cases := []struct {
		delta float64
		want  float64
	}{
		{0.01, 0.2877},
		{0.02, 0.00694},
		{0.03, 0.0000145},
	}
	for _, c := range cases {
		got := ChernoffTail(c.delta, 5e4, 2)
		// The paper rounds aggressively; match within 7%.
		if relErr(got, c.want) > 0.07 {
			t.Fatalf("δ=%g: bound %g, paper %g", c.delta, got, c.want)
		}
	}
}

// TestSection51Example reproduces the §5.1 headline: 10⁶ jobs, k=10,
// r=4 → Pr[>3%% misplaced] ≤ 0.000614.
func TestSection51Example(t *testing.T) {
	got := GapProbabilityBound(0.03, 1e6, 4, 10)
	if relErr(got, 0.000614) > 0.01 {
		t.Fatalf("bound %g, paper 0.000614", got)
	}
}

func TestBoundMonotonicity(t *testing.T) {
	// Larger n → smaller probability; larger k or r → larger probability.
	// Parameters chosen so none of the bounds clamp at 1.
	b := func(n, r, k int) float64 { return GapProbabilityBound(0.05, n, r, k) }
	if !(b(1000000, 4, 8) < b(100000, 4, 8)) {
		t.Fatal("bound should shrink with n")
	}
	if !(b(1000000, 4, 16) > b(1000000, 4, 8)) {
		t.Fatal("bound should grow with k")
	}
	if !(b(1000000, 8, 8) > b(1000000, 4, 8)) {
		t.Fatal("bound should grow with r")
	}
}

func TestBoundInUnitInterval(t *testing.T) {
	f := func(d uint8, nRaw uint16, rRaw, kRaw uint8) bool {
		delta := float64(d%100)/100 + 0.001
		n := int(nRaw) + 10
		r := int(rRaw%8) + 1
		k := int(kRaw%16) + 1
		b := GapProbabilityBound(delta, n, r, k)
		return b >= 0 && b <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGapBound(t *testing.T) {
	if got := GapBound(0.03, 2.5, 1000); got != 75 {
		t.Fatalf("GapBound = %g, want 75", got)
	}
}

// TestMonteCarloWithinBound verifies the Chernoff+union bound dominates the
// empirical exceed probability.
func TestMonteCarloWithinBound(t *testing.T) {
	n, r, k := 20000, 4, 5
	delta := 0.02
	res := SimulateMisplaced(n, r, k, 300, delta, 7)
	bound := GapProbabilityBound(delta, n, r, k)
	if res.ExceedFraction > bound+0.05 {
		t.Fatalf("empirical %g exceeds bound %g", res.ExceedFraction, bound)
	}
	// Sanity: some misplacement always occurs under random assignment.
	if res.MeanMisplacedFrac <= 0 {
		t.Fatal("no misplacement observed")
	}
}

// TestMonteCarloSmallNLooseBound: with tiny n the bound is vacuous (�users
// see probability 1) but the simulator still works.
func TestMonteCarloSmallNLooseBound(t *testing.T) {
	res := SimulateMisplaced(100, 2, 4, 100, 0.01, 3)
	if res.ExceedFraction < 0.5 {
		t.Fatalf("tiny n should frequently exceed 1%%: got %g", res.ExceedFraction)
	}
	if GapProbabilityBound(0.01, 100, 2, 4) < 0.99 {
		t.Fatal("bound should be vacuous at tiny n")
	}
}

func TestDegenerateInputs(t *testing.T) {
	if ChernoffTail(0, 100, 2) != 1 {
		t.Fatal("δ=0 should give trivial bound")
	}
	if GapProbabilityBound(0.1, 100, 0, 2) != 1 {
		t.Fatal("r=0 should give trivial bound")
	}
}
