package gavelsim

import (
	"errors"
	"strings"
	"testing"

	"pop/internal/cluster"
)

func TestPolicyErrorPropagates(t *testing.T) {
	sentinel := errors.New("policy exploded")
	cfg := Config{
		Cluster:            cluster.NewCluster(2, 2, 2),
		NumJobs:            4,
		ArrivalRatePerHour: 100,
		Seed:               1,
	}
	_, err := Run(cfg, func([]cluster.Job, cluster.Cluster) (*cluster.Allocation, error) {
		return nil, sentinel
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if err != nil && !strings.Contains(err.Error(), "policy failed") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestSimTimeLimitTruncates(t *testing.T) {
	// A starving policy (zero allocation) cannot finish any job; the
	// simulation must stop at MaxSimHours rather than hang.
	cfg := Config{
		Cluster:      cluster.NewCluster(2, 2, 2),
		NumJobs:      3,
		AllAtOnce:    true,
		RoundSeconds: 3600,
		MaxSimHours:  2,
		Seed:         5,
	}
	res, err := Run(cfg, func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		a := &cluster.Allocation{
			X:      make([][]float64, len(jobs)),
			EffThr: make([]float64, len(jobs)),
		}
		for i := range jobs {
			a.X[i] = make([]float64, c.NumTypes())
		}
		return a, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("starved jobs completed: %d", res.Completed)
	}
	if res.Rounds == 0 || res.Rounds > 3 {
		t.Fatalf("rounds = %d, want 1..2", res.Rounds)
	}
}
