// Package gavelsim is a discrete-event simulator for the end-to-end cluster
// scheduling experiments (Figures 6 and 8 of the POP paper). It plays a
// synthetic job trace against a pluggable allocation policy (the exact
// Gavel formulations from package cluster, or their POP variants) and
// reports the downstream metrics the paper cares about: average job
// completion time, makespan, and cumulative policy computation time.
//
// The simulation model follows Gavel's: time advances in fixed scheduling
// rounds; at each round boundary the policy recomputes the allocation over
// the currently active jobs; during a round each job progresses at its
// allocated effective throughput.
package gavelsim

import (
	"fmt"
	"math/rand"
	"time"

	"pop/internal/cluster"
)

// Policy computes an allocation for the active jobs.
type Policy func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error)

// OnlineAllocator is a stateful allocation engine that carries solver state
// (stable partitions, warm simplex bases) across scheduling rounds — the
// incremental counterpart of Policy. online.ClusterEngine implements it;
// the interface is structural so this package needs no dependency on the
// engine.
type OnlineAllocator interface {
	Step(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error)
}

// RunOnline plays the trace against a stateful engine: each round the
// engine receives the active set, derives the deltas (arrivals,
// completions) itself, and re-solves only what changed.
func RunOnline(cfg Config, eng OnlineAllocator) (*Result, error) {
	return Run(cfg, eng.Step)
}

// Config describes a simulation.
type Config struct {
	Cluster cluster.Cluster
	// NumJobs is the total number of jobs in the trace.
	NumJobs int
	// ArrivalRatePerHour is the Poisson arrival rate. Ignored when
	// AllAtOnce is set.
	ArrivalRatePerHour float64
	// AllAtOnce submits every job at t=0 (the makespan experiment).
	AllAtOnce bool
	// RoundSeconds is the scheduling round length; 0 means 360 (Gavel's
	// 6-minute rounds).
	RoundSeconds float64
	// MultiGPUFrac is the fraction of multi-GPU jobs in the trace.
	MultiGPUFrac float64
	// MaxSimHours aborts runaway simulations; 0 means 24*30 (30 days).
	MaxSimHours float64
	Seed        int64
}

// Result aggregates the simulation outputs.
type Result struct {
	// AvgJCTHours is the mean completion time minus arrival time.
	AvgJCTHours float64
	// MakespanHours is the completion time of the last job.
	MakespanHours float64
	// PolicyTime is the cumulative wall-clock time spent in the policy.
	PolicyTime time.Duration
	// PolicyCalls is the number of allocation recomputations.
	PolicyCalls int
	// Completed is the number of jobs that finished within MaxSimHours.
	Completed int
	Rounds    int
}

// MeanPolicyTime is PolicyTime / PolicyCalls.
func (r *Result) MeanPolicyTime() time.Duration {
	if r.PolicyCalls == 0 {
		return 0
	}
	return r.PolicyTime / time.Duration(r.PolicyCalls)
}

type traceJob struct {
	job       cluster.Job
	arrival   float64 // seconds
	remaining float64 // steps
	done      bool
	finish    float64
}

// Run plays the trace against the policy.
func Run(cfg Config, policy Policy) (*Result, error) {
	if cfg.NumJobs <= 0 {
		return nil, fmt.Errorf("gavelsim: NumJobs must be positive")
	}
	round := cfg.RoundSeconds
	if round == 0 {
		round = 360
	}
	maxHours := cfg.MaxSimHours
	if maxHours == 0 {
		maxHours = 24 * 30
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := cluster.GenerateJobs(cfg.NumJobs, cfg.Seed+1, cfg.MultiGPUFrac)
	trace := make([]traceJob, cfg.NumJobs)
	t := 0.0
	for i := range trace {
		arrival := 0.0
		if !cfg.AllAtOnce {
			t += rng.ExpFloat64() / cfg.ArrivalRatePerHour * 3600
			arrival = t
		}
		trace[i] = traceJob{job: jobs[i], arrival: arrival, remaining: jobs[i].NumSteps}
	}

	res := &Result{}
	now := 0.0
	limit := maxHours * 3600
	for now < limit {
		// Active set.
		var active []cluster.Job
		var activeIdx []int
		pending := false
		for i := range trace {
			tj := &trace[i]
			if tj.done {
				continue
			}
			if tj.arrival <= now {
				active = append(active, tj.job)
				activeIdx = append(activeIdx, i)
			} else {
				pending = true
			}
		}
		if len(active) == 0 {
			if !pending {
				break // everything finished
			}
			now += round
			continue
		}

		start := time.Now()
		alloc, err := policy(active, cfg.Cluster)
		res.PolicyTime += time.Since(start)
		res.PolicyCalls++
		if err != nil {
			return nil, fmt.Errorf("gavelsim: policy failed at t=%gs: %w", now, err)
		}

		for pos, i := range activeIdx {
			tj := &trace[i]
			progress := alloc.EffThr[pos] * round
			tj.remaining -= progress
			if tj.remaining <= 0 {
				// Interpolate the finish instant within the round.
				frac := 1.0
				if progress > 0 {
					frac = 1 + tj.remaining/progress // remaining is ≤ 0
				}
				tj.done = true
				tj.finish = now + frac*round
				res.Completed++
			}
		}
		now += round
		res.Rounds++
	}

	// Metrics over completed jobs.
	sumJCT := 0.0
	for i := range trace {
		tj := &trace[i]
		if !tj.done {
			continue
		}
		sumJCT += tj.finish - tj.arrival
		if tj.finish > res.MakespanHours {
			res.MakespanHours = tj.finish
		}
	}
	res.MakespanHours /= 3600
	if res.Completed > 0 {
		res.AvgJCTHours = sumJCT / float64(res.Completed) / 3600
	}
	return res, nil
}
