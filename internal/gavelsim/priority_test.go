package gavelsim

import (
	"testing"

	"pop/internal/cluster"
	"pop/internal/core"
	"pop/internal/lp"
)

// TestPriorityMixUnderPOP mirrors the paper's §7.1.1 note: in workloads
// mixing low- and high-priority jobs, POP leaves high-priority JCTs close
// to the exact policy's (the paper reports a 5% increase). We weight half
// the jobs 4× and compare their completion under exact vs POP-2 max-min
// fairness.
func TestPriorityMixUnderPOP(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation; skipped with -short")
	}
	run := func(policy Policy) (*Result, []float64) {
		// Custom trace so both runs share jobs and weights exactly: rebuild
		// the generator's jobs and bump weights deterministically.
		cfg := Config{
			Cluster:            cluster.NewCluster(8, 8, 8),
			NumJobs:            16,
			ArrivalRatePerHour: 8,
			RoundSeconds:       360,
			Seed:               21,
		}
		weighted := func(jobs []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
			for i := range jobs {
				if jobs[i].ID%2 == 0 {
					jobs[i].Weight = 4 // high priority
				}
			}
			return policy(jobs, c)
		}
		res, err := Run(cfg, weighted)
		if err != nil {
			t.Fatal(err)
		}
		return res, nil
	}

	exactRes, _ := run(func(js []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return cluster.MaxMinFairness(js, c, lp.Options{})
	})
	popRes, _ := run(func(js []cluster.Job, c cluster.Cluster) (*cluster.Allocation, error) {
		return cluster.SolvePOP(js, c, cluster.MaxMinFairness,
			core.Options{K: 2, Seed: 31, Parallel: true}, lp.Options{})
	})

	if exactRes.Completed != popRes.Completed {
		t.Fatalf("completion mismatch: %d vs %d", exactRes.Completed, popRes.Completed)
	}
	// Aggregate JCT within 25% (paper: ~5% at production scale).
	if popRes.AvgJCTHours > exactRes.AvgJCTHours*1.25 {
		t.Fatalf("POP JCT %g too far above exact %g", popRes.AvgJCTHours, exactRes.AvgJCTHours)
	}
}
